#include "dcn/cca_adjustor.hpp"

#include <gtest/gtest.h>

#include <optional>

namespace nomc::dcn {
namespace {

/// Rig: one radio on a quiet medium; the test drives time and feeds packet
/// RSSI records directly, and can inject on-air energy to steer the
/// initializing phase's power sensing.
class AdjustorTest : public ::testing::Test {
 protected:
  AdjustorTest() {
    phy::MediumConfig config;
    config.shadowing_sigma_db = 0.0;
    medium_.emplace(config);
    self_ = medium_->add_node({0.0, 0.0});
    emitter_ = medium_->add_node({0.0, 1.0});  // 1 m: RSS = power - 40 dB
    phy::RadioConfig radio_config;
    radio_config.channel = phy::Mhz{2460.0};
    radio_.emplace(scheduler_, *medium_, sim::RandomStream{1, 0}, self_, radio_config);
  }

  /// Keeps a co-channel carrier of `power` on the air during [from, to] so
  /// init-phase sensing sees it.
  void emit_energy(sim::SimTime from, sim::SimTime to, phy::Dbm power) {
    scheduler_.schedule_at(from, [this, to, power] {
      phy::Frame frame;
      frame.id = medium_->allocate_frame_id();
      frame.src = emitter_;
      frame.channel = phy::Mhz{2460.0};
      frame.tx_power = power;
      frame.psdu_bytes = 1;
      medium_->begin_tx(frame);
      scheduler_.schedule_at(to, [this, frame] { medium_->end_tx(frame.id); });
    });
  }

  sim::Scheduler scheduler_;
  std::optional<phy::Medium> medium_;
  std::optional<phy::Radio> radio_;
  phy::NodeId self_ = 0;
  phy::NodeId emitter_ = 0;
};

TEST_F(AdjustorTest, ConservativeBeforeStart) {
  CcaAdjustor adjustor{scheduler_, *radio_};
  EXPECT_EQ(adjustor.phase(), CcaAdjustor::Phase::kNotStarted);
  EXPECT_EQ(adjustor.threshold().value, mac::kZigbeeDefaultCcaThreshold.value);
  // Records before start are ignored.
  adjustor.on_co_channel_packet(phy::Dbm{-30.0});
  EXPECT_EQ(adjustor.threshold().value, mac::kZigbeeDefaultCcaThreshold.value);
  EXPECT_EQ(adjustor.update_records(), 0u);
}

TEST_F(AdjustorTest, ConservativeDuringInitPhase) {
  CcaAdjustor adjustor{scheduler_, *radio_};
  adjustor.start();
  EXPECT_EQ(adjustor.phase(), CcaAdjustor::Phase::kInitializing);
  adjustor.on_co_channel_packet(phy::Dbm{-30.0});
  scheduler_.run_until(sim::SimTime::milliseconds(500));
  // Still inside T_I = 1 s: the ZigBee default holds.
  EXPECT_EQ(adjustor.threshold().value, mac::kZigbeeDefaultCcaThreshold.value);
}

TEST_F(AdjustorTest, Equation2PacketRssiWins) {
  // Eq. 2: CCA_I = min{S..., max{P...}} - margin. Co-channel packets at
  // -45 dBm, sensed power peaks at -40 dBm (injected carrier): min wins.
  CcaAdjustor adjustor{scheduler_, *radio_};
  adjustor.start();
  emit_energy(sim::SimTime::milliseconds(100), sim::SimTime::milliseconds(200), phy::Dbm{0.0});
  scheduler_.schedule_at(sim::SimTime::milliseconds(300),
                         [&] { adjustor.on_co_channel_packet(phy::Dbm{-45.0}); });
  scheduler_.run_until(sim::SimTime::seconds(1.5));

  EXPECT_EQ(adjustor.phase(), CcaAdjustor::Phase::kUpdating);
  ASSERT_TRUE(adjustor.init_min_packet_rssi().has_value());
  EXPECT_EQ(adjustor.init_min_packet_rssi()->value, -45.0);
  ASSERT_TRUE(adjustor.init_max_sensed().has_value());
  EXPECT_NEAR(adjustor.init_max_sensed()->value, -40.0, 0.1);
  EXPECT_NEAR(adjustor.threshold().value, -47.0, 0.01);  // -45 - 2 dB margin
}

TEST_F(AdjustorTest, Equation2SensedPowerWinsWhenLower) {
  // Packets are loud (-35 dBm) but the max sensed in-channel power is lower:
  // the threshold starts at the sensed level (Fig. 12's "gap" behaviour).
  CcaAdjustor adjustor{scheduler_, *radio_};
  adjustor.start();
  emit_energy(sim::SimTime::milliseconds(100), sim::SimTime::milliseconds(200),
              phy::Dbm{-20.0});  // sensed ≈ -60 dBm
  scheduler_.schedule_at(sim::SimTime::milliseconds(300),
                         [&] { adjustor.on_co_channel_packet(phy::Dbm{-35.0}); });
  scheduler_.run_until(sim::SimTime::seconds(1.5));
  EXPECT_NEAR(adjustor.threshold().value, -62.0, 0.1);  // -60 - 2 margin
}

TEST_F(AdjustorTest, NoPacketsFallsBackToSensedPower) {
  CcaAdjustor adjustor{scheduler_, *radio_};
  adjustor.start();
  // Quiet channel: max sensed = noise floor (-95); clamped to min_threshold.
  scheduler_.run_until(sim::SimTime::seconds(1.5));
  EXPECT_EQ(adjustor.threshold().value, DcnConfig{}.min_threshold.value);
  EXPECT_FALSE(adjustor.init_min_packet_rssi().has_value());
}

TEST_F(AdjustorTest, CaseOneLowersImmediately) {
  CcaAdjustor adjustor{scheduler_, *radio_};
  adjustor.start();
  // Keep the channel non-quiet during init so Eq. 2's max-P term does not
  // floor the initial threshold.
  emit_energy(sim::SimTime::milliseconds(50), sim::SimTime::milliseconds(900), phy::Dbm{0.0});
  scheduler_.schedule_at(sim::SimTime::milliseconds(100),
                         [&] { adjustor.on_co_channel_packet(phy::Dbm{-40.0}); });
  scheduler_.run_until(sim::SimTime::seconds(1.5));
  EXPECT_NEAR(adjustor.threshold().value, -42.0, 0.01);

  // A weaker co-channel neighbour appears: Eq. 3 drops the threshold now.
  adjustor.on_co_channel_packet(phy::Dbm{-60.0});
  EXPECT_NEAR(adjustor.threshold().value, -62.0, 0.01);
}

TEST_F(AdjustorTest, CaseOneIgnoresStrongerPackets) {
  CcaAdjustor adjustor{scheduler_, *radio_};
  adjustor.start();
  emit_energy(sim::SimTime::milliseconds(50), sim::SimTime::milliseconds(900), phy::Dbm{0.0});
  scheduler_.schedule_at(sim::SimTime::milliseconds(100),
                         [&] { adjustor.on_co_channel_packet(phy::Dbm{-60.0}); });
  scheduler_.run_until(sim::SimTime::seconds(1.5));
  const double before = adjustor.threshold().value;
  adjustor.on_co_channel_packet(phy::Dbm{-30.0});  // stronger: no Case-I action
  EXPECT_EQ(adjustor.threshold().value, before);
}

TEST_F(AdjustorTest, CaseTwoRaisesAfterQuietWindow) {
  CcaAdjustor adjustor{scheduler_, *radio_};
  adjustor.start();
  emit_energy(sim::SimTime::milliseconds(50), sim::SimTime::milliseconds(900), phy::Dbm{0.0});
  scheduler_.schedule_at(sim::SimTime::milliseconds(100),
                         [&] { adjustor.on_co_channel_packet(phy::Dbm{-70.0}); });
  scheduler_.run_until(sim::SimTime::seconds(1.5));
  EXPECT_NEAR(adjustor.threshold().value, -72.0, 0.01);

  // The weak neighbour leaves; only a strong one keeps talking. After T_U
  // with no Case-I lowering, Eq. 4 re-bases on the recent minimum.
  scheduler_.schedule_at(sim::SimTime::seconds(2.0),
                         [&] { adjustor.on_co_channel_packet(phy::Dbm{-40.0}); });
  scheduler_.schedule_at(sim::SimTime::seconds(4.0),
                         [&] { adjustor.on_co_channel_packet(phy::Dbm{-40.0}); });
  scheduler_.run_until(sim::SimTime::seconds(6.0));
  EXPECT_NEAR(adjustor.threshold().value, -42.0, 0.01);
}

TEST_F(AdjustorTest, CaseTwoNeedsRecentRecords) {
  CcaAdjustor adjustor{scheduler_, *radio_};
  adjustor.start();
  emit_energy(sim::SimTime::milliseconds(50), sim::SimTime::milliseconds(900), phy::Dbm{0.0});
  scheduler_.schedule_at(sim::SimTime::milliseconds(100),
                         [&] { adjustor.on_co_channel_packet(phy::Dbm{-70.0}); });
  scheduler_.run_until(sim::SimTime::seconds(1.5));
  // Total silence afterwards: no records in the last T_U, threshold holds.
  scheduler_.run_until(sim::SimTime::seconds(10.0));
  EXPECT_NEAR(adjustor.threshold().value, -72.0, 0.01);
  EXPECT_EQ(adjustor.update_records(), 0u);  // pruned
}

TEST_F(AdjustorTest, ClampsToConfiguredBounds) {
  DcnConfig config;
  config.safety_margin = phy::Db{2.0};
  CcaAdjustor adjustor{scheduler_, *radio_, config};
  adjustor.start();
  // A +32 dBm carrier at 1 m senses at -8 dBm; with -5 dBm packets, Eq. 2
  // would land at -10 dBm — above max_threshold, so the clamp engages.
  emit_energy(sim::SimTime::milliseconds(50), sim::SimTime::milliseconds(900), phy::Dbm{32.0});
  scheduler_.schedule_at(sim::SimTime::milliseconds(100),
                         [&] { adjustor.on_co_channel_packet(phy::Dbm{-5.0}); });
  scheduler_.run_until(sim::SimTime::seconds(1.5));
  EXPECT_EQ(adjustor.threshold().value, config.max_threshold.value);

  adjustor.on_co_channel_packet(phy::Dbm{-120.0});
  EXPECT_EQ(adjustor.threshold().value, config.min_threshold.value);
}

TEST_F(AdjustorTest, CustomTimingConfig) {
  DcnConfig config;
  config.t_init = sim::SimTime::milliseconds(200);
  config.t_update = sim::SimTime::seconds(1.0);
  CcaAdjustor adjustor{scheduler_, *radio_, config};
  adjustor.start();
  emit_energy(sim::SimTime::milliseconds(20), sim::SimTime::milliseconds(180), phy::Dbm{0.0});
  scheduler_.schedule_at(sim::SimTime::milliseconds(50),
                         [&] { adjustor.on_co_channel_packet(phy::Dbm{-50.0}); });
  scheduler_.run_until(sim::SimTime::milliseconds(300));
  EXPECT_EQ(adjustor.phase(), CcaAdjustor::Phase::kUpdating);
  EXPECT_NEAR(adjustor.threshold().value, -52.0, 0.01);

  // Case II with the shorter window: raise within ~2 s.
  scheduler_.schedule_at(sim::SimTime::milliseconds(400),
                         [&] { adjustor.on_co_channel_packet(phy::Dbm{-45.0}); });
  scheduler_.schedule_at(sim::SimTime::milliseconds(1500),
                         [&] { adjustor.on_co_channel_packet(phy::Dbm{-45.0}); });
  scheduler_.run_until(sim::SimTime::seconds(3.0));
  EXPECT_NEAR(adjustor.threshold().value, -47.0, 0.01);
}

/// Property sweep: whatever margin is configured, the settled threshold sits
/// exactly margin below the weakest recent co-channel RSSI (within clamps).
class MarginSweep : public ::testing::TestWithParam<double> {};

TEST_P(MarginSweep, ThresholdTracksMinRssiMinusMargin) {
  sim::Scheduler scheduler;
  phy::MediumConfig mc;
  mc.shadowing_sigma_db = 0.0;
  phy::Medium medium{mc};
  const phy::NodeId self = medium.add_node({0.0, 0.0});
  const phy::NodeId emitter = medium.add_node({0.0, 1.0});
  phy::RadioConfig rc;
  rc.channel = phy::Mhz{2460.0};
  phy::Radio radio{scheduler, medium, sim::RandomStream{1, 0}, self, rc};

  DcnConfig config;
  config.safety_margin = phy::Db{GetParam()};
  CcaAdjustor adjustor{scheduler, radio, config};
  adjustor.start();
  // Non-quiet channel during init (see the fixture's emit_energy rationale).
  scheduler.schedule_at(sim::SimTime::milliseconds(50), [&] {
    phy::Frame carrier;
    carrier.id = medium.allocate_frame_id();
    carrier.src = emitter;
    carrier.channel = phy::Mhz{2460.0};
    carrier.tx_power = phy::Dbm{0.0};
    carrier.psdu_bytes = 1;
    medium.begin_tx(carrier);
    scheduler.schedule_at(sim::SimTime::milliseconds(900),
                          [&medium, carrier] { medium.end_tx(carrier.id); });
  });
  scheduler.schedule_at(sim::SimTime::milliseconds(100),
                        [&] { adjustor.on_co_channel_packet(phy::Dbm{-55.0}); });
  scheduler.run_until(sim::SimTime::seconds(1.5));
  EXPECT_NEAR(adjustor.threshold().value, -55.0 - GetParam(), 0.01);
}

INSTANTIATE_TEST_SUITE_P(Margins, MarginSweep, ::testing::Values(0.0, 1.0, 2.0, 4.0, 8.0));

}  // namespace
}  // namespace nomc::dcn
