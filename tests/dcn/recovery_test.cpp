#include "dcn/recovery.hpp"

#include <gtest/gtest.h>

namespace nomc::dcn {
namespace {

phy::RxResult make_rx(bool crc_ok, double error_fraction) {
  phy::RxResult result;
  result.frame.psdu_bytes = 100;
  result.crc_ok = crc_ok;
  result.error_fraction = error_fraction;
  result.bit_errors = static_cast<int>(error_fraction * 800);
  return result;
}

TEST(Recovery, CountsIntactSeparately) {
  RecoveryAnalyzer analyzer;
  analyzer.on_rx(make_rx(true, 0.0));
  analyzer.on_rx(make_rx(true, 0.0));
  EXPECT_EQ(analyzer.intact(), 2u);
  EXPECT_EQ(analyzer.crc_failed(), 0u);
  EXPECT_EQ(analyzer.recoverable(), 0u);
  EXPECT_EQ(analyzer.with_recovery(), 2u);
  EXPECT_TRUE(analyzer.error_fraction_cdf().empty());
}

TEST(Recovery, ClassifiesByErrorFraction) {
  RecoveryAnalyzer analyzer;  // default threshold 10 %
  analyzer.on_rx(make_rx(false, 0.05));  // recoverable
  analyzer.on_rx(make_rx(false, 0.10));  // boundary: recoverable
  analyzer.on_rx(make_rx(false, 0.30));  // beyond repair
  EXPECT_EQ(analyzer.crc_failed(), 3u);
  EXPECT_EQ(analyzer.recoverable(), 2u);
  EXPECT_EQ(analyzer.with_recovery(), 2u);
}

TEST(Recovery, CustomThreshold) {
  RecoveryAnalyzer analyzer{RecoveryConfig{0.02}};
  analyzer.on_rx(make_rx(false, 0.01));
  analyzer.on_rx(make_rx(false, 0.05));
  EXPECT_EQ(analyzer.recoverable(), 1u);
  EXPECT_EQ(analyzer.config().max_error_fraction, 0.02);
}

TEST(Recovery, CdfAccumulatesFailuresOnly) {
  RecoveryAnalyzer analyzer;
  analyzer.on_rx(make_rx(true, 0.0));
  analyzer.on_rx(make_rx(false, 0.05));
  analyzer.on_rx(make_rx(false, 0.50));
  const auto& cdf = analyzer.error_fraction_cdf();
  EXPECT_EQ(cdf.count(), 2u);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.10), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 1.0);
}

}  // namespace
}  // namespace nomc::dcn
