// Partial packet recovery protocol tests: the full feedback loop runs on a
// link whose packets are corrupted by a controllable co-channel jammer next
// to the receiver.
#include "ppr/ppr.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "mac/attacker.hpp"
#include "mac/cca.hpp"

namespace nomc::ppr {
namespace {

/// Sender -> receiver over 2 m; jammer 1 m from the receiver on a channel
/// 3 MHz away (near-cliff decode leakage — the Fig. 29 regime of partial
/// corruption — invisible to the sender's CCA once the threshold is relaxed).
struct Rig {
  explicit Rig(std::uint64_t seed = 5, phy::Dbm link_power = phy::Dbm{-22.0}) {
    phy::MediumConfig config;
    config.seed = seed;
    medium_.emplace(config);
    sender_id_ = medium_->add_node({0.0, 0.0});
    receiver_id_ = medium_->add_node({0.0, 2.0});
    jammer_id_ = medium_->add_node({1.0, 2.0});

    phy::RadioConfig link_radio;
    link_radio.channel = phy::Mhz{2460.0};
    phy::RadioConfig jam_radio;
    jam_radio.channel = phy::Mhz{2463.0};

    sender_radio_.emplace(scheduler_, *medium_, sim::RandomStream{seed, 0}, sender_id_,
                          link_radio);
    receiver_radio_.emplace(scheduler_, *medium_, sim::RandomStream{seed, 1}, receiver_id_,
                            link_radio);
    jammer_radio_.emplace(scheduler_, *medium_, sim::RandomStream{seed, 2}, jammer_id_,
                          jam_radio);

    sender_mac_.emplace(scheduler_, *medium_, *sender_radio_, sim::RandomStream{seed, 3},
                        cca_);
    sender_mac_->set_tx_power(link_power);
    receiver_mac_.emplace(scheduler_, *medium_, *receiver_radio_, sim::RandomStream{seed, 4},
                          cca_);
    jammer_mac_.emplace(scheduler_, *medium_, *jammer_radio_);
  }

  void start_jammer() {
    jammer_mac_->start(phy::kNoNode, /*psdu_bytes=*/80, sim::SimTime::milliseconds(6));
  }

  sim::Scheduler scheduler_;
  std::optional<phy::Medium> medium_;
  mac::FixedCcaThreshold cca_{phy::Dbm{-55.0}};  // ignores the jammer, hears co-channel NACKs
  phy::NodeId sender_id_ = 0;
  phy::NodeId receiver_id_ = 0;
  phy::NodeId jammer_id_ = 0;
  std::optional<phy::Radio> sender_radio_;
  std::optional<phy::Radio> receiver_radio_;
  std::optional<phy::Radio> jammer_radio_;
  std::optional<mac::CsmaMac> sender_mac_;
  std::optional<mac::CsmaMac> receiver_mac_;
  std::optional<mac::AttackerMac> jammer_mac_;
};

TEST(Ppr, CleanLinkHasZeroOverhead) {
  Rig rig{7, phy::Dbm{0.0}};  // strong link, no jammer
  PprSender sender{*rig.sender_mac_};
  PprReceiver receiver{*rig.receiver_mac_};

  rig.sender_mac_->set_saturated(mac::TxRequest{rig.receiver_id_, 100});
  rig.scheduler_.run_until(sim::SimTime::seconds(2.0));

  EXPECT_GT(rig.receiver_mac_->counters().received, 300u);
  EXPECT_EQ(receiver.stats().nacks_sent, 0u);
  EXPECT_EQ(sender.stats().repairs_sent, 0u);
  EXPECT_EQ(receiver.stats().recovered, 0u);
}

TEST(Ppr, RecoversCorruptedPackets) {
  Rig rig;
  PprSender sender{*rig.sender_mac_};
  int recovered_via_callback = 0;
  PprReceiver receiver{*rig.receiver_mac_, PprConfig{},
                       [&recovered_via_callback](const phy::RxResult&) {
                         ++recovered_via_callback;
                       }};

  rig.start_jammer();
  rig.sender_mac_->set_saturated(mac::TxRequest{rig.receiver_id_, 100});
  rig.scheduler_.run_until(sim::SimTime::seconds(10.0));

  const auto& rx_counters = rig.receiver_mac_->counters();
  // The jammer corrupts a sizeable share...
  EXPECT_GT(rx_counters.crc_failed, 100u);
  // ...and PPR claws most of them back.
  EXPECT_GT(receiver.stats().nacks_sent, 50u);
  EXPECT_GT(sender.stats().repairs_sent, 50u);
  EXPECT_GT(receiver.stats().recovered, rx_counters.crc_failed / 2);
  EXPECT_EQ(static_cast<int>(receiver.stats().recovered), recovered_via_callback);

  // Effective PRR with recovery beats raw PRR substantially.
  const double raw = static_cast<double>(rx_counters.received);
  const double with_ppr = raw + static_cast<double>(receiver.stats().recovered);
  EXPECT_GT(with_ppr / (raw + static_cast<double>(rx_counters.crc_failed)), 0.85);
}

TEST(Ppr, RepairFramesAreShort) {
  Rig rig;
  PprSender sender{*rig.sender_mac_};
  PprReceiver receiver{*rig.receiver_mac_};

  rig.start_jammer();
  rig.sender_mac_->set_saturated(mac::TxRequest{rig.receiver_id_, 100});
  rig.scheduler_.run_until(sim::SimTime::seconds(10.0));

  ASSERT_GT(sender.stats().repairs_sent, 0u);
  const double mean_repair_bytes =
      static_cast<double>(sender.stats().repair_bytes_sent) /
      static_cast<double>(sender.stats().repairs_sent);
  // Partial corruption: repairs must be well under a full 100-byte frame on
  // average — that is PPR's whole point.
  EXPECT_LT(mean_repair_bytes, 85.0);
  EXPECT_GE(mean_repair_bytes, 13.0 + 16.0);  // overhead + at least one block
}

TEST(Ppr, RoundsAreBounded) {
  PprConfig config;
  config.max_rounds = 1;
  Rig rig;
  PprSender sender{*rig.sender_mac_, config};
  PprReceiver receiver{*rig.receiver_mac_, config};

  rig.start_jammer();
  rig.sender_mac_->set_saturated(mac::TxRequest{rig.receiver_id_, 100});
  rig.scheduler_.run_until(sim::SimTime::seconds(10.0));

  // With a single round, every failed repair abandons the partial rather
  // than NACKing again: abandoned + recovered ~ partials served.
  EXPECT_GT(receiver.stats().partials_stored, 0u);
  EXPECT_LE(receiver.stats().nacks_sent,
            receiver.stats().partials_stored + receiver.stats().recovered);
}

TEST(Ppr, AdaptiveGateStaysDisarmedOnCleanLink) {
  PprConfig config;
  config.adaptive = true;
  Rig rig{7, phy::Dbm{0.0}};  // clean link
  PprSender sender{*rig.sender_mac_, config};
  PprReceiver receiver{*rig.receiver_mac_, config};

  rig.sender_mac_->set_saturated(mac::TxRequest{rig.receiver_id_, 100});
  rig.scheduler_.run_until(sim::SimTime::seconds(2.0));

  EXPECT_FALSE(receiver.armed());
  EXPECT_EQ(receiver.stats().nacks_sent, 0u);
}

TEST(Ppr, AdaptiveGateArmsUnderLoss) {
  PprConfig config;
  config.adaptive = true;
  Rig rig;
  PprSender sender{*rig.sender_mac_, config};
  PprReceiver receiver{*rig.receiver_mac_, config};

  rig.start_jammer();
  rig.sender_mac_->set_saturated(mac::TxRequest{rig.receiver_id_, 100});
  rig.scheduler_.run_until(sim::SimTime::seconds(10.0));

  EXPECT_TRUE(receiver.armed());
  EXPECT_GT(receiver.stats().recovered, 0u);
}

TEST(Ppr, BlockMapMatchesCrcVerdict) {
  // Pure PHY-level consistency: every CRC-failed frame carries at least one
  // dirty block; every intact frame carries none.
  Rig rig;
  int checked = 0;
  rig.receiver_mac_->add_rx_hook([&checked](const phy::RxResult& rx) {
    if (rx.frame.type != phy::FrameType::kData) return;
    if (rx.block_errors.empty()) return;
    if (rx.crc_ok) {
      EXPECT_EQ(rx.dirty_blocks(), 0);
    } else {
      EXPECT_GT(rx.dirty_blocks(), 0);
    }
    ++checked;
  });

  rig.start_jammer();
  rig.sender_mac_->set_saturated(mac::TxRequest{rig.receiver_id_, 100});
  rig.scheduler_.run_until(sim::SimTime::seconds(5.0));
  EXPECT_GT(checked, 300);
}

}  // namespace
}  // namespace nomc::ppr
