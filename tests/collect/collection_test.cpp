#include "collect/collection.hpp"

#include <gtest/gtest.h>

#include "phy/channel_plan.hpp"

namespace nomc::collect {
namespace {

CollectionConfig light_config() {
  CollectionConfig config;
  config.nodes_per_tree = 5;
  config.report_period = sim::SimTime::milliseconds(100);  // well under capacity
  return config;
}

TEST(CollectionTree, ParentsFormValidTree) {
  const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 3);
  CollectionScenario scenario{channels, light_config(), 5};
  for (const auto& tree : scenario.trees()) {
    ASSERT_EQ(tree->nodes().size(), 5u);
    for (const auto& node : tree->nodes()) {
      EXPECT_NE(node->parent, phy::kNoNode);
      EXPECT_NE(node->parent, node->id);
      EXPECT_GE(node->depth, 1);
    }
    // Depths are consistent: a depth-d node's parent is depth d-1 (or sink).
    for (const auto& node : tree->nodes()) {
      if (node->depth == 1) continue;
      bool found = false;
      for (const auto& other : tree->nodes()) {
        if (other->id == node->parent) {
          EXPECT_EQ(other->depth, node->depth - 1);
          found = true;
        }
      }
      EXPECT_TRUE(found) << "relay parent must be another tree node";
    }
    EXPECT_GE(tree->max_depth(), 1);
  }
}

TEST(CollectionTree, UnderloadCollectsEverythingGenerated) {
  // Orthogonal spacing for the sanity check: at CFD=3 with the fixed
  // threshold, access-failure drops exist even underloaded (the paper's
  // deferral problem — exercised by the benches, not by this test).
  const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{9.0}, 2);
  CollectionScenario scenario{channels, light_config(), 7};
  const double goodput = scenario.run(sim::SimTime::seconds(1.0), sim::SimTime::seconds(10.0));

  // 2 trees x 5 nodes x 10 readings/s = 100/s offered.
  EXPECT_NEAR(goodput, 100.0, 8.0);
  for (const auto& tree : scenario.trees()) {
    // Collected (window) is close to generated (whole run) scaled by 10/11.
    EXPECT_GT(tree->collected(), tree->generated() * 8 / 11);
  }
}

TEST(CollectionTree, ForwardingHappensForDeepNodes) {
  CollectionConfig config = light_config();
  config.direct_range_m = 3.0;   // force multi-hop
  config.field_radius_m = 10.0;
  const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 1);
  CollectionScenario scenario{channels, config, 11};
  const auto& tree = *scenario.trees()[0];
  ASSERT_GT(tree.max_depth(), 1);  // with radius 10 vs range 3 this must hold

  scenario.run(sim::SimTime::seconds(1.0), sim::SimTime::seconds(5.0));
  std::uint64_t forwarded = 0;
  for (const auto& node : tree.nodes()) forwarded += node->forwarded;
  EXPECT_GT(forwarded, 50u);
}

TEST(CollectionTree, AckedHopsRecoverLosses) {
  // Same deployment with and without per-hop ACKs under moderate load:
  // acked collection must not be worse.
  CollectionConfig config = light_config();
  config.report_period = sim::SimTime::milliseconds(50);
  const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 2);

  config.acked_hops = false;
  CollectionScenario plain{channels, config, 3};
  const double plain_goodput = plain.run(sim::SimTime::seconds(1.0), sim::SimTime::seconds(6.0));

  config.acked_hops = true;
  CollectionScenario acked{channels, config, 3};
  const double acked_goodput = acked.run(sim::SimTime::seconds(1.0), sim::SimTime::seconds(6.0));

  EXPECT_GT(acked_goodput, plain_goodput * 0.9);
  EXPECT_GT(plain_goodput, 100.0);
}

TEST(CollectionTree, DcnSchemeRunsAndAdjusts) {
  CollectionConfig config = light_config();
  config.scheme = net::Scheme::kDcn;
  const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 3);
  CollectionScenario scenario{channels, config, 9};
  const double goodput = scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(6.0));
  EXPECT_GT(goodput, 100.0);  // 150/s offered across 3 trees
  for (const auto& tree : scenario.trees()) {
    for (const auto& node : tree->nodes()) {
      ASSERT_NE(node->adjustor, nullptr);
      EXPECT_EQ(node->adjustor->phase(), dcn::CcaAdjustor::Phase::kUpdating);
    }
  }
}

TEST(CollectionTree, DeterministicGoodput) {
  const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 2);
  CollectionScenario a{channels, light_config(), 21};
  CollectionScenario b{channels, light_config(), 21};
  EXPECT_EQ(a.run(sim::SimTime::seconds(1.0), sim::SimTime::seconds(4.0)),
            b.run(sim::SimTime::seconds(1.0), sim::SimTime::seconds(4.0)));
}

}  // namespace
}  // namespace nomc::collect
