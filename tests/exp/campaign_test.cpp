// Campaign engine integration: resume determinism and record stability.
//
// The resume contract under test (docs/campaigns.md): the result store is
// byte-identical whether a campaign ran straight through, was interrupted
// (even mid-write) and resumed, or replicated trials with a different job
// count.
#include "exp/campaign.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "exp/result_store.hpp"
#include "exp/spec.hpp"
#include "sim/parallel.hpp"

namespace nomc::exp {
namespace {

// 4 points (2 channel counts x 2 schemes), short runs: enough structure to
// interrupt in the middle, small enough for the tier-1 suite.
constexpr const char* kSpecText =
    "name = campaign_under_test\n"
    "topology = dense\n"
    "power = 0\n"
    "warmup = 0.2\n"
    "measure = 0.5\n"
    "trials = 2\n"
    "sweep channels = 2 3\n"
    "sweep scheme = fixed dcn\n";

CampaignSpec test_spec() {
  CampaignSpec spec;
  SpecError error;
  EXPECT_TRUE(parse_campaign(kSpecText, spec, error)) << error.str();
  return spec;
}

std::string temp_path(const std::string& name) {
  // Per-process scratch: ctest runs each TEST as its own process, and two of
  // them regenerating reference.jsonl concurrently under `ctest -j` would
  // tear each other's bytes.
  return ::testing::TempDir() + "nomc_campaign_" + std::to_string(::getpid()) + "_" + name;
}

std::string read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr) << path;
  if (file == nullptr) return "";
  std::string content;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) content.append(buffer, got);
  std::fclose(file);
  return content;
}

void append_bytes(const std::string& path, const std::string& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);
}

CampaignOptions quiet_options(CampaignOptions::Mode mode, int jobs = 1) {
  CampaignOptions options;
  options.mode = mode;
  options.jobs = jobs;
  options.quiet = true;
  return options;
}

/// The uninterrupted single-job store: the reference bytes every other
/// execution shape must reproduce. Computed once, shared across tests.
const std::string& reference_bytes() {
  static const std::string bytes = [] {
    const std::string path = temp_path("reference.jsonl");
    std::string error;
    CampaignStats stats;
    EXPECT_TRUE(run_campaign(test_spec(), path,
                             quiet_options(CampaignOptions::Mode::kOverwrite), &stats, error))
        << error;
    EXPECT_EQ(stats.total, 4);
    EXPECT_EQ(stats.computed, 4);
    return read_file(path);
  }();
  return bytes;
}

TEST(Campaign, StoreHasOneValidRecordPerPoint) {
  const std::string path = temp_path("records.jsonl");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  const std::string& bytes = reference_bytes();
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);

  StoreScan scan;
  std::string error;
  ASSERT_TRUE(scan_store(path, spec_hash(test_spec()), scan, error)) << error;
  ASSERT_EQ(scan.records.size(), 4u);
  for (int point = 0; point < 4; ++point) {
    EXPECT_EQ(scan.records[static_cast<std::size_t>(point)].point, point);
    EXPECT_EQ(scan.completed.count(point), 1u);
  }
  // Point 0: 2 networks, all numbers populated.
  const ResultRecord& first = scan.records[0];
  ASSERT_EQ(first.pps.size(), 2u);
  EXPECT_GT(first.overall_pps, 0.0);
  EXPECT_GT(first.jain, 0.0);
  ASSERT_EQ(first.sweep.size(), 2u);
  EXPECT_EQ(first.sweep[0].first, "channels");
  EXPECT_EQ(first.sweep[1].first, "scheme");
}

TEST(Campaign, InterruptAfterTwoPointsThenResumeIsByteIdentical) {
  const std::string path = temp_path("interrupted.jsonl");
  std::string error;

  CampaignOptions interrupted = quiet_options(CampaignOptions::Mode::kOverwrite);
  interrupted.max_points = 2;
  CampaignStats stats;
  ASSERT_TRUE(run_campaign(test_spec(), path, interrupted, &stats, error)) << error;
  EXPECT_EQ(stats.computed, 2);
  ASSERT_NE(read_file(path), reference_bytes());  // genuinely partial

  ASSERT_TRUE(run_campaign(test_spec(), path, quiet_options(CampaignOptions::Mode::kResume),
                           &stats, error))
      << error;
  EXPECT_EQ(stats.reused, 2);
  EXPECT_EQ(stats.computed, 2);
  EXPECT_EQ(read_file(path), reference_bytes());
}

TEST(Campaign, ResumeAfterTornWriteIsByteIdentical) {
  const std::string path = temp_path("torn.jsonl");
  std::string error;

  CampaignOptions interrupted = quiet_options(CampaignOptions::Mode::kOverwrite);
  interrupted.max_points = 1;
  CampaignStats stats;
  ASSERT_TRUE(run_campaign(test_spec(), path, interrupted, &stats, error)) << error;
  // A kill mid-write leaves a partial record with no trailing newline.
  append_bytes(path, R"({"v":1,"campaign":"campaign_under_)");

  ASSERT_TRUE(run_campaign(test_spec(), path, quiet_options(CampaignOptions::Mode::kResume),
                           &stats, error))
      << error;
  EXPECT_EQ(stats.reused, 1);
  EXPECT_EQ(stats.computed, 3);
  EXPECT_EQ(read_file(path), reference_bytes());
}

TEST(Campaign, JobCountDoesNotChangeTheBytes) {
  const std::string path = temp_path("jobs.jsonl");
  std::string error;
  CampaignStats stats;
  ASSERT_TRUE(run_campaign(test_spec(), path,
                           quiet_options(CampaignOptions::Mode::kOverwrite, /*jobs=*/4),
                           &stats, error))
      << error;
  EXPECT_EQ(read_file(path), reference_bytes());
}

TEST(Campaign, PointJobsDoesNotChangeTheBytes) {
  // Campaign-level parallelism: points computed concurrently, checkpointed
  // in order through the reorder buffer — the store must not care.
  for (const int point_jobs : {2, 3}) {
    SCOPED_TRACE("point_jobs " + std::to_string(point_jobs));
    const std::string path = temp_path("point_jobs.jsonl");
    std::string error;
    CampaignStats stats;
    CampaignOptions options = quiet_options(CampaignOptions::Mode::kOverwrite, /*jobs=*/2);
    options.point_jobs = point_jobs;
    ASSERT_TRUE(run_campaign(test_spec(), path, options, &stats, error)) << error;
    EXPECT_EQ(stats.computed, 4);
    EXPECT_EQ(read_file(path), reference_bytes());
  }
}

TEST(Campaign, TornWriteResumeWithPointJobsIsByteIdentical) {
  // Torn-write recovery composes with out-of-order completion: interrupt a
  // parallel run mid-record AND mid-timing-line, resume at a different
  // split, and the store still matches the serial reference.
  const std::string path = temp_path("torn_parallel.jsonl");
  std::string error;

  CampaignOptions interrupted = quiet_options(CampaignOptions::Mode::kOverwrite);
  interrupted.max_points = 2;
  interrupted.point_jobs = 2;
  CampaignStats stats;
  ASSERT_TRUE(run_campaign(test_spec(), path, interrupted, &stats, error)) << error;
  append_bytes(path, R"({"v":1,"campaign":"campaign_under_)");
  append_bytes(path + ".timing", R"({"point":2,"wall)");

  CampaignOptions resumed = quiet_options(CampaignOptions::Mode::kResume, /*jobs=*/2);
  resumed.point_jobs = 3;
  ASSERT_TRUE(run_campaign(test_spec(), path, resumed, &stats, error)) << error;
  EXPECT_EQ(stats.reused, 2);
  EXPECT_EQ(stats.computed, 2);
  EXPECT_EQ(read_file(path), reference_bytes());
}

TEST(Campaign, ResumeRebuildsTimingSidecar) {
  // The sidecar after a torn-write resume holds whole parsable lines only,
  // one per newly-computed point plus the surviving completed-point lines.
  const std::string path = temp_path("sidecar.jsonl");
  std::string error;

  CampaignOptions interrupted = quiet_options(CampaignOptions::Mode::kOverwrite);
  interrupted.max_points = 1;
  CampaignStats stats;
  ASSERT_TRUE(run_campaign(test_spec(), path, interrupted, &stats, error)) << error;
  append_bytes(path + ".timing", "{\"point\":1,\"wall_ms\":");  // torn timing line

  CampaignOptions resumed = quiet_options(CampaignOptions::Mode::kResume);
  resumed.point_jobs = 2;
  ASSERT_TRUE(run_campaign(test_spec(), path, resumed, &stats, error)) << error;
  EXPECT_EQ(read_file(path), reference_bytes());

  const std::string sidecar = read_file(path + ".timing");
  int lines = 0;
  std::size_t start = 0;
  int expected_point = 0;
  while (start < sidecar.size()) {
    const std::size_t newline = sidecar.find('\n', start);
    ASSERT_NE(newline, std::string::npos) << "torn sidecar line survived resume";
    JsonValue parsed;
    ASSERT_TRUE(parse_json(sidecar.substr(start, newline - start), parsed, error)) << error;
    const JsonValue* point = parsed.find("point");
    ASSERT_NE(point, nullptr);
    EXPECT_EQ(static_cast<int>(point->number), expected_point++);
    ASSERT_NE(parsed.find("wall_ms"), nullptr);
    EXPECT_GT(parsed.find("wall_ms")->number, 0.0);
    ++lines;
    start = newline + 1;
  }
  EXPECT_EQ(lines, 4);  // point 0 survived; points 1..3 freshly timed
}

TEST(Campaign, ResumeOfCompleteCampaignRecomputesNothing) {
  const std::string path = temp_path("complete.jsonl");
  std::string error;
  CampaignStats stats;
  ASSERT_TRUE(run_campaign(test_spec(), path, quiet_options(CampaignOptions::Mode::kOverwrite),
                           &stats, error))
      << error;
  ASSERT_TRUE(run_campaign(test_spec(), path, quiet_options(CampaignOptions::Mode::kResume),
                           &stats, error))
      << error;
  EXPECT_EQ(stats.computed, 0);
  EXPECT_EQ(stats.reused, 4);
  EXPECT_EQ(read_file(path), reference_bytes());
}

TEST(Campaign, FreshModeRefusesExistingStore) {
  const std::string path = temp_path("fresh.jsonl");
  std::string error;
  CampaignStats stats;
  ASSERT_TRUE(run_campaign(test_spec(), path, quiet_options(CampaignOptions::Mode::kOverwrite),
                           &stats, error));
  EXPECT_FALSE(run_campaign(test_spec(), path, quiet_options(CampaignOptions::Mode::kFresh),
                            &stats, error));
  EXPECT_NE(error.find("already exists"), std::string::npos);
}

TEST(Campaign, ResumeRefusesStoreFromDifferentSpec) {
  const std::string path = temp_path("wrong_spec.jsonl");
  std::string error;
  CampaignStats stats;
  ASSERT_TRUE(run_campaign(test_spec(), path, quiet_options(CampaignOptions::Mode::kOverwrite),
                           &stats, error));

  CampaignSpec changed = test_spec();
  changed.base.trials = 3;  // any spec change flips the hash
  EXPECT_FALSE(run_campaign(changed, path, quiet_options(CampaignOptions::Mode::kResume),
                            &stats, error));
  EXPECT_NE(error.find("different spec"), std::string::npos);
}

TEST(Campaign, RunPointMatchesStoredRecordNumbers) {
  // format_record(run_point(...)) for point 0 must reproduce the reference
  // store's first line exactly — the byte-determinism contract at the unit
  // level, independent of run_campaign's bookkeeping.
  const CampaignSpec spec = test_spec();
  const auto points = expand_grid(spec);
  sim::ParallelRunner runner{2};
  const PointResult result = run_point(points[0].params, runner);
  const std::string line = format_record(spec, points[0], result);
  const std::string& reference = reference_bytes();
  EXPECT_EQ(reference.substr(0, line.size() + 1), line + "\n");
}

}  // namespace
}  // namespace nomc::exp
