// Crash-resume fuzz: interrupt a campaign at randomized points, truncate the
// store (and its .timing sidecar) at randomized byte offsets — including
// mid-record and mid-sidecar-line — then resume at a different
// (jobs, point_jobs) split. The final store must always be byte-identical to
// an uninterrupted serial run.
//
// Truncation is the exact failure shape of a kill mid-write with an
// append+flush-per-line writer: some complete lines plus at most one torn
// tail. Corruption *inside* the retained prefix is deliberately not fuzzed —
// scan_store treats that as a hard error, not something to recover
// (tests/exp/store_test.cpp locks that).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <random>
#include <string>

#include "exp/campaign.hpp"
#include "exp/result_store.hpp"
#include "exp/spec.hpp"

namespace nomc::exp {
namespace {

// 4 cheap points: 2-network deployments, short windows.
constexpr const char* kSpecText =
    "name = fuzz_campaign\n"
    "topology = dense\n"
    "power = 0\n"
    "channels = 2\n"
    "warmup = 0.2\n"
    "measure = 0.4\n"
    "trials = 2\n"
    "sweep cfd = 3 5\n"
    "sweep scheme = fixed dcn\n";

CampaignSpec fuzz_spec() {
  CampaignSpec spec;
  SpecError error;
  EXPECT_TRUE(parse_campaign(kSpecText, spec, error)) << error.str();
  return spec;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "nomc_fuzz_" + std::to_string(::getpid()) + "_" + name;
}

std::string read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return "";
  std::string content;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) content.append(buffer, got);
  std::fclose(file);
  return content;
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr) << path;
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), file), content.size());
  std::fclose(file);
}

/// Drop everything from byte `offset` on — what the filesystem keeps when a
/// writer dies mid-write.
void truncate_at(const std::string& path, std::size_t offset) {
  std::string content = read_file(path);
  if (offset < content.size()) content.resize(offset);
  write_file(path, content);
}

const std::string& reference_bytes() {
  static const std::string bytes = [] {
    const std::string path = temp_path("reference.jsonl");
    CampaignOptions options;
    options.mode = CampaignOptions::Mode::kOverwrite;
    options.quiet = true;
    CampaignStats stats;
    std::string error;
    EXPECT_TRUE(run_campaign(fuzz_spec(), path, options, &stats, error)) << error;
    EXPECT_EQ(stats.computed, 4);
    return read_file(path);
  }();
  return bytes;
}

TEST(CampaignFuzz, RandomTruncationAndResumeIsByteIdentical) {
  const CampaignSpec spec = fuzz_spec();
  const std::string& reference = reference_bytes();
  ASSERT_FALSE(reference.empty());

  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("fuzz seed " + std::to_string(seed));
    // Fixed-seed generator for fuzz *inputs* (truncation offsets), not
    // simulation randomness — the runs it drives stay deterministic.
    // nomc-lint: allow(det-rand)
    std::mt19937_64 rng{seed};
    const std::string path = temp_path("case_" + std::to_string(seed) + ".jsonl");

    // Interrupted first leg: a random prefix of the grid at a random split.
    CampaignOptions first;
    first.mode = CampaignOptions::Mode::kOverwrite;
    first.quiet = true;
    first.max_points = static_cast<int>(rng() % 4);  // 0..3 of 4 points
    first.jobs = 1 + static_cast<int>(rng() % 2);
    first.point_jobs = 1 + static_cast<int>(rng() % 3);
    CampaignStats stats;
    std::string error;
    ASSERT_TRUE(run_campaign(spec, path, first, &stats, error)) << error;

    // Kill: truncate the store at a random offset biased toward the tail so
    // mid-record, mid-number, and exact-boundary cuts all occur; give the
    // timing sidecar an independent cut.
    const std::string store = read_file(path);
    if (!store.empty()) {
      const std::size_t window = store.size() < 200 ? store.size() : 200;
      truncate_at(path, store.size() - (rng() % (window + 1)));
    }
    const std::string timing = read_file(path + ".timing");
    if (!timing.empty()) {
      truncate_at(path + ".timing", timing.size() - (rng() % (timing.size() + 1)));
    }

    // Resume at a different split; bytes must match the serial reference.
    CampaignOptions second;
    second.mode = CampaignOptions::Mode::kResume;
    second.quiet = true;
    second.jobs = 1 + static_cast<int>(rng() % 2);
    second.point_jobs = 1 + static_cast<int>(rng() % 3);
    ASSERT_TRUE(run_campaign(spec, path, second, &stats, error)) << error;
    EXPECT_EQ(read_file(path), reference);

    // The rebuilt sidecar holds only whole, parsable lines in strictly
    // ascending point order — no torn or stale lines survive the crash. It
    // may hold fewer lines than the store: a timing line truncated away for
    // an already-completed point is gone for good (wall time cannot be
    // remeasured), which is why timing lives outside the primary store.
    StoreScan scan;
    ASSERT_TRUE(scan_store(path, spec_hash(spec), scan, error)) << error;
    const std::string sidecar = read_file(path + ".timing");
    std::size_t lines = 0;
    std::size_t start = 0;
    int last_point = -1;
    while (start < sidecar.size()) {
      const std::size_t newline = sidecar.find('\n', start);
      ASSERT_NE(newline, std::string::npos) << "torn sidecar line survived";
      JsonValue parsed;
      ASSERT_TRUE(parse_json(sidecar.substr(start, newline - start), parsed, error)) << error;
      const JsonValue* point = parsed.find("point");
      ASSERT_NE(point, nullptr);
      EXPECT_GT(static_cast<int>(point->number), last_point) << "sidecar out of point order";
      last_point = static_cast<int>(point->number);
      ++lines;
      start = newline + 1;
    }
    EXPECT_LE(lines, scan.records.size());
  }
}

}  // namespace
}  // namespace nomc::exp
