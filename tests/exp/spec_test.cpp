#include "exp/spec.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>

namespace nomc::exp {
namespace {

CampaignSpec parse_ok(const std::string& text) {
  CampaignSpec spec;
  SpecError error;
  EXPECT_TRUE(parse_campaign(text, spec, error)) << error.str();
  return spec;
}

SpecError parse_fail(const std::string& text) {
  CampaignSpec spec;
  SpecError error;
  EXPECT_FALSE(parse_campaign(text, spec, error));
  return error;
}

TEST(Spec, EmptySpecYieldsDefaults) {
  const CampaignSpec spec = parse_ok("");
  EXPECT_EQ(spec.name, "campaign");
  EXPECT_EQ(spec.base.scheme, "dcn");
  EXPECT_EQ(spec.base.topology, "dense");
  EXPECT_EQ(spec.base.channels, 6);
  EXPECT_FALSE(spec.base.power_dbm.has_value());
  EXPECT_TRUE(spec.axes.empty());
  EXPECT_EQ(expand_grid(spec).size(), 1u);
}

TEST(Spec, BaseAssignmentsCommentsAndBlanks) {
  const CampaignSpec spec = parse_ok(
      "# a comment\n"
      "name = my_campaign\n"
      "\n"
      "scheme = fixed   # trailing comment\n"
      "cfd = 2.5\n"
      "channels = 4\n"
      "power = -10\n"
      "seed = 42\n"
      "trials = 7\n");
  EXPECT_EQ(spec.name, "my_campaign");
  EXPECT_EQ(spec.base.scheme, "fixed");
  EXPECT_DOUBLE_EQ(spec.base.cfd_mhz, 2.5);
  EXPECT_EQ(spec.base.channels, 4);
  ASSERT_TRUE(spec.base.power_dbm.has_value());
  EXPECT_DOUBLE_EQ(*spec.base.power_dbm, -10.0);
  EXPECT_EQ(spec.base.seed, 42u);
  EXPECT_EQ(spec.base.trials, 7);
}

TEST(Spec, PowerRandomClearsFixedPower) {
  const CampaignSpec spec = parse_ok("power = random\n");
  EXPECT_FALSE(spec.base.power_dbm.has_value());
}

TEST(Spec, SingleSweepExpandsInOrder) {
  const CampaignSpec spec = parse_ok("sweep cfd = 9 5 3\n");
  const auto points = expand_grid(spec);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].params.cfd_mhz, 9.0);
  EXPECT_DOUBLE_EQ(points[1].params.cfd_mhz, 5.0);
  EXPECT_DOUBLE_EQ(points[2].params.cfd_mhz, 3.0);
  EXPECT_EQ(points[2].index, 2);
  ASSERT_EQ(points[0].assignment.size(), 1u);
  EXPECT_EQ(points[0].assignment[0].first, "cfd");
  EXPECT_EQ(points[0].assignment[0].second, "9");
}

TEST(Spec, LockstepSweepStepsKeysTogether) {
  const CampaignSpec spec = parse_ok("sweep cfd/channels = 9/1 3/4\n");
  const auto points = expand_grid(spec);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].params.cfd_mhz, 9.0);
  EXPECT_EQ(points[0].params.channels, 1);
  EXPECT_DOUBLE_EQ(points[1].params.cfd_mhz, 3.0);
  EXPECT_EQ(points[1].params.channels, 4);
}

TEST(Spec, CartesianProductFirstAxisOutermost) {
  const CampaignSpec spec = parse_ok(
      "sweep channels = 5 6\n"
      "sweep scheme = fixed dcn\n");
  const auto points = expand_grid(spec);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].params.channels, 5);
  EXPECT_EQ(points[0].params.scheme, "fixed");
  EXPECT_EQ(points[1].params.channels, 5);
  EXPECT_EQ(points[1].params.scheme, "dcn");
  EXPECT_EQ(points[2].params.channels, 6);
  EXPECT_EQ(points[2].params.scheme, "fixed");
  EXPECT_EQ(points[3].params.channels, 6);
  EXPECT_EQ(points[3].params.scheme, "dcn");
}

TEST(Spec, SweepOverridesBaseAssignment) {
  const CampaignSpec spec = parse_ok(
      "channels = 2\n"
      "sweep channels = 3 4\n");
  const auto points = expand_grid(spec);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].params.channels, 3);
}

// -- Error reporting: every failure names its line --------------------------

TEST(Spec, UnknownKeyReportsLine) {
  const SpecError error = parse_fail("cfd = 3\nbanana = 7\n");
  EXPECT_EQ(error.line, 2);
  EXPECT_NE(error.message.find("unknown key"), std::string::npos);
  EXPECT_NE(error.str().find("line 2"), std::string::npos);
}

TEST(Spec, MalformedNumberReportsLine) {
  const SpecError error = parse_fail("\n\ncfd = three\n");
  EXPECT_EQ(error.line, 3);
  EXPECT_NE(error.message.find("not a number"), std::string::npos);
}

TEST(Spec, MissingEqualsReportsLine) {
  const SpecError error = parse_fail("cfd 3\n");
  EXPECT_EQ(error.line, 1);
}

TEST(Spec, UnknownSchemeValueReportsLine) {
  const SpecError error = parse_fail("scheme = zigbee\n");
  EXPECT_EQ(error.line, 1);
  EXPECT_NE(error.message.find("unknown scheme"), std::string::npos);
}

TEST(Spec, LockstepArityMismatchReportsLine) {
  const SpecError error = parse_fail("trials = 3\nsweep cfd/channels = 9/1 5\n");
  EXPECT_EQ(error.line, 2);
  EXPECT_NE(error.message.find("1 value(s) for 2 key(s)"), std::string::npos);
}

TEST(Spec, EmptySweepReportsLine) {
  const SpecError error = parse_fail("sweep cfd =\n");
  EXPECT_EQ(error.line, 1);
  EXPECT_NE(error.message.find("no values"), std::string::npos);
}

TEST(Spec, DoublySweptKeyReportsLine) {
  const SpecError error = parse_fail("sweep cfd = 1 2\nsweep cfd = 3 4\n");
  EXPECT_EQ(error.line, 2);
  EXPECT_NE(error.message.find("more than one sweep"), std::string::npos);
}

TEST(Spec, DuplicateBaseKeyReportsLine) {
  const SpecError error = parse_fail("cfd = 3\ncfd = 4\n");
  EXPECT_EQ(error.line, 2);
  EXPECT_NE(error.message.find("duplicate"), std::string::npos);
}

TEST(Spec, OutOfRangeValueReportsLine) {
  const SpecError error = parse_fail("trials = 0\n");
  EXPECT_EQ(error.line, 1);
  EXPECT_NE(error.message.find("out of range"), std::string::npos);
}

TEST(Spec, BadSweepValueReportsLine) {
  const SpecError error = parse_fail("sweep channels = 4 none\n");
  EXPECT_EQ(error.line, 1);
}

TEST(Spec, BadCampaignNameReportsLine) {
  const SpecError error = parse_fail("name = has space\n");
  EXPECT_EQ(error.line, 1);
  EXPECT_NE(error.message.find("name"), std::string::npos);
}

TEST(Spec, NegativeSeedRejected) {
  const SpecError error = parse_fail("seed = -1\n");
  EXPECT_EQ(error.line, 1);
}

TEST(Spec, LoadMissingFileFailsWithoutLine) {
  CampaignSpec spec;
  SpecError error;
  EXPECT_FALSE(load_campaign("/nonexistent/path.campaign", spec, error));
  EXPECT_EQ(error.line, 0);
  EXPECT_EQ(error.str().find("line"), std::string::npos);
}

// -- Grid budget -----------------------------------------------------------

std::string sweep_line(const std::string& key, int values) {
  std::string line = "sweep " + key + " =";
  for (int i = 1; i <= values; ++i) line += " " + std::to_string(i);
  return line + "\n";
}

TEST(Spec, GridWithinBudgetAccepted) {
  // 1024 * 2 * 512 = exactly kMaxGridPoints: the budget is inclusive.
  const CampaignSpec spec =
      parse_ok(sweep_line("trials", 1024) + sweep_line("channels", 2) + sweep_line("psdu", 512));
  std::size_t total = 1;
  for (const SweepAxis& axis : spec.axes) total *= axis.steps.size();
  EXPECT_EQ(total, kMaxGridPoints);
}

TEST(Spec, OversizedGridReportsOffendingSweepLine) {
  // 256 * 256 fits; the third axis multiplies past the budget and line 4
  // (not line 1) must carry the blame.
  const SpecError error = parse_fail("name = big\n" + sweep_line("cfd", 256) +
                                     sweep_line("channels", 256) + sweep_line("psdu", 17));
  EXPECT_EQ(error.line, 4);
  EXPECT_NE(error.message.find("sweep grid exceeds"), std::string::npos);
  EXPECT_NE(error.message.find(std::to_string(kMaxGridPoints)), std::string::npos);
  EXPECT_NE(error.message.find("multiplies the grid by 17"), std::string::npos);
}

TEST(Spec, OverflowProofProductRejectsHugeAxes) {
  // 2047 * 2048 overflows the budget but not std::size_t; the divide-based
  // check must reject it on the second sweep line without wrapping.
  const SpecError error =
      parse_fail(sweep_line("psdu", 2047) + sweep_line("trials", 1 << 11));
  EXPECT_EQ(error.line, 2);
  EXPECT_NE(error.message.find("sweep grid exceeds"), std::string::npos);
}

// -- format_campaign: canonical round-trip ----------------------------------

TEST(Spec, FormatParsesBackToSameGridAndHash) {
  const char* texts[] = {
      "",
      "name = rt\nscheme = fixed\ncfd = 2.5\npower = -7.25\nseed = 18446744073709551615\n",
      "power = random\ntrials = 9\nsweep cfd = 9 5 3\n",
      "sweep cfd/channels = 9/1 5/2 3/4\nsweep scheme = fixed dcn\n",
      "band-start = 902.5\nwarmup = 0.25\nmeasure = 1.5\ncca = -62.5\n"
      "links = 3\npsdu = 64\nsweep channels = 5 6 7\n",
  };
  for (const char* text : texts) {
    SCOPED_TRACE(text);
    const CampaignSpec spec = parse_ok(text);
    const std::string canonical = format_campaign(spec);
    const CampaignSpec reparsed = parse_ok(canonical);
    EXPECT_EQ(spec_hash(reparsed), spec_hash(spec));
    EXPECT_EQ(expand_grid(reparsed).size(), expand_grid(spec).size());
    // Idempotent: formatting the reparse reproduces the canonical text.
    EXPECT_EQ(format_campaign(reparsed), canonical);
  }
}

TEST(Spec, FormatRoundTripsRandomSpecs) {
  // Property check over generated specs: format -> parse preserves the hash
  // (i.e. every semantically relevant field survives) and is idempotent.
  // Fixed-seed generator for property-test inputs, not simulation
  // randomness — every round is reproducible from the literal seed.
  // nomc-lint: allow(det-rand)
  std::mt19937_64 rng{20260805};
  for (int round = 0; round < 50; ++round) {
    std::string text = "name = prop_" + std::to_string(round) + "\n";
    text += "scheme = " + std::string{rng() % 2 ? "dcn" : "fixed"} + "\n";
    text += "cfd = " + std::to_string(1 + rng() % 9) + "\n";
    text += "channels = " + std::to_string(1 + rng() % 6) + "\n";
    text += "trials = " + std::to_string(1 + rng() % 5) + "\n";
    text += "seed = " + std::to_string(rng()) + "\n";
    if (rng() % 2) {
      text += "power = " +
              std::string{rng() % 2 ? "random" : std::to_string(-10 + (int)(rng() % 21))} + "\n";
    }
    if (rng() % 2) text += sweep_line("psdu", 2 + (int)(rng() % 3));
    if (rng() % 2) text += "sweep scheme = fixed dcn\n";
    if (rng() % 2) {
      text += "sweep cfd/channels =";
      const int steps = 2 + (int)(rng() % 3);
      for (int s = 0; s < steps; ++s) {
        text += " " + std::to_string(1 + rng() % 9) + "/" + std::to_string(1 + rng() % 6);
      }
      text += "\n";
    }
    SCOPED_TRACE(text);
    const CampaignSpec spec = parse_ok(text);
    const std::string canonical = format_campaign(spec);
    const CampaignSpec reparsed = parse_ok(canonical);
    EXPECT_EQ(spec_hash(reparsed), spec_hash(spec));
    EXPECT_EQ(format_campaign(reparsed), canonical);
  }
}

// -- Hashing ---------------------------------------------------------------

TEST(Spec, HashStableAcrossReparses) {
  const std::string text = "name = h\nsweep cfd = 3 5\n";
  EXPECT_EQ(spec_hash(parse_ok(text)), spec_hash(parse_ok(text)));
  EXPECT_EQ(spec_hash(parse_ok(text)).size(), 16u);
}

TEST(Spec, HashSeesEveryField) {
  const std::string base = "name = h\ncfd = 3\n";
  const std::string hash = spec_hash(parse_ok(base));
  EXPECT_NE(hash, spec_hash(parse_ok("name = h\ncfd = 4\n")));
  EXPECT_NE(hash, spec_hash(parse_ok("name = i\ncfd = 3\n")));
  EXPECT_NE(hash, spec_hash(parse_ok("name = h\ncfd = 3\nsweep channels = 2 3\n")));
  EXPECT_NE(spec_hash(parse_ok("power = 0\n")), spec_hash(parse_ok("power = random\n")));
}

TEST(Spec, HashIgnoresCommentsAndSpacing) {
  EXPECT_EQ(spec_hash(parse_ok("cfd = 3\n")), spec_hash(parse_ok("# hi\n  cfd=3  # x\n")));
}

}  // namespace
}  // namespace nomc::exp
