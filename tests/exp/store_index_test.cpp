// StoreIndex tests: sidecar build/reuse, every leg of the crash-tolerance
// contract (torn store tails, torn/corrupt/stale sidecars, in-place store
// rewrites), a randomized index-vs-linear-scan equivalence fuzz, and the
// byte-equality of the streamed CSV exporter against exp::export_csv.
#include "exp/store_index.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "exp/result_store.hpp"

namespace nomc::exp {
namespace {

constexpr const char* kHash = "00000000000000aa";

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "nomc_idx_" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), file), content.size());
  std::fclose(file);
}

std::string read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return {};
  std::string out;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) out.append(buffer, got);
  std::fclose(file);
  return out;
}

/// A valid v1 record line (no newline) for `point`; `filler` varies the
/// length so offsets differ between runs of the fuzz.
std::string record_line(int point, int filler = 1, const std::string& hash = kHash) {
  std::string line = R"({"v":1,"campaign":"c","spec_hash":")" + hash +
                     R"(","point":)" + std::to_string(point) +
                     R"(,"sweep":{"cfd":")" + std::to_string(filler) +
                     R"("},"params":{},"per_network":{"pps":[)" + std::to_string(filler) +
                     R"(],"prr":[1],"backoffs_per_s":[0],"drops_per_s":[0]},)" +
                     R"("overall_pps":)" + std::to_string(filler) + R"(,"jain":1})";
  return line;
}

TEST(StoreIndex, BuildsFromScratchAndPersistsSidecar) {
  const std::string store = temp_path("build.jsonl");
  const std::string line0 = record_line(0);
  const std::string line1 = record_line(1, 23);
  write_file(store, line0 + "\n" + line1 + "\n");
  std::remove(StoreIndex::index_path(store).c_str());

  StoreIndex index;
  std::string error;
  ASSERT_TRUE(index.open(store, kHash, error)) << error;
  ASSERT_EQ(index.entries().size(), 2u);
  EXPECT_EQ(index.entries()[0].offset, 0u);
  EXPECT_EQ(index.entries()[0].length, line0.size() + 1);
  EXPECT_EQ(index.entries()[1].offset, line0.size() + 1);
  EXPECT_EQ(index.covered(), line0.size() + line1.size() + 2);
  EXPECT_FALSE(index.truncated_tail());

  const std::string sidecar = read_file(StoreIndex::index_path(store));
  EXPECT_EQ(sidecar, "nomc-idx 1\n" + std::string{kHash} + " 0 0 " +
                         std::to_string(line0.size() + 1) + "\n" + kHash + " 1 " +
                         std::to_string(line0.size() + 1) + " " +
                         std::to_string(line1.size() + 1) + "\n");

  // Reopen: the sidecar is trusted verbatim (spot-checked), same view.
  StoreIndex again;
  ASSERT_TRUE(again.open(store, kHash, error)) << error;
  EXPECT_EQ(again.entries().size(), 2u);
}

TEST(StoreIndex, FindAndReadLine) {
  const std::string store = temp_path("find.jsonl");
  const std::string line1 = record_line(1, 7);
  write_file(store, record_line(0) + "\n" + line1 + "\n");
  std::remove(StoreIndex::index_path(store).c_str());

  StoreIndex index;
  std::string error;
  ASSERT_TRUE(index.open(store, kHash, error)) << error;
  const StoreIndex::Entry* entry = index.find(kHash, 1);
  ASSERT_NE(entry, nullptr);
  std::string line;
  ASSERT_TRUE(index.read_line(*entry, line, error)) << error;
  EXPECT_EQ(line, line1);
  ResultRecord record;
  ASSERT_TRUE(index.read_record(*entry, record, error)) << error;
  EXPECT_EQ(record.point, 1);
  EXPECT_EQ(index.find(kHash, 2), nullptr);
  EXPECT_EQ(index.find("00000000000000bb", 1), nullptr);
  EXPECT_TRUE(index.contains(kHash, 0));
}

TEST(StoreIndex, TornStoreTailIsDroppedLikeScanStore) {
  const std::string store = temp_path("torn_store.jsonl");
  const std::string line0 = record_line(0);
  const std::string partial = record_line(1).substr(0, 40);  // kill mid-write
  write_file(store, line0 + "\n" + partial);
  std::remove(StoreIndex::index_path(store).c_str());

  StoreIndex index;
  std::string error;
  ASSERT_TRUE(index.open(store, kHash, error)) << error;
  EXPECT_EQ(index.entries().size(), 1u);
  EXPECT_TRUE(index.truncated_tail());
  EXPECT_EQ(index.covered(), line0.size() + 1);

  StoreScan scan;
  ASSERT_TRUE(scan_store(store, kHash, scan, error)) << error;
  EXPECT_EQ(scan.records.size(), index.entries().size());
  EXPECT_EQ(scan.truncated_tail, index.truncated_tail());
}

TEST(StoreIndex, InteriorStoreDamageIsAnErrorNotATruncation) {
  const std::string store = temp_path("interior.jsonl");
  write_file(store, record_line(0) + "\n{broken}\n" + record_line(2) + "\n");
  std::remove(StoreIndex::index_path(store).c_str());

  StoreIndex index;
  std::string error;
  EXPECT_FALSE(index.open(store, kHash, error));
  EXPECT_NE(error.find(store), std::string::npos);
}

TEST(StoreIndex, TornSidecarFinalLineIsRepaired) {
  const std::string store = temp_path("torn_idx.jsonl");
  const std::string line0 = record_line(0);
  const std::string line1 = record_line(1, 55);
  write_file(store, line0 + "\n" + line1 + "\n");

  // Sidecar killed mid-append: entry 0 is complete, entry 1 has no newline.
  const std::string torn = "nomc-idx 1\n" + std::string{kHash} + " 0 0 " +
                           std::to_string(line0.size() + 1) + "\n" + kHash + " 1 " +
                           std::to_string(line0.size() + 1);
  write_file(StoreIndex::index_path(store), torn);

  StoreIndex index;
  std::string error;
  ASSERT_TRUE(index.open(store, kHash, error)) << error;
  ASSERT_EQ(index.entries().size(), 2u);  // entry 1 re-derived from the tail
  EXPECT_EQ(index.entries()[1].length, line1.size() + 1);
  // The repaired sidecar is persisted complete.
  const std::string repaired = read_file(StoreIndex::index_path(store));
  EXPECT_EQ(repaired.back(), '\n');
  EXPECT_NE(repaired.find(" 1 "), std::string::npos);
}

TEST(StoreIndex, CorruptOrAlienSidecarIsDiscarded) {
  const std::string store = temp_path("corrupt_idx.jsonl");
  write_file(store, record_line(0) + "\n" + record_line(1) + "\n");

  for (const char* junk : {
           "not an index at all\n",                         // bad header
           "nomc-idx 1\ngarbage interior line\nx 1 0 5\n",  // interior damage
           "nomc-idx 1\n00000000000000aa 0 7 10\n",         // non-contiguous
       }) {
    write_file(StoreIndex::index_path(store), junk);
    StoreIndex index;
    std::string error;
    ASSERT_TRUE(index.open(store, kHash, error)) << error << " for " << junk;
    EXPECT_EQ(index.entries().size(), 2u) << junk;
    EXPECT_TRUE(index.contains(kHash, 0)) << junk;
    EXPECT_TRUE(index.contains(kHash, 1)) << junk;
  }
}

TEST(StoreIndex, SidecarCoveragePastEofTriggersRebuild) {
  const std::string store = temp_path("shrunk.jsonl");
  const std::string line0 = record_line(0);
  write_file(store, line0 + "\n" + record_line(1) + "\n");
  StoreIndex index;
  std::string error;
  ASSERT_TRUE(index.open(store, kHash, error)) << error;
  index.close();

  // The store shrinks (overwrite with fewer points): the stale sidecar
  // claims coverage past EOF and must be rebuilt, not trusted.
  write_file(store, line0 + "\n");
  ASSERT_TRUE(index.open(store, kHash, error)) << error;
  EXPECT_EQ(index.entries().size(), 1u);
  EXPECT_FALSE(index.contains(kHash, 1));
}

TEST(StoreIndex, SameLengthRewriteCaughtBySpotCheck) {
  const std::string store = temp_path("rewrite.jsonl");
  const std::string line1 = record_line(1, 55);
  write_file(store, record_line(0) + "\n" + line1 + "\n");
  StoreIndex index;
  std::string error;
  ASSERT_TRUE(index.open(store, kHash, error)) << error;
  index.close();

  // Rewrite the last record in place, same byte length, different point
  // (1 -> 2). Coverage still matches; only the spot-check can notice.
  std::string moved = line1;
  const std::size_t at = moved.find("\"point\":1");
  ASSERT_NE(at, std::string::npos);
  moved.replace(at, 9, "\"point\":2");
  ASSERT_EQ(moved.size(), line1.size());
  write_file(store, record_line(0) + "\n" + moved + "\n");

  ASSERT_TRUE(index.open(store, kHash, error)) << error;
  EXPECT_TRUE(index.contains(kHash, 2));
  EXPECT_FALSE(index.contains(kHash, 1));
}

TEST(StoreIndex, SpecHashMismatchIsAnError) {
  const std::string store = temp_path("mismatch.jsonl");
  write_file(store, record_line(0) + "\n");
  std::remove(StoreIndex::index_path(store).c_str());
  StoreIndex index;
  std::string error;
  EXPECT_FALSE(index.open(store, "00000000000000bb", error));
  EXPECT_NE(error.find("different spec"), std::string::npos);
}

TEST(StoreIndex, MissingStoreIsAnError) {
  StoreIndex index;
  std::string error;
  EXPECT_FALSE(index.open(temp_path("nonexistent.jsonl"), kHash, error));
}

// Kill-during-append at the file level: the store grows a complete record
// plus a torn one after the sidecar was written (exactly what a crashed
// campaign leaves behind), then a resume replaces the torn tail with the
// finished record. The index must track both transitions.
TEST(StoreIndex, KillDuringAppendThenResume) {
  const std::string store = temp_path("kill_resume.jsonl");
  const std::string line0 = record_line(0);
  const std::string line1 = record_line(1, 9);
  const std::string line2 = record_line(2, 123);
  write_file(store, line0 + "\n");
  StoreIndex index;
  std::string error;
  ASSERT_TRUE(index.open(store, kHash, error)) << error;  // sidecar covers line0
  index.close();

  // Crash: one full append and one torn one land after the sidecar's view.
  write_file(store, line0 + "\n" + line1 + "\n" + line2.substr(0, 30));
  ASSERT_TRUE(index.open(store, kHash, error)) << error;
  EXPECT_EQ(index.entries().size(), 2u);
  EXPECT_TRUE(index.truncated_tail());
  EXPECT_TRUE(index.contains(kHash, 1));
  EXPECT_FALSE(index.contains(kHash, 2));
  index.close();

  // Resume: valid prefix preserved verbatim, torn point recomputed.
  write_file(store, line0 + "\n" + line1 + "\n" + line2 + "\n");
  ASSERT_TRUE(index.open(store, kHash, error)) << error;
  EXPECT_EQ(index.entries().size(), 3u);
  EXPECT_FALSE(index.truncated_tail());
  std::string line;
  ASSERT_TRUE(index.read_line(*index.find(kHash, 2), line, error)) << error;
  EXPECT_EQ(line, line2);
}

// Randomized equivalence: for arbitrary stores (random sizes, lengths,
// duplicate points, torn tails, junk sidecars), the index must agree with
// scan_store record-for-record, byte-for-byte.
TEST(StoreIndex, MatchesLinearScanOnRandomStores) {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;  // fixed seed: deterministic
  const auto next = [&state](std::uint64_t bound) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return (state >> 33) % bound;
  };

  for (int round = 0; round < 40; ++round) {
    const std::string store = temp_path("fuzz.jsonl");
    const int count = static_cast<int>(next(12));
    std::string content;
    for (int i = 0; i < count; ++i) {
      // Duplicate points appear with ~1/4 probability; last record wins.
      const int point = next(4) == 0 && i > 0 ? static_cast<int>(next(i)) : i;
      content += record_line(point, static_cast<int>(next(100000)) + 1);
      content += '\n';
    }
    const bool torn = count > 0 && next(3) == 0;
    if (torn) content += record_line(count, 1).substr(0, 20 + next(30));
    write_file(store, content);

    // A third of the rounds inherit a hostile sidecar.
    const std::string sidecar_path = StoreIndex::index_path(store);
    std::remove(sidecar_path.c_str());
    if (next(3) == 0) {
      std::string junk = next(2) == 0 ? "nomc-idx 1\n" : "";
      for (std::uint64_t i = 0; i < next(4); ++i) {
        junk += kHash + std::string{" "} + std::to_string(next(10)) + " " +
                std::to_string(next(400)) + " " + std::to_string(next(200) + 1) + "\n";
      }
      write_file(sidecar_path, junk);
    }

    StoreScan scan;
    StoreIndex index;
    std::string error;
    ASSERT_TRUE(scan_store(store, kHash, scan, error)) << error;
    ASSERT_TRUE(index.open(store, kHash, error)) << error;

    ASSERT_EQ(index.entries().size(), scan.records.size()) << "round " << round;
    EXPECT_EQ(index.truncated_tail(), scan.truncated_tail) << "round " << round;
    for (const int point : scan.completed) {
      // Linear-scan convention: the last record for a point is current.
      const ResultRecord* last = nullptr;
      for (const ResultRecord& record : scan.records) {
        if (record.point == point) last = &record;
      }
      ASSERT_NE(last, nullptr);
      const StoreIndex::Entry* entry = index.find(kHash, point);
      ASSERT_NE(entry, nullptr) << "round " << round << " point " << point;
      ResultRecord via_index;
      ASSERT_TRUE(index.read_record(*entry, via_index, error)) << error;
      EXPECT_EQ(via_index.sweep, last->sweep) << "round " << round;
      EXPECT_EQ(via_index.overall_pps, last->overall_pps) << "round " << round;
    }
  }
}

// The streamed exporter must emit byte-identical CSV to the in-memory one —
// they share the row builders, this guards the plumbing around them.
TEST(StoreIndex, StreamedCsvMatchesExportCsv) {
  const std::string store = temp_path("csv.jsonl");
  write_file(store,
             record_line(0) + "\n" + record_line(1, 42) + "\n" + record_line(2, 7) + "\n");
  std::remove(StoreIndex::index_path(store).c_str());

  StoreScan scan;
  std::string error;
  ASSERT_TRUE(scan_store(store, kHash, scan, error)) << error;
  std::FILE* whole = std::tmpfile();
  ASSERT_NE(whole, nullptr);
  ASSERT_TRUE(export_csv(scan.records, whole));

  StoreIndex index;
  ASSERT_TRUE(index.open(store, kHash, error)) << error;
  std::FILE* streamed = std::tmpfile();
  ASSERT_NE(streamed, nullptr);
  ASSERT_TRUE(export_csv_indexed(index, streamed, error)) << error;

  const auto slurp = [](std::FILE* file) {
    std::string out;
    std::rewind(file);
    char buffer[4096];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) out.append(buffer, got);
    return out;
  };
  const std::string a = slurp(whole);
  const std::string b = slurp(streamed);
  std::fclose(whole);
  std::fclose(streamed);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace nomc::exp
