#include "exp/result_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace nomc::exp {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "nomc_store_" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), file), content.size());
  std::fclose(file);
}

const char* kRecordA =
    R"({"v":1,"campaign":"c","spec_hash":"00000000000000aa","point":0,)"
    R"("sweep":{"cfd":"9"},"params":{},)"
    R"("per_network":{"pps":[10,20],"prr":[0.5,0.25],"backoffs_per_s":[1,2],)"
    R"("drops_per_s":[3,4]},"overall_pps":30,"jain":0.9})";
const char* kRecordB =
    R"({"v":1,"campaign":"c","spec_hash":"00000000000000aa","point":1,)"
    R"("sweep":{"cfd":"5"},"params":{},)"
    R"("per_network":{"pps":[7],"prr":[1],"backoffs_per_s":[0],)"
    R"("drops_per_s":[0]},"overall_pps":7,"jain":1})";

// -- JSON subset parser ----------------------------------------------------

TEST(Json, ParsesScalarsArraysObjects) {
  JsonValue value;
  std::string error;
  ASSERT_TRUE(parse_json(R"({"a":1.5,"b":"x\n","c":[1,2],"d":true,"e":null})", value, error))
      << error;
  ASSERT_EQ(value.type, JsonValue::Type::kObject);
  ASSERT_NE(value.find("a"), nullptr);
  EXPECT_DOUBLE_EQ(value.find("a")->number, 1.5);
  EXPECT_EQ(value.find("b")->string, "x\n");
  ASSERT_EQ(value.find("c")->array.size(), 2u);
  EXPECT_TRUE(value.find("d")->boolean);
  EXPECT_EQ(value.find("e")->type, JsonValue::Type::kNull);
  EXPECT_EQ(value.find("missing"), nullptr);
}

TEST(Json, RejectsGarbage) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(parse_json("{", value, error));
  EXPECT_FALSE(parse_json(R"({"a":})", value, error));
  EXPECT_FALSE(parse_json(R"({"a":1} trailing)", value, error));
  EXPECT_FALSE(parse_json("", value, error));
}

TEST(Json, StringEscapingRoundTrips) {
  std::string out;
  json_append_string(out, "a\"b\\c\nd");
  JsonValue value;
  std::string error;
  ASSERT_TRUE(parse_json(out, value, error)) << error;
  EXPECT_EQ(value.string, "a\"b\\c\nd");
}

TEST(Json, DoubleFormattingRoundTrips) {
  for (const double x : {0.1, 1.0 / 3.0, 756.23456789012345, -77.0}) {
    std::string out;
    json_append_double(out, x);
    JsonValue value;
    std::string error;
    ASSERT_TRUE(parse_json(out, value, error));
    EXPECT_EQ(value.number, x) << out;
  }
}

// -- Record parsing --------------------------------------------------------

TEST(Store, ParseRecordReadsAllFields) {
  ResultRecord record;
  std::string error;
  ASSERT_TRUE(parse_record(kRecordA, record, error)) << error;
  EXPECT_EQ(record.version, kStoreVersion);
  EXPECT_EQ(record.campaign, "c");
  EXPECT_EQ(record.spec_hash, "00000000000000aa");
  EXPECT_EQ(record.point, 0);
  ASSERT_EQ(record.sweep.size(), 1u);
  EXPECT_EQ(record.sweep[0].first, "cfd");
  EXPECT_EQ(record.sweep[0].second, "9");
  ASSERT_EQ(record.pps.size(), 2u);
  EXPECT_DOUBLE_EQ(record.pps[1], 20.0);
  EXPECT_DOUBLE_EQ(record.prr[1], 0.25);
  EXPECT_DOUBLE_EQ(record.overall_pps, 30.0);
  EXPECT_DOUBLE_EQ(record.jain, 0.9);
}

TEST(Store, ParseRecordRejectsWrongVersion) {
  ResultRecord record;
  std::string error;
  EXPECT_FALSE(parse_record(R"({"v":99,"campaign":"c","spec_hash":"x","point":0})", record,
                            error));
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(Store, ParseRecordRejectsMissingFields) {
  ResultRecord record;
  std::string error;
  EXPECT_FALSE(parse_record(R"({"v":1,"point":0})", record, error));
  EXPECT_FALSE(parse_record("not json", record, error));
}

// -- Store scanning --------------------------------------------------------

TEST(Store, ScanReadsCompletedPoints) {
  const std::string path = temp_path("scan.jsonl");
  write_file(path, std::string{kRecordA} + "\n" + kRecordB + "\n");
  StoreScan scan;
  std::string error;
  ASSERT_TRUE(scan_store(path, "00000000000000aa", scan, error)) << error;
  EXPECT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.completed.count(0), 1u);
  EXPECT_EQ(scan.completed.count(1), 1u);
  EXPECT_FALSE(scan.truncated_tail);
  EXPECT_EQ(scan.valid_prefix, std::string{kRecordA} + "\n" + kRecordB + "\n");
}

TEST(Store, ScanDropsTornTrailingLine) {
  const std::string path = temp_path("torn.jsonl");
  write_file(path, std::string{kRecordA} + "\n" + R"({"v":1,"campaign":"c)");
  StoreScan scan;
  std::string error;
  ASSERT_TRUE(scan_store(path, "00000000000000aa", scan, error)) << error;
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.truncated_tail);
  EXPECT_EQ(scan.valid_prefix, std::string{kRecordA} + "\n");
}

TEST(Store, ScanRejectsGarbageInTheMiddle) {
  const std::string path = temp_path("garbage.jsonl");
  write_file(path, std::string{"garbage\n"} + kRecordA + "\n");
  StoreScan scan;
  std::string error;
  EXPECT_FALSE(scan_store(path, "", scan, error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(Store, ScanRejectsSpecHashMismatch) {
  const std::string path = temp_path("mismatch.jsonl");
  write_file(path, std::string{kRecordA} + "\n");
  StoreScan scan;
  std::string error;
  EXPECT_FALSE(scan_store(path, "00000000000000bb", scan, error));
  EXPECT_NE(error.find("different spec"), std::string::npos);
}

TEST(Store, ScanMissingFileFails) {
  StoreScan scan;
  std::string error;
  EXPECT_FALSE(scan_store(temp_path("never_written.jsonl"), "", scan, error));
}

// -- Writer ----------------------------------------------------------------

TEST(Store, WriterAppendsAndTruncates) {
  const std::string path = temp_path("writer.jsonl");
  std::string error;
  {
    StoreWriter writer;
    ASSERT_TRUE(writer.open(path, /*truncate=*/true, error)) << error;
    ASSERT_TRUE(writer.append_line(kRecordA, error));
  }
  {
    StoreWriter writer;
    ASSERT_TRUE(writer.open(path, /*truncate=*/false, error));
    ASSERT_TRUE(writer.append_line(kRecordB, error));
  }
  StoreScan scan;
  ASSERT_TRUE(scan_store(path, "", scan, error)) << error;
  EXPECT_EQ(scan.records.size(), 2u);

  StoreWriter writer;
  ASSERT_TRUE(writer.open(path, /*truncate=*/true, error));
  writer.close();
  ASSERT_TRUE(scan_store(path, "", scan, error));
  EXPECT_TRUE(scan.records.empty());
}

// -- CSV export ------------------------------------------------------------

TEST(Store, CsvEscape) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Store, ExportCsvLongFormat) {
  ResultRecord a;
  std::string error;
  ASSERT_TRUE(parse_record(kRecordA, a, error));
  ResultRecord b;
  ASSERT_TRUE(parse_record(kRecordB, b, error));

  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  ASSERT_TRUE(export_csv({a, b}, tmp));
  std::rewind(tmp);
  std::string content(16384, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), tmp));
  std::fclose(tmp);

  // Header + 2 networks of record A + 1 network of record B.
  EXPECT_NE(content.find("campaign,point,cfd,network,pps,prr,backoffs_per_s,drops_per_s,"
                         "overall_pps,jain\n"),
            std::string::npos);
  EXPECT_NE(content.find("c,0,9,0,10,"), std::string::npos);
  EXPECT_NE(content.find("c,0,9,1,20,"), std::string::npos);
  EXPECT_NE(content.find("c,1,5,0,7,"), std::string::npos);
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 4);
}

// The column schema is a public contract: downstream notebooks select by
// name AND position. These bytes may gain trailing columns but never reorder.
TEST(Store, CsvHeaderBytesArePinned) {
  EXPECT_EQ(csv_header({}),
            "campaign,point,network,pps,prr,backoffs_per_s,drops_per_s,overall_pps,jain\n");
  EXPECT_EQ(csv_header({"cfd", "channels"}),
            "campaign,point,cfd,channels,network,pps,prr,backoffs_per_s,drops_per_s,"
            "overall_pps,jain\n");
  // Sweep-key columns appear in the order given (first-seen order in
  // export_csv), not sorted — and are escaped like any other field.
  EXPECT_EQ(csv_header({"b,key", "a"}),
            "campaign,point,\"b,key\",a,network,pps,prr,backoffs_per_s,drops_per_s,"
            "overall_pps,jain\n");
}

TEST(Store, ExportCsvUsesFirstSeenSweepKeyOrder) {
  ResultRecord a;
  std::string error;
  ASSERT_TRUE(parse_record(kRecordA, a, error));
  a.sweep = {{"zeta", "1"}, {"alpha", "2"}};

  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  ASSERT_TRUE(export_csv({a}, tmp));
  std::rewind(tmp);
  std::string content(4096, '\0');
  content.resize(std::fread(content.data(), 1, content.size(), tmp));
  std::fclose(tmp);
  EXPECT_EQ(content.substr(0, content.find('\n') + 1), csv_header({"zeta", "alpha"}));
  EXPECT_NE(content.find("c,0,1,2,0,"), std::string::npos);  // zeta=1 before alpha=2
}

// -- Ordered checkpointing -------------------------------------------------

struct CheckpointerFixture {
  std::string path;
  StoreWriter store;
  StoreWriter timing;

  explicit CheckpointerFixture(const std::string& name) : path{temp_path(name)} {
    std::string error;
    EXPECT_TRUE(store.open(path, /*truncate=*/true, error)) << error;
    EXPECT_TRUE(timing.open(path + ".timing", /*truncate=*/true, error)) << error;
  }

  std::string store_bytes() {
    store.close();
    std::FILE* file = std::fopen(path.c_str(), "rb");
    EXPECT_NE(file, nullptr);
    std::string content(16384, '\0');
    content.resize(std::fread(content.data(), 1, content.size(), file));
    std::fclose(file);
    return content;
  }
};

TEST(Checkpointer, OutOfOrderSubmitsFlushInSlotOrder) {
  CheckpointerFixture fx{"ckpt_order.jsonl"};
  OrderedCheckpointer checkpointer{fx.store, fx.timing, 8};
  EXPECT_TRUE(checkpointer.submit(2, "r2", "t2", ""));
  EXPECT_TRUE(checkpointer.submit(0, "r0", "t0", ""));
  EXPECT_TRUE(checkpointer.submit(1, "r1", "t1", ""));
  std::string error;
  EXPECT_TRUE(checkpointer.finish(error)) << error;
  EXPECT_EQ(fx.store_bytes(), "r0\nr1\nr2\n");
}

TEST(Checkpointer, FinishReportsGap) {
  CheckpointerFixture fx{"ckpt_gap.jsonl"};
  OrderedCheckpointer checkpointer{fx.store, fx.timing, 8};
  EXPECT_TRUE(checkpointer.submit(0, "r0", "t0", ""));
  EXPECT_TRUE(checkpointer.submit(2, "r2", "t2", ""));
  std::string error;
  EXPECT_FALSE(checkpointer.finish(error));
  EXPECT_NE(error.find("missing slot 1"), std::string::npos);
  EXPECT_EQ(fx.store_bytes(), "r0\n");  // nothing written past the gap
}

TEST(Checkpointer, NextSlotSubmitterBypassesFullBuffer) {
  // max_pending = 1 and slot 1 arrives first, filling the buffer. Slot 0's
  // submit must not block on space — it is the submission that frees it.
  CheckpointerFixture fx{"ckpt_bypass.jsonl"};
  OrderedCheckpointer checkpointer{fx.store, fx.timing, 1};
  EXPECT_TRUE(checkpointer.submit(1, "r1", "t1", ""));
  EXPECT_TRUE(checkpointer.submit(0, "r0", "t0", ""));
  EXPECT_TRUE(checkpointer.submit(2, "r2", "t2", ""));
  std::string error;
  EXPECT_TRUE(checkpointer.finish(error)) << error;
  EXPECT_EQ(fx.store_bytes(), "r0\nr1\nr2\n");
}

TEST(Checkpointer, ConcurrentSubmittersSerializeInSlotOrder) {
  // 8 threads each submit one slot, deliberately biased so high slots tend
  // to arrive first; a tight bound of 2 forces real blocking. The store must
  // still come out in slot order. Run under TSan in CI.
  CheckpointerFixture fx{"ckpt_mt.jsonl"};
  OrderedCheckpointer checkpointer{fx.store, fx.timing, 2};
  constexpr int kSlots = 8;
  // Real threads on purpose: this test races submitters against the
  // checkpointer's blocking bound, which ParallelRunner's ordered index
  // hand-out cannot express.
  // nomc-lint: allow(det-raw-thread)
  std::vector<std::thread> threads;
  threads.reserve(kSlots);
  for (int slot = kSlots - 1; slot >= 0; --slot) {
    threads.emplace_back([&checkpointer, slot] {
      EXPECT_TRUE(checkpointer.submit(slot, "r" + std::to_string(slot),
                                      "t" + std::to_string(slot), ""));
    });
  }
  // nomc-lint: allow(det-raw-thread)
  for (std::thread& thread : threads) thread.join();
  std::string error;
  EXPECT_TRUE(checkpointer.finish(error)) << error;
  std::string expected;
  for (int slot = 0; slot < kSlots; ++slot) expected += "r" + std::to_string(slot) + "\n";
  EXPECT_EQ(fx.store_bytes(), expected);
}

}  // namespace
}  // namespace nomc::exp
