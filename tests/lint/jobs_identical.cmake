# ctest guard for nomc-lint's parallel determinism contract: a full repo
# scan must be byte-identical — stdout and exit code — at --jobs 1, 2, and 7.
# Run with:
#   cmake -DTOOL=<nomc-lint> -DREPO_ROOT=<repo> -P jobs_identical.cmake
if(NOT DEFINED TOOL OR NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "jobs_identical.cmake needs -DTOOL=... and -DREPO_ROOT=...")
endif()

set(reference_output "")
set(reference_code "")
foreach(jobs 1 2 7)
  execute_process(
    COMMAND ${TOOL} --jobs ${jobs} --verbose
    WORKING_DIRECTORY ${REPO_ROOT}
    OUTPUT_VARIABLE output
    ERROR_VARIABLE stderr_text
    RESULT_VARIABLE code)
  if(code EQUAL 2)
    message(FATAL_ERROR "nomc-lint --jobs ${jobs} failed to run:\n${stderr_text}")
  endif()
  if(jobs EQUAL 1)
    set(reference_output "${output}")
    set(reference_code "${code}")
  else()
    if(NOT output STREQUAL reference_output)
      message(FATAL_ERROR "nomc-lint output differs between --jobs 1 and --jobs ${jobs}:\n"
                          "--jobs 1 ->\n${reference_output}\n--jobs ${jobs} ->\n${output}")
    endif()
    if(NOT code EQUAL reference_code)
      message(FATAL_ERROR "nomc-lint exit code differs: --jobs 1 -> ${reference_code}, "
                          "--jobs ${jobs} -> ${code}")
    endif()
  endif()
endforeach()
message(STATUS "nomc-lint byte-identical at --jobs 1/2/7 (exit ${reference_code})")
