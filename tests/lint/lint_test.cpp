// nomc-lint test suite: tokenizer unit tests, fixture-driven rule tests
// (each rule firing AND being suppressed), suppression/baseline mechanics,
// and the diagnostic format contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "lint/driver.hpp"
#include "lint/rules.hpp"
#include "lint/source.hpp"

namespace nomc::lint {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string{NOMC_LINT_FIXTURE_DIR} + "/" + name;
}

std::vector<Finding> lint_fixture(const std::string& name) {
  SourceFile file;
  std::string error;
  EXPECT_TRUE(scan_file(fixture_path(name), file, error)) << error;
  return lint_cpp_source(file);
}

/// The (rule, line) pairs of findings, filtered by suppression state.
std::vector<std::pair<std::string, int>> fired(const std::vector<Finding>& findings,
                                               bool suppressed) {
  std::vector<std::pair<std::string, int>> out;
  for (const Finding& finding : findings) {
    if (finding.suppressed == suppressed) {
      out.emplace_back(finding.diagnostic.rule_id, finding.diagnostic.line);
    }
  }
  return out;
}

// ---- Tokenizer -----------------------------------------------------------

TEST(LintSource, TokenizesWithPositions) {
  const SourceFile file = scan_source("t.cpp", "int a = 42;\n  foo(a);\n");
  ASSERT_GE(file.tokens.size(), 8u);
  EXPECT_EQ(file.tokens[0].text, "int");
  EXPECT_EQ(file.tokens[0].line, 1);
  EXPECT_EQ(file.tokens[0].col, 1);
  EXPECT_EQ(file.tokens[3].text, "42");
  EXPECT_EQ(file.tokens[3].kind, Token::Kind::kNumber);
  EXPECT_EQ(file.tokens[5].text, "foo");
  EXPECT_EQ(file.tokens[5].line, 2);
  EXPECT_EQ(file.tokens[5].col, 3);
}

TEST(LintSource, CommentsAreCapturedNotTokenized) {
  const SourceFile file = scan_source("t.cpp", "// line note\nint x; /* block\nspan */ int y;\n");
  ASSERT_EQ(file.comments.size(), 2u);
  EXPECT_EQ(file.comments[0].text, " line note");
  EXPECT_EQ(file.comments[0].line, 1);
  EXPECT_EQ(file.comments[1].line, 2);
  EXPECT_EQ(file.comments[1].end_line, 3);
  for (const Token& token : file.tokens) {
    EXPECT_NE(token.text, "note");
    EXPECT_NE(token.text, "span");
  }
}

TEST(LintSource, StringContentsStayOutOfIdentifiers) {
  const SourceFile file = scan_source("t.cpp", "call(\"rand() inside\");\n");
  int identifiers = 0;
  for (const Token& token : file.tokens) {
    if (token.kind == Token::Kind::kIdentifier) {
      ++identifiers;
      EXPECT_EQ(token.text, "call");
    }
  }
  EXPECT_EQ(identifiers, 1);
}

TEST(LintSource, RawStringsAndEscapes) {
  const SourceFile file = scan_source(
      "t.cpp", "auto a = R\"(no \" stop)\"; auto b = \"esc \\\" quote\";\n");
  int strings = 0;
  for (const Token& token : file.tokens) {
    if (token.kind == Token::Kind::kString) ++strings;
  }
  EXPECT_EQ(strings, 2);
}

TEST(LintSource, ArrowIsNotAMinus) {
  const SourceFile file = scan_source("t.cpp", "p->value;\n");
  for (const Token& token : file.tokens) {
    EXPECT_NE(token.text, "-");
  }
}

// ---- Determinism rules ---------------------------------------------------

TEST(LintRules, DetRandFiresAndSuppresses) {
  const std::vector<Finding> findings = lint_fixture("det_rand.cpp");
  const auto active = fired(findings, /*suppressed=*/false);
  const std::vector<std::pair<std::string, int>> expected = {
      {"det-rand", 7},  // srand
      {"det-time-seed", 7},
      {"det-rand", 8},   // rand
      {"det-rand", 9},   // random_device
      {"det-rand", 10},  // mt19937
  };
  auto sorted_active = active;
  auto sorted_expected = expected;
  std::sort(sorted_active.begin(), sorted_active.end());
  std::sort(sorted_expected.begin(), sorted_expected.end());
  EXPECT_EQ(sorted_active, sorted_expected);
  const auto muted = fired(findings, /*suppressed=*/true);
  ASSERT_EQ(muted.size(), 1u);
  EXPECT_EQ(muted[0], (std::pair<std::string, int>{"det-rand", 12}));
}

TEST(LintRules, DetRandExemptInSimRandom) {
  const SourceFile file =
      scan_source("src/sim/random.cpp", "int x = rand();\nauto r = std::random_device{};\n");
  std::vector<Diagnostic> diagnostics;
  run_cpp_rules(file, diagnostics);
  EXPECT_TRUE(diagnostics.empty());
}

TEST(LintRules, DetRawThreadFiresAndSuppresses) {
  const std::vector<Finding> findings = lint_fixture("det_thread.cpp");
  const auto active = fired(findings, /*suppressed=*/false);
  const std::vector<std::pair<std::string, int>> expected = {
      {"det-raw-thread", 7},  // std::thread
      {"det-raw-thread", 8},  // std::async
      {"det-raw-thread", 9},  // std::jthread
  };
  EXPECT_EQ(active, expected);
  const auto muted = fired(findings, /*suppressed=*/true);
  ASSERT_EQ(muted.size(), 1u);
  EXPECT_EQ(muted[0], (std::pair<std::string, int>{"det-raw-thread", 11}));
}

TEST(LintRules, DetRawThreadExemptInRunners) {
  for (const char* path : {"src/sim/parallel.cpp", "src/sim/region_executor.cpp"}) {
    const SourceFile file = scan_source(path, "std::thread t{[] {}};\n");
    std::vector<Diagnostic> diagnostics;
    run_cpp_rules(file, diagnostics);
    EXPECT_TRUE(diagnostics.empty()) << path;
  }
}

TEST(LintRules, SvcRawSocketFiresAndSuppresses) {
  const std::vector<Finding> findings = lint_fixture("svc_socket.cpp");
  const auto active = fired(findings, /*suppressed=*/false);
  const std::vector<std::pair<std::string, int>> expected = {
      {"svc-raw-socket", 6},   // socket
      {"svc-raw-socket", 7},   // ::bind
      {"svc-raw-socket", 8},   // listen
      {"svc-raw-socket", 9},   // ::accept
      {"svc-raw-socket", 10},  // connect
  };
  EXPECT_EQ(active, expected);
  const auto muted = fired(findings, /*suppressed=*/true);
  const std::vector<std::pair<std::string, int>> expected_muted = {
      {"svc-raw-socket", 12},  // allowed socket()
      {"svc-raw-socket", 19},  // FakeClient::connect declaration
  };
  EXPECT_EQ(muted, expected_muted);
}

TEST(LintRules, SvcRawSocketExemptInServiceLayer) {
  for (const char* path :
       {"src/svc/socket.cpp", "src/svc/server.cpp", "src/svc/cache.cpp"}) {
    const SourceFile file =
        scan_source(path, "int fd = socket(1, 1, 0);\n::connect(fd, nullptr, 0);\n");
    std::vector<Diagnostic> diagnostics;
    run_cpp_rules(file, diagnostics);
    EXPECT_TRUE(diagnostics.empty()) << path;
  }
}

TEST(LintRules, SvcRawSocketIgnoresMemberAndStdCalls) {
  const SourceFile file = scan_source(
      "tools/x.cpp",
      "void f(Client& c, Client* p) { c.connect(1); p->connect(2); std::bind(f); }\n");
  std::vector<Diagnostic> diagnostics;
  run_cpp_rules(file, diagnostics);
  EXPECT_TRUE(diagnostics.empty());
}

TEST(LintRules, SvcRawForkFiresAndSuppresses) {
  const std::vector<Finding> findings = lint_fixture("svc_fork.cpp");
  const auto active = fired(findings, /*suppressed=*/false);
  const std::vector<std::pair<std::string, int>> expected = {
      {"svc-raw-fork", 7},   // fork
      {"svc-raw-fork", 8},   // ::execv
      {"svc-raw-fork", 9},   // execvp
      {"svc-raw-fork", 11},  // ::waitpid
  };
  EXPECT_EQ(active, expected);
  const auto muted = fired(findings, /*suppressed=*/true);
  const std::vector<std::pair<std::string, int>> expected_muted = {
      {"svc-raw-fork", 13},  // allowed fork()
      {"svc-raw-fork", 20},  // FakeSupervisor::fork declaration
  };
  EXPECT_EQ(muted, expected_muted);
}

TEST(LintRules, SvcRawForkExemptOnlyInWorkerPool) {
  const SourceFile exempt = scan_source(
      "src/svc/worker_pool.cpp", "int pid = fork();\n::waitpid(pid, nullptr, 0);\n");
  std::vector<Diagnostic> diagnostics;
  run_cpp_rules(exempt, diagnostics);
  EXPECT_TRUE(diagnostics.empty());

  // The rest of src/svc/ is NOT exempt: the socket exemption does not bleed
  // into process control.
  const SourceFile server = scan_source("src/svc/server.cpp", "int pid = fork();\n");
  diagnostics.clear();
  run_cpp_rules(server, diagnostics);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule_id, "svc-raw-fork");
}

TEST(LintRules, SvcRawForkIgnoresMemberAndStdCalls) {
  const SourceFile file = scan_source(
      "tools/x.cpp",
      "void f(Pool& w, Pool* p) { w.fork(1); p->execv(2); std::execv(3); }\n");
  std::vector<Diagnostic> diagnostics;
  run_cpp_rules(file, diagnostics);
  EXPECT_TRUE(diagnostics.empty());
}

TEST(LintRules, DetUnorderedOutput) {
  const std::vector<Finding> findings = lint_fixture("det_unordered.cpp");
  const auto active = fired(findings, false);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], (std::pair<std::string, int>{"det-unordered-output", 9}));
  const auto muted = fired(findings, true);
  ASSERT_EQ(muted.size(), 1u);
  EXPECT_EQ(muted[0], (std::pair<std::string, int>{"det-unordered-output", 22}));
}

TEST(LintRules, DetGFormat) {
  const std::vector<Finding> findings = lint_fixture("det_format.cpp");
  const auto active = fired(findings, false);
  const std::vector<std::pair<std::string, int>> expected = {{"det-g-format", 6},
                                                            {"det-g-format", 7}};
  EXPECT_EQ(active, expected);
  const auto muted = fired(findings, true);
  ASSERT_EQ(muted.size(), 1u);
  EXPECT_EQ(muted[0].second, 11);
}

TEST(LintRules, DetGFormatPinnedStoreExemption) {
  const std::string pinned = std::string{"\"%.17"} + "g\"";
  const SourceFile store = scan_source("src/exp/result_store.cpp",
                                       "snprintf(b, n, " + pinned + ", v);\n");
  std::vector<Diagnostic> diagnostics;
  run_cpp_rules(store, diagnostics);
  EXPECT_TRUE(diagnostics.empty());
  // The same spelling anywhere else still fires.
  const SourceFile other =
      scan_source("src/stats/table.cpp", "snprintf(b, n, " + pinned + ", v);\n");
  diagnostics.clear();
  run_cpp_rules(other, diagnostics);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule_id, "det-g-format");
}

// ---- Unit rules ----------------------------------------------------------

TEST(LintRules, UnitDbmMwMix) {
  const std::vector<Finding> findings = lint_fixture("unit_mix.cpp");
  const auto active = fired(findings, false);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], (std::pair<std::string, int>{"unit-dbm-mw-mix", 6}));
  const auto muted = fired(findings, true);
  ASSERT_EQ(muted.size(), 1u);
  EXPECT_EQ(muted[0], (std::pair<std::string, int>{"unit-dbm-mw-mix", 10}));
}

TEST(LintRules, UnitNakedCca) {
  const std::vector<Finding> findings = lint_fixture("unit_cca.cpp");
  const auto active = fired(findings, false);
  const std::vector<std::pair<std::string, int>> expected = {{"unit-naked-cca", 8},
                                                            {"unit-naked-cca", 9}};
  EXPECT_EQ(active, expected);
  const auto muted = fired(findings, true);
  ASSERT_EQ(muted.size(), 1u);
  EXPECT_EQ(muted[0].second, 19);
}

TEST(LintRules, UnitNakedCcaExemptInConfigHeaders) {
  for (const char* path : {"src/dcn/config.hpp", "src/mac/cca.hpp"}) {
    const SourceFile file = scan_source(path, "#pragma once\nphy::Dbm threshold{-77.0};\n");
    std::vector<Diagnostic> diagnostics;
    run_cpp_rules(file, diagnostics);
    EXPECT_TRUE(diagnostics.empty()) << path;
  }
}

// ---- Hygiene rules -------------------------------------------------------

TEST(LintRules, HeaderHygieneFires) {
  const std::vector<Finding> findings = lint_fixture("hyg_header.hpp");
  const auto active = fired(findings, false);
  const std::vector<std::pair<std::string, int>> expected = {
      {"hyg-pragma-once", 1}, {"hyg-using-namespace-std", 5}, {"hyg-todo-issue", 7}};
  auto sorted_active = active;
  std::sort(sorted_active.begin(), sorted_active.end());
  auto sorted_expected = expected;
  std::sort(sorted_expected.begin(), sorted_expected.end());
  EXPECT_EQ(sorted_active, sorted_expected);
}

TEST(LintRules, CleanHeaderStaysClean) {
  const std::vector<Finding> findings = lint_fixture("hyg_clean.hpp");
  EXPECT_TRUE(findings.empty());
}

TEST(LintRules, UsingNamespaceStdAllowedInSourceFiles) {
  const SourceFile file = scan_source("tools/x.cpp", "using namespace std;\n");
  std::vector<Diagnostic> diagnostics;
  run_cpp_rules(file, diagnostics);
  EXPECT_TRUE(diagnostics.empty());
}

// ---- Suppressions --------------------------------------------------------

TEST(LintDriver, AllowFileCoversWholeFile) {
  const std::vector<Finding> findings = lint_fixture("allow_file.cpp");
  EXPECT_FALSE(findings.empty());
  for (const Finding& finding : findings) {
    EXPECT_TRUE(finding.suppressed) << format_diagnostic(finding);
  }
}

TEST(LintDriver, SameLineSuppression) {
  const std::string src = "void f() { g(\"x=%" + std::string{"g"} +
                          "\", 1.0); }  // nomc-lint: allow(det-g-format)\n";
  const std::vector<Finding> findings = lint_cpp_source(scan_source("a.cpp", src));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
}

TEST(LintDriver, SuppressionDoesNotLeakToLaterLines) {
  const std::string g = "g";
  const std::string src = "// nomc-lint: allow(det-g-format)\nf(\"%" + g +
                          "\", x);\nf(\"%" + g + "\", y);\n";
  const std::vector<Finding> findings = lint_cpp_source(scan_source("a.cpp", src));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(findings[0].suppressed);   // line 2: covered
  EXPECT_FALSE(findings[1].suppressed);  // line 3: not covered
}

// ---- Diagnostics and baseline --------------------------------------------

TEST(LintDriver, DiagnosticFormatIsClangStyle) {
  const std::vector<Finding> findings =
      lint_cpp_source(scan_source("src/x.cpp", "int v = rand();\n"));
  ASSERT_EQ(findings.size(), 1u);
  const std::string text = format_diagnostic(findings[0]);
  EXPECT_EQ(text.find("src/x.cpp:1:9: warning: "), 0u) << text;
  EXPECT_NE(text.find("[det-rand]"), std::string::npos) << text;
}

TEST(LintDriver, BaselineMatchesOnContentNotLineNumber) {
  const std::vector<Finding> original =
      lint_cpp_source(scan_source("src/x.cpp", "int v = rand();\n"));
  const std::string serialized = Baseline::serialize(original);
  EXPECT_NE(serialized.find("src/x.cpp|det-rand|int v = rand();"), std::string::npos);

  // Same content drifted two lines down: still baselined.
  std::vector<Finding> drifted =
      lint_cpp_source(scan_source("src/x.cpp", "// pad\n// pad\nint v = rand();\n"));
  Baseline baseline;
  const std::string path = std::string{NOMC_LINT_FIXTURE_DIR} + "/tmp_baseline.txt";
  {
    std::FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(serialized.data(), 1, serialized.size(), out);
    std::fclose(out);
  }
  std::string error;
  ASSERT_TRUE(baseline.load(path, error)) << error;
  std::remove(path.c_str());
  baseline.apply(drifted);
  ASSERT_EQ(drifted.size(), 1u);
  EXPECT_TRUE(drifted[0].baselined);

  // A second identical finding is NOT absorbed by the single entry.
  std::vector<Finding> doubled = lint_cpp_source(
      scan_source("src/x.cpp", "int v = rand();\nint w = rand();\n"));
  Baseline again;
  {
    std::FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(serialized.data(), 1, serialized.size(), out);
    std::fclose(out);
  }
  ASSERT_TRUE(again.load(path, error)) << error;
  std::remove(path.c_str());
  again.apply(doubled);
  int baselined = 0;
  int fresh = 0;
  for (const Finding& finding : doubled) {
    (finding.baselined ? baselined : fresh) += 1;
  }
  EXPECT_EQ(baselined, 1);
  EXPECT_EQ(fresh, 1);
}

TEST(LintDriver, MissingBaselineIsEmpty) {
  Baseline baseline;
  std::string error;
  EXPECT_TRUE(baseline.load("definitely/does/not/exist.baseline", error));
  EXPECT_EQ(baseline.size(), 0u);
}

// ---- Campaign spec rules -------------------------------------------------

TEST(LintRules, GoldenRegenNote) {
  std::vector<Diagnostic> diagnostics;
  run_campaign_rules("tests/golden/x_small.campaign",
                     "# shrink of fig-something\nname = x_small\n", diagnostics);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule_id, "golden-regen-note");

  diagnostics.clear();
  run_campaign_rules("tests/golden/x_small.campaign",
                     "# regenerate with\n# `nomc-campaign run tests/golden/x_small.campaign "
                     "--overwrite`\nname = x_small\n",
                     diagnostics);
  EXPECT_TRUE(diagnostics.empty());

  // Non-golden campaign specs are out of scope.
  diagnostics.clear();
  run_campaign_rules("examples/campaigns/fig01.campaign", "name = fig01\n", diagnostics);
  EXPECT_TRUE(diagnostics.empty());
}

TEST(LintRules, GoldenRegenNoteMustBeInHeaderComment) {
  // The command below the first statement does not count: the ctest guard
  // only reads the leading comment block.
  std::vector<Diagnostic> diagnostics;
  run_campaign_rules("tests/golden/x_small.campaign",
                     "# shrink\nname = x_small\n# nomc-campaign run x --overwrite\n",
                     diagnostics);
  ASSERT_EQ(diagnostics.size(), 1u);
}

// ---- Catalog -------------------------------------------------------------

TEST(LintRules, CatalogKnowsEveryEmittedRule) {
  EXPECT_TRUE(known_rule("det-rand"));
  EXPECT_TRUE(known_rule("golden-regen-note"));
  EXPECT_TRUE(known_rule("arch-layer-violation"));
  EXPECT_TRUE(known_rule("lint-stale-suppress"));
  EXPECT_FALSE(known_rule("not-a-rule"));
  EXPECT_GE(rule_catalog().size(), 10u);
}

// ---- Include graph -------------------------------------------------------

TEST(LintGraph, ModuleOfMapsDirectoriesToModules) {
  EXPECT_EQ(module_of("src/phy/medium.cpp"), "phy");
  EXPECT_EQ(module_of("src/lint/graph.hpp"), "lint");
  EXPECT_EQ(module_of("tools/nomc_lint.cpp"), "tools");
  EXPECT_EQ(module_of("tests/svc/service_test.cpp"), "tests");
  EXPECT_EQ(module_of("lonely.cpp"), "");
  EXPECT_EQ(module_of("/tmp/fx/src/a/x.cpp", "/tmp/fx"), "a");
  EXPECT_EQ(module_of("/tmp/fx/src/a/x.cpp", "/tmp/fx/"), "a");
}

TEST(LintGraph, CollectsOnlyModuleCrossingQuotedIncludes) {
  const SourceFile file = scan_source(
      "src/mac/csma.cpp",
      "#include \"mac/csma.hpp\"\n#include <vector>\n#include \"phy/radio.hpp\"\n"
      "#include \"local.hpp\"\n");
  std::vector<IncludeEdge> edges;
  collect_include_edges(file, /*root=*/{}, edges);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, "mac");
  EXPECT_EQ(edges[0].to, "phy");
  EXPECT_EQ(edges[0].line, 3);
  EXPECT_EQ(edges[0].line_text, "#include \"phy/radio.hpp\"");
}

TEST(LintGraph, LayerSpecGrammar) {
  LayerSpec spec;
  std::string error;
  ASSERT_TRUE(spec.parse("layers.txt",
                         "# comment\n"
                         "sim:\n"
                         "phy: sim   # trailing comment\n"
                         "tools: *\n",
                         error))
      << error;
  EXPECT_EQ(spec.size(), 3u);
  EXPECT_TRUE(spec.has("phy"));
  EXPECT_FALSE(spec.has("mac"));
  EXPECT_TRUE(spec.allows("phy", "sim"));
  EXPECT_TRUE(spec.allows("phy", "phy"));  // self-edges always legal
  EXPECT_FALSE(spec.allows("phy", "tools"));
  EXPECT_FALSE(spec.allows("sim", "phy"));
  EXPECT_TRUE(spec.allows("tools", "phy"));  // wildcard
  EXPECT_EQ(spec.allowed_list("sim"), "(none)");
  EXPECT_EQ(spec.allowed_list("mac"), "(module not in spec)");
  EXPECT_FALSE(spec.allows_missing());

  LayerSpec bad;
  EXPECT_FALSE(bad.parse("layers.txt", "just words\n", error));
  EXPECT_FALSE(bad.parse("layers.txt", "a:\na:\n", error));  // duplicate
  EXPECT_FALSE(bad.parse("layers.txt", "a!: b\n", error));   // bad name
}

// ---- Whole-program passes over fixture trees -----------------------------

/// (rule, path suffix, line) triples of findings in one suppression state.
std::vector<std::tuple<std::string, std::string, int>> where(
    const std::vector<Finding>& findings, bool suppressed) {
  std::vector<std::tuple<std::string, std::string, int>> out;
  for (const Finding& finding : findings) {
    if (finding.suppressed != suppressed) continue;
    const std::string& path = finding.diagnostic.path;
    const std::size_t slash = path.find_last_of('/');
    out.emplace_back(finding.diagnostic.rule_id,
                     slash == std::string::npos ? path : path.substr(slash + 1),
                     finding.diagnostic.line);
  }
  return out;
}

RunResult run_fixture_tree(const std::string& name) {
  RunOptions options;
  options.roots = {fixture_path(name)};
  options.root_prefix = fixture_path(name);
  options.layers_path = fixture_path(name + "/layers.txt");
  RunResult result;
  std::string error;
  EXPECT_TRUE(run_lint(options, result, error)) << error;
  return result;
}

TEST(LintGraph, ArchLayerViolationFiresCompliesAndSuppresses) {
  const RunResult result = run_fixture_tree("arch_violation");
  EXPECT_EQ(result.file_count, 4u);
  using T = std::tuple<std::string, std::string, int>;
  // The a -> b edge is allowed and produces nothing; c -> a fires once.
  EXPECT_EQ(where(result.findings, false),
            (std::vector<T>{{"arch-layer-violation", "uses_a.cpp", 2}}));
  EXPECT_EQ(where(result.findings, true),
            (std::vector<T>{{"arch-layer-violation", "sup.cpp", 2}}));
  for (const Finding& finding : result.findings) {
    if (finding.suppressed) continue;
    EXPECT_NE(finding.diagnostic.message.find("'c' may not include module 'a'"),
              std::string::npos)
        << finding.diagnostic.message;
  }
}

TEST(LintGraph, ArchCycleFiresWithFullPathAndSuppresses) {
  const RunResult firing = run_fixture_tree("arch_cycle");
  using T = std::tuple<std::string, std::string, int>;
  EXPECT_EQ(where(firing.findings, false), (std::vector<T>{{"arch-cycle", "a.cpp", 2}}));
  ASSERT_FALSE(firing.findings.empty());
  EXPECT_NE(firing.findings[0].diagnostic.message.find("a -> b -> a"), std::string::npos)
      << firing.findings[0].diagnostic.message;

  const RunResult muted = run_fixture_tree("arch_cycle_sup");
  EXPECT_TRUE(where(muted.findings, false).empty());
  EXPECT_EQ(where(muted.findings, true), (std::vector<T>{{"arch-cycle", "a.cpp", 2}}));
}

TEST(LintGraph, ArchMissingSpecFiresAndIsWaivableInSpec) {
  const RunResult firing = run_fixture_tree("arch_missing");
  using T = std::tuple<std::string, std::string, int>;
  EXPECT_EQ(where(firing.findings, false),
            (std::vector<T>{{"arch-missing-spec", "layers.txt", 1}}));
  ASSERT_FALSE(firing.findings.empty());
  EXPECT_NE(firing.findings[0].diagnostic.message.find("module 'b'"), std::string::npos);

  const RunResult waived = run_fixture_tree("arch_missing_sup");
  EXPECT_TRUE(where(waived.findings, false).empty());
  EXPECT_EQ(where(waived.findings, true),
            (std::vector<T>{{"arch-missing-spec", "layers.txt", 1}}));
}

// ---- Stale suppressions and stale baseline -------------------------------

TEST(LintStale, StaleSuppressFixture) {
  RunOptions options;
  options.roots = {fixture_path("stale_suppress.cpp")};
  RunResult result;
  std::string error;
  ASSERT_TRUE(run_lint(options, result, error)) << error;

  const auto active = fired(result.findings, /*suppressed=*/false);
  const std::vector<std::pair<std::string, int>> expected = {
      {"lint-stale-suppress", 10},  // dead allow(det-rand)
      {"lint-stale-suppress", 13},  // unknown rule
  };
  EXPECT_EQ(active, expected);

  const auto muted = fired(result.findings, /*suppressed=*/true);
  const std::vector<std::pair<std::string, int>> expected_muted = {
      {"det-rand", 7},              // the live suppression at work
      {"lint-stale-suppress", 18},  // justified via allow(lint-stale-suppress)
  };
  EXPECT_EQ(muted, expected_muted);

  // Dead-but-known and unknown-rule directives get distinct messages.
  for (const Finding& finding : result.findings) {
    if (finding.suppressed) continue;
    if (finding.diagnostic.line == 10) {
      EXPECT_NE(finding.diagnostic.message.find("matches no finding"), std::string::npos);
    }
    if (finding.diagnostic.line == 13) {
      EXPECT_NE(finding.diagnostic.message.find("unknown rule 'not-a-rule'"),
                std::string::npos);
    }
  }
}

TEST(LintStale, StaleBaselineFixture) {
  const std::string code = fixture_path("stale_baseline/code.cpp");
  const std::string line_text = "int noise() { return std::rand(); }";
  const std::string baseline_path = ::testing::TempDir() + "nomc_lint_stale.baseline";
  {
    const std::string content = "# fixture baseline\n" + code + "|det-rand|" + line_text +
                                "\n" + code + "|det-rand|int gone() { return std::rand(); }\n" +
                                "# nomc-lint: allow(lint-stale-baseline)\n" + code +
                                "|det-rand|int also_gone() { return std::rand(); }\n";
    std::FILE* out = std::fopen(baseline_path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(content.data(), 1, content.size(), out);
    std::fclose(out);
  }

  RunOptions options;
  options.roots = {code};
  options.baseline_path = baseline_path;
  RunResult result;
  std::string error;
  ASSERT_TRUE(run_lint(options, result, error)) << error;
  std::remove(baseline_path.c_str());

  std::vector<std::pair<std::string, int>> active;
  for (const Finding& finding : result.findings) {
    if (!finding.suppressed && !finding.baselined) {
      active.emplace_back(finding.diagnostic.rule_id, finding.diagnostic.line);
    }
  }
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0], (std::pair<std::string, int>{"lint-stale-baseline", 3}));
  const auto muted = fired(result.findings, /*suppressed=*/true);
  ASSERT_EQ(muted.size(), 1u);  // the justified leftover on line 5
  EXPECT_EQ(muted[0], (std::pair<std::string, int>{"lint-stale-baseline", 5}));
  int baselined = 0;
  for (const Finding& finding : result.findings) {
    if (finding.baselined) {
      ++baselined;
      EXPECT_EQ(finding.diagnostic.rule_id, "det-rand");
    }
  }
  EXPECT_EQ(baselined, 1);
}

// ---- Parallel determinism ------------------------------------------------

TEST(LintParallel, RunLintIsByteIdenticalAtAnyJobCount) {
  auto render = [](int jobs) {
    RunOptions options;
    options.roots = {std::string{NOMC_LINT_FIXTURE_DIR}};
    options.jobs = jobs;
    RunResult result;
    std::string error;
    EXPECT_TRUE(run_lint(options, result, error)) << error;
    std::string out;
    for (const Finding& finding : result.findings) {
      out += format_diagnostic(finding);
      out += finding.suppressed ? " S" : finding.baselined ? " B" : " F";
      out += '\n';
    }
    return std::make_pair(result.file_count, out);
  };
  const auto serial = render(1);
  EXPECT_FALSE(serial.second.empty());  // fixtures fire by construction
  EXPECT_EQ(render(2), serial);
  EXPECT_EQ(render(7), serial);
}

}  // namespace
}  // namespace nomc::lint
