// Fixture for lint_tests: unit-naked-cca. A threshold literal fires only
// near cca/threshold context; the same number elsewhere is just a number.
struct Radio {
  double cca_threshold;
};

void fixture_configure(Radio& radio) {
  radio.cca_threshold = -77.0;
  double floor_level = -91.0;
  (void)floor_level;
}

double fixture_plain_number() {
  return -77.0;
}

double fixture_waved() {
  // nomc-lint: allow(unit-naked-cca)
  double quiet_threshold = -77.0;
  return quiet_threshold;
}
