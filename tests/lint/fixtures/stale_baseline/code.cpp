// Fixture for lint-stale-baseline: exactly one finding, so a baseline with
// extra entries has stale ones. lint_tests writes the baseline file itself
// (entries key on the scanned path, which is machine-dependent).
#include <cstdlib>

int noise() { return std::rand(); }
