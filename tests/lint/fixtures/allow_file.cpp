// Fixture for lint_tests: a file-wide suppression covers every instance.
// nomc-lint: allow-file(det-g-format)
#include <cstdio>

void fixture_all(double value) {
  std::printf("a=%g\n", value);
  std::printf("b=%G\n", value);
}
