// Fixture: the cycle's anchor edge carries a justified suppression.
#include "b/b.hpp"  // nomc-lint: allow(arch-cycle)
