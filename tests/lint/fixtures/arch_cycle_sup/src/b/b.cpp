// Fixture: b -> a.
#include "a/a.hpp"
