// Fixture for lint_tests: a fully compliant header — every rule stays quiet.
#pragma once

// TODO(#7): extend alongside the rule catalog.
inline int fixture_ok() { return 7; }
