// Fixture: module b, deliberately missing from the spec.
