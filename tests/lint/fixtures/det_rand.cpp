// Fixture for lint_tests: det-rand and det-time-seed violations. This file
// is test data — it is never compiled or linted as part of the repo walk.
#include <cstdlib>
#include <random>

int fixture_noise() {
  std::srand(static_cast<unsigned>(time(nullptr)));
  int noise = std::rand();
  std::random_device entropy;
  std::mt19937 gen{entropy()};
  // nomc-lint: allow(det-rand)
  int allowed = std::rand();
  return noise + allowed + static_cast<int>(gen());
}
