// Fixture for lint_tests: unit-dbm-mw-mix. Same-scale arithmetic and
// expressions routed through a to_milliwatts/to_dbm conversion stay clean.
double to_milliwatts(double level_dbm);

double fixture_combine(double rssi_dbm, double noise_mw, double leak_mw) {
  double broken = rssi_dbm + noise_mw;
  double fine_linear = noise_mw + leak_mw;
  double converted = to_milliwatts(rssi_dbm) + noise_mw;
  // nomc-lint: allow(unit-dbm-mw-mix)
  double waved = noise_mw - rssi_dbm;
  return broken + fine_linear + converted + waved;
}
