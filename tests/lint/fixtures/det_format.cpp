// Fixture for lint_tests: det-g-format. Fixed-precision conversions and
// escaped percent signs stay clean.
#include <cstdio>

void fixture_report(double value) {
  std::printf("rate=%g\n", value);
  std::printf("rate=%.6g\n", value);
  std::printf("rate=%.17f\n", value);
  std::printf("100%% g\n");
  // nomc-lint: allow(det-g-format)
  std::printf("rate=%G\n", value);
}
