// Fixture for lint-stale-suppress: a live directive, a dead one, one
// naming an unknown rule, and a justified dead one. Line numbers are
// asserted by lint_tests — edit with care.
#include <cstdlib>

int live() {
  return std::rand();  // nomc-lint: allow(det-rand) — live, suppresses this line
}

// nomc-lint: allow(det-rand)
int stale() { return 4; }

// nomc-lint: allow(not-a-rule)
int unknown() { return 5; }

// Deliberate example of a justified dead directive:
// nomc-lint: allow(lint-stale-suppress)
// nomc-lint: allow(det-time-seed)
int justified() { return 6; }
