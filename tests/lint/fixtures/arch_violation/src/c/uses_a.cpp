// Fixture: module c includes module a — the spec allows c nothing.
#include "a/x.hpp"
