// Fixture: the same illegal edge, suppressed at the directive.
#include "a/x.hpp"  // nomc-lint: allow(arch-layer-violation)
