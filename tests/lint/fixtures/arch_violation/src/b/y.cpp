// Fixture: base module, no cross-module includes.
