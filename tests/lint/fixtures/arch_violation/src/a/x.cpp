// Fixture: module a includes module b — an edge the spec allows.
#include "b/y.hpp"
