// Fixture for lint_tests: det-raw-thread violations. This file is test data
// — it is never compiled or linted as part of the repo walk.
#include <future>
#include <thread>

int fixture_threads() {
  std::thread worker{[] {}};
  auto task = std::async(std::launch::async, [] { return 1; });
  std::jthread helper{[] {}};
  // nomc-lint: allow(det-raw-thread)
  std::thread allowed{[] {}};
  const unsigned cores = std::thread::hardware_concurrency();  // legal query
  worker.join();
  allowed.join();
  return task.get() + static_cast<int>(cores);
}
