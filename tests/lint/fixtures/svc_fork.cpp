// Fixture for lint_tests: svc-raw-fork violations. This file is test data
// — it is never compiled or linted as part of the repo walk.
#include <sys/wait.h>
#include <unistd.h>

int fixture_forks() {
  const int pid = fork();
  ::execv("/bin/true", nullptr);
  execvp("true", nullptr);
  int status = 0;
  ::waitpid(pid, &status, 0);
  // nomc-lint: allow(svc-raw-fork)
  const int allowed = fork();
  return pid + status + allowed;
}

struct FakeSupervisor {
  // A *declaration* named after a syscall trips the token heuristic too;
  // outside worker_pool.cpp that wants an explicit suppression.
  bool fork(int) { return true; }  // nomc-lint: allow(svc-raw-fork)
};

int fixture_member_calls(FakeSupervisor& pool, FakeSupervisor* pointer) {
  // Method calls do not trip the rule; only the bare syscall shape does.
  const bool a = pool.fork(1);
  const bool b = pointer->fork(2);
  return a && b ? 1 : 0;
}
