// Fixture for lint_tests: det-unordered-output. Only the loops whose body
// reaches an output sink may fire; ordered containers never do.
#include <cstdio>
#include <map>
#include <unordered_map>

void fixture_dump(const std::unordered_map<int, double>& table,
                  const std::map<int, double>& sorted) {
  for (const auto& [key, value] : table) {
    std::printf("%d\n", key);
    (void)value;
  }
  double sum = 0.0;
  for (const auto& [key, value] : table) {
    sum += value;
    (void)key;
  }
  for (const auto& [key, value] : sorted) {
    std::printf("%d %f\n", key, value);
  }
  // nomc-lint: allow(det-unordered-output)
  for (const auto& [key, value] : table) {
    std::printf("%f\n", value);
    (void)key;
  }
  (void)sum;
}
