// Fixture: module b, missing from the spec but waived there.
