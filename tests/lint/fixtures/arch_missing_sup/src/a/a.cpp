// Fixture: module a, present in the spec.
