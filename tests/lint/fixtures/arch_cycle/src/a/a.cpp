// Fixture: a -> b; together with b -> a this closes a module cycle.
#include "b/b.hpp"
