// Fixture for lint_tests: header hygiene violations — no #pragma once,
// a namespace-std using-directive, and an untagged TODO.
#include <string>

using namespace std;

// TODO: give this fixture an include guard
inline string fixture_name() { return "hyg"; }
