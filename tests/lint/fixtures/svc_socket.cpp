// Fixture for lint_tests: svc-raw-socket violations. This file is test data
// — it is never compiled or linted as part of the repo walk.
#include <sys/socket.h>

int fixture_sockets() {
  const int fd = socket(1, 1, 0);
  ::bind(fd, nullptr, 0);
  listen(fd, 8);
  const int session = ::accept(fd, nullptr, nullptr);
  connect(session, nullptr, 0);
  // nomc-lint: allow(svc-raw-socket)
  const int allowed = socket(1, 1, 0);
  return fd + session + allowed;
}

struct FakeClient {
  // A *declaration* named after a syscall trips the token heuristic too;
  // outside src/svc that wants an explicit suppression.
  bool connect(int) { return true; }  // nomc-lint: allow(svc-raw-socket)
};

int fixture_member_calls(FakeClient& client, FakeClient* pointer) {
  // Method calls do not trip the rule; only the bare syscall shape does.
  const bool a = client.connect(1);
  const bool b = pointer->connect(2);
  return a && b ? 1 : 0;
}
