#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace nomc::sim {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a{1234};
  SplitMix64 b{1234};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a{1};
  SplitMix64 b{2};
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, DeterministicPerSeed) {
  Xoshiro256pp a{42};
  Xoshiro256pp b{42};
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b());
}

TEST(Xoshiro, LongJumpDecorrelates) {
  Xoshiro256pp a{42};
  Xoshiro256pp b{42};
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RandomStream, UniformInUnitInterval) {
  RandomStream rng{7, 0};
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RandomStream, UniformRangeRespectsBounds) {
  RandomStream rng{7, 1};
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform(-22.0, 0.0);
    ASSERT_GE(v, -22.0);
    ASSERT_LT(v, 0.0);
  }
}

TEST(RandomStream, UniformIntCoversRangeUniformly) {
  RandomStream rng{7, 2};
  std::vector<int> counts(8, 0);
  const int n = 80'000;
  for (int i = 0; i < n; ++i) {
    const std::int64_t v = rng.uniform_int(0, 7);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 7);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.125, 0.01);
  }
}

TEST(RandomStream, UniformIntSinglePoint) {
  RandomStream rng{7, 3};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RandomStream, BernoulliEdgeCases) {
  RandomStream rng{7, 4};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RandomStream, BernoulliFrequency) {
  RandomStream rng{7, 5};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RandomStream, NormalMoments) {
  RandomStream rng{7, 6};
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RandomStream, NormalScaled) {
  RandomStream rng{7, 7};
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.normal(-77.0, 2.5);
  EXPECT_NEAR(sum / n, -77.0, 0.1);
}

TEST(RandomStream, ExponentialMean) {
  RandomStream rng{7, 8};
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RandomStream, StreamsAreIndependent) {
  RandomStream a{7, 0};
  RandomStream b{7, 1};
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RandomStream, SameStreamIndexReplays) {
  RandomStream a{7, 3};
  RandomStream b{7, 3};
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Binomial, EdgeCases) {
  RandomStream rng{7, 9};
  EXPECT_EQ(rng.binomial(0, 0.5), 0);
  EXPECT_EQ(rng.binomial(100, 0.0), 0);
  EXPECT_EQ(rng.binomial(100, 1.0), 100);
  EXPECT_EQ(rng.binomial(100, -0.1), 0);
  EXPECT_EQ(rng.binomial(100, 1.5), 100);
}

TEST(Binomial, ResultAlwaysInRange) {
  RandomStream rng{7, 10};
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t k = rng.binomial(50, 0.3);
    ASSERT_GE(k, 0);
    ASSERT_LE(k, 50);
  }
}

/// Property sweep: the empirical mean of binomial(n, p) must match n*p in
/// all three sampling regimes (geometric skip, direct trials, normal
/// approximation).
struct BinomialCase {
  std::int64_t n;
  double p;
};

class BinomialSweep : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialSweep, MeanMatches) {
  const auto [n, p] = GetParam();
  RandomStream rng{11, static_cast<std::uint64_t>(n)};
  const int trials = 20'000;
  double sum = 0.0;
  for (int i = 0; i < trials; ++i) sum += static_cast<double>(rng.binomial(n, p));
  const double mean = sum / trials;
  const double expected = static_cast<double>(n) * p;
  const double sigma = std::sqrt(expected * (1.0 - p) / trials);
  EXPECT_NEAR(mean, expected, std::max(5.0 * sigma, 0.02 * expected + 0.01));
}

INSTANTIATE_TEST_SUITE_P(Regimes, BinomialSweep,
                         ::testing::Values(BinomialCase{1000, 1e-4},   // geometric skip
                                           BinomialCase{1000, 0.01},   // geometric skip
                                           BinomialCase{200, 0.1},     // direct trials
                                           BinomialCase{50, 0.4},      // direct trials
                                           BinomialCase{1000, 0.25},   // normal approx
                                           BinomialCase{800, 0.5}));   // normal approx

}  // namespace
}  // namespace nomc::sim
