#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace nomc::sim {
namespace {

TEST(SimTime, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.ticks(), 0);
  EXPECT_EQ(SimTime{}, SimTime::zero());
}

TEST(SimTime, FactoryUnits) {
  EXPECT_EQ(SimTime::nanoseconds(1).ticks(), 1);
  EXPECT_EQ(SimTime::microseconds(1).ticks(), 1'000);
  EXPECT_EQ(SimTime::milliseconds(1).ticks(), 1'000'000);
  EXPECT_EQ(SimTime::seconds(1.0).ticks(), 1'000'000'000);
  EXPECT_EQ(SimTime::seconds(0.5).ticks(), 500'000'000);
}

TEST(SimTime, RoundTripConversions) {
  const SimTime t = SimTime::milliseconds(1250);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.25);
  EXPECT_DOUBLE_EQ(t.to_milliseconds(), 1250.0);
  EXPECT_DOUBLE_EQ(t.to_microseconds(), 1'250'000.0);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::microseconds(300);
  const SimTime b = SimTime::microseconds(200);
  EXPECT_EQ(a + b, SimTime::microseconds(500));
  EXPECT_EQ(a - b, SimTime::microseconds(100));
  EXPECT_EQ(a * 3, SimTime::microseconds(900));
  EXPECT_EQ(3 * a, SimTime::microseconds(900));
  EXPECT_EQ(a / b, 1);
  EXPECT_EQ(SimTime::microseconds(640) / SimTime::microseconds(320), 2);
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = SimTime::microseconds(100);
  t += SimTime::microseconds(50);
  EXPECT_EQ(t, SimTime::microseconds(150));
  t -= SimTime::microseconds(150);
  EXPECT_EQ(t, SimTime::zero());
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::microseconds(1), SimTime::microseconds(2));
  EXPECT_LE(SimTime::microseconds(2), SimTime::microseconds(2));
  EXPECT_GT(SimTime::seconds(1.0), SimTime::milliseconds(999));
  EXPECT_LT(SimTime::zero(), SimTime::max());
}

TEST(SimTime, ToString) {
  EXPECT_EQ(to_string(SimTime::seconds(2.0)), "2s");
  EXPECT_EQ(to_string(SimTime::milliseconds(3)), "3ms");
  EXPECT_EQ(to_string(SimTime::microseconds(320)), "320us");
  EXPECT_EQ(to_string(SimTime::nanoseconds(7)), "7ns");
}

}  // namespace
}  // namespace nomc::sim
