#include "sim/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "sim/random.hpp"

namespace nomc::sim {
namespace {

/// A deterministic, seed-dependent stand-in for one simulation trial: the
/// result depends only on the index, never on scheduling.
double fake_trial(int index) {
  RandomStream rng{static_cast<std::uint64_t>(index) + 1, 0};
  double accumulated = 0.0;
  for (int i = 0; i < 1000; ++i) accumulated += rng.uniform();
  return accumulated;
}

TEST(ParallelRunner, ResolveJobs) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(7), 7);
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_GE(resolve_jobs(-3), 1);
}

TEST(ParallelRunner, MapReturnsIndexOrderedResults) {
  ParallelRunner runner{4};
  const auto results = runner.map(32, [](int i) { return i * i; });
  ASSERT_EQ(results.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
}

TEST(ParallelRunner, MapHandlesZeroAndSingleCounts) {
  ParallelRunner runner{4};
  EXPECT_TRUE(runner.map(0, [](int i) { return i; }).empty());
  const auto one = runner.map(1, [](int i) { return i + 41; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 41);
}

TEST(ParallelRunner, ForEachVisitsEveryIndexOnce) {
  ParallelRunner runner{8};
  std::vector<std::atomic<int>> visits(100);
  runner.for_each(100, [&](int i) { visits[static_cast<std::size_t>(i)]++; });
  for (const auto& count : visits) EXPECT_EQ(count.load(), 1);
}

/// The determinism contract: identical results regardless of the job count.
TEST(ParallelRunner, BitIdenticalAcrossJobCounts) {
  constexpr int kTrials = 24;
  std::vector<double> serial;
  for (const int jobs : {1, 2, 8}) {
    ParallelRunner runner{jobs};
    const auto results = runner.map(kTrials, fake_trial);
    ASSERT_EQ(results.size(), static_cast<std::size_t>(kTrials));
    if (jobs == 1) {
      serial = results;
      continue;
    }
    for (int i = 0; i < kTrials; ++i) {
      // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the contract is bit identity.
      EXPECT_EQ(results[static_cast<std::size_t>(i)], serial[static_cast<std::size_t>(i)])
          << "trial " << i << " diverged at jobs=" << jobs;
    }
  }
}

/// An index-ordered reduction over map() output must not depend on jobs
/// either — this is exactly how run_band averages trials.
TEST(ParallelRunner, OrderedReductionIsStable) {
  auto reduce = [](int jobs) {
    ParallelRunner runner{jobs};
    const auto results = runner.map(16, fake_trial);
    return std::accumulate(results.begin(), results.end(), 0.0);
  };
  const double serial = reduce(1);
  EXPECT_EQ(reduce(2), serial);
  EXPECT_EQ(reduce(8), serial);
}

TEST(ParallelRunner, ReusableAcrossBatches) {
  ParallelRunner runner{4};
  for (int round = 0; round < 50; ++round) {
    const auto results = runner.map(8, [round](int i) { return round * 100 + i; });
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(results[static_cast<std::size_t>(i)], round * 100 + i);
    }
  }
}

TEST(ParallelRunner, PropagatesExceptions) {
  ParallelRunner runner{4};
  EXPECT_THROW(runner.for_each(16,
                               [](int i) {
                                 if (i == 7) throw std::runtime_error{"trial failed"};
                               }),
               std::runtime_error);
  // The pool must survive a failed batch.
  const auto results = runner.map(4, [](int i) { return i; });
  EXPECT_EQ(results, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace nomc::sim
