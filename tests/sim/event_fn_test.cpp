#include "sim/event_fn.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>

#include "phy/frame.hpp"

namespace nomc::sim {
namespace {

TEST(EventFn, SmallCallableStaysInline) {
  int hits = 0;
  EventFn fn{[&hits] { ++hits; }};
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(EventFn, RadioEndOfFrameClosureStaysInline) {
  // The hottest closure in the simulator: Radio's end-of-frame event captures
  // a this-pointer plus a phy::Frame by value. Pin that it never regresses to
  // a heap allocation — kInlineCapacity is sized for exactly this.
  int sink = 0;
  phy::Frame frame;
  int* self = &sink;
  EventFn fn{[self, frame] { *self = static_cast<int>(frame.psdu_bytes); }};
  EXPECT_TRUE(fn.is_inline());
}

TEST(EventFn, OversizedCallableGoesToHeapAndStillWorks) {
  std::array<double, 32> payload{};  // 256 bytes: beyond inline capacity
  payload[31] = 42.0;
  double out = 0.0;
  EventFn fn{[payload, &out] { out = payload[31]; }};
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(out, 42.0);
}

TEST(EventFn, MoveTransfersOwnership) {
  int hits = 0;
  EventFn a{[&hits] { ++hits; }};
  EventFn b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): tested on purpose
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  EventFn c;
  c = std::move(b);
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(EventFn, MoveOnlyCaptureSchedulesCleanly) {
  // std::function rejects move-only captures; EventFn must not.
  auto payload = std::make_unique<int>(7);
  int out = 0;
  EventFn fn{[p = std::move(payload), &out] { out = *p; }};
  fn();
  EXPECT_EQ(out, 7);
}

TEST(EventFn, DestructionReleasesCapturedResources) {
  const auto counter = std::make_shared<int>(0);
  {
    EventFn inline_fn{[counter] { (void)counter; }};
    std::array<char, 200> pad{};
    EventFn heap_fn{[counter, pad] { (void)pad; }};
    EXPECT_TRUE(inline_fn.is_inline());
    EXPECT_FALSE(heap_fn.is_inline());
    EXPECT_EQ(counter.use_count(), 3);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(EventFn, MoveAssignDestroysPreviousCallable) {
  const auto old_payload = std::make_shared<int>(0);
  EventFn fn{[old_payload] { (void)old_payload; }};
  EXPECT_EQ(old_payload.use_count(), 2);
  fn = EventFn{[] {}};
  EXPECT_EQ(old_payload.use_count(), 1);
  fn();  // the replacement is the live callable
}

}  // namespace
}  // namespace nomc::sim
