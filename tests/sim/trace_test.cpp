#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "net/scenario.hpp"
#include "sim/scheduler.hpp"

namespace nomc {
namespace {

TEST(Trace, MemorySinkCollectsAndCounts) {
  sim::MemoryTraceSink sink;
  sink.emit({.at = sim::SimTime::microseconds(1), .category = "mac", .event = "cca_busy"});
  sink.emit({.at = sim::SimTime::microseconds(2), .category = "mac", .event = "cca_busy"});
  sink.emit({.at = sim::SimTime::microseconds(3), .category = "phy", .event = "tx_start"});
  EXPECT_EQ(sink.records().size(), 3u);
  EXPECT_EQ(sink.count("mac", "cca_busy"), 2u);
  EXPECT_EQ(sink.count("mac", ""), 2u);
  EXPECT_EQ(sink.count("", "tx_start"), 1u);
  EXPECT_EQ(sink.count("", ""), 3u);
  sink.clear();
  EXPECT_TRUE(sink.records().empty());
}

TEST(Trace, SchedulerStampsAndForwards) {
  sim::Scheduler scheduler;
  sim::MemoryTraceSink sink;
  scheduler.set_trace(&sink);
  scheduler.schedule_at(sim::SimTime::milliseconds(5), [&] {
    scheduler.trace_event({.category = "test", .event = "tick", .node = 7, .value = 1.5});
  });
  scheduler.run_all();
  ASSERT_EQ(sink.records().size(), 1u);
  EXPECT_EQ(sink.records()[0].at, sim::SimTime::milliseconds(5));
  EXPECT_EQ(sink.records()[0].node, 7u);
  EXPECT_EQ(sink.records()[0].value, 1.5);
}

TEST(Trace, NoSinkNoEmission) {
  sim::Scheduler scheduler;
  // Must be a no-op, not a crash.
  scheduler.trace_event({.category = "test", .event = "tick"});
  EXPECT_EQ(scheduler.trace(), nullptr);
}

TEST(Trace, ScenarioEmitsStackEvents) {
  net::Scenario scenario;
  sim::MemoryTraceSink sink;
  scenario.scheduler().set_trace(&sink);

  const int n = scenario.add_network(phy::Mhz{2460.0}, net::Scheme::kDcn);
  net::LinkSpec link;
  link.sender_pos = {0.0, 0.0};
  link.receiver_pos = {0.0, 2.0};
  scenario.add_link(n, link);
  net::LinkSpec link2;
  link2.sender_pos = {1.0, 0.0};
  link2.receiver_pos = {1.0, 2.0};
  scenario.add_link(n, link2);
  scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(1.0));

  EXPECT_GT(sink.count("phy", "tx_start"), 100u);
  EXPECT_GT(sink.count("phy", "rx_ok"), 100u);
  EXPECT_GT(sink.count("mac", "cca_busy"), 0u);   // two saturated co-channel links
  EXPECT_EQ(sink.count("dcn", "threshold_init"), 2u);  // one per DCN sender
}

TEST(Trace, CsvSinkWritesParsableLines) {
  const std::string path = "trace_test_out.csv";
  {
    sim::CsvTraceSink sink{path};
    sink.emit({.at = sim::SimTime::microseconds(1500), .category = "mac",
               .event = "cca_busy", .node = 3, .value = -76.5, .detail = "x"});
  }
  std::ifstream in{path};
  std::string header;
  std::string line;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(header, "time_us,category,event,node,value,detail");
  EXPECT_EQ(line, "1500.000,mac,cca_busy,3,-76.5,x");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nomc
