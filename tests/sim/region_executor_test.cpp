// RegionExecutor twin-run determinism: the same sharded workload must
// produce a byte-identical event log at every worker count — the property
// the whole intra-trial parallelism design stands on — plus the protocol
// edges: the lookahead contract is enforced, a single shard degrades to the
// serial scheduler, and messages stamped exactly at the run horizon fire.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/region_executor.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace nomc {
namespace {

constexpr sim::SimTime kLookahead = sim::SimTime::microseconds(192);

/// A deterministic multi-shard workload exercising local events, cross-shard
/// messages at the minimum legal delay, and heavy mid-window cancellation.
/// Each shard appends only to its own log (single-writer, like a Medium), so
/// the concatenated logs are the run's full event trace.
class World {
 public:
  World(int shards, int workers)
      : executor_{{.lookahead = kLookahead, .workers = workers}} {
    logs_.resize(static_cast<std::size_t>(shards));
    victims_.resize(static_cast<std::size_t>(shards), sim::kInvalidEventId);
    for (int s = 0; s < shards; ++s) {
      schedulers_.push_back(std::make_unique<sim::Scheduler>());
      executor_.add_shard(schedulers_.back().get());
    }
    for (int s = 0; s < shards; ++s) tick(s, 0);
  }

  void run(sim::SimTime end) { executor_.run_until(end); }

  [[nodiscard]] std::vector<std::string> log() const {
    std::vector<std::string> merged;
    for (const auto& shard_log : logs_) {
      merged.insert(merged.end(), shard_log.begin(), shard_log.end());
    }
    return merged;
  }

  [[nodiscard]] sim::RegionExecutor& executor() { return executor_; }

 private:
  void note(int shard, const std::string& what) {
    logs_[static_cast<std::size_t>(shard)].push_back(
        std::to_string(schedulers_[static_cast<std::size_t>(shard)]->now().ticks()) + " s" +
        std::to_string(shard) + " " + what);
  }

  /// One local step every 50 us: log, schedule a victim event 30 us out and
  /// cancel it on odd steps (cancel-heavy: half the schedule volume dies
  /// mid-window), and every third step send a message to the next shard at
  /// the minimum legal cross-shard delay.
  void tick(int shard, int step) {
    sim::Scheduler& sched = *schedulers_[static_cast<std::size_t>(shard)];
    const auto idx = static_cast<std::size_t>(shard);
    sched.schedule_at(sim::SimTime::microseconds(50) * step, [this, shard, step, idx] {
      note(shard, "tick " + std::to_string(step));
      sim::Scheduler& local = *schedulers_[idx];
      // A victim from a previous step may still be pending; cancel it too,
      // so cancellations also cross window boundaries.
      if (step % 5 == 2) local.cancel(victims_[idx]);
      victims_[idx] = local.schedule_in(sim::SimTime::microseconds(30), [this, shard, step] {
        note(shard, "victim " + std::to_string(step));
      });
      if (step % 2 == 1) local.cancel(victims_[idx]);
      if (step % 3 == 0) {
        const int target = (shard + 1) % executor_.shard_count();
        executor_.post(shard, target, local.now() + kLookahead,
                       [this, target, shard, step] {
                         note(target, "msg from s" + std::to_string(shard) + " step " +
                                          std::to_string(step));
                       });
      }
      tick(shard, step + 1);
    });
  }

  sim::RegionExecutor executor_;
  std::vector<std::unique_ptr<sim::Scheduler>> schedulers_;
  std::vector<std::vector<std::string>> logs_;
  std::vector<sim::EventId> victims_;
};

std::vector<std::string> run_world(int shards, int workers) {
  World world{shards, workers};
  world.run(sim::SimTime::milliseconds(20));
  return world.log();
}

TEST(RegionExecutor, ByteIdenticalLogAcrossWorkerCounts) {
  const std::vector<std::string> serial = run_world(3, 1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, run_world(3, 2));
  EXPECT_EQ(serial, run_world(3, 7));
}

TEST(RegionExecutor, ManyShardsStillDeterministic) {
  EXPECT_EQ(run_world(7, 1), run_world(7, 7));
}

TEST(RegionExecutor, SingleShardMatchesPlainScheduler) {
  // The executor path with one shard and the bare scheduler must execute the
  // same events: the degradation the golden-store argument relies on.
  World world{1, 4};
  world.run(sim::SimTime::milliseconds(5));
  World plain{1, 1};
  plain.run(sim::SimTime::milliseconds(5));
  EXPECT_EQ(world.log(), plain.log());
}

TEST(RegionExecutor, InWindowPostBelowLookaheadThrows) {
  sim::Scheduler a;
  sim::Scheduler b;
  sim::RegionExecutor executor{{.lookahead = kLookahead, .workers = 1}};
  executor.add_shard(&a);
  executor.add_shard(&b);
  a.schedule_at(sim::SimTime::microseconds(10), [&] {
    // 10 us < the 192 us lookahead: delivering this would require a message
    // to land inside the very window that produced it.
    executor.post(0, 1, a.now() + sim::SimTime::microseconds(10), [] {});
  });
  EXPECT_THROW(executor.run_until(sim::SimTime::milliseconds(1)), std::logic_error);
}

TEST(RegionExecutor, MessageAtExactHorizonFires) {
  sim::Scheduler a;
  sim::Scheduler b;
  sim::RegionExecutor executor{{.lookahead = kLookahead, .workers = 1}};
  executor.add_shard(&a);
  executor.add_shard(&b);
  const sim::SimTime end = sim::SimTime::microseconds(500);
  bool fired = false;
  // Posted between windows, stamped exactly at the run horizon: run_until is
  // end-inclusive, so the flush pass must deliver it.
  executor.post(0, 1, end, [&fired] { fired = true; });
  executor.run_until(end);
  EXPECT_TRUE(fired);
  EXPECT_EQ(executor.messages_delivered(), 1u);
}

TEST(RegionExecutor, ZeroLookaheadWithMultipleShardsThrows) {
  sim::Scheduler a;
  sim::Scheduler b;
  sim::RegionExecutor executor{{.lookahead = sim::SimTime::zero(), .workers = 2}};
  executor.add_shard(&a);
  executor.add_shard(&b);
  EXPECT_THROW(executor.run_until(sim::SimTime::microseconds(1)), std::logic_error);
}

}  // namespace
}  // namespace nomc
