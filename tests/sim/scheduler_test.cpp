#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"

namespace nomc::sim {
namespace {

TEST(Scheduler, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), SimTime::zero());
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::microseconds(30), [&] { order.push_back(3); });
  s.schedule_at(SimTime::microseconds(10), [&] { order.push_back(1); });
  s.schedule_at(SimTime::microseconds(20), [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime::microseconds(30));
}

TEST(Scheduler, EqualTimesRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(SimTime::microseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ScheduleInIsRelative) {
  Scheduler s;
  SimTime observed;
  s.schedule_at(SimTime::microseconds(100), [&] {
    s.schedule_in(SimTime::microseconds(50), [&] { observed = s.now(); });
  });
  s.run_all();
  EXPECT_EQ(observed, SimTime::microseconds(150));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_at(SimTime::microseconds(10), [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run_all();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.executed(), 0u);
}

TEST(Scheduler, CancelTwiceFails) {
  Scheduler s;
  const EventId id = s.schedule_at(SimTime::microseconds(10), [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Scheduler, CancelAfterRunFails) {
  Scheduler s;
  const EventId id = s.schedule_at(SimTime::microseconds(10), [] {});
  s.run_all();
  EXPECT_FALSE(s.cancel(id));
}

TEST(Scheduler, CancelInvalidIdFails) {
  Scheduler s;
  EXPECT_FALSE(s.cancel(kInvalidEventId));
  EXPECT_FALSE(s.cancel(999));
}

TEST(Scheduler, PendingCountTracksLiveEvents) {
  Scheduler s;
  const EventId a = s.schedule_at(SimTime::microseconds(10), [] {});
  s.schedule_at(SimTime::microseconds(20), [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.run_all();
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, RunUntilStopsAtHorizon) {
  Scheduler s;
  int ran = 0;
  s.schedule_at(SimTime::microseconds(10), [&] { ++ran; });
  s.schedule_at(SimTime::microseconds(30), [&] { ++ran; });
  s.run_until(SimTime::microseconds(20));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.now(), SimTime::microseconds(20));
  // The later event is still pending and runs on the next horizon.
  s.run_until(SimTime::microseconds(40));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(s.now(), SimTime::microseconds(40));
}

TEST(Scheduler, RunUntilInclusiveOfBoundary) {
  Scheduler s;
  bool ran = false;
  s.schedule_at(SimTime::microseconds(20), [&] { ran = true; });
  s.run_until(SimTime::microseconds(20));
  EXPECT_TRUE(ran);
}

TEST(Scheduler, RunUntilAdvancesTimeEvenWhenEmpty) {
  Scheduler s;
  s.run_until(SimTime::seconds(5.0));
  EXPECT_EQ(s.now(), SimTime::seconds(5.0));
}

TEST(Scheduler, RunUntilSkipsCancelledHeadEvents) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_at(SimTime::microseconds(5), [&] { ran = true; });
  s.schedule_at(SimTime::microseconds(50), [&] { ran = true; });
  s.cancel(id);
  // Horizon between the two events: the cancelled head must not block or
  // trigger anything.
  s.run_until(SimTime::microseconds(10));
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.now(), SimTime::microseconds(10));
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) s.schedule_in(SimTime::microseconds(10), chain);
  };
  s.schedule_at(SimTime::microseconds(10), chain);
  s.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), SimTime::microseconds(50));
}

TEST(Scheduler, EventsCanCancelOtherEvents) {
  Scheduler s;
  bool victim_ran = false;
  const EventId victim = s.schedule_at(SimTime::microseconds(20), [&] { victim_ran = true; });
  s.schedule_at(SimTime::microseconds(10), [&] { s.cancel(victim); });
  s.run_all();
  EXPECT_FALSE(victim_ran);
}

// Regression for the generation-slot liveness tracking: FIFO tie-breaking at
// equal timestamps must hold even when cancellations recycle slots in the
// middle of the equal-time group, so a reused slot's new event keeps its new
// insertion order and the stale heap entry stays dead.
TEST(Scheduler, FifoTieBreakSurvivesSlotReuse) {
  Scheduler s;
  std::vector<int> order;
  const SimTime at = SimTime::microseconds(5);
  std::vector<EventId> doomed;
  for (int i = 0; i < 4; ++i) {
    doomed.push_back(s.schedule_at(at, [&order] { order.push_back(-1); }));
  }
  s.schedule_at(at, [&order] { order.push_back(0); });
  // Cancelling frees the four slots; the next schedules reuse them while
  // their dead entries are still sitting in the heap at the same timestamp.
  for (const EventId id : doomed) EXPECT_TRUE(s.cancel(id));
  for (int i = 1; i < 6; ++i) {
    s.schedule_at(at, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(s.executed(), 6u);
}

// A cancelled id whose slot was recycled must not cancel the new tenant.
TEST(Scheduler, StaleIdCannotCancelRecycledSlot) {
  Scheduler s;
  const EventId old_id = s.schedule_at(SimTime::microseconds(10), [] {});
  EXPECT_TRUE(s.cancel(old_id));
  bool ran = false;
  s.schedule_at(SimTime::microseconds(10), [&ran] { ran = true; });
  EXPECT_FALSE(s.cancel(old_id));  // stale generation
  s.run_all();
  EXPECT_TRUE(ran);
}

TEST(Scheduler, ExecutedCounts) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_at(SimTime::microseconds(i), [] {});
  s.run_all();
  EXPECT_EQ(s.executed(), 7u);
}

/// Property: any randomly generated schedule executes in nondecreasing time
/// order, regardless of insertion order and cancellations.
class SchedulerRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerRandomSweep, TotalOrderHolds) {
  Scheduler s;
  RandomStream rng{GetParam(), 0};
  std::vector<SimTime> executed_at;
  std::vector<EventId> ids;
  for (int i = 0; i < 500; ++i) {
    const SimTime at = SimTime::microseconds(rng.uniform_int(0, 10'000));
    ids.push_back(s.schedule_at(at, [&executed_at, &s] { executed_at.push_back(s.now()); }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) s.cancel(ids[i]);
  s.run_all();
  EXPECT_EQ(executed_at.size(), 500u - (500u + 2) / 3);
  for (std::size_t i = 1; i < executed_at.size(); ++i) {
    ASSERT_LE(executed_at[i - 1], executed_at[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerRandomSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace nomc::sim
