#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "sim/random.hpp"

namespace nomc::sim {
namespace {

TEST(Scheduler, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), SimTime::zero());
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::microseconds(30), [&] { order.push_back(3); });
  s.schedule_at(SimTime::microseconds(10), [&] { order.push_back(1); });
  s.schedule_at(SimTime::microseconds(20), [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime::microseconds(30));
}

TEST(Scheduler, EqualTimesRunFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(SimTime::microseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ScheduleInIsRelative) {
  Scheduler s;
  SimTime observed;
  s.schedule_at(SimTime::microseconds(100), [&] {
    s.schedule_in(SimTime::microseconds(50), [&] { observed = s.now(); });
  });
  s.run_all();
  EXPECT_EQ(observed, SimTime::microseconds(150));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_at(SimTime::microseconds(10), [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run_all();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.executed(), 0u);
}

TEST(Scheduler, CancelTwiceFails) {
  Scheduler s;
  const EventId id = s.schedule_at(SimTime::microseconds(10), [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Scheduler, CancelAfterRunFails) {
  Scheduler s;
  const EventId id = s.schedule_at(SimTime::microseconds(10), [] {});
  s.run_all();
  EXPECT_FALSE(s.cancel(id));
}

TEST(Scheduler, CancelInvalidIdFails) {
  Scheduler s;
  EXPECT_FALSE(s.cancel(kInvalidEventId));
  EXPECT_FALSE(s.cancel(999));
}

TEST(Scheduler, PendingCountTracksLiveEvents) {
  Scheduler s;
  const EventId a = s.schedule_at(SimTime::microseconds(10), [] {});
  s.schedule_at(SimTime::microseconds(20), [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.run_all();
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, RunUntilStopsAtHorizon) {
  Scheduler s;
  int ran = 0;
  s.schedule_at(SimTime::microseconds(10), [&] { ++ran; });
  s.schedule_at(SimTime::microseconds(30), [&] { ++ran; });
  s.run_until(SimTime::microseconds(20));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.now(), SimTime::microseconds(20));
  // The later event is still pending and runs on the next horizon.
  s.run_until(SimTime::microseconds(40));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(s.now(), SimTime::microseconds(40));
}

TEST(Scheduler, RunUntilInclusiveOfBoundary) {
  Scheduler s;
  bool ran = false;
  s.schedule_at(SimTime::microseconds(20), [&] { ran = true; });
  s.run_until(SimTime::microseconds(20));
  EXPECT_TRUE(ran);
}

TEST(Scheduler, RunUntilAdvancesTimeEvenWhenEmpty) {
  Scheduler s;
  s.run_until(SimTime::seconds(5.0));
  EXPECT_EQ(s.now(), SimTime::seconds(5.0));
}

TEST(Scheduler, RunUntilSkipsCancelledHeadEvents) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_at(SimTime::microseconds(5), [&] { ran = true; });
  s.schedule_at(SimTime::microseconds(50), [&] { ran = true; });
  s.cancel(id);
  // Horizon between the two events: the cancelled head must not block or
  // trigger anything.
  s.run_until(SimTime::microseconds(10));
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.now(), SimTime::microseconds(10));
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) s.schedule_in(SimTime::microseconds(10), chain);
  };
  s.schedule_at(SimTime::microseconds(10), chain);
  s.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), SimTime::microseconds(50));
}

TEST(Scheduler, EventsCanCancelOtherEvents) {
  Scheduler s;
  bool victim_ran = false;
  const EventId victim = s.schedule_at(SimTime::microseconds(20), [&] { victim_ran = true; });
  s.schedule_at(SimTime::microseconds(10), [&] { s.cancel(victim); });
  s.run_all();
  EXPECT_FALSE(victim_ran);
}

// Regression for the generation-slot liveness tracking: FIFO tie-breaking at
// equal timestamps must hold even when cancellations recycle slots in the
// middle of the equal-time group, so a reused slot's new event keeps its new
// insertion order and the stale heap entry stays dead.
TEST(Scheduler, FifoTieBreakSurvivesSlotReuse) {
  Scheduler s;
  std::vector<int> order;
  const SimTime at = SimTime::microseconds(5);
  std::vector<EventId> doomed;
  for (int i = 0; i < 4; ++i) {
    doomed.push_back(s.schedule_at(at, [&order] { order.push_back(-1); }));
  }
  s.schedule_at(at, [&order] { order.push_back(0); });
  // Cancelling frees the four slots; the next schedules reuse them while
  // their dead entries are still sitting in the heap at the same timestamp.
  for (const EventId id : doomed) EXPECT_TRUE(s.cancel(id));
  for (int i = 1; i < 6; ++i) {
    s.schedule_at(at, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(s.executed(), 6u);
}

// A cancelled id whose slot was recycled must not cancel the new tenant.
TEST(Scheduler, StaleIdCannotCancelRecycledSlot) {
  Scheduler s;
  const EventId old_id = s.schedule_at(SimTime::microseconds(10), [] {});
  EXPECT_TRUE(s.cancel(old_id));
  bool ran = false;
  s.schedule_at(SimTime::microseconds(10), [&ran] { ran = true; });
  EXPECT_FALSE(s.cancel(old_id));  // stale generation
  s.run_all();
  EXPECT_TRUE(ran);
}

TEST(Scheduler, ExecutedCounts) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_at(SimTime::microseconds(i), [] {});
  s.run_all();
  EXPECT_EQ(s.executed(), 7u);
}

/// Property: any randomly generated schedule executes in nondecreasing time
/// order, regardless of insertion order and cancellations.
class SchedulerRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerRandomSweep, TotalOrderHolds) {
  Scheduler s;
  RandomStream rng{GetParam(), 0};
  std::vector<SimTime> executed_at;
  std::vector<EventId> ids;
  for (int i = 0; i < 500; ++i) {
    const SimTime at = SimTime::microseconds(rng.uniform_int(0, 10'000));
    ids.push_back(s.schedule_at(at, [&executed_at, &s] { executed_at.push_back(s.now()); }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) s.cancel(ids[i]);
  s.run_all();
  EXPECT_EQ(executed_at.size(), 500u - (500u + 2) / 3);
  for (std::size_t i = 1; i < executed_at.size(); ++i) {
    ASSERT_LE(executed_at[i - 1], executed_at[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerRandomSweep, ::testing::Values(1, 2, 3, 4, 5));

// ---- Calendar-queue specifics ---------------------------------------------
// The pending set is a calendar queue (see scheduler.hpp); these pin the
// structural edge cases a binary heap never had: bucket-count resizes, the
// one-year scan limit with its direct-search fallback, cursor movement when
// events land behind a far-future jump, and dead-entry purging.

/// Property: execution order is exactly (time, insertion sequence) — not just
/// nondecreasing time — under heavy churn that forces grow/shrink/purge
/// rebuilds. A reference sort of the surviving events must match 1:1.
TEST(Scheduler, RandomizedStressMatchesReferenceOrder) {
  Scheduler s;
  RandomStream rng{20260808, 0};
  struct Expected {
    SimTime at;
    int label;
  };
  std::vector<Expected> expected;
  std::vector<int> executed;
  std::vector<EventId> ids;
  std::vector<int> labels;
  for (int i = 0; i < 5000; ++i) {
    // Mixed scales: dense microsecond traffic plus sparse second-scale tails
    // so rebuilds re-derive very different bucket widths.
    const SimTime at = rng.uniform_int(0, 9) == 0
                           ? SimTime::milliseconds(rng.uniform_int(0, 5'000))
                           : SimTime::microseconds(rng.uniform_int(0, 20'000));
    ids.push_back(s.schedule_at(at, [&executed, i] { executed.push_back(i); }));
    labels.push_back(i);
    expected.push_back({at, i});
  }
  // Cancel a third; the calendar must purge them without disturbing order.
  std::vector<bool> cancelled(ids.size(), false);
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    ASSERT_TRUE(s.cancel(ids[i]));
    cancelled[i] = true;
  }
  std::erase_if(expected, [&](const Expected& e) {
    return cancelled[static_cast<std::size_t>(e.label)];
  });
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Expected& a, const Expected& b) { return a.at < b.at; });
  s.run_all();
  ASSERT_EQ(executed.size(), expected.size());
  for (std::size_t i = 0; i < executed.size(); ++i) {
    ASSERT_EQ(executed[i], expected[i].label) << "divergence at event " << i;
  }
}

TEST(Scheduler, FarFutureEventUsesDirectSearch) {
  // A gap wider than one calendar year (bucket_count * bucket_width) forces
  // the direct-search fallback; the event must still run, exactly once.
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::nanoseconds(1), [&order] { order.push_back(1); });
  s.schedule_at(SimTime::seconds(3600), [&order] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), SimTime::seconds(3600));
}

TEST(Scheduler, ScheduleBehindFarFutureCursorStillRuns) {
  // Regression: a horizon-bounded search that lands on a far-future event
  // jumps the cursor to that event's day. An event scheduled afterwards at
  // an EARLIER day (but still in the future) must pull the cursor back or it
  // would be skipped by the next year scan.
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::seconds(1), [&order] { order.push_back(1); });
  s.schedule_at(SimTime::seconds(7200), [&order] { order.push_back(3); });
  s.run_until(SimTime::seconds(2));  // runs #1, peeks #3 via direct search
  ASSERT_EQ(order, (std::vector<int>{1}));
  s.schedule_at(SimTime::seconds(10), [&order] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, SameTimestampStormRunsFifo) {
  // Thousands of events in one bucket-day: the min-scan must fall back to
  // sequence order, and the tie-break must hold across the whole storm.
  Scheduler s;
  const SimTime at = SimTime::milliseconds(5);
  std::vector<int> order;
  for (int i = 0; i < 4000; ++i) {
    s.schedule_at(at, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  ASSERT_EQ(order.size(), 4000u);
  for (int i = 0; i < 4000; ++i) ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, MassCancellationPurgesAndDrains) {
  // Cancel-heavy workloads (CSMA ack timeouts) must not leave the calendar
  // full of dead entries: after cancelling 90% the remainder runs normally.
  Scheduler s;
  std::vector<EventId> ids;
  std::vector<int> order;
  for (int i = 0; i < 10'000; ++i) {
    ids.push_back(s.schedule_at(SimTime::microseconds(i), [&order, i] { order.push_back(i); }));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 10 != 0) {
      ASSERT_TRUE(s.cancel(ids[i]));
    }
  }
  EXPECT_EQ(s.pending(), 1000u);
  s.run_all();
  ASSERT_EQ(order.size(), 1000u);
  for (std::size_t i = 1; i < order.size(); ++i) ASSERT_LT(order[i - 1], order[i]);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, EventsSchedulingEventsAcrossWidthScales) {
  // A self-rescheduling chain that alternates ns-scale and s-scale gaps
  // exercises repeated width re-derivation while events are in flight.
  Scheduler s;
  int hops = 0;
  std::function<void()> hop = [&] {
    ++hops;
    if (hops >= 40) return;
    const SimTime gap =
        hops % 2 == 0 ? SimTime::nanoseconds(50) : SimTime::seconds(hops % 5 + 1);
    s.schedule_in(gap, [&hop] { hop(); });
  };
  s.schedule_at(SimTime::zero(), [&hop] { hop(); });
  s.run_all();
  EXPECT_EQ(hops, 40);
}

}  // namespace
}  // namespace nomc::sim
