#include "phy/rejection.hpp"

#include <gtest/gtest.h>

namespace nomc::phy {
namespace {

TEST(Rejection, CoChannelIsZero) {
  EXPECT_EQ(ChannelRejection::cc2420_decode().attenuation(Mhz{0.0}).value, 0.0);
  EXPECT_EQ(ChannelRejection::cc2420_sensing().attenuation(Mhz{0.0}).value, 0.0);
}

TEST(Rejection, DefaultConstructorIsDecodeCurve) {
  const ChannelRejection def;
  const ChannelRejection decode = ChannelRejection::cc2420_decode();
  for (double f = 0.0; f <= 20.0; f += 0.5) {
    EXPECT_EQ(def.attenuation(Mhz{f}).value, decode.attenuation(Mhz{f}).value);
  }
}

TEST(Rejection, AnchorValuesExact) {
  const ChannelRejection decode = ChannelRejection::cc2420_decode();
  EXPECT_DOUBLE_EQ(decode.attenuation(Mhz{3.0}).value, 30.5);
  EXPECT_DOUBLE_EQ(decode.attenuation(Mhz{5.0}).value, 37.5);
  const ChannelRejection sensing = ChannelRejection::cc2420_sensing();
  EXPECT_DOUBLE_EQ(sensing.attenuation(Mhz{3.0}).value, 30.0);
  EXPECT_DOUBLE_EQ(sensing.attenuation(Mhz{5.0}).value, 36.0);
}

TEST(Rejection, LinearInterpolationBetweenAnchors) {
  const ChannelRejection decode = ChannelRejection::cc2420_decode();
  // Between 2 MHz (25.5 dB) and 3 MHz (30.5 dB): midpoint 28.0 dB.
  EXPECT_NEAR(decode.attenuation(Mhz{2.5}).value, 28.0, 1e-9);
}

TEST(Rejection, FlatBeyondLastAnchor) {
  const ChannelRejection decode = ChannelRejection::cc2420_decode();
  EXPECT_EQ(decode.attenuation(Mhz{15.0}).value, decode.attenuation(Mhz{40.0}).value);
}

TEST(Rejection, NegativeOffsetMirrors) {
  const ChannelRejection decode = ChannelRejection::cc2420_decode();
  EXPECT_EQ(decode.attenuation(Mhz{-3.0}).value, decode.attenuation(Mhz{3.0}).value);
}

TEST(Rejection, SensingNeverStrongerThanDecode) {
  // The energy detector lacks despreading gain: it must hear neighbours at
  // least as loudly as the demodulator rejects them.
  const ChannelRejection decode = ChannelRejection::cc2420_decode();
  const ChannelRejection sensing = ChannelRejection::cc2420_sensing();
  for (double f = 0.0; f <= 20.0; f += 0.25) {
    EXPECT_LE(sensing.attenuation(Mhz{f}).value, decode.attenuation(Mhz{f}).value + 1e-9)
        << "at offset " << f;
  }
}

TEST(Rejection, CustomCurve) {
  const ChannelRejection custom{{{Mhz{0.0}, Db{0.0}}, {Mhz{10.0}, Db{50.0}}}};
  EXPECT_NEAR(custom.attenuation(Mhz{5.0}).value, 25.0, 1e-9);
  EXPECT_EQ(custom.attenuation(Mhz{20.0}).value, 50.0);
}

TEST(Rejection, AnchorsAccessor) {
  const ChannelRejection decode = ChannelRejection::cc2420_decode();
  ASSERT_FALSE(decode.anchors().empty());
  EXPECT_EQ(decode.anchors().front().offset.value, 0.0);
}

/// Property: both calibrated curves are non-decreasing in offset.
class RejectionMonotone : public ::testing::TestWithParam<bool> {};

TEST_P(RejectionMonotone, NonDecreasing) {
  const ChannelRejection curve =
      GetParam() ? ChannelRejection::cc2420_decode() : ChannelRejection::cc2420_sensing();
  double prev = -1.0;
  for (double f = 0.0; f <= 25.0; f += 0.1) {
    const double cur = curve.attenuation(Mhz{f}).value;
    ASSERT_GE(cur, prev - 1e-12) << "at offset " << f;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(BothCurves, RejectionMonotone, ::testing::Bool());

}  // namespace
}  // namespace nomc::phy
