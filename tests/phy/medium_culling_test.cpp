// Spatial interference culling: the determinism contract.
//
// Culling is only allowed to make the medium faster, never different, at
// paper scale: the influence radius is derived so that a deployment smaller
// than the radius culls nothing, and the candidate-set summation replays
// begin_tx order. These tests drive a culled and an exhaustive medium
// through identical histories and require every query to agree BIT FOR BIT
// (EXPECT_EQ on doubles, no tolerance) — the property that keeps the golden
// stores byte-stable. City-scale tests then pin that far-field frames really
// are dropped, and that motion keeps the caches and the grid coherent.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "phy/medium.hpp"
#include "sim/random.hpp"

namespace nomc::phy {
namespace {

constexpr Mhz kChannels[] = {Mhz{2405.0}, Mhz{2425.0}, Mhz{2455.0}};

MediumConfig config_with(bool culling, double sigma = 2.5) {
  MediumConfig config;
  config.shadowing_sigma_db = sigma;
  config.culling.enabled = culling;
  return config;
}

/// Two mediums driven through one history. Frame ids are allocated from the
/// culled medium and reused verbatim on the exhaustive one, so shadowing
/// draws (hashed from the id) are comparable.
struct TwinMediums {
  explicit TwinMediums(double sigma = 2.5)
      : culled{config_with(true, sigma)}, exhaustive{config_with(false, sigma)} {}

  NodeId add_node(Vec2 at) {
    const NodeId id = culled.add_node(at);
    EXPECT_EQ(exhaustive.add_node(at), id);
    return id;
  }

  Frame begin(NodeId src, Mhz channel, Dbm power = Dbm{0.0}) {
    Frame frame;
    frame.id = culled.allocate_frame_id();
    frame.src = src;
    frame.channel = channel;
    frame.tx_power = power;
    frame.psdu_bytes = 100;
    culled.begin_tx(frame);
    exhaustive.begin_tx(frame);
    return frame;
  }

  void end(FrameId id) {
    culled.end_tx(id);
    exhaustive.end_tx(id);
  }

  void move(NodeId node, Vec2 to) {
    culled.set_position(node, to);
    exhaustive.set_position(node, to);
  }

  /// Every query the stack above issues, on every (node, channel) pair,
  /// compared with zero tolerance.
  void expect_identical_views(const std::vector<Frame>& on_air) {
    for (NodeId node = 0; node < culled.node_count(); ++node) {
      for (const Mhz channel : kChannels) {
        ASSERT_EQ(culled.sense_energy(node, channel).value,
                  exhaustive.sense_energy(node, channel).value)
            << "sense_energy diverged at node " << node;
        ASSERT_EQ(culled.interference(node, channel, 0).value,
                  exhaustive.interference(node, channel, 0).value)
            << "interference diverged at node " << node;
        ASSERT_EQ(culled.carrier_present(node, channel, Dbm{-77.0}),
                  exhaustive.carrier_present(node, channel, Dbm{-77.0}));
        const Medium::Overlap a = culled.overlap(node, channel, 0);
        const Medium::Overlap b = exhaustive.overlap(node, channel, 0);
        ASSERT_EQ(a.co, b.co);
        ASSERT_EQ(a.inter, b.inter);
      }
      for (const Frame& frame : on_air) {
        ASSERT_EQ(culled.rss(frame, node).value, exhaustive.rss(frame, node).value);
        ASSERT_EQ(culled.interference(node, frame.channel, frame.id).value,
                  exhaustive.interference(node, frame.channel, frame.id).value);
      }
    }
  }

  Medium culled;
  Medium exhaustive;
};

TEST(MediumCulling, PaperScaleIsBitIdenticalToExhaustive) {
  // 30 nodes across ~40 m — the paper's testbed scale, far inside the
  // influence radius, so the culled medium must reproduce the exhaustive one
  // exactly through a begin/end churn with mixed channels and powers.
  TwinMediums twins;
  sim::SplitMix64 mix{2026};
  auto coord = [&mix] { return static_cast<double>(mix.next() % 4000) / 100.0; };
  std::vector<NodeId> nodes;
  for (int i = 0; i < 30; ++i) nodes.push_back(twins.add_node({coord(), coord()}));

  std::vector<Frame> on_air;
  for (int round = 0; round < 8; ++round) {
    for (int k = 0; k < 4; ++k) {
      const NodeId src = nodes[mix.next() % nodes.size()];
      const Mhz channel = kChannels[mix.next() % 3];
      const Dbm power{static_cast<double>(mix.next() % 11) - 10.0};  // -10..0 dBm
      on_air.push_back(twins.begin(src, channel, power));
    }
    twins.expect_identical_views(on_air);
    // End a prefix: exercises slot recycling and shadow-map pooling while
    // later frames keep their begin order.
    for (int k = 0; k < 2 && !on_air.empty(); ++k) {
      twins.end(on_air.front().id);
      on_air.erase(on_air.begin());
    }
    twins.expect_identical_views(on_air);
  }
  EXPECT_TRUE(twins.culled.culling_enabled());
  EXPECT_FALSE(twins.exhaustive.culling_enabled());
}

TEST(MediumCulling, MotionInvalidationMatchesFreshlyBuiltMedium) {
  // The satellite contract: after a node moves, every query against the
  // sparse-cached medium must equal a medium constructed from scratch at the
  // post-move positions — bit for bit. A stale cache entry would diverge.
  TwinMediums twins;
  const NodeId a = twins.add_node({0.0, 0.0});
  const NodeId b = twins.add_node({10.0, 0.0});
  const NodeId c = twins.add_node({0.0, 15.0});
  std::vector<Frame> on_air;
  on_air.push_back(twins.begin(a, kChannels[0]));
  on_air.push_back(twins.begin(b, kChannels[1], Dbm{-5.0}));

  // Warm every cache, then move nodes (including an active transmitter).
  twins.expect_identical_views(on_air);
  twins.move(b, {3.0, 4.0});
  twins.move(c, {1.0, 1.0});
  twins.expect_identical_views(on_air);

  // Fresh medium at the final geometry: replay the same frames (same ids)
  // so shadowing draws match, and require the moved mediums to agree with a
  // cache that never saw the old positions.
  Medium fresh{config_with(false)};
  EXPECT_EQ(fresh.add_node({0.0, 0.0}), a);
  EXPECT_EQ(fresh.add_node({3.0, 4.0}), b);
  EXPECT_EQ(fresh.add_node({1.0, 1.0}), c);
  for (const Frame& frame : on_air) fresh.begin_tx(frame);
  for (NodeId node = 0; node < fresh.node_count(); ++node) {
    for (const Mhz channel : kChannels) {
      ASSERT_EQ(twins.culled.sense_energy(node, channel).value,
                fresh.sense_energy(node, channel).value);
    }
    for (const Frame& frame : on_air) {
      ASSERT_EQ(twins.culled.rss(frame, node).value, fresh.rss(frame, node).value);
    }
  }
}

TEST(MediumCulling, InfluenceRadiusCoversPaperScaleAndBoundsCityScale) {
  Medium medium{config_with(true)};
  // sigma 2.5, cap 6 sigma, floor −105 dBm: a 0 dBm sender must be heard
  // kilometres out (covers any paper-scale deployment) but not across a city.
  const double r = medium.influence_radius_m(Dbm{0.0});
  EXPECT_GT(r, 1000.0);
  EXPECT_LT(r, 50'000.0);
  // Quieter senders reach less far; the radius is monotone in tx power.
  EXPECT_LT(medium.influence_radius_m(Dbm{-10.0}), r);
}

TEST(MediumCulling, FarFieldFrameIsInvisibleAndBoundedBelowFloor) {
  Medium culled{config_with(true, /*sigma=*/0.0)};
  Medium exhaustive{config_with(false, /*sigma=*/0.0)};
  const NodeId rx_c = culled.add_node({0.0, 0.0});
  const NodeId far_c = culled.add_node({culled.influence_radius_m(Dbm{0.0}) * 3.0, 0.0});
  exhaustive.add_node({0.0, 0.0});
  exhaustive.add_node({culled.influence_radius_m(Dbm{0.0}) * 3.0, 0.0});

  Frame frame;
  frame.id = culled.allocate_frame_id();
  frame.src = far_c;
  frame.channel = kChannels[0];
  frame.tx_power = Dbm{0.0};
  frame.psdu_bytes = 100;
  culled.begin_tx(frame);
  exhaustive.begin_tx(frame);

  // Culled: the far frame contributes nothing — the sensor reads exactly the
  // noise floor, the definition of "unobservable".
  const double culled_db = culled.sense_energy(rx_c, kChannels[0]).value;
  EXPECT_EQ(culled_db, culled.noise_floor().value);
  // Exhaustive: the contribution exists but sits below the cull margin, so
  // the error the culled path accepted is bounded as documented.
  const double exhaustive_db = exhaustive.sense_energy(rx_c, kChannels[0]).value;
  EXPECT_GT(exhaustive_db, culled_db);
  EXPECT_LT(exhaustive_db - culled_db, 0.5);  // well under margin's 10·log10(1.1)

  // A sub-floor carrier-sense threshold must still hear the far carrier:
  // that query bypasses the grid (exhaustive fallback).
  EXPECT_TRUE(culled.carrier_present(rx_c, kChannels[0], Dbm{-200.0}));
  EXPECT_FALSE(culled.carrier_present(rx_c, kChannels[0], Dbm{-77.0}));
}

TEST(MediumCulling, MovingActiveTransmitterRebucketsItsFrames) {
  Medium medium{config_with(true, /*sigma=*/0.0)};
  const double r = medium.influence_radius_m(Dbm{0.0});
  const NodeId tx = medium.add_node({0.0, 0.0});
  const NodeId sensor = medium.add_node({0.0, 1.0});

  Frame frame;
  frame.id = medium.allocate_frame_id();
  frame.src = tx;
  frame.channel = kChannels[0];
  frame.tx_power = Dbm{0.0};
  frame.psdu_bytes = 100;
  medium.begin_tx(frame);
  EXPECT_NEAR(medium.sense_energy(sensor, kChannels[0]).value, -40.0, 0.01);

  // Carry the in-flight frame out of range: the grid must re-bucket it and
  // the loss cache must forget the old geometry.
  medium.set_position(tx, {r * 3.0, 0.0});
  EXPECT_EQ(medium.sense_energy(sensor, kChannels[0]).value, medium.noise_floor().value);

  // And back: the frame reappears at full strength (no stale cache, no lost
  // grid entry), then ends cleanly from its re-bucketed cell.
  medium.set_position(tx, {0.0, 0.0});
  EXPECT_NEAR(medium.sense_energy(sensor, kChannels[0]).value, -40.0, 0.01);
  medium.end_tx(frame.id);
  EXPECT_EQ(medium.active_count(), 0u);
  EXPECT_EQ(medium.sense_energy(sensor, kChannels[0]).value, medium.noise_floor().value);
}

TEST(MediumCulling, RssAgreesBeforeAndAfterShadowCacheEviction) {
  // end_tx recycles the frame's shadowing map; a late query (the receiver
  // finalizing its reception) must recompute the identical draw.
  Medium medium{config_with(true)};
  const NodeId tx = medium.add_node({0.0, 0.0});
  const NodeId rx = medium.add_node({5.0, 0.0});
  Frame frame;
  frame.id = medium.allocate_frame_id();
  frame.src = tx;
  frame.channel = kChannels[0];
  frame.tx_power = Dbm{0.0};
  frame.psdu_bytes = 100;
  medium.begin_tx(frame);
  const double during = medium.rss(frame, rx).value;
  medium.end_tx(frame.id);
  EXPECT_EQ(medium.rss(frame, rx).value, during);
}

}  // namespace
}  // namespace nomc::phy
