#include "phy/modulation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nomc::phy {
namespace {

TEST(OqpskBer, BoundsRespected) {
  for (double sinr = -30.0; sinr <= 30.0; sinr += 0.5) {
    const double b = oqpsk_ber(sinr);
    ASSERT_GE(b, 0.0) << "at " << sinr;
    ASSERT_LE(b, 0.5) << "at " << sinr;
  }
}

TEST(OqpskBer, HopelessBelowMinusTwelve) {
  EXPECT_EQ(oqpsk_ber(-20.0), 0.5);
  EXPECT_EQ(oqpsk_ber(-12.1), 0.5);
}

TEST(OqpskBer, CleanAtHighSinr) {
  EXPECT_LT(oqpsk_ber(10.0), 1e-15);
  EXPECT_EQ(oqpsk_ber(30.0), 0.0);
}

TEST(OqpskBer, CliffRegion) {
  // The 802.15.4 reception cliff sits around 0 dB: a few dB swing the BER
  // across many orders of magnitude.
  EXPECT_GT(oqpsk_ber(-4.0), 1e-2);
  EXPECT_LT(oqpsk_ber(3.0), 1e-4);
}

TEST(OqpskBer, StrictlyDecreasingThroughCliff) {
  double prev = 1.0;
  for (double sinr = -10.0; sinr <= 6.0; sinr += 0.25) {
    const double cur = oqpsk_ber(sinr);
    ASSERT_LT(cur, prev) << "at " << sinr;
    prev = cur;
  }
}

TEST(PacketErrorRate, Bounds) {
  EXPECT_EQ(packet_error_rate(0.0, 800), 0.0);
  EXPECT_EQ(packet_error_rate(0.5, 800), 1.0);
  EXPECT_EQ(packet_error_rate(1e-3, 0), 0.0);
}

TEST(PacketErrorRate, MatchesClosedForm) {
  // 1 - (1-p)^n for moderate p.
  EXPECT_NEAR(packet_error_rate(0.01, 100), 1.0 - std::pow(0.99, 100), 1e-12);
}

TEST(PacketErrorRate, SmallPStable) {
  // n*p approximation must hold for tiny p (no catastrophic cancellation).
  EXPECT_NEAR(packet_error_rate(1e-9, 1000), 1e-6, 1e-9);
}

TEST(PacketErrorRate, MonotoneInBits) {
  double prev = 0.0;
  for (int bits = 100; bits <= 2000; bits += 100) {
    const double per = packet_error_rate(1e-3, bits);
    ASSERT_GT(per, prev);
    prev = per;
  }
}

TEST(SinrForPer50, BracketsCliff) {
  const double cliff = sinr_for_per50(800);
  EXPECT_GT(cliff, -6.0);
  EXPECT_LT(cliff, 3.0);
  // At the cliff, PER is ~50 %.
  EXPECT_NEAR(packet_error_rate(oqpsk_ber(cliff), 800), 0.5, 0.01);
}

TEST(SinrForPer50, LongerPacketsFailEarlier) {
  EXPECT_GT(sinr_for_per50(2000), sinr_for_per50(200));
}

TEST(Dsss11b, BoundsAndShape) {
  EXPECT_NEAR(dsss_dbpsk_ber(-40.0), 0.5, 1e-3);
  EXPECT_LT(dsss_dbpsk_ber(5.0), 1e-6);
  double prev = 1.0;
  for (double sinr = -20.0; sinr <= 10.0; sinr += 1.0) {
    const double cur = dsss_dbpsk_ber(sinr);
    ASSERT_LE(cur, prev);
    prev = cur;
  }
}

TEST(BerDispatch, SelectsModel) {
  EXPECT_EQ(ber(BerModel::kOqpsk154, 1.0), oqpsk_ber(1.0));
  EXPECT_EQ(ber(BerModel::kDsss11b, 1.0), dsss_dbpsk_ber(1.0));
  EXPECT_NE(ber(BerModel::kOqpsk154, 1.0), ber(BerModel::kDsss11b, 1.0));
}

/// Property sweep: PER is monotone non-increasing in SINR for both models
/// and several packet sizes.
struct PerCase {
  BerModel model;
  int bits;
};

class PerMonotoneSweep : public ::testing::TestWithParam<PerCase> {};

TEST_P(PerMonotoneSweep, NonIncreasingInSinr) {
  const auto [model, bits] = GetParam();
  double prev = 1.1;
  for (double sinr = -15.0; sinr <= 15.0; sinr += 0.5) {
    const double per = packet_error_rate(ber(model, sinr), bits);
    ASSERT_LE(per, prev + 1e-12) << "at " << sinr;
    prev = per;
  }
}

INSTANTIATE_TEST_SUITE_P(ModelsAndSizes, PerMonotoneSweep,
                         ::testing::Values(PerCase{BerModel::kOqpsk154, 200},
                                           PerCase{BerModel::kOqpsk154, 800},
                                           PerCase{BerModel::kOqpsk154, 2000},
                                           PerCase{BerModel::kDsss11b, 800}));

}  // namespace
}  // namespace nomc::phy
