#include "phy/radio.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

namespace nomc::phy {
namespace {

/// Test rig: a medium with no shadowing, a scheduler, and helpers to build
/// radios/frames tersely.
class RadioTest : public ::testing::Test {
 protected:
  RadioTest() {
    MediumConfig config;
    config.shadowing_sigma_db = 0.0;
    medium_.emplace(config);
  }

  NodeId node(double x, double y) { return medium_->add_node({x, y}); }

  std::unique_ptr<Radio> radio(NodeId id, Mhz channel) {
    RadioConfig config;
    config.channel = channel;
    return std::make_unique<Radio>(scheduler_, *medium_, sim::RandomStream{1, id}, id, config);
  }

  Frame frame(NodeId src, NodeId dst, Mhz channel, Dbm power = Dbm{0.0}, int psdu = 100) {
    Frame f;
    f.id = medium_->allocate_frame_id();
    f.src = src;
    f.dst = dst;
    f.channel = channel;
    f.tx_power = power;
    f.psdu_bytes = psdu;
    return f;
  }

  sim::Scheduler scheduler_;
  std::optional<Medium> medium_;
};

class CollectingListener : public RadioListener {
 public:
  void on_rx(const RxResult& result) override { received.push_back(result); }
  void on_tx_done(const Frame& frame) override { tx_done.push_back(frame); }
  std::vector<RxResult> received;
  std::vector<Frame> tx_done;
};

TEST_F(RadioTest, TransmitLifecycle) {
  const NodeId a = node(0, 0);
  auto tx = radio(a, Mhz{2460.0});
  CollectingListener listener;
  tx->set_listener(&listener);

  const Frame f = frame(a, kNoNode, Mhz{2460.0});
  tx->transmit(f);
  EXPECT_EQ(tx->state(), Radio::State::kTx);
  EXPECT_EQ(medium_->active_count(), 1u);

  scheduler_.run_all();
  EXPECT_EQ(tx->state(), Radio::State::kIdle);
  EXPECT_EQ(medium_->active_count(), 0u);
  ASSERT_EQ(listener.tx_done.size(), 1u);
  EXPECT_EQ(listener.tx_done[0].id, f.id);
  EXPECT_EQ(scheduler_.now(), f.duration());
}

TEST_F(RadioTest, CleanReceptionPassesCrc) {
  const NodeId a = node(0, 0);
  const NodeId b = node(0, 2);
  auto tx = radio(a, Mhz{2460.0});
  auto rx = radio(b, Mhz{2460.0});
  CollectingListener listener;
  rx->set_listener(&listener);

  tx->transmit(frame(a, b, Mhz{2460.0}));
  scheduler_.run_all();

  ASSERT_EQ(listener.received.size(), 1u);
  const RxResult& result = listener.received[0];
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(result.bit_errors, 0);
  EXPECT_FALSE(result.collided());
  EXPECT_NEAR(result.rssi.value, -46.62, 0.05);  // 0 dBm - PL(2 m)
}

TEST_F(RadioTest, ReceiverIgnoresOtherChannels) {
  const NodeId a = node(0, 0);
  const NodeId b = node(0, 2);
  auto tx = radio(a, Mhz{2463.0});
  auto rx = radio(b, Mhz{2460.0});  // 3 MHz away: never locks
  CollectingListener listener;
  rx->set_listener(&listener);

  tx->transmit(frame(a, b, Mhz{2463.0}));
  scheduler_.run_all();
  EXPECT_TRUE(listener.received.empty());
  EXPECT_EQ(rx->state(), Radio::State::kIdle);
}

TEST_F(RadioTest, BelowSensitivityIsMissed) {
  const NodeId a = node(0, 0);
  const NodeId b = node(0, 400.0);  // PL(400 m) = 40 + 22*log10(400) ≈ 97 dB
  auto tx = radio(a, Mhz{2460.0});
  auto rx = radio(b, Mhz{2460.0});
  CollectingListener listener;
  rx->set_listener(&listener);

  tx->transmit(frame(a, b, Mhz{2460.0}, Dbm{-20.0}));  // RSS ≈ -117 dBm
  scheduler_.run_all();
  EXPECT_TRUE(listener.received.empty());
}

TEST_F(RadioTest, PromiscuousReception) {
  const NodeId a = node(0, 0);
  const NodeId b = node(0, 2);
  const NodeId c = node(1, 1);
  auto tx = radio(a, Mhz{2460.0});
  auto rx_b = radio(b, Mhz{2460.0});
  auto rx_c = radio(c, Mhz{2460.0});
  CollectingListener lb;
  CollectingListener lc;
  rx_b->set_listener(&lb);
  rx_c->set_listener(&lc);

  tx->transmit(frame(a, b, Mhz{2460.0}));  // addressed to b, overheard by c
  scheduler_.run_all();
  EXPECT_EQ(lb.received.size(), 1u);
  EXPECT_EQ(lc.received.size(), 1u);  // the DCN adjustor depends on this
}

TEST_F(RadioTest, CoChannelCollisionDecodesAtMostOne) {
  const NodeId a = node(0, 0);
  const NodeId b = node(0.5, 0);
  const NodeId rx_id = node(0, 2);
  auto tx_a = radio(a, Mhz{2460.0});
  auto tx_b = radio(b, Mhz{2460.0});
  auto rx = radio(rx_id, Mhz{2460.0});
  CollectingListener listener;
  rx->set_listener(&listener);

  // Equal-power frames fully overlapping: the receiver can attempt at most
  // one of them (the paper's co-channel observation); the other is lost.
  tx_a->transmit(frame(a, rx_id, Mhz{2460.0}));
  tx_b->transmit(frame(b, rx_id, Mhz{2460.0}));
  scheduler_.run_all();

  ASSERT_EQ(listener.received.size(), 1u);  // locked onto the first only
  EXPECT_TRUE(listener.received[0].overlapped_co);
}

TEST_F(RadioTest, HotCoChannelInterferenceCorruptsLockedFrame) {
  const NodeId a = node(0, 0);
  const NodeId b = node(0.3, 2);  // right next to the receiver
  const NodeId rx_id = node(0, 2);
  auto tx_a = radio(a, Mhz{2460.0});
  auto tx_b = radio(b, Mhz{2460.0});
  auto rx = radio(rx_id, Mhz{2460.0});
  CollectingListener listener;
  rx->set_listener(&listener);

  // The interferer fires after the wanted frame's sync header (no capture)
  // and arrives ~7 dB hotter: the locked frame is destroyed.
  tx_a->transmit(frame(a, rx_id, Mhz{2460.0}));
  scheduler_.schedule_at(sim::SimTime::microseconds(500), [&] {
    tx_b->transmit(frame(b, kNoNode, Mhz{2460.0}));
  });
  scheduler_.run_all();

  ASSERT_GE(listener.received.size(), 1u);
  EXPECT_FALSE(listener.received[0].crc_ok);
  EXPECT_TRUE(listener.received[0].overlapped_co);
  EXPECT_GT(listener.received[0].error_fraction, 0.05);
}

TEST_F(RadioTest, CaptureByStrongerPreamble) {
  const NodeId weak = node(0, 30);    // far: weak at the receiver
  const NodeId strong = node(0, 1);   // near: >6 dB stronger
  const NodeId rx_id = node(0, 0);
  auto tx_weak = radio(weak, Mhz{2460.0});
  auto tx_strong = radio(strong, Mhz{2460.0});
  auto rx = radio(rx_id, Mhz{2460.0});
  CollectingListener listener;
  rx->set_listener(&listener);

  const Frame weak_frame = frame(weak, rx_id, Mhz{2460.0});
  tx_weak->transmit(weak_frame);
  // The strong frame arrives inside the weak frame's preamble window.
  scheduler_.schedule_at(sim::SimTime::microseconds(100), [&] {
    tx_strong->transmit(frame(strong, rx_id, Mhz{2460.0}));
  });
  scheduler_.run_all();

  // Only the strong frame is delivered; the weak one lost the receiver.
  ASSERT_EQ(listener.received.size(), 1u);
  EXPECT_EQ(listener.received[0].frame.src, strong);
  EXPECT_TRUE(listener.received[0].overlapped_co);
}

TEST_F(RadioTest, NoCaptureAfterPreambleWindow) {
  const NodeId weak = node(0, 30);
  const NodeId strong = node(0, 1);
  const NodeId rx_id = node(0, 0);
  auto tx_weak = radio(weak, Mhz{2460.0});
  auto tx_strong = radio(strong, Mhz{2460.0});
  auto rx = radio(rx_id, Mhz{2460.0});
  CollectingListener listener;
  rx->set_listener(&listener);

  tx_weak->transmit(frame(weak, rx_id, Mhz{2460.0}));
  // Arrives after the 192 us sync window: no capture, acts as interference.
  scheduler_.schedule_at(sim::SimTime::microseconds(500), [&] {
    tx_strong->transmit(frame(strong, rx_id, Mhz{2460.0}));
  });
  scheduler_.run_all();

  ASSERT_GE(listener.received.size(), 1u);
  EXPECT_EQ(listener.received[0].frame.src, weak);
  EXPECT_FALSE(listener.received[0].crc_ok);  // blasted by the strong frame
}

TEST_F(RadioTest, InterChannelInterferenceFlagged) {
  const NodeId a = node(0, 0);
  const NodeId interferer = node(0.5, 2);
  const NodeId rx_id = node(0, 2);
  auto tx = radio(a, Mhz{2460.0});
  auto tx_i = radio(interferer, Mhz{2463.0});
  auto rx = radio(rx_id, Mhz{2460.0});
  CollectingListener listener;
  rx->set_listener(&listener);

  tx_i->transmit(frame(interferer, kNoNode, Mhz{2463.0}));
  tx->transmit(frame(a, rx_id, Mhz{2460.0}));
  scheduler_.run_all();

  ASSERT_EQ(listener.received.size(), 1u);
  EXPECT_TRUE(listener.received[0].overlapped_inter);
  EXPECT_FALSE(listener.received[0].overlapped_co);
  // 3 MHz rejection keeps the packet intact at bench distances.
  EXPECT_TRUE(listener.received[0].crc_ok);
}

TEST_F(RadioTest, TransmitAbortsReception) {
  const NodeId a = node(0, 0);
  const NodeId b = node(0, 2);
  auto tx = radio(a, Mhz{2460.0});
  auto rx = radio(b, Mhz{2460.0});
  CollectingListener listener;
  rx->set_listener(&listener);

  tx->transmit(frame(a, b, Mhz{2460.0}));
  // Mid-reception, b starts its own transmission: the rx is abandoned.
  scheduler_.schedule_at(sim::SimTime::microseconds(400), [&] {
    rx->transmit(frame(b, kNoNode, Mhz{2460.0}));
  });
  scheduler_.run_all();
  EXPECT_TRUE(listener.received.empty());
  EXPECT_EQ(rx->state(), Radio::State::kIdle);
}

TEST_F(RadioTest, DeafWhileTransmitting) {
  const NodeId a = node(0, 0);
  const NodeId b = node(0, 2);
  auto tx = radio(a, Mhz{2460.0});
  auto rx = radio(b, Mhz{2460.0});
  CollectingListener listener;
  rx->set_listener(&listener);

  rx->transmit(frame(b, kNoNode, Mhz{2460.0}, Dbm{0.0}, 200));  // long own frame
  tx->transmit(frame(a, b, Mhz{2460.0}, Dbm{0.0}, 50));          // short incoming
  scheduler_.run_all();
  EXPECT_TRUE(listener.received.empty());  // missed: radio was busy TXing
}

TEST_F(RadioTest, SenseEnergyReflectsMedium) {
  const NodeId a = node(0, 0);
  const NodeId b = node(0, 1);
  auto tx = radio(a, Mhz{2463.0});
  auto sensor = radio(b, Mhz{2460.0});

  EXPECT_NEAR(sensor->sense_energy().value, -95.0, 0.01);
  tx->transmit(frame(a, kNoNode, Mhz{2463.0}));
  const double expected = -40.0 - medium_->sensing_rejection().attenuation(Mhz{3.0}).value;
  EXPECT_NEAR(sensor->sense_energy().value, expected, 0.05);
}

TEST_F(RadioTest, SetChannelRetunes) {
  const NodeId a = node(0, 0);
  const NodeId b = node(0, 2);
  auto tx = radio(a, Mhz{2463.0});
  auto rx = radio(b, Mhz{2460.0});
  CollectingListener listener;
  rx->set_listener(&listener);

  rx->set_channel(Mhz{2463.0});
  EXPECT_EQ(rx->channel().value, 2463.0);
  tx->transmit(frame(a, b, Mhz{2463.0}));
  scheduler_.run_all();
  EXPECT_EQ(listener.received.size(), 1u);
}

TEST_F(RadioTest, ErrorFractionConsistentWithBitErrors) {
  const NodeId a = node(0, 0);
  const NodeId jammer = node(0.2, 2);
  const NodeId rx_id = node(0, 2);
  auto tx = radio(a, Mhz{2460.0});
  auto tx_j = radio(jammer, Mhz{2461.0});  // 1 MHz away: heavy leakage
  auto rx = radio(rx_id, Mhz{2460.0});
  CollectingListener listener;
  rx->set_listener(&listener);

  tx->transmit(frame(a, rx_id, Mhz{2460.0}, Dbm{-25.0}));
  tx_j->transmit(frame(jammer, kNoNode, Mhz{2461.0}, Dbm{0.0}));
  scheduler_.run_all();

  ASSERT_EQ(listener.received.size(), 1u);
  const RxResult& r = listener.received[0];
  EXPECT_FALSE(r.crc_ok);
  EXPECT_NEAR(r.error_fraction,
              static_cast<double>(r.bit_errors) / r.frame.psdu_bits(), 1e-12);
  EXPECT_GT(r.bit_errors, 0);
  EXPECT_LE(r.bit_errors, r.frame.psdu_bits());
}

}  // namespace
}  // namespace nomc::phy
