#include "phy/medium.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nomc::phy {
namespace {

MediumConfig quiet_config() {
  MediumConfig config;
  config.shadowing_sigma_db = 0.0;  // deterministic RSS for exact assertions
  return config;
}

Frame make_frame(Medium& medium, NodeId src, Mhz channel, Dbm power = Dbm{0.0}) {
  Frame frame;
  frame.id = medium.allocate_frame_id();
  frame.src = src;
  frame.channel = channel;
  frame.tx_power = power;
  frame.psdu_bytes = 100;
  return frame;
}

TEST(Medium, NodeRegistration) {
  Medium medium{quiet_config()};
  const NodeId a = medium.add_node({0.0, 0.0});
  const NodeId b = medium.add_node({3.0, 4.0});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(medium.node_count(), 2u);
  EXPECT_EQ(medium.position(b), (Vec2{3.0, 4.0}));
  medium.set_position(b, {1.0, 1.0});
  EXPECT_EQ(medium.position(b), (Vec2{1.0, 1.0}));
}

TEST(Medium, FrameIdsAreUniqueAndNonZero) {
  Medium medium{quiet_config()};
  const FrameId a = medium.allocate_frame_id();
  const FrameId b = medium.allocate_frame_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
}

TEST(Medium, RssIsPowerMinusPathLoss) {
  Medium medium{quiet_config()};
  const NodeId tx = medium.add_node({0.0, 0.0});
  const NodeId rx = medium.add_node({0.0, 1.0});  // 1 m => 40 dB loss
  const Frame frame = make_frame(medium, tx, Mhz{2460.0});
  EXPECT_NEAR(medium.rss(frame, rx).value, -40.0, 1e-9);
}

TEST(Medium, RssDeterministicWithShadowing) {
  MediumConfig config;
  config.shadowing_sigma_db = 2.5;
  Medium medium{config};
  const NodeId tx = medium.add_node({0.0, 0.0});
  const NodeId rx = medium.add_node({0.0, 2.0});
  const Frame frame = make_frame(medium, tx, Mhz{2460.0});
  const double first = medium.rss(frame, rx).value;
  for (int i = 0; i < 5; ++i) EXPECT_EQ(medium.rss(frame, rx).value, first);
}

TEST(Medium, IdleChannelSensesNoiseFloor) {
  Medium medium{quiet_config()};
  const NodeId node = medium.add_node({0.0, 0.0});
  EXPECT_NEAR(medium.sense_energy(node, Mhz{2460.0}).value, -95.0, 1e-9);
}

TEST(Medium, CoChannelSensing) {
  Medium medium{quiet_config()};
  const NodeId tx = medium.add_node({0.0, 0.0});
  const NodeId sensor = medium.add_node({0.0, 1.0});
  medium.begin_tx(make_frame(medium, tx, Mhz{2460.0}));
  // -40 dBm signal dominates the -95 dBm floor.
  EXPECT_NEAR(medium.sense_energy(sensor, Mhz{2460.0}).value, -40.0, 0.01);
}

TEST(Medium, InterChannelSensingAppliesSensingCurve) {
  Medium medium{quiet_config()};
  const NodeId tx = medium.add_node({0.0, 0.0});
  const NodeId sensor = medium.add_node({0.0, 1.0});
  medium.begin_tx(make_frame(medium, tx, Mhz{2463.0}));
  const double expected =
      -40.0 - medium.sensing_rejection().attenuation(Mhz{3.0}).value;  // -70
  // The -95 dBm noise floor adds ~0.014 dB on top of the -70 dBm leak.
  EXPECT_NEAR(medium.sense_energy(sensor, Mhz{2460.0}).value, expected, 0.05);
}

TEST(Medium, DecodeInterferenceAppliesDecodeCurve) {
  Medium medium{quiet_config()};
  const NodeId tx = medium.add_node({0.0, 0.0});
  const NodeId rx = medium.add_node({0.0, 1.0});
  medium.begin_tx(make_frame(medium, tx, Mhz{2463.0}));
  const double expected = -40.0 - medium.rejection().attenuation(Mhz{3.0}).value;
  EXPECT_NEAR(medium.interference(rx, Mhz{2460.0}, 0).value, expected, 0.05);
}

TEST(Medium, SensingExcludesOwnTransmissions) {
  Medium medium{quiet_config()};
  const NodeId self = medium.add_node({0.0, 0.0});
  medium.begin_tx(make_frame(medium, self, Mhz{2460.0}));
  EXPECT_NEAR(medium.sense_energy(self, Mhz{2460.0}).value, -95.0, 1e-9);
}

TEST(Medium, InterferenceExcludesWantedFrame) {
  Medium medium{quiet_config()};
  const NodeId tx = medium.add_node({0.0, 0.0});
  const NodeId rx = medium.add_node({0.0, 1.0});
  const Frame wanted = make_frame(medium, tx, Mhz{2460.0});
  medium.begin_tx(wanted);
  EXPECT_NEAR(medium.interference(rx, Mhz{2460.0}, wanted.id).value, -95.0, 1e-9);
  // Without the exclusion the frame dominates.
  EXPECT_NEAR(medium.interference(rx, Mhz{2460.0}, 0).value, -40.0, 0.01);
}

TEST(Medium, EnergySumsLinearly) {
  Medium medium{quiet_config()};
  const NodeId a = medium.add_node({0.0, 0.0});
  const NodeId b = medium.add_node({0.0, 0.0});
  const NodeId sensor = medium.add_node({0.0, 1.0});
  medium.begin_tx(make_frame(medium, a, Mhz{2460.0}));
  medium.begin_tx(make_frame(medium, b, Mhz{2460.0}));
  // Two -40 dBm signals: +3 dB.
  EXPECT_NEAR(medium.sense_energy(sensor, Mhz{2460.0}).value, -37.0, 0.05);
}

TEST(Medium, EndTxRemovesEnergy) {
  Medium medium{quiet_config()};
  const NodeId tx = medium.add_node({0.0, 0.0});
  const NodeId sensor = medium.add_node({0.0, 1.0});
  const Frame frame = make_frame(medium, tx, Mhz{2460.0});
  medium.begin_tx(frame);
  EXPECT_EQ(medium.active_count(), 1u);
  medium.end_tx(frame.id);
  EXPECT_EQ(medium.active_count(), 0u);
  EXPECT_NEAR(medium.sense_energy(sensor, Mhz{2460.0}).value, -95.0, 1e-9);
}

TEST(Medium, OverlapClassification) {
  Medium medium{quiet_config()};
  const NodeId a = medium.add_node({0.0, 0.0});
  const NodeId b = medium.add_node({1.0, 0.0});
  const NodeId rx = medium.add_node({0.0, 1.0});

  EXPECT_FALSE(medium.overlap(rx, Mhz{2460.0}, 0).co);

  medium.begin_tx(make_frame(medium, a, Mhz{2460.0}));
  EXPECT_TRUE(medium.overlap(rx, Mhz{2460.0}, 0).co);
  EXPECT_FALSE(medium.overlap(rx, Mhz{2460.0}, 0).inter);

  medium.begin_tx(make_frame(medium, b, Mhz{2463.0}));
  const Medium::Overlap both = medium.overlap(rx, Mhz{2460.0}, 0);
  EXPECT_TRUE(both.co);
  EXPECT_TRUE(both.inter);
}

TEST(Medium, OverlapIgnoresExcludedAndOwnFrames) {
  Medium medium{quiet_config()};
  const NodeId a = medium.add_node({0.0, 0.0});
  const NodeId rx = medium.add_node({0.0, 1.0});
  const Frame own = make_frame(medium, rx, Mhz{2460.0});
  const Frame wanted = make_frame(medium, a, Mhz{2460.0});
  medium.begin_tx(own);
  medium.begin_tx(wanted);
  const Medium::Overlap o = medium.overlap(rx, Mhz{2460.0}, wanted.id);
  EXPECT_FALSE(o.co);
  EXPECT_FALSE(o.inter);
}

TEST(Medium, InterOverlapRequiresEnergyAboveNoise) {
  Medium medium{quiet_config()};
  const NodeId far = medium.add_node({300.0, 0.0});  // huge path loss
  const NodeId rx = medium.add_node({0.0, 0.0});
  medium.begin_tx(make_frame(medium, far, Mhz{2463.0}, Dbm{-20.0}));
  EXPECT_FALSE(medium.overlap(rx, Mhz{2460.0}, 0).inter);
}

/// Listener that records the active-set size observed during callbacks,
/// verifying the notify-before-mutate contract.
class RecordingListener : public MediumListener {
 public:
  explicit RecordingListener(Medium& medium) : medium_{medium} {}
  void on_tx_start(const Frame&) override { sizes_at_start.push_back(medium_.active_count()); }
  void on_tx_end(const Frame&) override { sizes_at_end.push_back(medium_.active_count()); }
  std::vector<std::size_t> sizes_at_start;
  std::vector<std::size_t> sizes_at_end;

 private:
  Medium& medium_;
};

TEST(Medium, ListenersSeePreMutationState) {
  Medium medium{quiet_config()};
  const NodeId tx = medium.add_node({0.0, 0.0});
  RecordingListener listener{medium};
  medium.add_listener(&listener, tx);

  const Frame frame = make_frame(medium, tx, Mhz{2460.0});
  medium.begin_tx(frame);   // listener sees 0 active (not yet inserted)
  medium.end_tx(frame.id);  // listener sees 1 active (not yet removed)
  ASSERT_EQ(listener.sizes_at_start.size(), 1u);
  ASSERT_EQ(listener.sizes_at_end.size(), 1u);
  EXPECT_EQ(listener.sizes_at_start[0], 0u);
  EXPECT_EQ(listener.sizes_at_end[0], 1u);

  medium.remove_listener(&listener);
  medium.begin_tx(make_frame(medium, tx, Mhz{2460.0}));
  EXPECT_EQ(listener.sizes_at_start.size(), 1u);  // no further callbacks
}

}  // namespace
}  // namespace nomc::phy
