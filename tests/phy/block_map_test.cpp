// Per-block error accounting at the Radio (PPR's PHY substrate).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "sim/scheduler.hpp"

namespace nomc::phy {
namespace {

class BlockMapTest : public ::testing::Test {
 protected:
  BlockMapTest() {
    MediumConfig config;
    config.shadowing_sigma_db = 0.0;
    medium_.emplace(config);
  }

  std::unique_ptr<Radio> make_radio(Vec2 pos, Mhz channel, int block_size) {
    const NodeId id = medium_->add_node(pos);
    RadioConfig config;
    config.channel = channel;
    config.block_size_bytes = block_size;
    return std::make_unique<Radio>(scheduler_, *medium_, sim::RandomStream{1, id}, id, config);
  }

  Frame frame(NodeId src, NodeId dst, Mhz channel, Dbm power, int psdu) {
    Frame f;
    f.id = medium_->allocate_frame_id();
    f.src = src;
    f.dst = dst;
    f.channel = channel;
    f.tx_power = power;
    f.psdu_bytes = psdu;
    return f;
  }

  sim::Scheduler scheduler_;
  std::optional<Medium> medium_;
};

class Collector : public RadioListener {
 public:
  void on_rx(const RxResult& result) override { results.push_back(result); }
  void on_tx_done(const Frame&) override {}
  std::vector<RxResult> results;
};

TEST_F(BlockMapTest, CleanFrameHasAllCleanBlocks) {
  auto tx = make_radio({0, 0}, Mhz{2460.0}, 16);
  auto rx = make_radio({0, 2}, Mhz{2460.0}, 16);
  Collector collector;
  rx->set_listener(&collector);

  tx->transmit(frame(tx->node(), rx->node(), Mhz{2460.0}, Dbm{0.0}, 100));
  scheduler_.run_all();

  ASSERT_EQ(collector.results.size(), 1u);
  // 100 bytes at 16-byte blocks = 7 blocks (last one partial).
  ASSERT_EQ(collector.results[0].block_errors.size(), 7u);
  EXPECT_EQ(collector.results[0].dirty_blocks(), 0);
  EXPECT_TRUE(collector.results[0].crc_ok);
}

TEST_F(BlockMapTest, BlockCountRoundsUp) {
  auto tx = make_radio({0, 0}, Mhz{2460.0}, 32);
  auto rx = make_radio({0, 2}, Mhz{2460.0}, 32);
  Collector collector;
  rx->set_listener(&collector);
  tx->transmit(frame(tx->node(), rx->node(), Mhz{2460.0}, Dbm{0.0}, 33));
  scheduler_.run_all();
  ASSERT_EQ(collector.results.size(), 1u);
  EXPECT_EQ(collector.results[0].block_errors.size(), 2u);  // 33/32 -> 2
}

TEST_F(BlockMapTest, ZeroBlockSizeDisablesMap) {
  auto tx = make_radio({0, 0}, Mhz{2460.0}, 0);
  auto rx = make_radio({0, 2}, Mhz{2460.0}, 0);
  Collector collector;
  rx->set_listener(&collector);
  tx->transmit(frame(tx->node(), rx->node(), Mhz{2460.0}, Dbm{0.0}, 100));
  scheduler_.run_all();
  ASSERT_EQ(collector.results.size(), 1u);
  EXPECT_TRUE(collector.results[0].block_errors.empty());
  EXPECT_TRUE(collector.results[0].crc_ok);
}

TEST_F(BlockMapTest, PartialInterferenceDirtiesOnlyOverlappedBlocks) {
  // The wanted frame is 100 bytes (3.392 ms). A hot co-channel burst covers
  // only its tail: the early blocks must stay clean, the late ones dirty.
  auto tx = make_radio({0, 0}, Mhz{2460.0}, 16);
  auto rx = make_radio({0, 2}, Mhz{2460.0}, 16);
  auto jammer = make_radio({0.2, 2}, Mhz{2460.0}, 16);
  Collector collector;
  rx->set_listener(&collector);

  tx->transmit(frame(tx->node(), rx->node(), Mhz{2460.0}, Dbm{0.0}, 100));
  // Start the jam at 2.5 ms: past the PHY header (192 us) and roughly 68 %
  // into the PSDU.
  scheduler_.schedule_at(sim::SimTime::microseconds(2500), [&] {
    jammer->transmit(frame(jammer->node(), kNoNode, Mhz{2460.0}, Dbm{0.0}, 100));
  });
  scheduler_.run_all();

  ASSERT_GE(collector.results.size(), 1u);
  const RxResult& wanted = collector.results[0];
  ASSERT_EQ(wanted.block_errors.size(), 7u);
  EXPECT_FALSE(wanted.crc_ok);
  // PSDU bit at 2.5 ms: (2500-192)us / 4us = 577 bits => block 4 onward.
  EXPECT_FALSE(wanted.block_errors[0]);
  EXPECT_FALSE(wanted.block_errors[1]);
  EXPECT_FALSE(wanted.block_errors[2]);
  EXPECT_FALSE(wanted.block_errors[3]);
  int dirty_tail = 0;
  for (int b = 4; b < 7; ++b) dirty_tail += wanted.block_errors[static_cast<std::size_t>(b)];
  EXPECT_GE(dirty_tail, 2);  // SIR ~0 dB: the overlapped tail is destroyed
}

TEST_F(BlockMapTest, BitErrorsConsistentWithDirtyBlocks) {
  auto tx = make_radio({0, 0}, Mhz{2460.0}, 16);
  auto rx = make_radio({0, 2}, Mhz{2460.0}, 16);
  auto jammer = make_radio({0.3, 2}, Mhz{2461.0}, 16);  // 1 MHz leak
  Collector collector;
  rx->set_listener(&collector);

  tx->transmit(frame(tx->node(), rx->node(), Mhz{2460.0}, Dbm{-20.0}, 100));
  jammer->transmit(frame(jammer->node(), kNoNode, Mhz{2461.0}, Dbm{0.0}, 100));
  scheduler_.run_all();

  ASSERT_GE(collector.results.size(), 1u);
  const RxResult& wanted = collector.results[0];
  if (wanted.bit_errors > 0) {
    EXPECT_GT(wanted.dirty_blocks(), 0);
    // No more dirty blocks than bit errors.
    EXPECT_LE(wanted.dirty_blocks(), wanted.bit_errors);
  } else {
    EXPECT_EQ(wanted.dirty_blocks(), 0);
  }
}

}  // namespace
}  // namespace nomc::phy
