#include <gtest/gtest.h>

#include "phy/channel_plan.hpp"
#include "phy/frame.hpp"
#include "phy/geometry.hpp"
#include "phy/timing.hpp"

namespace nomc::phy {
namespace {

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

TEST(Geometry, VectorOps) {
  const Vec2 v = Vec2{1.0, 2.0} + Vec2{3.0, -1.0};
  EXPECT_EQ(v, (Vec2{4.0, 1.0}));
  EXPECT_EQ((Vec2{4.0, 1.0} - Vec2{3.0, -1.0}), (Vec2{1.0, 2.0}));
}

TEST(Timing, BitAndSymbolTimes) {
  // 250 kb/s => 4 us per bit; 16 us per symbol (4 bits/symbol).
  EXPECT_EQ(kBitTime, sim::SimTime::microseconds(4));
  EXPECT_EQ(kSymbolTime, sim::SimTime::microseconds(16));
  EXPECT_EQ(kUnitBackoff, sim::SimTime::microseconds(320));
  EXPECT_EQ(kCcaDuration, sim::SimTime::microseconds(128));
  EXPECT_EQ(kTurnaround, sim::SimTime::microseconds(192));
}

TEST(Timing, FrameDuration) {
  // 100-byte PSDU + 6-byte PHY header = 848 bits at 4 us/bit.
  EXPECT_EQ(frame_duration(100), sim::SimTime::microseconds(848 * 4));
  EXPECT_EQ(frame_duration(0), sim::SimTime::microseconds(6 * 8 * 4));
}

TEST(Frame, DurationAndBits) {
  Frame frame;
  frame.psdu_bytes = 100;
  EXPECT_EQ(frame.duration(), frame_duration(100));
  EXPECT_EQ(frame.psdu_bits(), 800);
}

TEST(ChannelPlan, EvenlySpaced) {
  const auto plan = evenly_spaced(Mhz{2458.0}, Mhz{3.0}, 6);
  ASSERT_EQ(plan.size(), 6u);
  EXPECT_DOUBLE_EQ(plan.front().value, 2458.0);
  EXPECT_DOUBLE_EQ(plan.back().value, 2473.0);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_DOUBLE_EQ(plan[i].value - plan[i - 1].value, 3.0);
  }
}

TEST(ChannelPlan, EvenlySpacedEmpty) {
  EXPECT_TRUE(evenly_spaced(Mhz{2458.0}, Mhz{3.0}, 0).empty());
}

TEST(ChannelPlan, PackBand) {
  const auto plan = pack_band(Mhz{2458.0}, Mhz{2470.0}, Mhz{5.0});
  ASSERT_EQ(plan.size(), 3u);  // 2458, 2463, 2468
  EXPECT_DOUBLE_EQ(plan[2].value, 2468.0);
}

TEST(ChannelPlan, PackBandIncludesEndpoint) {
  const auto plan = pack_band(Mhz{2458.0}, Mhz{2473.0}, Mhz{3.0});
  ASSERT_EQ(plan.size(), 6u);
  EXPECT_DOUBLE_EQ(plan.back().value, 2473.0);
}

TEST(ChannelPlan, ZigbeeChannels) {
  const auto plan = zigbee_channels();
  ASSERT_EQ(plan.size(), 16u);
  EXPECT_DOUBLE_EQ(plan.front().value, 2405.0);  // channel 11
  EXPECT_DOUBLE_EQ(plan.back().value, 2480.0);   // channel 26
  EXPECT_DOUBLE_EQ(zigbee_channel(15).value, 2425.0);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_DOUBLE_EQ(plan[i].value - plan[i - 1].value, 5.0);  // ZigBee CFD
  }
}

}  // namespace
}  // namespace nomc::phy
