#include "phy/units.hpp"

#include <gtest/gtest.h>

namespace nomc::phy {
namespace {

TEST(Units, DbmMilliwattRoundTrip) {
  EXPECT_NEAR(to_milliwatts(Dbm{0.0}).value, 1.0, 1e-12);
  EXPECT_NEAR(to_milliwatts(Dbm{10.0}).value, 10.0, 1e-9);
  EXPECT_NEAR(to_milliwatts(Dbm{-30.0}).value, 1e-3, 1e-12);
  EXPECT_NEAR(to_dbm(MilliWatts{1.0}).value, 0.0, 1e-12);
  EXPECT_NEAR(to_dbm(MilliWatts{0.5}).value, -3.0103, 1e-3);
  for (const double level : {-95.0, -77.0, -40.0, 0.0, 20.0}) {
    EXPECT_NEAR(to_dbm(to_milliwatts(Dbm{level})).value, level, 1e-9);
  }
}

TEST(Units, ZeroPowerMapsToFloor) {
  EXPECT_EQ(to_dbm(MilliWatts{0.0}).value, -300.0);
  EXPECT_EQ(to_dbm(MilliWatts{-1.0}).value, -300.0);
}

TEST(Units, LevelRatioAlgebra) {
  const Dbm level{-40.0};
  EXPECT_EQ((level + Db{10.0}).value, -30.0);
  EXPECT_EQ((level - Db{10.0}).value, -50.0);
  EXPECT_EQ((Dbm{-40.0} - Dbm{-70.0}).value, 30.0);  // SIR in dB
}

TEST(Units, DbAlgebra) {
  EXPECT_EQ((Db{3.0} + Db{4.0}).value, 7.0);
  EXPECT_EQ((Db{3.0} - Db{4.0}).value, -1.0);
  EXPECT_EQ((-Db{3.0}).value, -3.0);
  EXPECT_EQ((2.0 * Db{3.0}).value, 6.0);
}

TEST(Units, MilliwattsAddLinearly) {
  // Two equal signals add to +3 dB.
  const MilliWatts sum = to_milliwatts(Dbm{-50.0}) + to_milliwatts(Dbm{-50.0});
  EXPECT_NEAR(to_dbm(sum).value, -46.99, 0.02);
}

TEST(Units, OrderingOperators) {
  EXPECT_LT(Dbm{-77.0}, Dbm{-50.0});
  EXPECT_GT(Db{10.0}, Db{3.0});
  EXPECT_LT(Mhz{2458.0}, Mhz{2461.0});
}

TEST(Units, FrequencyDistanceIsAbsolute) {
  EXPECT_EQ(frequency_distance(Mhz{2458.0}, Mhz{2461.0}).value, 3.0);
  EXPECT_EQ(frequency_distance(Mhz{2461.0}, Mhz{2458.0}).value, 3.0);
  EXPECT_EQ(frequency_distance(Mhz{2460.0}, Mhz{2460.0}).value, 0.0);
}

TEST(Units, SameChannelWindow) {
  EXPECT_TRUE(same_channel(Mhz{2460.0}, Mhz{2460.0}));
  EXPECT_TRUE(same_channel(Mhz{2460.0}, Mhz{2460.4}));
  EXPECT_FALSE(same_channel(Mhz{2460.0}, Mhz{2461.0}));
  EXPECT_FALSE(same_channel(Mhz{2460.0}, Mhz{2463.0}));
}

}  // namespace
}  // namespace nomc::phy
