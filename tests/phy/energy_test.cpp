#include "phy/energy.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "sim/scheduler.hpp"

namespace nomc::phy {
namespace {

TEST(EnergyModel, TxCurrentTable) {
  const EnergyModel model;
  EXPECT_DOUBLE_EQ(model.tx_current_ma(Dbm{0.0}), 17.4);
  EXPECT_DOUBLE_EQ(model.tx_current_ma(Dbm{-25.0}), 8.5);
  EXPECT_DOUBLE_EQ(model.tx_current_ma(Dbm{-10.0}), 11.0);
  // Interpolated midpoint between -10 (11.0) and -5 (14.0).
  EXPECT_NEAR(model.tx_current_ma(Dbm{-7.5}), 12.5, 1e-9);
  // Clamped at the table edges.
  EXPECT_DOUBLE_EQ(model.tx_current_ma(Dbm{-40.0}), 8.5);
  EXPECT_DOUBLE_EQ(model.tx_current_ma(Dbm{5.0}), 17.4);
}

TEST(EnergyModel, TxCurrentMonotoneInPower) {
  const EnergyModel model;
  double prev = 0.0;
  for (double p = -30.0; p <= 2.0; p += 0.5) {
    const double cur = model.tx_current_ma(Dbm{p});
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(EnergyModel, EnergyArithmetic) {
  const EnergyModel model{3.0, 18.8};
  // 1 second at 18.8 mA, 3 V = 56.4 mJ.
  EXPECT_NEAR(model.energy_mj(sim::SimTime::seconds(1.0), 18.8), 56.4, 1e-9);
  EXPECT_EQ(model.energy_mj(sim::SimTime::zero(), 18.8), 0.0);
}

TEST(RadioEnergyStruct, Totals) {
  RadioEnergy energy;
  energy.tx_mj = 1.5;
  energy.listen_mj = 2.5;
  EXPECT_DOUBLE_EQ(energy.total_mj(), 4.0);
}

class RadioEnergyTest : public ::testing::Test {
 protected:
  RadioEnergyTest() {
    MediumConfig config;
    config.shadowing_sigma_db = 0.0;
    medium_.emplace(config);
    self_ = medium_->add_node({0.0, 0.0});
    RadioConfig radio_config;
    radio_config.channel = Mhz{2460.0};
    radio_.emplace(scheduler_, *medium_, sim::RandomStream{1, 0}, self_, radio_config);
  }

  Frame make_frame(Dbm power, int psdu) {
    Frame frame;
    frame.id = medium_->allocate_frame_id();
    frame.src = self_;
    frame.channel = Mhz{2460.0};
    frame.tx_power = power;
    frame.psdu_bytes = psdu;
    return frame;
  }

  sim::Scheduler scheduler_;
  std::optional<Medium> medium_;
  std::optional<Radio> radio_;
  NodeId self_ = 0;
};

TEST_F(RadioEnergyTest, PureListening) {
  scheduler_.run_until(sim::SimTime::seconds(2.0));
  const RadioEnergy energy = radio_->energy_consumed();
  EXPECT_EQ(energy.tx_mj, 0.0);
  // 2 s at 18.8 mA, 3 V = 112.8 mJ.
  EXPECT_NEAR(energy.listen_mj, 112.8, 1e-6);
}

TEST_F(RadioEnergyTest, TransmitSplitsCharge) {
  const Frame frame = make_frame(Dbm{0.0}, 100);  // 3.392 ms airtime
  radio_->transmit(frame);
  scheduler_.run_until(sim::SimTime::seconds(1.0));
  const RadioEnergy energy = radio_->energy_consumed();
  const double expected_tx = 17.4 * 3.0 * frame.duration().to_seconds();
  const double expected_listen = 18.8 * 3.0 * (1.0 - frame.duration().to_seconds());
  EXPECT_NEAR(energy.tx_mj, expected_tx, 1e-9);
  EXPECT_NEAR(energy.listen_mj, expected_listen, 1e-6);
}

TEST_F(RadioEnergyTest, LowerPowerCheaperTx) {
  radio_->transmit(make_frame(Dbm{0.0}, 100));
  scheduler_.run_all();
  const double full_power_tx = radio_->energy_consumed().tx_mj;

  RadioConfig radio_config;
  radio_config.channel = Mhz{2460.0};
  Radio low{scheduler_, *medium_, sim::RandomStream{1, 1}, medium_->add_node({5.0, 0.0}),
            radio_config};
  Frame frame = make_frame(Dbm{-25.0}, 100);
  frame.src = low.node();
  low.transmit(frame);
  scheduler_.run_all();
  EXPECT_LT(low.energy_consumed().tx_mj, full_power_tx * 0.6);
}

TEST_F(RadioEnergyTest, QueryMidTransmissionIsConsistent) {
  radio_->transmit(make_frame(Dbm{0.0}, 200));
  scheduler_.run_until(sim::SimTime::microseconds(100));
  const RadioEnergy mid = radio_->energy_consumed();
  EXPECT_GT(mid.tx_mj, 0.0);
  scheduler_.run_all();
  const RadioEnergy done = radio_->energy_consumed();
  EXPECT_GT(done.tx_mj, mid.tx_mj);
  EXPECT_GE(done.listen_mj, mid.listen_mj);
}

}  // namespace
}  // namespace nomc::phy
