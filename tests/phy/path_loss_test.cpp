#include "phy/path_loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace nomc::phy {
namespace {

TEST(PathLoss, ReferenceValue) {
  const LogDistancePathLoss model;  // n=2.2, 40 dB @ 1 m
  EXPECT_NEAR(model.loss(1.0).value, 40.0, 1e-9);
}

TEST(PathLoss, LogDistanceLaw) {
  const LogDistancePathLoss model;
  // Doubling the distance adds 10*2.2*log10(2) = 6.62 dB.
  EXPECT_NEAR(model.loss(2.0).value - model.loss(1.0).value, 6.6227, 1e-3);
  EXPECT_NEAR(model.loss(10.0).value, 40.0 + 22.0, 1e-9);
}

TEST(PathLoss, ClampsInsideReference) {
  const LogDistancePathLoss model;
  EXPECT_EQ(model.loss(0.1).value, model.loss(1.0).value);
  EXPECT_EQ(model.loss(0.0).value, 40.0);
}

TEST(PathLoss, CustomParameters) {
  const LogDistancePathLoss model{3.0, Db{46.0}, 2.0};
  EXPECT_NEAR(model.loss(2.0).value, 46.0, 1e-9);
  EXPECT_NEAR(model.loss(20.0).value, 46.0 + 30.0, 1e-9);
  EXPECT_EQ(model.exponent(), 3.0);
}

TEST(PathLoss, MonotoneInDistance) {
  const LogDistancePathLoss model;
  double prev = model.loss(1.0).value;
  for (double d = 1.5; d < 100.0; d *= 1.5) {
    const double cur = model.loss(d).value;
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(Shadowing, DeterministicPerFrameAndNode) {
  const ShadowingField field{2.5, 42};
  const Db a = field.sample(7, 3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(field.sample(7, 3).value, a.value);
}

TEST(Shadowing, VariesAcrossFramesAndNodes) {
  const ShadowingField field{2.5, 42};
  EXPECT_NE(field.sample(7, 3).value, field.sample(8, 3).value);
  EXPECT_NE(field.sample(7, 3).value, field.sample(7, 4).value);
}

TEST(Shadowing, SeedChangesRealization) {
  const ShadowingField a{2.5, 1};
  const ShadowingField b{2.5, 2};
  EXPECT_NE(a.sample(7, 3).value, b.sample(7, 3).value);
}

TEST(Shadowing, ZeroSigmaIsZero) {
  const ShadowingField field{0.0, 42};
  for (std::uint64_t f = 0; f < 20; ++f) EXPECT_EQ(field.sample(f, 1).value, 0.0);
}

TEST(Shadowing, EmpiricalMomentsMatchSigma) {
  const ShadowingField field{2.5, 123};
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double z = field.sample(static_cast<std::uint64_t>(i), 0).value;
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum_sq / n), 2.5, 0.05);
}

}  // namespace
}  // namespace nomc::phy
