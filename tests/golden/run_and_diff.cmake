# Golden-figure regression driver, run as a ctest via `cmake -P`:
#
#   cmake -DTOOL=<nomc-campaign> -DSPEC=<x.campaign> -DGOLDEN=<x.jsonl>
#         -DWORK_DIR=<build scratch dir> -P run_and_diff.cmake
#
# Exercises the full crash story on the real tool, then compares the store
# byte-for-byte against the checked-in golden:
#   1. partial parallel run (--max-points 2, --point-jobs 2),
#   2. injected kill: a torn record appended to the store and a torn line
#      appended to the .timing sidecar,
#   3. resume at a different (--jobs, --point-jobs) split.
# Any divergence from the serial-run golden bytes fails the test.

foreach(var TOOL SPEC GOLDEN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_and_diff.cmake needs -D${var}=...")
  endif()
endforeach()

get_filename_component(spec_name "${SPEC}" NAME_WE)
set(store "${WORK_DIR}/${spec_name}.jsonl")
file(MAKE_DIRECTORY "${WORK_DIR}")
file(REMOVE "${store}" "${store}.timing")

execute_process(
  COMMAND "${TOOL}" run "${SPEC}" --out "${store}" --overwrite --quiet
          --max-points 2 --jobs 1 --point-jobs 2
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "partial run of ${spec_name} failed (${status})")
endif()

# Injected kill mid-write: valid prefix + torn tails in both files.
file(APPEND "${store}" "{\"v\":1,\"campaign\":\"${spec_name}\",\"spec_ha")
file(APPEND "${store}.timing" "{\"point\":2,\"wall")

execute_process(
  COMMAND "${TOOL}" resume "${SPEC}" --out "${store}" --quiet
          --jobs 2 --point-jobs 3
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "resume of ${spec_name} failed (${status})")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files "${store}" "${GOLDEN}"
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  # Every golden spec header carries its own backtick-quoted regeneration
  # command (the golden-regen-note lint rule enforces this); print that
  # command verbatim so the fix is copy-pasteable from the test log.
  file(STRINGS "${SPEC}" regen_lines REGEX "^#.*`nomc-campaign [^`]+`")
  set(regen_cmd "nomc-campaign run ${SPEC} --overwrite")
  if(regen_lines)
    list(GET regen_lines 0 regen_line)
    string(REGEX MATCH "`(nomc-campaign [^`]+)`" _ "${regen_line}")
    set(regen_cmd "${CMAKE_MATCH_1}")
  endif()
  message(FATAL_ERROR
    "${spec_name}: store diverges from golden ${GOLDEN}.\n"
    "If the numeric change is intentional, regenerate the golden with:\n"
    "  ${regen_cmd}")
endif()
