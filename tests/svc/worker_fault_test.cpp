// Fault-injected recovery tests for the worker-process campaign sharding.
//
// The server runs in-process and is driven through step(); the workers are
// real child processes — either the genuine `nomc-campaign worker` or the
// misbehaving tests/svc/fake_worker. Every test ends with the same oracle:
// the store bytes must equal a serial exp::run_campaign of the same spec,
// no matter how many workers died, stalled, or spoke garbage on the way.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "exp/campaign.hpp"
#include "exp/spec.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"

namespace nomc::svc {
namespace {

// Six sweep points, sub-second simulated time: enough leases to shard
// across two workers with --lease-points 1 and still re-lease after faults.
constexpr const char* kFaultSpec =
    "name = svc_fault\n"
    "channels = 2\n"
    "links = 1\n"
    "power = 0\n"
    "warmup = 0.05\n"
    "measure = 0.1\n"
    "trials = 1\n"
    "sweep links = 1 2 3 4 5 6\n";

/// Paths carry the pid: ctest runs each TEST as its own process, often in
/// parallel, and shared scratch files would race.
std::string fresh_dir(const std::string& name) {
  const std::string dir =
      ::testing::TempDir() + "nomc_wf_" + std::to_string(::getpid()) + "_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Sockets must fit sockaddr_un (~107 bytes); keep them in /tmp directly.
std::string socket_path(const std::string& name) {
  return "/tmp/nomc_wf_" + std::to_string(::getpid()) + "_" + name + ".sock";
}

std::string read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return {};
  std::string out;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) out.append(buffer, got);
  std::fclose(file);
  return out;
}

std::string submit_request(const std::string& spec_text) {
  std::string request = "{\"op\":\"submit\",\"spec\":";
  exp::json_append_string(request, spec_text);
  request += '}';
  return request;
}

/// Serial oracle: the byte-exact store a local single-threaded run writes.
const std::string& oracle_bytes() {
  static const std::string bytes = [] {
    exp::CampaignSpec spec;
    exp::SpecError spec_error;
    EXPECT_TRUE(exp::parse_campaign(kFaultSpec, spec, spec_error)) << spec_error.str();
    const std::string path =
        ::testing::TempDir() + "nomc_wf_oracle_" + std::to_string(::getpid()) + ".jsonl";
    std::filesystem::remove(path);
    std::filesystem::remove(path + ".timing");
    exp::CampaignOptions options;
    options.quiet = true;
    std::string error;
    EXPECT_TRUE(exp::run_campaign(spec, path, options, nullptr, error)) << error;
    return read_file(path);
  }();
  return bytes;
}

ServerConfig base_config(const std::string& name) {
  ServerConfig config;
  config.socket_path = socket_path(name);
  config.data_dir = fresh_dir(name);
  config.workers = 2;
  config.lease_points = 1;
  return config;
}

std::vector<std::string> real_worker_argv() { return {NOMC_CAMPAIGN_BIN, "worker"}; }

std::vector<std::string> fake_worker_argv(const std::string& mode, const std::string& dir) {
  return {NOMC_FAKE_WORKER_BIN, mode, dir + "/sentinel"};
}

/// step() until the sharded campaign (and its queue) has drained. The first
/// few steps never early-exit: a freshly sent submit has not been accepted
/// and read yet, so busy() is still false when drive() starts.
void drive(Server& server, int max_steps = 4000) {
  std::string error;
  for (int i = 0; i < max_steps; ++i) {
    ASSERT_TRUE(server.step(/*timeout_ms=*/5, error)) << error;
    if (i >= 8 && !server.busy()) break;
  }
  ASSERT_FALSE(server.busy()) << "campaign did not finish within the step budget";
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(server.step(0, error)) << error;  // flush replies
}

std::string store_path_of(const ServerConfig& config) {
  exp::CampaignSpec spec;
  exp::SpecError spec_error;
  EXPECT_TRUE(exp::parse_campaign(kFaultSpec, spec, spec_error));
  return config.data_dir + "/" + exp::spec_hash(spec) + ".jsonl";
}

void expect_ok_submit(const std::string& reply_line) {
  exp::JsonValue value;
  std::string error;
  ASSERT_TRUE(parse_reply(reply_line, value, error)) << reply_line;
  ASSERT_NE(value.find("ok"), nullptr) << reply_line;
  EXPECT_TRUE(value.find("ok")->boolean) << reply_line;
  ASSERT_NE(value.find("done"), nullptr) << reply_line;
  EXPECT_EQ(static_cast<int>(value.find("done")->number), 6);
}

TEST(WorkerFault, ShardedSubmitMatchesSerialOracle) {
  ServerConfig config = base_config("clean");
  config.worker_argv = real_worker_argv();
  Server server;
  std::string error;
  ASSERT_TRUE(server.open(config, error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(config.socket_path, error)) << error;
  ASSERT_TRUE(client.send_line(submit_request(kFaultSpec), error)) << error;
  drive(server);
  std::string reply_line;
  ASSERT_TRUE(client.recv_line(reply_line, error)) << error;
  expect_ok_submit(reply_line);

  EXPECT_EQ(read_file(store_path_of(config)), oracle_bytes());
  EXPECT_EQ(server.retried(), 0u);
}

TEST(WorkerFault, SigkilledWorkerHasItsPointsReleased) {
  ServerConfig config = base_config("sigkill");
  config.worker_argv = fake_worker_argv("stall", config.data_dir);
  config.lease_timeout_ms = 60000;  // the kill, not the deadline, must recover it
  Server server;
  std::string error;
  ASSERT_TRUE(server.open(config, error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(config.socket_path, error)) << error;
  ASSERT_TRUE(client.send_line(submit_request(kFaultSpec), error)) << error;

  // Step until the stalled worker exists and holds a lease, then SIGKILL
  // every worker mid-point — exactly the crash the supervisor must absorb.
  const std::string sentinel = config.data_dir + "/sentinel";
  for (int i = 0; i < 2000 && !std::filesystem::exists(sentinel); ++i) {
    ASSERT_TRUE(server.step(5, error)) << error;
  }
  ASSERT_TRUE(std::filesystem::exists(sentinel)) << "fake worker never started";
  ASSERT_TRUE(server.busy());
  for (const pid_t pid : server.worker_pids()) {
    if (pid > 0) ::kill(pid, SIGKILL);
  }

  drive(server);
  std::string reply_line;
  ASSERT_TRUE(client.recv_line(reply_line, error)) << error;
  expect_ok_submit(reply_line);

  EXPECT_EQ(read_file(store_path_of(config)), oracle_bytes());
  EXPECT_GE(server.retried(), 1u) << "the killed worker's points were not re-leased";
}

TEST(WorkerFault, StalledWorkerLosesItsLeaseOnDeadline) {
  ServerConfig config = base_config("stall");
  config.worker_argv = fake_worker_argv("stall", config.data_dir);
  config.lease_timeout_ms = 200;  // fast deadline: the stall is detected, not waited out
  Server server;
  std::string error;
  ASSERT_TRUE(server.open(config, error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(config.socket_path, error)) << error;
  ASSERT_TRUE(client.send_line(submit_request(kFaultSpec), error)) << error;
  drive(server);
  std::string reply_line;
  ASSERT_TRUE(client.recv_line(reply_line, error)) << error;
  expect_ok_submit(reply_line);

  EXPECT_EQ(read_file(store_path_of(config)), oracle_bytes());
  EXPECT_GE(server.retried(), 1u);
}

TEST(WorkerFault, GarbageEmittingWorkerIsFaultedAndRetried) {
  ServerConfig config = base_config("garbage");
  config.worker_argv = fake_worker_argv("garbage", config.data_dir);
  Server server;
  std::string error;
  ASSERT_TRUE(server.open(config, error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(config.socket_path, error)) << error;
  ASSERT_TRUE(client.send_line(submit_request(kFaultSpec), error)) << error;
  drive(server);
  std::string reply_line;
  ASSERT_TRUE(client.recv_line(reply_line, error)) << error;
  expect_ok_submit(reply_line);

  EXPECT_EQ(read_file(store_path_of(config)), oracle_bytes());
  EXPECT_GE(server.retried(), 1u);
}

TEST(WorkerFault, RetryBudgetExhaustionFailsTheCampaignThenResubmitRecovers) {
  ServerConfig config = base_config("exhaust");
  config.worker_argv = fake_worker_argv("garbage-always", config.data_dir);
  config.worker_retries = 1;
  Server server;
  std::string error;
  ASSERT_TRUE(server.open(config, error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(config.socket_path, error)) << error;
  ASSERT_TRUE(client.send_line(submit_request(kFaultSpec), error)) << error;
  drive(server);
  std::string reply_line;
  ASSERT_TRUE(client.recv_line(reply_line, error)) << error;
  exp::JsonValue value;
  ASSERT_TRUE(parse_reply(reply_line, value, error)) << reply_line;
  ASSERT_NE(value.find("ok"), nullptr);
  EXPECT_FALSE(value.find("ok")->boolean) << "a hopeless campaign must fail, not hang";

  // The offending range is surfaced in status.
  exp::CampaignSpec spec;
  exp::SpecError spec_error;
  ASSERT_TRUE(exp::parse_campaign(kFaultSpec, spec, spec_error));
  std::string status_request = "{\"op\":\"status\",\"spec_hash\":";
  exp::json_append_string(status_request, exp::spec_hash(spec));
  status_request += '}';
  ASSERT_TRUE(client.send_line(status_request, error)) << error;
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(server.step(5, error)) << error;
  ASSERT_TRUE(client.recv_line(reply_line, error)) << error;
  ASSERT_TRUE(parse_reply(reply_line, value, error)) << reply_line;
  ASSERT_NE(value.find("state"), nullptr) << reply_line;
  EXPECT_EQ(value.find("state")->string, "failed");
  ASSERT_NE(value.find("failed_count"), nullptr) << reply_line;
  EXPECT_GE(static_cast<int>(value.find("failed_count")->number), 1);
  server.close();

  // A resubmit against healthy workers finishes the campaign from whatever
  // prefix survived, byte-identically.
  config.worker_argv = real_worker_argv();
  Server recovered;
  ASSERT_TRUE(recovered.open(config, error)) << error;
  Client client2;
  ASSERT_TRUE(client2.connect(config.socket_path, error)) << error;
  ASSERT_TRUE(client2.send_line(submit_request(kFaultSpec), error)) << error;
  drive(recovered);
  ASSERT_TRUE(client2.recv_line(reply_line, error)) << error;
  expect_ok_submit(reply_line);
  EXPECT_EQ(read_file(store_path_of(config)), oracle_bytes());
}

TEST(WorkerFault, StatusAndQueryAreAnsweredMidCampaign) {
  ServerConfig config = base_config("midpoll");
  config.worker_argv = real_worker_argv();
  Server server;
  std::string error;
  ASSERT_TRUE(server.open(config, error)) << error;

  Client submitter;
  ASSERT_TRUE(submitter.connect(config.socket_path, error)) << error;
  ASSERT_TRUE(submitter.send_line(submit_request(kFaultSpec), error)) << error;
  // Let the submit land and the workers start.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(server.step(5, error)) << error;

  // A second client gets a status reply while the campaign is running — the
  // submit reply to the first client has NOT been sent yet.
  Client poller;
  ASSERT_TRUE(poller.connect(config.socket_path, error)) << error;
  exp::CampaignSpec spec;
  exp::SpecError spec_error;
  ASSERT_TRUE(exp::parse_campaign(kFaultSpec, spec, spec_error));
  std::string status_request = "{\"op\":\"status\",\"spec_hash\":";
  exp::json_append_string(status_request, exp::spec_hash(spec));
  status_request += '}';
  ASSERT_TRUE(poller.send_line(status_request, error)) << error;
  for (int i = 0; i < 8 && server.busy(); ++i) ASSERT_TRUE(server.step(5, error)) << error;
  std::string reply_line;
  ASSERT_TRUE(poller.recv_line(reply_line, error)) << error;
  exp::JsonValue value;
  ASSERT_TRUE(parse_reply(reply_line, value, error)) << reply_line;
  ASSERT_NE(value.find("state"), nullptr) << reply_line;
  // Usually "running"; "complete" only if the whole grid finished within
  // the few steps above. Either way the poll loop answered mid-campaign.
  EXPECT_TRUE(value.find("state")->string == "running" ||
              value.find("state")->string == "complete")
      << reply_line;

  drive(server);
  ASSERT_TRUE(submitter.recv_line(reply_line, error)) << error;
  expect_ok_submit(reply_line);
  EXPECT_EQ(read_file(store_path_of(config)), oracle_bytes());
}

}  // namespace
}  // namespace nomc::svc
