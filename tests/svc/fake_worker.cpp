// fake_worker — a misbehaving campaign worker for the fault-injection tests.
//
//   fake_worker <mode> <sentinel-path>
//
// The first instance to read a lease misbehaves according to <mode> and
// creates <sentinel-path>; every later instance (the supervisor's respawn)
// sees the sentinel and delegates to the real svc::run_worker, so the
// campaign recovers. Modes:
//
//   stall           read one lease, then hang forever holding it (the
//                   supervisor's lease deadline — or the test's SIGKILL —
//                   has to take it away)
//   garbage         read one lease, print a non-JSON line, exit (protocol
//                   fault: killed, lease revoked, points re-leased)
//   garbage-always  every instance prints garbage (sentinel ignored) — the
//                   retry budget runs out and the campaign must fail
#include <cstdio>
#include <cstring>
#include <string>

#include <unistd.h>

#include "svc/worker.hpp"

namespace {

bool file_exists(const char* path) {
  std::FILE* file = std::fopen(path, "rb");
  if (file == nullptr) return false;
  std::fclose(file);
  return true;
}

void create_file(const char* path) {
  if (std::FILE* file = std::fopen(path, "wb"); file != nullptr) std::fclose(file);
}

/// Block until one '\n'-terminated lease line arrived (content ignored).
void read_one_line() {
  int ch = 0;
  while ((ch = std::fgetc(stdin)) != EOF) {
    if (ch == '\n') return;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: fake_worker <stall|garbage|garbage-always> <sentinel>\n");
    return 2;
  }
  const std::string mode = argv[1];
  const char* sentinel = argv[2];

  if (mode == "garbage-always") {
    read_one_line();
    std::fputs("** not a worker reply **\n", stdout);
    std::fflush(stdout);
    return 0;
  }
  if (file_exists(sentinel)) {
    // A respawned instance: behave like the real worker so the campaign
    // completes after exactly one injected fault.
    return nomc::svc::run_worker(stdin, stdout);
  }
  create_file(sentinel);
  read_one_line();
  if (mode == "stall") {
    for (;;) ::pause();  // hold the lease until killed
  }
  if (mode == "garbage") {
    std::fputs("** not a worker reply **\n", stdout);
    std::fflush(stdout);
    return 0;
  }
  std::fprintf(stderr, "unknown mode: %s\n", mode.c_str());
  return 2;
}
