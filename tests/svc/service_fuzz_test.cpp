// Server crash-resume fuzz for sharded campaigns: kill the server (and with
// it every worker process) at a random point of a --workers 3 campaign,
// optionally tear the store's tail the way a mid-write death would, then
// restart against the same data dir and resubmit. The final store must be
// byte-identical to a serial local run for every seed — the worker count and
// the crash point must leave no fingerprint.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <random>
#include <string>

#include <unistd.h>

#include "exp/campaign.hpp"
#include "exp/spec.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"

namespace nomc::svc {
namespace {

// 4 cheap points, one trial each; lease_points=1 spreads them across workers.
constexpr const char* kFuzzSpec =
    "name = svc_fuzz\n"
    "channels = 2\n"
    "links = 1\n"
    "power = 0\n"
    "warmup = 0.05\n"
    "measure = 0.1\n"
    "trials = 1\n"
    "sweep links = 1 2 3 4\n";

std::string read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return {};
  std::string content;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) content.append(buffer, got);
  std::fclose(file);
  return content;
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr) << path;
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), file), content.size());
  std::fclose(file);
}

void truncate_at(const std::string& path, std::size_t offset) {
  std::string content = read_file(path);
  if (offset < content.size()) content.resize(offset);
  write_file(path, content);
}

exp::CampaignSpec fuzz_spec() {
  exp::CampaignSpec spec;
  exp::SpecError error;
  EXPECT_TRUE(exp::parse_campaign(kFuzzSpec, spec, error)) << error.str();
  return spec;
}

const std::string& oracle_bytes() {
  static const std::string bytes = [] {
    const std::string path =
        ::testing::TempDir() + "nomc_sfz_oracle_" + std::to_string(::getpid()) + ".jsonl";
    std::filesystem::remove(path);
    std::filesystem::remove(path + ".timing");
    exp::CampaignOptions options;
    options.quiet = true;
    std::string error;
    EXPECT_TRUE(exp::run_campaign(fuzz_spec(), path, options, nullptr, error)) << error;
    return read_file(path);
  }();
  return bytes;
}

std::string submit_request() {
  std::string request = "{\"op\":\"submit\",\"spec\":";
  exp::json_append_string(request, std::string(kFuzzSpec));
  request += '}';
  return request;
}

TEST(ServiceFuzz, ServerKillMidCampaignResumesByteIdentical) {
  const std::string& oracle = oracle_bytes();
  ASSERT_FALSE(oracle.empty());
  const std::string hash = exp::spec_hash(fuzz_spec());

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("fuzz seed " + std::to_string(seed));
    // Fixed-seed generator for fuzz *inputs* (kill points, frame splits),
    // not simulation randomness — replays stay reproducible.
    // nomc-lint: allow(det-rand)
    std::mt19937_64 rng{seed};
    const std::string dir =
        ::testing::TempDir() + "nomc_sfz_" + std::to_string(::getpid()) + "_" +
        std::to_string(seed);
    std::filesystem::remove_all(dir);

    ServerConfig config;
    config.data_dir = dir;
    config.workers = 3;
    config.lease_points = 1;
    config.worker_argv = {NOMC_CAMPAIGN_BIN, "worker"};

    // First leg: submit, step a random distance into the campaign, then kill
    // the server. close() reaps the workers with SIGKILL — the process-tree
    // equivalent of the whole service dying.
    {
      config.socket_path =
          "/tmp/nomc_sfz_" + std::to_string(::getpid()) + "_" + std::to_string(seed) + "a.sock";
      Server server;
      std::string error;
      ASSERT_TRUE(server.open(config, error)) << error;
      Client client;
      ASSERT_TRUE(client.connect(config.socket_path, error)) << error;
      ASSERT_TRUE(client.send_line(submit_request(), error)) << error;
      // Unconditional stepping: early steps are still accepting the submit,
      // and stepping past completion is harmless — every crash point from
      // "before the campaign started" to "already done" gets fuzzed.
      const int steps = 1 + static_cast<int>(rng() % 40);
      for (int i = 0; i < steps; ++i) {
        ASSERT_TRUE(server.step(20, error)) << error;
      }
      server.close();
    }

    // Half the seeds also tear the store tail, mimicking a write cut short
    // by the kill (the writer appends + flushes per line, so only the final
    // line can be torn — but the fuzz cuts anywhere to be adversarial).
    const std::string store_path = dir + "/" + hash + ".jsonl";
    const std::string store = read_file(store_path);
    if (!store.empty() && rng() % 2 == 0) {
      const std::size_t window = store.size() < 300 ? store.size() : 300;
      truncate_at(store_path, store.size() - (rng() % (window + 1)));
      const std::string timing = read_file(store_path + ".timing");
      if (!timing.empty()) {
        truncate_at(store_path + ".timing", timing.size() - (rng() % (timing.size() + 1)));
      }
    }

    // Second leg: fresh server over the same data dir; resubmit must finish
    // only the missing suffix and land on the serial oracle's bytes.
    {
      config.socket_path =
          "/tmp/nomc_sfz_" + std::to_string(::getpid()) + "_" + std::to_string(seed) + "b.sock";
      Server server;
      std::string error;
      ASSERT_TRUE(server.open(config, error)) << error;
      Client client;
      ASSERT_TRUE(client.connect(config.socket_path, error)) << error;
      ASSERT_TRUE(client.send_line(submit_request(), error)) << error;
      for (int i = 0; i < 4000; ++i) {
        ASSERT_TRUE(server.step(5, error)) << error;
        if (i >= 8 && !server.busy()) break;
      }
      ASSERT_FALSE(server.busy()) << "resumed campaign did not finish";
      for (int i = 0; i < 6; ++i) ASSERT_TRUE(server.step(0, error)) << error;
      std::string reply_line;
      ASSERT_TRUE(client.recv_line(reply_line, error)) << error;
      exp::JsonValue value;
      ASSERT_TRUE(parse_reply(reply_line, value, error)) << reply_line;
      ASSERT_NE(value.find("ok"), nullptr) << reply_line;
      EXPECT_TRUE(value.find("ok")->boolean) << reply_line;
      server.close();
    }

    EXPECT_EQ(read_file(store_path), oracle);
  }
}

}  // namespace
}  // namespace nomc::svc
