// In-process service tests: a real Server on a real Unix socket, driven
// single-threadedly through step() — no background thread, so the suite
// stays deterministic and sanitizer-friendly. Covers the cache-dedupe
// contract (two clients, same spec: one simulation run, identical replies),
// the malformed-input suite (connection must survive every bad request),
// byte-identity of server-written stores with local run_campaign output,
// and the query/export/shutdown ops.
#include "svc/server.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/result_store.hpp"
#include "exp/spec.hpp"
#include "exp/store_index.hpp"
#include "svc/client.hpp"

namespace nomc::svc {
namespace {

// Two sweep points, sub-second simulated time: fast enough to run twice.
constexpr const char* kTinySpec =
    "name = svc_tiny\n"
    "channels = 2\n"
    "links = 1\n"
    "power = 0\n"
    "warmup = 0.1\n"
    "measure = 0.2\n"
    "trials = 1\n"
    "sweep links = 1 2\n";

std::string temp_dir(const std::string& name) {
  return ::testing::TempDir() + "nomc_svc_" + name;
}

/// A data dir emptied of any previous run's stores — the cache-dedupe
/// assertions count simulated points, so stale stores would skew them.
std::string fresh_dir(const std::string& name) {
  const std::string dir = temp_dir(name);
  std::filesystem::remove_all(dir);
  return dir;
}

/// Sockets must fit sockaddr_un (~107 bytes); keep them in /tmp directly.
std::string socket_path(const std::string& name) { return "/tmp/nomc_" + name + ".sock"; }

/// Pump the poll loop: a request needs one step to accept the connection and
/// one to read + reply, plus slack for partial writes.
void pump(Server& server, int steps = 6) {
  std::string error;
  for (int i = 0; i < steps; ++i) ASSERT_TRUE(server.step(/*timeout_ms=*/20, error)) << error;
}

std::string read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return {};
  std::string out;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) out.append(buffer, got);
  std::fclose(file);
  return out;
}

std::string submit_request(const std::string& spec_text) {
  std::string request = "{\"op\":\"submit\",\"spec\":";
  exp::json_append_string(request, spec_text);
  request += '}';
  return request;
}

/// send + pump + recv: the single-threaded request/reply idiom. The request
/// is small enough to fit the socket buffer, so the blocking send returns
/// before the server has polled.
std::string roundtrip(Server& server, Client& client, const std::string& request) {
  std::string error;
  EXPECT_TRUE(client.send_line(request, error)) << error;
  pump(server);
  std::string line;
  EXPECT_TRUE(client.recv_line(line, error)) << error;
  return line;
}

TEST(Service, PingPong) {
  Server server;
  ServerConfig config;
  config.socket_path = socket_path("ping");
  config.data_dir = fresh_dir("ping");
  std::string error;
  ASSERT_TRUE(server.open(config, error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(config.socket_path, error)) << error;
  EXPECT_EQ(roundtrip(server, client, R"({"op":"ping"})"), pong_reply());
  EXPECT_EQ(server.sessions(), 1u);
}

TEST(Service, MalformedInputsGetErrorsAndTheConnectionSurvives) {
  Server server;
  ServerConfig config;
  config.socket_path = socket_path("bad");
  config.data_dir = fresh_dir("bad");
  config.max_line = 256;  // small cap so the oversized case is cheap
  std::string error;
  ASSERT_TRUE(server.open(config, error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(config.socket_path, error)) << error;

  const auto expect_error = [&](const std::string& request, const char* needle) {
    const std::string reply = roundtrip(server, client, request);
    exp::JsonValue value;
    ASSERT_TRUE(parse_reply(reply, value, error)) << reply;
    ASSERT_NE(value.find("ok"), nullptr);
    EXPECT_FALSE(value.find("ok")->boolean) << reply;
    ASSERT_NE(value.find("error"), nullptr);
    EXPECT_NE(value.find("error")->string.find(needle), std::string::npos) << reply;
    // The session survived: a ping on the same connection still answers.
    EXPECT_EQ(roundtrip(server, client, R"({"op":"ping"})"), pong_reply());
  };

  expect_error("this is not json", "bad JSON");
  expect_error("[1,2,3]", "object");
  expect_error(R"({"spec":"x"})", "op");
  expect_error(R"({"op":"frobnicate"})", "unknown op");
  expect_error(R"({"op":"submit"})", "spec");
  expect_error(R"({"op":"submit","spec":"sweep bogus = 1\n"})", "bad spec");
  expect_error(R"({"op":"query","spec_hash":"00"})", "point");
  expect_error(R"({"op":"query","spec_hash":"beefbeefbeefbeef","point":0})", "unknown");
  expect_error(R"({"op":"export","spec_hash":"beefbeefbeefbeef"})", "unknown");
  expect_error(std::string(300, 'x'), "exceeds");
  EXPECT_EQ(server.sessions(), 1u);  // one connection served all of it
}

TEST(Service, TwoClientsSameSpecOneSimulationIdenticalReplies) {
  Server server;
  ServerConfig config;
  config.socket_path = socket_path("dedupe");
  config.data_dir = fresh_dir("dedupe");
  std::string error;
  ASSERT_TRUE(server.open(config, error)) << error;

  Client first;
  Client second;
  ASSERT_TRUE(first.connect(config.socket_path, error)) << error;
  ASSERT_TRUE(second.connect(config.socket_path, error)) << error;

  // Both submissions are queued before the server runs anything; it serves
  // them in arrival order, so the second finds every point already stored.
  ASSERT_TRUE(first.send_line(submit_request(kTinySpec), error)) << error;
  ASSERT_TRUE(second.send_line(submit_request(kTinySpec), error)) << error;
  pump(server, 10);
  std::string reply_first;
  std::string reply_second;
  ASSERT_TRUE(first.recv_line(reply_first, error)) << error;
  ASSERT_TRUE(second.recv_line(reply_second, error)) << error;

  EXPECT_EQ(reply_first, reply_second);  // byte-identical dedupe contract
  EXPECT_EQ(server.submissions(), 2u);
  EXPECT_EQ(server.computed(), 2u);    // the grid simulated exactly once
  EXPECT_EQ(server.cache_hits(), 2u);  // the resubmission hit on every point

  // The split is visible to clients through the status counters.
  exp::JsonValue status;
  ASSERT_TRUE(parse_reply(roundtrip(server, first, R"({"op":"status"})"), status, error));
  EXPECT_EQ(static_cast<int>(status.find("computed")->number), 2);
  EXPECT_EQ(static_cast<int>(status.find("cache_hits")->number), 2);
  EXPECT_EQ(static_cast<int>(status.find("submissions")->number), 2);
  EXPECT_EQ(static_cast<int>(status.find("campaigns")->number), 1);
}

TEST(Service, ServerStoreIsByteIdenticalToLocalRun) {
  Server server;
  ServerConfig config;
  config.socket_path = socket_path("bytes");
  config.data_dir = fresh_dir("bytes");
  std::string error;
  ASSERT_TRUE(server.open(config, error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(config.socket_path, error)) << error;
  exp::JsonValue reply;
  ASSERT_TRUE(parse_reply(roundtrip(server, client, submit_request(kTinySpec)), reply, error));
  ASSERT_TRUE(reply.find("ok")->boolean);
  const std::string hash = reply.find("spec_hash")->string;

  exp::CampaignSpec spec;
  exp::SpecError spec_error;
  ASSERT_TRUE(exp::parse_campaign(kTinySpec, spec, spec_error)) << spec_error.str();
  ASSERT_EQ(exp::spec_hash(spec), hash);
  const std::string local = temp_dir("bytes_local.jsonl");
  std::remove(local.c_str());
  exp::CampaignOptions options;
  options.quiet = true;
  exp::CampaignStats stats;
  ASSERT_TRUE(exp::run_campaign(spec, local, options, &stats, error)) << error;

  const std::string server_bytes = read_file(config.data_dir + "/" + hash + ".jsonl");
  const std::string local_bytes = read_file(local);
  ASSERT_FALSE(server_bytes.empty());
  EXPECT_EQ(server_bytes, local_bytes);

  // query returns the verbatim record line, equal to what a linear scan sees.
  exp::StoreScan scan;
  ASSERT_TRUE(exp::scan_store(local, hash, scan, error)) << error;
  const std::string query =
      "{\"op\":\"query\",\"spec_hash\":\"" + hash + "\",\"point\":1}";
  exp::JsonValue queried;
  ASSERT_TRUE(parse_reply(roundtrip(server, client, query), queried, error));
  ASSERT_TRUE(queried.find("ok")->boolean);
  std::string linear_line;
  for (const exp::ResultRecord& record : scan.records) {
    if (record.point == 1) {
      // Re-read the verbatim line through the index for byte equality.
      exp::StoreIndex index;
      ASSERT_TRUE(index.open(local, hash, error)) << error;
      ASSERT_TRUE(index.read_line(*index.find(hash, 1), linear_line, error)) << error;
    }
  }
  EXPECT_EQ(queried.find("record")->string, linear_line);
}

TEST(Service, ExportStreamsTheExactCsvBytes) {
  Server server;
  ServerConfig config;
  config.socket_path = socket_path("export");
  config.data_dir = fresh_dir("export");
  std::string error;
  ASSERT_TRUE(server.open(config, error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(config.socket_path, error)) << error;
  exp::JsonValue reply;
  ASSERT_TRUE(parse_reply(roundtrip(server, client, submit_request(kTinySpec)), reply, error));
  ASSERT_TRUE(reply.find("ok")->boolean);
  const std::string hash = reply.find("spec_hash")->string;

  ASSERT_TRUE(client.send_line("{\"op\":\"export\",\"spec_hash\":\"" + hash + "\"}", error));
  pump(server);
  std::string streamed;
  std::uint64_t rows = 0;
  while (true) {
    std::string line;
    ASSERT_TRUE(client.recv_line(line, error)) << error;
    exp::JsonValue value;
    ASSERT_TRUE(parse_reply(line, value, error)) << line;
    if (const exp::JsonValue* csv = value.find("csv"); csv != nullptr) {
      streamed += csv->string;
      streamed += '\n';
      continue;
    }
    ASSERT_TRUE(value.find("ok")->boolean) << line;
    rows = static_cast<std::uint64_t>(value.find("rows")->number);
    break;
  }

  exp::StoreScan scan;
  ASSERT_TRUE(exp::scan_store(config.data_dir + "/" + hash + ".jsonl", hash, scan, error));
  std::FILE* whole = std::tmpfile();
  ASSERT_NE(whole, nullptr);
  ASSERT_TRUE(exp::export_csv(scan.records, whole));
  std::string expected;
  std::rewind(whole);
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, whole)) > 0) expected.append(buffer, got);
  std::fclose(whole);

  EXPECT_EQ(streamed, expected);
  std::uint64_t networks = 0;  // CSV is long format: one row per (record, network)
  for (const exp::ResultRecord& record : scan.records) networks += record.pps.size();
  EXPECT_EQ(rows, networks);
}

TEST(Service, CacheSurvivesServerRestart) {
  ServerConfig config;
  config.socket_path = socket_path("restart");
  config.data_dir = fresh_dir("restart");
  std::string error;
  std::string first_reply;
  {
    Server server;
    ASSERT_TRUE(server.open(config, error)) << error;
    Client client;
    ASSERT_TRUE(client.connect(config.socket_path, error)) << error;
    first_reply = roundtrip(server, client, submit_request(kTinySpec));
    ASSERT_GT(server.computed(), 0u);
  }
  {
    Server server;
    ASSERT_TRUE(server.open(config, error)) << error;
    Client client;
    ASSERT_TRUE(client.connect(config.socket_path, error)) << error;
    // A fresh process sees the stores on disk: zero simulation, same reply.
    EXPECT_EQ(roundtrip(server, client, submit_request(kTinySpec)), first_reply);
    EXPECT_EQ(server.computed(), 0u);
    EXPECT_EQ(server.cache_hits(), 2u);
  }
}

TEST(Service, ShutdownOpStopsTheLoop) {
  Server server;
  ServerConfig config;
  config.socket_path = socket_path("down");
  config.data_dir = fresh_dir("down");
  std::string error;
  ASSERT_TRUE(server.open(config, error)) << error;
  EXPECT_TRUE(server.running());

  Client client;
  ASSERT_TRUE(client.connect(config.socket_path, error)) << error;
  EXPECT_EQ(roundtrip(server, client, R"({"op":"shutdown"})"), shutdown_reply());
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace nomc::svc
