// Protocol-layer tests: line framing (including the oversized-line discard
// mode), request parsing, and the reply builders round-tripping through the
// JSON parser the clients use.
#include "svc/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

namespace nomc::svc {
namespace {

TEST(LineSplitter, SplitsAcrossFeeds) {
  LineSplitter splitter;
  splitter.feed("hel");
  std::string line;
  bool oversized = false;
  EXPECT_FALSE(splitter.take(line, oversized));
  splitter.feed("lo\nwor");
  ASSERT_TRUE(splitter.take(line, oversized));
  EXPECT_EQ(line, "hello");
  EXPECT_FALSE(oversized);
  EXPECT_FALSE(splitter.take(line, oversized));
  EXPECT_EQ(splitter.pending(), 3u);
  splitter.feed("ld\n");
  ASSERT_TRUE(splitter.take(line, oversized));
  EXPECT_EQ(line, "world");
}

TEST(LineSplitter, ManyLinesInOneFeed) {
  LineSplitter splitter;
  splitter.feed("a\nb\n\nc\n");
  std::string line;
  bool oversized = false;
  std::vector<std::string> lines;
  while (splitter.take(line, oversized)) lines.push_back(line);
  EXPECT_EQ(lines, (std::vector<std::string>{"a", "b", "", "c"}));
}

TEST(LineSplitter, OversizedLineIsDiscardedNotBuffered) {
  LineSplitter splitter{8};
  splitter.feed("0123456789abcdef");  // blows the cap mid-line
  EXPECT_EQ(splitter.pending(), 0u);  // discard mode buffers nothing
  splitter.feed("more\nnext\n");
  std::string line;
  bool oversized = false;
  ASSERT_TRUE(splitter.take(line, oversized));
  EXPECT_TRUE(oversized);  // the poisoned line surfaces once, empty
  EXPECT_TRUE(line.empty());
  ASSERT_TRUE(splitter.take(line, oversized));
  EXPECT_FALSE(oversized);  // framing recovers on the next line
  EXPECT_EQ(line, "next");
}

TEST(ProtocolRequest, ParsesEveryOp) {
  Request request;
  std::string error;
  ASSERT_TRUE(parse_request(R"({"op":"ping"})", request, error)) << error;
  EXPECT_EQ(request.op, "ping");

  ASSERT_TRUE(parse_request(R"({"op":"submit","spec":"name = x\n"})", request, error));
  EXPECT_EQ(request.op, "submit");
  EXPECT_EQ(request.spec, "name = x\n");

  ASSERT_TRUE(parse_request(R"({"op":"query","spec_hash":"ab","point":3})", request, error));
  EXPECT_EQ(request.spec_hash, "ab");
  EXPECT_TRUE(request.has_point);
  EXPECT_EQ(request.point, 3);

  ASSERT_TRUE(parse_request(R"({"op":"status"})", request, error));
  EXPECT_FALSE(request.has_point);
  EXPECT_TRUE(request.spec_hash.empty());
}

TEST(ProtocolRequest, RejectsMalformedLines) {
  Request request;
  std::string error;
  EXPECT_FALSE(parse_request("not json", request, error));
  EXPECT_NE(error.find("bad JSON"), std::string::npos);
  EXPECT_FALSE(parse_request("42", request, error));
  EXPECT_NE(error.find("object"), std::string::npos);
  EXPECT_FALSE(parse_request(R"({"spec":"x"})", request, error));
  EXPECT_NE(error.find("op"), std::string::npos);
  EXPECT_FALSE(parse_request(R"({"op":7})", request, error));
}

TEST(ProtocolReplies, RoundTripThroughJsonParser) {
  exp::JsonValue value;
  std::string error;

  ASSERT_TRUE(parse_reply(pong_reply(), value, error)) << error;
  EXPECT_TRUE(value.find("ok")->boolean);
  EXPECT_TRUE(value.find("pong")->boolean);

  ASSERT_TRUE(parse_reply(error_reply("boom \"quoted\""), value, error));
  EXPECT_FALSE(value.find("ok")->boolean);
  EXPECT_EQ(value.find("error")->string, "boom \"quoted\"");

  ASSERT_TRUE(parse_reply(submit_reply("00aa", "camp", 5, 5), value, error));
  EXPECT_EQ(value.find("spec_hash")->string, "00aa");
  EXPECT_EQ(value.find("campaign")->string, "camp");
  EXPECT_EQ(static_cast<int>(value.find("points")->number), 5);
  EXPECT_EQ(static_cast<int>(value.find("done")->number), 5);

  StatusInfo info;
  info.submissions = 2;
  info.computed = 5;
  info.cache_hits = 7;
  info.campaigns = 1;
  info.campaign = "camp";
  info.spec_hash = "00aa";
  info.points = 5;
  info.done = 5;
  ASSERT_TRUE(parse_reply(status_reply(info), value, error));
  EXPECT_EQ(static_cast<int>(value.find("cache_hits")->number), 7);
  EXPECT_EQ(value.find("campaign")->string, "camp");

  // The per-campaign block is absent without a campaign name.
  info.campaign.clear();
  ASSERT_TRUE(parse_reply(status_reply(info), value, error));
  EXPECT_EQ(value.find("campaign"), nullptr);

  const std::string record = R"({"v":1,"point":0})";
  ASSERT_TRUE(parse_reply(query_reply(record), value, error));
  EXPECT_EQ(value.find("record")->string, record);

  ASSERT_TRUE(parse_reply(export_row("a,b,1.5"), value, error));
  EXPECT_EQ(value.find("csv")->string, "a,b,1.5");

  ASSERT_TRUE(parse_reply(export_done(12), value, error));
  EXPECT_TRUE(value.find("done")->boolean);
  EXPECT_EQ(static_cast<int>(value.find("rows")->number), 12);

  ASSERT_TRUE(parse_reply(shutdown_reply(), value, error));
  EXPECT_TRUE(value.find("shutdown")->boolean);
}

TEST(ProtocolReplies, SubmitReplyIsAPureFunctionOfTheSpec) {
  // The dedupe contract: two clients submitting the same spec must receive
  // byte-identical replies, so nothing run-dependent may enter this line.
  EXPECT_EQ(submit_reply("00aa", "c", 4, 4), submit_reply("00aa", "c", 4, 4));
}

TEST(ProtocolReplies, StatusReplyCarriesRetriedStateAndFailedRange) {
  StatusInfo info;
  info.retried = 3;
  info.campaign = "camp";
  info.spec_hash = "00aa";
  info.points = 4;
  info.done = 2;
  info.state = "failed";
  info.failed_first = 2;
  info.failed_count = 2;
  exp::JsonValue value;
  std::string error;
  ASSERT_TRUE(parse_reply(status_reply(info), value, error)) << error;
  EXPECT_EQ(static_cast<int>(value.find("retried")->number), 3);
  EXPECT_EQ(value.find("state")->string, "failed");
  EXPECT_EQ(static_cast<int>(value.find("failed_first")->number), 2);
  EXPECT_EQ(static_cast<int>(value.find("failed_count")->number), 2);

  // The failed range is only emitted in the failed state.
  info.state = "running";
  ASSERT_TRUE(parse_reply(status_reply(info), value, error));
  EXPECT_EQ(value.find("state")->string, "running");
  EXPECT_EQ(value.find("failed_first"), nullptr);
}

TEST(WorkerProtocol, LeaseLineRoundTrips) {
  LeaseRequest lease;
  lease.spec = "name = x\nsweep links = 1 2\n";
  lease.first = 3;
  lease.count = 2;
  lease.jobs = 4;
  lease.trial_workers = 2;
  LeaseRequest parsed;
  std::string error;
  ASSERT_TRUE(parse_lease(lease_line(lease), parsed, error)) << error;
  EXPECT_EQ(parsed.spec, lease.spec);
  EXPECT_EQ(parsed.first, 3);
  EXPECT_EQ(parsed.count, 2);
  EXPECT_EQ(parsed.jobs, 4);
  EXPECT_EQ(parsed.trial_workers, 2);

  // jobs/trial_workers are optional and default to 1.
  ASSERT_TRUE(parse_lease(R"({"op":"lease","spec":"s","first":0,"count":1})", parsed, error));
  EXPECT_EQ(parsed.jobs, 1);
  EXPECT_EQ(parsed.trial_workers, 1);

  EXPECT_FALSE(parse_lease(R"({"op":"submit","spec":"s"})", parsed, error));
  EXPECT_FALSE(parse_lease(R"({"op":"lease","spec":"s","first":0})", parsed, error));
  EXPECT_FALSE(parse_lease("not json", parsed, error));
}

TEST(WorkerProtocol, WorkerLinesRoundTrip) {
  const std::string record = R"({"v":1,"spec_hash":"00aa","point":5})";
  WorkerReply parsed;
  std::string error;
  ASSERT_TRUE(parse_worker_reply(worker_record_line(5, 12.5, record), parsed, error)) << error;
  EXPECT_FALSE(parsed.done);
  EXPECT_EQ(parsed.point, 5);
  EXPECT_DOUBLE_EQ(parsed.wall_ms, 12.5);
  EXPECT_EQ(parsed.record, record);

  ASSERT_TRUE(parse_worker_reply(worker_done_line(4, 2), parsed, error)) << error;
  EXPECT_TRUE(parsed.done);
  EXPECT_EQ(parsed.first, 4);
  EXPECT_EQ(parsed.count, 2);

  // The supervisor treats anything else as a protocol fault.
  EXPECT_FALSE(parse_worker_reply("garbage", parsed, error));
  EXPECT_FALSE(parse_worker_reply(R"({"done":true})", parsed, error));
  EXPECT_FALSE(parse_worker_reply(R"({"point":1})", parsed, error));
  EXPECT_FALSE(parse_worker_reply("[1,2]", parsed, error));
}

}  // namespace
}  // namespace nomc::svc
