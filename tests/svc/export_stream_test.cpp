// Streaming-export test: a ~100k-record store pushed through a deliberately
// slow reader. The server must never buffer more than the outbox high-water
// mark (the whole CSV is megabytes; the bound is 64 KiB plus one row), and
// the received rows must be byte-identical to the local export-csv path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "exp/spec.hpp"
#include "exp/store_index.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"

namespace nomc::svc {
namespace {

constexpr int kRecords = 100000;

constexpr const char* kSpecText =
    "name = svc_stream\n"
    "channels = 2\n"
    "links = 1\n"
    "power = 0\n"
    "warmup = 0.1\n"
    "measure = 0.2\n"
    "trials = 1\n"
    "sweep links = 1 2\n";

/// A synthetic one-network record carrying the real spec hash — the cache
/// recomputes the hash from the .spec sidecar, so a made-up hash would be
/// rejected before the export even starts.
std::string record_line(const std::string& hash, int point) {
  std::string line = R"({"v":1,"campaign":"svc_stream","spec_hash":")" + hash +
                     R"(","point":)" + std::to_string(point) +
                     R"(,"sweep":{"links":")" + std::to_string(point % 7 + 1) +
                     R"("},"params":{},"per_network":{"pps":[)" + std::to_string(point % 97) +
                     R"(],"prr":[1],"backoffs_per_s":[0],"drops_per_s":[0]},)" +
                     R"("overall_pps":1,"jain":1})";
  line += '\n';
  return line;
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr) << path;
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), file), content.size());
  std::fclose(file);
}

TEST(ExportStream, SlowReaderSeesBoundedOutboxAndExactBytes) {
  exp::CampaignSpec spec;
  exp::SpecError spec_error;
  ASSERT_TRUE(exp::parse_campaign(kSpecText, spec, spec_error)) << spec_error.str();
  const std::string hash = exp::spec_hash(spec);

  const std::string dir =
      ::testing::TempDir() + "nomc_stream_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  write_file(dir + "/" + hash + ".spec", exp::format_campaign(spec));
  std::string store;
  store.reserve(static_cast<std::size_t>(kRecords) * 200);
  for (int point = 0; point < kRecords; ++point) store += record_line(hash, point);
  const std::string store_path = dir + "/" + hash + ".jsonl";
  write_file(store_path, store);

  ServerConfig config;
  config.socket_path = "/tmp/nomc_stream_" + std::to_string(::getpid()) + ".sock";
  config.data_dir = dir;
  Server server;
  std::string error;
  ASSERT_TRUE(server.open(config, error)) << error;

  // The reader runs in its own thread and throttles itself, so the server's
  // outbox would balloon to the full CSV without streaming backpressure.
  std::atomic<bool> done{false};
  std::atomic<bool> reader_ok{false};
  std::string received;
  std::string reader_error;
  // A raw thread on purpose: it models an external client process pacing
  // its reads, outside the simulator's deterministic runners.
  // nomc-lint: allow(det-raw-thread)
  std::thread reader([&] {
    Client client;
    std::string thread_error;
    if (!client.connect(config.socket_path, thread_error)) {
      reader_error = thread_error;
      done = true;
      return;
    }
    std::string request = "{\"op\":\"export\",\"spec_hash\":";
    exp::json_append_string(request, hash);
    request += '}';
    if (!client.send_line(request, thread_error)) {
      reader_error = thread_error;
      done = true;
      return;
    }
    std::string line;
    long rows = 0;
    for (;;) {
      if (!client.recv_line(line, thread_error)) {
        reader_error = thread_error;
        break;
      }
      exp::JsonValue value;
      if (!parse_reply(line, value, thread_error)) {
        reader_error = thread_error + ": " + line;
        break;
      }
      // Row lines are bare {"csv":...}; only the terminator and errors
      // carry "ok".
      if (const exp::JsonValue* csv = value.find("csv"); csv != nullptr) {
        received += csv->string;
        received += '\n';
        if (++rows % 256 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      if (const exp::JsonValue* terminator = value.find("done");
          terminator != nullptr && terminator->boolean) {
        reader_ok = true;
        break;
      }
      reader_error = "unexpected or error reply: " + line;
      break;
    }
    done = true;
  });

  for (int i = 0; i < 600000 && !done; ++i) {
    ASSERT_TRUE(server.step(2, error)) << error;
  }
  reader.join();
  ASSERT_TRUE(reader_ok) << reader_error;

  // Backpressure bound: the high-water mark is 64 KiB; one in-flight row can
  // overshoot it, but nothing near the multi-megabyte CSV may ever queue.
  EXPECT_GT(received.size(), std::size_t{2} * 1024 * 1024) << "CSV unexpectedly small";
  EXPECT_LT(server.peak_outbox(), std::size_t{128} * 1024)
      << "outbox grew far beyond the streaming high-water mark";

  // Byte-for-byte the same CSV the local export-csv command writes.
  exp::StoreIndex index;
  ASSERT_TRUE(index.open(store_path, hash, error)) << error;
  std::string expected;
  ASSERT_TRUE(exp::export_csv_lines(
      index,
      [&](const std::string& line) {
        expected += line;
        expected += '\n';
        return true;
      },
      error))
      << error;
  EXPECT_EQ(received.size(), expected.size());
  EXPECT_TRUE(received == expected) << "streamed CSV differs from local export-csv";
}

}  // namespace
}  // namespace nomc::svc
