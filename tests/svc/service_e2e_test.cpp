// End-to-end campaign-service test through the REAL binaries: fork/exec
// nomc-serve on a temp socket, drive it with the nomc-campaign client CLI,
// and check the acceptance contract —
//   (a) resubmitting an identical spec simulates zero points (the status
//       counters show pure cache hits),
//   (b) the server-written JSONL store is byte-identical to a local
//       `nomc-campaign run` store of the same spec,
//   (c) a query served through the .idx sidecar returns the same record as
//       a linear scan of the store.
//
// nomc-lint: allow-file(svc-raw-fork) — spawning the real binaries IS the
// test; svc::WorkerPool is part of the system under test, not usable here.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "exp/result_store.hpp"
#include "exp/spec.hpp"
#include "exp/store_index.hpp"
#include "svc/client.hpp"

namespace nomc::svc {
namespace {

constexpr const char* kSocket = "/tmp/nomc_e2e.sock";

std::string work_dir() { return ::testing::TempDir() + "nomc_svc_e2e"; }

/// fork/exec one of the real tools, stdout/stderr silenced; returns the
/// child's exit code (-1 on spawn failure / abnormal exit).
int run_tool(const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    std::freopen("/dev/null", "w", stdout);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::_Exit(127);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return {};
  std::string out;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) out.append(buffer, got);
  std::fclose(file);
  return out;
}

/// Ask the server for its lifetime counters.
bool fetch_counters(Client& client, std::uint64_t& computed, std::uint64_t& cache_hits,
                    std::string& error) {
  exp::JsonValue reply;
  if (!client.call(R"({"op":"status"})", reply, error)) return false;
  const exp::JsonValue* ok = reply.find("ok");
  if (ok == nullptr || !ok->boolean) {
    error = "status returned not-ok";
    return false;
  }
  computed = static_cast<std::uint64_t>(reply.find("computed")->number);
  cache_hits = static_cast<std::uint64_t>(reply.find("cache_hits")->number);
  return true;
}

TEST(ServiceE2E, SubmitCacheQueryExportShutdown) {
  const std::string data_dir = work_dir();
  const std::string spec_path = NOMC_E2E_SPEC;
  // A fresh data dir every run: a stale cache from a previous run would turn
  // the "first submission computes everything" phase into cache hits.
  std::filesystem::remove_all(data_dir);

  exp::CampaignSpec spec;
  exp::SpecError spec_error;
  ASSERT_TRUE(exp::load_campaign(spec_path, spec, spec_error)) << spec_error.str();
  const std::string hash = exp::spec_hash(spec);
  const int points = static_cast<int>(exp::expand_grid(spec).size());
  ASSERT_GT(points, 0);

  // Start the real daemon.
  const pid_t server_pid = ::fork();
  ASSERT_GE(server_pid, 0);
  if (server_pid == 0) {
    std::freopen("/dev/null", "w", stdout);
    ::execl(NOMC_SERVE_BIN, NOMC_SERVE_BIN, "--socket", kSocket, "--data-dir",
            data_dir.c_str(), static_cast<char*>(nullptr));
    std::_Exit(127);
  }

  // Wait for the socket to accept (the daemon needs a moment to bind).
  Client probe;
  std::string error;
  bool up = false;
  for (int attempt = 0; attempt < 200 && !up; ++attempt) {
    up = probe.connect(kSocket, error);
    if (!up) ::usleep(50 * 1000);
  }
  ASSERT_TRUE(up) << error;

  // First submission computes every point...
  EXPECT_EQ(run_tool({NOMC_CAMPAIGN_BIN, "submit", spec_path, "--server", kSocket}), 0);
  std::uint64_t computed = 0;
  std::uint64_t cache_hits = 0;
  ASSERT_TRUE(fetch_counters(probe, computed, cache_hits, error)) << error;
  EXPECT_EQ(computed, static_cast<std::uint64_t>(points));
  EXPECT_EQ(cache_hits, 0u);

  // ...(a) the identical resubmission simulates zero points: computed does
  // not move, every point lands as a cache hit in the status reply.
  EXPECT_EQ(run_tool({NOMC_CAMPAIGN_BIN, "submit", spec_path, "--server", kSocket}), 0);
  ASSERT_TRUE(fetch_counters(probe, computed, cache_hits, error)) << error;
  EXPECT_EQ(computed, static_cast<std::uint64_t>(points));
  EXPECT_EQ(cache_hits, static_cast<std::uint64_t>(points));

  // (b) The server's store is byte-identical to a local run of the spec.
  const std::string local_store = work_dir() + "_local.jsonl";
  std::remove(local_store.c_str());
  EXPECT_EQ(run_tool({NOMC_CAMPAIGN_BIN, "run", spec_path, "--out", local_store,
                      "--quiet"}),
            0);
  const std::string server_store = data_dir + "/" + hash + ".jsonl";
  const std::string server_bytes = read_file(server_store);
  ASSERT_FALSE(server_bytes.empty());
  EXPECT_EQ(server_bytes, read_file(local_store));

  // (c) A query through the .idx sidecar == the linear-scan record.
  exp::StoreScan scan;
  ASSERT_TRUE(exp::scan_store(server_store, hash, scan, error)) << error;
  exp::StoreIndex index;
  ASSERT_TRUE(index.open(server_store, hash, error)) << error;
  ASSERT_TRUE(std::fopen(exp::StoreIndex::index_path(server_store).c_str(), "rb") !=
              nullptr);  // the sidecar actually exists on disk
  for (const exp::ResultRecord& record : scan.records) {
    const exp::StoreIndex::Entry* entry = index.find(hash, record.point);
    ASSERT_NE(entry, nullptr) << record.point;
    std::string via_index;
    ASSERT_TRUE(index.read_line(*entry, via_index, error)) << error;
    exp::JsonValue reply;
    const std::string query = "{\"op\":\"query\",\"spec_hash\":\"" + hash +
                              "\",\"point\":" + std::to_string(record.point) + "}";
    ASSERT_TRUE(probe.call(query, reply, error)) << error;
    ASSERT_TRUE(reply.find("ok")->boolean);
    EXPECT_EQ(reply.find("record")->string, via_index);  // server == index == scan
  }

  // The CLI query path agrees too (spot check one point).
  EXPECT_EQ(run_tool({NOMC_CAMPAIGN_BIN, "query", hash, "--server", kSocket, "--point",
                      "0"}),
            0);
  // And the streamed export completes against the running server.
  EXPECT_EQ(run_tool({NOMC_CAMPAIGN_BIN, "export", hash, "--server", kSocket, "--out",
                      work_dir() + "_served.csv"}),
            0);
  EXPECT_EQ(run_tool({NOMC_CAMPAIGN_BIN, "export-csv", local_store, "--out",
                      work_dir() + "_local.csv"}),
            0);
  EXPECT_EQ(read_file(work_dir() + "_served.csv"), read_file(work_dir() + "_local.csv"));
  EXPECT_FALSE(read_file(work_dir() + "_served.csv").empty());

  // Clean shutdown through the CLI; the daemon must exit 0 on its own.
  probe.close();
  EXPECT_EQ(run_tool({NOMC_CAMPAIGN_BIN, "shutdown", kSocket}), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(server_pid, &status, 0), server_pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

/// fork/exec a tool without waiting — the caller reaps it.
pid_t spawn_tool(const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    std::freopen("/dev/null", "w", stdout);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::_Exit(127);
  }
  return pid;
}

/// The server's live worker children, found by walking /proc for processes
/// whose parent is the daemon (the workers are `nomc-campaign worker`).
std::vector<pid_t> worker_children(pid_t server_pid) {
  std::vector<pid_t> out;
  for (const auto& entry : std::filesystem::directory_iterator("/proc")) {
    const std::string name = entry.path().filename().string();
    if (name.empty() || name.find_first_not_of("0123456789") != std::string::npos) continue;
    const std::string stat = read_file("/proc/" + name + "/stat");
    // stat: "pid (comm) state ppid ..."; comm may hold spaces, so parse past
    // the LAST ')' (the kernel never escapes it).
    const std::size_t close = stat.rfind(')');
    if (close == std::string::npos) continue;
    const std::size_t comm_open = stat.find('(');
    const std::string comm = stat.substr(comm_open + 1, close - comm_open - 1);
    if (comm.find("nomc-campaign") == std::string::npos) continue;
    pid_t ppid = 0;
    if (std::sscanf(stat.c_str() + close + 1, " %*c %d", &ppid) != 1) continue;
    if (ppid == server_pid) out.push_back(static_cast<pid_t>(std::stol(name)));
  }
  return out;
}

TEST(ServiceE2E, Workers4SurviveSigkillMidCampaign) {
  // The acceptance scenario: a --workers 4 daemon, one worker SIGKILLed while
  // the campaign runs, and the final store still byte-identical to a serial
  // local run with the killed worker's points visibly re-leased.
  const std::string data_dir = ::testing::TempDir() + "nomc_svc_e2e_w4";
  const char* kSocketW4 = "/tmp/nomc_e2e_w4.sock";
  std::filesystem::remove_all(data_dir);
  std::filesystem::create_directories(data_dir);

  // Long enough simulated windows that the grid is still mid-flight when
  // the kill lands (tiny windows finish in tens of milliseconds — faster
  // than a /proc scan can find the victim).
  const std::string spec_text =
      "name = e2e_w4\n"
      "channels = 2\n"
      "links = 1\n"
      "power = 0\n"
      "warmup = 1\n"
      "measure = 2\n"
      "trials = 1\n"
      "sweep links = 1 2 3 4 5 6 7 8\n";
  const std::string spec_path = data_dir + "/e2e_w4.campaign";
  {
    std::FILE* file = std::fopen(spec_path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fwrite(spec_text.data(), 1, spec_text.size(), file);
    std::fclose(file);
  }
  exp::CampaignSpec spec;
  exp::SpecError spec_error;
  ASSERT_TRUE(exp::parse_campaign(spec_text, spec, spec_error)) << spec_error.str();
  const std::string hash = exp::spec_hash(spec);

  const pid_t server_pid = ::fork();
  ASSERT_GE(server_pid, 0);
  if (server_pid == 0) {
    std::freopen("/dev/null", "w", stdout);
    ::execl(NOMC_SERVE_BIN, NOMC_SERVE_BIN, "--socket", kSocketW4, "--data-dir",
            data_dir.c_str(), "--workers", "4", "--lease-points", "1",
            static_cast<char*>(nullptr));
    std::_Exit(127);
  }
  Client probe;
  std::string error;
  bool up = false;
  for (int attempt = 0; attempt < 200 && !up; ++attempt) {
    up = probe.connect(kSocketW4, error);
    if (!up) ::usleep(50 * 1000);
  }
  ASSERT_TRUE(up) << error;

  // Submit from the CLI, then SIGKILL the first worker we can find — the
  // pool spawns them the moment the sharded job starts, each already
  // holding a one-point lease.
  const pid_t submit_pid =
      spawn_tool({NOMC_CAMPAIGN_BIN, "submit", spec_path, "--server", kSocketW4});
  ASSERT_GT(submit_pid, 0);
  pid_t victim = -1;
  for (int i = 0; i < 2000 && victim < 0; ++i) {
    const std::vector<pid_t> workers = worker_children(server_pid);
    if (!workers.empty()) {
      victim = workers.front();
    } else {
      ::usleep(2000);
    }
  }
  ASSERT_GT(victim, 0) << "no worker process appeared under the daemon";
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  // The CLI submit must still succeed: the supervisor re-leases the killed
  // worker's points and completes the grid.
  int status = 0;
  ASSERT_EQ(::waitpid(submit_pid, &status, 0), submit_pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The retry is visible in the status counters.
  exp::JsonValue reply;
  ASSERT_TRUE(probe.call(R"({"op":"status"})", reply, error)) << error;
  ASSERT_TRUE(reply.find("ok")->boolean);
  ASSERT_NE(reply.find("retried"), nullptr);
  EXPECT_GE(static_cast<int>(reply.find("retried")->number), 1);

  // Byte-identity with a serial local run of the same spec.
  const std::string local_store = data_dir + "_local.jsonl";
  std::remove(local_store.c_str());
  EXPECT_EQ(run_tool({NOMC_CAMPAIGN_BIN, "run", spec_path, "--out", local_store,
                      "--quiet"}),
            0);
  const std::string server_bytes = read_file(data_dir + "/" + hash + ".jsonl");
  ASSERT_FALSE(server_bytes.empty());
  EXPECT_EQ(server_bytes, read_file(local_store));

  probe.close();
  EXPECT_EQ(run_tool({NOMC_CAMPAIGN_BIN, "shutdown", kSocketW4}), 0);
  ASSERT_EQ(::waitpid(server_pid, &status, 0), server_pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace nomc::svc
