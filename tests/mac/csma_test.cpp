#include "mac/csma.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "mac/cca.hpp"

namespace nomc::mac {
namespace {

/// Rig: two nodes 2 m apart on a quiet medium.
class CsmaTest : public ::testing::Test {
 protected:
  CsmaTest() {
    phy::MediumConfig config;
    config.shadowing_sigma_db = 0.0;
    medium_.emplace(config);
    sender_id_ = medium_->add_node({0.0, 0.0});
    receiver_id_ = medium_->add_node({0.0, 2.0});

    phy::RadioConfig radio_config;
    radio_config.channel = phy::Mhz{2460.0};
    sender_radio_.emplace(scheduler_, *medium_, sim::RandomStream{1, 0}, sender_id_,
                          radio_config);
    receiver_radio_.emplace(scheduler_, *medium_, sim::RandomStream{1, 1}, receiver_id_,
                            radio_config);
  }

  std::unique_ptr<CsmaMac> make_sender(CcaThresholdProvider& cca, CsmaParams params = {}) {
    return std::make_unique<CsmaMac>(scheduler_, *medium_, *sender_radio_,
                                     sim::RandomStream{1, 2}, cca, params);
  }
  std::unique_ptr<CsmaMac> make_receiver(CcaThresholdProvider& cca) {
    return std::make_unique<CsmaMac>(scheduler_, *medium_, *receiver_radio_,
                                     sim::RandomStream{1, 3}, cca);
  }

  sim::Scheduler scheduler_;
  std::optional<phy::Medium> medium_;
  phy::NodeId sender_id_ = 0;
  phy::NodeId receiver_id_ = 0;
  std::optional<phy::Radio> sender_radio_;
  std::optional<phy::Radio> receiver_radio_;
};

TEST_F(CsmaTest, SingleFrameDelivered) {
  FixedCcaThreshold cca{kZigbeeDefaultCcaThreshold};
  auto sender = make_sender(cca);
  auto receiver = make_receiver(cca);

  sender->enqueue(TxRequest{receiver_id_, 100});
  scheduler_.run_all();

  EXPECT_EQ(sender->counters().sent, 1u);
  EXPECT_EQ(receiver->counters().received, 1u);
  EXPECT_EQ(receiver->counters().crc_failed, 0u);
}

TEST_F(CsmaTest, QueueDrainsInOrder) {
  FixedCcaThreshold cca{kZigbeeDefaultCcaThreshold};
  auto sender = make_sender(cca);
  auto receiver = make_receiver(cca);

  for (int i = 0; i < 5; ++i) sender->enqueue(TxRequest{receiver_id_, 100});
  scheduler_.run_all();
  EXPECT_EQ(sender->counters().sent, 5u);
  EXPECT_EQ(receiver->counters().received, 5u);
}

TEST_F(CsmaTest, SaturatedModeKeepsSending) {
  FixedCcaThreshold cca{kZigbeeDefaultCcaThreshold};
  auto sender = make_sender(cca);
  auto receiver = make_receiver(cca);

  sender->set_saturated(TxRequest{receiver_id_, 100});
  scheduler_.run_until(sim::SimTime::seconds(1.0));

  // 100-byte PSDU ≈ 3.4 ms airtime + ~1.4 ms MAC overhead: expect on the
  // order of 200 frames/s on a quiet channel.
  EXPECT_GT(sender->counters().sent, 150u);
  EXPECT_LT(sender->counters().sent, 300u);
  EXPECT_EQ(receiver->counters().received, sender->counters().sent);

  sender->stop_saturated();
  const auto sent_before = sender->counters().sent;
  scheduler_.run_until(sim::SimTime::seconds(1.2));
  // At most the in-flight frame completes after the stop.
  EXPECT_LE(sender->counters().sent, sent_before + 1);
}

TEST_F(CsmaTest, BusyChannelCausesBackoffs) {
  // Pin the threshold below the noise floor: CCA always reports busy.
  FixedCcaThreshold cca{phy::Dbm{-120.0}};
  auto sender = make_sender(cca);

  sender->enqueue(TxRequest{receiver_id_, 100});
  scheduler_.run_all();

  // macMaxCSMABackoffs=4 allows 5 CCA attempts; then channel access failure.
  EXPECT_EQ(sender->counters().sent, 0u);
  EXPECT_EQ(sender->counters().cca_failures, 1u);
  EXPECT_EQ(sender->counters().cca_backoffs, 5u);
}

TEST_F(CsmaTest, AccessFailureMovesToNextFrame) {
  FixedCcaThreshold cca{phy::Dbm{-120.0}};
  auto sender = make_sender(cca);
  for (int i = 0; i < 3; ++i) sender->enqueue(TxRequest{receiver_id_, 100});
  scheduler_.run_all();
  EXPECT_EQ(sender->counters().cca_failures, 3u);
  EXPECT_FALSE(sender->busy());
}

TEST_F(CsmaTest, DynamicThresholdTakesEffectImmediately) {
  FixedCcaThreshold cca{phy::Dbm{-120.0}};  // busy at first
  auto sender = make_sender(cca);
  auto receiver_cca = FixedCcaThreshold{kZigbeeDefaultCcaThreshold};
  auto receiver = make_receiver(receiver_cca);

  sender->set_saturated(TxRequest{receiver_id_, 100});
  scheduler_.run_until(sim::SimTime::milliseconds(200));
  EXPECT_EQ(sender->counters().sent, 0u);

  // DCN's seam: raise the threshold mid-run; the MAC re-reads it per CCA.
  cca.set(kZigbeeDefaultCcaThreshold);
  scheduler_.run_until(sim::SimTime::milliseconds(400));
  EXPECT_GT(sender->counters().sent, 10u);
  EXPECT_GT(receiver->counters().received, 10u);
}

TEST_F(CsmaTest, BackoffDelayGrowsWithRetries) {
  // A frame that always fails CCA takes at least the sum of minimum CCA
  // windows, and the expected exponential backoff dominates the timeline.
  FixedCcaThreshold cca{phy::Dbm{-120.0}};
  auto sender = make_sender(cca);
  sender->enqueue(TxRequest{receiver_id_, 100});
  scheduler_.run_all();
  // 5 backoff rounds of up to {7,15,31,31,31} unit periods + 5 CCA windows.
  const auto elapsed = scheduler_.now();
  EXPECT_GE(elapsed, 5 * phy::kCcaDuration);
  EXPECT_LE(elapsed, 115 * phy::kUnitBackoff + 5 * phy::kCcaDuration);
}

TEST_F(CsmaTest, TwoSaturatedSendersShareChannel) {
  phy::RadioConfig radio_config;
  radio_config.channel = phy::Mhz{2460.0};
  const phy::NodeId other_id = medium_->add_node({0.5, 0.0});
  phy::Radio other_radio{scheduler_, *medium_, sim::RandomStream{1, 7}, other_id, radio_config};

  FixedCcaThreshold cca{kZigbeeDefaultCcaThreshold};
  auto sender_a = make_sender(cca);
  CsmaMac sender_b{scheduler_, *medium_, other_radio, sim::RandomStream{1, 8}, cca};
  auto receiver = make_receiver(cca);

  sender_a->set_saturated(TxRequest{receiver_id_, 100});
  sender_b.set_saturated(TxRequest{receiver_id_, 100});
  scheduler_.run_until(sim::SimTime::seconds(2.0));

  // Carrier sensing keeps most transmissions collision-free; the residual
  // losses come from the turnaround race (both senders pass CCA within the
  // same 192 us window), which the standard accepts too.
  const auto total_sent = sender_a->counters().sent + sender_b.counters().sent;
  EXPECT_GT(receiver->counters().received, total_sent * 8 / 10);
  // Both get comparable shares (within 3x of each other).
  EXPECT_LT(sender_a->counters().sent, 3 * sender_b.counters().sent);
  EXPECT_LT(sender_b.counters().sent, 3 * sender_a->counters().sent);
}

TEST_F(CsmaTest, RxHookSeesAllFrames) {
  FixedCcaThreshold cca{kZigbeeDefaultCcaThreshold};
  auto sender = make_sender(cca);
  auto receiver = make_receiver(cca);

  int hook_calls = 0;
  receiver->set_rx_hook([&hook_calls](const phy::RxResult&) { ++hook_calls; });
  int deliveries = 0;
  receiver->set_delivery_hook([&deliveries](const phy::RxResult&) { ++deliveries; });

  // One frame addressed to the receiver, one broadcast overheard.
  sender->enqueue(TxRequest{receiver_id_, 100});
  sender->enqueue(TxRequest{phy::kNoNode, 100});
  scheduler_.run_all();

  EXPECT_EQ(hook_calls, 2);
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(receiver->counters().received, 1u);  // only the addressed frame
}

TEST_F(CsmaTest, TxPowerIsApplied) {
  FixedCcaThreshold cca{kZigbeeDefaultCcaThreshold};
  auto sender = make_sender(cca);
  auto receiver = make_receiver(cca);

  sender->set_tx_power(phy::Dbm{-10.0});
  double rssi = 0.0;
  receiver->set_delivery_hook([&rssi](const phy::RxResult& rx) { rssi = rx.rssi.value; });
  sender->enqueue(TxRequest{receiver_id_, 100});
  scheduler_.run_all();
  EXPECT_NEAR(rssi, -10.0 - 46.62, 0.1);
}

}  // namespace
}  // namespace nomc::mac
