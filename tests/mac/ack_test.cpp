// Acknowledgement + retransmission behaviour (802.15.4 §7.5.6).
#include <gtest/gtest.h>

#include <optional>

#include "mac/cca.hpp"
#include "mac/csma.hpp"

namespace nomc::mac {
namespace {

/// One sender/receiver pair on a quiet medium; plain struct so tests can
/// spin up independent rigs side by side.
struct Rig {
  Rig() {
    phy::MediumConfig config;
    config.shadowing_sigma_db = 0.0;
    medium_.emplace(config);
    sender_id_ = medium_->add_node({0.0, 0.0});
    receiver_id_ = medium_->add_node({0.0, 2.0});

    phy::RadioConfig radio_config;
    radio_config.channel = phy::Mhz{2460.0};
    sender_radio_.emplace(scheduler_, *medium_, sim::RandomStream{1, 0}, sender_id_,
                          radio_config);
    receiver_radio_.emplace(scheduler_, *medium_, sim::RandomStream{1, 1}, receiver_id_,
                            radio_config);
    sender_.emplace(scheduler_, *medium_, *sender_radio_, sim::RandomStream{1, 2}, cca_);
    receiver_.emplace(scheduler_, *medium_, *receiver_radio_, sim::RandomStream{1, 3}, cca_);
  }

  sim::Scheduler scheduler_;
  std::optional<phy::Medium> medium_;
  FixedCcaThreshold cca_{kZigbeeDefaultCcaThreshold};
  phy::NodeId sender_id_ = 0;
  phy::NodeId receiver_id_ = 0;
  std::optional<phy::Radio> sender_radio_;
  std::optional<phy::Radio> receiver_radio_;
  std::optional<CsmaMac> sender_;
  std::optional<CsmaMac> receiver_;
};

class AckTest : public ::testing::Test, protected Rig {};

TEST_F(AckTest, SuccessfulExchange) {
  sender_->enqueue(TxRequest{receiver_id_, 100, /*ack_request=*/true});
  scheduler_.run_all();

  EXPECT_EQ(sender_->counters().sent, 1u);
  EXPECT_EQ(sender_->counters().acked, 1u);
  EXPECT_EQ(sender_->counters().retransmissions, 0u);
  EXPECT_EQ(sender_->counters().retry_drops, 0u);
  EXPECT_EQ(receiver_->counters().received, 1u);
  EXPECT_FALSE(sender_->busy());
}

TEST_F(AckTest, AckedStreamKeepsFlowing) {
  for (int i = 0; i < 20; ++i) sender_->enqueue(TxRequest{receiver_id_, 100, true});
  scheduler_.run_all();
  EXPECT_EQ(sender_->counters().acked, 20u);
  EXPECT_EQ(receiver_->counters().received, 20u);
  EXPECT_EQ(receiver_->counters().duplicates, 0u);
}

TEST_F(AckTest, NoReceiverMeansRetriesThenDrop) {
  // Address frames to a node that does not exist on the air: no ACK ever.
  sender_->enqueue(TxRequest{medium_->add_node({50.0, 50.0}), 100, true});
  scheduler_.run_all();

  // 1 original + macMaxFrameRetries retransmissions, then the drop.
  EXPECT_EQ(sender_->counters().sent, 4u);
  EXPECT_EQ(sender_->counters().retransmissions, 3u);
  EXPECT_EQ(sender_->counters().retry_drops, 1u);
  EXPECT_EQ(sender_->counters().acked, 0u);
  EXPECT_FALSE(sender_->busy());
}

TEST_F(AckTest, DropDoesNotStallQueue) {
  const phy::NodeId ghost = medium_->add_node({50.0, 50.0});
  sender_->enqueue(TxRequest{ghost, 100, true});
  sender_->enqueue(TxRequest{receiver_id_, 100, true});
  scheduler_.run_all();
  EXPECT_EQ(sender_->counters().retry_drops, 1u);
  EXPECT_EQ(sender_->counters().acked, 1u);
  EXPECT_EQ(receiver_->counters().received, 1u);
}

TEST_F(AckTest, WithoutAckRequestNoAckTraffic) {
  sender_->enqueue(TxRequest{receiver_id_, 100, /*ack_request=*/false});
  scheduler_.run_all();
  EXPECT_EQ(sender_->counters().acked, 0u);
  EXPECT_EQ(sender_->counters().sent, 1u);
  EXPECT_EQ(receiver_->counters().received, 1u);
  // No ACK was ever transmitted: the only frame on the air was the data.
  // (An ACK would have shown up as a second tx_done at the sender's radio.)
}

TEST_F(AckTest, DuplicateFilteredWhenAckLost) {
  // Jam only the ACK path: a jammer close to the SENDER fires right as the
  // data frame ends, colliding with the returning ACK but not with the data
  // reception at the far receiver.
  const phy::NodeId jammer_id = medium_->add_node({0.3, 0.0});
  phy::RadioConfig radio_config;
  radio_config.channel = phy::Mhz{2460.0};
  phy::Radio jammer_radio{scheduler_, *medium_, sim::RandomStream{1, 9}, jammer_id,
                          radio_config};

  sender_->enqueue(TxRequest{receiver_id_, 100, true});
  // Data frame: backoff (<= 7*320us) + CCA 128us + turnaround 192us, then
  // 3.392 ms airtime. Blanket the ACK window with a long jam frame starting
  // right after the earliest possible data end.
  scheduler_.schedule_at(sim::SimTime::microseconds(3400), [&] {
    phy::Frame jam;
    jam.id = medium_->allocate_frame_id();
    jam.src = jammer_id;
    jam.dst = phy::kNoNode;
    jam.channel = phy::Mhz{2460.0};
    jam.tx_power = phy::Dbm{0.0};
    jam.psdu_bytes = 150;  // ~5 ms: covers every possible ACK slot
    jammer_radio.transmit(jam);
  });
  scheduler_.run_all();

  // The data arrived (possibly twice), the first ACK was lost, the sender
  // retried, and the receiver filtered the duplicate.
  EXPECT_GE(sender_->counters().retransmissions, 1u);
  EXPECT_EQ(receiver_->counters().received, 1u);
  EXPECT_GE(receiver_->counters().duplicates, 1u);
  EXPECT_EQ(sender_->counters().acked, 1u);
}

TEST_F(AckTest, SequenceNumbersAdvancePerFrame) {
  // Two acked frames delivered in order: both must be delivered (distinct
  // DSNs), not filtered as duplicates.
  sender_->enqueue(TxRequest{receiver_id_, 50, true});
  sender_->enqueue(TxRequest{receiver_id_, 50, true});
  scheduler_.run_all();
  EXPECT_EQ(receiver_->counters().received, 2u);
  EXPECT_EQ(receiver_->counters().duplicates, 0u);
}

TEST_F(AckTest, SaturatedAckedThroughputLowerThanUnacked) {
  // ACK exchange costs a turnaround + 352 us ACK + wait per frame, so the
  // acked saturation rate must be measurably below the unacked rate.
  sender_->set_saturated(TxRequest{receiver_id_, 100, true});
  scheduler_.run_until(sim::SimTime::seconds(2.0));
  const auto acked_rate = receiver_->counters().received;

  Rig fresh;  // unacked copy of the rig
  fresh.sender_->set_saturated(TxRequest{fresh.receiver_id_, 100, false});
  fresh.scheduler_.run_until(sim::SimTime::seconds(2.0));
  const auto unacked_rate = fresh.receiver_->counters().received;

  EXPECT_LT(acked_rate, unacked_rate);
  EXPECT_GT(acked_rate, unacked_rate / 2);
}

}  // namespace
}  // namespace nomc::mac
