// CCA-mode semantics (CC2420 modes 1/2/3): the seam behind the §VII-C
// carrier-sense classifier extension.
#include <gtest/gtest.h>

#include <optional>

#include "mac/attacker.hpp"
#include "mac/cca.hpp"
#include "mac/csma.hpp"

namespace nomc::mac {
namespace {

/// A sender whose CCA mode is under test, plus a co-channel and an
/// inter-channel (3 MHz) interferer that can be blasted independently.
class CcaModeTest : public ::testing::Test {
 protected:
  CcaModeTest() {
    phy::MediumConfig config;
    config.shadowing_sigma_db = 0.0;
    medium_.emplace(config);
    sender_id_ = medium_->add_node({0.0, 0.0});
    receiver_id_ = medium_->add_node({0.0, 2.0});
    co_id_ = medium_->add_node({1.0, 0.0});
    inter_id_ = medium_->add_node({1.0, 1.0});

    phy::RadioConfig on_channel;
    on_channel.channel = phy::Mhz{2460.0};
    phy::RadioConfig off_channel;
    off_channel.channel = phy::Mhz{2463.0};
    sender_radio_.emplace(scheduler_, *medium_, sim::RandomStream{1, 0}, sender_id_,
                          on_channel);
    receiver_radio_.emplace(scheduler_, *medium_, sim::RandomStream{1, 1}, receiver_id_,
                            on_channel);
    co_radio_.emplace(scheduler_, *medium_, sim::RandomStream{1, 2}, co_id_, on_channel);
    inter_radio_.emplace(scheduler_, *medium_, sim::RandomStream{1, 3}, inter_id_,
                         off_channel);
    co_mac_.emplace(scheduler_, *medium_, *co_radio_);
    inter_mac_.emplace(scheduler_, *medium_, *inter_radio_);
  }

  std::uint64_t sent_in_two_seconds(CcaMode mode, bool co_busy, bool inter_busy) {
    CsmaParams params;
    params.cca_mode = mode;
    CsmaMac sender{scheduler_, *medium_, *sender_radio_, sim::RandomStream{1, 4}, cca_,
                   params};
    // Interferers: back-to-back frames with no carrier sensing.
    if (co_busy) co_mac_->start(phy::kNoNode, 240, sim::SimTime::milliseconds(8));
    if (inter_busy) inter_mac_->start(phy::kNoNode, 240, sim::SimTime::milliseconds(8));
    sender.set_saturated(TxRequest{receiver_id_, 100});
    const auto start = scheduler_.now();
    scheduler_.run_until(start + sim::SimTime::seconds(2.0));
    if (co_busy) co_mac_->stop();
    if (inter_busy) inter_mac_->stop();
    return sender.counters().sent;
  }

  sim::Scheduler scheduler_;
  std::optional<phy::Medium> medium_;
  FixedCcaThreshold cca_{kZigbeeDefaultCcaThreshold};
  phy::NodeId sender_id_ = 0;
  phy::NodeId receiver_id_ = 0;
  phy::NodeId co_id_ = 0;
  phy::NodeId inter_id_ = 0;
  std::optional<phy::Radio> sender_radio_;
  std::optional<phy::Radio> receiver_radio_;
  std::optional<phy::Radio> co_radio_;
  std::optional<phy::Radio> inter_radio_;
  std::optional<AttackerMac> co_mac_;
  std::optional<AttackerMac> inter_mac_;
};

TEST_F(CcaModeTest, EnergyModeDefersToBoth) {
  // At 1-1.4 m, both the co-channel signal (-40 dBm) and the 3 MHz leak
  // (~ -73 dBm) exceed the -77 dBm threshold: energy CCA defers to both.
  const auto baseline = sent_in_two_seconds(CcaMode::kEnergy, false, false);
  const auto with_inter = sent_in_two_seconds(CcaMode::kEnergy, false, true);
  const auto with_co = sent_in_two_seconds(CcaMode::kEnergy, true, false);
  EXPECT_LT(with_inter, baseline / 2);
  EXPECT_LT(with_co, baseline / 2);
}

TEST_F(CcaModeTest, CarrierSenseIgnoresInterChannel) {
  const auto baseline = sent_in_two_seconds(CcaMode::kCarrierSense, false, false);
  const auto with_inter = sent_in_two_seconds(CcaMode::kCarrierSense, false, true);
  // The modulation detector cannot see the 3 MHz neighbour at all.
  EXPECT_GT(with_inter, baseline * 9 / 10);
}

TEST_F(CcaModeTest, CarrierSenseStillDefersToCoChannel) {
  const auto baseline = sent_in_two_seconds(CcaMode::kCarrierSense, false, false);
  const auto with_co = sent_in_two_seconds(CcaMode::kCarrierSense, true, false);
  EXPECT_LT(with_co, baseline / 2);
}

TEST_F(CcaModeTest, CombinedModeIsMostConservative) {
  const auto combined_inter = sent_in_two_seconds(CcaMode::kEnergyOrCarrier, false, true);
  const auto cs_inter = sent_in_two_seconds(CcaMode::kCarrierSense, false, true);
  // Mode 3 still trips on inter-channel energy; carrier-sense does not.
  EXPECT_LT(combined_inter, cs_inter / 2);
}

TEST(MediumCarrier, DetectorSemantics) {
  phy::MediumConfig config;
  config.shadowing_sigma_db = 0.0;
  phy::Medium medium{config};
  const phy::NodeId a = medium.add_node({0.0, 0.0});
  const phy::NodeId b = medium.add_node({0.0, 1.0});

  EXPECT_FALSE(medium.carrier_present(b, phy::Mhz{2460.0}, phy::Dbm{-94.0}));

  phy::Frame frame;
  frame.id = medium.allocate_frame_id();
  frame.src = a;
  frame.channel = phy::Mhz{2460.0};
  frame.tx_power = phy::Dbm{0.0};
  frame.psdu_bytes = 50;
  medium.begin_tx(frame);

  EXPECT_TRUE(medium.carrier_present(b, phy::Mhz{2460.0}, phy::Dbm{-94.0}));
  // Own transmissions are never carrier for oneself.
  EXPECT_FALSE(medium.carrier_present(a, phy::Mhz{2460.0}, phy::Dbm{-94.0}));
  // Another channel's detector does not see it (modulation mismatch).
  EXPECT_FALSE(medium.carrier_present(b, phy::Mhz{2463.0}, phy::Dbm{-94.0}));
  // Sensitivity gate applies.
  EXPECT_FALSE(medium.carrier_present(b, phy::Mhz{2460.0}, phy::Dbm{-30.0}));
}

}  // namespace
}  // namespace nomc::mac
