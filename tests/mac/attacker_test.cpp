#include "mac/attacker.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "mac/cca.hpp"
#include "mac/csma.hpp"

namespace nomc::mac {
namespace {

class AttackerTest : public ::testing::Test {
 protected:
  AttackerTest() {
    phy::MediumConfig config;
    config.shadowing_sigma_db = 0.0;
    medium_.emplace(config);
  }

  std::optional<phy::Medium> medium_;
  sim::Scheduler scheduler_;
};

TEST_F(AttackerTest, FiresAtFixedPeriod) {
  const phy::NodeId tx = medium_->add_node({0.0, 0.0});
  const phy::NodeId rx = medium_->add_node({0.0, 2.0});
  phy::RadioConfig config;
  config.channel = phy::Mhz{2460.0};
  phy::Radio tx_radio{scheduler_, *medium_, sim::RandomStream{1, 0}, tx, config};
  phy::Radio rx_radio{scheduler_, *medium_, sim::RandomStream{1, 1}, rx, config};

  AttackerMac attacker{scheduler_, *medium_, tx_radio};
  AttackerMac receiver{scheduler_, *medium_, rx_radio};
  attacker.start(rx, 50, sim::SimTime::milliseconds(3));
  scheduler_.run_until(sim::SimTime::seconds(3.0));

  // 3 ms period over 3 s => ~1000 frames (first at t=3 ms).
  EXPECT_NEAR(static_cast<double>(attacker.counters().sent), 1000.0, 2.0);
  // The last frame may still be in flight at the horizon.
  EXPECT_GE(receiver.counters().received + 1, attacker.counters().sent);
}

TEST_F(AttackerTest, IgnoresBusyChannel) {
  // Two attackers on the same channel, same period: they transmit over each
  // other without deferring — that is the point of disabling carrier sense.
  const phy::NodeId a = medium_->add_node({0.0, 0.0});
  const phy::NodeId b = medium_->add_node({0.5, 0.0});
  const phy::NodeId rx = medium_->add_node({0.0, 2.0});
  phy::RadioConfig config;
  config.channel = phy::Mhz{2460.0};
  phy::Radio radio_a{scheduler_, *medium_, sim::RandomStream{1, 0}, a, config};
  phy::Radio radio_b{scheduler_, *medium_, sim::RandomStream{1, 1}, b, config};
  phy::Radio radio_rx{scheduler_, *medium_, sim::RandomStream{1, 2}, rx, config};

  AttackerMac attacker_a{scheduler_, *medium_, radio_a};
  AttackerMac attacker_b{scheduler_, *medium_, radio_b};
  AttackerMac receiver{scheduler_, *medium_, radio_rx};
  // Same 3 ms period with long frames (3.4 ms > period is clamped by the
  // radio-busy check; use 2 ms frames): persistent overlap.
  attacker_a.start(rx, 55, sim::SimTime::milliseconds(3));
  attacker_b.start(rx, 55, sim::SimTime::milliseconds(3));
  scheduler_.run_until(sim::SimTime::seconds(2.0));

  EXPECT_GT(attacker_a.counters().sent, 500u);
  EXPECT_GT(attacker_b.counters().sent, 500u);
  // Co-channel equal-power overlap: most collided frames are lost.
  EXPECT_LT(receiver.counters().received,
            attacker_a.counters().sent + attacker_b.counters().sent);
  EXPECT_GT(receiver.counters().collided, 100u);
}

TEST_F(AttackerTest, SkipsWhenStillTransmitting) {
  const phy::NodeId tx = medium_->add_node({0.0, 0.0});
  const phy::NodeId rx = medium_->add_node({0.0, 2.0});
  phy::RadioConfig config;
  config.channel = phy::Mhz{2460.0};
  phy::Radio tx_radio{scheduler_, *medium_, sim::RandomStream{1, 0}, tx, config};

  AttackerMac attacker{scheduler_, *medium_, tx_radio};
  // 250-byte PSDU = 8.2 ms airtime > 3 ms period: every other tick is
  // skipped because the radio is still keyed.
  attacker.start(rx, 250, sim::SimTime::milliseconds(3));
  scheduler_.run_until(sim::SimTime::seconds(1.0));
  EXPECT_LT(attacker.counters().sent, 333u / 2 + 20);
  EXPECT_GT(attacker.counters().sent, 50u);
}

TEST_F(AttackerTest, StopHalts) {
  const phy::NodeId tx = medium_->add_node({0.0, 0.0});
  const phy::NodeId rx = medium_->add_node({0.0, 2.0});
  phy::RadioConfig config;
  config.channel = phy::Mhz{2460.0};
  phy::Radio tx_radio{scheduler_, *medium_, sim::RandomStream{1, 0}, tx, config};

  AttackerMac attacker{scheduler_, *medium_, tx_radio};
  attacker.start(rx, 50, sim::SimTime::milliseconds(3));
  scheduler_.run_until(sim::SimTime::milliseconds(500));
  attacker.stop();
  const auto sent = attacker.counters().sent;
  scheduler_.run_until(sim::SimTime::seconds(2.0));
  EXPECT_EQ(attacker.counters().sent, sent);
}

TEST(FixedCca, StoresAndUpdates) {
  FixedCcaThreshold cca{kZigbeeDefaultCcaThreshold};
  EXPECT_EQ(cca.threshold().value, kZigbeeDefaultCcaThreshold.value);
  cca.set(phy::Dbm{-50.0});
  EXPECT_EQ(cca.threshold().value, -50.0);
  // The paper's ZigBee default, pinned numerically on purpose: if the
  // constant ever drifts, this is the test that says so.
  // nomc-lint: allow(unit-naked-cca)
  EXPECT_EQ(kZigbeeDefaultCcaThreshold.value, -77.0);
}

}  // namespace
}  // namespace nomc::mac
