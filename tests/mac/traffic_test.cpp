#include "mac/traffic.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "mac/cca.hpp"

namespace nomc::mac {
namespace {

class TrafficTest : public ::testing::Test {
 protected:
  TrafficTest() {
    phy::MediumConfig config;
    config.shadowing_sigma_db = 0.0;
    medium_.emplace(config);
    sender_id_ = medium_->add_node({0.0, 0.0});
    receiver_id_ = medium_->add_node({0.0, 2.0});
    phy::RadioConfig radio_config;
    radio_config.channel = phy::Mhz{2460.0};
    sender_radio_.emplace(scheduler_, *medium_, sim::RandomStream{1, 0}, sender_id_,
                          radio_config);
    receiver_radio_.emplace(scheduler_, *medium_, sim::RandomStream{1, 1}, receiver_id_,
                            radio_config);
    sender_.emplace(scheduler_, *medium_, *sender_radio_, sim::RandomStream{1, 2}, cca_);
    receiver_.emplace(scheduler_, *medium_, *receiver_radio_, sim::RandomStream{1, 3}, cca_);
  }

  sim::Scheduler scheduler_;
  std::optional<phy::Medium> medium_;
  FixedCcaThreshold cca_{kZigbeeDefaultCcaThreshold};
  phy::NodeId sender_id_ = 0;
  phy::NodeId receiver_id_ = 0;
  std::optional<phy::Radio> sender_radio_;
  std::optional<phy::Radio> receiver_radio_;
  std::optional<CsmaMac> sender_;
  std::optional<CsmaMac> receiver_;
};

TEST_F(TrafficTest, PeriodicGeneratesExactCount) {
  PeriodicSource source{scheduler_, *sender_};
  source.start(TxRequest{receiver_id_, 100}, sim::SimTime::milliseconds(100));
  scheduler_.run_until(sim::SimTime::seconds(5.0));
  EXPECT_EQ(source.generated(), 50u);
  // The frame generated exactly at the horizon is still in flight.
  EXPECT_GE(receiver_->counters().received + 1, 50u);
}

TEST_F(TrafficTest, PeriodicStops) {
  PeriodicSource source{scheduler_, *sender_};
  source.start(TxRequest{receiver_id_, 100}, sim::SimTime::milliseconds(100));
  scheduler_.run_until(sim::SimTime::seconds(1.0));
  source.stop();
  const auto generated = source.generated();
  EXPECT_EQ(generated, 10u);
  scheduler_.run_until(sim::SimTime::seconds(3.0));
  EXPECT_EQ(source.generated(), generated);
}

TEST_F(TrafficTest, PeriodicUnderloadDeliversEverything) {
  // 10 pkt/s is far below the ~200 pkt/s channel capacity: zero loss.
  PeriodicSource source{scheduler_, *sender_};
  source.start(TxRequest{receiver_id_, 100}, sim::SimTime::milliseconds(100));
  scheduler_.run_until(sim::SimTime::seconds(10.0));
  EXPECT_GE(receiver_->counters().received + 1, source.generated());
  EXPECT_EQ(sender_->counters().cca_failures, 0u);
}

TEST_F(TrafficTest, PoissonRateIsRespected) {
  PoissonSource source{scheduler_, *sender_, sim::RandomStream{9, 0}};
  source.start(TxRequest{receiver_id_, 100}, 40.0);
  scheduler_.run_until(sim::SimTime::seconds(30.0));
  // 40/s over 30 s = 1200 expected; 5 sigma ≈ 173.
  EXPECT_NEAR(static_cast<double>(source.generated()), 1200.0, 175.0);
  EXPECT_GT(receiver_->counters().received, source.generated() * 9 / 10);
}

TEST_F(TrafficTest, PoissonStops) {
  PoissonSource source{scheduler_, *sender_, sim::RandomStream{9, 1}};
  source.start(TxRequest{receiver_id_, 100}, 100.0);
  scheduler_.run_until(sim::SimTime::seconds(1.0));
  source.stop();
  const auto generated = source.generated();
  EXPECT_GT(generated, 50u);
  scheduler_.run_until(sim::SimTime::seconds(2.0));
  EXPECT_EQ(source.generated(), generated);
}

TEST_F(TrafficTest, PoissonInterArrivalsAreIrregular) {
  // Distinguishes Poisson from periodic: record enqueue times, check the
  // coefficient of variation of gaps is near 1 (exponential), not 0.
  PoissonSource source{scheduler_, *sender_, sim::RandomStream{9, 2}};
  std::vector<double> deliveries;
  receiver_->set_delivery_hook([&](const phy::RxResult&) {
    deliveries.push_back(scheduler_.now().to_seconds());
  });
  source.start(TxRequest{receiver_id_, 20}, 50.0);
  scheduler_.run_until(sim::SimTime::seconds(20.0));

  ASSERT_GT(deliveries.size(), 300u);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 1; i < deliveries.size(); ++i) {
    const double gap = deliveries[i] - deliveries[i - 1];
    sum += gap;
    sum_sq += gap * gap;
  }
  const double n = static_cast<double>(deliveries.size() - 1);
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  const double cv = std::sqrt(var) / mean;
  EXPECT_GT(cv, 0.7);
  EXPECT_LT(cv, 1.3);
}

}  // namespace
}  // namespace nomc::mac
