// Replay determinism across the full stack: the same (seed, scenario) pair
// must produce bit-identical results regardless of scheme or topology —
// the property every debugging session and every calibration lock relies on.
#include <gtest/gtest.h>

#include "net/scenario.hpp"
#include "net/topology.hpp"
#include "phy/channel_plan.hpp"

namespace nomc {
namespace {

struct Config {
  net::Scheme scheme;
  int topology;  // 0 = dense, 1 = clustered, 2 = random
  std::uint64_t seed;
};

std::vector<double> run(const Config& config) {
  const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 4);
  net::RandomCaseConfig topo;
  sim::RandomStream placement{config.seed, 999};
  const auto specs = config.topology == 0   ? net::case1_dense(channels, placement, topo)
                     : config.topology == 1 ? net::case2_clustered(channels, placement, topo)
                                            : net::case3_random(channels, placement, topo);
  net::ScenarioConfig scenario_config;
  scenario_config.seed = config.seed;
  net::Scenario scenario{scenario_config};
  scenario.add_networks(specs, config.scheme);
  scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(3.0));

  std::vector<double> signature = scenario.network_throughputs();
  for (int n = 0; n < scenario.network_count(); ++n) {
    const auto result = scenario.network_result(n);
    for (const auto& link : result.links) {
      signature.push_back(static_cast<double>(link.sender.sent));
      signature.push_back(static_cast<double>(link.sender.cca_backoffs));
      signature.push_back(static_cast<double>(link.receiver.received));
      signature.push_back(static_cast<double>(link.receiver.crc_failed));
    }
  }
  return signature;
}

class DeterminismSweep
    : public ::testing::TestWithParam<std::tuple<net::Scheme, int, std::uint64_t>> {};

TEST_P(DeterminismSweep, IdenticalReplay) {
  const Config config{std::get<0>(GetParam()), std::get<1>(GetParam()),
                      std::get<2>(GetParam())};
  EXPECT_EQ(run(config), run(config));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DeterminismSweep,
    ::testing::Combine(::testing::Values(net::Scheme::kFixedCca, net::Scheme::kDcn),
                       ::testing::Values(0, 1, 2), ::testing::Values(1ull, 99ull)));

TEST(Determinism, DifferentSeedsDiffer) {
  EXPECT_NE(run({net::Scheme::kDcn, 0, 1}), run({net::Scheme::kDcn, 0, 2}));
}

TEST(Determinism, SchemesActuallyDiffer) {
  EXPECT_NE(run({net::Scheme::kDcn, 0, 1}), run({net::Scheme::kFixedCca, 0, 1}));
}

}  // namespace
}  // namespace nomc
