// Acceptance gate for the parallel trial runner: run_band's trial-averaged
// throughputs must be bit-identical no matter how many worker threads the
// replication uses — parallelism is a wall-clock optimization, never a
// result change.
#include <gtest/gtest.h>

#include <vector>

#include "bench/common.hpp"
#include "phy/channel_plan.hpp"

namespace nomc {
namespace {

bench::BandRunParams short_params(int trials, int jobs) {
  bench::BandRunParams params;
  params.trials = trials;
  params.jobs = jobs;
  params.warmup = sim::SimTime::seconds(0.1);
  params.measure = sim::SimTime::seconds(0.4);
  return params;
}

TEST(ParallelBand, RunBandBitIdenticalAcrossJobCounts) {
  const auto channels = phy::evenly_spaced(bench::kBandStart, phy::Mhz{3.0}, 3);
  const auto serial = bench::run_band(channels, net::Scheme::kDcn, short_params(8, 1));
  for (const int jobs : {2, 8}) {
    const auto parallel = bench::run_band(channels, net::Scheme::kDcn, short_params(8, jobs));
    ASSERT_EQ(parallel.per_network_pps.size(), serial.per_network_pps.size());
    for (std::size_t i = 0; i < serial.per_network_pps.size(); ++i) {
      // Bit identity, not tolerance: the merge order is seed order.
      EXPECT_EQ(parallel.per_network_pps[i], serial.per_network_pps[i])
          << "network " << i << " diverged at jobs=" << jobs;
    }
    EXPECT_EQ(parallel.overall_pps, serial.overall_pps) << "jobs=" << jobs;
  }
}

TEST(ParallelBand, RunBandMatchesMixedWithConstantScheme) {
  const auto channels = phy::evenly_spaced(bench::kBandStart, phy::Mhz{3.0}, 2);
  const auto params = short_params(2, 1);
  const auto direct = bench::run_band(channels, net::Scheme::kFixedCca, params);
  const auto mixed =
      bench::run_band_mixed(channels, [](int) { return net::Scheme::kFixedCca; }, params);
  ASSERT_EQ(direct.per_network_pps.size(), mixed.per_network_pps.size());
  for (std::size_t i = 0; i < direct.per_network_pps.size(); ++i) {
    EXPECT_EQ(direct.per_network_pps[i], mixed.per_network_pps[i]);
  }
  EXPECT_EQ(direct.overall_pps, mixed.overall_pps);
}

}  // namespace
}  // namespace nomc
