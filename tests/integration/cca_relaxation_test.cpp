// End-to-end locks for the CCA-threshold analysis of §IV (Figs. 6-10):
// relaxing the threshold against inter-channel interference is free
// throughput; relaxing past the co-channel floor is ruinous.
#include <gtest/gtest.h>

#include "net/scenario.hpp"

namespace nomc {
namespace {

/// Fig. 5 rig: one victim link (2 m) surrounded by interferer networks on
/// ±3 and ±6 MHz at 2.2 m. Optionally co-channel links as in Fig. 8.
struct VictimRun {
  double sent_pps = 0.0;
  double received_pps = 0.0;
  double prr = 1.0;
};

VictimRun run_victim(double threshold_dbm, int cochannel_links, phy::Dbm victim_power,
                     std::uint64_t seed = 3) {
  net::ScenarioConfig config;
  config.seed = seed;
  net::Scenario scenario{config};

  const phy::Mhz victim_channel{2464.0};
  const int victim = scenario.add_network(victim_channel, net::Scheme::kFixedCca);
  net::LinkSpec link;
  link.sender_pos = {0.0, 0.0};
  link.receiver_pos = {0.0, 2.0};
  link.tx_power = victim_power;
  scenario.add_link(victim, link);
  scenario.fixed_cca(victim, 0).set(phy::Dbm{threshold_dbm});

  for (int i = 0; i < cochannel_links; ++i) {
    const int n = scenario.add_network(victim_channel, net::Scheme::kFixedCca);
    net::LinkSpec co;
    co.sender_pos = {1.8 * std::cos(2.1 * (i + 1)), 1.8 * std::sin(2.1 * (i + 1))};
    co.receiver_pos = {co.sender_pos.x, co.sender_pos.y + 2.0};
    co.tx_power = phy::Dbm{0.0};
    scenario.add_link(n, co);
  }

  const struct {
    double dx, dy, df;
  } interferers[] = {{2.2, 0, 3}, {-2.2, 0, -3}, {0, 2.2, 6}, {0, -2.2, -6}};
  for (const auto& it : interferers) {
    const int n = scenario.add_network(victim_channel + phy::Mhz{it.df}, net::Scheme::kFixedCca);
    for (int l = 0; l < 2; ++l) {
      net::LinkSpec i_link;
      i_link.sender_pos = {it.dx + 0.5 * l, it.dy};
      i_link.receiver_pos = {it.dx + 0.5 * l, it.dy + 2.0};
      i_link.tx_power = phy::Dbm{0.0};
      scenario.add_link(n, i_link);
    }
  }

  scenario.run(sim::SimTime::seconds(1.0), sim::SimTime::seconds(5.0));
  const auto result = scenario.network_result(victim);
  return VictimRun{static_cast<double>(result.links[0].sender.sent) / 5.0,
                   result.links[0].throughput_pps, result.links[0].prr};
}

TEST(CcaRelaxation, RelaxingHelpsAgainstInterChannelOnly) {
  // Fig. 6: conservative -> default -> relaxed is monotone improving, and
  // PRR stays ~100 % throughout (inter-channel interference is tolerable).
  const VictimRun conservative = run_victim(-85.0, 0, phy::Dbm{0.0});
  const VictimRun standard = run_victim(-77.0, 0, phy::Dbm{0.0});
  const VictimRun relaxed = run_victim(-55.0, 0, phy::Dbm{0.0});
  EXPECT_LT(conservative.received_pps, standard.received_pps);
  EXPECT_LT(standard.received_pps, relaxed.received_pps * 0.95);
  EXPECT_GT(conservative.prr, 0.97);
  EXPECT_GT(standard.prr, 0.97);
  EXPECT_GT(relaxed.prr, 0.97);
  // Fully relaxed, the link reaches its isolated saturation rate.
  EXPECT_GT(relaxed.received_pps, 180.0);
}

TEST(CcaRelaxation, OverRelaxingIntoCoChannelCollapsesPrr) {
  // Fig. 8: with co-channel competitors (~ -47 dBm at the victim sender),
  // a threshold above their RSS lets the victim transmit over them — sent
  // soars, PRR collapses.
  const VictimRun safe = run_victim(-55.0, 3, phy::Dbm{0.0});
  const VictimRun reckless = run_victim(-30.0, 3, phy::Dbm{0.0});
  EXPECT_GT(reckless.sent_pps, safe.sent_pps * 1.3);
  EXPECT_LT(reckless.prr, 0.75);
  EXPECT_GT(safe.prr, 0.80);
}

TEST(CcaRelaxation, WeakLinkStillGainsButPrrSuffers) {
  // Figs. 9-10: a -22 dBm victim against 0 dBm interferers still gains from
  // relaxation with PRR above ~80 %; at -33 dBm the PRR degrades badly.
  const VictimRun weak = run_victim(-55.0, 0, phy::Dbm{-22.0});
  EXPECT_GT(weak.prr, 0.80);
  const VictimRun very_weak = run_victim(-55.0, 0, phy::Dbm{-33.0});
  EXPECT_LT(very_weak.prr, 0.60);
  // Relaxation still beats the conservative setting even at -33 dBm.
  const VictimRun very_weak_conservative = run_victim(-85.0, 0, phy::Dbm{-33.0});
  EXPECT_GT(very_weak.received_pps, very_weak_conservative.received_pps);
}

TEST(CcaRelaxation, ThresholdBelowNoiseFloorDeadlocks) {
  // A threshold under the noise floor reads busy forever: zero throughput.
  // (This is why DcnConfig::min_threshold clamps above the floor.)
  const VictimRun dead = run_victim(-100.0, 0, phy::Dbm{0.0});
  EXPECT_EQ(dead.sent_pps, 0.0);
}

}  // namespace
}  // namespace nomc
