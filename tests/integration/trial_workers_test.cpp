// Twin-run determinism for region-sharded trials: the same deployment must
// produce bit-identical statistics at every --trial-workers value, on a
// geometry that genuinely splits into multiple regions with live cross-region
// interference — and a single-region plan must equal the plain serial
// Scenario exactly, which is what keeps the golden stores authoritative.
#include <gtest/gtest.h>

#include <vector>

#include "net/scenario.hpp"
#include "net/sharded_scenario.hpp"
#include "net/topology.hpp"
#include "phy/channel_plan.hpp"

namespace nomc {
namespace {

/// Six networks in rooms 150 m apart under an urban path-loss exponent: the
/// 0 dBm influence radius is ~193 m, so the planner splits the floor into
/// two regions whose extents sit ~140 m apart — inside each other's
/// influence discs, so mirrored frames actually flow between the shards.
net::ScenarioConfig spread_config(std::uint64_t seed) {
  net::ScenarioConfig config;
  config.seed = seed;
  config.medium.path_loss = phy::LogDistancePathLoss{3.5, phy::Db{40.0}, 1.0};
  return config;
}

std::vector<net::NetworkSpec> spread_specs(std::uint64_t seed) {
  const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 6);
  net::RandomCaseConfig topo;
  topo.room_spacing_m = 150.0;
  topo = topo.with_fixed_power(phy::Dbm{0.0});
  sim::RandomStream placement{seed, 999};
  return net::case2_clustered(channels, placement, topo);
}

struct RunStats {
  std::vector<double> numbers;  ///< every counter of every link, flattened
  int regions = 0;
  std::uint64_t messages = 0;
};

template <typename Scenario>
std::vector<double> signature(const Scenario& scenario) {
  std::vector<double> numbers;
  for (int n = 0; n < scenario.network_count(); ++n) {
    const auto result = scenario.network_result(n);
    numbers.push_back(result.throughput_pps);
    for (const auto& link : result.links) {
      numbers.push_back(link.throughput_pps);
      numbers.push_back(link.prr);
      for (const auto* c : {&link.sender, &link.receiver}) {
        numbers.push_back(static_cast<double>(c->sent));
        numbers.push_back(static_cast<double>(c->received));
        numbers.push_back(static_cast<double>(c->crc_failed));
        numbers.push_back(static_cast<double>(c->missed));
        numbers.push_back(static_cast<double>(c->cca_backoffs));
        numbers.push_back(static_cast<double>(c->cca_failures));
        numbers.push_back(static_cast<double>(c->collided));
        numbers.push_back(static_cast<double>(c->acked));
        numbers.push_back(static_cast<double>(c->retransmissions));
        numbers.push_back(static_cast<double>(c->retry_drops));
      }
    }
  }
  return numbers;
}

RunStats run_sharded(std::uint64_t seed, int workers, bool with_acks) {
  net::ScenarioConfig config = spread_config(seed);
  // ACKs make the workload cancel-heavy: every data frame arms an ACK-wait
  // timer that a timely ACK cancels mid-window.
  config.ack_request = with_acks;
  net::ShardedScenario scenario{config, {.trial_workers = workers}};
  const auto specs = spread_specs(seed);
  scenario.add_networks(specs, net::Scheme::kDcn);
  scenario.run(sim::SimTime::seconds(0.5), sim::SimTime::seconds(2.0));
  return {signature(scenario), scenario.region_count(), scenario.messages_delivered()};
}

class TrialWorkersSweep : public ::testing::TestWithParam<bool> {};

TEST_P(TrialWorkersSweep, BitIdenticalAcrossWorkerCounts) {
  const bool with_acks = GetParam();
  const RunStats one = run_sharded(7, 1, with_acks);
  ASSERT_GT(one.regions, 1) << "geometry must split into multiple regions";
  ASSERT_GT(one.messages, 0u) << "cross-region interference must actually flow";
  for (const int workers : {2, 7}) {
    const RunStats many = run_sharded(7, workers, with_acks);
    EXPECT_EQ(one.regions, many.regions);
    EXPECT_EQ(one.messages, many.messages);
    EXPECT_EQ(one.numbers, many.numbers) << "workers=" << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(DataOnlyAndAckCancelHeavy, TrialWorkersSweep,
                         ::testing::Values(false, true));

TEST(TrialWorkers, SingleRegionEqualsSerialScenario) {
  // The paper-scale default geometry (rooms 15 m apart, influence radius in
  // the hundreds of metres) plans to one region; the sharded runner must
  // then produce the serial Scenario's numbers exactly.
  const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 4);
  net::RandomCaseConfig topo;
  sim::RandomStream placement_a{11, 999};
  const auto specs = net::case2_clustered(channels, placement_a, topo);

  net::ScenarioConfig config;
  config.seed = 11;
  net::ShardedScenario sharded{config, {.trial_workers = 8}};
  sharded.add_networks(specs, net::Scheme::kDcn);
  sharded.run(sim::SimTime::seconds(0.5), sim::SimTime::seconds(2.0));
  ASSERT_EQ(sharded.region_count(), 1);
  EXPECT_EQ(sharded.messages_delivered(), 0u);

  net::Scenario serial{config};
  serial.add_networks(specs, net::Scheme::kDcn);
  serial.run(sim::SimTime::seconds(0.5), sim::SimTime::seconds(2.0));
  EXPECT_EQ(signature(sharded), signature(serial));
}

TEST(TrialWorkers, DifferentSeedsDiffer) {
  // Guard against the degenerate bug where sharding collapses the RNG
  // streams: distinct seeds must still yield distinct runs.
  EXPECT_NE(run_sharded(7, 2, false).numbers, run_sharded(8, 2, false).numbers);
}

}  // namespace
}  // namespace nomc
