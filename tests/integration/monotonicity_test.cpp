// System-level property sweeps: quantities that must vary monotonically
// with their driving parameter, across the full stack.
#include <gtest/gtest.h>

#include "mac/attacker.hpp"
#include "net/scenario.hpp"
#include "net/topology.hpp"
#include "phy/channel_plan.hpp"

namespace nomc {
namespace {

/// Victim link PRR as a function of the attacker's distance from the
/// victim receiver (co-channel, CS disabled on the attacker).
double prr_at_attacker_distance(double attacker_distance_m, std::uint64_t seed) {
  sim::Scheduler scheduler;
  phy::MediumConfig config;
  config.seed = seed;
  phy::Medium medium{config};

  const phy::NodeId tx = medium.add_node({0.0, 0.0});
  const phy::NodeId rx = medium.add_node({0.0, 4.0});
  const phy::NodeId attacker = medium.add_node({attacker_distance_m, 4.0});
  phy::RadioConfig radio_config;
  radio_config.channel = phy::Mhz{2460.0};
  phy::Radio tx_radio{scheduler, medium, sim::RandomStream{seed, 0}, tx, radio_config};
  phy::Radio rx_radio{scheduler, medium, sim::RandomStream{seed, 1}, rx, radio_config};
  phy::Radio attacker_radio{scheduler, medium, sim::RandomStream{seed, 2}, attacker,
                            radio_config};

  mac::AttackerMac sender{scheduler, medium, tx_radio};
  mac::AttackerMac receiver{scheduler, medium, rx_radio};
  mac::AttackerMac jammer{scheduler, medium, attacker_radio};
  sender.start(rx, 100, sim::SimTime::milliseconds(5));
  jammer.start(phy::kNoNode, 60, sim::SimTime::milliseconds(3));
  scheduler.run_until(sim::SimTime::seconds(10.0));

  const auto& counters = receiver.counters();
  const auto attempted = sender.counters().sent;
  return attempted == 0 ? 0.0
                        : static_cast<double>(counters.received) /
                              static_cast<double>(attempted);
}

TEST(Monotonicity, PrrImprovesAsJammerRetreats) {
  // Not strictly monotone sample-by-sample (finite run), so compare coarse
  // steps: each 4x distance step must not hurt.
  const double near = prr_at_attacker_distance(1.0, 3);
  const double mid = prr_at_attacker_distance(8.0, 3);
  // "far" must be below the -94 dBm lock sensitivity (PL > 94 dB plus shadowing margin),
  // or the receiver still wastes time locked onto jammer frames.
  const double far = prr_at_attacker_distance(1000.0, 3);
  EXPECT_LT(near, 0.4);  // on top of the receiver: nearly everything dies
  EXPECT_GT(mid, near + 0.1);
  EXPECT_GT(far, 0.9);  // out of lock range: clean link
  EXPECT_GE(far, mid - 0.02);
}

/// Overall throughput as a function of how many networks share the band —
/// adding a channel may help or saturate, but never collapses the total.
TEST(Monotonicity, ThroughputNonCollapsingInChannelCount) {
  double previous = 0.0;
  for (int count = 1; count <= 6; ++count) {
    net::ScenarioConfig config;
    config.seed = 11;
    net::Scenario scenario{config};
    const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, count);
    net::RandomCaseConfig topology = net::RandomCaseConfig{}.with_fixed_power(phy::Dbm{0.0});
    sim::RandomStream placement{11, 999};
    scenario.add_networks(net::case1_dense(channels, placement, topology),
                          net::Scheme::kDcn);
    scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(4.0));
    const double overall = scenario.overall_throughput();
    EXPECT_GT(overall, previous * 0.95) << "at " << count << " channels";
    previous = overall;
  }
}

/// A single link's throughput falls as its PSDU grows (fewer frames/s), but
/// its byte throughput rises (less per-frame overhead).
TEST(Monotonicity, FrameSizeTradeoff) {
  double prev_pps = 1e9;
  double prev_bps = 0.0;
  for (const int psdu : {20, 40, 80, 120}) {
    net::ScenarioConfig config;
    config.psdu_bytes = psdu;
    net::Scenario scenario{config};
    const int n = scenario.add_network(phy::Mhz{2460.0}, net::Scheme::kFixedCca);
    net::LinkSpec link;
    link.sender_pos = {0.0, 0.0};
    link.receiver_pos = {0.0, 2.0};
    scenario.add_link(n, link);
    scenario.run(sim::SimTime::seconds(1.0), sim::SimTime::seconds(4.0));
    const double pps = scenario.network_result(n).throughput_pps;
    const double bps = pps * psdu;
    EXPECT_LT(pps, prev_pps) << "psdu " << psdu;
    EXPECT_GT(bps, prev_bps) << "psdu " << psdu;
    prev_pps = pps;
    prev_bps = bps;
  }
}

/// DCN's gain over fixed CCA shrinks as networks move apart (less to stop
/// deferring to) — the Case I -> II -> III mechanism as a parametric sweep.
TEST(Monotonicity, DcnGainShrinksWithSeparation) {
  auto gain_at_spacing = [](double room_spacing) {
    const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 4);
    double fixed = 0.0;
    double dcn = 0.0;
    for (const std::uint64_t seed : {5ull, 6ull}) {
      for (const bool use_dcn : {false, true}) {
        net::ScenarioConfig config;
        config.seed = seed;
        net::Scenario scenario{config};
        net::RandomCaseConfig topology =
            net::RandomCaseConfig{}.with_fixed_power(phy::Dbm{0.0});
        topology.region_m = 1.0;
        topology.room_spacing_m = room_spacing;
        sim::RandomStream placement{seed, 999};
        scenario.add_networks(net::case2_clustered(channels, placement, topology),
                              use_dcn ? net::Scheme::kDcn : net::Scheme::kFixedCca);
        scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(4.0));
        (use_dcn ? dcn : fixed) += scenario.overall_throughput();
      }
    }
    return dcn / fixed - 1.0;
  };

  const double tight = gain_at_spacing(1.6);
  const double loose = gain_at_spacing(12.0);
  EXPECT_GT(tight, loose + 0.02);
  EXPECT_LT(loose, 0.05);  // fully separated rooms: nothing to gain
}

}  // namespace
}  // namespace nomc
