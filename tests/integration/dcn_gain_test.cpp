// End-to-end reproduction locks: DCN's headline results hold on the
// standard evaluation deployment (dense region, saturated traffic).
#include <gtest/gtest.h>

#include "net/scenario.hpp"
#include "net/topology.hpp"
#include "phy/channel_plan.hpp"
#include "stats/fairness.hpp"

namespace nomc {
namespace {

struct RunResult {
  std::vector<double> per_network;
  double overall = 0.0;
};

RunResult run_dense(std::span<const phy::Mhz> channels, net::Scheme scheme, int links,
                    std::uint64_t seed) {
  net::RandomCaseConfig topology = net::RandomCaseConfig{}.with_fixed_power(phy::Dbm{0.0});
  topology.links_per_network = links;
  net::ScenarioConfig config;
  config.seed = seed;
  net::Scenario scenario{config};
  sim::RandomStream placement{seed, 999};
  scenario.add_networks(net::case1_dense(channels, placement, topology), scheme);
  scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(6.0));
  return RunResult{scenario.network_throughputs(), scenario.overall_throughput()};
}

double mean_over_seeds(std::span<const phy::Mhz> channels, net::Scheme scheme, int links) {
  double sum = 0.0;
  for (const std::uint64_t seed : {1ull, 1000004ull, 2000007ull}) {
    sum += run_dense(channels, scheme, links, seed).overall;
  }
  return sum / 3.0;
}

TEST(DcnGain, HeadlineZigbeeComparison) {
  // Fig. 19: DCN (6 ch @ 3 MHz) vs ZigBee (4 ch @ 5 MHz) on 15 MHz, same
  // node count. Paper: 38.4-58 % improvement; we lock a generous band.
  const auto zigbee = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{5.0}, 4);
  const auto packed = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 6);
  const double zigbee_pps = mean_over_seeds(zigbee, net::Scheme::kFixedCca, 3);
  const double dcn_pps = mean_over_seeds(packed, net::Scheme::kDcn, 2);
  const double gain = dcn_pps / zigbee_pps - 1.0;
  EXPECT_GT(gain, 0.30);
  EXPECT_LT(gain, 0.80);
}

TEST(DcnGain, DcnBeatsFixedCcaOnSameChannels) {
  // Fig. 17/18: at CFD=3 MHz, DCN adds throughput over the fixed threshold
  // on every trial (paper: ~+10 % overall).
  const auto packed = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 6);
  const double fixed = mean_over_seeds(packed, net::Scheme::kFixedCca, 2);
  const double dcn = mean_over_seeds(packed, net::Scheme::kDcn, 2);
  EXPECT_GT(dcn, fixed * 1.02);
  EXPECT_LT(dcn, fixed * 1.5);
}

TEST(DcnGain, EveryNetworkImproves) {
  // Fig. 17: applying DCN on all networks helps each one (good collaboration
  // — no network wins at another's expense).
  const auto packed = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 6);
  const RunResult fixed = run_dense(packed, net::Scheme::kFixedCca, 2, 1);
  const RunResult dcn = run_dense(packed, net::Scheme::kDcn, 2, 1);
  ASSERT_EQ(fixed.per_network.size(), dcn.per_network.size());
  for (std::size_t n = 0; n < fixed.per_network.size(); ++n) {
    EXPECT_GT(dcn.per_network[n], fixed.per_network[n] * 0.97) << "network " << n;
  }
}

TEST(DcnGain, FairnessAcrossNetworks) {
  // Table I: DCN does not starve any network; Jain index stays near 1.
  const auto packed = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 6);
  const RunResult dcn = run_dense(packed, net::Scheme::kDcn, 2, 1);
  EXPECT_GT(stats::jain_index(dcn.per_network), 0.98);
  EXPECT_LT(stats::relative_spread(dcn.per_network), 0.20);
}

TEST(DcnGain, AdjustorsSettleAboveDefault) {
  // The mechanism: in a dense deployment with loud co-channel partners,
  // every adjustor ends well above the -77 dBm default, unlocking the
  // inter-channel concurrency the fixed design forfeits.
  const auto packed = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 6);
  net::RandomCaseConfig topology = net::RandomCaseConfig{}.with_fixed_power(phy::Dbm{0.0});
  net::ScenarioConfig config;
  config.seed = 5;
  net::Scenario scenario{config};
  sim::RandomStream placement{5, 999};
  scenario.add_networks(net::case1_dense(packed, placement, topology), net::Scheme::kDcn);
  scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(4.0));
  for (int n = 0; n < scenario.network_count(); ++n) {
    for (int l = 0; l < scenario.link_count(n); ++l) {
      EXPECT_GT(scenario.adjustor(n, l)->threshold().value, -70.0)
          << "network " << n << " link " << l;
    }
  }
}

TEST(DcnGain, MotivationOrderingHolds) {
  // Fig. 1's qualitative content, as a regression lock: with the default
  // fixed CCA on a 12 MHz band, CFD=3 MHz beats both the ZigBee spacing and
  // the orthogonal assignment, and CFD=2 MHz does not beat CFD=3 MHz.
  const double cfd9 = mean_over_seeds(phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{9.0}, 1),
                                      net::Scheme::kFixedCca, 2);
  const double cfd5 = mean_over_seeds(phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{5.0}, 2),
                                      net::Scheme::kFixedCca, 2);
  const double cfd3 = mean_over_seeds(phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 4),
                                      net::Scheme::kFixedCca, 2);
  const double cfd2 = mean_over_seeds(phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{2.0}, 6),
                                      net::Scheme::kFixedCca, 2);
  EXPECT_GT(cfd5, cfd9 * 1.5);
  EXPECT_GT(cfd3, cfd5 * 1.2);
  EXPECT_GE(cfd3, cfd2 * 0.98);
}

}  // namespace
}  // namespace nomc
