// Locks the PHY calibration to the paper's measured physical-layer
// characterization (DESIGN.md §2). If these fail after a model change, the
// figure benches no longer reproduce the paper — fix the calibration, not
// the test.
#include <gtest/gtest.h>

#include "mac/attacker.hpp"
#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "sim/scheduler.hpp"

namespace nomc {
namespace {

/// The §III-B collision experiment: 12 m links, interfering sender 1 m from
/// the victim receiver (≈24 dB hot), both senders CS-disabled.
double measure_cprr(double cfd_mhz, std::uint64_t seed) {
  sim::Scheduler scheduler;
  phy::Medium medium{phy::MediumConfig{.seed = seed}};

  const phy::Mhz ch_a{2460.0};
  const phy::Mhz ch_b{2460.0 + cfd_mhz};
  const phy::NodeId tx = medium.add_node({0.0, 0.0});
  const phy::NodeId rx = medium.add_node({0.0, 12.0});
  const phy::NodeId atk = medium.add_node({1.0, 12.0});
  const phy::NodeId atk_rx = medium.add_node({1.0, 0.0});

  phy::RadioConfig cfg_a;
  cfg_a.channel = ch_a;
  phy::RadioConfig cfg_b;
  cfg_b.channel = ch_b;
  phy::Radio tx_radio{scheduler, medium, sim::RandomStream{seed, 0}, tx, cfg_a};
  phy::Radio rx_radio{scheduler, medium, sim::RandomStream{seed, 1}, rx, cfg_a};
  phy::Radio atk_radio{scheduler, medium, sim::RandomStream{seed, 2}, atk, cfg_b};
  phy::Radio atk_rx_radio{scheduler, medium, sim::RandomStream{seed, 3}, atk_rx, cfg_b};

  mac::AttackerMac sender{scheduler, medium, tx_radio};
  mac::AttackerMac attacker{scheduler, medium, atk_radio};
  mac::AttackerMac receiver{scheduler, medium, rx_radio};
  mac::AttackerMac attacker_receiver{scheduler, medium, atk_rx_radio};
  sender.start(rx, 100, sim::SimTime::milliseconds(5));
  attacker.start(atk_rx, 50, sim::SimTime::milliseconds(3));
  scheduler.run_until(sim::SimTime::seconds(25.0));

  // Sanity: the attacker really does collide with everything.
  EXPECT_GT(receiver.counters().collided, 1000u);
  return receiver.counters().cprr();
}

TEST(Calibration, CprrStaircaseMatchesFig4) {
  // Paper Fig. 4: >=4 MHz -> ~100 %, 3 MHz -> ~97 %, 2 MHz -> ~70 %,
  // 1 MHz -> <20 %. Generous bands, but tight enough that a decode-curve
  // regression trips them.
  EXPECT_GT(measure_cprr(5.0, 42), 0.995);
  EXPECT_GT(measure_cprr(4.0, 42), 0.99);
  const double cprr3 = measure_cprr(3.0, 42);
  EXPECT_GT(cprr3, 0.93);
  EXPECT_LT(cprr3, 1.0);
  const double cprr2 = measure_cprr(2.0, 42);
  EXPECT_GT(cprr2, 0.55);
  EXPECT_LT(cprr2, 0.85);
  EXPECT_LT(measure_cprr(1.0, 42), 0.25);
}

TEST(Calibration, CprrMonotoneInCfd) {
  double prev = -1.0;
  for (const double cfd : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    const double cprr = measure_cprr(cfd, 7);
    EXPECT_GE(cprr, prev) << "CFD " << cfd;
    prev = cprr;
  }
}

TEST(Calibration, DefaultCcaMarginalAtThreeMhzBenchDistance) {
  // At dense-deployment distances (~2 m between neighbouring-network
  // senders), a 0 dBm 3 MHz neighbour is sensed right around the -77 dBm
  // default threshold — the regime that makes the fixed threshold waste
  // concurrency (Figs. 1, 6).
  phy::Medium medium{phy::MediumConfig{.shadowing_sigma_db = 0.0}};
  const phy::NodeId tx = medium.add_node({0.0, 0.0});
  const phy::NodeId sensor = medium.add_node({2.1, 0.0});
  phy::Frame frame;
  frame.id = medium.allocate_frame_id();
  frame.src = tx;
  frame.channel = phy::Mhz{2463.0};
  frame.tx_power = phy::Dbm{0.0};
  frame.psdu_bytes = 100;
  medium.begin_tx(frame);
  const double sensed = medium.sense_energy(sensor, phy::Mhz{2460.0}).value;
  EXPECT_GT(sensed, -80.0);
  EXPECT_LT(sensed, -74.0);
}

TEST(Calibration, ZigbeeSpacingSensesIdle) {
  // 5 MHz neighbours at the same distance sit clearly below -77 dBm: the
  // ZigBee baseline of Fig. 19 runs essentially uncoupled.
  phy::Medium medium{phy::MediumConfig{.shadowing_sigma_db = 0.0}};
  const phy::NodeId tx = medium.add_node({0.0, 0.0});
  const phy::NodeId sensor = medium.add_node({2.1, 0.0});
  phy::Frame frame;
  frame.id = medium.allocate_frame_id();
  frame.src = tx;
  frame.channel = phy::Mhz{2465.0};
  frame.tx_power = phy::Dbm{0.0};
  frame.psdu_bytes = 100;
  medium.begin_tx(frame);
  EXPECT_LT(medium.sense_energy(sensor, phy::Mhz{2460.0}).value, -80.0);
}

}  // namespace
}  // namespace nomc
