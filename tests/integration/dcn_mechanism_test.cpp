// Mechanism-level locks for DCN's Fig. 11-12 behaviour: where the threshold
// settles relative to the interference landscape, end to end.
#include <gtest/gtest.h>

#include "mac/traffic.hpp"
#include "net/scenario.hpp"
#include "net/topology.hpp"
#include "phy/channel_plan.hpp"

namespace nomc {
namespace {

/// Two networks 3 MHz apart; the DCN network's senders must settle their
/// thresholds INSIDE the gap between their co-channel partner's RSSI
/// (above) and the neighbouring channel's leakage (below) — Fig. 12's
/// "separated interference" picture.
TEST(DcnMechanism, ThresholdLandsInTheGap) {
  net::ScenarioConfig config;
  config.seed = 19;
  config.medium.shadowing_sigma_db = 0.0;  // crisp landscape for the check
  net::Scenario scenario{config};

  const int dcn_net = scenario.add_network(phy::Mhz{2460.0}, net::Scheme::kDcn);
  net::LinkSpec a;
  a.sender_pos = {0.0, 0.0};
  a.receiver_pos = {0.0, 2.0};
  scenario.add_link(dcn_net, a);
  net::LinkSpec b;
  b.sender_pos = {1.0, 0.0};
  b.receiver_pos = {1.0, 2.0};
  scenario.add_link(dcn_net, b);

  const int neighbour = scenario.add_network(phy::Mhz{2463.0}, net::Scheme::kFixedCca);
  net::LinkSpec c;
  c.sender_pos = {3.0, 0.0};
  c.receiver_pos = {3.0, 2.0};
  scenario.add_link(neighbour, c);
  net::LinkSpec d;
  d.sender_pos = {4.0, 0.0};
  d.receiver_pos = {4.0, 2.0};
  scenario.add_link(neighbour, d);

  scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(4.0));

  // Landscape at sender A (node at origin): partner B is 1 m away at 0 dBm
  // => co-channel RSSI = -40 dBm. The neighbour network's closest sender is
  // 3 m away on +3 MHz => sensed leak = -50.5 - 30 = -80.5 dBm.
  const double threshold = scenario.adjustor(dcn_net, 0)->threshold().value;
  EXPECT_LT(threshold, -40.0);  // strictly below the co-channel interferer
  EXPECT_GT(threshold, -60.0);  // but relaxed far above the leak
  // And the design goal follows: inter-channel energy no longer defers A.
  const auto result = scenario.network_result(dcn_net);
  EXPECT_GT(result.throughput_pps, 180.0);
}

/// Eq. 3 end-to-end: when a weak co-channel link joins a running DCN
/// network, thresholds drop to protect it within the update machinery.
TEST(DcnMechanism, WeakJoinerLowersThresholds) {
  net::ScenarioConfig config;
  config.seed = 23;
  config.medium.shadowing_sigma_db = 0.0;
  net::Scenario scenario{config};

  const int n = scenario.add_network(phy::Mhz{2460.0}, net::Scheme::kDcn);
  net::LinkSpec a;
  a.sender_pos = {0.0, 0.0};
  a.receiver_pos = {0.0, 2.0};
  scenario.add_link(n, a);
  net::LinkSpec b;
  b.sender_pos = {1.0, 0.0};
  b.receiver_pos = {1.0, 2.0};
  scenario.add_link(n, b);
  // The weak joiner: far away AND low power, silent during warm-up.
  net::LinkSpec weak;
  weak.sender_pos = {14.0, 0.0};
  weak.receiver_pos = {14.0, 2.0};
  weak.tx_power = phy::Dbm{-10.0};
  scenario.add_link(n, weak);

  // Links A and B report periodically rather than saturating: a saturated
  // overhearer almost never decodes a -75 dBm neighbour through its
  // partner's -40 dBm traffic — DCN needs idle gaps to listen in (a real
  // deployment has them; the paper's testbed traffic did too during
  // association). The weak link comes up mid-run.
  for (int l = 0; l < 3; ++l) scenario.set_traffic_enabled(n, l, false);
  mac::PeriodicSource source_a{scenario.scheduler(), scenario.sender_mac(n, 0)};
  mac::PeriodicSource source_b{scenario.scheduler(), scenario.sender_mac(n, 1)};
  source_a.start(mac::TxRequest{scenario.receiver_radio(n, 0).node(), 100},
                 sim::SimTime::milliseconds(25));
  source_b.start(mac::TxRequest{scenario.receiver_radio(n, 1).node(), 100},
                 sim::SimTime::milliseconds(25));
  mac::CsmaMac* weak_mac = &scenario.sender_mac(n, 2);
  const phy::NodeId weak_dst = scenario.receiver_radio(n, 2).node();
  scenario.scheduler().schedule_at(sim::SimTime::seconds(3.0), [weak_mac, weak_dst] {
    weak_mac->set_saturated(mac::TxRequest{weak_dst, 100});
  });
  scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(6.0));

  // Sender A overhears the weak joiner at -10 dBm - PL(14 m) ≈ -75.2 dBm;
  // Eq. 3 must have pulled its threshold below that (margin 2 dB).
  const double threshold = scenario.adjustor(n, 0)->threshold().value;
  EXPECT_LT(threshold, -75.0);
  EXPECT_GT(threshold, -85.0);
}

/// The conservative start: before and during the initializing phase the
/// network behaves exactly like the fixed design (no early aggression).
TEST(DcnMechanism, InitPhaseMatchesFixedDesign) {
  auto run_prefix = [](net::Scheme scheme) {
    net::ScenarioConfig config;
    config.seed = 29;
    net::Scenario scenario{config};
    const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 3);
    net::RandomCaseConfig topology = net::RandomCaseConfig{}.with_fixed_power(phy::Dbm{0.0});
    sim::RandomStream placement{29, 999};
    scenario.add_networks(net::case1_dense(channels, placement, topology), scheme);
    // Measure only inside T_I = 1 s: the adjustor must still be holding the
    // ZigBee default, so both schemes see identical conditions.
    scenario.run(sim::SimTime::zero(), sim::SimTime::seconds(0.9));
    return scenario.network_throughputs();
  };
  EXPECT_EQ(run_prefix(net::Scheme::kDcn), run_prefix(net::Scheme::kFixedCca));
}

}  // namespace
}  // namespace nomc
