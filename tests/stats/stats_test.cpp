#include <gtest/gtest.h>

#include "stats/cdf.hpp"
#include "stats/counters.hpp"
#include "stats/fairness.hpp"
#include "stats/table.hpp"
#include "stats/throughput.hpp"

namespace nomc::stats {
namespace {

TEST(Counters, PrrAndDefaults) {
  PacketCounters counters;
  EXPECT_EQ(counters.prr(), 1.0);  // idle link has not failed
  counters.sent = 10;
  counters.received = 7;
  EXPECT_DOUBLE_EQ(counters.prr(), 0.7);
}

TEST(Counters, Cprr) {
  PacketCounters counters;
  EXPECT_EQ(counters.cprr(), 1.0);
  counters.collided = 100;
  counters.collided_received = 70;
  EXPECT_DOUBLE_EQ(counters.cprr(), 0.7);
}

TEST(Counters, Accumulate) {
  PacketCounters a;
  a.sent = 5;
  a.cca_backoffs = 2;
  PacketCounters b;
  b.sent = 3;
  b.received = 3;
  b.collided = 1;
  a += b;
  EXPECT_EQ(a.sent, 8u);
  EXPECT_EQ(a.received, 3u);
  EXPECT_EQ(a.cca_backoffs, 2u);
  EXPECT_EQ(a.collided, 1u);
}

TEST(Cdf, EmptyBehaviour) {
  CdfAccumulator cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.fraction_at_or_below(1.0), 0.0);
  EXPECT_TRUE(cdf.curve(10).empty());
}

TEST(Cdf, FractionAtOrBelow) {
  CdfAccumulator cdf;
  for (const double v : {0.1, 0.2, 0.3, 0.4}) cdf.add(v);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.05), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.1), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.25), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 1.0);
}

TEST(Cdf, Quantiles) {
  CdfAccumulator cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 100.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 50.5);
}

TEST(Cdf, InterleavedAddAndQuery) {
  CdfAccumulator cdf;
  cdf.add(2.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.0), 1.0);
  cdf.add(1.0);  // must re-sort transparently
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
}

TEST(Cdf, CurvePoints) {
  CdfAccumulator cdf;
  for (const double v : {0.0, 1.0}) cdf.add(v);
  const auto curve = cdf.curve(3);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve.front().first, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Fairness, JainBounds) {
  const double equal[] = {10.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(jain_index(equal), 1.0);
  const double starved[] = {30.0, 0.0, 0.0};
  EXPECT_NEAR(jain_index(starved), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(jain_index({}), 1.0);
  const double zeros[] = {0.0, 0.0};
  EXPECT_EQ(jain_index(zeros), 1.0);
}

TEST(Fairness, JainIntermediate) {
  const double values[] = {200.0, 250.0};
  // (450)^2 / (2 * (40000+62500)) = 202500/205000
  EXPECT_NEAR(jain_index(values), 0.98780, 1e-4);
}

TEST(Fairness, RelativeSpread) {
  const double values[] = {259.3, 260.8, 261.9, 272.5, 272.9, 273.4};  // paper Table I
  EXPECT_NEAR(relative_spread(values), 0.0529, 1e-3);                  // ~5 % spread
  EXPECT_EQ(relative_spread({}), 0.0);
  const double equal[] = {5.0, 5.0};
  EXPECT_EQ(relative_spread(equal), 0.0);
}

TEST(Table, RendersAlignedColumns) {
  TablePrinter table{{"a", "long-header", "c"}};
  table.add_row({"1", "2", "3"});
  table.add_row({"wide-cell", "x"});
  const std::string out = table.render();
  EXPECT_NE(out.find("a          long-header  c"), std::string::npos);
  EXPECT_NE(out.find("---------  -----------  -"), std::string::npos);
  EXPECT_NE(out.find("wide-cell  x"), std::string::npos);
  // Short rows are padded, not dropped.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(1234.6, 0), "1235");
  EXPECT_EQ(TablePrinter::num(-77.0, 1), "-77.0");
}

TEST(Throughput, WindowedCounting) {
  ThroughputMeter meter;
  meter.set_window(sim::SimTime::seconds(1.0), sim::SimTime::seconds(3.0));
  meter.record_delivery(sim::SimTime::seconds(0.5));  // before window
  meter.record_delivery(sim::SimTime::seconds(1.0));  // inclusive start
  meter.record_delivery(sim::SimTime::seconds(2.0));
  meter.record_delivery(sim::SimTime::seconds(3.0));  // exclusive end
  EXPECT_EQ(meter.deliveries(), 2u);
  EXPECT_DOUBLE_EQ(meter.packets_per_second(), 1.0);
}

TEST(Throughput, DegenerateWindow) {
  ThroughputMeter meter;
  meter.set_window(sim::SimTime::seconds(2.0), sim::SimTime::seconds(2.0));
  meter.record_delivery(sim::SimTime::seconds(2.0));
  EXPECT_EQ(meter.packets_per_second(), 0.0);
}

}  // namespace
}  // namespace nomc::stats
