#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hpp"

namespace nomc::stats {
namespace {

TEST(Summary, EmptyAndSingle) {
  SummaryStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
  EXPECT_EQ(stats.ci95_half_width(), 0.0);
  stats.add(42.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.mean(), 42.0);
  EXPECT_EQ(stats.stddev(), 0.0);  // undefined; reported as 0
}

TEST(Summary, KnownSmallSample) {
  SummaryStats stats;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance = 32/7.
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  // t(7 dof) = 2.365.
  EXPECT_NEAR(stats.ci95_half_width(), 2.365 * stats.stddev() / std::sqrt(8.0), 1e-9);
}

TEST(Summary, ConstantSamplesHaveZeroSpread) {
  SummaryStats stats;
  for (int i = 0; i < 10; ++i) stats.add(3.25);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.25);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(stats.ci95_half_width(), 0.0);
}

TEST(Summary, CiShrinksWithSamples) {
  sim::RandomStream rng{1, 0};
  SummaryStats small;
  SummaryStats large;
  for (int i = 0; i < 5; ++i) small.add(rng.normal(10.0, 2.0));
  for (int i = 0; i < 500; ++i) large.add(rng.normal(10.0, 2.0));
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
  // The wide sample's CI should cover the true mean.
  EXPECT_NEAR(large.mean(), 10.0, 3.0 * large.ci95_half_width() + 0.3);
}

TEST(Summary, GaussianCoverage) {
  // ~95 % of 95 % CIs over repeated experiments should contain the truth.
  sim::RandomStream rng{7, 0};
  int covered = 0;
  const int experiments = 400;
  for (int e = 0; e < experiments; ++e) {
    SummaryStats stats;
    for (int i = 0; i < 10; ++i) stats.add(rng.normal(0.0, 1.0));
    if (std::abs(stats.mean()) <= stats.ci95_half_width()) ++covered;
  }
  const double coverage = static_cast<double>(covered) / experiments;
  EXPECT_GT(coverage, 0.90);
  EXPECT_LT(coverage, 0.99);
}

TEST(Summary, NumericalStabilityWithLargeOffset) {
  // Welford must not cancel catastrophically around a large mean.
  SummaryStats stats;
  for (const double v : {1e9 + 1.0, 1e9 + 2.0, 1e9 + 3.0}) stats.add(v);
  EXPECT_NEAR(stats.mean(), 1e9 + 2.0, 1e-6);
  EXPECT_NEAR(stats.stddev(), 1.0, 1e-6);
}

}  // namespace
}  // namespace nomc::stats
