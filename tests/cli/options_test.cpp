#include "cli/options.hpp"

#include <gtest/gtest.h>

namespace nomc::cli {
namespace {

TEST(Options, ParseSchemeCoversAllChoices) {
  net::Scheme scheme{};
  ASSERT_TRUE(parse_scheme("fixed", scheme));
  EXPECT_EQ(scheme, net::Scheme::kFixedCca);
  ASSERT_TRUE(parse_scheme("dcn", scheme));
  EXPECT_EQ(scheme, net::Scheme::kDcn);
  ASSERT_TRUE(parse_scheme("carrier-sense", scheme));
  EXPECT_EQ(scheme, net::Scheme::kCarrierSense);
  EXPECT_FALSE(parse_scheme("zigbee", scheme));
  EXPECT_FALSE(parse_scheme("", scheme));
  EXPECT_FALSE(parse_scheme("Fixed", scheme));  // case-sensitive, like the tools
}

TEST(Options, ValidTopologyCoversAllCases) {
  EXPECT_TRUE(valid_topology("dense"));
  EXPECT_TRUE(valid_topology("clustered"));
  EXPECT_TRUE(valid_topology("random"));
  EXPECT_FALSE(valid_topology("grid"));
  EXPECT_FALSE(valid_topology(""));
}

TEST(Options, SchemeOptionRoundTrip) {
  ArgParser args;
  add_scheme_option(args, "scheme", "dcn");
  const char* argv[] = {"--scheme", "fixed"};
  ASSERT_TRUE(args.parse(2, argv));
  net::Scheme scheme{};
  ASSERT_TRUE(scheme_from_args(args, "scheme", scheme));
  EXPECT_EQ(scheme, net::Scheme::kFixedCca);
}

TEST(Options, SchemeFromArgsRejectsUnknownValue) {
  ArgParser args;
  add_scheme_option(args, "scheme", "dcn");
  const char* argv[] = {"--scheme", "bogus"};
  ASSERT_TRUE(args.parse(2, argv));  // parsing accepts any string...
  net::Scheme scheme{};
  EXPECT_FALSE(scheme_from_args(args, "scheme", scheme));  // ...validation rejects
}

TEST(Options, TopologyOptionDefaultsAndValidates) {
  ArgParser args;
  add_topology_option(args);
  ASSERT_TRUE(args.parse(0, nullptr));
  std::string topology;
  ASSERT_TRUE(topology_from_args(args, "topology", topology));
  EXPECT_EQ(topology, "dense");

  ArgParser args2;
  add_topology_option(args2);
  const char* argv[] = {"--topology", "hexagonal"};
  ASSERT_TRUE(args2.parse(2, argv));
  EXPECT_FALSE(topology_from_args(args2, "topology", topology));
}

TEST(Options, HelpTextListsChoices) {
  ArgParser args;
  add_scheme_option(args, "scheme", "dcn");
  add_topology_option(args);
  const std::string help = args.help("tool");
  EXPECT_NE(help.find(kSchemeChoices), std::string::npos);
  EXPECT_NE(help.find(kTopologyChoices), std::string::npos);
}

TEST(Options, ParseStandardHandlesErrorHelpAndSuccess) {
  {
    ArgParser args;
    add_scheme_option(args, "scheme", "dcn");
    const char* argv[] = {"tool", "--bogus"};
    const std::optional<int> exit_code = parse_standard(args, 2, argv, "tool");
    ASSERT_TRUE(exit_code.has_value());
    EXPECT_EQ(*exit_code, 2);
  }
  {
    ArgParser args;
    add_scheme_option(args, "scheme", "dcn");
    const char* argv[] = {"tool", "--help"};
    const std::optional<int> exit_code = parse_standard(args, 2, argv, "tool");
    ASSERT_TRUE(exit_code.has_value());
    EXPECT_EQ(*exit_code, 0);
  }
  {
    ArgParser args;
    add_scheme_option(args, "scheme", "dcn");
    const char* argv[] = {"tool", "--scheme", "fixed"};
    EXPECT_FALSE(parse_standard(args, 3, argv, "tool").has_value());
    EXPECT_EQ(args.get_string("scheme"), "fixed");
  }
}

}  // namespace
}  // namespace nomc::cli
