#include "cli/args.hpp"

#include <gtest/gtest.h>

namespace nomc::cli {
namespace {

ArgParser standard_parser() {
  ArgParser args;
  args.add_string("scheme", "dcn", "scheme");
  args.add_double("cfd", 3.0, "cfd");
  args.add_int("channels", 6, "channels");
  args.add_flag("verbose", "verbosity");
  return args;
}

bool parse(ArgParser& args, std::initializer_list<const char*> argv) {
  return args.parse(static_cast<int>(argv.size()), std::data(argv));
}

TEST(Args, DefaultsWhenNothingProvided) {
  ArgParser args = standard_parser();
  EXPECT_TRUE(parse(args, {}));
  EXPECT_EQ(args.get_string("scheme"), "dcn");
  EXPECT_DOUBLE_EQ(args.get_double("cfd"), 3.0);
  EXPECT_EQ(args.get_int("channels"), 6);
  EXPECT_FALSE(args.get_flag("verbose"));
  EXPECT_FALSE(args.provided("scheme"));
}

TEST(Args, SpaceSeparatedValues) {
  ArgParser args = standard_parser();
  EXPECT_TRUE(parse(args, {"--scheme", "fixed", "--cfd", "2.5", "--channels", "4"}));
  EXPECT_EQ(args.get_string("scheme"), "fixed");
  EXPECT_DOUBLE_EQ(args.get_double("cfd"), 2.5);
  EXPECT_EQ(args.get_int("channels"), 4);
  EXPECT_TRUE(args.provided("scheme"));
}

TEST(Args, EqualsSeparatedValues) {
  ArgParser args = standard_parser();
  EXPECT_TRUE(parse(args, {"--cfd=5", "--scheme=carrier-sense"}));
  EXPECT_DOUBLE_EQ(args.get_double("cfd"), 5.0);
  EXPECT_EQ(args.get_string("scheme"), "carrier-sense");
}

TEST(Args, NegativeNumbers) {
  ArgParser args;
  args.add_double("cca", -42.0, "threshold");
  EXPECT_TRUE(parse(args, {"--cca", "-55.5"}));
  EXPECT_DOUBLE_EQ(args.get_double("cca"), -55.5);
}

TEST(Args, Flags) {
  ArgParser args = standard_parser();
  EXPECT_TRUE(parse(args, {"--verbose"}));
  EXPECT_TRUE(args.get_flag("verbose"));
}

TEST(Args, FlagRejectsValue) {
  ArgParser args = standard_parser();
  EXPECT_FALSE(parse(args, {"--verbose=yes"}));
  EXPECT_NE(args.error().find("takes no value"), std::string::npos);
}

TEST(Args, UnknownOptionFails) {
  ArgParser args = standard_parser();
  EXPECT_FALSE(parse(args, {"--banana", "1"}));
  EXPECT_NE(args.error().find("unknown option"), std::string::npos);
}

TEST(Args, MissingValueFails) {
  ArgParser args = standard_parser();
  EXPECT_FALSE(parse(args, {"--cfd"}));
  EXPECT_NE(args.error().find("missing value"), std::string::npos);
}

TEST(Args, MalformedNumberFails) {
  ArgParser args = standard_parser();
  EXPECT_FALSE(parse(args, {"--cfd", "three"}));
  EXPECT_FALSE(args.error().empty());
  ArgParser args2 = standard_parser();
  EXPECT_FALSE(parse(args2, {"--channels", "4.5"}));
}

TEST(Args, PositionalArgumentFails) {
  ArgParser args = standard_parser();
  EXPECT_FALSE(parse(args, {"dense"}));
}

TEST(Args, HelpRequested) {
  ArgParser args = standard_parser();
  EXPECT_TRUE(parse(args, {"--help"}));
  EXPECT_TRUE(args.help_requested());
  const std::string help = args.help("tool");
  EXPECT_NE(help.find("--scheme"), std::string::npos);
  EXPECT_NE(help.find("--cfd"), std::string::npos);
  EXPECT_NE(help.find("usage: tool"), std::string::npos);
}

TEST(Args, LastValueWins) {
  ArgParser args = standard_parser();
  EXPECT_TRUE(parse(args, {"--cfd", "2", "--cfd", "4"}));
  EXPECT_DOUBLE_EQ(args.get_double("cfd"), 4.0);
}

TEST(Args, EmptyEqualsValueLegalForStrings) {
  ArgParser args = standard_parser();
  EXPECT_TRUE(parse(args, {"--scheme="}));
  EXPECT_EQ(args.get_string("scheme"), "");
  EXPECT_TRUE(args.provided("scheme"));
}

TEST(Args, EmptyEqualsValueRejectedForNumerics) {
  ArgParser args = standard_parser();
  EXPECT_FALSE(parse(args, {"--cfd="}));
  EXPECT_NE(args.error().find("empty value"), std::string::npos);
  ArgParser args2 = standard_parser();
  EXPECT_FALSE(parse(args2, {"--channels="}));
  EXPECT_NE(args2.error().find("empty value"), std::string::npos);
}

TEST(Args, StringOptionDoesNotSwallowFollowingOption) {
  ArgParser args = standard_parser();
  EXPECT_FALSE(parse(args, {"--scheme", "--verbose"}));
  EXPECT_NE(args.error().find("missing value"), std::string::npos);
  // An explicit = still allows a value that looks like an option.
  ArgParser args2 = standard_parser();
  EXPECT_TRUE(parse(args2, {"--scheme=--verbose"}));
  EXPECT_EQ(args2.get_string("scheme"), "--verbose");
}

TEST(Args, IntOverflowRejected) {
  ArgParser args = standard_parser();
  EXPECT_FALSE(parse(args, {"--channels", "99999999999999999999"}));
  ArgParser args2 = standard_parser();
  EXPECT_FALSE(parse(args2, {"--channels", "-99999999999999999999"}));
}

TEST(Args, NegativeIntValue) {
  ArgParser args;
  args.add_int("offset", 0, "offset");
  EXPECT_TRUE(parse(args, {"--offset", "-3"}));
  EXPECT_EQ(args.get_int("offset"), -3);
  ArgParser args2;
  args2.add_int("offset", 0, "offset");
  EXPECT_TRUE(parse(args2, {"--offset=-3"}));
  EXPECT_EQ(args2.get_int("offset"), -3);
}

}  // namespace
}  // namespace nomc::cli
