#include "wifi/contrast.hpp"

#include <gtest/gtest.h>

namespace nomc::wifi {
namespace {

ContrastConfig fast_config() {
  ContrastConfig config;
  config.measure_seconds = 3.0;
  config.max_separation = 6;
  return config;
}

TEST(Contrast, BaselineIsPositive) {
  const ContrastResult result = run_contrast(Standard::k802154, fast_config());
  EXPECT_GT(result.baseline_pps, 100.0);
  ASSERT_EQ(result.points.size(), 7u);
}

TEST(Contrast, CoChannelSharesAirtimeInBothStandards) {
  for (const Standard standard : {Standard::k80211b, Standard::k802154}) {
    const ContrastResult result = run_contrast(standard, fast_config());
    // Separation 0: CSMA splits the channel roughly in half.
    EXPECT_GT(result.points[0].normalized, 0.3);
    EXPECT_LT(result.points[0].normalized, 0.75);
  }
}

TEST(Contrast, Zigbee154CleanFromOneChannelAway) {
  // The paper's uniqueness claim: an 802.15.4 receiver never decodes
  // inter-channel packets and 5 MHz already sense as idle, so throughput is
  // back to the isolated baseline from separation 1 on.
  const ContrastResult result = run_contrast(Standard::k802154, fast_config());
  for (std::size_t i = 1; i < result.points.size(); ++i) {
    EXPECT_GT(result.points[i].normalized, 0.9)
        << "separation " << result.points[i].separation;
  }
}

TEST(Contrast, WifiDegradedThroughPartialOverlap) {
  // 802.11b stays degraded for several channel numbers (lock-on + wide
  // spectral mask), recovering only near 5 channels (25 MHz).
  const ContrastResult result = run_contrast(Standard::k80211b, fast_config());
  for (std::size_t i = 1; i <= 3; ++i) {
    EXPECT_LT(result.points[i].normalized, 0.8)
        << "separation " << result.points[i].separation;
  }
  EXPECT_GT(result.points[6].normalized, 0.9);
}

TEST(Contrast, WifiWorseThanZigbeeAtSmallSeparations) {
  const ContrastResult wifi = run_contrast(Standard::k80211b, fast_config());
  const ContrastResult zigbee = run_contrast(Standard::k802154, fast_config());
  for (std::size_t i = 1; i <= 3; ++i) {
    EXPECT_LT(wifi.points[i].normalized, zigbee.points[i].normalized);
  }
}

}  // namespace
}  // namespace nomc::wifi
