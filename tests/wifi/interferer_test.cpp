#include "wifi/interferer.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "mac/cca.hpp"
#include "mac/csma.hpp"
#include "phy/radio.hpp"

namespace nomc::wifi {
namespace {

TEST(EmissionMask, WideAndMonotone) {
  const phy::ChannelRejection& mask = emission_mask();
  EXPECT_EQ(mask.attenuation(phy::Mhz{0.0}).value, 0.0);
  // Still leaking strongly at 15-20 MHz (the coexistence mechanism).
  EXPECT_LT(mask.attenuation(phy::Mhz{16.0}).value, 15.0);
  EXPECT_GT(mask.attenuation(phy::Mhz{30.0}).value, 40.0);
}

TEST(WifiInterferer, DutyCycleBursts) {
  sim::Scheduler scheduler;
  phy::Medium medium;
  WifiInterfererConfig config;
  config.burst = sim::SimTime::milliseconds(2);
  config.period = sim::SimTime::milliseconds(10);
  WifiInterferer ap{scheduler, medium, {0.0, 0.0}, config};
  ap.start();
  scheduler.run_until(sim::SimTime::seconds(1.0));
  EXPECT_NEAR(static_cast<double>(ap.bursts()), 100.0, 2.0);
  ap.stop();
  scheduler.run_until(sim::SimTime::seconds(2.0));
  const auto bursts = ap.bursts();
  scheduler.run_until(sim::SimTime::seconds(3.0));
  EXPECT_EQ(ap.bursts(), bursts);
  EXPECT_EQ(medium.active_count(), 0u);  // no burst left dangling
}

TEST(WifiInterferer, WidebandEnergyReachesFarChannels) {
  sim::Scheduler scheduler;
  phy::MediumConfig medium_config;
  medium_config.shadowing_sigma_db = 0.0;
  phy::Medium medium{medium_config};

  const phy::NodeId sensor = medium.add_node({5.0, 0.0});
  WifiInterfererConfig config;
  config.center = phy::Mhz{2442.0};
  config.tx_power = phy::Dbm{15.0};
  WifiInterferer ap{scheduler, medium, {0.0, 0.0}, config};

  // Narrowband 802.15.4 frame at the same offset for comparison.
  const phy::NodeId narrow = medium.add_node({0.0, 0.0});
  phy::Frame narrow_frame;
  narrow_frame.id = medium.allocate_frame_id();
  narrow_frame.src = narrow;
  narrow_frame.channel = phy::Mhz{2442.0};
  narrow_frame.tx_power = phy::Dbm{15.0};
  narrow_frame.psdu_bytes = 100;
  medium.begin_tx(narrow_frame);
  // 2460 is 18 MHz away: a narrowband transmitter is rejected to ~floor.
  const double narrow_sensed = medium.sense_energy(sensor, phy::Mhz{2460.0}).value;
  medium.end_tx(narrow_frame.id);

  ap.start();
  scheduler.run_until(config.period + sim::SimTime::microseconds(100));  // mid-burst
  ASSERT_EQ(medium.active_count(), 1u);
  const double wifi_sensed = medium.sense_energy(sensor, phy::Mhz{2460.0}).value;

  // The Wi-Fi emission mask (~12 dB at 18 MHz) dominates the receiver's
  // ~58 dB rejection: the wideband interferer is FAR louder in-channel.
  EXPECT_GT(wifi_sensed, narrow_sensed + 30.0);
  EXPECT_GT(wifi_sensed, -80.0);  // enough to trip a -77 dBm CCA nearby
}

TEST(WifiInterferer, FixedCcaDefersDcnThresholdDoesNot) {
  // One sensor link 60 m... rather: place the AP so its skirt sits between
  // the default -77 dBm threshold and a DCN-relaxed -50 dBm threshold.
  sim::Scheduler scheduler;
  phy::MediumConfig medium_config;
  medium_config.shadowing_sigma_db = 0.0;
  phy::Medium medium{medium_config};

  const phy::NodeId tx = medium.add_node({0.0, 0.0});
  const phy::NodeId rx = medium.add_node({0.0, 2.0});
  phy::RadioConfig radio_config;
  radio_config.channel = phy::Mhz{2460.0};
  phy::Radio tx_radio{scheduler, medium, sim::RandomStream{1, 0}, tx, radio_config};
  phy::Radio rx_radio{scheduler, medium, sim::RandomStream{1, 1}, rx, radio_config};

  WifiInterfererConfig config;
  config.center = phy::Mhz{2442.0};
  config.tx_power = phy::Dbm{15.0};
  config.burst = sim::SimTime::milliseconds(9);
  config.period = sim::SimTime::milliseconds(10);  // ~90 % duty: constant-ish
  WifiInterferer ap{scheduler, medium, {3.0, 0.0}, config};
  ap.start();

  mac::FixedCcaThreshold zigbee{mac::kZigbeeDefaultCcaThreshold};
  mac::CsmaMac sender{scheduler, medium, tx_radio, sim::RandomStream{1, 2}, zigbee};
  mac::CsmaMac receiver{scheduler, medium, rx_radio, sim::RandomStream{1, 3}, zigbee};

  sender.set_saturated(mac::TxRequest{rx, 100});
  scheduler.run_until(sim::SimTime::seconds(2.0));
  const auto deferred_sent = sender.counters().sent;

  zigbee.set(phy::Dbm{-50.0});  // what a DCN adjustor would settle near
  scheduler.run_until(sim::SimTime::seconds(4.0));
  const auto relaxed_sent = sender.counters().sent - deferred_sent;

  EXPECT_LT(deferred_sent, relaxed_sent / 2);
  // And the relaxed transmissions still get through: the skirt is well
  // below the wanted signal at the receiver.
  EXPECT_GT(receiver.counters().received, relaxed_sent * 8 / 10);
}

}  // namespace
}  // namespace nomc::wifi
