// Scheme plumbing through Scenario: fixed vs DCN vs carrier-sense senders.
#include <gtest/gtest.h>

#include "net/scenario.hpp"
#include "net/topology.hpp"
#include "phy/channel_plan.hpp"

namespace nomc::net {
namespace {

double run_scheme(Scheme scheme, std::uint64_t seed) {
  const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 4);
  RandomCaseConfig topology = RandomCaseConfig{}.with_fixed_power(phy::Dbm{0.0});
  topology.region_m = 3.0;  // dense: plenty of inter-channel sensing
  ScenarioConfig config;
  config.seed = seed;
  Scenario scenario{config};
  sim::RandomStream placement{seed, 999};
  scenario.add_networks(case1_dense(channels, placement, topology), scheme);
  scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(5.0));
  return scenario.overall_throughput();
}

TEST(SchemeComparison, CarrierSenseNeverWorseThanFixed) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    EXPECT_GT(run_scheme(Scheme::kCarrierSense, seed), run_scheme(Scheme::kFixedCca, seed))
        << "seed " << seed;
  }
}

TEST(SchemeComparison, CarrierSenseAtLeastMatchesDcn) {
  // The classifier is DCN's stated upper bound: it ignores inter-channel
  // energy without Eq. 1's co-channel-RSSI constraint.
  double cs = 0.0;
  double dcn = 0.0;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    cs += run_scheme(Scheme::kCarrierSense, seed);
    dcn += run_scheme(Scheme::kDcn, seed);
  }
  EXPECT_GT(cs, dcn * 0.97);
}

TEST(SchemeComparison, CarrierSenseSendersHaveNoAdjustor) {
  Scenario scenario;
  const int n = scenario.add_network(phy::Mhz{2460.0}, Scheme::kCarrierSense);
  LinkSpec link;
  link.sender_pos = {0.0, 0.0};
  link.receiver_pos = {0.0, 2.0};
  scenario.add_link(n, link);
  EXPECT_EQ(scenario.adjustor(n, 0), nullptr);
}

TEST(SchemeComparison, MixedSchemesCoexist) {
  // One network per scheme on adjacent channels; everything must run and
  // produce sane throughput.
  Scenario scenario;
  const Scheme schemes[] = {Scheme::kFixedCca, Scheme::kDcn, Scheme::kCarrierSense};
  for (int i = 0; i < 3; ++i) {
    const int n = scenario.add_network(phy::Mhz{2458.0 + 3.0 * i}, schemes[i]);
    LinkSpec link;
    link.sender_pos = {2.0 * i, 0.0};
    link.receiver_pos = {2.0 * i, 2.0};
    scenario.add_link(n, link);
  }
  scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(4.0));
  for (int n = 0; n < 3; ++n) {
    EXPECT_GT(scenario.network_result(n).throughput_pps, 100.0) << "network " << n;
  }
}

}  // namespace
}  // namespace nomc::net
