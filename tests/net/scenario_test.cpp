#include "net/scenario.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "phy/channel_plan.hpp"

namespace nomc::net {
namespace {

LinkSpec simple_link(double x) {
  LinkSpec link;
  link.sender_pos = {x, 0.0};
  link.receiver_pos = {x, 2.0};
  link.tx_power = phy::Dbm{0.0};
  return link;
}

TEST(Scenario, BuildAccessors) {
  Scenario scenario;
  const int n0 = scenario.add_network(phy::Mhz{2460.0}, Scheme::kFixedCca);
  const int n1 = scenario.add_network(phy::Mhz{2463.0}, Scheme::kDcn);
  EXPECT_EQ(n0, 0);
  EXPECT_EQ(n1, 1);
  scenario.add_link(n0, simple_link(0.0));
  scenario.add_link(n1, simple_link(3.0));

  EXPECT_EQ(scenario.network_count(), 2);
  EXPECT_EQ(scenario.link_count(n0), 1);
  EXPECT_EQ(scenario.network_channel(n1).value, 2463.0);
  EXPECT_EQ(scenario.adjustor(n0, 0), nullptr);        // fixed network
  EXPECT_NE(scenario.adjustor(n1, 0), nullptr);        // DCN network
  EXPECT_EQ(scenario.fixed_cca(n0, 0).threshold().value, mac::kZigbeeDefaultCcaThreshold.value);
  EXPECT_EQ(scenario.sender_radio(n0, 0).channel().value, 2460.0);
  EXPECT_EQ(scenario.medium().node_count(), 4u);
}

TEST(Scenario, SingleLinkSaturationThroughput) {
  Scenario scenario;
  const int n = scenario.add_network(phy::Mhz{2460.0}, Scheme::kFixedCca);
  scenario.add_link(n, simple_link(0.0));
  scenario.run(sim::SimTime::seconds(1.0), sim::SimTime::seconds(5.0));

  const auto result = scenario.network_result(n);
  ASSERT_EQ(result.links.size(), 1u);
  // A lone saturated 100-byte-PSDU link sustains ~200 pkt/s.
  EXPECT_GT(result.throughput_pps, 150.0);
  EXPECT_LT(result.throughput_pps, 300.0);
  EXPECT_NEAR(result.links[0].prr, 1.0, 0.01);
  EXPECT_EQ(result.links[0].receiver.crc_failed, 0u);
}

TEST(Scenario, WindowExcludesWarmup) {
  Scenario scenario;
  const int n = scenario.add_network(phy::Mhz{2460.0}, Scheme::kFixedCca);
  scenario.add_link(n, simple_link(0.0));
  scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(4.0));

  const auto result = scenario.network_result(n);
  // Counters are window-scoped: sent during 4 s at ~200/s, far below the
  // 6 s total the MAC actually ran.
  EXPECT_LT(result.links[0].sender.sent, 4.5 * 250);
  EXPECT_NEAR(static_cast<double>(result.links[0].sender.sent),
              result.throughput_pps * 4.0, 10.0);
}

TEST(Scenario, TrafficCanBeDisabledPerLink) {
  Scenario scenario;
  const int n = scenario.add_network(phy::Mhz{2460.0}, Scheme::kFixedCca);
  scenario.add_link(n, simple_link(0.0));
  scenario.add_link(n, simple_link(1.0));
  scenario.set_traffic_enabled(n, 1, false);
  scenario.run(sim::SimTime::seconds(1.0), sim::SimTime::seconds(3.0));

  const auto result = scenario.network_result(n);
  EXPECT_GT(result.links[0].sender.sent, 100u);
  EXPECT_EQ(result.links[1].sender.sent, 0u);
}

TEST(Scenario, AddNetworksFromSpecs) {
  const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 3);
  sim::RandomStream placement{3, 999};
  const auto specs = case1_dense(channels, placement, RandomCaseConfig{});

  Scenario scenario;
  scenario.add_networks(specs, Scheme::kDcn);
  EXPECT_EQ(scenario.network_count(), 3);
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(scenario.link_count(n), 2);
    EXPECT_NE(scenario.adjustor(n, 0), nullptr);
  }
}

TEST(Scenario, DcnAdjustorsStartOnRun) {
  Scenario scenario;
  const int n = scenario.add_network(phy::Mhz{2460.0}, Scheme::kDcn);
  scenario.add_link(n, simple_link(0.0));
  scenario.add_link(n, simple_link(1.0));
  EXPECT_EQ(scenario.adjustor(n, 0)->phase(), dcn::CcaAdjustor::Phase::kNotStarted);
  scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(2.0));
  EXPECT_EQ(scenario.adjustor(n, 0)->phase(), dcn::CcaAdjustor::Phase::kUpdating);
  // After the initializing phase, the threshold reflects the loud co-channel
  // partner (~ -40 dBm at 1 m) rather than the ZigBee default.
  EXPECT_GT(scenario.adjustor(n, 0)->threshold().value, -60.0);
}

TEST(Scenario, ResultsAreDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    ScenarioConfig config;
    config.seed = seed;
    Scenario scenario{config};
    const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 3);
    sim::RandomStream placement{seed, 999};
    scenario.add_networks(case1_dense(channels, placement, RandomCaseConfig{}),
                          Scheme::kDcn);
    scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(3.0));
    return scenario.network_throughputs();
  };

  const auto a = run_once(42);
  const auto b = run_once(42);
  EXPECT_EQ(a, b);  // bit-identical replay

  const auto c = run_once(43);
  EXPECT_NE(a, c);  // different seed, different realization
}

TEST(Scenario, OverallIsSumOfNetworks) {
  Scenario scenario;
  const int n0 = scenario.add_network(phy::Mhz{2458.0}, Scheme::kFixedCca);
  const int n1 = scenario.add_network(phy::Mhz{2467.0}, Scheme::kFixedCca);
  scenario.add_link(n0, simple_link(0.0));
  scenario.add_link(n1, simple_link(5.0));
  scenario.run(sim::SimTime::seconds(1.0), sim::SimTime::seconds(3.0));
  const auto pps = scenario.network_throughputs();
  EXPECT_NEAR(scenario.overall_throughput(), pps[0] + pps[1], 1e-9);
}

TEST(Scenario, CustomPsduSizeChangesRate) {
  auto run_with_psdu = [](int psdu) {
    ScenarioConfig config;
    config.psdu_bytes = psdu;
    Scenario scenario{config};
    const int n = scenario.add_network(phy::Mhz{2460.0}, Scheme::kFixedCca);
    scenario.add_link(n, simple_link(0.0));
    scenario.run(sim::SimTime::seconds(1.0), sim::SimTime::seconds(3.0));
    return scenario.network_result(n).throughput_pps;
  };
  // Smaller frames => more frames per second.
  EXPECT_GT(run_with_psdu(30), run_with_psdu(120));
}

}  // namespace
}  // namespace nomc::net
