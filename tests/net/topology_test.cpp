#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "phy/channel_plan.hpp"

namespace nomc::net {
namespace {

std::vector<phy::Mhz> six_channels() {
  return phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 6);
}

TEST(BenchRow, StructureAndSpacing) {
  const auto channels = six_channels();
  BenchRowConfig config;
  const auto specs = bench_row(channels, config);
  ASSERT_EQ(specs.size(), 6u);
  for (std::size_t n = 0; n < specs.size(); ++n) {
    EXPECT_EQ(specs[n].channel.value, channels[n].value);
    ASSERT_EQ(specs[n].links.size(), 2u);
    for (const LinkSpec& link : specs[n].links) {
      EXPECT_NEAR(distance(link.sender_pos, link.receiver_pos), config.link_distance_m, 1e-9);
      EXPECT_EQ(link.tx_power.value, 0.0);
    }
  }
  // Adjacent network centers are one spacing apart.
  const double dx = specs[1].links[0].sender_pos.x - specs[0].links[0].sender_pos.x;
  EXPECT_NEAR(dx, config.network_spacing_m, 1e-9);
}

TEST(BenchRow, SenderGap) {
  BenchRowConfig config;
  const auto specs = bench_row(six_channels(), config);
  const double gap =
      distance(specs[0].links[0].sender_pos, specs[0].links[1].sender_pos);
  EXPECT_NEAR(gap, config.sender_gap_m, 1e-9);
}

class RandomCases : public ::testing::TestWithParam<int> {};

TEST_P(RandomCases, AllGeneratorsRespectConfig) {
  const auto channels = six_channels();
  RandomCaseConfig config;
  sim::RandomStream rng{static_cast<std::uint64_t>(GetParam()), 0};

  for (int which = 0; which < 3; ++which) {
    sim::RandomStream stream{static_cast<std::uint64_t>(GetParam()),
                             static_cast<std::uint64_t>(which)};
    const auto specs = which == 0   ? case1_dense(channels, stream, config)
                       : which == 1 ? case2_clustered(channels, stream, config)
                                    : case3_random(channels, stream, config);
    ASSERT_EQ(specs.size(), channels.size());
    for (std::size_t n = 0; n < specs.size(); ++n) {
      EXPECT_EQ(specs[n].channel.value, channels[n].value);
      ASSERT_EQ(specs[n].links.size(),
                static_cast<std::size_t>(config.links_per_network));
      for (const LinkSpec& link : specs[n].links) {
        const double d = distance(link.sender_pos, link.receiver_pos);
        EXPECT_GE(d, 0.5 * config.link_distance_m - 1e-9);
        EXPECT_LE(d, config.link_distance_m + 1e-9);
        EXPECT_GE(link.tx_power.value, config.min_tx_power.value);
        EXPECT_LE(link.tx_power.value, config.max_tx_power.value);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCases, ::testing::Values(1, 7, 42));

TEST(RandomCases, Case1StaysInRegion) {
  RandomCaseConfig config;
  sim::RandomStream rng{5, 0};
  const auto specs = case1_dense(six_channels(), rng, config);
  for (const auto& spec : specs) {
    for (const LinkSpec& link : spec.links) {
      EXPECT_GE(link.sender_pos.x, 0.0);
      EXPECT_LE(link.sender_pos.x, config.region_m);
      EXPECT_GE(link.sender_pos.y, 0.0);
      EXPECT_LE(link.sender_pos.y, config.region_m);
    }
  }
}

TEST(RandomCases, Case2ClustersAreSeparated) {
  RandomCaseConfig config;
  config.region_m = 1.0;
  config.room_spacing_m = 10.0;
  sim::RandomStream rng{5, 0};
  const auto specs = case2_clustered(six_channels(), rng, config);
  // Senders of different rooms are far apart compared to the room size;
  // rooms sit on a 3-wide grid.
  const double d01 =
      distance(specs[0].links[0].sender_pos, specs[1].links[0].sender_pos);
  EXPECT_GT(d01, config.room_spacing_m - 2 * config.region_m);
  const double d03 =
      distance(specs[0].links[0].sender_pos, specs[3].links[0].sender_pos);
  EXPECT_GT(d03, config.room_spacing_m - 2 * config.region_m);
}

TEST(RandomCases, Case3UsesWholeField) {
  RandomCaseConfig config;
  sim::RandomStream rng{5, 0};
  const auto specs = case3_random(six_channels(), rng, config);
  double max_coord = 0.0;
  for (const auto& spec : specs) {
    for (const LinkSpec& link : spec.links) {
      max_coord = std::max({max_coord, link.sender_pos.x, link.sender_pos.y});
    }
  }
  // With 12 anchors uniform over a 25 m field, at least one lands beyond
  // half the field with overwhelming probability.
  EXPECT_GT(max_coord, config.field_m / 2.0);
}

TEST(RandomCases, FixedPowerHelper) {
  const RandomCaseConfig config = RandomCaseConfig{}.with_fixed_power(phy::Dbm{-5.0});
  EXPECT_EQ(config.min_tx_power.value, -5.0);
  EXPECT_EQ(config.max_tx_power.value, -5.0);
  sim::RandomStream rng{5, 0};
  const auto specs = case1_dense(six_channels(), rng, config);
  for (const auto& spec : specs) {
    for (const LinkSpec& link : spec.links) EXPECT_EQ(link.tx_power.value, -5.0);
  }
}

TEST(RandomCases, DeterministicPerSeed) {
  RandomCaseConfig config;
  sim::RandomStream a{9, 0};
  sim::RandomStream b{9, 0};
  const auto specs_a = case3_random(six_channels(), a, config);
  const auto specs_b = case3_random(six_channels(), b, config);
  for (std::size_t n = 0; n < specs_a.size(); ++n) {
    for (std::size_t l = 0; l < specs_a[n].links.size(); ++l) {
      EXPECT_EQ(specs_a[n].links[l].sender_pos, specs_b[n].links[l].sender_pos);
      EXPECT_EQ(specs_a[n].links[l].tx_power.value, specs_b[n].links[l].tx_power.value);
    }
  }
}

}  // namespace
}  // namespace nomc::net
