#include "lint/driver.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <utility>

namespace nomc::lint {

namespace {

[[nodiscard]] std::string trim(const std::string& text) {
  const std::size_t first = text.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const std::size_t last = text.find_last_not_of(" \t\r");
  return text.substr(first, last - first + 1);
}

/// Parse every `allow(...)` / `allow-file(...)` directive in a comment.
struct SuppressionScan {
  std::vector<std::string> line_rules;  ///< allow(...) rule ids
  std::vector<std::string> file_rules;  ///< allow-file(...) rule ids
};

[[nodiscard]] SuppressionScan parse_suppressions(const std::string& comment) {
  SuppressionScan scan;
  const std::string tag = "nomc-lint:";
  std::size_t pos = comment.find(tag);
  if (pos == std::string::npos) return scan;
  pos += tag.size();
  while (pos < comment.size()) {
    const std::size_t allow = comment.find("allow", pos);
    if (allow == std::string::npos) break;
    std::size_t cursor = allow + 5;
    const bool whole_file = comment.compare(cursor, 5, "-file") == 0;
    if (whole_file) cursor += 5;
    if (cursor >= comment.size() || comment[cursor] != '(') {
      pos = cursor;
      continue;
    }
    const std::size_t close = comment.find(')', cursor);
    if (close == std::string::npos) break;
    std::string ids = comment.substr(cursor + 1, close - cursor - 1);
    std::string current;
    auto flush = [&] {
      const std::string id = trim(current);
      current.clear();
      if (id.empty()) return;
      (whole_file ? scan.file_rules : scan.line_rules).push_back(id);
    };
    for (const char c : ids) {
      if (c == ',') {
        flush();
      } else {
        current += c;
      }
    }
    flush();
    pos = close + 1;
  }
  return scan;
}

void apply_suppressions(const SourceFile& file, std::vector<Finding>& findings) {
  std::set<std::pair<int, std::string>> line_allows;  // (line, rule)
  std::set<std::string> file_allows;
  for (const Comment& comment : file.comments) {
    const SuppressionScan scan = parse_suppressions(comment.text);
    for (const std::string& rule : scan.file_rules) file_allows.insert(rule);
    for (const std::string& rule : scan.line_rules) {
      // The comment's own lines plus the line after it (so a standalone
      // suppression comment covers the statement below).
      for (int line = comment.line; line <= comment.end_line + 1; ++line) {
        line_allows.insert({line, rule});
      }
    }
  }
  for (Finding& finding : findings) {
    const Diagnostic& d = finding.diagnostic;
    if (file_allows.count(d.rule_id) > 0 || line_allows.count({d.line, d.rule_id}) > 0) {
      finding.suppressed = true;
    }
  }
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    const Diagnostic& x = a.diagnostic;
    const Diagnostic& y = b.diagnostic;
    return std::tie(x.path, x.line, x.col, x.rule_id) < std::tie(y.path, y.line, y.col, y.rule_id);
  });
}

[[nodiscard]] bool has_extension(const std::string& path, const char* ext) {
  const std::string suffix{ext};
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

[[nodiscard]] bool cpp_file(const std::string& path) {
  return has_extension(path, ".cpp") || has_extension(path, ".cc") ||
         has_extension(path, ".hpp") || has_extension(path, ".h") || has_extension(path, ".hh");
}

}  // namespace

std::vector<Finding> lint_cpp_source(const SourceFile& file) {
  std::vector<Diagnostic> diagnostics;
  run_cpp_rules(file, diagnostics);
  std::vector<Finding> findings;
  findings.reserve(diagnostics.size());
  for (Diagnostic& diagnostic : diagnostics) {
    Finding finding;
    finding.line_text = trim(file.line_text(diagnostic.line));
    finding.diagnostic = std::move(diagnostic);
    findings.push_back(std::move(finding));
  }
  apply_suppressions(file, findings);
  sort_findings(findings);
  return findings;
}

std::vector<Finding> lint_campaign_text(const std::string& path, const std::string& content) {
  std::vector<Diagnostic> diagnostics;
  run_campaign_rules(path, content, diagnostics);
  std::vector<Finding> findings;
  const bool allow_all = content.find("nomc-lint: allow(golden-regen-note)") != std::string::npos;
  for (Diagnostic& diagnostic : diagnostics) {
    Finding finding;
    finding.suppressed = allow_all;
    finding.diagnostic = std::move(diagnostic);
    findings.push_back(std::move(finding));
  }
  sort_findings(findings);
  return findings;
}

bool lint_path(const std::string& path, std::vector<Finding>& out, std::string& error) {
  if (cpp_file(path)) {
    SourceFile file;
    if (!scan_file(path, file, error)) return false;
    std::vector<Finding> findings = lint_cpp_source(file);
    out.insert(out.end(), std::make_move_iterator(findings.begin()),
               std::make_move_iterator(findings.end()));
    return true;
  }
  if (has_extension(path, ".campaign")) {
    SourceFile file;  // reuse the reader; tokens are ignored for specs
    if (!scan_file(path, file, error)) return false;
    std::vector<Finding> findings = lint_campaign_text(file.path, file.content);
    out.insert(out.end(), std::make_move_iterator(findings.begin()),
               std::make_move_iterator(findings.end()));
    return true;
  }
  return true;  // unsupported extension: nothing to do
}

bool collect_files(const std::string& root, std::vector<std::string>& out, std::string& error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::file_status status = fs::status(root, ec);
  if (ec) {
    error = "cannot stat " + root + ": " + ec.message();
    return false;
  }
  if (fs::is_regular_file(status)) {
    out.push_back(root);
    return true;
  }
  if (!fs::is_directory(status)) {
    error = root + " is neither a file nor a directory";
    return false;
  }
  std::vector<std::string> found;
  for (fs::recursive_directory_iterator it{root, ec}, end; it != end; it.increment(ec)) {
    if (ec) {
      error = "walking " + root + ": " + ec.message();
      return false;
    }
    if (!it->is_regular_file()) continue;
    const std::string path = it->path().generic_string();
    if (cpp_file(path) || has_extension(path, ".campaign")) found.push_back(path);
  }
  std::sort(found.begin(), found.end());
  out.insert(out.end(), found.begin(), found.end());
  return true;
}

bool Baseline::load(const std::string& path, std::string& error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return true;  // missing baseline = empty baseline
  std::string content;
  char buffer[1 << 14];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) content.append(buffer, got);
  std::fclose(file);
  std::size_t start = 0;
  int line_number = 0;
  while (start <= content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    const std::string line = trim(content.substr(start, end - start));
    ++line_number;
    start = end + 1;
    if (end == content.size() && line.empty()) break;
    if (line.empty() || line[0] == '#') continue;
    // path|rule|line text — two pipes minimum.
    const std::size_t first = line.find('|');
    const std::size_t second = first == std::string::npos ? std::string::npos
                                                          : line.find('|', first + 1);
    if (second == std::string::npos) {
      error = path + ":" + std::to_string(line_number) + ": malformed baseline entry";
      return false;
    }
    entries_.push_back(line);
  }
  return true;
}

std::string Baseline::key(const Finding& finding) {
  return finding.diagnostic.path + "|" + finding.diagnostic.rule_id + "|" + finding.line_text;
}

void Baseline::apply(std::vector<Finding>& findings) {
  for (Finding& finding : findings) {
    if (finding.suppressed) continue;
    const std::string key_text = key(finding);
    const auto it = std::find(entries_.begin(), entries_.end(), key_text);
    if (it != entries_.end()) {
      finding.baselined = true;
      entries_.erase(it);
    }
  }
}

std::string Baseline::serialize(const std::vector<Finding>& findings) {
  std::string out =
      "# nomc-lint baseline — grandfathered findings, one `path|rule|line` entry each.\n"
      "# Regenerate with `nomc-lint --write-baseline`; keep a justification comment\n"
      "# above every entry you re-admit. New findings never match this file.\n";
  for (const Finding& finding : findings) {
    if (finding.suppressed || finding.baselined) continue;
    out += Baseline::key(finding);
    out += '\n';
  }
  return out;
}

std::string format_diagnostic(const Finding& finding) {
  const Diagnostic& d = finding.diagnostic;
  std::string out = d.path + ":" + std::to_string(d.line) + ":" + std::to_string(d.col) +
                    ": warning: " + d.message + " [" + d.rule_id + "]";
  return out;
}

}  // namespace nomc::lint
