#include "lint/driver.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <tuple>
#include <utility>

#include "sim/parallel.hpp"

namespace nomc::lint {

namespace {

[[nodiscard]] std::string trim(const std::string& text) {
  const std::size_t first = text.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const std::size_t last = text.find_last_not_of(" \t\r");
  return text.substr(first, last - first + 1);
}

/// Parse every allow()/allow-file() directive in one comment into sites.
void parse_suppressions(const Comment& comment, std::vector<SuppressionSite>& out) {
  const std::string tag = "nomc-lint:";
  std::size_t pos = comment.text.find(tag);
  if (pos == std::string::npos) return;
  pos += tag.size();
  while (pos < comment.text.size()) {
    const std::size_t allow = comment.text.find("allow", pos);
    if (allow == std::string::npos) break;
    std::size_t cursor = allow + 5;
    const bool whole_file = comment.text.compare(cursor, 5, "-file") == 0;
    if (whole_file) cursor += 5;
    if (cursor >= comment.text.size() || comment.text[cursor] != '(') {
      pos = cursor;
      continue;
    }
    const std::size_t close = comment.text.find(')', cursor);
    if (close == std::string::npos) break;
    std::string ids = comment.text.substr(cursor + 1, close - cursor - 1);
    std::string current;
    auto flush = [&] {
      const std::string id = trim(current);
      current.clear();
      if (id.empty()) return;
      SuppressionSite site;
      site.line = comment.line;
      site.col = comment.col;
      site.cover_begin = comment.line;
      // The comment's own lines plus the line after it (so a standalone
      // suppression comment covers the statement below).
      site.cover_end = comment.end_line + 1;
      site.rule = id;
      site.whole_file = whole_file;
      out.push_back(std::move(site));
    };
    for (const char c : ids) {
      if (c == ',') {
        flush();
      } else {
        current += c;
      }
    }
    flush();
    pos = close + 1;
  }
}

[[nodiscard]] std::vector<SuppressionSite> collect_sites(const SourceFile& file) {
  std::vector<SuppressionSite> sites;
  for (const Comment& comment : file.comments) parse_suppressions(comment, sites);
  for (SuppressionSite& site : sites) site.line_text = trim(file.line_text(site.line));
  return sites;
}

/// Mark findings covered by a site as suppressed, and the covering sites as
/// used. A finding may be covered by several sites; all of them count.
void apply_sites(std::vector<SuppressionSite>& sites, std::vector<Finding>& findings) {
  for (Finding& finding : findings) {
    const Diagnostic& d = finding.diagnostic;
    for (SuppressionSite& site : sites) {
      if (site.rule != d.rule_id) continue;
      if (!site.whole_file && (d.line < site.cover_begin || d.line > site.cover_end)) continue;
      site.used = true;
      finding.suppressed = true;
    }
  }
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    const Diagnostic& x = a.diagnostic;
    const Diagnostic& y = b.diagnostic;
    return std::tie(x.path, x.line, x.col, x.rule_id, x.message) <
           std::tie(y.path, y.line, y.col, y.rule_id, y.message);
  });
}

[[nodiscard]] bool has_extension(const std::string& path, const char* ext) {
  const std::string suffix{ext};
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

[[nodiscard]] bool cpp_file(const std::string& path) {
  return has_extension(path, ".cpp") || has_extension(path, ".cc") ||
         has_extension(path, ".hpp") || has_extension(path, ".h") || has_extension(path, ".hh");
}

[[nodiscard]] std::vector<Finding> findings_from(std::vector<Diagnostic> diagnostics,
                                                 const SourceFile& file) {
  std::vector<Finding> findings;
  findings.reserve(diagnostics.size());
  for (Diagnostic& diagnostic : diagnostics) {
    Finding finding;
    finding.line_text = diagnostic.key_text.empty() ? trim(file.line_text(diagnostic.line))
                                                    : diagnostic.key_text;
    finding.diagnostic = std::move(diagnostic);
    findings.push_back(std::move(finding));
  }
  return findings;
}

/// 1-based line number of byte offset `pos` in `content`.
[[nodiscard]] int line_of_offset(const std::string& content, std::size_t pos) {
  int line = 1;
  for (std::size_t i = 0; i < pos && i < content.size(); ++i) {
    if (content[i] == '\n') ++line;
  }
  return line;
}

}  // namespace

std::vector<Finding> lint_cpp_source(const SourceFile& file) {
  std::vector<Diagnostic> diagnostics;
  run_cpp_rules(file, diagnostics);
  std::vector<Finding> findings = findings_from(std::move(diagnostics), file);
  std::vector<SuppressionSite> sites = collect_sites(file);
  apply_sites(sites, findings);
  sort_findings(findings);
  return findings;
}

std::vector<Finding> lint_campaign_text(const std::string& path, const std::string& content) {
  std::vector<Diagnostic> diagnostics;
  run_campaign_rules(path, content, diagnostics);
  std::vector<Finding> findings;
  const bool allow_all = content.find("nomc-lint: allow(golden-regen-note)") != std::string::npos;
  for (Diagnostic& diagnostic : diagnostics) {
    Finding finding;
    finding.suppressed = allow_all;
    finding.diagnostic = std::move(diagnostic);
    findings.push_back(std::move(finding));
  }
  sort_findings(findings);
  return findings;
}

bool lint_path(const std::string& path, std::vector<Finding>& out, std::string& error) {
  FileLint file;
  if (!lint_file(path, /*root=*/{}, file, error)) return false;
  out.insert(out.end(), std::make_move_iterator(file.findings.begin()),
             std::make_move_iterator(file.findings.end()));
  return true;
}

bool lint_file(const std::string& path, const std::string& root, FileLint& out,
               std::string& error) {
  out = FileLint{};
  out.module = module_of(path, root);
  if (cpp_file(path)) {
    SourceFile file;
    if (!scan_file(path, file, error)) return false;
    std::vector<Diagnostic> diagnostics;
    run_cpp_rules(file, diagnostics);
    out.findings = findings_from(std::move(diagnostics), file);
    out.sites = collect_sites(file);
    apply_sites(out.sites, out.findings);
    sort_findings(out.findings);
    collect_include_edges(file, root, out.edges);
    return true;
  }
  if (has_extension(path, ".campaign")) {
    SourceFile file;  // reuse the reader; tokens are ignored for specs
    if (!scan_file(path, file, error)) return false;
    out.findings = lint_campaign_text(file.path, file.content);
    // The scanner does not parse '#' comments, so the allow-everything
    // directive becomes a synthetic whole-file site; its usage feeds the
    // stale pass exactly like a C++ directive.
    const std::string directive = "nomc-lint: allow(golden-regen-note)";
    const std::size_t at = file.content.find(directive);
    if (at != std::string::npos) {
      SuppressionSite site;
      site.line = line_of_offset(file.content, at);
      site.col = 1;
      site.cover_begin = site.cover_end = site.line;
      site.rule = "golden-regen-note";
      site.line_text = trim(file.line_text(site.line));
      site.whole_file = true;
      site.used = !out.findings.empty();
      out.sites.push_back(std::move(site));
    }
    return true;
  }
  return true;  // unsupported extension: nothing to do
}

bool collect_files(const std::string& root, std::vector<std::string>& out, std::string& error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::file_status status = fs::status(root, ec);
  if (ec) {
    error = "cannot stat " + root + ": " + ec.message();
    return false;
  }
  if (fs::is_regular_file(status)) {
    out.push_back(root);
    return true;
  }
  if (!fs::is_directory(status)) {
    error = root + " is neither a file nor a directory";
    return false;
  }
  std::vector<std::string> found;
  for (fs::recursive_directory_iterator it{root, ec}, end; it != end; it.increment(ec)) {
    if (ec) {
      error = "walking " + root + ": " + ec.message();
      return false;
    }
    const std::string path = it->path().generic_string();
    if (it->is_directory()) {
      // Lint fixtures are deliberate rule violations — test data, not code.
      // An explicit root inside the fixture tree still scans (the lint test
      // suite does exactly that); the exclusion only guards tree walks.
      const std::string marker = "tests/lint/fixtures";
      if (path.size() >= marker.size() &&
          path.compare(path.size() - marker.size(), marker.size(), marker) == 0) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (!it->is_regular_file()) continue;
    if (cpp_file(path) || has_extension(path, ".campaign")) found.push_back(path);
  }
  std::sort(found.begin(), found.end());
  out.insert(out.end(), found.begin(), found.end());
  return true;
}

bool Baseline::load(const std::string& path, std::string& error) {
  path_ = path;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return true;  // missing baseline = empty baseline
  std::string content;
  char buffer[1 << 14];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) content.append(buffer, got);
  std::fclose(file);
  std::size_t start = 0;
  int line_number = 0;
  bool pending_allow_stale = false;
  while (start <= content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    const std::string line = trim(content.substr(start, end - start));
    ++line_number;
    start = end + 1;
    if (end == content.size() && line.empty()) break;
    if (line.empty()) {
      pending_allow_stale = false;
      continue;
    }
    if (line[0] == '#') {
      pending_allow_stale = line.find("nomc-lint:") != std::string::npos &&
                            line.find("allow(lint-stale-baseline)") != std::string::npos;
      continue;
    }
    // path|rule|line text — two pipes minimum.
    const std::size_t first = line.find('|');
    const std::size_t second = first == std::string::npos ? std::string::npos
                                                          : line.find('|', first + 1);
    if (second == std::string::npos) {
      error = path + ":" + std::to_string(line_number) + ": malformed baseline entry";
      return false;
    }
    Entry entry;
    entry.key = line;
    entry.line = line_number;
    entry.allow_stale = pending_allow_stale;
    pending_allow_stale = false;
    entries_.push_back(std::move(entry));
  }
  return true;
}

std::string Baseline::key(const Finding& finding) {
  return finding.diagnostic.path + "|" + finding.diagnostic.rule_id + "|" + finding.line_text;
}

void Baseline::apply(std::vector<Finding>& findings) {
  for (Finding& finding : findings) {
    if (finding.suppressed) continue;
    const std::string key_text = key(finding);
    const auto it = std::find_if(entries_.begin(), entries_.end(), [&](const Entry& entry) {
      return !entry.matched && entry.key == key_text;
    });
    if (it != entries_.end()) {
      finding.baselined = true;
      it->matched = true;
    }
  }
}

std::vector<Finding> Baseline::stale_findings() const {
  std::vector<Finding> out;
  for (const Entry& entry : entries_) {
    if (entry.matched) continue;
    Finding finding;
    finding.diagnostic.path = path_;
    finding.diagnostic.line = entry.line;
    finding.diagnostic.col = 1;
    finding.diagnostic.rule_id = "lint-stale-baseline";
    finding.diagnostic.message =
        "baseline entry matches no finding: '" + entry.key +
        "' — delete the burned-down entry (or justify it with a "
        "`nomc-lint: allow(lint-stale-baseline)` comment directly above)";
    finding.line_text = entry.key;
    finding.suppressed = entry.allow_stale;
    out.push_back(std::move(finding));
  }
  return out;
}

std::string Baseline::serialize(const std::vector<Finding>& findings) {
  std::string out =
      "# nomc-lint baseline — grandfathered findings, one `path|rule|line` entry each.\n"
      "# Regenerate with `nomc-lint --write-baseline`; keep a justification comment\n"
      "# above every entry you re-admit. New findings never match this file.\n";
  for (const Finding& finding : findings) {
    if (finding.suppressed || finding.baselined) continue;
    out += Baseline::key(finding);
    out += '\n';
  }
  return out;
}

namespace {

/// Per-file stage result for the parallel scan.
struct FileStage {
  FileLint lint;
  std::string error;
  bool ok = true;
};

/// The stale-tracking rules are exempt from staleness themselves, so a
/// justified meta-suppression does not demand an infinite tower of allows.
[[nodiscard]] bool meta_rule(const std::string& rule) {
  return rule == "lint-stale-suppress" || rule == "lint-stale-baseline";
}

}  // namespace

bool run_lint(const RunOptions& options, RunResult& result, std::string& error) {
  result = RunResult{};

  LayerSpec spec;
  const bool arch_pass = !options.layers_path.empty();
  if (arch_pass && !spec.load(options.layers_path, error)) return false;

  std::vector<std::string> files;
  {
    std::set<std::string> seen;
    for (const std::string& root : options.roots) {
      std::vector<std::string> batch;
      if (!collect_files(root, batch, error)) return false;
      for (std::string& path : batch) {
        if (seen.insert(path).second) files.push_back(std::move(path));
      }
    }
  }
  result.file_count = files.size();

  // Per-file stage, parallel. Each file's work is pure and self-contained;
  // map() returns in index order, so the merge below is independent of the
  // job count and the output stays byte-identical at any --jobs.
  sim::ParallelRunner pool{options.jobs};
  std::vector<FileStage> stages =
      pool.map(static_cast<int>(files.size()), [&](int index) {
        FileStage stage;
        stage.ok = lint_file(files[static_cast<std::size_t>(index)], options.root_prefix,
                             stage.lint, stage.error);
        return stage;
      });
  for (const FileStage& stage : stages) {
    if (!stage.ok) {
      error = stage.error;
      return false;
    }
  }

  std::vector<Finding>& findings = result.findings;
  std::map<std::string, std::size_t> stage_of_path;
  std::set<std::string> modules_on_disk;
  std::vector<IncludeEdge> edges;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    FileLint& lint = stages[i].lint;
    stage_of_path.emplace(files[i], i);
    if (!lint.module.empty()) modules_on_disk.insert(lint.module);
    edges.insert(edges.end(), std::make_move_iterator(lint.edges.begin()),
                 std::make_move_iterator(lint.edges.end()));
    findings.insert(findings.end(), std::make_move_iterator(lint.findings.begin()),
                    std::make_move_iterator(lint.findings.end()));
  }

  // Whole-program architecture pass. Graph findings are suppressible at the
  // include directive they anchor to, through the same sites as any rule.
  if (arch_pass) {
    std::vector<Diagnostic> diagnostics;
    run_graph_rules(spec, edges, modules_on_disk, diagnostics);
    for (Diagnostic& diagnostic : diagnostics) {
      Finding finding;
      finding.line_text = diagnostic.key_text;
      finding.diagnostic = std::move(diagnostic);
      if (finding.diagnostic.rule_id == "arch-missing-spec" && spec.allows_missing()) {
        finding.suppressed = true;
      }
      const auto it = stage_of_path.find(finding.diagnostic.path);
      if (it != stage_of_path.end()) {
        std::vector<Finding> one;
        one.push_back(std::move(finding));
        apply_sites(stages[it->second].lint.sites, one);
        finding = std::move(one.front());
      }
      findings.push_back(std::move(finding));
    }
  }

  // Stale-suppression pass: every directive must have earned its keep by
  // now (per-file rules and the graph pass both mark usage).
  for (std::size_t i = 0; i < stages.size(); ++i) {
    std::vector<SuppressionSite>& sites = stages[i].lint.sites;
    std::vector<Finding> stale;
    for (const SuppressionSite& site : sites) {
      if (site.used || meta_rule(site.rule)) continue;
      Finding finding;
      finding.diagnostic.path = files[i];
      finding.diagnostic.line = site.line;
      finding.diagnostic.col = site.col;
      finding.diagnostic.rule_id = "lint-stale-suppress";
      finding.diagnostic.message =
          known_rule(site.rule)
              ? "suppression '" + std::string{site.whole_file ? "allow-file" : "allow"} + "(" +
                    site.rule + ")' matches no finding — delete the dead directive"
              : "suppression names unknown rule '" + site.rule +
                    "' — not in the catalog (typo?)";
      finding.line_text = site.line_text;
      stale.push_back(std::move(finding));
    }
    apply_sites(sites, stale);
    findings.insert(findings.end(), std::make_move_iterator(stale.begin()),
                    std::make_move_iterator(stale.end()));
  }

  // Baseline pass, last: it may absorb findings from every stage above, and
  // whatever it no longer absorbs is itself a finding.
  if (!options.baseline_path.empty()) {
    Baseline baseline;
    if (!baseline.load(options.baseline_path, error)) return false;
    baseline.apply(findings);
    std::vector<Finding> stale = baseline.stale_findings();
    findings.insert(findings.end(), std::make_move_iterator(stale.begin()),
                    std::make_move_iterator(stale.end()));
  }

  sort_findings(findings);
  return true;
}

std::string format_diagnostic(const Finding& finding) {
  const Diagnostic& d = finding.diagnostic;
  std::string out = d.path + ":" + std::to_string(d.line) + ":" + std::to_string(d.col) +
                    ": warning: " + d.message + " [" + d.rule_id + "]";
  return out;
}

}  // namespace nomc::lint
