// Whole-program include-graph pass for nomc-lint.
//
// Per-file lint rules cannot see the bug classes that matter as the tree
// grows: a service-layer file reaching back into the PHY, a dependency
// cycle between modules, a new module nobody placed in the architecture.
// This pass parses every quoted #include directive, collapses files to
// modules (directory = module: `src/phy/medium.cpp` is module `phy`,
// `tools/nomc_lint.cpp` is module `tools`), and checks the resulting module
// graph against the checked-in layering spec `tools/nomc_layers.txt`:
//
//   arch-layer-violation  an include edge the spec does not permit,
//                         reported at the offending #include directive
//   arch-cycle            any cycle in the module graph, reported once per
//                         cycle with the full module path, anchored at the
//                         lexicographically first edge of the cycle
//   arch-missing-spec     a module that exists on disk (has scanned files)
//                         but has no entry in the spec — growth must be
//                         placed in the architecture, not discovered later
//
// Spec grammar (one module per line; '#' comments, full-line or trailing):
//
//   module: dep1 dep2 ...   module may include itself and the listed deps
//   module:                 a base layer: no cross-module includes
//   module: *               may include anything (driver layers: tools,
//                           bench, tests)
//
// A `# nomc-lint: allow(arch-missing-spec)` comment inside the spec file
// suppresses arch-missing-spec findings (for a deliberately partial spec);
// the other two rules are suppressed inline at the include directive like
// any per-file rule.
//
// nomc-lint: allow-file(lint-stale-suppress) — the directive above and in
// allows_missing() is quoted documentation, not a live suppression.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "lint/source.hpp"

namespace nomc::lint {

/// One module-crossing quoted #include directive.
struct IncludeEdge {
  std::string path;       ///< including file, as scanned
  int line = 1;           ///< line of the #include directive
  int col = 1;
  std::string from;       ///< module of `path`
  std::string to;         ///< first path component of the include target
  std::string line_text;  ///< trimmed directive text (baseline key material)
};

/// Module of a repo-relative path. `root` (when non-empty) is stripped
/// first, so fixture trees can be analyzed in place. `src/<m>/...` maps to
/// `<m>`; anything else maps to its first directory component (`tools`,
/// `bench`, `tests`, ...). A bare filename has no module ("").
[[nodiscard]] std::string module_of(const std::string& path, const std::string& root = {});

/// Append the module-crossing include edges of one scanned file. Includes
/// without a '/' are intra-module and produce no edge; edges whose target
/// module is unknown are filtered later, in run_graph_rules.
void collect_include_edges(const SourceFile& file, const std::string& root,
                           std::vector<IncludeEdge>& out);

/// The parsed layering spec (tools/nomc_layers.txt).
class LayerSpec {
 public:
  /// Parse `content` (from `path`, used in diagnostics). False + `error` on
  /// a malformed line.
  bool parse(const std::string& path, const std::string& content, std::string& error);

  /// Read and parse a spec file from disk.
  bool load(const std::string& path, std::string& error);

  [[nodiscard]] bool has(const std::string& module) const;

  /// True when `from` may include `to` (self-edges and '*' always may).
  [[nodiscard]] bool allows(const std::string& from, const std::string& to) const;

  /// The allowed targets of `from`, space-joined, for diagnostics.
  [[nodiscard]] std::string allowed_list(const std::string& from) const;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t size() const { return allowed_.size(); }

  /// True when the spec carries `# nomc-lint: allow(arch-missing-spec)`.
  [[nodiscard]] bool allows_missing() const { return allows_missing_; }

 private:
  std::string path_;
  std::vector<std::pair<std::string, std::set<std::string>>> allowed_;  // sorted by module
  bool allows_missing_ = false;
};

/// Run the three architecture rules over the whole program's edges.
/// `modules_on_disk` is the set of modules the scanned files belong to.
/// Edges whose target is neither on disk nor in the spec are external
/// includes and are ignored. Diagnostics append deterministically.
void run_graph_rules(const LayerSpec& spec, const std::vector<IncludeEdge>& edges,
                     const std::set<std::string>& modules_on_disk,
                     std::vector<Diagnostic>& out);

}  // namespace nomc::lint
