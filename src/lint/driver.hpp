// nomc-lint driver: runs the rule catalog over files, applies inline
// suppressions and the checked-in baseline, renders clang-style
// diagnostics, and orchestrates the whole-program passes (include-graph
// architecture rules, stale-suppression and stale-baseline detection)
// behind a deterministic parallel scan.
//
// Suppression syntax, inside any comment — the tag is `nomc-lint:`
// followed by one or more directives:
//
//   allow(rule-id)            suppress on this line and the next
//   allow(rule-a, rule-b)     several rules at once
//   allow-file(rule-id)       suppress for the whole file
//
// A suppression placed on its own line covers the following line, so it can
// sit above the code it justifies. Campaign specs use the same syntax after
// a '#'. Every directive must stay *live*: one whose rule id is not in the
// catalog, or whose covered lines produce no finding of that rule, is
// itself reported as lint-stale-suppress (directives naming the stale-
// tracking rules are exempt, so meta-suppressions do not recurse).
//
// Baseline: a text file of `path|rule-id|trimmed source line` entries.
// Findings matching a baseline entry (same file, rule, and line *content* —
// line numbers may drift) are reported as baselined and do not fail the
// run. `nomc-lint --write-baseline` regenerates it; entries should carry a
// justification comment above them (lines starting with '#'). An entry that
// matches no finding is reported as lint-stale-baseline unless the comment
// line directly above it carries `nomc-lint: allow(lint-stale-baseline)`.
//
// nomc-lint: allow-file(lint-stale-suppress) — the syntax examples above
// are documentation, not suppressions; without this they would register as
// stale directives for made-up rule ids.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint/graph.hpp"
#include "lint/rules.hpp"
#include "lint/source.hpp"

namespace nomc::lint {

struct Finding {
  Diagnostic diagnostic;
  std::string line_text;   ///< trimmed source line (baseline key material)
  bool suppressed = false; ///< matched an inline allow()
  bool baselined = false;  ///< matched a baseline entry
};

/// One allow()/allow-file() directive found in a file's comments.
struct SuppressionSite {
  int line = 1;             ///< line of the comment carrying the directive
  int col = 1;
  int cover_begin = 1;      ///< first line a line-directive covers
  int cover_end = 1;        ///< last line it covers (comment end + 1)
  std::string rule;
  std::string line_text;    ///< trimmed source line (baseline key material)
  bool whole_file = false;
  bool used = false;        ///< suppressed at least one finding
};

/// Everything the whole-program stage needs from one scanned file.
struct FileLint {
  std::vector<Finding> findings;        ///< per-file rules, suppressions applied
  std::vector<SuppressionSite> sites;   ///< directives, usage tracked
  std::vector<IncludeEdge> edges;       ///< module-crossing #includes
  std::string module;                   ///< module_of(path, root)
};

/// Lint one already-scanned C++ file: run rules, then mark suppressions.
[[nodiscard]] std::vector<Finding> lint_cpp_source(const SourceFile& file);

/// Lint a .campaign file's text the same way (rules + '#' suppressions).
[[nodiscard]] std::vector<Finding> lint_campaign_text(const std::string& path,
                                                      const std::string& content);

/// Lint any supported file from disk; dispatches on extension. Unsupported
/// extensions produce no findings. Returns false on read errors.
bool lint_path(const std::string& path, std::vector<Finding>& out, std::string& error);

/// The full per-file stage: findings plus the suppression sites and include
/// edges the whole-program passes consume. `root` is stripped from `path`
/// when computing the module (empty for repo-root-relative scans).
bool lint_file(const std::string& path, const std::string& root, FileLint& out,
               std::string& error);

/// Recursively collect lintable files (.cpp/.cc/.hpp/.h/.hh/.campaign)
/// under `root` (or `root` itself when it is a file), sorted so output and
/// baselines are stable. Directories ending in `tests/lint/fixtures` are
/// skipped — fixture sources are deliberate rule violations, data rather
/// than code — unless `root` itself points inside one.
bool collect_files(const std::string& root, std::vector<std::string>& out, std::string& error);

// ---- Baseline ------------------------------------------------------------

class Baseline {
 public:
  /// Load entries from `path`. A missing file is not an error (empty
  /// baseline); a malformed line is.
  bool load(const std::string& path, std::string& error);

  /// Mark findings that match an entry as baselined. Each entry absorbs at
  /// most one finding (multiset semantics), so a *new* duplicate of a
  /// baselined pattern still fails the run.
  void apply(std::vector<Finding>& findings);

  /// lint-stale-baseline findings for entries apply() did not match. An
  /// entry whose preceding comment line carries
  /// `nomc-lint: allow(lint-stale-baseline)` comes back pre-suppressed.
  /// Call after apply().
  [[nodiscard]] std::vector<Finding> stale_findings() const;

  /// Serialize the unsuppressed findings as baseline entries.
  [[nodiscard]] static std::string serialize(const std::vector<Finding>& findings);

  [[nodiscard]] static std::string key(const Finding& finding);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string key;
    int line = 1;             ///< line in the baseline file
    bool allow_stale = false; ///< justified leftover; never reported stale
    bool matched = false;
  };
  std::string path_;
  std::vector<Entry> entries_;
};

// ---- Whole-program driver ------------------------------------------------

struct RunOptions {
  std::vector<std::string> roots;  ///< files or directories to scan
  std::string root_prefix;         ///< stripped before module mapping ("" = repo-relative)
  std::string layers_path;         ///< layering spec; empty skips the arch pass
  std::string baseline_path;       ///< baseline file; empty skips the baseline pass
  int jobs = 1;                    ///< sim::resolve_jobs semantics (0 = hardware)
};

struct RunResult {
  std::size_t file_count = 0;
  std::vector<Finding> findings;  ///< globally sorted: (path, line, col, rule)
};

/// Scan + per-file rules in parallel (sim::ParallelRunner), then the
/// whole-program passes: architecture rules against the layering spec,
/// lint-stale-suppress, baseline matching, lint-stale-baseline. The result
/// is byte-identical at any job count: per-file work is pure, results merge
/// in collection order, and the global passes are serial over that order.
bool run_lint(const RunOptions& options, RunResult& result, std::string& error);

/// `file:line:col: warning: message [rule-id]`
[[nodiscard]] std::string format_diagnostic(const Finding& finding);

}  // namespace nomc::lint
