// nomc-lint driver: runs the rule catalog over files, applies inline
// suppressions and the checked-in baseline, and renders clang-style
// diagnostics.
//
// Suppression syntax (inside any comment):
//   // nomc-lint: allow(rule-id)            this line and the next
//   // nomc-lint: allow(rule-a, rule-b)     several rules at once
//   // nomc-lint: allow-file(rule-id)       the whole file
// A suppression placed on its own line covers the following line, so it can
// sit above the code it justifies. Campaign specs use the same syntax after
// a '#'.
//
// Baseline: a text file of `path|rule-id|trimmed source line` entries.
// Findings matching a baseline entry (same file, rule, and line *content* —
// line numbers may drift) are reported as baselined and do not fail the
// run. `nomc-lint --write-baseline` regenerates it; entries should carry a
// justification comment above them (lines starting with '#').
#pragma once

#include <string>
#include <vector>

#include "lint/rules.hpp"
#include "lint/source.hpp"

namespace nomc::lint {

struct Finding {
  Diagnostic diagnostic;
  std::string line_text;   ///< trimmed source line (baseline key material)
  bool suppressed = false; ///< matched an inline allow()
  bool baselined = false;  ///< matched a baseline entry
};

/// Lint one already-scanned C++ file: run rules, then mark suppressions.
[[nodiscard]] std::vector<Finding> lint_cpp_source(const SourceFile& file);

/// Lint a .campaign file's text the same way (rules + '#' suppressions).
[[nodiscard]] std::vector<Finding> lint_campaign_text(const std::string& path,
                                                      const std::string& content);

/// Lint any supported file from disk; dispatches on extension. Unsupported
/// extensions produce no findings. Returns false on read errors.
bool lint_path(const std::string& path, std::vector<Finding>& out, std::string& error);

/// Recursively collect lintable files (.cpp/.cc/.hpp/.h/.hh/.campaign)
/// under `root` (or `root` itself when it is a file), sorted so output and
/// baselines are stable.
bool collect_files(const std::string& root, std::vector<std::string>& out, std::string& error);

// ---- Baseline ------------------------------------------------------------

class Baseline {
 public:
  /// Load entries from `path`. A missing file is not an error (empty
  /// baseline); a malformed line is.
  bool load(const std::string& path, std::string& error);

  /// Mark findings that match an entry as baselined. Each entry absorbs at
  /// most one finding (multiset semantics), so a *new* duplicate of a
  /// baselined pattern still fails the run.
  void apply(std::vector<Finding>& findings);

  /// Serialize the unsuppressed findings as baseline entries.
  [[nodiscard]] static std::string serialize(const std::vector<Finding>& findings);

  [[nodiscard]] static std::string key(const Finding& finding);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::vector<std::string> entries_;  ///< remaining unmatched keys
};

/// `file:line:col: warning: message [rule-id]`
[[nodiscard]] std::string format_diagnostic(const Finding& finding);

}  // namespace nomc::lint
