#include "lint/source.hpp"

#include <cctype>
#include <cstdio>
#include <utility>

namespace nomc::lint {

namespace {

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// The multi-character operators the rules must not split: "a->b" contains
/// no minus, "a<<b" no less-than. Longest match first.
constexpr const char* kMultiOps[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",  "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
};

}  // namespace

bool SourceFile::is_header() const {
  auto ends_with = [this](const char* suffix) {
    const std::string s{suffix};
    return path.size() >= s.size() && path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with(".hpp") || ends_with(".h") || ends_with(".hh");
}

const std::string& SourceFile::line_text(int line) const {
  static const std::string kEmpty;
  if (line < 1 || static_cast<std::size_t>(line) > lines.size()) return kEmpty;
  return lines[static_cast<std::size_t>(line) - 1];
}

SourceFile scan_source(std::string path, std::string content) {
  SourceFile out;
  out.path = std::move(path);
  out.content = std::move(content);

  // Split lines up front so diagnostics and baseline entries can quote them.
  {
    std::string current;
    for (const char c : out.content) {
      if (c == '\n') {
        out.lines.push_back(current);
        current.clear();
      } else {
        current += c;
      }
    }
    if (!current.empty()) out.lines.push_back(current);
  }

  const std::string& src = out.content;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  int col = 1;

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  while (i < n) {
    const char c = src[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v') {
      advance(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      Comment comment{.text = {}, .line = line, .col = col, .end_line = line};
      advance(2);
      while (i < n && src[i] != '\n') {
        comment.text += src[i];
        advance(1);
      }
      out.comments.push_back(std::move(comment));
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      Comment comment{.text = {}, .line = line, .col = col, .end_line = line};
      advance(2);
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
        comment.text += src[i];
        advance(1);
      }
      advance(2);  // closing */
      comment.end_line = line;
      out.comments.push_back(std::move(comment));
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      Token token{.kind = Token::Kind::kString, .text = {}, .line = line, .col = col};
      token.text += src[i];
      advance(1);  // R
      token.text += src[i];
      advance(1);  // opening quote
      std::string delim;
      while (i < n && src[i] != '(') {
        delim += src[i];
        token.text += src[i];
        advance(1);
      }
      const std::string closer = ")" + delim + "\"";
      while (i < n && src.compare(i, closer.size(), closer) != 0) {
        token.text += src[i];
        advance(1);
      }
      for (std::size_t k = 0; k < closer.size() && i < n; ++k) {
        token.text += src[i];
        advance(1);
      }
      out.tokens.push_back(std::move(token));
      continue;
    }
    // String / char literal with escape handling.
    if (c == '"' || c == '\'') {
      const char quote = c;
      Token token{.kind = quote == '"' ? Token::Kind::kString : Token::Kind::kCharLit,
                  .text = {},
                  .line = line,
                  .col = col};
      token.text += src[i];
      advance(1);
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          token.text += src[i];
          advance(1);
        }
        if (src[i] == '\n') break;  // unterminated literal: stop at the line end
        token.text += src[i];
        advance(1);
      }
      if (i < n && src[i] == quote) {
        token.text += src[i];
        advance(1);
      }
      out.tokens.push_back(std::move(token));
      continue;
    }
    // Identifier.
    if (ident_start(c)) {
      Token token{.kind = Token::Kind::kIdentifier, .text = {}, .line = line, .col = col};
      while (i < n && ident_char(src[i])) {
        token.text += src[i];
        advance(1);
      }
      out.tokens.push_back(std::move(token));
      continue;
    }
    // Number (decimal/hex/float; a leading '-' stays a separate punct token).
    if (digit(c) || (c == '.' && i + 1 < n && digit(src[i + 1]))) {
      Token token{.kind = Token::Kind::kNumber, .text = {}, .line = line, .col = col};
      while (i < n && (ident_char(src[i]) || src[i] == '.' ||
                       ((src[i] == '+' || src[i] == '-') && i > 0 &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' || src[i - 1] == 'p' ||
                         src[i - 1] == 'P') &&
                        !token.text.empty()))) {
        token.text += src[i];
        advance(1);
      }
      out.tokens.push_back(std::move(token));
      continue;
    }
    // Multi-character operator.
    bool matched = false;
    for (const char* op : kMultiOps) {
      const std::size_t len = std::char_traits<char>::length(op);
      if (src.compare(i, len, op) == 0) {
        out.tokens.push_back(
            Token{.kind = Token::Kind::kPunct, .text = op, .line = line, .col = col});
        advance(len);
        matched = true;
        break;
      }
    }
    if (matched) continue;
    // Single-character punctuation (also the fallback for any stray byte).
    out.tokens.push_back(
        Token{.kind = Token::Kind::kPunct, .text = std::string(1, c), .line = line, .col = col});
    advance(1);
  }

  return out;
}

bool scan_file(const std::string& path, SourceFile& out, std::string& error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    error = "cannot open " + path;
    return false;
  }
  std::string content;
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    content.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    error = "read error on " + path;
    return false;
  }
  out = scan_source(path, std::move(content));
  return true;
}

}  // namespace nomc::lint
