#include "lint/rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>

namespace nomc::lint {

namespace {

[[nodiscard]] std::string lower(const std::string& text) {
  std::string out = text;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

/// Suffix match on forward-slash paths, anchored at a path component.
[[nodiscard]] bool path_ends_with(const std::string& path, const std::string& suffix) {
  if (path.size() < suffix.size()) return false;
  if (path.compare(path.size() - suffix.size(), suffix.size(), suffix) != 0) return false;
  return path.size() == suffix.size() || path[path.size() - suffix.size() - 1] == '/';
}

[[nodiscard]] bool path_contains(const std::string& path, const std::string& piece) {
  return path.find(piece) != std::string::npos;
}

void report(std::vector<Diagnostic>& out, const SourceFile& file, int line, int col,
            const char* rule, std::string message) {
  out.push_back(Diagnostic{file.path, line, col, rule, std::move(message)});
}

// ---- det-rand / det-time-seed -------------------------------------------

// Identifiers whose mere presence outside src/sim/random.* breaks the
// reproducibility contract: libc RNG, nondeterministic seeding, and <random>
// engines/distributions (whose outputs differ between standard libraries —
// the repo implements its own distributions for exactly that reason).
constexpr std::array kBannedRandomIdents = {
    "rand",          "srand",          "rand_r",
    "drand48",       "lrand48",        "mrand48",
    "random_device", "random_shuffle", "mt19937",
    "mt19937_64",    "minstd_rand",    "minstd_rand0",
    "ranlux24",      "ranlux48",       "knuth_b",
    "default_random_engine",           "uniform_int_distribution",
    "uniform_real_distribution",       "normal_distribution",
    "bernoulli_distribution",          "binomial_distribution",
    "exponential_distribution",        "poisson_distribution",
    "geometric_distribution",          "discrete_distribution",
};

void check_det_rand(const SourceFile& file, std::vector<Diagnostic>& out) {
  if (path_contains(file.path, "sim/random.")) return;  // the one sanctioned home
  for (const Token& token : file.tokens) {
    if (token.kind != Token::Kind::kIdentifier) continue;
    for (const char* banned : kBannedRandomIdents) {
      if (token.text == banned) {
        report(out, file, token.line, token.col, "det-rand",
               "'" + token.text + "' is banned outside src/sim/random.* — draw from a " +
                   "sim::RandomStream so replays stay bit-identical");
        break;
      }
    }
  }
}

void check_det_time_seed(const SourceFile& file, std::vector<Diagnostic>& out) {
  if (path_contains(file.path, "sim/random.")) return;
  const auto& tokens = file.tokens;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdentifier || tokens[i].text != "time") continue;
    if (tokens[i + 1].text != "(") continue;
    const std::string& arg = tokens[i + 2].text;
    if (arg == "0" || arg == "nullptr" || arg == "NULL") {
      report(out, file, tokens[i].line, tokens[i].col, "det-time-seed",
             "wall-clock time(" + arg + ") — a time-derived value must never seed or " +
                 "perturb a simulation; use the campaign/trial seed plumbing");
    }
  }
}

// ---- det-unordered-output ------------------------------------------------

constexpr std::array kUnorderedTypes = {"unordered_map", "unordered_set", "unordered_multimap",
                                        "unordered_multiset"};

constexpr std::array kExactSinks = {"fprintf", "printf", "fputs",      "fputc",  "fwrite",
                                    "puts",    "cout",   "cerr",       "clog",   "ofstream",
                                    "append_line",       "export_csv", "submit"};

[[nodiscard]] bool is_unordered_type(const std::string& text) {
  return std::find(kUnorderedTypes.begin(), kUnorderedTypes.end(), text) != kUnorderedTypes.end();
}

[[nodiscard]] bool is_output_sink(const std::string& ident) {
  for (const char* sink : kExactSinks) {
    if (ident == sink) return true;
  }
  const std::string low = lower(ident);
  return low.find("checkpoint") != std::string::npos || low.find("csv") != std::string::npos ||
         low.find("store") != std::string::npos;
}

/// Template-bracket depth delta of one token ("<" +1, ">>" -2, ...).
[[nodiscard]] int angle_delta(const std::string& text) {
  if (text == "<") return 1;
  if (text == "<<") return 2;
  if (text == ">") return -1;
  if (text == ">>") return -2;
  return 0;
}

void check_det_unordered_output(const SourceFile& file, std::vector<Diagnostic>& out) {
  const auto& tokens = file.tokens;

  // Pass 1: names declared with an unordered container type in this file.
  std::set<std::string> unordered_names;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdentifier || !is_unordered_type(tokens[i].text)) continue;
    std::size_t j = i + 1;
    if (j >= tokens.size() || tokens[j].text != "<") continue;
    int depth = 0;
    for (; j < tokens.size(); ++j) {
      depth += angle_delta(tokens[j].text);
      if (depth <= 0) break;
    }
    // After the closing '>': optional &/* and the declared name.
    for (++j; j < tokens.size() && (tokens[j].text == "&" || tokens[j].text == "*"); ++j) {
    }
    if (j < tokens.size() && tokens[j].kind == Token::Kind::kIdentifier) {
      unordered_names.insert(tokens[j].text);
    }
  }

  // Pass 2: range-fors whose range names an unordered container and whose
  // body reaches an output sink.
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdentifier || tokens[i].text != "for") continue;
    if (tokens[i + 1].text != "(") continue;
    // Find the range ':' and the header's closing ')'.
    int paren = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < tokens.size(); ++j) {
      const std::string& t = tokens[j].text;
      if (t == "(") ++paren;
      if (t == ")" && --paren == 0) {
        close = j;
        break;
      }
      if (t == ":" && paren == 1 && colon == 0) colon = j;
    }
    if (colon == 0 || close == 0) continue;  // classic for or malformed
    bool unordered_range = false;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (tokens[j].kind != Token::Kind::kIdentifier) continue;
      if (is_unordered_type(tokens[j].text) || unordered_names.count(tokens[j].text) > 0) {
        unordered_range = true;
        break;
      }
    }
    if (!unordered_range) continue;
    // Body: braced block or single statement.
    std::size_t body_end = close;
    if (close + 1 < tokens.size() && tokens[close + 1].text == "{") {
      int braces = 0;
      for (std::size_t j = close + 1; j < tokens.size(); ++j) {
        if (tokens[j].text == "{") ++braces;
        if (tokens[j].text == "}" && --braces == 0) {
          body_end = j;
          break;
        }
      }
    } else {
      for (std::size_t j = close + 1; j < tokens.size(); ++j) {
        if (tokens[j].text == ";") {
          body_end = j;
          break;
        }
      }
    }
    for (std::size_t j = close + 1; j < body_end; ++j) {
      if (tokens[j].kind == Token::Kind::kIdentifier && is_output_sink(tokens[j].text)) {
        report(out, file, tokens[i].line, tokens[i].col, "det-unordered-output",
               "iterating an unordered container into an output path ('" + tokens[j].text +
                   "') — hash-map order is not part of the determinism contract; copy into "
                   "a sorted container first");
        break;
      }
    }
  }
}

// ---- det-raw-thread ------------------------------------------------------

// Raw threading primitives outside the sanctioned concurrency homes. All
// parallelism must flow through sim::ParallelRunner (trial/point fan-out)
// or sim::RegionExecutor (intra-trial region shards): both are deterministic
// by construction, while an ad-hoc std::thread/std::async invites exactly
// the thread-timing dependence the twin-run tests exist to rule out.
// std::thread::hardware_concurrency() is a pure query and stays legal.
void check_det_raw_thread(const SourceFile& file, std::vector<Diagnostic>& out) {
  if (path_contains(file.path, "sim/parallel.") ||
      path_contains(file.path, "sim/region_executor.")) {
    return;
  }
  const auto& tokens = file.tokens;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdentifier || tokens[i].text != "std") continue;
    if (tokens[i + 1].text != "::") continue;
    const std::string& name = tokens[i + 2].text;
    if (name != "thread" && name != "jthread" && name != "async") continue;
    if (name == "thread" && i + 4 < tokens.size() && tokens[i + 3].text == "::" &&
        tokens[i + 4].text == "hardware_concurrency") {
      continue;
    }
    report(out, file, tokens[i].line, tokens[i].col, "det-raw-thread",
           "raw std::" + name +
               " outside src/sim/parallel* and src/sim/region_executor* — use "
               "sim::ParallelRunner or sim::RegionExecutor so execution stays "
               "deterministic at any worker count");
  }
}

// ---- svc-raw-socket ------------------------------------------------------

// Raw socket syscalls outside the sanctioned socket home. All connection
// plumbing must flow through svc::Socket and the helpers in src/svc/ — one
// place owns fd lifetimes, non-blocking setup, and EINTR handling, and the
// rest of the tree talks sessions and byte buffers. Member calls like
// client.connect(...) are legal: the rule targets the bare syscall shape
// (`socket(`, `::bind(`, ...), not methods that happen to share a name.
void check_svc_raw_socket(const SourceFile& file, std::vector<Diagnostic>& out) {
  if (path_contains(file.path, "src/svc/")) return;
  const auto& tokens = file.tokens;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdentifier) continue;
    const std::string& name = tokens[i].text;
    if (name != "socket" && name != "bind" && name != "listen" && name != "accept" &&
        name != "connect") {
      continue;
    }
    if (tokens[i + 1].text != "(") continue;
    if (i > 0) {
      const std::string& before = tokens[i - 1].text;
      if (before == "." || before == "->") continue;  // member call on an object
      if (before == "::" && i > 1 && tokens[i - 2].text == "std") continue;  // std::bind
    }
    report(out, file, tokens[i].line, tokens[i].col, "svc-raw-socket",
           "raw " + name +
               "() outside src/svc/ — route connections through svc::Socket "
               "(src/svc/socket.hpp) so fd lifetimes and non-blocking setup "
               "live in one place");
  }
}

// ---- svc-raw-fork --------------------------------------------------------

// Raw process-control syscalls outside the sanctioned supervision home. The
// campaign service forks worker processes, and everything fragile about
// that — pipe plumbing, exec failure, SIGKILL + reap, respawn — lives in
// svc::WorkerPool (src/svc/worker_pool.cpp) so there is exactly one place
// where a child can leak or a wait can hang. Same bare-call shape as
// svc-raw-socket: member calls like pool.fork_thing(...) are legal.
void check_svc_raw_fork(const SourceFile& file, std::vector<Diagnostic>& out) {
  if (path_ends_with(file.path, "src/svc/worker_pool.cpp")) return;
  const auto& tokens = file.tokens;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdentifier) continue;
    const std::string& name = tokens[i].text;
    if (name != "fork" && name != "vfork" && name != "execv" && name != "execvp" &&
        name != "execve" && name != "execl" && name != "execlp" && name != "execle" &&
        name != "execvpe" && name != "waitpid" && name != "wait4") {
      continue;
    }
    if (tokens[i + 1].text != "(") continue;
    if (i > 0) {
      const std::string& before = tokens[i - 1].text;
      if (before == "." || before == "->") continue;  // member call on an object
      if (before == "::" && i > 1 && tokens[i - 2].text == "std") continue;
    }
    report(out, file, tokens[i].line, tokens[i].col, "svc-raw-fork",
           "raw " + name +
               "() outside src/svc/worker_pool.cpp — route worker processes "
               "through svc::WorkerPool so child lifetimes, pipe plumbing, "
               "and reaping live in one place");
  }
}

// ---- det-g-format --------------------------------------------------------

void check_det_g_format(const SourceFile& file, std::vector<Diagnostic>& out) {
  const bool is_result_store = path_ends_with(file.path, "exp/result_store.cpp");
  for (const Token& token : file.tokens) {
    if (token.kind != Token::Kind::kString) continue;
    const std::string& text = token.text;
    for (std::size_t i = 0; i + 1 < text.size(); ++i) {
      if (text[i] != '%') continue;
      if (text[i + 1] == '%') {
        ++i;
        continue;
      }
      std::size_t j = i + 1;
      auto in = [&](const char* set) {
        return j < text.size() && std::strchr(set, text[j]) != nullptr;
      };
      while (in("-+ #0'")) ++j;
      while (in("0123456789*")) ++j;
      if (j < text.size() && text[j] == '.') {
        ++j;
        while (in("0123456789*")) ++j;
      }
      while (in("hlLqjzt")) ++j;
      if (j < text.size() && (text[j] == 'g' || text[j] == 'G')) {
        const std::string spec = text.substr(i, j - i + 1);
        // Built in two pieces so this file does not flag itself.
        static const std::string kPinnedSpec = std::string{"%.17"} + 'g';
        if (is_result_store && spec == kPinnedSpec) {
          i = j;
          continue;
        }
        report(out, file, token.line, token.col, "det-g-format",
               "'" + spec + "' float formatting — shortest-round-trip output belongs only " +
                   "to exp::result_store's pinned 17-digit format; use a fixed precision " +
                   "or exp::json_append_double");
        i = j;
      }
    }
  }
}

// ---- unit-dbm-mw-mix -----------------------------------------------------

enum class UnitClass { kNone, kLogLevel, kLinearPower };

[[nodiscard]] UnitClass classify_unit(const std::string& ident) {
  const std::string low = lower(ident);
  if (low.find("dbm") != std::string::npos) return UnitClass::kLogLevel;
  if (low == "mw" || low.find("milliwatt") != std::string::npos) return UnitClass::kLinearPower;
  if (low.size() >= 3 && low.compare(low.size() - 3, 3, "_mw") == 0) return UnitClass::kLinearPower;
  if (low.compare(0, 3, "mw_") == 0) return UnitClass::kLinearPower;
  if (low.find("_mw_") != std::string::npos) return UnitClass::kLinearPower;
  return UnitClass::kNone;
}

[[nodiscard]] bool is_unit_conversion(const std::string& ident) {
  return ident == "to_milliwatts" || ident == "to_dbm" || ident == "to_db";
}

/// Tokens an operand chain may span; anything else ends the scan.
[[nodiscard]] bool chain_token(const Token& token) {
  if (token.kind == Token::Kind::kIdentifier || token.kind == Token::Kind::kNumber) return true;
  const std::string& t = token.text;
  return t == "." || t == "->" || t == "::" || t == "[" || t == "]" || t == "(" || t == ")";
}

struct OperandScan {
  UnitClass unit = UnitClass::kNone;
  bool conversion = false;  ///< a to_milliwatts/to_dbm call appears in the chain
};

[[nodiscard]] OperandScan scan_left(const std::vector<Token>& tokens, std::size_t op) {
  OperandScan result;
  int depth = 0;
  for (std::size_t j = op; j-- > 0;) {
    if (!chain_token(tokens[j])) break;
    if (tokens[j].text == ")") ++depth;
    if (tokens[j].text == "(" && --depth < 0) break;
    if (tokens[j].kind == Token::Kind::kIdentifier) {
      if (is_unit_conversion(tokens[j].text)) result.conversion = true;
      if (result.unit == UnitClass::kNone) result.unit = classify_unit(tokens[j].text);
    }
  }
  return result;
}

[[nodiscard]] OperandScan scan_right(const std::vector<Token>& tokens, std::size_t op) {
  OperandScan result;
  int depth = 0;
  for (std::size_t j = op + 1; j < tokens.size(); ++j) {
    if (!chain_token(tokens[j])) break;
    if (tokens[j].text == "(") ++depth;
    if (tokens[j].text == ")" && --depth < 0) break;
    if (tokens[j].kind == Token::Kind::kIdentifier) {
      if (is_unit_conversion(tokens[j].text)) result.conversion = true;
      if (result.unit == UnitClass::kNone) result.unit = classify_unit(tokens[j].text);
    }
  }
  return result;
}

void check_unit_dbm_mw_mix(const SourceFile& file, std::vector<Diagnostic>& out) {
  const auto& tokens = file.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (tokens[i].kind != Token::Kind::kPunct || (t != "+" && t != "-" && t != "+=" && t != "-="))
      continue;
    const OperandScan left = scan_left(tokens, i);
    const OperandScan right = scan_right(tokens, i);
    if (left.conversion || right.conversion) continue;
    const bool mixed = (left.unit == UnitClass::kLogLevel && right.unit == UnitClass::kLinearPower) ||
                       (left.unit == UnitClass::kLinearPower && right.unit == UnitClass::kLogLevel);
    if (mixed) {
      report(out, file, tokens[i].line, tokens[i].col, "unit-dbm-mw-mix",
             "'" + t + "' between a dBm-named and a mW-named quantity — log levels and " +
                 "linear power never add directly; convert through phy::to_milliwatts / " +
                 "phy::to_dbm");
    }
  }
}

// ---- unit-naked-cca ------------------------------------------------------

void check_unit_naked_cca(const SourceFile& file, std::vector<Diagnostic>& out) {
  if (path_ends_with(file.path, "dcn/config.hpp") || path_ends_with(file.path, "mac/cca.hpp"))
    return;
  const auto& tokens = file.tokens;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kNumber) continue;
    if (tokens[i - 1].text != "-") continue;
    const double value = std::strtod(tokens[i].text.c_str(), nullptr);
    if (value != 77.0 && value != 91.0) continue;
    // Context: a cca/threshold mention within three lines either side.
    bool cca_context = false;
    for (const Token& other : tokens) {
      if (other.line < tokens[i].line - 3) continue;
      if (other.line > tokens[i].line + 3) break;
      if (other.kind != Token::Kind::kIdentifier && other.kind != Token::Kind::kString) continue;
      const std::string low = lower(other.text);
      if (low.find("cca") != std::string::npos || low.find("threshold") != std::string::npos) {
        cca_context = true;
        break;
      }
    }
    if (!cca_context) continue;
    report(out, file, tokens[i - 1].line, tokens[i - 1].col, "unit-naked-cca",
           "naked CCA-threshold literal -" + tokens[i].text +
               " — use mac::kZigbeeDefaultCcaThreshold or the dcn::DcnConfig fields so a "
               "recalibration happens in one place");
  }
}

// ---- hygiene -------------------------------------------------------------

void check_hyg_pragma_once(const SourceFile& file, std::vector<Diagnostic>& out) {
  if (!file.is_header()) return;
  const auto& tokens = file.tokens;
  const bool ok = tokens.size() >= 3 && tokens[0].text == "#" && tokens[1].text == "pragma" &&
                  tokens[2].text == "once";
  if (!ok) {
    report(out, file, 1, 1, "hyg-pragma-once",
           "header's first directive is not #pragma once — this repo standardizes on "
           "pragma guards");
  }
}

void check_hyg_using_namespace_std(const SourceFile& file, std::vector<Diagnostic>& out) {
  if (!file.is_header()) return;
  const auto& tokens = file.tokens;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].text == "using" && tokens[i + 1].text == "namespace" &&
        tokens[i + 2].text == "std") {
      report(out, file, tokens[i].line, tokens[i].col, "hyg-using-namespace-std",
             "'using namespace std' in a header leaks into every includer — qualify names "
             "instead");
    }
  }
}

void check_hyg_todo_issue(const SourceFile& file, std::vector<Diagnostic>& out) {
  for (const Comment& comment : file.comments) {
    for (const char* marker : {"TODO", "FIXME"}) {
      const std::string m{marker};
      for (std::size_t pos = comment.text.find(m); pos != std::string::npos;
           pos = comment.text.find(m, pos + m.size())) {
        // Word boundary on the left.
        if (pos > 0) {
          const char before = comment.text[pos - 1];
          if (std::isalnum(static_cast<unsigned char>(before)) != 0 || before == '_') continue;
        }
        const std::size_t after_pos = pos + m.size();
        const char after = after_pos < comment.text.size() ? comment.text[after_pos] : '\0';
        if (after == '(') {
          // Compliant when the tag is non-empty: TODO(#42), TODO(name).
          const std::size_t close = comment.text.find(')', after_pos);
          if (close != std::string::npos && close > after_pos + 1) continue;
        } else if (after != ':' && after != ' ' && after != '\0' && after != '\n') {
          continue;  // part of a longer word or a slash-joined mention
        }
        report(out, file, comment.line, comment.col, "hyg-todo-issue",
               std::string{marker} +
                   " without an owner or issue tag — write " + marker +
                   "(#issue) or " + marker + "(name) so it can be tracked");
      }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"det-rand", "nondeterministic or stdlib RNG outside src/sim/random.*"},
      {"det-time-seed", "wall-clock time() used as a seed value"},
      {"det-unordered-output", "unordered-container iteration feeding an output path"},
      {"det-raw-thread", "raw std::thread/std::async outside the sanctioned runners"},
      {"det-g-format", "'g'-conversion float formatting outside the pinned store format"},
      {"svc-raw-socket", "raw socket/bind/listen/accept/connect calls outside src/svc/"},
      {"svc-raw-fork", "raw fork/exec*/waitpid calls outside src/svc/worker_pool.cpp"},
      {"unit-dbm-mw-mix", "+/- between dBm-named and mW-named quantities"},
      {"unit-naked-cca", "naked CCA-threshold literal outside the config headers"},
      {"hyg-pragma-once", "header missing #pragma once as its first directive"},
      {"hyg-using-namespace-std", "'using namespace std' in a header"},
      {"hyg-todo-issue", "TODO/FIXME without an owner or issue tag"},
      {"golden-regen-note", "golden campaign spec missing its regeneration command comment"},
      {"arch-layer-violation", "module include edge not permitted by the layering spec"},
      {"arch-cycle", "dependency cycle in the module include graph"},
      {"arch-missing-spec", "module on disk with no entry in tools/nomc_layers.txt"},
      {"lint-stale-suppress", "allow() directive that suppresses nothing (or names no known rule)"},
      {"lint-stale-baseline", "baseline entry that matches no finding"},
  };
  return kCatalog;
}

bool known_rule(const std::string& id) {
  for (const RuleInfo& rule : rule_catalog()) {
    if (id == rule.id) return true;
  }
  return false;
}

void run_cpp_rules(const SourceFile& file, std::vector<Diagnostic>& out) {
  check_det_rand(file, out);
  check_det_time_seed(file, out);
  check_det_unordered_output(file, out);
  check_det_raw_thread(file, out);
  check_svc_raw_socket(file, out);
  check_svc_raw_fork(file, out);
  check_det_g_format(file, out);
  check_unit_dbm_mw_mix(file, out);
  check_unit_naked_cca(file, out);
  check_hyg_pragma_once(file, out);
  check_hyg_using_namespace_std(file, out);
  check_hyg_todo_issue(file, out);
}

void run_campaign_rules(const std::string& path, const std::string& content,
                        std::vector<Diagnostic>& out) {
  if (!path_contains(path, "tests/golden/")) return;
  // The regeneration command must live in the leading '#' comment block so
  // the ctest guard (tests/golden/run_and_diff.cmake) can print it on drift.
  std::string header;
  std::size_t start = 0;
  while (start < content.size()) {
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    const std::string line = content.substr(start, end - start);
    std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] != '#') break;
    header += line;
    header += '\n';
    start = end + 1;
  }
  if (header.find("nomc-campaign run") == std::string::npos ||
      header.find("--overwrite") == std::string::npos) {
    out.push_back(Diagnostic{path, 1, 1, "golden-regen-note",
                             "golden spec header comment must state its regeneration command "
                             "(`nomc-campaign run <spec> --overwrite ...`) — run_and_diff.cmake "
                             "prints it when the store drifts"});
  }
}

}  // namespace nomc::lint
