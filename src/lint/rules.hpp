// nomc-lint rule catalog.
//
// Each rule is a pure function from a scanned SourceFile to diagnostics.
// Rules are heuristic by design — they work on the token stream, not a full
// AST — so every rule is named, documented, and individually suppressible
// with `// nomc-lint: allow(rule-id)` (see driver.hpp). The catalog:
//
// Determinism (the campaign store must be byte-identical at any job split):
//   det-rand              banned nondeterministic / stdlib RNG outside
//                         src/sim/random.* (rand, random_device, <random>
//                         engines and distributions, random_shuffle)
//   det-time-seed         wall-clock used as a seed: time(0)/time(nullptr)
//   det-unordered-output  range-for over an unordered container whose loop
//                         body reaches an output sink (store/checkpoint/
//                         CSV/stdio) — iteration order is not deterministic
//   det-raw-thread        std::thread/std::jthread/std::async outside
//                         src/sim/parallel* and src/sim/region_executor* —
//                         parallelism must flow through the deterministic
//                         runners (std::thread::hardware_concurrency stays
//                         legal; it is a pure query)
//   det-g-format          'g'-conversion float formatting anywhere except
//                         exp::result_store's pinned %.17g — shortest-round-
//                         trip output elsewhere silently loses precision
//
// Service layering (the campaign service owns all connection plumbing):
//   svc-raw-socket        bare socket()/bind()/listen()/accept()/connect()
//                         calls outside src/svc/ — connections must go
//                         through svc::Socket and the src/svc helpers so fd
//                         lifetimes and non-blocking setup live in one place
//                         (member calls like client.connect() stay legal)
//   svc-raw-fork          bare fork()/vfork()/exec*()/waitpid()/wait4()
//                         calls outside src/svc/worker_pool.cpp — worker
//                         processes must go through svc::WorkerPool so child
//                         lifetimes, pipe plumbing, and reaping live in one
//                         place (member calls stay legal)
//
// Unit safety (paper arithmetic: dBm is log scale, mW is linear):
//   unit-dbm-mw-mix       + or - between an identifier named like a dBm
//                         quantity and one named like milliwatts without a
//                         phy::to_milliwatts/to_dbm conversion in the
//                         expression
//   unit-naked-cca        a naked CCA-threshold literal (-77, -91) next to
//                         cca/threshold context outside dcn/config.hpp and
//                         mac/cca.hpp — use the named constants
//
// Hygiene:
//   hyg-pragma-once       header without #pragma once as its first directive
//   hyg-using-namespace-std  `using namespace std` in a header
//   hyg-todo-issue        TODO-/FIXME-marker without an owner/issue tag;
//                         compliant forms are TODO(#42) and TODO(name)
//
// Golden stores:
//   golden-regen-note     tests/golden/*.campaign spec missing the
//                         regeneration command (`nomc-campaign run ...
//                         --overwrite`) in its header comment — the ctest
//                         guard prints that command on byte drift
//
// Architecture (whole-program: the module include graph vs the checked-in
// layering spec tools/nomc_layers.txt — see lint/graph.hpp):
//   arch-layer-violation  a quoted #include crossing modules along an edge
//                         the spec does not permit
//   arch-cycle            a cycle in the module graph, reported with the
//                         full module path
//   arch-missing-spec     a module with files on disk but no spec entry
//
// Lint hygiene (whole-program: suppressions and the baseline must stay
// live, or dead ones hide tomorrow's real finding — see lint/driver.hpp):
//   lint-stale-suppress   an allow()/allow-file() directive whose rule
//                         produces no finding on the lines it covers, or
//                         that names a rule not in this catalog
//   lint-stale-baseline   a baseline entry that no longer matches any
//                         finding
//
// nomc-lint: allow-file(lint-stale-suppress) — the `allow(rule-id)` example
// above is quoted documentation, not a live suppression.
#pragma once

#include <string>
#include <vector>

#include "lint/source.hpp"

namespace nomc::lint {

struct Diagnostic {
  std::string path;
  int line = 1;
  int col = 1;
  std::string rule_id;
  std::string message;
  /// Baseline key material for findings whose anchor line is not a scanned
  /// source line (the graph and stale passes set it); when empty, the
  /// driver derives it from the anchored source line.
  std::string key_text;
};

struct RuleInfo {
  const char* id;
  const char* summary;
};

/// All rules, in catalog order (drives --list-rules and the docs).
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

/// True when `id` names a catalog rule.
[[nodiscard]] bool known_rule(const std::string& id);

/// Run every C++ rule applicable to `file` (path-based exemptions are the
/// rules' own business). Diagnostics are appended in source order.
void run_cpp_rules(const SourceFile& file, std::vector<Diagnostic>& out);

/// Run the campaign-spec rules (golden-regen-note) on a .campaign file.
void run_campaign_rules(const std::string& path, const std::string& content,
                        std::vector<Diagnostic>& out);

}  // namespace nomc::lint
