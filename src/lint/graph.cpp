#include "lint/graph.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <tuple>

namespace nomc::lint {

namespace {

[[nodiscard]] std::string trim(const std::string& text) {
  const std::size_t first = text.find_first_not_of(" \t\r");
  if (first == std::string::npos) return {};
  const std::size_t last = text.find_last_not_of(" \t\r");
  return text.substr(first, last - first + 1);
}

/// Strip `root` (with or without a trailing '/') from the front of `path`.
[[nodiscard]] std::string strip_root(const std::string& path, const std::string& root) {
  if (root.empty()) return path;
  std::string prefix = root;
  if (prefix.back() != '/') prefix += '/';
  if (path.compare(0, prefix.size(), prefix) == 0) return path.substr(prefix.size());
  return path;
}

[[nodiscard]] bool valid_module_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::string module_of(const std::string& path, const std::string& root) {
  const std::string rel = strip_root(path, root);
  const std::size_t first = rel.find('/');
  if (first == std::string::npos) return {};  // bare filename: no module
  std::string head = rel.substr(0, first);
  if (head != "src") return head;
  const std::size_t second = rel.find('/', first + 1);
  if (second == std::string::npos) return {};  // src/<file>: no module dir
  return rel.substr(first + 1, second - first - 1);
}

void collect_include_edges(const SourceFile& file, const std::string& root,
                           std::vector<IncludeEdge>& out) {
  const std::string from = module_of(file.path, root);
  if (from.empty()) return;
  const auto& tokens = file.tokens;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].text != "#" || tokens[i + 1].text != "include") continue;
    const Token& target = tokens[i + 2];
    if (target.kind != Token::Kind::kString) continue;  // <...> system include
    if (target.text.size() < 2) continue;
    const std::string inner = target.text.substr(1, target.text.size() - 2);
    const std::size_t slash = inner.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    const std::string to = inner.substr(0, slash);
    if (to.empty() || to == from) continue;
    IncludeEdge edge;
    edge.path = file.path;
    edge.line = tokens[i].line;
    edge.col = tokens[i].col;
    edge.from = from;
    edge.to = to;
    edge.line_text = trim(file.line_text(tokens[i].line));
    out.push_back(std::move(edge));
  }
}

bool LayerSpec::parse(const std::string& path, const std::string& content, std::string& error) {
  path_ = path;
  allowed_.clear();
  allows_missing_ = false;
  std::map<std::string, std::set<std::string>> parsed;
  std::size_t start = 0;
  int line_number = 0;
  while (start < content.size() || (start == 0 && content.empty())) {
    std::size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    std::string line = trim(content.substr(start, end - start));
    ++line_number;
    start = end + 1;
    // Comments run from '#' to end of line, full-line or trailing.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      if (line.find("nomc-lint:", hash) != std::string::npos &&
          line.find("allow(arch-missing-spec)", hash) != std::string::npos) {
        allows_missing_ = true;
      }
      line = trim(line.substr(0, hash));
    }
    if (line.empty()) {
      if (end == content.size()) break;
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      error = path + ":" + std::to_string(line_number) + ": expected `module: deps...`";
      return false;
    }
    const std::string module = trim(line.substr(0, colon));
    if (!valid_module_name(module)) {
      error = path + ":" + std::to_string(line_number) + ": bad module name '" + module + "'";
      return false;
    }
    if (parsed.count(module) > 0) {
      error = path + ":" + std::to_string(line_number) + ": duplicate module '" + module + "'";
      return false;
    }
    std::set<std::string> deps;
    std::string rest = line.substr(colon + 1);
    std::size_t pos = 0;
    while (pos < rest.size()) {
      while (pos < rest.size() && (rest[pos] == ' ' || rest[pos] == '\t')) ++pos;
      std::size_t word_end = pos;
      while (word_end < rest.size() && rest[word_end] != ' ' && rest[word_end] != '\t') ++word_end;
      if (word_end > pos) {
        const std::string dep = rest.substr(pos, word_end - pos);
        if (dep != "*" && !valid_module_name(dep)) {
          error = path + ":" + std::to_string(line_number) + ": bad dependency name '" + dep + "'";
          return false;
        }
        deps.insert(dep);
      }
      pos = word_end;
    }
    parsed.emplace(module, std::move(deps));
    if (end == content.size()) break;
  }
  allowed_.assign(parsed.begin(), parsed.end());
  return true;
}

bool LayerSpec::load(const std::string& path, std::string& error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    error = "cannot read layering spec " + path;
    return false;
  }
  std::string content;
  char buffer[1 << 14];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) content.append(buffer, got);
  std::fclose(file);
  return parse(path, content, error);
}

namespace {

using SpecEntry = std::pair<std::string, std::set<std::string>>;

[[nodiscard]] const SpecEntry* find_entry(const std::vector<SpecEntry>& entries,
                                          const std::string& module) {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), module,
      [](const SpecEntry& entry, const std::string& key) { return entry.first < key; });
  if (it == entries.end() || it->first != module) return nullptr;
  return &*it;
}

}  // namespace

bool LayerSpec::has(const std::string& module) const {
  return find_entry(allowed_, module) != nullptr;
}

bool LayerSpec::allows(const std::string& from, const std::string& to) const {
  if (from == to) return true;
  const SpecEntry* entry = find_entry(allowed_, from);
  if (entry == nullptr) return false;
  return entry->second.count(to) > 0 || entry->second.count("*") > 0;
}

std::string LayerSpec::allowed_list(const std::string& from) const {
  const SpecEntry* it = find_entry(allowed_, from);
  if (it == nullptr) return "(module not in spec)";
  if (it->second.empty()) return "(none)";
  std::string out;
  for (const std::string& dep : it->second) {
    if (!out.empty()) out += ' ';
    out += dep;
  }
  return out;
}

namespace {

using Adjacency = std::map<std::string, std::set<std::string>>;

/// Shortest cycle through `origin` (BFS over the module graph); empty when
/// none exists. Deterministic: neighbors expand in sorted order.
[[nodiscard]] std::vector<std::string> shortest_cycle(const Adjacency& graph,
                                                      const std::string& origin) {
  std::map<std::string, std::string> parent;  // node -> predecessor on BFS tree
  std::deque<std::string> queue;
  queue.push_back(origin);
  parent[origin] = origin;
  while (!queue.empty()) {
    const std::string node = queue.front();
    queue.pop_front();
    const auto it = graph.find(node);
    if (it == graph.end()) continue;
    for (const std::string& next : it->second) {
      if (next == origin) {
        // Walking the parent chain yields origin .. node reversed; the
        // closing origin goes on after the middle is flipped back.
        std::vector<std::string> cycle{origin};
        for (std::string walk = node; walk != origin; walk = parent[walk]) {
          cycle.push_back(walk);
        }
        std::reverse(cycle.begin() + 1, cycle.end());
        cycle.push_back(origin);
        return cycle;
      }
      if (parent.count(next) > 0) continue;
      parent[next] = node;
      queue.push_back(next);
    }
  }
  return {};
}

}  // namespace

void run_graph_rules(const LayerSpec& spec, const std::vector<IncludeEdge>& edges,
                     const std::set<std::string>& modules_on_disk,
                     std::vector<Diagnostic>& out) {
  // arch-missing-spec: every module with files on disk needs a spec entry.
  for (const std::string& module : modules_on_disk) {
    if (spec.has(module)) continue;
    Diagnostic d;
    d.path = spec.path();
    d.line = 1;
    d.col = 1;
    d.rule_id = "arch-missing-spec";
    d.message = "module '" + module + "' exists on disk but has no entry in " + spec.path() +
                " — place it in the layering spec";
    d.key_text = module;
    out.push_back(std::move(d));
  }

  // arch-layer-violation: every module-crossing include must be permitted.
  Adjacency graph;
  for (const IncludeEdge& edge : edges) {
    if (modules_on_disk.count(edge.to) == 0 && !spec.has(edge.to)) continue;  // external
    graph[edge.from].insert(edge.to);
    if (!spec.has(edge.from)) continue;  // reported as arch-missing-spec instead
    if (spec.allows(edge.from, edge.to)) continue;
    Diagnostic d;
    d.path = edge.path;
    d.line = edge.line;
    d.col = edge.col;
    d.rule_id = "arch-layer-violation";
    d.message = "module '" + edge.from + "' may not include module '" + edge.to +
                "' (allowed by " + spec.path() + ": " + spec.allowed_list(edge.from) + ")";
    d.key_text = edge.line_text;
    out.push_back(std::move(d));
  }

  // arch-cycle: report one representative (shortest) cycle through the
  // smallest module that sits on any cycle; fixing it re-runs the pass, so
  // nests of cycles drain deterministically. Self-edges cannot occur (an
  // edge with from == to is never collected).
  std::set<std::string> reported;  // modules already covered by a reported cycle
  for (const auto& [module, targets] : graph) {
    (void)targets;
    if (reported.count(module) > 0) continue;
    const std::vector<std::string> cycle = shortest_cycle(graph, module);
    if (cycle.empty()) continue;
    for (const std::string& node : cycle) reported.insert(node);
    // Anchor the diagnostic at the first include directive that realizes
    // the cycle's first edge (smallest path, then line).
    const IncludeEdge* anchor = nullptr;
    for (const IncludeEdge& edge : edges) {
      if (edge.from != cycle[0] || edge.to != cycle[1]) continue;
      if (anchor == nullptr || std::tie(edge.path, edge.line, edge.col) <
                                   std::tie(anchor->path, anchor->line, anchor->col)) {
        anchor = &edge;
      }
    }
    std::string path_text;
    for (const std::string& node : cycle) {
      if (!path_text.empty()) path_text += " -> ";
      path_text += node;
    }
    Diagnostic d;
    d.path = anchor != nullptr ? anchor->path : spec.path();
    d.line = anchor != nullptr ? anchor->line : 1;
    d.col = anchor != nullptr ? anchor->col : 1;
    d.rule_id = "arch-cycle";
    d.message = "module dependency cycle: " + path_text +
                " — break the cycle (invert the weaker dependency or split a module)";
    d.key_text = anchor != nullptr ? anchor->line_text : path_text;
    out.push_back(std::move(d));
  }
}

}  // namespace nomc::lint
