// Lightweight C++ source scanner for nomc-lint.
//
// Not a parser: a single-pass tokenizer that understands just enough C++
// lexing — line/block comments, string/char literals (including raw
// strings), identifiers, numbers, and multi-character operators — to let
// rules reason about code tokens without being fooled by comment or string
// content. Every token and comment carries a 1-based line:col so findings
// render as clickable clang-style diagnostics.
#pragma once

#include <string>
#include <vector>

namespace nomc::lint {

struct Token {
  enum class Kind { kIdentifier, kNumber, kString, kCharLit, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;  ///< verbatim spelling (string tokens keep their quotes)
  int line = 1;
  int col = 1;
};

struct Comment {
  std::string text;  ///< contents without the // or /* */ delimiters
  int line = 1;      ///< line where the comment starts
  int col = 1;
  int end_line = 1;  ///< last line the comment touches (== line for //)
};

/// One scanned file: raw bytes plus the token/comment streams rules walk.
struct SourceFile {
  std::string path;
  std::string content;
  std::vector<std::string> lines;  ///< content split on '\n' (no terminator)
  std::vector<Token> tokens;
  std::vector<Comment> comments;

  /// True when `path` ends in any of the given extensions.
  [[nodiscard]] bool is_header() const;

  /// The verbatim source line (1-based); empty when out of range.
  [[nodiscard]] const std::string& line_text(int line) const;
};

/// Tokenize `content` as C++ source. Never fails: bytes that fit no token
/// class are consumed as single-character punctuation.
[[nodiscard]] SourceFile scan_source(std::string path, std::string content);

/// Read and scan a file from disk. Returns false (and sets `error`) when the
/// file cannot be read.
bool scan_file(const std::string& path, SourceFile& out, std::string& error);

}  // namespace nomc::lint
