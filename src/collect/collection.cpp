#include "collect/collection.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace nomc::collect {
namespace {

constexpr std::size_t kRelayQueueCap = 24;  // mote-sized forwarding buffer

}  // namespace

CollectionTree::CollectionTree(sim::Scheduler& scheduler, phy::Medium& medium,
                               phy::Mhz channel, phy::Vec2 sink_pos,
                               const CollectionConfig& config, sim::RandomStream& placement,
                               std::uint64_t seed, std::uint64_t& stream)
    : scheduler_{scheduler}, channel_{channel}, config_{config} {
  mac::CsmaParams params;
  params.max_queue = kRelayQueueCap;
  params.access_failure_retries = 3;  // deployed-stack behaviour (see CsmaParams)
  if (config_.scheme == net::Scheme::kCarrierSense) {
    params.cca_mode = mac::CcaMode::kCarrierSense;
  }

  // Sink-side receiver for this tree (the multi-radio root).
  sink_id_ = medium.add_node(sink_pos);
  phy::RadioConfig radio_config;
  radio_config.channel = channel_;
  sink_radio_ = std::make_unique<phy::Radio>(scheduler_, medium,
                                             sim::RandomStream{seed, stream++}, sink_id_,
                                             radio_config);
  sink_cca_ = std::make_unique<mac::FixedCcaThreshold>(config_.fixed_cca);
  sink_mac_ = std::make_unique<mac::CsmaMac>(scheduler_, medium, *sink_radio_,
                                             sim::RandomStream{seed, stream++}, *sink_cca_,
                                             params);
  sink_mac_->set_tx_power(config_.tx_power);
  sink_mac_->set_delivery_hook([this](const phy::RxResult&) { ++collected_; });

  // Scatter sensors around the sink; build parents nearest-first so every
  // forwarding chain strictly approaches the sink (guaranteed acyclic).
  struct Placed {
    phy::Vec2 pos;
    double dist;
    std::size_t index;
  };
  std::vector<Placed> placed;
  for (int i = 0; i < config_.nodes_per_tree; ++i) {
    const double angle = placement.uniform(0.0, 2.0 * std::numbers::pi);
    const double radius = placement.uniform(1.0, config_.field_radius_m);
    const phy::Vec2 pos{sink_pos.x + radius * std::cos(angle),
                        sink_pos.y + radius * std::sin(angle)};
    placed.push_back({pos, distance(pos, sink_pos), static_cast<std::size_t>(i)});
  }
  std::sort(placed.begin(), placed.end(),
            [](const Placed& a, const Placed& b) { return a.dist < b.dist; });

  nodes_.reserve(placed.size());
  for (std::size_t i = 0; i < placed.size(); ++i) {
    auto node = std::make_unique<TreeNode>();
    node->id = medium.add_node(placed[i].pos);
    node->radio = std::make_unique<phy::Radio>(scheduler_, medium,
                                               sim::RandomStream{seed, stream++}, node->id,
                                               radio_config);
    node->fixed_cca = std::make_unique<mac::FixedCcaThreshold>(config_.fixed_cca);
    mac::CcaThresholdProvider* cca = node->fixed_cca.get();
    if (config_.scheme == net::Scheme::kDcn) {
      node->adjustor =
          std::make_unique<dcn::CcaAdjustor>(scheduler_, *node->radio, config_.dcn);
      cca = node->adjustor.get();
    }
    node->mac = std::make_unique<mac::CsmaMac>(scheduler_, medium, *node->radio,
                                               sim::RandomStream{seed, stream++}, *cca,
                                               params);
    node->mac->set_tx_power(config_.tx_power);

    if (placed[i].dist <= config_.direct_range_m || i == 0) {
      // In range (or the closest node, which must anchor the tree).
      node->parent = sink_id_;
      node->depth = 1;
    } else {
      // Nearest already-placed node; all of them are closer to the sink.
      std::size_t best = 0;
      double best_dist = distance(placed[i].pos, placed[0].pos);
      for (std::size_t j = 1; j < i; ++j) {
        const double d = distance(placed[i].pos, placed[j].pos);
        if (d < best_dist) {
          best = j;
          best_dist = d;
        }
      }
      node->parent = nodes_[best]->id;
      node->depth = nodes_[best]->depth + 1;
    }

    if (node->adjustor != nullptr) {
      dcn::CcaAdjustor* adjustor = node->adjustor.get();
      node->mac->add_rx_hook([adjustor](const phy::RxResult& rx) {
        if (rx.crc_ok) adjustor->on_co_channel_packet(rx.rssi);
      });
    }

    node->source = std::make_unique<mac::PeriodicSource>(scheduler_, *node->mac);
    nodes_.push_back(std::move(node));
  }

  // Forwarding: anything delivered to a relay is re-queued toward its
  // parent. Installed after construction so the hook can capture the node.
  for (auto& node : nodes_) {
    TreeNode* relay = node.get();
    const int psdu = config_.psdu_bytes;
    const bool acked = config_.acked_hops;
    relay->mac->set_delivery_hook([relay, psdu, acked](const phy::RxResult&) {
      relay->mac->enqueue(mac::TxRequest{relay->parent, psdu, acked});
      ++relay->forwarded;
    });
  }
}

void CollectionTree::start() {
  for (auto& node : nodes_) {
    if (node->adjustor != nullptr) node->adjustor->start();
    node->source->start(mac::TxRequest{node->parent, config_.psdu_bytes, config_.acked_hops},
                        config_.report_period);
  }
}

std::uint64_t CollectionTree::generated() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->source->generated();
  return total;
}

int CollectionTree::max_depth() const {
  int depth = 0;
  for (const auto& node : nodes_) depth = std::max(depth, node->depth);
  return depth;
}

CollectionScenario::CollectionScenario(std::span<const phy::Mhz> channels,
                                       const CollectionConfig& config, std::uint64_t seed)
    : medium_{[&] {
        phy::MediumConfig medium_config;
        medium_config.seed = seed;
        return medium_config;
      }()},
      config_{config} {
  sim::RandomStream placement{seed, 999};
  std::uint64_t stream = 0;
  for (const phy::Mhz channel : channels) {
    trees_.push_back(std::make_unique<CollectionTree>(
        scheduler_, medium_, channel, phy::Vec2{0.0, 0.0}, config_, placement, seed, stream));
  }
}

double CollectionScenario::run(sim::SimTime warmup, sim::SimTime measure) {
  for (auto& tree : trees_) tree->start();
  scheduler_.schedule_at(warmup, [this] {
    for (auto& tree : trees_) tree->reset_collected();
  });
  scheduler_.run_until(warmup + measure);

  std::uint64_t collected = 0;
  for (const auto& tree : trees_) collected += tree->collected();
  return static_cast<double>(collected) / measure.to_seconds();
}

}  // namespace nomc::collect
