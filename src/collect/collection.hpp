// Convergecast data collection: the workload the paper's related work
// (TMCP, Wu et al.) is built around, implemented as a substrate so the
// orthogonal-tree design can be compared against the non-orthogonal DCN
// design on equal terms.
//
// Model: a sink gathers periodic readings from sensor nodes. Nodes too far
// to reach the sink directly forward through a parent (store-and-forward
// over the same CSMA/CA MAC, with 802.15.4 ACKs + retries per hop). The
// deployment is partitioned into k trees, one per channel — exactly TMCP's
// architecture ("partition the whole network into subtrees and find fully
// orthogonal channels for them"): with orthogonal channels k is small; the
// paper's argument is that non-orthogonal channels (with DCN handling the
// CCA threshold) allow more trees and hence more aggregate collection.
//
// The sink is modelled as one co-located receiver node per tree — the
// standard TMCP assumption of a multi-radio (or wired-backbone) root.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "dcn/cca_adjustor.hpp"
#include "mac/csma.hpp"
#include "mac/traffic.hpp"
#include "net/scenario.hpp"
#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace nomc::collect {

struct CollectionConfig {
  /// Sensor nodes per tree (excluding the sink-side receiver).
  int nodes_per_tree = 5;
  /// Nodes within this range of the sink talk to it directly; farther nodes
  /// forward through the nearest in-range node.
  double direct_range_m = 5.0;
  /// Field radius around the sink that sensors are scattered over.
  double field_radius_m = 9.0;
  /// Local reading generation period per node.
  sim::SimTime report_period = sim::SimTime::milliseconds(40);
  int psdu_bytes = 100;
  phy::Dbm tx_power{0.0};
  /// Per-hop reliability: request ACKs and retransmit per 802.15.4.
  bool acked_hops = true;
  net::Scheme scheme = net::Scheme::kFixedCca;
  dcn::DcnConfig dcn{};
  phy::Dbm fixed_cca = mac::kZigbeeDefaultCcaThreshold;
};

/// One sensor (or relay) node in a tree.
struct TreeNode {
  phy::NodeId id = phy::kNoNode;
  phy::NodeId parent = phy::kNoNode;  ///< next hop toward the sink
  int depth = 0;                      ///< 1 = talks to the sink directly
  std::unique_ptr<phy::Radio> radio;
  std::unique_ptr<mac::FixedCcaThreshold> fixed_cca;
  std::unique_ptr<dcn::CcaAdjustor> adjustor;
  std::unique_ptr<mac::CsmaMac> mac;
  std::unique_ptr<mac::PeriodicSource> source;
  std::uint64_t forwarded = 0;  ///< packets relayed on behalf of children
};

/// One channel's tree plus its sink-side receiver.
class CollectionTree {
 public:
  CollectionTree(sim::Scheduler& scheduler, phy::Medium& medium, phy::Mhz channel,
                 phy::Vec2 sink_pos, const CollectionConfig& config,
                 sim::RandomStream& placement, std::uint64_t seed, std::uint64_t& stream);

  /// Begin periodic reporting on every node (and DCN init where enabled).
  void start();

  [[nodiscard]] phy::Mhz channel() const { return channel_; }
  [[nodiscard]] std::uint64_t collected() const { return collected_; }
  [[nodiscard]] std::uint64_t generated() const;
  [[nodiscard]] const std::vector<std::unique_ptr<TreeNode>>& nodes() const { return nodes_; }
  [[nodiscard]] int max_depth() const;

  /// Reset the collected counter (e.g. at the start of the window).
  void reset_collected() { collected_ = 0; }

 private:
  sim::Scheduler& scheduler_;
  phy::Mhz channel_;
  CollectionConfig config_;
  phy::NodeId sink_id_ = phy::kNoNode;
  std::unique_ptr<phy::Radio> sink_radio_;
  std::unique_ptr<mac::FixedCcaThreshold> sink_cca_;
  std::unique_ptr<mac::CsmaMac> sink_mac_;
  std::vector<std::unique_ptr<TreeNode>> nodes_;
  std::uint64_t collected_ = 0;
};

/// A full deployment: one tree per channel around a single sink location.
class CollectionScenario {
 public:
  CollectionScenario(std::span<const phy::Mhz> channels, const CollectionConfig& config,
                     std::uint64_t seed);

  /// Run with a warm-up; returns sink goodput in packets/s over the window.
  double run(sim::SimTime warmup, sim::SimTime measure);

  [[nodiscard]] const std::vector<std::unique_ptr<CollectionTree>>& trees() const {
    return trees_;
  }
  [[nodiscard]] sim::Scheduler& scheduler() { return scheduler_; }

 private:
  sim::Scheduler scheduler_;
  phy::Medium medium_;
  CollectionConfig config_;
  std::vector<std::unique_ptr<CollectionTree>> trees_;
};

}  // namespace nomc::collect
