#include "sim/parallel.hpp"

#include <algorithm>

namespace nomc::sim {

int resolve_jobs(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ParallelRunner::ParallelRunner(int jobs) : jobs_{resolve_jobs(jobs)} {
  workers_.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int i = 0; i < jobs_ - 1; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    stop_ = true;
  }
  batch_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ParallelRunner::drain_batch(int worker, std::uint64_t my_batch,
                                 const std::function<void(int, int)>& task) {
  for (;;) {
    int index;
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      // The batch guard closes a race: a worker that just finished the last
      // index of batch N may loop around after the caller has already opened
      // batch N+1, and must not claim N+1's indices through N's (now dead)
      // task reference.
      if (batch_ != my_batch || next_index_ >= total_) return;
      index = next_index_++;
    }
    std::exception_ptr error;
    try {
      task(worker, index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      if (error && !error_) error_ = error;
      // The caller cannot have moved past this batch yet: it waits for
      // remaining_ == 0, and this claimed index has not been counted.
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ParallelRunner::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int, int)>* task = nullptr;
    std::uint64_t my_batch = 0;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      batch_cv_.wait(lock, [&] { return stop_ || batch_ != seen; });
      if (stop_) return;
      seen = batch_;
      my_batch = batch_;
      task = task_;
    }
    // task_ is nulled once a batch completes; a worker that slept through
    // the whole batch has nothing to do.
    if (task != nullptr) drain_batch(worker, my_batch, *task);
  }
}

void ParallelRunner::run_batch(int count, const std::function<void(int, int)>& task) {
  if (count <= 0) return;
  if (workers_.empty() || count == 1) {
    // Serial path: no synchronization, runs on the calling thread (which is
    // always worker slot jobs-1, matching the parallel path below).
    for (int i = 0; i < count; ++i) task(jobs_ - 1, i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    task_ = &task;
    total_ = count;
    next_index_ = 0;
    remaining_ = count;
    error_ = nullptr;
    ++batch_;
  }
  batch_cv_.notify_all();
  // The calling thread is worker slot jobs_-1 (pool threads are 0..jobs_-2).
  drain_batch(jobs_ - 1, batch_, task);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock{mutex_};
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    task_ = nullptr;
    error = error_;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace nomc::sim
