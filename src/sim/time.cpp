#include "sim/time.hpp"

#include <cstdio>

namespace nomc::sim {

std::string to_string(SimTime t) {
  char buf[64];
  const std::int64_t ns = t.ticks();
  if (ns % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%llds", static_cast<long long>(ns / 1'000'000'000));
  } else if (ns % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldms", static_cast<long long>(ns / 1'000'000));
  } else if (ns % 1'000 == 0) {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(ns / 1'000));
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

}  // namespace nomc::sim
