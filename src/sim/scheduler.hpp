// Discrete-event scheduler: the heart of the simulator.
//
// Events are closures ordered by (time, insertion sequence); ties in time
// therefore execute in scheduling order, which makes runs deterministic.
// Cancellation is lazy: cancelled entries stay in their bucket and are
// dropped when a search visits them. Liveness is tracked by
// generation-checked slots — an EventId packs (slot index, generation), so
// schedule, cancel, and the liveness check are all O(1) array probes with no
// hashing on the hot path.
//
// The pending set is a calendar queue (R. Brown, CACM 1988), not a binary
// heap: an array of time-bucketed "days" whose width and count adapt to the
// live event population, giving O(1) amortized schedule and dequeue where a
// heap pays O(log n) per operation — the difference between paper scale
// (hundreds of pending events) and city scale (hundreds of thousands).
// Events are EventFn closures with inline storage, so steady-state
// scheduling performs no heap allocation at all; bucket vectors recycle
// their capacity and act as the event pool. Determinism is unchanged: the
// dequeue order is exactly (time, insertion sequence), and every structural
// decision (bucket widths, resizes) is a pure function of the event
// population. See docs/scaling.md for the design walk-through.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace nomc::sim {

/// Opaque handle for cancelling a scheduled event: (slot << 32) | generation.
/// Generations start at 1, so the value 0 is never issued.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Scheduler {
 public:
  Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Starts at zero; advances only inside run calls.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(SimTime at, EventFn fn);

  /// Schedule `fn` to run `delay` after now().
  EventId schedule_in(SimTime delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Returns false if the event already ran, was
  /// already cancelled, or the id is invalid/unknown.
  bool cancel(EventId id);

  /// Execute the earliest pending event. Returns false if the queue is empty.
  bool step();

  /// Run events until the queue drains or simulated time would exceed `end`.
  /// Leaves now() == end when the horizon is hit (so timers can resume).
  void run_until(SimTime end);

  /// Run until the event queue is empty.
  void run_all();

  /// Number of pending (scheduled, not yet run, not cancelled) events.
  [[nodiscard]] std::size_t pending() const { return live_count_; }

  /// Total events executed so far (telemetry for microbenchmarks/tests).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Attach a trace sink (nullptr detaches). The scheduler does not own it.
  /// Components reach the tracer through the scheduler they already hold:
  ///   if (auto* t = scheduler.trace()) t->emit({...});
  void set_trace(TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] TraceSink* trace() const { return trace_; }

  /// Convenience: emit `record` stamped with now() if a sink is attached.
  void trace_event(TraceRecord record) {
    if (trace_ != nullptr) {
      record.at = now_;
      trace_->emit(record);
    }
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO within equal times
    std::uint32_t slot;
    std::uint32_t generation;
    EventFn fn;
  };
  /// Liveness record for one slot. A slot is recycled (generation bumped,
  /// index pushed on the free list) as soon as its event runs or is
  /// cancelled; a stale calendar entry then fails the generation check and
  /// is dropped by the next search that visits it.
  struct Slot {
    std::uint32_t generation = 1;
    bool live = false;
  };

  [[nodiscard]] static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  [[nodiscard]] static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  [[nodiscard]] bool entry_live(const Entry& entry) const {
    const Slot& slot = slots_[entry.slot];
    return slot.live && slot.generation == entry.generation;
  }
  /// Mark `entry`'s slot dead and recycle it for reuse.
  void retire(std::uint32_t index);

  /// The calendar day (bucket-width quantum) containing `at`.
  [[nodiscard]] std::int64_t day_of(SimTime at) const { return at.ticks() >> width_shift_; }

  /// Locate the earliest live entry and cache it in peek_*; prunes dead
  /// entries from every bucket it scans. Returns false when nothing is live
  /// (and then the calendar is fully drained of dead entries too).
  bool find_min();
  /// True while peek_{bucket_,index_} points at the cached minimum.
  bool peek_valid_ = false;
  std::size_t peek_bucket_ = 0;
  std::size_t peek_index_ = 0;

  /// Re-bucket every live entry into `bucket_count` buckets (a power of
  /// two), re-deriving the bucket width from the live population's time
  /// span. Drops dead entries. O(entries + buckets), amortized across the
  /// schedule/run traffic that triggered it.
  void rebuild(std::size_t bucket_count);
  void maybe_resize();

  std::vector<std::vector<Entry>> buckets_;
  int width_shift_ = 13;           ///< bucket width = 2^shift ns (8.2 us initially)
  std::size_t bucket_mask_ = 0;    ///< buckets_.size() - 1 (size is a power of two)
  std::size_t entry_count_ = 0;    ///< entries sitting in buckets, dead included
  std::int64_t cursor_day_ = 0;    ///< searches resume here; monotone between rebuilds

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  TraceSink* trace_ = nullptr;
};

}  // namespace nomc::sim
