// Discrete-event scheduler: the heart of the simulator.
//
// Events are closures ordered by (time, insertion sequence); ties in time
// therefore execute in scheduling order, which makes runs deterministic.
// Cancellation is lazy: cancelled entries stay in the heap and are skipped
// when popped. Liveness is tracked by generation-checked slots instead of a
// hash set — an EventId packs (slot index, generation), so schedule, cancel,
// and the popped-entry liveness check are all O(1) array probes with no
// hashing on the hot path.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace nomc::sim {

/// Opaque handle for cancelling a scheduled event: (slot << 32) | generation.
/// Generations start at 1, so the value 0 is never issued.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time. Starts at zero; advances only inside run calls.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(SimTime at, std::function<void()> fn);

  /// Schedule `fn` to run `delay` after now().
  EventId schedule_in(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Returns false if the event already ran, was
  /// already cancelled, or the id is invalid/unknown.
  bool cancel(EventId id);

  /// Execute the earliest pending event. Returns false if the queue is empty.
  bool step();

  /// Run events until the queue drains or simulated time would exceed `end`.
  /// Leaves now() == end when the horizon is hit (so timers can resume).
  void run_until(SimTime end);

  /// Run until the event queue is empty.
  void run_all();

  /// Number of pending (scheduled, not yet run, not cancelled) events.
  [[nodiscard]] std::size_t pending() const { return live_count_; }

  /// Total events executed so far (telemetry for microbenchmarks/tests).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Attach a trace sink (nullptr detaches). The scheduler does not own it.
  /// Components reach the tracer through the scheduler they already hold:
  ///   if (auto* t = scheduler.trace()) t->emit({...});
  void set_trace(TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] TraceSink* trace() const { return trace_; }

  /// Convenience: emit `record` stamped with now() if a sink is attached.
  void trace_event(TraceRecord record) {
    if (trace_ != nullptr) {
      record.at = now_;
      trace_->emit(record);
    }
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO within equal times
    std::uint32_t slot;
    std::uint32_t generation;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  /// Liveness record for one slot. A slot is recycled (generation bumped,
  /// index pushed on the free list) as soon as its event runs or is
  /// cancelled; a stale heap entry then fails the generation check when
  /// popped and is skipped.
  struct Slot {
    std::uint32_t generation = 1;
    bool live = false;
  };

  [[nodiscard]] static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  [[nodiscard]] static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  [[nodiscard]] bool entry_live(const Entry& entry) const {
    const Slot& slot = slots_[entry.slot];
    return slot.live && slot.generation == entry.generation;
  }
  /// Mark `entry`'s slot dead and recycle it for reuse.
  void retire(std::uint32_t index);

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  TraceSink* trace_ = nullptr;
};

}  // namespace nomc::sim
