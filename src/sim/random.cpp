#include "sim/random.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace nomc::sim {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) {
  SplitMix64 sm{seed};
  for (auto& word : s_) word = sm.next();
}

Xoshiro256pp::result_type Xoshiro256pp::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256pp::long_jump() {
  static constexpr std::uint64_t kJump[] = {0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
                                            0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)(*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

RandomStream::RandomStream(std::uint64_t seed, std::uint64_t index)
    // Mixing the index through splitmix64 before seeding guarantees distinct,
    // well-separated states even for consecutive indexes.
    : gen_{SplitMix64{seed ^ (0x9e3779b97f4a7c15ULL * (index + 1))}.next()} {}

double RandomStream::uniform() {
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double RandomStream::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t RandomStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(gen_());  // full 64-bit range
  // Rejection sampling for an unbiased draw.
  const std::uint64_t limit = (~std::uint64_t{0} / range) * range;
  std::uint64_t value = gen_();
  while (value >= limit) value = gen_();
  return lo + static_cast<std::int64_t>(value % range);
}

bool RandomStream::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double RandomStream::normal() {
  // Box–Muller; discard the second variate to keep stream state
  // position-independent of call history length.
  double u1 = uniform();
  while (u1 == 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double RandomStream::normal(double mean, double sigma) {
  return mean + sigma * normal();
}

double RandomStream::exponential(double rate) {
  assert(rate > 0.0);
  double u = uniform();
  while (u == 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::int64_t RandomStream::binomial(std::int64_t n, double p) {
  assert(n >= 0);
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;

  const double mean = static_cast<double>(n) * p;
  if (mean < 32.0) {
    if (p < 0.05) {
      // Geometric skipping: jump between successes; O(np) expected time.
      std::int64_t successes = 0;
      const double log_q = std::log1p(-p);
      double position = 0.0;
      for (;;) {
        double u = uniform();
        while (u == 0.0) u = uniform();
        position += std::floor(std::log(u) / log_q) + 1.0;
        if (position > static_cast<double>(n)) return successes;
        ++successes;
      }
    }
    // Direct trials: n is small here because mean < 32 and p >= 0.05.
    std::int64_t successes = 0;
    for (std::int64_t i = 0; i < n; ++i) successes += bernoulli(p) ? 1 : 0;
    return successes;
  }

  // Large-mean regime: clamped normal approximation. The PHY only reaches
  // this when a packet is already hopeless (hundreds of expected bit errors),
  // so approximation error is immaterial; clamping keeps the result valid.
  const double sigma = std::sqrt(mean * (1.0 - p));
  const double draw = std::round(normal(mean, sigma));
  if (draw < 0.0) return 0;
  if (draw > static_cast<double>(n)) return n;
  return static_cast<std::int64_t>(draw);
}

}  // namespace nomc::sim
