// Simulated-time representation for the discrete-event engine.
//
// All simulated time is held in integral nanosecond ticks so event ordering
// is exact and replayable; floating point is only used at API edges
// (seconds in, seconds out).
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace nomc::sim {

/// A point in simulated time, or a duration, in nanosecond ticks.
///
/// A single type is used for both instants and durations: the engine starts
/// at SimTime::zero() and only ever moves forward, so the distinction never
/// pays for its weight in a simulator of this size. Arithmetic is checked in
/// debug builds via assertions in the scheduler (times must be monotone).
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime nanoseconds(std::int64_t ns) { return SimTime{ns}; }
  [[nodiscard]] static constexpr SimTime microseconds(std::int64_t us) {
    return SimTime{us * 1'000};
  }
  [[nodiscard]] static constexpr SimTime milliseconds(std::int64_t ms) {
    return SimTime{ms * 1'000'000};
  }
  [[nodiscard]] static constexpr SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }
  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ticks() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double to_milliseconds() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double to_microseconds() const { return static_cast<double>(ns_) * 1e-3; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime d) { ns_ += d.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime d) { ns_ -= d.ns_; return *this; }
  [[nodiscard]] friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ns_ + b.ns_};
  }
  [[nodiscard]] friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ns_ - b.ns_};
  }
  [[nodiscard]] friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.ns_ * k};
  }
  [[nodiscard]] friend constexpr SimTime operator*(std::int64_t k, SimTime a) {
    return SimTime{a.ns_ * k};
  }

  /// Integral division: how many whole `b` intervals fit into `a`.
  [[nodiscard]] friend constexpr std::int64_t operator/(SimTime a, SimTime b) {
    return a.ns_ / b.ns_;
  }

 private:
  explicit constexpr SimTime(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

/// Human-readable rendering, e.g. "1.250ms", for traces and test failures.
[[nodiscard]] std::string to_string(SimTime t);

}  // namespace nomc::sim
