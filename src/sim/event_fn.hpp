// Move-only type-erased event closure with inline storage.
//
// The scheduler used to hold events as std::function<void()>. Almost every
// closure in the simulator captures a handful of pointers plus (at most) one
// phy::Frame by value — ~70 bytes, beyond std::function's small-buffer
// optimization — so every scheduled event paid one heap allocation and one
// deallocation. At city scale that is millions of allocator round-trips per
// simulated second, all on the innermost loop.
//
// EventFn stores callables up to kInlineCapacity bytes directly inside the
// object (the event "pool" is then simply the calendar queue's bucket
// vectors, which recycle their storage), and falls back to the heap only for
// oversized or throwing-move callables. Unlike std::function it is move-only,
// so move-only captures (e.g. a unique_ptr payload) schedule cleanly.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace nomc::sim {

class EventFn {
 public:
  /// Sized for the largest hot-path closure (Radio's end-of-frame event:
  /// a this-pointer plus a phy::Frame by value) with a little headroom.
  /// Larger captures still work — they transparently go to the heap.
  static constexpr std::size_t kInlineCapacity = 96;

  EventFn() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr && "invoking an empty EventFn");
    ops_->invoke(storage_);
  }

  /// True if the held callable lives inline (no heap allocation). Exposed so
  /// tests can pin which closures stay pooled.
  [[nodiscard]] bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct the callable from `src` into `dst`, then destroy `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename D>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineCapacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* s) { (*std::launder(static_cast<D*>(s)))(); },
      [](void* dst, void* src) {
        D* from = std::launder(static_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) { std::launder(static_cast<D*>(s))->~D(); },
      true,
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* s) { (**std::launder(static_cast<D**>(s)))(); },
      [](void* dst, void* src) {
        // Relocating a heap-held callable just moves the pointer; the
        // pointer itself is trivially destructible.
        ::new (dst) D*(*std::launder(static_cast<D**>(src)));
      },
      [](void* s) { delete *std::launder(static_cast<D**>(s)); },
      false,
  };

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
};

}  // namespace nomc::sim
