// Parallel trial runner: a small thread pool for embarrassingly parallel
// replication (independent Scenario runs under different seeds).
//
// Determinism contract: map(count, fn) hands each index 0..count-1 to fn
// exactly once (any thread, any order) and returns the results **in index
// order**. Reductions over the returned vector therefore see the same
// operand order regardless of the job count, so a trial average computed
// with jobs=8 is bit-identical to jobs=1 — provided fn(i) itself depends
// only on i (per-trial seeds, no shared mutable state). Every Scenario owns
// its scheduler, medium, and random streams, so one-scenario-per-index
// satisfies that automatically.
//
// The pool owns jobs-1 worker threads; the calling thread participates in
// every batch, so ParallelRunner{1} never spawns a thread and adds no
// synchronization to the serial path.
//
// Pools nest: a task running on one pool may drive its own ParallelRunner
// (the campaign engine runs one trial pool per point worker). Each pool's
// state is self-contained, so nesting needs no coordination — but thread
// counts multiply, so the outer layer should size the pools together (see
// docs/campaigns.md on the --jobs x --point-jobs split).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace nomc::sim {

/// Resolve a --jobs request: n >= 1 is taken literally; 0 (or negative)
/// means "all hardware threads".
[[nodiscard]] int resolve_jobs(int requested);

class ParallelRunner {
 public:
  /// `jobs` as in resolve_jobs(); the pool spawns resolve_jobs(jobs)-1
  /// workers (the calling thread is the remaining one).
  explicit ParallelRunner(int jobs = 0);
  ~ParallelRunner();
  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Run fn(0), ..., fn(count-1) across the pool and return the results in
  /// index order. R must be default-constructible and movable. Exceptions
  /// from fn are rethrown on the calling thread (first one wins); the batch
  /// still drains before map returns.
  template <typename Fn>
  auto map(int count, Fn&& fn) -> std::vector<std::invoke_result_t<Fn&, int>> {
    using R = std::invoke_result_t<Fn&, int>;
    std::vector<R> results(count > 0 ? static_cast<std::size_t>(count) : 0);
    run_batch(count, [&](int, int i) { results[static_cast<std::size_t>(i)] = fn(i); });
    return results;
  }

  /// map() without results, for side-effecting tasks.
  template <typename Fn>
  void for_each(int count, Fn&& fn) {
    run_batch(count, [&](int, int i) { fn(i); });
  }

  /// for_each() where the task also receives the executing worker's slot:
  /// fn(worker, index) with worker in [0, jobs). At most one task runs per
  /// slot at any time (pool workers are slots 0..jobs-2, the calling thread
  /// is slot jobs-1), so per-worker resources — a nested trial pool, a
  /// scratch buffer — can be indexed by `worker` with no further locking.
  /// Indices are still claimed in increasing order, any worker.
  template <typename Fn>
  void for_each_worker(int count, Fn&& fn) {
    run_batch(count, [&](int worker, int i) { fn(worker, i); });
  }

 private:
  void run_batch(int count, const std::function<void(int, int)>& task);
  void worker_loop(int worker);
  /// Pull indices from the shared counter and run them; returns when batch
  /// `my_batch` has no indices left for this thread (or has been superseded).
  void drain_batch(int worker, std::uint64_t my_batch,
                   const std::function<void(int, int)>& task);

  int jobs_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable batch_cv_;  // workers wait here for a new batch
  std::condition_variable done_cv_;   // the caller waits here for completion
  const std::function<void(int, int)>* task_ = nullptr;  // valid while a batch runs
  std::uint64_t batch_ = 0;  // bumped per run_batch; wakes the workers
  int total_ = 0;            // indices in the current batch
  int next_index_ = 0;       // next unclaimed index
  int remaining_ = 0;        // indices not yet finished
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace nomc::sim
