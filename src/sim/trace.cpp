#include "sim/trace.hpp"

#include <cstdio>
#include <stdexcept>

namespace nomc::sim {

std::size_t MemoryTraceSink::count(std::string_view category, std::string_view event) const {
  std::size_t n = 0;
  for (const TraceRecord& record : records_) {
    if (!category.empty() && category != record.category) continue;
    if (!event.empty() && event != record.event) continue;
    ++n;
  }
  return n;
}

CsvTraceSink::CsvTraceSink(const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) throw std::runtime_error("cannot open trace file: " + path);
  file_ = file;
  std::fputs("time_us,category,event,node,value,detail\n", file);
}

CsvTraceSink::~CsvTraceSink() { std::fclose(static_cast<FILE*>(file_)); }

void CsvTraceSink::emit(const TraceRecord& record) {
  // Traces are a human debugging aid, not a determinism-bearing artifact
  // like the campaign store: 6 significant digits keeps them readable, and
  // nothing diffs or resumes from them.
  // nomc-lint: allow(det-g-format)
  std::fprintf(static_cast<FILE*>(file_), "%.3f,%s,%s,%u,%.6g,%s\n",
               record.at.to_microseconds(), record.category, record.event, record.node,
               record.value, record.detail.c_str());
}

}  // namespace nomc::sim
