// Deterministic random-number generation for reproducible simulations.
//
// Every stochastic component of the simulator draws from its own
// RandomStream, derived from a root seed plus a stream index, so that
//   * the same (seed, scenario) pair replays bit-identically, and
//   * adding a new consumer of randomness does not perturb existing streams.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through
// splitmix64 as its authors recommend. Both are implemented here from the
// public-domain reference algorithms; no external dependency.
#pragma once

#include <cstdint>
#include <span>

namespace nomc::sim {

/// splitmix64: used only to expand seeds, never as a simulation stream.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_{seed} {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ — fast, high-quality 64-bit generator with 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256pp(std::uint64_t seed);

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Equivalent to 2^128 calls to operator(); used to derive independent
  /// sub-streams from one seed.
  void long_jump();

 private:
  std::uint64_t s_[4];
};

/// A stream of typed random variates with the distributions the simulator
/// needs. Distribution algorithms are implemented inline (inverse transform,
/// Box–Muller, geometric skipping) instead of <random> distributions so that
/// results are identical across standard libraries.
class RandomStream {
 public:
  /// Stream `index` of root seed `seed`; distinct indexes give statistically
  /// independent streams.
  RandomStream(std::uint64_t seed, std::uint64_t index);

  std::uint64_t next_u64() { return gen_(); }

  /// Uniform in [0, 1) with 53 random bits.
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in the closed interval [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  bool bernoulli(double p);

  /// Standard normal via Box–Muller (no cached spare: keeps replay simple).
  double normal();
  double normal(double mean, double sigma);

  double exponential(double rate);

  /// Number of successes in `n` Bernoulli(p) trials.
  ///
  /// Exact for the regimes the PHY model uses: geometric skipping when p is
  /// small (bit errors at workable SINR), direct trials for small n, and a
  /// clamped normal approximation for the large-n/large-p regime where the
  /// PHY only needs "essentially everything is corrupt".
  std::int64_t binomial(std::int64_t n, double p);

 private:
  Xoshiro256pp gen_;
};

}  // namespace nomc::sim
