#include "sim/region_executor.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "sim/parallel.hpp"

namespace nomc::sim {

RegionExecutor::RegionExecutor(RegionExecutorConfig config) : config_{config} {}

RegionExecutor::~RegionExecutor() = default;

int RegionExecutor::add_shard(Scheduler* scheduler) {
  assert(scheduler != nullptr);
  assert(!in_window_ && "cannot add shards mid-window");
  shards_.push_back(scheduler);
  outboxes_.emplace_back();
  next_seq_.push_back(0);
  return static_cast<int>(shards_.size()) - 1;
}

bool RegionExecutor::later(const Message& a, const Message& b) {
  if (a.at != b.at) return a.at > b.at;
  if (a.origin != b.origin) return a.origin > b.origin;
  return a.seq > b.seq;
}

void RegionExecutor::post(int origin, int target, SimTime at, EventFn fn) {
  assert(origin >= 0 && origin < shard_count());
  assert(target >= 0 && target < shard_count());
  if (shard_count() == 1) {
    // Single region: no windows, no barriers — schedule straight into the
    // one shard at commit time, exactly like the serial path.
    shards_[0]->schedule_at(at, std::move(fn));
    return;
  }
  Message msg{at, static_cast<std::uint32_t>(origin),
              next_seq_[static_cast<std::size_t>(origin)]++,
              static_cast<std::uint32_t>(target), std::move(fn)};
  if (in_window_) {
    // Posted from inside a window by the worker driving `origin`: the
    // message may not land inside the window still being executed, or a
    // shard that already passed its timestamp would miss it.
    if (at < window_end_) {
      throw std::logic_error(
          "RegionExecutor::post: message timestamp precedes the current "
          "window end — conservative lookahead violated");
    }
    outboxes_[static_cast<std::size_t>(origin)].push_back(std::move(msg));
    return;
  }
  if (at < now_) {
    throw std::logic_error("RegionExecutor::post: message timestamp in the past");
  }
  pending_.push_back(std::move(msg));
  std::push_heap(pending_.begin(), pending_.end(), later);
}

void RegionExecutor::deliver(SimTime horizon, bool inclusive) {
  while (!pending_.empty()) {
    const Message& top = pending_.front();
    if (top.at > horizon || (top.at == horizon && !inclusive)) break;
    std::pop_heap(pending_.begin(), pending_.end(), later);
    Message msg = std::move(pending_.back());
    pending_.pop_back();
    shards_[msg.target]->schedule_at(msg.at, std::move(msg.fn));
    ++delivered_;
  }
}

void RegionExecutor::collect_outboxes() {
  for (std::vector<Message>& outbox : outboxes_) {
    for (Message& msg : outbox) {
      pending_.push_back(std::move(msg));
      std::push_heap(pending_.begin(), pending_.end(), later);
    }
    outbox.clear();
  }
}

void RegionExecutor::dispatch(SimTime horizon) {
  if (runner_ == nullptr) runner_ = std::make_unique<ParallelRunner>(config_.workers);
  window_end_ = horizon;
  in_window_ = true;
  // for_each is a barrier: it returns only when every shard reached the
  // horizon, and the pool's handoff gives the coordinator a happens-before
  // edge over each worker's outbox writes.
  runner_->for_each(shard_count(), [&](int s) {
    shards_[static_cast<std::size_t>(s)]->run_until(horizon);
  });
  in_window_ = false;
  ++windows_;
  collect_outboxes();
}

std::uint64_t RegionExecutor::executed() const {
  std::uint64_t total = 0;
  for (const Scheduler* shard : shards_) total += shard->executed();
  return total;
}

void RegionExecutor::run_until(SimTime end) {
  assert(!in_window_);
  if (shard_count() <= 1) {
    if (shard_count() == 1) shards_[0]->run_until(end);
    if (now_ < end) now_ = end;
    return;
  }
  if (config_.lookahead <= SimTime::zero()) {
    throw std::logic_error("RegionExecutor: lookahead must be positive with >1 shard");
  }
  while (now_ < end) {
    SimTime horizon = now_ + config_.lookahead;
    if (horizon > end) horizon = end;
    // Messages stamped exactly at the horizon wait one more window: the
    // window about to run executes local events *at* the horizon, and a
    // message merged later must sort after them, not race them.
    deliver(horizon, /*inclusive=*/false);
    dispatch(horizon);
    now_ = horizon;
  }
  // Horizon flush: run_until is end-inclusive, so messages stamped exactly
  // `end` (committed one lookahead before it) must still fire. Anything they
  // post in turn lands strictly beyond `end` and waits for the next call.
  if (!pending_.empty() && pending_.front().at <= end) {
    deliver(end, /*inclusive=*/true);
    dispatch(end);
    assert(pending_.empty() || pending_.front().at > end);
  }
}

}  // namespace nomc::sim
