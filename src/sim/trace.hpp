// Structured event tracing.
//
// Every interesting state change in the stack (frame on air, CCA verdict,
// backoff, threshold move, recovery round) can be emitted as a TraceRecord.
// Sinks are attached to the Scheduler — the one object every component
// already holds — so plumbing a tracer through the stack costs nothing when
// tracing is off (a null check) and no constructor churn when it is on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nomc::sim {

struct TraceRecord {
  SimTime at;
  const char* category = "";   ///< e.g. "phy", "mac", "dcn", "ppr"
  const char* event = "";      ///< e.g. "tx_start", "cca_busy"
  std::uint32_t node = ~0u;    ///< acting node, or ~0u for none
  double value = 0.0;          ///< event-specific number (dBm, count, ...)
  std::string detail;          ///< free-form; empty on hot paths
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceRecord& record) = 0;
};

/// Buffers records in memory; the test- and analysis-friendly sink.
class MemoryTraceSink final : public TraceSink {
 public:
  void emit(const TraceRecord& record) override { records_.push_back(record); }

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Count of records matching category/event (either may be empty = any).
  [[nodiscard]] std::size_t count(std::string_view category, std::string_view event) const;

 private:
  std::vector<TraceRecord> records_;
};

/// Streams records as CSV lines (time_us,category,event,node,value,detail).
class CsvTraceSink final : public TraceSink {
 public:
  /// Writes to `path`; truncates an existing file. Throws on open failure.
  explicit CsvTraceSink(const std::string& path);
  ~CsvTraceSink() override;
  CsvTraceSink(const CsvTraceSink&) = delete;
  CsvTraceSink& operator=(const CsvTraceSink&) = delete;

  void emit(const TraceRecord& record) override;

 private:
  void* file_;  // FILE*, kept opaque to avoid <cstdio> in the header
};

}  // namespace nomc::sim
