#include "sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace nomc::sim {

EventId Scheduler::schedule_at(SimTime at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule into the past");
  assert(fn && "event must be callable");
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.live = true;
  heap_.push(Entry{at, next_seq_++, index, slot.generation, std::move(fn)});
  ++live_count_;
  return static_cast<EventId>(index) << 32 | slot.generation;
}

void Scheduler::retire(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.live = false;
  // Generation 0 is reserved so kInvalidEventId never matches a slot.
  if (++slot.generation == 0) slot.generation = 1;
  free_slots_.push_back(index);
  --live_count_;
}

bool Scheduler::cancel(EventId id) {
  // A stale generation means the event has run, been cancelled, or the id
  // was never issued; all three answer "false". The heap entry stays behind
  // and fails the generation check when popped.
  const std::uint32_t index = slot_of(id);
  if (index >= slots_.size()) return false;
  const Slot& slot = slots_[index];
  if (!slot.live || slot.generation != generation_of(id)) return false;
  retire(index);
  return true;
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    // priority_queue::top is const; the closure must be moved out, so mutate
    // via const_cast — safe because the entry is popped immediately after.
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (!entry_live(entry)) continue;  // was cancelled
    retire(entry.slot);
    assert(entry.at >= now_);
    now_ = entry.at;
    ++executed_;
    entry.fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(SimTime end) {
  while (!heap_.empty()) {
    if (!entry_live(heap_.top())) {
      heap_.pop();  // drop cancelled entries so the horizon check sees a live one
      continue;
    }
    if (heap_.top().at > end) break;
    step();
  }
  if (now_ < end) now_ = end;
}

void Scheduler::run_all() {
  while (step()) {
  }
}

}  // namespace nomc::sim
