#include "sim/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace nomc::sim {

namespace {

constexpr std::size_t kMinBuckets = 16;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 21;
constexpr int kMaxWidthShift = 42;  // ~73 min per day; beyond that, direct search

}  // namespace

Scheduler::Scheduler() : buckets_(kMinBuckets), bucket_mask_{kMinBuckets - 1} {}

EventId Scheduler::schedule_at(SimTime at, EventFn fn) {
  assert(at >= now_ && "cannot schedule into the past");
  assert(fn && "event must be callable");
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.live = true;
  const std::uint64_t seq = next_seq_++;
  // Keep the cached minimum unless the new event precedes it; most events
  // are scheduled past the imminent one, so the next step() skips a search.
  if (peek_valid_) {
    const Entry& peek = buckets_[peek_bucket_][peek_index_];
    if (at < peek.at) peek_valid_ = false;
  }
  const std::int64_t day = day_of(at);
  // A search may have jumped the cursor far ahead (direct-search fallback);
  // pull it back so the year scan cannot start past the new entry's day.
  if (day < cursor_day_) cursor_day_ = day;
  const std::size_t bucket = static_cast<std::size_t>(day) & bucket_mask_;
  buckets_[bucket].push_back(Entry{at, seq, index, slot.generation, std::move(fn)});
  ++entry_count_;
  ++live_count_;
  maybe_resize();
  return static_cast<EventId>(index) << 32 | slot.generation;
}

void Scheduler::retire(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.live = false;
  // Generation 0 is reserved so kInvalidEventId never matches a slot.
  if (++slot.generation == 0) slot.generation = 1;
  free_slots_.push_back(index);
  --live_count_;
}

bool Scheduler::cancel(EventId id) {
  // A stale generation means the event has run, been cancelled, or the id
  // was never issued; all three answer "false". The calendar entry stays
  // behind and is dropped by the next search that visits its bucket.
  const std::uint32_t index = slot_of(id);
  if (index >= slots_.size()) return false;
  const Slot& slot = slots_[index];
  if (!slot.live || slot.generation != generation_of(id)) return false;
  if (peek_valid_ && buckets_[peek_bucket_][peek_index_].slot == index) peek_valid_ = false;
  retire(index);
  return true;
}

bool Scheduler::find_min() {
  if (live_count_ == 0) {
    // Nothing live: drop whatever dead entries remain so their closures
    // (and captured resources) are released promptly.
    if (entry_count_ != 0) {
      for (std::vector<Entry>& bucket : buckets_) bucket.clear();
      entry_count_ = 0;
    }
    peek_valid_ = false;
    return false;
  }

  const std::int64_t now_day = day_of(now_);
  if (cursor_day_ < now_day) cursor_day_ = now_day;
  const std::size_t bucket_count = buckets_.size();

  // Calendar scan: walk one "year" of days starting at the cursor. The first
  // day that owns a live entry holds the global minimum, because any earlier
  // entry would live in an earlier day of this same year.
  for (std::size_t k = 0; k < bucket_count; ++k) {
    const std::int64_t day = cursor_day_ + static_cast<std::int64_t>(k);
    const std::size_t b = static_cast<std::size_t>(day) & bucket_mask_;
    std::vector<Entry>& bucket = buckets_[b];
    bool found = false;
    std::size_t best = 0;
    for (std::size_t i = 0; i < bucket.size();) {
      if (!entry_live(bucket[i])) {
        bucket[i] = std::move(bucket.back());
        bucket.pop_back();
        --entry_count_;
        continue;  // re-examine the entry swapped into i
      }
      const Entry& e = bucket[i];
      if (day_of(e.at) == day) {
        if (!found || e.at < bucket[best].at ||
            (e.at == bucket[best].at && e.seq < bucket[best].seq)) {
          found = true;
          best = i;
        }
      }
      ++i;
    }
    if (found) {
      cursor_day_ = day;
      peek_bucket_ = b;
      peek_index_ = best;
      peek_valid_ = true;
      return true;
    }
  }

  // A full year with no due entry: the next event is more than a year away.
  // Fall back to a direct search over everything, then jump the cursor to it.
  bool found = false;
  std::size_t best_bucket = 0;
  std::size_t best_index = 0;
  for (std::size_t b = 0; b < bucket_count; ++b) {
    std::vector<Entry>& bucket = buckets_[b];
    for (std::size_t i = 0; i < bucket.size();) {
      if (!entry_live(bucket[i])) {
        bucket[i] = std::move(bucket.back());
        bucket.pop_back();
        --entry_count_;
        continue;
      }
      const Entry& e = bucket[i];
      bool better = !found;
      if (found) {
        const Entry& cur = buckets_[best_bucket][best_index];
        better = e.at < cur.at || (e.at == cur.at && e.seq < cur.seq);
      }
      if (better) {
        found = true;
        best_bucket = b;
        best_index = i;
      }
      ++i;
    }
  }
  assert(found && "live_count_ > 0 but no live entry in the calendar");
  cursor_day_ = day_of(buckets_[best_bucket][best_index].at);
  peek_bucket_ = best_bucket;
  peek_index_ = best_index;
  peek_valid_ = true;
  return found;
}

bool Scheduler::step() {
  if (!peek_valid_ && !find_min()) return false;
  std::vector<Entry>& bucket = buckets_[peek_bucket_];
  Entry entry = std::move(bucket[peek_index_]);
  bucket[peek_index_] = std::move(bucket.back());
  bucket.pop_back();
  --entry_count_;
  peek_valid_ = false;
  retire(entry.slot);
  maybe_resize();
  assert(entry.at >= now_);
  now_ = entry.at;
  ++executed_;
  entry.fn();
  return true;
}

void Scheduler::run_until(SimTime end) {
  for (;;) {
    if (!peek_valid_ && !find_min()) break;
    if (buckets_[peek_bucket_][peek_index_].at > end) break;
    step();
  }
  if (now_ < end) now_ = end;
}

void Scheduler::run_all() {
  while (step()) {
  }
}

void Scheduler::maybe_resize() {
  const std::size_t bucket_count = buckets_.size();
  // Dead entries outnumbering live ones: purge via a same-size rebuild so
  // cancel-heavy workloads (CSMA timeouts) cannot accumulate garbage.
  if (entry_count_ > 2 * live_count_ + 64) {
    rebuild(bucket_count);
    return;
  }
  if (live_count_ > bucket_count * 2 && bucket_count < kMaxBuckets) {
    rebuild(std::min(kMaxBuckets, std::bit_ceil(live_count_)));
  } else if (live_count_ < bucket_count / 4 && bucket_count > kMinBuckets) {
    rebuild(std::max(kMinBuckets, std::bit_ceil(live_count_ + 1)));
  }
}

void Scheduler::rebuild(std::size_t bucket_count) {
  assert(std::has_single_bit(bucket_count));
  std::vector<Entry> live;
  live.reserve(live_count_);
  for (std::vector<Entry>& bucket : buckets_) {
    for (Entry& e : bucket) {
      if (entry_live(e)) live.push_back(std::move(e));
    }
    bucket.clear();
  }

  // Re-derive the day width from the live population: one day should hold a
  // small constant number of events, so the width tracks the average gap.
  if (live.size() >= 2) {
    SimTime lo = live[0].at;
    SimTime hi = live[0].at;
    for (const Entry& e : live) {
      lo = std::min(lo, e.at);
      hi = std::max(hi, e.at);
    }
    const std::int64_t span = (hi - lo).ticks();
    const std::int64_t per = span / static_cast<std::int64_t>(live.size());
    const int shift =
        per <= 0 ? 0 : static_cast<int>(std::bit_width(static_cast<std::uint64_t>(per)));
    width_shift_ = std::min(shift, kMaxWidthShift);
  }

  buckets_.resize(bucket_count);
  bucket_mask_ = bucket_count - 1;
  for (Entry& e : live) {
    const std::size_t bucket = static_cast<std::size_t>(day_of(e.at)) & bucket_mask_;
    buckets_[bucket].push_back(std::move(e));
  }
  entry_count_ = live.size();
  cursor_day_ = day_of(now_);
  peek_valid_ = false;
}

}  // namespace nomc::sim
