#include "sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace nomc::sim {

EventId Scheduler::schedule_at(SimTime at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule into the past");
  assert(fn && "event must be callable");
  const EventId id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  return id;
}

bool Scheduler::cancel(EventId id) {
  // An id absent from the live set has either run, been cancelled, or never
  // been issued; all three answer "false". The heap entry stays behind and is
  // skipped when popped.
  return live_.erase(id) > 0;
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    // priority_queue::top is const; the closure must be moved out, so mutate
    // via const_cast — safe because the entry is popped immediately after.
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (live_.erase(entry.id) == 0) continue;  // was cancelled
    assert(entry.at >= now_);
    now_ = entry.at;
    ++executed_;
    entry.fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(SimTime end) {
  while (!heap_.empty()) {
    if (live_.find(heap_.top().id) == live_.end()) {
      heap_.pop();  // drop cancelled entries so the horizon check sees a live one
      continue;
    }
    if (heap_.top().at > end) break;
    step();
  }
  if (now_ < end) now_ = end;
}

void Scheduler::run_all() {
  while (step()) {
  }
}

}  // namespace nomc::sim
