// Conservative parallel discrete-event executor for one trial.
//
// The executor advances a set of scheduler *shards* (one per spatial region)
// in bounded time windows of length `lookahead`. Within a window every shard
// runs independently — on a ParallelRunner worker — because the model
// guarantees that nothing a shard does inside the window can affect another
// shard until at least `lookahead` later: every cross-shard interaction is
// an explicit message posted through post() with a timestamp at or beyond
// the window's end (enforced, not assumed — a violating post throws).
//
// Window/barrier protocol (derivation in docs/parallel_trial.md):
//   1. deliver every pending cross-shard message with time < window end, in
//      ascending (time, origin shard, origin sequence) order, by scheduling
//      it on its target shard;
//   2. run all shards to the window end in parallel (Scheduler::run_until is
//      end-inclusive, so a window covers (start, end]);
//   3. collect the messages each shard posted during the window, in shard
//      index order, and merge them into the pending set.
// Step 1's fixed merge order is what makes the outcome independent of the
// worker count and of thread timing: messages are *produced* concurrently
// but *applied* from a deterministic sequence. Per-shard RNG streams are the
// caller's job (see ScenarioConfig::stream_base).
//
// With a single shard the executor degrades to plain Scheduler::run_until
// and post() schedules directly — byte-identical to the serial path, which
// keeps the golden stores the oracle for the whole machinery.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace nomc::sim {

class ParallelRunner;

struct RegionExecutorConfig {
  /// Window length == conservative lookahead: the minimum delay between a
  /// cross-shard message being posted and its timestamp. For the 802.15.4
  /// stack this is the rx/tx turnaround (192 us): a CCA-clear commit
  /// precedes its frame's air time by exactly that much.
  SimTime lookahead = SimTime::zero();
  /// Worker threads, resolve_jobs() semantics (0 = hardware concurrency).
  /// Affects wall-clock only — results are identical at any value.
  int workers = 1;
};

class RegionExecutor {
 public:
  explicit RegionExecutor(RegionExecutorConfig config);
  ~RegionExecutor();
  RegionExecutor(const RegionExecutor&) = delete;
  RegionExecutor& operator=(const RegionExecutor&) = delete;

  /// Register a shard scheduler (not owned; must start at time zero and only
  /// ever be advanced through this executor). Returns the shard index used
  /// as post()'s origin/target.
  int add_shard(Scheduler* scheduler);
  [[nodiscard]] int shard_count() const { return static_cast<int>(shards_.size()); }

  /// Post `fn` to run on shard `target` at absolute time `at`. Callable from
  /// inside a window (from the worker running shard `origin` — each outbox
  /// is single-writer) or between windows from the coordinating thread.
  /// Inside a window `at` must be at or beyond the window's end; that is the
  /// conservative-lookahead contract, and violating it throws
  /// std::logic_error instead of silently corrupting causality.
  void post(int origin, int target, SimTime at, EventFn fn);

  /// Advance every shard to `end` (inclusive, like Scheduler::run_until).
  /// Callable repeatedly with increasing horizons.
  void run_until(SimTime end);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] SimTime lookahead() const { return config_.lookahead; }
  /// Total events executed across all shards (telemetry).
  [[nodiscard]] std::uint64_t executed() const;
  /// Barrier windows completed and cross-shard messages delivered so far.
  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }

 private:
  struct Message {
    SimTime at;
    std::uint32_t origin = 0;
    std::uint64_t seq = 0;  ///< per-origin posting sequence: fixes ties
    std::uint32_t target = 0;
    EventFn fn;
  };

  /// True when `a` should be delivered after `b` (min-heap comparator).
  [[nodiscard]] static bool later(const Message& a, const Message& b);

  /// Pop every pending message with time < horizon (<= when `inclusive`)
  /// and schedule it on its target shard. Heap order == (time, origin, seq).
  void deliver(SimTime horizon, bool inclusive);
  /// Merge window outboxes into the pending heap, shard order.
  void collect_outboxes();
  /// Run every shard to `horizon` on the worker pool.
  void dispatch(SimTime horizon);

  RegionExecutorConfig config_;
  std::vector<Scheduler*> shards_;
  std::vector<std::vector<Message>> outboxes_;  ///< per-origin, single-writer
  std::vector<std::uint64_t> next_seq_;         ///< per-origin posting counter
  std::vector<Message> pending_;                ///< min-heap (std::*_heap)
  std::unique_ptr<ParallelRunner> runner_;      ///< created on first dispatch

  SimTime now_ = SimTime::zero();
  SimTime window_end_ = SimTime::zero();
  bool in_window_ = false;
  std::uint64_t windows_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace nomc::sim
