// Topology generators for the paper's deployments.
//
// * bench_row: the lab-bench layout behind the motivation and evaluation
//   figures — networks side by side on a line, each a compact cluster of
//   2 links. Spacing defaults reproduce the testbed's interference regime:
//   co-channel partners are loud (≈ −40 dBm), and a 3 MHz neighbour network
//   is sensed right at the −77 dBm default CCA threshold.
// * Case I (Fig. 22): every node inside one small interfering region.
// * Case II (Fig. 23): one tight cluster ("office room") per network,
//   rooms far apart.
// * Case III (Fig. 24): all nodes scattered uniformly over a large region,
//   sender/receiver pairs kept within radio range.
#pragma once

#include <span>
#include <vector>

#include "net/spec.hpp"
#include "sim/random.hpp"

namespace nomc::net {

struct BenchRowConfig {
  int links_per_network = 2;
  double network_spacing_m = 3.6;  ///< distance between adjacent network centers
  double link_distance_m = 2.0;    ///< sender → receiver distance
  double sender_gap_m = 1.0;       ///< distance between a network's two senders
  phy::Dbm tx_power{0.0};
};

/// One network per channel, laid out along a row.
[[nodiscard]] std::vector<NetworkSpec> bench_row(std::span<const phy::Mhz> channels,
                                                 const BenchRowConfig& config = {});

struct RandomCaseConfig {
  int links_per_network = 2;
  double link_distance_m = 4.5;       ///< max sender→receiver separation
  double region_m = 7.0;              ///< Case I region edge / Case II room edge
  double room_spacing_m = 15.0;       ///< Case II: distance between room centers
  double field_m = 25.0;              ///< Case III field edge
  phy::Dbm min_tx_power{-22.0};       ///< per-node power drawn uniformly
  phy::Dbm max_tx_power{0.0};         ///< (paper: random within [−22, 0] dBm)

  /// Equal-power variant used by the motivation figures (§III fixes 0 dBm).
  [[nodiscard]] RandomCaseConfig with_fixed_power(phy::Dbm power) const {
    RandomCaseConfig copy = *this;
    copy.min_tx_power = power;
    copy.max_tx_power = power;
    return copy;
  }
};

[[nodiscard]] std::vector<NetworkSpec> case1_dense(std::span<const phy::Mhz> channels,
                                                   sim::RandomStream& rng,
                                                   const RandomCaseConfig& config = {});

[[nodiscard]] std::vector<NetworkSpec> case2_clustered(std::span<const phy::Mhz> channels,
                                                       sim::RandomStream& rng,
                                                       const RandomCaseConfig& config = {});

[[nodiscard]] std::vector<NetworkSpec> case3_random(std::span<const phy::Mhz> channels,
                                                    sim::RandomStream& rng,
                                                    const RandomCaseConfig& config = {});

}  // namespace nomc::net
