#include "net/sharded_scenario.hpp"

#include <cassert>

namespace nomc::net {

namespace {

/// Node-id spacing between shard mediums: far larger than any region's node
/// count, far smaller than kNoNode, so ids stay globally unique and mirrored
/// frames can never alias a local node.
constexpr phy::NodeId kShardNodeStride = phy::NodeId{1} << 20;
/// Frame-id spacing: the per-shard allocator counts within its region's
/// block, keeping shadowing-hash inputs collision-free across shards.
constexpr phy::FrameId kShardFrameStride = phy::FrameId{1} << 48;
/// RNG stream-index spacing (see ScenarioConfig::stream_base).
constexpr std::uint64_t kShardStreamStride = std::uint64_t{1} << 32;

[[nodiscard]] phy::Vec2 centroid_of(const NetworkSpec& spec) {
  phy::Vec2 sum{0.0, 0.0};
  int count = 0;
  for (const LinkSpec& link : spec.links) {
    sum = sum + link.sender_pos + link.receiver_pos;
    count += 2;
  }
  if (count == 0) return sum;
  return {sum.x / count, sum.y / count};
}

}  // namespace

/// Per-shard TxRouter: posts the origin radio's own transmit and mirrors the
/// frame onto every other region the influence disc touches, all through the
/// executor so the (time, origin, sequence) merge order is fixed.
class ShardedScenario::Router final : public phy::TxRouter {
 public:
  Router(ShardedScenario& owner, int region) : owner_{owner}, region_{region} {}

  void commit_tx(const phy::Frame& frame, sim::SimTime start, phy::Radio& origin,
                 bool skip_if_busy) override {
    sim::RegionExecutor& executor = *owner_.executor_;
    // Origin's own transmission first: within one commit the local action
    // precedes the mirrors in posting order, so equal-time delivery is fixed.
    phy::Radio* radio = &origin;
    if (skip_if_busy) {
      executor.post(region_, region_, start, [radio, frame] {
        if (radio->state() == phy::Radio::State::kTx) return;
        radio->transmit(frame);
      });
    } else {
      executor.post(region_, region_, start, [radio, frame] { radio->transmit(frame); });
    }
    const sim::SimTime stop = start + frame.duration();
    const double radius = owner_.influence_radius_m_;
    for (int r = 0; r < owner_.region_count(); ++r) {
      if (r == region_) continue;
      if (!owner_.extents_[static_cast<std::size_t>(r)].intersects_disc(frame.src_pos,
                                                                        radius)) {
        continue;
      }
      phy::Medium* medium = &owner_.shards_[static_cast<std::size_t>(r)]->medium();
      executor.post(region_, r, start, [medium, frame] { medium->begin_tx(frame); });
      executor.post(region_, r, stop, [medium, id = frame.id] { medium->end_tx(id); });
    }
  }

 private:
  ShardedScenario& owner_;
  int region_;
};

ShardedScenario::ShardedScenario(ScenarioConfig config, ShardingConfig sharding)
    : config_{std::move(config)}, sharding_{sharding} {}

ShardedScenario::~ShardedScenario() = default;

void ShardedScenario::add_networks(std::span<const NetworkSpec> specs, Scheme scheme) {
  assert(!ran_ && "add networks before run()");
  for (const NetworkSpec& spec : specs) assigned_.push_back({spec, scheme, -1, -1});
}

void ShardedScenario::run(sim::SimTime warmup, sim::SimTime measure) {
  assert(!ran_ && "ShardedScenario::run is one-shot");
  ran_ = true;

  // Influence radius at the strongest configured transmitter: the mirroring
  // disc must cover the loudest frame any link can commit.
  phy::Dbm max_power{-300.0};
  std::vector<phy::Vec2> centroids;
  centroids.reserve(assigned_.size());
  for (const Assigned& a : assigned_) {
    centroids.push_back(centroid_of(a.spec));
    for (const LinkSpec& link : a.spec.links) {
      if (link.tx_power.value > max_power.value) max_power = link.tx_power;
    }
  }
  influence_radius_m_ = phy::influence_radius_m(config_.medium, max_power);

  // Region planning: a pure function of the deployment geometry. Culling
  // must be on for mirroring to be bounded by the influence disc; without it
  // everything stays in one region (the serial path).
  phy::RegionPartition partition;
  int regions = 1;
  if (config_.medium.culling.enabled && assigned_.size() > 1) {
    partition = phy::RegionPartition::plan(centroids, influence_radius_m_,
                                           sharding_.max_region_side);
    regions = std::max(partition.region_count(), 1);
  }

  // Build one Scenario per region. Region 0 keeps all-zero bases, so a
  // single-region plan constructs exactly the Scenario a serial run would.
  shards_.reserve(static_cast<std::size_t>(regions));
  for (int r = 0; r < regions; ++r) {
    ScenarioConfig shard_config = config_;
    shard_config.medium.node_id_base = static_cast<phy::NodeId>(r) * kShardNodeStride;
    shard_config.medium.frame_id_base = static_cast<phy::FrameId>(r) * kShardFrameStride;
    shard_config.stream_base =
        config_.stream_base + static_cast<std::uint64_t>(r) * kShardStreamStride;
    shards_.push_back(std::make_unique<Scenario>(std::move(shard_config)));
  }

  // Assign whole networks to regions by centroid and grow region extents
  // over their actual node positions (extents, not tiles, gate mirroring).
  extents_.assign(static_cast<std::size_t>(regions), {});
  for (std::size_t i = 0; i < assigned_.size(); ++i) {
    Assigned& a = assigned_[i];
    a.region = regions == 1 ? 0 : partition.region_of(centroids[i]);
    Scenario& shard = *shards_[static_cast<std::size_t>(a.region)];
    a.local = shard.add_network(a.spec.channel, a.scheme);
    for (const LinkSpec& link : a.spec.links) {
      shard.add_link(a.local, link);
      extents_[static_cast<std::size_t>(a.region)].grow(link.sender_pos);
      extents_[static_cast<std::size_t>(a.region)].grow(link.receiver_pos);
    }
  }

  if (regions == 1) {
    // Serial path, byte-identical to a plain Scenario: no routers, no
    // windows, no executor overhead.
    shards_[0]->run(warmup, measure);
    return;
  }

  // The conservative lookahead is the MAC's rx/tx turnaround: every commit
  // (CCA-clear or control frame) precedes its air time by exactly that much.
  executor_ = std::make_unique<sim::RegionExecutor>(sim::RegionExecutorConfig{
      .lookahead = config_.csma.turnaround, .workers = sharding_.trial_workers});
  for (int r = 0; r < regions; ++r) executor_->add_shard(&shards_[static_cast<std::size_t>(r)]->scheduler());

  routers_.reserve(static_cast<std::size_t>(regions));
  for (int r = 0; r < regions; ++r) {
    routers_.push_back(std::make_unique<Router>(*this, r));
    Scenario& shard = *shards_[static_cast<std::size_t>(r)];
    for (int n = 0; n < shard.network_count(); ++n) {
      for (int l = 0; l < shard.link_count(n); ++l) {
        shard.sender_radio(n, l).set_tx_router(routers_.back().get());
        shard.receiver_radio(n, l).set_tx_router(routers_.back().get());
      }
    }
  }

  for (const auto& shard : shards_) shard->start_run(warmup, measure);
  executor_->run_until(warmup + measure);
}

Scenario::NetworkResult ShardedScenario::network_result(int network) const {
  assert(ran_);
  assert(network >= 0 && network < network_count());
  const Assigned& a = assigned_[static_cast<std::size_t>(network)];
  return shards_[static_cast<std::size_t>(a.region)]->network_result(a.local);
}

std::vector<double> ShardedScenario::network_throughputs() const {
  std::vector<double> out;
  out.reserve(assigned_.size());
  for (int n = 0; n < network_count(); ++n) out.push_back(network_result(n).throughput_pps);
  return out;
}

double ShardedScenario::overall_throughput() const {
  double total = 0.0;
  for (int n = 0; n < network_count(); ++n) total += network_result(n).throughput_pps;
  return total;
}

Scenario& ShardedScenario::shard(int region) {
  assert(region >= 0 && region < region_count());
  return *shards_[static_cast<std::size_t>(region)];
}

std::uint64_t ShardedScenario::messages_delivered() const {
  return executor_ == nullptr ? 0 : executor_->messages_delivered();
}

std::uint64_t ShardedScenario::windows() const {
  return executor_ == nullptr ? 0 : executor_->windows();
}

}  // namespace nomc::net
