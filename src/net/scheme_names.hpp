// Canonical names for the scenario vocabulary: channel-access schemes and
// deployment topologies.
//
// The strings live here — next to the enums and topology generators they
// name — so every consumer (the CLI option helpers, the exp spec parser,
// the campaign engine) parses and validates them identically. cli/ wraps
// these in ArgParser declarations; exp/ uses them directly, without a
// dependency on the flag-parsing layer.
#pragma once

#include <string>

#include "net/scenario.hpp"

namespace nomc::net {

inline constexpr const char* kSchemeChoices = "fixed | dcn | carrier-sense";
inline constexpr const char* kTopologyChoices = "dense | clustered | random";

/// "fixed" | "dcn" | "carrier-sense" → Scheme. False on anything else.
[[nodiscard]] bool parse_scheme(const std::string& name, Scheme& out);

/// True for "dense" | "clustered" | "random" (Cases I-III).
[[nodiscard]] bool valid_topology(const std::string& name);

}  // namespace nomc::net
