// ShardedScenario: one trial, many cores, bit-identical output.
//
// Splits a multi-network deployment into spatial regions (one Scenario —
// scheduler + medium + radios — per region) and advances the region shards
// through a sim::RegionExecutor in conservative lookahead windows. Committed
// transmissions are announced through phy::TxRouter: the origin shard
// schedules its own radio's transmit, and every other shard whose extent the
// frame's influence disc touches receives a mirrored begin_tx/end_tx pair,
// so cross-region interference, carrier sensing, and promiscuous overhears
// (the DCN adjustor's diet) are all preserved.
//
// Determinism contract (argued in docs/parallel_trial.md):
//   * the region count is a pure function of the deployment geometry —
//     never of the worker count;
//   * shard RNG streams are split from the one trial seed via disjoint
//     stream-index blocks (ScenarioConfig::stream_base), and shard mediums
//     share the seed, so shadowing draws agree on mirrored frames;
//   * cross-shard messages merge in fixed (time, origin, sequence) order at
//     every window barrier;
//   * a deployment that plans to a single region runs the plain serial
//     Scenario path, byte-identical to Scenario::run — the golden stores
//     remain the oracle for the whole construction.
//
// Supported workloads: static topologies with culling enabled (a disabled
// culling config forces a single region — without an influence radius there
// is no bound on who hears whom). Control frames (ACK/NACK) work, with one
// documented approximation: a mirrored control frame suppressed at the
// origin because its radio was mid-TX at fire time still appears as
// interference on neighbouring shards (the skip decision cannot cross the
// lookahead horizon). The paper's campaigns run without ACKs, and a
// single-region run has no mirroring at all, so the golden path is exact.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "net/scenario.hpp"
#include "phy/region_partition.hpp"
#include "sim/region_executor.hpp"

namespace nomc::net {

struct ShardingConfig {
  /// Worker threads for the region executor, resolve_jobs() semantics.
  /// Purely a wall-clock knob: results are identical at any value.
  int trial_workers = 1;
  /// Region grid cap per axis (<= max_region_side^2 regions). More regions
  /// buy parallelism but cost barrier synchronization and ghost mirroring.
  int max_region_side = 8;
};

class ShardedScenario {
 public:
  explicit ShardedScenario(ScenarioConfig config, ShardingConfig sharding = {});
  ~ShardedScenario();
  ShardedScenario(const ShardedScenario&) = delete;
  ShardedScenario& operator=(const ShardedScenario&) = delete;

  /// Declare networks, mirroring Scenario::add_networks. Global network
  /// indices follow declaration order across calls.
  void add_networks(std::span<const NetworkSpec> specs, Scheme scheme);

  /// Plan regions, build shards, and run. One-shot, like Scenario::run.
  void run(sim::SimTime warmup, sim::SimTime measure);

  // -- Results (valid after run; mirror Scenario's result API) -----------
  [[nodiscard]] int network_count() const { return static_cast<int>(assigned_.size()); }
  [[nodiscard]] Scenario::NetworkResult network_result(int network) const;
  [[nodiscard]] std::vector<double> network_throughputs() const;
  [[nodiscard]] double overall_throughput() const;

  // -- Introspection (valid after run) -----------------------------------
  [[nodiscard]] int region_count() const { return static_cast<int>(shards_.size()); }
  /// The shard hosting region `region`; lets tests attach trace sinks and
  /// compare against a plain Scenario.
  [[nodiscard]] Scenario& shard(int region);
  /// Cross-region messages delivered and barrier windows executed; zero for
  /// single-region runs (telemetry for tests and benches).
  [[nodiscard]] std::uint64_t messages_delivered() const;
  [[nodiscard]] std::uint64_t windows() const;

 private:
  class Router;

  struct Assigned {
    NetworkSpec spec;
    Scheme scheme = Scheme::kFixedCca;
    int region = -1;  ///< filled during run()
    int local = -1;   ///< network index within the region's Scenario
  };

  ScenarioConfig config_;
  ShardingConfig sharding_;
  std::vector<Assigned> assigned_;
  std::vector<std::unique_ptr<Scenario>> shards_;
  std::vector<phy::Aabb> extents_;  ///< per-region node bounding box
  std::vector<std::unique_ptr<Router>> routers_;
  std::unique_ptr<sim::RegionExecutor> executor_;
  double influence_radius_m_ = 0.0;  ///< at the strongest configured tx power
  bool ran_ = false;
};

}  // namespace nomc::net
