#include "net/topology.hpp"

#include <cassert>

namespace nomc::net {
namespace {

phy::Dbm random_power(sim::RandomStream& rng, const RandomCaseConfig& config) {
  return phy::Dbm{rng.uniform(config.min_tx_power.value, config.max_tx_power.value)};
}

/// A sender/receiver pair with the sender at `anchor` and the receiver a
/// bounded random offset away (room layouts keep links short; the paper's
/// links are bench-scale).
LinkSpec link_near(phy::Vec2 anchor, double max_link_m, sim::RandomStream& rng,
                   const RandomCaseConfig& config) {
  const double angle = rng.uniform(0.0, 6.283185307179586);
  const double d = rng.uniform(0.5 * max_link_m, max_link_m);
  LinkSpec link;
  link.sender_pos = anchor;
  link.receiver_pos = {anchor.x + d * std::cos(angle), anchor.y + d * std::sin(angle)};
  link.tx_power = random_power(rng, config);
  return link;
}

}  // namespace

std::vector<NetworkSpec> bench_row(std::span<const phy::Mhz> channels,
                                   const BenchRowConfig& config) {
  assert(config.links_per_network >= 1);
  std::vector<NetworkSpec> specs;
  specs.reserve(channels.size());
  for (std::size_t n = 0; n < channels.size(); ++n) {
    NetworkSpec spec;
    spec.channel = channels[n];
    const double cx = config.network_spacing_m * static_cast<double>(n);
    for (int l = 0; l < config.links_per_network; ++l) {
      // Senders straddle the network center along the row; receivers sit one
      // link-distance off the row so links do not lie on top of each other.
      const double offset =
          (static_cast<double>(l) - (config.links_per_network - 1) / 2.0) * config.sender_gap_m;
      LinkSpec link;
      link.sender_pos = {cx + offset, 0.0};
      link.receiver_pos = {cx + offset, config.link_distance_m};
      link.tx_power = config.tx_power;
      spec.links.push_back(link);
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<NetworkSpec> case1_dense(std::span<const phy::Mhz> channels,
                                     sim::RandomStream& rng, const RandomCaseConfig& config) {
  std::vector<NetworkSpec> specs;
  specs.reserve(channels.size());
  for (const phy::Mhz channel : channels) {
    NetworkSpec spec;
    spec.channel = channel;
    for (int l = 0; l < config.links_per_network; ++l) {
      const phy::Vec2 anchor{rng.uniform(0.0, config.region_m), rng.uniform(0.0, config.region_m)};
      spec.links.push_back(link_near(anchor, config.link_distance_m, rng, config));
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<NetworkSpec> case2_clustered(std::span<const phy::Mhz> channels,
                                         sim::RandomStream& rng,
                                         const RandomCaseConfig& config) {
  std::vector<NetworkSpec> specs;
  specs.reserve(channels.size());
  for (std::size_t n = 0; n < channels.size(); ++n) {
    NetworkSpec spec;
    spec.channel = channels[n];
    // Rooms on a floor-plan grid (up to 3 per corridor), one network each.
    const phy::Vec2 room{config.room_spacing_m * static_cast<double>(n % 3),
                         config.room_spacing_m * static_cast<double>(n / 3)};
    for (int l = 0; l < config.links_per_network; ++l) {
      const phy::Vec2 anchor{room.x + rng.uniform(0.0, config.region_m),
                             room.y + rng.uniform(0.0, config.region_m)};
      spec.links.push_back(link_near(anchor, config.link_distance_m, rng, config));
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<NetworkSpec> case3_random(std::span<const phy::Mhz> channels,
                                      sim::RandomStream& rng, const RandomCaseConfig& config) {
  std::vector<NetworkSpec> specs;
  specs.reserve(channels.size());
  for (const phy::Mhz channel : channels) {
    NetworkSpec spec;
    spec.channel = channel;
    for (int l = 0; l < config.links_per_network; ++l) {
      const phy::Vec2 anchor{rng.uniform(0.0, config.field_m), rng.uniform(0.0, config.field_m)};
      spec.links.push_back(link_near(anchor, config.link_distance_m, rng, config));
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace nomc::net
