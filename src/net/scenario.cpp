#include "net/scenario.hpp"

#include <cassert>

namespace nomc::net {

struct Scenario::LinkRuntime {
  phy::NodeId sender_id = phy::kNoNode;
  phy::NodeId receiver_id = phy::kNoNode;
  std::unique_ptr<phy::Radio> sender_radio;
  std::unique_ptr<phy::Radio> receiver_radio;
  std::unique_ptr<mac::FixedCcaThreshold> fixed_cca;
  std::unique_ptr<dcn::CcaAdjustor> adjustor;  // only for DCN networks
  std::unique_ptr<mac::CsmaMac> sender_mac;
  std::unique_ptr<mac::CsmaMac> receiver_mac;
  stats::ThroughputMeter meter;
  bool traffic_enabled = true;
  // Counter snapshots at the start of the measurement window.
  stats::PacketCounters sender_baseline;
  stats::PacketCounters receiver_baseline;
};

struct Scenario::NetworkRuntime {
  phy::Mhz channel;
  Scheme scheme = Scheme::kFixedCca;
  std::vector<std::unique_ptr<LinkRuntime>> links;
};

namespace {

/// Window-scoped counters: end-of-run minus start-of-window snapshot.
stats::PacketCounters window_delta(const stats::PacketCounters& end,
                                   const stats::PacketCounters& base) {
  stats::PacketCounters d;
  d.sent = end.sent - base.sent;
  d.received = end.received - base.received;
  d.crc_failed = end.crc_failed - base.crc_failed;
  d.missed = end.missed - base.missed;
  d.recovered = end.recovered - base.recovered;
  d.cca_backoffs = end.cca_backoffs - base.cca_backoffs;
  d.cca_failures = end.cca_failures - base.cca_failures;
  d.collided = end.collided - base.collided;
  d.collided_received = end.collided_received - base.collided_received;
  d.acked = end.acked - base.acked;
  d.retransmissions = end.retransmissions - base.retransmissions;
  d.retry_drops = end.retry_drops - base.retry_drops;
  d.duplicates = end.duplicates - base.duplicates;
  d.queue_drops = end.queue_drops - base.queue_drops;
  return d;
}

}  // namespace

Scenario::Scenario(ScenarioConfig config) : config_{std::move(config)} {
  phy::MediumConfig medium_config = config_.medium;
  medium_config.seed = config_.seed;
  medium_ = std::make_unique<phy::Medium>(medium_config);
}

Scenario::~Scenario() = default;

int Scenario::add_network(phy::Mhz channel, Scheme scheme) {
  auto network = std::make_unique<NetworkRuntime>();
  network->channel = channel;
  network->scheme = scheme;
  networks_.push_back(std::move(network));
  return static_cast<int>(networks_.size()) - 1;
}

int Scenario::add_link(int network, const LinkSpec& spec) {
  assert(network >= 0 && network < network_count());
  assert(!ran_ && "scenario already ran");
  NetworkRuntime& net = *networks_[static_cast<std::size_t>(network)];

  auto link = std::make_unique<LinkRuntime>();
  link->sender_id = medium_->add_node(spec.sender_pos);
  link->receiver_id = medium_->add_node(spec.receiver_pos);

  phy::RadioConfig radio_config;
  radio_config.channel = net.channel;
  link->sender_radio =
      std::make_unique<phy::Radio>(scheduler_, *medium_,
                                   sim::RandomStream{config_.seed, next_stream()},
                                   link->sender_id, radio_config);
  link->receiver_radio =
      std::make_unique<phy::Radio>(scheduler_, *medium_,
                                   sim::RandomStream{config_.seed, next_stream()},
                                   link->receiver_id, radio_config);

  link->fixed_cca = std::make_unique<mac::FixedCcaThreshold>(config_.fixed_cca_threshold);
  mac::CcaThresholdProvider* sender_cca = link->fixed_cca.get();
  if (net.scheme == Scheme::kDcn) {
    link->adjustor =
        std::make_unique<dcn::CcaAdjustor>(scheduler_, *link->sender_radio, config_.dcn);
    sender_cca = link->adjustor.get();
  }

  mac::CsmaParams sender_params = config_.csma;
  if (net.scheme == Scheme::kCarrierSense) {
    sender_params.cca_mode = mac::CcaMode::kCarrierSense;
  }
  link->sender_mac = std::make_unique<mac::CsmaMac>(
      scheduler_, *medium_, *link->sender_radio,
      sim::RandomStream{config_.seed, next_stream()}, *sender_cca, sender_params);
  link->sender_mac->set_tx_power(spec.tx_power);
  // The receiver never transmits; it shares the sender's fixed provider only
  // because the MAC constructor requires one.
  link->receiver_mac = std::make_unique<mac::CsmaMac>(
      scheduler_, *medium_, *link->receiver_radio,
      sim::RandomStream{config_.seed, next_stream()}, *link->fixed_cca, config_.csma);

  // Feed the adjustor with overheard co-channel packet RSSI (CRC-pass only:
  // the RSSI field of decodable packets is what the mote firmware reads).
  if (link->adjustor != nullptr) {
    dcn::CcaAdjustor* adjustor = link->adjustor.get();
    link->sender_mac->set_rx_hook([adjustor](const phy::RxResult& rx) {
      if (rx.crc_ok) adjustor->on_co_channel_packet(rx.rssi);
    });
  }

  stats::ThroughputMeter* meter = &link->meter;
  sim::Scheduler* sched = &scheduler_;
  link->receiver_mac->set_delivery_hook(
      [meter, sched](const phy::RxResult&) { meter->record_delivery(sched->now()); });

  net.links.push_back(std::move(link));
  return static_cast<int>(net.links.size()) - 1;
}

void Scenario::add_networks(std::span<const NetworkSpec> specs, Scheme scheme) {
  for (const NetworkSpec& spec : specs) {
    const int n = add_network(spec.channel, scheme);
    for (const LinkSpec& link : spec.links) add_link(n, link);
  }
}

Scenario::LinkRuntime& Scenario::link_at(int network, int link) {
  assert(network >= 0 && network < network_count());
  auto& net = *networks_[static_cast<std::size_t>(network)];
  assert(link >= 0 && link < static_cast<int>(net.links.size()));
  return *net.links[static_cast<std::size_t>(link)];
}

const Scenario::LinkRuntime& Scenario::link_at(int network, int link) const {
  return const_cast<Scenario*>(this)->link_at(network, link);
}

mac::CsmaMac& Scenario::sender_mac(int network, int link) {
  return *link_at(network, link).sender_mac;
}
mac::CsmaMac& Scenario::receiver_mac(int network, int link) {
  return *link_at(network, link).receiver_mac;
}
phy::Radio& Scenario::sender_radio(int network, int link) {
  return *link_at(network, link).sender_radio;
}
phy::Radio& Scenario::receiver_radio(int network, int link) {
  return *link_at(network, link).receiver_radio;
}
mac::FixedCcaThreshold& Scenario::fixed_cca(int network, int link) {
  return *link_at(network, link).fixed_cca;
}
dcn::CcaAdjustor* Scenario::adjustor(int network, int link) {
  return link_at(network, link).adjustor.get();
}
void Scenario::set_traffic_enabled(int network, int link, bool enabled) {
  link_at(network, link).traffic_enabled = enabled;
}

int Scenario::link_count(int network) const {
  assert(network >= 0 && network < network_count());
  return static_cast<int>(networks_[static_cast<std::size_t>(network)]->links.size());
}

phy::Mhz Scenario::network_channel(int network) const {
  assert(network >= 0 && network < network_count());
  return networks_[static_cast<std::size_t>(network)]->channel;
}

void Scenario::run(sim::SimTime warmup, sim::SimTime measure) {
  start_run(warmup, measure);
  scheduler_.run_until(warmup + measure);
}

void Scenario::start_run(sim::SimTime warmup, sim::SimTime measure) {
  assert(!ran_ && "Scenario::run is one-shot");
  ran_ = true;
  const sim::SimTime window_start = warmup;
  const sim::SimTime window_end = warmup + measure;

  for (auto& net : networks_) {
    for (auto& link : net->links) {
      link->meter.set_window(window_start, window_end);
      if (link->adjustor != nullptr) link->adjustor->start();
      if (link->traffic_enabled) {
        mac::TxRequest request{link->receiver_id, config_.psdu_bytes};
        request.ack_request = config_.ack_request;
        link->sender_mac->set_saturated(request);
      }
    }
  }

  // Snapshot counters at the start of the window so results exclude warm-up.
  scheduler_.schedule_at(window_start, [this] {
    for (auto& net : networks_) {
      for (auto& link : net->links) {
        link->sender_baseline = link->sender_mac->counters();
        link->receiver_baseline = link->receiver_mac->counters();
      }
    }
  });
}

Scenario::NetworkResult Scenario::network_result(int network) const {
  assert(ran_);
  assert(network >= 0 && network < network_count());
  const NetworkRuntime& net = *networks_[static_cast<std::size_t>(network)];
  NetworkResult result;
  for (const auto& link : net.links) {
    LinkResult lr;
    lr.throughput_pps = link->meter.packets_per_second();
    lr.sender = window_delta(link->sender_mac->counters(), link->sender_baseline);
    lr.receiver = window_delta(link->receiver_mac->counters(), link->receiver_baseline);
    lr.prr = lr.sender.sent == 0
                 ? 1.0
                 : static_cast<double>(lr.receiver.received) /
                       static_cast<double>(lr.sender.sent);
    result.throughput_pps += lr.throughput_pps;
    result.links.push_back(std::move(lr));
  }
  return result;
}

std::vector<double> Scenario::network_throughputs() const {
  std::vector<double> out;
  out.reserve(networks_.size());
  for (int n = 0; n < network_count(); ++n) out.push_back(network_result(n).throughput_pps);
  return out;
}

double Scenario::overall_throughput() const {
  double total = 0.0;
  for (int n = 0; n < network_count(); ++n) total += network_result(n).throughput_pps;
  return total;
}

}  // namespace nomc::net
