// Scenario: builds and runs a complete multi-network deployment.
//
// This is the top-level public API most examples and all figure benches use:
// declare networks and links (or feed topology-generated NetworkSpecs),
// choose per-network channel-access scheme (fixed ZigBee CCA or DCN), run
// with a warm-up, and read per-link / per-network / overall results.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "dcn/cca_adjustor.hpp"
#include "mac/cca.hpp"
#include "mac/csma.hpp"
#include "net/spec.hpp"
#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "sim/scheduler.hpp"
#include "stats/counters.hpp"
#include "stats/throughput.hpp"

namespace nomc::net {

/// Channel-access scheme of a network's senders.
enum class Scheme {
  kFixedCca,      ///< default ZigBee: constant energy threshold
  kDcn,           ///< the paper's contribution: CCA-Adjustor per sender
  kCarrierSense,  ///< §VII-C future work: modulation-detect CCA (ignores
                  ///< inter-channel energy by construction)
};

struct ScenarioConfig {
  phy::MediumConfig medium{};
  mac::CsmaParams csma{};
  phy::Dbm fixed_cca_threshold = mac::kZigbeeDefaultCcaThreshold;
  dcn::DcnConfig dcn{};
  /// MAC PSDU (header + payload + FCS) of data frames. 100 bytes ≈ the
  /// saturation frame size that matches the testbed's ~250 packets/s per
  /// channel ceiling.
  int psdu_bytes = 100;
  /// Request MAC acknowledgements on the saturated data traffic. The paper's
  /// experiments run without ACKs (the default); tests enable this to drive
  /// cancel-heavy ACK-timer workloads through the full stack.
  bool ack_request = false;
  std::uint64_t seed = 1;
  /// Base offset for the RNG stream indices this scenario allocates (radio,
  /// MAC, adjustor streams). Region-sharded runs give every shard a disjoint
  /// block under the same seed so shard streams never collide; serial runs
  /// keep 0.
  std::uint64_t stream_base = 0;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config = {});
  ~Scenario();
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Declare a network on `channel` whose senders use `scheme`.
  /// Returns the network index.
  int add_network(phy::Mhz channel, Scheme scheme);

  /// Add a sender→receiver link to network `network`. Returns the link index
  /// within that network.
  int add_link(int network, const LinkSpec& spec);

  /// Instantiate `specs` wholesale under one scheme.
  void add_networks(std::span<const NetworkSpec> specs, Scheme scheme);

  // -- Pre-run customization hooks -------------------------------------
  [[nodiscard]] mac::CsmaMac& sender_mac(int network, int link);
  [[nodiscard]] mac::CsmaMac& receiver_mac(int network, int link);
  [[nodiscard]] phy::Radio& sender_radio(int network, int link);
  [[nodiscard]] phy::Radio& receiver_radio(int network, int link);
  /// The per-sender fixed threshold (also exists for DCN links, unused then).
  [[nodiscard]] mac::FixedCcaThreshold& fixed_cca(int network, int link);
  /// The per-sender adjustor; nullptr on fixed-CCA networks.
  [[nodiscard]] dcn::CcaAdjustor* adjustor(int network, int link);
  /// Disable saturated traffic for one link (drive it manually instead).
  void set_traffic_enabled(int network, int link, bool enabled);

  [[nodiscard]] sim::Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] phy::Medium& medium() { return *medium_; }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] int network_count() const { return static_cast<int>(networks_.size()); }
  [[nodiscard]] int link_count(int network) const;
  [[nodiscard]] phy::Mhz network_channel(int network) const;

  /// Start saturated sources and DCN adjustors, run for warmup + measure,
  /// and collect statistics over the measurement window only.
  void run(sim::SimTime warmup, sim::SimTime measure);

  /// The setup half of run(): arm traffic sources, adjustors, and the
  /// window-baseline snapshot without advancing time. A region-sharded run
  /// calls this on every shard and then drives all shard schedulers through
  /// one sim::RegionExecutor instead of the local run_until.
  void start_run(sim::SimTime warmup, sim::SimTime measure);

  // -- Results (valid after run) ----------------------------------------
  struct LinkResult {
    double throughput_pps = 0.0;           ///< deliveries/s in the window
    stats::PacketCounters sender;          ///< window-scoped sender counters
    stats::PacketCounters receiver;        ///< window-scoped receiver counters
    double prr = 0.0;                      ///< received / sent in the window
  };
  struct NetworkResult {
    double throughput_pps = 0.0;
    std::vector<LinkResult> links;
  };

  [[nodiscard]] NetworkResult network_result(int network) const;
  [[nodiscard]] std::vector<double> network_throughputs() const;
  [[nodiscard]] double overall_throughput() const;

 private:
  struct LinkRuntime;
  struct NetworkRuntime;

  [[nodiscard]] LinkRuntime& link_at(int network, int link);
  [[nodiscard]] const LinkRuntime& link_at(int network, int link) const;
  [[nodiscard]] std::uint64_t next_stream() { return config_.stream_base + stream_counter_++; }

  ScenarioConfig config_;
  sim::Scheduler scheduler_;
  std::unique_ptr<phy::Medium> medium_;
  std::vector<std::unique_ptr<NetworkRuntime>> networks_;
  std::uint64_t stream_counter_ = 0;
  bool ran_ = false;
};

}  // namespace nomc::net
