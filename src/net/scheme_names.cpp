#include "net/scheme_names.hpp"

namespace nomc::net {

bool parse_scheme(const std::string& name, Scheme& out) {
  if (name == "fixed") {
    out = Scheme::kFixedCca;
  } else if (name == "dcn") {
    out = Scheme::kDcn;
  } else if (name == "carrier-sense") {
    out = Scheme::kCarrierSense;
  } else {
    return false;
  }
  return true;
}

bool valid_topology(const std::string& name) {
  return name == "dense" || name == "clustered" || name == "random";
}

}  // namespace nomc::net
