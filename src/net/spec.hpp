// Declarative description of a deployment: networks, links, placement.
//
// A "network" follows the paper's usage: a group of nodes sharing one
// channel (each testbed network was 4 MicaZ motes = 2 sender→receiver
// links). A scenario is a set of networks spread across the band.
#pragma once

#include <vector>

#include "phy/geometry.hpp"
#include "phy/units.hpp"

namespace nomc::net {

struct LinkSpec {
  phy::Vec2 sender_pos;
  phy::Vec2 receiver_pos;
  phy::Dbm tx_power{0.0};
};

struct NetworkSpec {
  phy::Mhz channel;
  std::vector<LinkSpec> links;
};

}  // namespace nomc::net
