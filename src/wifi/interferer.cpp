#include "wifi/interferer.hpp"

#include <cassert>

namespace nomc::wifi {

const phy::ChannelRejection& emission_mask() {
  static const phy::ChannelRejection mask{{
      {phy::Mhz{0.0}, phy::Db{0.0}},
      {phy::Mhz{5.0}, phy::Db{1.0}},
      {phy::Mhz{10.0}, phy::Db{4.0}},
      {phy::Mhz{15.0}, phy::Db{10.0}},
      {phy::Mhz{20.0}, phy::Db{18.0}},
      {phy::Mhz{25.0}, phy::Db{32.0}},
      {phy::Mhz{30.0}, phy::Db{45.0}},
      {phy::Mhz{50.0}, phy::Db{60.0}},
  }};
  return mask;
}

WifiInterferer::WifiInterferer(sim::Scheduler& scheduler, phy::Medium& medium,
                               phy::Vec2 position, WifiInterfererConfig config)
    : scheduler_{scheduler},
      medium_{medium},
      node_{medium.add_node(position)},
      config_{config} {
  assert(config_.burst > sim::SimTime::zero());
  assert(config_.period > config_.burst);
}

WifiInterferer::~WifiInterferer() { stop(); }

void WifiInterferer::start() {
  if (running_) return;
  running_ = true;
  timer_ = scheduler_.schedule_in(config_.period, [this] { begin_burst(); });
}

void WifiInterferer::stop() {
  running_ = false;
  if (timer_ != sim::kInvalidEventId) {
    scheduler_.cancel(timer_);
    timer_ = sim::kInvalidEventId;
  }
  // A burst already on the air ends through its scheduled end event.
}

void WifiInterferer::begin_burst() {
  timer_ = sim::kInvalidEventId;
  if (!running_) return;
  assert(!on_air_ && "period must exceed burst");

  phy::Frame frame;
  frame.id = medium_.allocate_frame_id();
  frame.src = node_;
  frame.channel = config_.center;
  frame.tx_power = config_.tx_power;
  // PSDU is irrelevant for an opaque energy burst; duration is burst length.
  frame.psdu_bytes = 1;
  frame.emission = &emission_mask();
  medium_.begin_tx(frame);
  on_air_ = true;
  current_ = frame.id;
  ++bursts_;

  end_timer_ = scheduler_.schedule_in(config_.burst, [this] {
    end_timer_ = sim::kInvalidEventId;
    medium_.end_tx(current_);
    on_air_ = false;
    if (running_) {
      timer_ = scheduler_.schedule_in(config_.period - config_.burst,
                                      [this] { begin_burst(); });
    }
  });
}

}  // namespace nomc::wifi
