#include "wifi/contrast.hpp"

#include <memory>
#include <optional>

#include "mac/cca.hpp"
#include "mac/csma.hpp"
#include "phy/medium.hpp"
#include "phy/radio.hpp"
#include "sim/scheduler.hpp"
#include "stats/throughput.hpp"
#include "wifi/interferer.hpp"

namespace nomc::wifi {
namespace {

/// 802.11b DSSS spectral containment: 22 MHz-wide channels whose energy only
/// clears ~25 MHz away (hence "orthogonal" channels 1/6/11 are 25 MHz apart).
/// Shared with the coexistence interferer's emission mask.
phy::ChannelRejection wifi_mask() { return emission_mask(); }

struct StandardTraits {
  phy::ChannelRejection rejection;
  phy::Mhz lock_bandwidth;
  phy::BerModel ber_model;
  phy::Dbm cca_threshold;
};

StandardTraits traits_for(Standard standard) {
  switch (standard) {
    case Standard::k80211b:
      // Lock window of ~3 channel numbers: Mishra et al. observe receivers
      // decoding packets from 15 MHz away. DCF's carrier sense is modelled
      // with the 802.11 ED threshold.
      return {wifi_mask(), phy::Mhz{16.0}, phy::BerModel::kDsss11b, phy::Dbm{-82.0}};
    case Standard::k802154:
      return {phy::ChannelRejection{}, phy::Mhz{0.5}, phy::BerModel::kOqpsk154,
              mac::kZigbeeDefaultCcaThreshold};
  }
  return {phy::ChannelRejection{}, phy::Mhz{0.5}, phy::BerModel::kOqpsk154,
          mac::kZigbeeDefaultCcaThreshold};
}

/// One saturated sender→receiver pair assembled on a shared medium.
struct LinkParts {
  phy::NodeId sender_id;
  phy::NodeId receiver_id;
  std::unique_ptr<phy::Radio> sender_radio;
  std::unique_ptr<phy::Radio> receiver_radio;
  std::unique_ptr<mac::FixedCcaThreshold> cca;
  std::unique_ptr<mac::CsmaMac> sender_mac;
  std::unique_ptr<mac::CsmaMac> receiver_mac;
  stats::ThroughputMeter meter;
};

std::unique_ptr<LinkParts> make_link(sim::Scheduler& scheduler, phy::Medium& medium,
                                     const StandardTraits& traits, phy::Mhz channel,
                                     phy::Vec2 sender_pos, phy::Vec2 receiver_pos,
                                     phy::Dbm tx_power, std::uint64_t seed,
                                     std::uint64_t& stream) {
  auto link = std::make_unique<LinkParts>();
  link->sender_id = medium.add_node(sender_pos);
  link->receiver_id = medium.add_node(receiver_pos);

  phy::RadioConfig radio_config;
  radio_config.channel = channel;
  radio_config.lock_bandwidth = traits.lock_bandwidth;
  radio_config.ber_model = traits.ber_model;
  link->sender_radio = std::make_unique<phy::Radio>(
      scheduler, medium, sim::RandomStream{seed, stream++}, link->sender_id, radio_config);
  link->receiver_radio = std::make_unique<phy::Radio>(
      scheduler, medium, sim::RandomStream{seed, stream++}, link->receiver_id, radio_config);

  link->cca = std::make_unique<mac::FixedCcaThreshold>(traits.cca_threshold);
  link->sender_mac = std::make_unique<mac::CsmaMac>(scheduler, medium, *link->sender_radio,
                                                    sim::RandomStream{seed, stream++},
                                                    *link->cca);
  link->sender_mac->set_tx_power(tx_power);
  link->receiver_mac = std::make_unique<mac::CsmaMac>(scheduler, medium, *link->receiver_radio,
                                                      sim::RandomStream{seed, stream++},
                                                      *link->cca);

  stats::ThroughputMeter* meter = &link->meter;
  sim::Scheduler* sched = &scheduler;
  link->receiver_mac->set_delivery_hook(
      [meter, sched](const phy::RxResult&) { meter->record_delivery(sched->now()); });
  return link;
}

double victim_throughput(Standard standard, const ContrastConfig& config,
                         std::optional<int> separation) {
  const StandardTraits traits = traits_for(standard);

  sim::Scheduler scheduler;
  phy::MediumConfig medium_config;
  medium_config.rejection = traits.rejection;
  // The contrast model folds both paths into one curve per standard.
  medium_config.sensing_rejection = traits.rejection;
  medium_config.seed = config.seed;
  phy::Medium medium{medium_config};

  std::uint64_t stream = 0;
  const phy::Mhz victim_channel{2437.0};

  auto victim = make_link(scheduler, medium, traits, victim_channel, {0.0, 0.0},
                          {0.0, config.link_distance_m}, config.tx_power, config.seed, stream);

  std::unique_ptr<LinkParts> interferer;
  if (separation.has_value()) {
    const phy::Mhz channel =
        victim_channel + phy::Mhz{config.channel_step.value * static_cast<double>(*separation)};
    interferer = make_link(scheduler, medium, traits, channel, {config.network_spacing_m, 0.0},
                           {config.network_spacing_m, config.link_distance_m}, config.tx_power,
                           config.seed, stream);
  }

  const sim::SimTime warmup = sim::SimTime::seconds(1.0);
  const sim::SimTime end = warmup + sim::SimTime::seconds(config.measure_seconds);
  victim->meter.set_window(warmup, end);
  victim->sender_mac->set_saturated(mac::TxRequest{victim->receiver_id, 100});
  if (interferer) {
    interferer->sender_mac->set_saturated(mac::TxRequest{interferer->receiver_id, 100});
  }
  scheduler.run_until(end);
  return victim->meter.packets_per_second();
}

}  // namespace

ContrastResult run_contrast(Standard standard, const ContrastConfig& config) {
  ContrastResult result;
  result.baseline_pps = victim_throughput(standard, config, std::nullopt);
  for (int sep = 0; sep <= config.max_separation; ++sep) {
    ContrastPoint point;
    point.separation = sep;
    point.throughput_pps = victim_throughput(standard, config, sep);
    point.normalized =
        result.baseline_pps > 0.0 ? point.throughput_pps / result.baseline_pps : 0.0;
    result.points.push_back(point);
  }
  return result;
}

}  // namespace nomc::wifi
