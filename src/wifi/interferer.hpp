// External wideband interferer: a colocated 802.11 network sharing the
// 2.4 GHz ISM band with the sensor deployment.
//
// The paper's introduction names "interferences caused by other wireless
// networks" as one reason usable channels are scarce (via Wu et al.'s
// TMCP). This models it: a transmitter whose frames carry the 802.11b DSSS
// emission mask, so its energy lands in 802.15.4 receivers/CCAs tens of MHz
// away — unlike a narrowband 802.15.4 interferer, the victim's channel
// filter cannot reject the part of the Wi-Fi spectrum that falls in-band.
#pragma once

#include "phy/medium.hpp"
#include "sim/scheduler.hpp"

namespace nomc::wifi {

/// The 802.11b 22 MHz DSSS spectral mask (also used by the Fig. 2 model).
[[nodiscard]] const phy::ChannelRejection& emission_mask();

struct WifiInterfererConfig {
  phy::Mhz center{2442.0};  ///< 802.11 channel 7
  phy::Dbm tx_power{15.0};  ///< typical AP EIRP
  /// Busy/idle cycle: e.g. 2 ms bursts every 10 ms = 20 % duty.
  sim::SimTime burst = sim::SimTime::milliseconds(2);
  sim::SimTime period = sim::SimTime::milliseconds(10);
};

/// Drives the medium directly (Wi-Fi frames are opaque energy to 802.15.4;
/// no Radio object is needed — nothing here can receive them).
class WifiInterferer {
 public:
  WifiInterferer(sim::Scheduler& scheduler, phy::Medium& medium, phy::Vec2 position,
                 WifiInterfererConfig config = {});
  ~WifiInterferer();
  WifiInterferer(const WifiInterferer&) = delete;
  WifiInterferer& operator=(const WifiInterferer&) = delete;

  void start();
  void stop();

  [[nodiscard]] phy::NodeId node() const { return node_; }
  [[nodiscard]] std::uint64_t bursts() const { return bursts_; }

 private:
  void begin_burst();

  sim::Scheduler& scheduler_;
  phy::Medium& medium_;
  phy::NodeId node_;
  WifiInterfererConfig config_;
  bool running_ = false;
  bool on_air_ = false;
  phy::FrameId current_ = 0;
  sim::EventId timer_ = sim::kInvalidEventId;
  sim::EventId end_timer_ = sim::kInvalidEventId;
  std::uint64_t bursts_ = 0;
};

}  // namespace nomc::wifi
