// The 802.11b vs 802.15.4 "uniqueness" experiment (paper Fig. 2, after
// Mishra et al., SIGMETRICS'06).
//
// Two saturated links; the victim link stays on a fixed channel while the
// interfering link moves away one channel number at a time. The figure plots
// the victim's throughput normalized to its isolated-channel value.
//
// The standards differ in exactly two modelled ways, and those two produce
// the paper's contrast:
//   * Spectral containment: 802.11b's 22 MHz DSSS mask decays slowly (its
//     channels only clear at 25 MHz separation); 802.15.4's 2 MHz O-QPSK
//     channels decay fast.
//   * Lock behaviour: an 802.11b receiver synchronizes to any overlapped-
//     channel preamble ("forced to decode", losing its own frame); an
//     802.15.4 receiver never locks off-channel — inter-channel energy is
//     just noise.
//
// Timing uses the 802.15.4 clock for both; the output is normalized, so
// only the relative airtime bookkeeping matters.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/units.hpp"

namespace nomc::wifi {

enum class Standard { k80211b, k802154 };

struct ContrastConfig {
  /// Channel-number separations to evaluate (x axis of Fig. 2).
  int max_separation = 10;
  /// Channel spacing per channel number: 5 MHz for both standards' plans.
  phy::Mhz channel_step{5.0};
  double link_distance_m = 2.0;
  double network_spacing_m = 3.0;
  phy::Dbm tx_power{0.0};
  double measure_seconds = 8.0;
  std::uint64_t seed = 7;
};

struct ContrastPoint {
  int separation = 0;                 ///< channel numbers between the links
  double throughput_pps = 0.0;        ///< victim link deliveries/s
  double normalized = 0.0;            ///< vs the isolated baseline
};

/// Victim-link throughput at each separation, plus the isolated baseline at
/// index 0 of the returned pair.
struct ContrastResult {
  double baseline_pps = 0.0;
  std::vector<ContrastPoint> points;
};

[[nodiscard]] ContrastResult run_contrast(Standard standard, const ContrastConfig& config = {});

}  // namespace nomc::wifi
