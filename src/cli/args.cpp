#include "cli/args.hpp"

#include <cassert>
#include <cerrno>
#include <climits>
#include <cstdlib>

namespace nomc::cli {
namespace {

bool parse_double(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty();
}

bool parse_int(const std::string& text, int& out) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty()) return false;
  if (errno == ERANGE || value < INT_MIN || value > INT_MAX) return false;
  out = static_cast<int>(value);
  return true;
}

}  // namespace

void ArgParser::add_string(const std::string& name, std::string default_value,
                           std::string description) {
  options_[name] = Option{Type::kString, std::move(default_value), std::move(description), {}};
}

void ArgParser::add_double(const std::string& name, double default_value,
                           std::string description) {
  options_[name] =
      Option{Type::kDouble, std::to_string(default_value), std::move(description), {}};
}

void ArgParser::add_int(const std::string& name, int default_value, std::string description) {
  options_[name] = Option{Type::kInt, std::to_string(default_value), std::move(description), {}};
}

void ArgParser::add_flag(const std::string& name, std::string description) {
  options_[name] = Option{Type::kFlag, "false", std::move(description), {}};
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      help_ = true;
      continue;
    }
    if (token.rfind("--", 0) != 0) {
      error_ = "unexpected argument: " + token;
      return false;
    }
    token.erase(0, 2);

    std::string value;
    bool has_value = false;
    if (const auto eq = token.find('='); eq != std::string::npos) {
      value = token.substr(eq + 1);
      token.resize(eq);
      has_value = true;
    }

    const auto it = options_.find(token);
    if (it == options_.end()) {
      error_ = "unknown option: --" + token;
      return false;
    }
    Option& option = it->second;

    if (option.type == Type::kFlag) {
      if (has_value) {
        error_ = "flag --" + token + " takes no value";
        return false;
      }
      option.value = "true";
      continue;
    }

    if (!has_value) {
      if (i + 1 >= argc) {
        error_ = "missing value for --" + token;
        return false;
      }
      value = argv[i + 1];
      // A "--..." token after a string option is a forgotten value, not a
      // value that happens to start with dashes. Numeric options keep the
      // token ("-55" is a value) and fail number parsing below if it was
      // really an option.
      if (option.type == Type::kString && value.rfind("--", 0) == 0) {
        error_ = "missing value for --" + token + " (next token is " + value + ")";
        return false;
      }
      ++i;
    }
    if (option.type != Type::kString && value.empty()) {
      error_ = "empty value for --" + token;
      return false;
    }
    if (option.type == Type::kDouble) {
      double parsed = 0.0;
      if (!parse_double(value, parsed)) {
        error_ = "not a number for --" + token + ": " + value;
        return false;
      }
    } else if (option.type == Type::kInt) {
      int parsed = 0;
      if (!parse_int(value, parsed)) {
        error_ = "not an integer for --" + token + ": " + value;
        return false;
      }
    }
    option.value = value;
  }
  return true;
}

std::string ArgParser::help(const std::string& program) const {
  std::string out = "usage: " + program + " [options]\n\noptions:\n";
  for (const auto& [name, option] : options_) {
    out += "  --" + name;
    if (option.type != Type::kFlag) out += " <" + option.default_value + ">";
    out += "\n      " + option.description + "\n";
  }
  out += "  --help\n      show this message\n";
  return out;
}

const ArgParser::Option& ArgParser::require(const std::string& name, Type type) const {
  const auto it = options_.find(name);
  assert(it != options_.end() && "option was never declared");
  assert(it->second.type == type && "option accessed with the wrong type");
  (void)type;
  return it->second;
}

std::string ArgParser::get_string(const std::string& name) const {
  const Option& option = require(name, Type::kString);
  return option.value.value_or(option.default_value);
}

double ArgParser::get_double(const std::string& name) const {
  const Option& option = require(name, Type::kDouble);
  double out = 0.0;
  const bool ok = parse_double(option.value.value_or(option.default_value), out);
  assert(ok);
  (void)ok;
  return out;
}

int ArgParser::get_int(const std::string& name) const {
  const Option& option = require(name, Type::kInt);
  int out = 0;
  const bool ok = parse_int(option.value.value_or(option.default_value), out);
  assert(ok);
  (void)ok;
  return out;
}

bool ArgParser::get_flag(const std::string& name) const {
  const Option& option = require(name, Type::kFlag);
  return option.value.has_value();
}

bool ArgParser::provided(const std::string& name) const {
  const auto it = options_.find(name);
  return it != options_.end() && it->second.value.has_value();
}

}  // namespace nomc::cli
