#include "cli/options.hpp"

#include <cstdio>

namespace nomc::cli {

void add_scheme_option(ArgParser& args, const std::string& option,
                       const std::string& default_value, const std::string& what) {
  args.add_string(option, default_value,
                  what.empty() ? "channel access scheme: " + std::string{kSchemeChoices}
                               : what + ": " + kSchemeChoices);
}

void add_topology_option(ArgParser& args, const std::string& option,
                         const std::string& default_value) {
  args.add_string(option, default_value, "deployment: " + std::string{kTopologyChoices});
}

bool scheme_from_args(const ArgParser& args, const std::string& option, net::Scheme& out) {
  const std::string name = args.get_string(option);
  if (!parse_scheme(name, out)) {
    std::fprintf(stderr, "unknown --%s '%s' (%s)\n", option.c_str(), name.c_str(),
                 kSchemeChoices);
    return false;
  }
  return true;
}

bool topology_from_args(const ArgParser& args, const std::string& option, std::string& out) {
  out = args.get_string(option);
  if (!valid_topology(out)) {
    std::fprintf(stderr, "unknown --%s '%s' (%s)\n", option.c_str(), out.c_str(),
                 kTopologyChoices);
    return false;
  }
  return true;
}

std::optional<int> parse_standard(ArgParser& args, int argc, const char* const* argv,
                                  const std::string& program, int first) {
  if (!args.parse(argc - first, argv + first)) {
    std::fprintf(stderr, "%s\n%s", args.error().c_str(), args.help(program).c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::fputs(args.help(program).c_str(), stdout);
    return 0;
  }
  return std::nullopt;
}

}  // namespace nomc::cli
