// Shared option vocabulary for the nomc driver tools.
//
// Every tool that exposes a channel-access scheme or a deployment topology
// declares it through these helpers, so the choice strings, help text, and
// string→enum parsing live in exactly one place (nomc-sim, nomc-compare,
// nomc-campaign, and the exp spec parser are the consumers).
#pragma once

#include <optional>
#include <string>

#include "cli/args.hpp"
#include "net/scheme_names.hpp"

namespace nomc::cli {

// The names themselves live with the scenario vocabulary in
// net/scheme_names.hpp; re-exported here so option-centric code keeps
// reading cli::parse_scheme.
using net::kSchemeChoices;
using net::kTopologyChoices;
using net::parse_scheme;
using net::valid_topology;

/// Declare a scheme option named `option` (e.g. "scheme", "a-scheme").
/// `what` prefixes the help text ("design A: ..."); may be empty.
void add_scheme_option(ArgParser& args, const std::string& option,
                       const std::string& default_value, const std::string& what = "");

/// Declare a topology option (default name "topology").
void add_topology_option(ArgParser& args, const std::string& option = "topology",
                         const std::string& default_value = "dense");

/// Read + validate a declared scheme option; prints to stderr on failure.
[[nodiscard]] bool scheme_from_args(const ArgParser& args, const std::string& option,
                                    net::Scheme& out);

/// Read + validate a declared topology option; prints to stderr on failure.
[[nodiscard]] bool topology_from_args(const ArgParser& args, const std::string& option,
                                      std::string& out);

/// The tools' shared main() prologue: parse `argv[first..argc-1]`, print the
/// error + usage on failure (exit code 2) or the help text on --help (exit
/// code 0). Returns nullopt when the tool should proceed.
[[nodiscard]] std::optional<int> parse_standard(ArgParser& args, int argc,
                                                const char* const* argv,
                                                const std::string& program, int first = 1);

}  // namespace nomc::cli
