// Minimal typed command-line parser for the simulation driver tools.
//
// Supports "--key value" and "--key=value", typed defaults, and generated
// help text. Unknown options are errors (typo protection); positional
// arguments are not supported (the tools take none).
//
// Edge-case contract:
//   * A repeated option is not an error; the last value wins.
//   * "--key=" supplies an empty value: legal for string options, an error
//     for numeric ones.
//   * Negative numbers work both as "--cca -55" and "--cca=-55"; a
//     space-separated value is never mistaken for an option, except that a
//     token starting with "--" after a *string* option is rejected as a
//     missing value (it is always a forgotten argument in practice).
//   * Integer values must fit in int; out-of-range input is an error, not a
//     silent truncation.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nomc::cli {

class ArgParser {
 public:
  /// Declare an option with its default (shown in --help).
  void add_string(const std::string& name, std::string default_value,
                  std::string description);
  void add_double(const std::string& name, double default_value, std::string description);
  void add_int(const std::string& name, int default_value, std::string description);
  void add_flag(const std::string& name, std::string description);

  /// Parse argv (excluding argv[0]). Returns false and sets error() on any
  /// unknown option, missing value, or malformed number.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] bool help_requested() const { return help_; }
  [[nodiscard]] std::string help(const std::string& program) const;

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] int get_int(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// True when the option was explicitly supplied on the command line.
  [[nodiscard]] bool provided(const std::string& name) const;

 private:
  enum class Type { kString, kDouble, kInt, kFlag };
  struct Option {
    Type type;
    std::string default_value;
    std::string description;
    std::optional<std::string> value;
  };

  [[nodiscard]] const Option& require(const std::string& name, Type type) const;

  std::map<std::string, Option> options_;
  std::string error_;
  bool help_ = false;
};

}  // namespace nomc::cli
