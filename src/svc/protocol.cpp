#include "svc/protocol.hpp"

namespace nomc::svc {

void LineSplitter::feed(const std::string& bytes) {
  for (const char byte : bytes) {
    if (byte == '\n') {
      if (discarding_) {
        lines_.emplace_back();
        oversized_.push_back(true);
        discarding_ = false;
      } else {
        lines_.push_back(std::move(buffer_));
        oversized_.push_back(false);
      }
      buffer_.clear();
      continue;
    }
    if (discarding_) continue;
    buffer_.push_back(byte);
    if (buffer_.size() >= max_line_) {
      buffer_.clear();
      discarding_ = true;
    }
  }
}

bool LineSplitter::take(std::string& line, bool& oversized) {
  if (next_ >= lines_.size()) {
    if (next_ != 0) {
      lines_.clear();
      oversized_.clear();
      next_ = 0;
    }
    return false;
  }
  line = std::move(lines_[next_]);
  oversized = oversized_[next_];
  ++next_;
  return true;
}

bool parse_request(const std::string& line, Request& out, std::string& error) {
  exp::JsonValue root;
  if (!exp::parse_json(line, root, error)) {
    error = "bad JSON: " + error;
    return false;
  }
  if (root.type != exp::JsonValue::Type::kObject) {
    error = "request must be a JSON object";
    return false;
  }
  const exp::JsonValue* op = root.find("op");
  if (op == nullptr || op->type != exp::JsonValue::Type::kString || op->string.empty()) {
    error = "request needs a string \"op\"";
    return false;
  }
  out = Request{};
  out.op = op->string;
  if (const exp::JsonValue* spec = root.find("spec");
      spec != nullptr && spec->type == exp::JsonValue::Type::kString)
    out.spec = spec->string;
  if (const exp::JsonValue* hash = root.find("spec_hash");
      hash != nullptr && hash->type == exp::JsonValue::Type::kString)
    out.spec_hash = hash->string;
  if (const exp::JsonValue* point = root.find("point");
      point != nullptr && point->type == exp::JsonValue::Type::kNumber) {
    out.point = static_cast<int>(point->number);
    out.has_point = true;
  }
  return true;
}

std::string error_reply(const std::string& message) {
  std::string out = "{\"ok\":false,\"error\":";
  exp::json_append_string(out, message);
  out += '}';
  return out;
}

std::string pong_reply() { return "{\"ok\":true,\"pong\":true}"; }

std::string submit_reply(const std::string& spec_hash, const std::string& campaign,
                         int points, int done) {
  std::string out = "{\"ok\":true,\"spec_hash\":";
  exp::json_append_string(out, spec_hash);
  out += ",\"campaign\":";
  exp::json_append_string(out, campaign);
  out += ",\"points\":" + std::to_string(points);
  out += ",\"done\":" + std::to_string(done);
  out += '}';
  return out;
}

std::string status_reply(const StatusInfo& info) {
  std::string out = "{\"ok\":true,\"submissions\":" + std::to_string(info.submissions);
  out += ",\"computed\":" + std::to_string(info.computed);
  out += ",\"cache_hits\":" + std::to_string(info.cache_hits);
  out += ",\"campaigns\":" + std::to_string(info.campaigns);
  if (!info.campaign.empty()) {
    out += ",\"campaign\":";
    exp::json_append_string(out, info.campaign);
    out += ",\"spec_hash\":";
    exp::json_append_string(out, info.spec_hash);
    out += ",\"points\":" + std::to_string(info.points);
    out += ",\"done\":" + std::to_string(info.done);
  }
  out += '}';
  return out;
}

std::string query_reply(const std::string& record_line) {
  std::string out = "{\"ok\":true,\"record\":";
  exp::json_append_string(out, record_line);
  out += '}';
  return out;
}

std::string export_row(const std::string& csv_line) {
  std::string out = "{\"csv\":";
  exp::json_append_string(out, csv_line);
  out += '}';
  return out;
}

std::string export_done(std::uint64_t rows) {
  return "{\"ok\":true,\"done\":true,\"rows\":" + std::to_string(rows) + "}";
}

std::string shutdown_reply() { return "{\"ok\":true,\"shutdown\":true}"; }

bool parse_reply(const std::string& line, exp::JsonValue& out, std::string& error) {
  if (!exp::parse_json(line, out, error)) {
    error = "bad reply JSON: " + error;
    return false;
  }
  if (out.type != exp::JsonValue::Type::kObject) {
    error = "reply must be a JSON object";
    return false;
  }
  return true;
}

}  // namespace nomc::svc
