#include "svc/protocol.hpp"

namespace nomc::svc {

void LineSplitter::feed(const std::string& bytes) {
  for (const char byte : bytes) {
    if (byte == '\n') {
      if (discarding_) {
        lines_.emplace_back();
        oversized_.push_back(true);
        discarding_ = false;
      } else {
        lines_.push_back(std::move(buffer_));
        oversized_.push_back(false);
      }
      buffer_.clear();
      continue;
    }
    if (discarding_) continue;
    buffer_.push_back(byte);
    if (buffer_.size() >= max_line_) {
      buffer_.clear();
      discarding_ = true;
    }
  }
}

bool LineSplitter::take(std::string& line, bool& oversized) {
  if (next_ >= lines_.size()) {
    if (next_ != 0) {
      lines_.clear();
      oversized_.clear();
      next_ = 0;
    }
    return false;
  }
  line = std::move(lines_[next_]);
  oversized = oversized_[next_];
  ++next_;
  return true;
}

bool parse_request(const std::string& line, Request& out, std::string& error) {
  exp::JsonValue root;
  if (!exp::parse_json(line, root, error)) {
    error = "bad JSON: " + error;
    return false;
  }
  if (root.type != exp::JsonValue::Type::kObject) {
    error = "request must be a JSON object";
    return false;
  }
  const exp::JsonValue* op = root.find("op");
  if (op == nullptr || op->type != exp::JsonValue::Type::kString || op->string.empty()) {
    error = "request needs a string \"op\"";
    return false;
  }
  out = Request{};
  out.op = op->string;
  if (const exp::JsonValue* spec = root.find("spec");
      spec != nullptr && spec->type == exp::JsonValue::Type::kString)
    out.spec = spec->string;
  if (const exp::JsonValue* hash = root.find("spec_hash");
      hash != nullptr && hash->type == exp::JsonValue::Type::kString)
    out.spec_hash = hash->string;
  if (const exp::JsonValue* point = root.find("point");
      point != nullptr && point->type == exp::JsonValue::Type::kNumber) {
    out.point = static_cast<int>(point->number);
    out.has_point = true;
  }
  return true;
}

std::string error_reply(const std::string& message) {
  std::string out = "{\"ok\":false,\"error\":";
  exp::json_append_string(out, message);
  out += '}';
  return out;
}

std::string pong_reply() { return "{\"ok\":true,\"pong\":true}"; }

std::string submit_reply(const std::string& spec_hash, const std::string& campaign,
                         int points, int done) {
  std::string out = "{\"ok\":true,\"spec_hash\":";
  exp::json_append_string(out, spec_hash);
  out += ",\"campaign\":";
  exp::json_append_string(out, campaign);
  out += ",\"points\":" + std::to_string(points);
  out += ",\"done\":" + std::to_string(done);
  out += '}';
  return out;
}

std::string status_reply(const StatusInfo& info) {
  std::string out = "{\"ok\":true,\"submissions\":" + std::to_string(info.submissions);
  out += ",\"computed\":" + std::to_string(info.computed);
  out += ",\"cache_hits\":" + std::to_string(info.cache_hits);
  out += ",\"campaigns\":" + std::to_string(info.campaigns);
  out += ",\"retried\":" + std::to_string(info.retried);
  if (!info.campaign.empty()) {
    out += ",\"campaign\":";
    exp::json_append_string(out, info.campaign);
    out += ",\"spec_hash\":";
    exp::json_append_string(out, info.spec_hash);
    out += ",\"points\":" + std::to_string(info.points);
    out += ",\"done\":" + std::to_string(info.done);
    if (!info.state.empty()) {
      out += ",\"state\":";
      exp::json_append_string(out, info.state);
      if (info.state == "failed") {
        out += ",\"failed_first\":" + std::to_string(info.failed_first);
        out += ",\"failed_count\":" + std::to_string(info.failed_count);
      }
    }
  }
  out += '}';
  return out;
}

std::string query_reply(const std::string& record_line) {
  std::string out = "{\"ok\":true,\"record\":";
  exp::json_append_string(out, record_line);
  out += '}';
  return out;
}

std::string export_row(const std::string& csv_line) {
  std::string out = "{\"csv\":";
  exp::json_append_string(out, csv_line);
  out += '}';
  return out;
}

std::string export_done(std::uint64_t rows) {
  return "{\"ok\":true,\"done\":true,\"rows\":" + std::to_string(rows) + "}";
}

std::string shutdown_reply() { return "{\"ok\":true,\"shutdown\":true}"; }

bool parse_reply(const std::string& line, exp::JsonValue& out, std::string& error) {
  if (!exp::parse_json(line, out, error)) {
    error = "bad reply JSON: " + error;
    return false;
  }
  if (out.type != exp::JsonValue::Type::kObject) {
    error = "reply must be a JSON object";
    return false;
  }
  return true;
}

std::string lease_line(const LeaseRequest& lease) {
  std::string out = "{\"op\":\"lease\",\"spec\":";
  exp::json_append_string(out, lease.spec);
  out += ",\"first\":" + std::to_string(lease.first);
  out += ",\"count\":" + std::to_string(lease.count);
  out += ",\"jobs\":" + std::to_string(lease.jobs);
  out += ",\"trial_workers\":" + std::to_string(lease.trial_workers);
  out += '}';
  return out;
}

bool parse_lease(const std::string& line, LeaseRequest& out, std::string& error) {
  exp::JsonValue root;
  if (!exp::parse_json(line, root, error)) {
    error = "bad lease JSON: " + error;
    return false;
  }
  const exp::JsonValue* op = root.find("op");
  if (op == nullptr || op->type != exp::JsonValue::Type::kString || op->string != "lease") {
    error = "not a lease line";
    return false;
  }
  const exp::JsonValue* spec = root.find("spec");
  const exp::JsonValue* first = root.find("first");
  const exp::JsonValue* count = root.find("count");
  if (spec == nullptr || spec->type != exp::JsonValue::Type::kString ||
      first == nullptr || first->type != exp::JsonValue::Type::kNumber ||
      count == nullptr || count->type != exp::JsonValue::Type::kNumber) {
    error = "lease needs \"spec\", \"first\", and \"count\"";
    return false;
  }
  out = LeaseRequest{};
  out.spec = spec->string;
  out.first = static_cast<int>(first->number);
  out.count = static_cast<int>(count->number);
  if (const exp::JsonValue* jobs = root.find("jobs");
      jobs != nullptr && jobs->type == exp::JsonValue::Type::kNumber)
    out.jobs = static_cast<int>(jobs->number);
  if (const exp::JsonValue* trial_workers = root.find("trial_workers");
      trial_workers != nullptr && trial_workers->type == exp::JsonValue::Type::kNumber)
    out.trial_workers = static_cast<int>(trial_workers->number);
  return true;
}

std::string worker_record_line(int point, double wall_ms, const std::string& record) {
  std::string out = "{\"point\":" + std::to_string(point) + ",\"wall_ms\":";
  exp::json_append_double(out, wall_ms);
  out += ",\"record\":";
  exp::json_append_string(out, record);
  out += '}';
  return out;
}

std::string worker_done_line(int first, int count) {
  return "{\"done\":true,\"first\":" + std::to_string(first) +
         ",\"count\":" + std::to_string(count) + "}";
}

bool parse_worker_reply(const std::string& line, WorkerReply& out, std::string& error) {
  exp::JsonValue root;
  if (!exp::parse_json(line, root, error)) {
    error = "bad worker JSON: " + error;
    return false;
  }
  if (root.type != exp::JsonValue::Type::kObject) {
    error = "worker line must be a JSON object";
    return false;
  }
  out = WorkerReply{};
  if (const exp::JsonValue* done = root.find("done");
      done != nullptr && done->type == exp::JsonValue::Type::kBool && done->boolean) {
    const exp::JsonValue* first = root.find("first");
    const exp::JsonValue* count = root.find("count");
    if (first == nullptr || first->type != exp::JsonValue::Type::kNumber ||
        count == nullptr || count->type != exp::JsonValue::Type::kNumber) {
      error = "done line needs \"first\" and \"count\"";
      return false;
    }
    out.done = true;
    out.first = static_cast<int>(first->number);
    out.count = static_cast<int>(count->number);
    return true;
  }
  const exp::JsonValue* point = root.find("point");
  const exp::JsonValue* wall_ms = root.find("wall_ms");
  const exp::JsonValue* record = root.find("record");
  if (point == nullptr || point->type != exp::JsonValue::Type::kNumber ||
      wall_ms == nullptr || wall_ms->type != exp::JsonValue::Type::kNumber ||
      record == nullptr || record->type != exp::JsonValue::Type::kString) {
    error = "worker line needs \"point\", \"wall_ms\", and \"record\"";
    return false;
  }
  out.point = static_cast<int>(point->number);
  out.wall_ms = wall_ms->number;
  out.record = record->string;
  return true;
}

}  // namespace nomc::svc
