// Minimal Unix-domain socket layer for the campaign service.
//
// This file (and socket.cpp) is the one sanctioned home for raw
// socket/bind/listen/accept/connect calls — the svc-raw-socket lint rule
// bans them everywhere else, exactly like det-raw-thread confines raw
// threads to the deterministic runners. Everything above this layer works
// in terms of Socket handles and byte buffers.
//
// The server side runs non-blocking (accept and reads return "would block"
// instead of stalling the session loop); the client side is blocking, which
// is the natural shape for a request/reply CLI.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nomc::svc {

/// Move-only RAII owner of a socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_{fd} {}
  ~Socket() { close(); }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_{other.fd_} { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// Bind + listen a non-blocking Unix-domain socket at `path`, replacing a
/// stale socket file from a previous run. Fails on a path longer than the
/// sockaddr_un limit (~107 bytes).
bool listen_unix(const std::string& path, Socket& out, std::string& error);

/// Accept one pending connection from a listen_unix socket; the accepted
/// socket is non-blocking. Returns true with `accepted` false when no
/// connection is pending; false only on a real error.
bool accept_unix(const Socket& listener, Socket& out, bool& accepted, std::string& error);

/// Connect a blocking client socket to a server at `path`.
bool connect_unix(const std::string& path, Socket& out, std::string& error);

/// Non-blocking read into `out` (appends). Returns false on a connection
/// error; `closed` reports a clean EOF, `would_block` that nothing was
/// pending. Reads until the socket drains or `max_bytes` were appended.
bool read_available(const Socket& socket, std::string& out, std::size_t max_bytes,
                    bool& closed, bool& would_block, std::string& error);

/// Non-blocking write of data[offset..]; advances `offset` past what was
/// accepted. Returns false on a connection error (EPIPE included).
bool write_some(const Socket& socket, const std::string& data, std::size_t& offset,
                std::string& error);

/// Blocking write of the whole buffer (client side).
bool write_all(const Socket& socket, const std::string& data, std::string& error);

/// Blocking read of at most `max_bytes`, appended to `out`; `closed`
/// reports EOF. Returns at least one byte unless closed.
bool read_blocking(const Socket& socket, std::string& out, std::size_t max_bytes,
                   bool& closed, std::string& error);

/// One readiness slot for poll_sockets.
struct PollEntry {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
  bool readable = false;   ///< out: data or a pending connection
  bool writable = false;   ///< out
  bool broken = false;     ///< out: HUP/ERR — close the session
};

/// poll(2) over `entries` with `timeout_ms` (-1 = wait forever). Fills the
/// out flags; returns false only on a real error (EINTR retries).
bool poll_sockets(std::vector<PollEntry>& entries, int timeout_ms, std::string& error);

}  // namespace nomc::svc
