#include "svc/worker_pool.hpp"

#include <cerrno>
#include <csignal>
#include <cstddef>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

namespace nomc::svc {
namespace {

void close_fd(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

}  // namespace

bool WorkerPool::spawn(Slot& slot, std::string& error) {
  int to_child[2] = {-1, -1};    // supervisor writes leases -> child stdin
  int from_child[2] = {-1, -1};  // child stdout -> supervisor reads records
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
    close_fd(to_child[0]);
    close_fd(to_child[1]);
    error = "pipe failed";
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    close_fd(to_child[0]);
    close_fd(to_child[1]);
    close_fd(from_child[0]);
    close_fd(from_child[1]);
    error = "fork failed";
    return false;
  }
  if (pid == 0) {
    // Child: wire the pipe pair to stdin/stdout and become the worker.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<char*> argv;
    argv.reserve(argv_.size() + 1);
    for (const std::string& arg : argv_) argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed; the supervisor sees EOF and revokes
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  // Non-blocking reads: the server drains worker stdout from its poll loop.
  const int flags = ::fcntl(from_child[0], F_GETFL, 0);
  ::fcntl(from_child[0], F_SETFL, flags | O_NONBLOCK);
  slot.pid = pid;
  slot.in_fd = to_child[1];
  slot.out_fd = from_child[0];
  slot.splitter = LineSplitter{kMaxLine};
  return true;
}

void WorkerPool::close_slot(Slot& slot) {
  close_fd(slot.in_fd);
  close_fd(slot.out_fd);
  if (slot.pid > 0) {
    ::kill(slot.pid, SIGKILL);
    ::waitpid(slot.pid, nullptr, 0);
  }
  slot.pid = -1;
}

bool WorkerPool::start(const std::vector<std::string>& argv, int workers, std::string& error) {
  // A worker that dies mid-write must not take the supervisor down with it.
  std::signal(SIGPIPE, SIG_IGN);
  argv_ = argv;
  if (static_cast<int>(slots_.size()) < workers) slots_.resize(static_cast<std::size_t>(workers));
  for (Slot& slot : slots_) {
    if (slot.pid > 0) continue;
    if (!spawn(slot, error)) return false;
  }
  return true;
}

void WorkerPool::stop() {
  for (Slot& slot : slots_) close_slot(slot);
  slots_.clear();
}

bool WorkerPool::alive(int slot) const {
  return slot >= 0 && slot < size() && slots_[static_cast<std::size_t>(slot)].pid > 0;
}

int WorkerPool::read_fd(int slot) const {
  if (!alive(slot)) return -1;
  return slots_[static_cast<std::size_t>(slot)].out_fd;
}

std::vector<pid_t> WorkerPool::pids() const {
  std::vector<pid_t> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) out.push_back(slot.pid);
  return out;
}

bool WorkerPool::send_lease(int slot, const LeaseRequest& lease) {
  if (!alive(slot)) return false;
  std::string line = lease_line(lease);
  line += '\n';
  std::size_t sent = 0;
  const int fd = slots_[static_cast<std::size_t>(slot)].in_fd;
  while (sent < line.size()) {
    const ssize_t n = ::write(fd, line.data() + sent, line.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool WorkerPool::drain(int slot, bool& closed) {
  closed = false;
  if (!alive(slot)) {
    closed = true;
    return true;
  }
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(s.out_fd, buffer, sizeof buffer);
    if (n > 0) {
      s.splitter.feed(std::string(buffer, static_cast<std::size_t>(n)));
      continue;
    }
    if (n == 0) {
      closed = true;
      return true;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

bool WorkerPool::take_line(int slot, std::string& line, bool& oversized) {
  if (slot < 0 || slot >= size()) return false;
  return slots_[static_cast<std::size_t>(slot)].splitter.take(line, oversized);
}

void WorkerPool::kill_slot(int slot) {
  if (slot < 0 || slot >= size()) return;
  close_slot(slots_[static_cast<std::size_t>(slot)]);
}

bool WorkerPool::respawn(int slot, std::string& error) {
  if (slot < 0 || slot >= size()) {
    error = "no such worker slot";
    return false;
  }
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (s.pid > 0) return true;
  return spawn(s, error);
}

}  // namespace nomc::svc
