// ResultCache: the server-side registry of campaigns keyed by spec hash.
//
// Every submitted spec is canonicalized (exp::format_campaign) and hashed;
// the hash names both files the server keeps per campaign under its data
// directory:
//
//   <data_dir>/<spec_hash>.spec    canonical spec text (written on first
//                                  submit, so a restarted server can answer
//                                  status/query/export without a resubmit)
//   <data_dir>/<spec_hash>.jsonl   the result store, written by the exact
//                                  same exp::run_campaign machinery as a
//                                  local `nomc-campaign run` — byte-identical
//                                  by construction (plus its .timing and
//                                  .idx sidecars)
//
// The cache itself stores no results: the JSONL stores are the cache, and
// probe() asks the StoreIndex which grid points are already on disk. That is
// what makes hits survive restarts and stay byte-exact.
#pragma once

#include <map>
#include <string>

#include "exp/spec.hpp"

namespace nomc::svc {

struct CampaignEntry {
  exp::CampaignSpec spec;
  std::string spec_hash;
  std::string store_path;
  int points = 0;  ///< grid size
};

class ResultCache {
 public:
  /// Set the data directory (created if missing). Must be called before any
  /// other method.
  bool configure(const std::string& data_dir, std::string& error);
  [[nodiscard]] const std::string& data_dir() const { return data_dir_; }

  /// Register (or fetch) the entry for a parsed spec, writing the canonical
  /// spec sidecar on first sight. Returns nullptr and fills `error` on I/O
  /// failure. The pointer stays valid until the cache is destroyed.
  CampaignEntry* intern(const exp::CampaignSpec& spec, std::string& error);

  /// Find by hash. After a restart this lazily reloads the
  /// "<data_dir>/<hash>.spec" sidecar, so campaigns outlive the process.
  /// nullptr when the hash was never submitted here.
  CampaignEntry* find(const std::string& spec_hash);

  /// Count the entry's grid points already present in its store (0 when the
  /// store does not exist yet). Opens the StoreIndex, which also reconciles
  /// the ".idx" sidecar.
  bool probe(const CampaignEntry& entry, int& present, std::string& error);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] std::string store_path(const std::string& spec_hash) const;
  [[nodiscard]] std::string spec_path(const std::string& spec_hash) const;

 private:
  std::string data_dir_;
  std::map<std::string, CampaignEntry> entries_;  ///< spec_hash -> entry
};

}  // namespace nomc::svc
