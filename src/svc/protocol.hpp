// Wire protocol for the campaign service: line-delimited JSON.
//
// Each request is one JSON object on one '\n'-terminated line; each reply is
// likewise one line. Requests carry an "op" member selecting the operation:
//
//   {"op":"ping"}
//   {"op":"submit","spec":<campaign text, JSON-escaped>}
//   {"op":"status"}                       — server-lifetime counters
//   {"op":"status","spec_hash":<16 hex>}  — plus one campaign's progress
//   {"op":"query","spec_hash":H,"point":N}
//   {"op":"export","spec_hash":H}
//   {"op":"shutdown"}
//
// Replies always carry "ok". Failures are {"ok":false,"error":<text>} and the
// connection survives — a client can retry on the same socket. The "export"
// reply is the one multi-line response: {"csv":<row>} lines followed by a
// {"ok":true,"done":true,"rows":N} terminator. docs/service.md holds the full
// grammar and the reply schemas.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/result_store.hpp"

namespace nomc::svc {

/// Longest accepted request/reply line, including the newline. Campaign
/// specs are a few KiB; 1 MiB leaves two orders of magnitude of headroom
/// while bounding what a misbehaving peer can make the server buffer.
inline constexpr std::size_t kMaxLine = std::size_t{1} << 20;

/// Incremental splitter of a byte stream into '\n'-terminated lines with a
/// hard line-length cap. An overlong line flips into discard mode: its bytes
/// are dropped through the terminating newline, and take() reports it as one
/// oversized line so the session can answer with an error instead of dying.
class LineSplitter {
 public:
  explicit LineSplitter(std::size_t max_line = kMaxLine) : max_line_{max_line} {}

  /// Append raw bytes from the socket.
  void feed(const std::string& bytes);

  /// Pop the next complete line (without its newline). `oversized` marks a
  /// line that blew the cap and was discarded (`line` is then empty).
  bool take(std::string& line, bool& oversized);

  /// Bytes of an incomplete trailing line currently buffered.
  [[nodiscard]] std::size_t pending() const { return buffer_.size(); }

 private:
  std::size_t max_line_;
  std::string buffer_;
  bool discarding_ = false;           // inside an overlong line
  std::vector<std::string> lines_;    // complete lines, oldest first
  std::vector<bool> oversized_;       // parallel to lines_
  std::size_t next_ = 0;
};

/// A parsed request line.
struct Request {
  std::string op;
  std::string spec;       ///< submit: campaign spec text
  std::string spec_hash;  ///< status (optional) / query / export
  int point = -1;         ///< query
  bool has_point = false;
};

/// Parse one request line. On failure fills `error` with a message suitable
/// for an error reply.
bool parse_request(const std::string& line, Request& out, std::string& error);

// ---- Reply builders (no trailing newline) --------------------------------

[[nodiscard]] std::string error_reply(const std::string& message);
[[nodiscard]] std::string pong_reply();

/// The submit reply is a pure function of the spec — identical no matter
/// how many clients submit it or how much of it was served from cache:
///   {"ok":true,"spec_hash":H,"campaign":name,"points":N,"done":N}
[[nodiscard]] std::string submit_reply(const std::string& spec_hash,
                                       const std::string& campaign, int points, int done);

/// Server-lifetime counters, plus per-campaign progress when `campaign` is
/// non-empty (spec_hash echoes the request).
struct StatusInfo {
  std::uint64_t submissions = 0;  ///< submit requests accepted
  std::uint64_t computed = 0;     ///< points actually simulated
  std::uint64_t cache_hits = 0;   ///< points served from the result cache
  std::uint64_t campaigns = 0;    ///< distinct specs seen
  std::uint64_t retried = 0;      ///< points re-leased after a worker fault
  std::string campaign;           ///< optional per-campaign block
  std::string spec_hash;
  int points = 0;
  int done = 0;
  /// "complete" | "running" | "partial" | "failed" — emitted with the
  /// per-campaign block when non-empty.
  std::string state;
  int failed_first = 0;  ///< with state "failed": first point of the range
  int failed_count = 0;  ///< ...that exhausted its retry budget
};
[[nodiscard]] std::string status_reply(const StatusInfo& info);

/// {"ok":true,"record":<verbatim store line, JSON-escaped>}
[[nodiscard]] std::string query_reply(const std::string& record_line);

/// One streamed CSV row: {"csv":<line>}
[[nodiscard]] std::string export_row(const std::string& csv_line);
/// Export terminator: {"ok":true,"done":true,"rows":N}
[[nodiscard]] std::string export_done(std::uint64_t rows);

[[nodiscard]] std::string shutdown_reply();

/// Parse a reply line on the client side.
bool parse_reply(const std::string& line, exp::JsonValue& out, std::string& error);

// ---- Worker lease protocol (server <-> worker process, over pipes) -------
//
// The same line-delimited-JSON grammar, spoken on a worker's stdin/stdout
// instead of a socket. One lease per line on stdin:
//
//   {"op":"lease","spec":<canonical spec text>,"first":F,"count":C,
//    "jobs":J,"trial_workers":W}
//
// The worker answers with one line per completed point, in point order,
// followed by a done line echoing the range:
//
//   {"point":N,"wall_ms":X,"record":<verbatim store line, JSON-escaped>}
//   {"done":true,"first":F,"count":C}
//
// EOF on stdin (the supervisor closed the pipe) means exit cleanly. Anything
// the supervisor cannot parse — or a record whose point/spec_hash does not
// match the outstanding lease — is a protocol fault: the worker is killed,
// its lease revoked, and the points re-leased. docs/service.md documents the
// retry/timeout semantics.

/// One leased range of sweep points.
struct LeaseRequest {
  std::string spec;  ///< canonical campaign text (exp::format_campaign)
  int first = 0;     ///< first grid point index of the range
  int count = 0;     ///< number of consecutive points
  int jobs = 1;      ///< trial threads inside the worker
  int trial_workers = 1;
};
[[nodiscard]] std::string lease_line(const LeaseRequest& lease);
bool parse_lease(const std::string& line, LeaseRequest& out, std::string& error);

/// One line of worker stdout: either a completed point or the range-done
/// marker (`done` true, `first`/`count` echoing the lease).
struct WorkerReply {
  bool done = false;
  int point = -1;
  double wall_ms = 0.0;
  std::string record;  ///< verbatim store record line (no newline)
  int first = 0;
  int count = 0;
};
[[nodiscard]] std::string worker_record_line(int point, double wall_ms,
                                             const std::string& record);
[[nodiscard]] std::string worker_done_line(int first, int count);
bool parse_worker_reply(const std::string& line, WorkerReply& out, std::string& error);

}  // namespace nomc::svc
