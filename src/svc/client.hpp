// Blocking request/reply client for the campaign service. Lives in src/svc
// (not tools/) because it is the sanctioned consumer of the socket layer —
// the svc-raw-socket lint rule keeps socket calls out of tools/.
#pragma once

#include <string>

#include "exp/result_store.hpp"
#include "svc/protocol.hpp"
#include "svc/socket.hpp"

namespace nomc::svc {

class Client {
 public:
  Client() = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a server listening at `socket_path`.
  bool connect(const std::string& socket_path, std::string& error);
  void close();
  [[nodiscard]] bool connected() const { return socket_.valid(); }

  /// Send one request line (newline appended here).
  bool send_line(const std::string& line, std::string& error);
  /// Receive the next reply line (newline stripped). Fails on EOF.
  bool recv_line(std::string& line, std::string& error);

  /// send_line + recv_line + parse_reply: one round trip.
  bool call(const std::string& request, exp::JsonValue& reply, std::string& error);

 private:
  Socket socket_;
  LineSplitter splitter_{kMaxLine};
};

}  // namespace nomc::svc
