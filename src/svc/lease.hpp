// LeaseManager: the bookkeeping half of campaign sharding. It owns the set
// of pending point indices for the active campaign and hands out contiguous
// ranges ("leases") to worker slots, tracking per-lease deadlines and
// per-point retry budgets. It knows nothing about processes or pipes — the
// WorkerPool owns those — which keeps this logic trivially unit-testable.
//
// Fault model: when a worker dies, stalls past its deadline, or emits a
// protocol fault, the server calls revoke(). The lease's uncompleted points
// go back on the queue (each point's retry counter bumped) and are re-leased
// to any idle worker. A point that exhausts its budget fails the campaign;
// revoke() reports it so the server can surface the offending range in
// status replies.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace nomc::svc {

/// Outcome of completing one point against a worker's lease.
enum class LeaseEvent {
  kOk,          ///< point accepted, lease still has outstanding points
  kLeaseDone,   ///< point accepted and it was the lease's last one
  kUnexpected,  ///< point was not outstanding on this worker's lease
};

class LeaseManager {
 public:
  /// Start tracking a campaign: `points` are the pending grid indices
  /// (ascending, from exp::StorePlan), `max_retries` the number of re-leases
  /// a single point may survive before the campaign fails.
  void reset(const std::vector<int>& points, int max_retries);

  /// Carve the next lease for `worker`: a maximal run of consecutive queued
  /// points, at most `chunk` long, expiring at `deadline_ms`. Resume gaps
  /// split runs naturally, so a lease never spans points that are already in
  /// the store. Returns false when the queue is empty or the worker already
  /// holds a lease.
  bool acquire(int worker, int chunk, std::int64_t deadline_ms, int& first, int& count);

  /// Record one completed point from `worker`.
  LeaseEvent complete(int worker, int point);

  /// Mark the done-line for `worker`'s lease: valid only once every point of
  /// the lease has been completed. Releases the lease. Returns false if the
  /// worker holds no fully-completed lease (a protocol fault).
  bool finish(int worker);

  /// Take `worker`'s lease away (crash/stall/garbage): outstanding points go
  /// back on the queue with their retry counters bumped. Returns false when
  /// any of them exhausted the budget — the campaign must fail; the revoked
  /// range is then available via failed_first()/failed_count().
  bool revoke(int worker);

  /// True once no points are queued and no leases are outstanding.
  [[nodiscard]] bool done() const { return queue_.empty() && active_.empty(); }

  /// Workers whose lease deadline is at or before `now_ms`.
  [[nodiscard]] std::vector<int> expired(std::int64_t now_ms) const;

  /// Earliest active-lease deadline, or -1 when no lease is outstanding
  /// (lets the server clamp its poll timeout).
  [[nodiscard]] std::int64_t next_deadline() const;

  /// Total point re-leases so far (the status "retried" counter).
  [[nodiscard]] std::uint64_t retried() const { return retried_; }

  [[nodiscard]] bool has_lease(int worker) const { return active_.count(worker) != 0; }
  [[nodiscard]] bool point_outstanding(int worker, int point) const;

  /// The range whose retry budget ran out (valid after revoke() returned
  /// false).
  [[nodiscard]] int failed_first() const { return failed_first_; }
  [[nodiscard]] int failed_count() const { return failed_count_; }

 private:
  struct Active {
    int first = 0;
    int count = 0;
    std::set<int> outstanding;  ///< leased points not yet completed
    std::int64_t deadline_ms = 0;
  };

  std::set<int> queue_;             ///< points awaiting a lease, ascending
  std::map<int, Active> active_;    ///< worker slot -> its lease
  std::map<int, int> retries_;      ///< point -> times re-leased
  int max_retries_ = 0;
  std::uint64_t retried_ = 0;
  int failed_first_ = 0;
  int failed_count_ = 0;
};

}  // namespace nomc::svc
