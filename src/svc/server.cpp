#include "svc/server.hpp"

#include <unistd.h>

#include "exp/campaign.hpp"
#include "exp/store_index.hpp"

namespace nomc::svc {

bool Server::open(const ServerConfig& config, std::string& error) {
  close();
  config_ = config;
  if (!cache_.configure(config.data_dir, error)) return false;
  if (!listen_unix(config.socket_path, listener_, error)) return false;
  return true;
}

void Server::close() {
  sessions_.clear();
  if (listener_.valid()) {
    listener_.close();
    ::unlink(config_.socket_path.c_str());
  }
  shutdown_requested_ = false;
  submissions_ = computed_ = cache_hits_ = 0;
}

bool Server::shutdown_complete() const {
  if (!shutdown_requested_) return false;
  for (const std::unique_ptr<Session>& session : sessions_) {
    if (session->sent < session->outbox.size()) return false;  // reply in flight
  }
  return true;
}

bool Server::run(std::string& error) {
  while (running()) {
    if (!step(-1, error)) return false;
  }
  return true;
}

bool Server::step(int timeout_ms, std::string& error) {
  if (!listener_.valid()) {
    error = "server is not open";
    return false;
  }

  std::vector<PollEntry> entries;
  entries.reserve(sessions_.size() + 1);
  PollEntry listen_entry;
  listen_entry.fd = listener_.fd();
  listen_entry.want_read = !shutdown_requested_;
  entries.push_back(listen_entry);
  for (const std::unique_ptr<Session>& session : sessions_) {
    PollEntry entry;
    entry.fd = session->socket.fd();
    entry.want_read = !session->peer_closed;
    entry.want_write = session->sent < session->outbox.size();
    entries.push_back(entry);
  }
  if (!poll_sockets(entries, timeout_ms, error)) return false;

  if (entries[0].readable) {
    // Drain the accept queue.
    while (true) {
      Socket accepted;
      bool got = false;
      if (!accept_unix(listener_, accepted, got, error)) return false;
      if (!got) break;
      auto session = std::make_unique<Session>();
      session->socket = std::move(accepted);
      session->splitter = LineSplitter{config_.max_line};
      sessions_.push_back(std::move(session));
    }
  }

  // Read + execute. New sessions appended above had no poll slot; they are
  // picked up next step.
  const std::size_t polled = entries.size() - 1;
  for (std::size_t i = 0; i < polled && i < sessions_.size(); ++i) {
    Session& session = *sessions_[i];
    const PollEntry& entry = entries[i + 1];
    if (entry.broken) {
      session.peer_closed = true;
      session.outbox.clear();
      session.sent = 0;
      continue;
    }
    if (entry.readable && !session.peer_closed) {
      bool closed = false;
      bool would_block = false;
      std::string bytes;
      if (!read_available(session.socket, bytes, std::size_t{1} << 20, closed, would_block,
                          error)) {
        session.peer_closed = true;
        session.outbox.clear();
        session.sent = 0;
        error.clear();  // a broken peer is not a server error
        continue;
      }
      session.splitter.feed(bytes);
      std::string line;
      bool oversized = false;
      while (session.splitter.take(line, oversized)) serve_line(session, line, oversized);
      if (closed) session.peer_closed = true;
    }
    if (session.sent < session.outbox.size()) {
      if (!write_some(session.socket, session.outbox, session.sent, error)) {
        session.peer_closed = true;
        session.outbox.clear();
        session.sent = 0;
        error.clear();
      } else if (session.sent == session.outbox.size()) {
        session.outbox.clear();
        session.sent = 0;
      }
    }
  }

  // Drop sessions whose peer is gone and whose replies are flushed.
  for (std::size_t i = 0; i < sessions_.size();) {
    Session& session = *sessions_[i];
    if (session.peer_closed && session.sent >= session.outbox.size()) {
      sessions_.erase(sessions_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  return true;
}

void Server::reply(Session& session, const std::string& line) {
  session.outbox += line;
  session.outbox += '\n';
}

void Server::serve_line(Session& session, const std::string& line, bool oversized) {
  if (oversized) {
    reply(session, error_reply("request line exceeds " + std::to_string(config_.max_line) +
                               " bytes"));
    return;
  }
  if (line.empty()) return;  // blank keep-alive lines are ignored

  Request request;
  std::string error;
  if (!parse_request(line, request, error)) {
    reply(session, error_reply(error));
    return;
  }
  if (request.op == "ping") {
    reply(session, pong_reply());
  } else if (request.op == "submit") {
    handle_submit(session, request);
  } else if (request.op == "status") {
    handle_status(session, request);
  } else if (request.op == "query") {
    handle_query(session, request);
  } else if (request.op == "export") {
    handle_export(session, request);
  } else if (request.op == "shutdown") {
    reply(session, shutdown_reply());
    shutdown_requested_ = true;
  } else {
    reply(session, error_reply("unknown op: " + request.op));
  }
}

void Server::handle_submit(Session& session, const Request& request) {
  if (request.spec.empty()) {
    reply(session, error_reply("submit needs a \"spec\""));
    return;
  }
  exp::CampaignSpec spec;
  exp::SpecError spec_error;
  if (!exp::parse_campaign(request.spec, spec, spec_error)) {
    reply(session, error_reply("bad spec: " + spec_error.str()));
    return;
  }
  std::string error;
  CampaignEntry* entry = cache_.intern(spec, error);
  if (entry == nullptr) {
    reply(session, error_reply(error));
    return;
  }

  // Cache probe: every grid point already on disk is a hit and is never
  // re-simulated; only the gap goes through run_campaign (Resume keeps the
  // existing records' bytes verbatim).
  int present = 0;
  if (!cache_.probe(*entry, present, error)) {
    reply(session, error_reply(error));
    return;
  }
  cache_hits_ += static_cast<std::uint64_t>(present);
  if (present < entry->points) {
    exp::CampaignOptions options;
    options.jobs = config_.jobs;
    options.point_jobs = config_.point_jobs;
    options.trial_workers = config_.trial_workers;
    options.mode = exp::CampaignOptions::Mode::kResume;
    options.quiet = config_.quiet;
    exp::CampaignStats stats;
    if (!exp::run_campaign(entry->spec, entry->store_path, options, &stats, error)) {
      reply(session, error_reply(error));
      return;
    }
    computed_ += static_cast<std::uint64_t>(stats.computed);
  }
  ++submissions_;
  // The reply is a pure function of the spec: clients racing on the same
  // campaign read identical bytes whether their points were computed or
  // served from cache (the split is visible in the status counters).
  reply(session, submit_reply(entry->spec_hash, entry->spec.name, entry->points,
                              entry->points));
}

void Server::handle_status(Session& session, const Request& request) {
  StatusInfo info;
  info.submissions = submissions_;
  info.computed = computed_;
  info.cache_hits = cache_hits_;
  info.campaigns = cache_.size();
  if (!request.spec_hash.empty()) {
    CampaignEntry* entry = cache_.find(request.spec_hash);
    if (entry == nullptr) {
      reply(session, error_reply("unknown campaign: " + request.spec_hash));
      return;
    }
    info.campaigns = cache_.size();  // find() may have lazy-loaded one
    std::string error;
    int present = 0;
    if (!cache_.probe(*entry, present, error)) {
      reply(session, error_reply(error));
      return;
    }
    info.campaign = entry->spec.name;
    info.spec_hash = entry->spec_hash;
    info.points = entry->points;
    info.done = present;
  }
  reply(session, status_reply(info));
}

void Server::handle_query(Session& session, const Request& request) {
  if (request.spec_hash.empty() || !request.has_point) {
    reply(session, error_reply("query needs \"spec_hash\" and \"point\""));
    return;
  }
  CampaignEntry* entry = cache_.find(request.spec_hash);
  if (entry == nullptr) {
    reply(session, error_reply("unknown campaign: " + request.spec_hash));
    return;
  }
  exp::StoreIndex index;
  std::string error;
  if (!index.open(entry->store_path, entry->spec_hash, error)) {
    reply(session, error_reply(error));
    return;
  }
  const exp::StoreIndex::Entry* record = index.find(request.spec_hash, request.point);
  if (record == nullptr) {
    reply(session, error_reply("point " + std::to_string(request.point) +
                               " is not stored for " + request.spec_hash));
    return;
  }
  std::string line;
  if (!index.read_line(*record, line, error)) {
    reply(session, error_reply(error));
    return;
  }
  reply(session, query_reply(line));
}

void Server::handle_export(Session& session, const Request& request) {
  if (request.spec_hash.empty()) {
    reply(session, error_reply("export needs \"spec_hash\""));
    return;
  }
  CampaignEntry* entry = cache_.find(request.spec_hash);
  if (entry == nullptr) {
    reply(session, error_reply("unknown campaign: " + request.spec_hash));
    return;
  }
  exp::StoreIndex index;
  std::string error;
  if (!index.open(entry->store_path, entry->spec_hash, error)) {
    reply(session, error_reply(error));
    return;
  }
  // Stream record-by-record through the index; only the wire bytes are
  // buffered (in the session outbox), never the parsed store.
  std::uint64_t rows = 0;
  bool first = true;
  const bool ok = exp::export_csv_lines(
      index,
      [&](const std::string& csv_line) {
        reply(session, export_row(csv_line));
        if (!first) ++rows;  // the header line is not a data row
        first = false;
        return true;
      },
      error);
  if (!ok) {
    reply(session, error_reply(error));
    return;
  }
  reply(session, export_done(rows));
}

}  // namespace nomc::svc
