#include "svc/server.hpp"

#include <chrono>
#include <cstddef>

#include <unistd.h>

namespace nomc::svc {
namespace {

/// A session mid-export stops generating rows once this many bytes wait in
/// its outbox; the pump resumes as the kernel drains them. This is what
/// bounds server memory against a slow reader.
constexpr std::size_t kExportHighWater = std::size_t{64} * 1024;

}  // namespace

std::int64_t Server::now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool Server::open(const ServerConfig& config, std::string& error) {
  close();
  if (config.workers > 0 && config.worker_argv.empty()) {
    error = "workers > 0 needs a worker command line";
    return false;
  }
  config_ = config;
  if (!cache_.configure(config.data_dir, error)) return false;
  if (!listen_unix(config.socket_path, listener_, error)) return false;
  return true;
}

void Server::close() {
  job_.reset();
  job_queue_.clear();
  pool_.stop();
  failed_.clear();
  sessions_.clear();
  if (listener_.valid()) {
    listener_.close();
    ::unlink(config_.socket_path.c_str());
  }
  shutdown_requested_ = false;
  submissions_ = computed_ = cache_hits_ = retried_ = 0;
  peak_outbox_ = 0;
  next_session_id_ = 1;
}

bool Server::shutdown_complete() const {
  if (!shutdown_requested_) return false;
  for (const std::unique_ptr<Session>& session : sessions_) {
    if (session->sent < session->outbox.size()) return false;  // reply in flight
  }
  return true;
}

bool Server::run(std::string& error) {
  while (running()) {
    if (!step(-1, error)) return false;
  }
  return true;
}

Server::Session* Server::find_session(std::uint64_t id) {
  for (const std::unique_ptr<Session>& session : sessions_) {
    if (session->id == id) return session.get();
  }
  return nullptr;
}

bool Server::step(int timeout_ms, std::string& error) {
  if (!listener_.valid()) {
    error = "server is not open";
    return false;
  }

  // Clamp the wait: an outstanding lease needs its deadline checked, and a
  // session mid-export with outbox headroom has rows ready to generate now.
  int timeout = timeout_ms;
  if (job_) {
    const std::int64_t deadline = job_->leases.next_deadline();
    if (deadline >= 0) {
      std::int64_t wait = deadline - now_ms();
      if (wait < 0) wait = 0;
      if (wait > 60000) wait = 60000;
      if (timeout < 0 || static_cast<std::int64_t>(timeout) > wait)
        timeout = static_cast<int>(wait);
    }
  }
  for (const std::unique_ptr<Session>& session : sessions_) {
    if (session->export_job && session->outbox.size() - session->sent < kExportHighWater) {
      timeout = 0;
      break;
    }
  }

  std::vector<PollEntry> entries;
  entries.reserve(sessions_.size() + 2);
  PollEntry listen_entry;
  listen_entry.fd = listener_.fd();
  listen_entry.want_read = !shutdown_requested_;
  entries.push_back(listen_entry);
  const std::size_t polled_sessions = sessions_.size();
  for (const std::unique_ptr<Session>& session : sessions_) {
    PollEntry entry;
    entry.fd = session->socket.fd();
    entry.want_read = !session->peer_closed;
    entry.want_write = session->sent < session->outbox.size();
    entries.push_back(entry);
  }
  // Worker stdout pipes join the poll set while a sharded campaign runs
  // (poll_sockets is fd-generic).
  std::vector<int> worker_slots;
  if (job_) {
    for (int slot = 0; slot < pool_.size(); ++slot) {
      if (!pool_.alive(slot)) continue;
      PollEntry entry;
      entry.fd = pool_.read_fd(slot);
      entry.want_read = true;
      entries.push_back(entry);
      worker_slots.push_back(slot);
    }
  }
  if (!poll_sockets(entries, timeout, error)) return false;

  if (entries[0].readable) {
    // Drain the accept queue.
    while (true) {
      Socket accepted;
      bool got = false;
      if (!accept_unix(listener_, accepted, got, error)) return false;
      if (!got) break;
      auto session = std::make_unique<Session>();
      session->id = next_session_id_++;
      session->socket = std::move(accepted);
      session->splitter = LineSplitter{config_.max_line};
      sessions_.push_back(std::move(session));
    }
  }

  // Read + execute. New sessions appended above had no poll slot; they are
  // picked up next step.
  for (std::size_t i = 0; i < polled_sessions && i < sessions_.size(); ++i) {
    Session& session = *sessions_[i];
    const PollEntry& entry = entries[i + 1];
    if (entry.broken) {
      session.peer_closed = true;
      session.outbox.clear();
      session.sent = 0;
      session.export_job.reset();
      continue;
    }
    if (entry.readable && !session.peer_closed) {
      bool closed = false;
      bool would_block = false;
      std::string bytes;
      if (!read_available(session.socket, bytes, std::size_t{1} << 20, closed, would_block,
                          error)) {
        session.peer_closed = true;
        session.outbox.clear();
        session.sent = 0;
        session.export_job.reset();
        error.clear();  // a broken peer is not a server error
        continue;
      }
      session.splitter.feed(bytes);
      std::string line;
      bool oversized = false;
      while (session.splitter.take(line, oversized)) serve_line(session, line, oversized);
      if (closed) session.peer_closed = true;
    }
  }

  // Worker pipe events, then lease-deadline expiry, then hand fresh leases
  // to whoever is idle. Each stage can end the job (fault or completion),
  // so every one re-checks job_.
  for (std::size_t i = 0; i < worker_slots.size() && job_; ++i) {
    const PollEntry& entry = entries[1 + polled_sessions + i];
    if (entry.readable || entry.broken) handle_worker_io(worker_slots[i]);
  }
  if (job_) {
    for (const int slot : job_->leases.expired(now_ms())) {
      fault_worker(slot, "lease timed out");
      if (!job_) break;
    }
  }
  if (job_ && job_->leases.done()) complete_job();
  if (job_) assign_leases();

  // Generate export rows where there is headroom, then flush every outbox
  // (including sessions that gained replies outside their own poll slot —
  // sharded submit replies land on waiter sessions).
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    Session& session = *sessions_[i];
    pump_export(session);
    if (session.sent < session.outbox.size()) {
      if (!write_some(session.socket, session.outbox, session.sent, error)) {
        session.peer_closed = true;
        session.outbox.clear();
        session.sent = 0;
        session.export_job.reset();
        error.clear();
      } else if (session.sent == session.outbox.size()) {
        session.outbox.clear();
        session.sent = 0;
      }
    }
  }

  // Drop sessions whose peer is gone and whose replies are flushed.
  for (std::size_t i = 0; i < sessions_.size();) {
    Session& session = *sessions_[i];
    if (session.peer_closed && session.sent >= session.outbox.size()) {
      sessions_.erase(sessions_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  return true;
}

void Server::reply(Session& session, const std::string& line) {
  session.outbox += line;
  session.outbox += '\n';
  const std::size_t pending = session.outbox.size() - session.sent;
  if (pending > peak_outbox_) peak_outbox_ = pending;
}

void Server::serve_line(Session& session, const std::string& line, bool oversized) {
  if (session.export_job) {
    // Mid-export the reply stream belongs to the CSV rows; later requests
    // are served after the terminator, in arrival order.
    session.deferred.emplace_back(line, oversized);
    return;
  }
  if (oversized) {
    reply(session, error_reply("request line exceeds " + std::to_string(config_.max_line) +
                               " bytes"));
    return;
  }
  if (line.empty()) return;  // blank keep-alive lines are ignored

  Request request;
  std::string error;
  if (!parse_request(line, request, error)) {
    reply(session, error_reply(error));
    return;
  }
  if (request.op == "ping") {
    reply(session, pong_reply());
  } else if (request.op == "submit") {
    handle_submit(session, request);
  } else if (request.op == "status") {
    handle_status(session, request);
  } else if (request.op == "query") {
    handle_query(session, request);
  } else if (request.op == "export") {
    handle_export(session, request);
  } else if (request.op == "shutdown") {
    abort_jobs("server is shutting down");
    reply(session, shutdown_reply());
    shutdown_requested_ = true;
  } else {
    reply(session, error_reply("unknown op: " + request.op));
  }
}

void Server::handle_submit(Session& session, const Request& request) {
  if (request.spec.empty()) {
    reply(session, error_reply("submit needs a \"spec\""));
    return;
  }
  exp::CampaignSpec spec;
  exp::SpecError spec_error;
  if (!exp::parse_campaign(request.spec, spec, spec_error)) {
    reply(session, error_reply("bad spec: " + spec_error.str()));
    return;
  }
  std::string error;
  CampaignEntry* entry = cache_.intern(spec, error);
  if (entry == nullptr) {
    reply(session, error_reply(error));
    return;
  }

  // Cache probe: every grid point already on disk is a hit and is never
  // re-simulated; only the gap is computed (Resume keeps the existing
  // records' bytes verbatim).
  int present = 0;
  if (!cache_.probe(*entry, present, error)) {
    reply(session, error_reply(error));
    return;
  }
  cache_hits_ += static_cast<std::uint64_t>(present);
  failed_.erase(entry->spec_hash);  // a resubmit gets a fresh retry budget
  if (present >= entry->points) {
    ++submissions_;
    reply(session, submit_reply(entry->spec_hash, entry->spec.name, entry->points,
                                entry->points));
    return;
  }

  if (config_.workers <= 0) {
    // Synchronous path: simulate on the server thread.
    exp::CampaignOptions options;
    options.jobs = config_.jobs;
    options.point_jobs = config_.point_jobs;
    options.trial_workers = config_.trial_workers;
    options.mode = exp::CampaignOptions::Mode::kResume;
    options.quiet = config_.quiet;
    exp::CampaignStats stats;
    if (!exp::run_campaign(entry->spec, entry->store_path, options, &stats, error)) {
      reply(session, error_reply(error));
      return;
    }
    computed_ += static_cast<std::uint64_t>(stats.computed);
    ++submissions_;
    // The reply is a pure function of the spec: clients racing on the same
    // campaign read identical bytes whether their points were computed or
    // served from cache (the split is visible in the status counters).
    reply(session, submit_reply(entry->spec_hash, entry->spec.name, entry->points,
                                entry->points));
    return;
  }

  // Sharded path: the reply is deferred until the workers finish the grid.
  // A submit for the campaign already running (or queued) just joins its
  // waiter list — the grid is still simulated exactly once.
  if (job_ && job_->entry == entry) {
    job_->waiters.push_back(session.id);
    return;
  }
  for (QueuedJob& queued : job_queue_) {
    if (queued.entry == entry) {
      queued.waiters.push_back(session.id);
      return;
    }
  }
  QueuedJob queued;
  queued.entry = entry;
  queued.waiters.push_back(session.id);
  job_queue_.push_back(std::move(queued));
  if (!job_) start_next_job();
}

void Server::reply_waiters_error(const std::vector<std::uint64_t>& waiters,
                                 const std::string& message) {
  for (const std::uint64_t id : waiters) {
    if (Session* session = find_session(id)) reply(*session, error_reply(message));
  }
}

void Server::start_next_job() {
  std::string error;
  while (!job_ && !job_queue_.empty()) {
    QueuedJob queued = std::move(job_queue_.front());
    job_queue_.pop_front();
    auto job = std::make_unique<ShardedJob>();
    job->entry = queued.entry;
    job->waiters = std::move(queued.waiters);
    if (!exp::prepare_store(queued.entry->spec, queued.entry->store_path,
                            exp::CampaignOptions::Mode::kResume, job->plan, error)) {
      reply_waiters_error(job->waiters, error);
      continue;
    }
    if (job->plan.pending.empty()) {
      // A job queued behind the one that finished this grid: nothing left.
      for (const std::uint64_t id : job->waiters) {
        if (Session* session = find_session(id)) {
          ++submissions_;
          reply(*session, submit_reply(job->entry->spec_hash, job->entry->spec.name,
                                       job->entry->points, job->entry->points));
        }
      }
      continue;
    }
    if (!pool_.start(config_.worker_argv, config_.workers, error)) {
      reply_waiters_error(job->waiters, "worker pool: " + error);
      continue;
    }
    job->spec_text = exp::format_campaign(queued.entry->spec);
    // max_pending = pending.size(): the single-threaded server must never
    // block in submit(), and the reorder buffer can never hold more than
    // the whole grid.
    job->checkpointer = std::make_unique<exp::OrderedCheckpointer>(
        job->plan.writer, job->plan.timing, job->plan.pending.size());
    for (std::size_t slot = 0; slot < job->plan.pending.size(); ++slot)
      job->slot_of_point[job->plan.pending[slot]] = static_cast<int>(slot);
    job->leases.reset(job->plan.pending, config_.worker_retries);
    job_ = std::move(job);
    assign_leases();
  }
}

void Server::assign_leases() {
  if (!job_) return;
  for (int slot = 0; slot < pool_.size() && job_; ++slot) {
    if (!pool_.alive(slot) || job_->leases.has_lease(slot)) continue;
    int first = 0;
    int count = 0;
    if (!job_->leases.acquire(slot, config_.lease_points,
                              now_ms() + config_.lease_timeout_ms, first, count))
      break;  // queue drained; stragglers keep their outstanding leases
    LeaseRequest lease;
    lease.spec = job_->spec_text;
    lease.first = first;
    lease.count = count;
    lease.jobs = config_.jobs;
    lease.trial_workers = config_.trial_workers;
    if (!pool_.send_lease(slot, lease)) fault_worker(slot, "lease write failed");
  }
}

void Server::handle_worker_io(int slot) {
  bool closed = false;
  if (!pool_.drain(slot, closed)) {
    fault_worker(slot, "pipe read failed");
    return;
  }
  std::string line;
  bool oversized = false;
  while (job_ && pool_.take_line(slot, line, oversized)) {
    if (oversized) {
      fault_worker(slot, "oversized worker line");
      return;
    }
    if (!process_worker_line(slot, line)) return;
  }
  // EOF after the buffered lines: the worker exited (crash, kill, or exec
  // failure). Whatever its lease still owed goes back on the queue.
  if (job_ && closed) fault_worker(slot, "worker exited");
}

bool Server::process_worker_line(int slot, const std::string& line) {
  WorkerReply worker_reply;
  std::string error;
  if (!parse_worker_reply(line, worker_reply, error)) {
    fault_worker(slot, "protocol fault: " + error);
    return false;
  }
  if (worker_reply.done) {
    if (!job_->leases.finish(slot)) {
      fault_worker(slot, "done line with points outstanding");
      return false;
    }
    if (job_->leases.done()) complete_job();
    return job_ != nullptr;
  }
  // Validate the record BEFORE completing it against the lease, so a bad
  // line costs the worker its lease instead of silently losing the point.
  if (!job_->leases.point_outstanding(slot, worker_reply.point)) {
    fault_worker(slot, "record for unleased point " + std::to_string(worker_reply.point));
    return false;
  }
  exp::ResultRecord record;
  if (!exp::parse_record(worker_reply.record, record, error) ||
      record.point != worker_reply.point || record.spec_hash != job_->entry->spec_hash) {
    fault_worker(slot, "record does not match the lease");
    return false;
  }
  job_->leases.complete(slot, worker_reply.point);
  std::string timing_line = "{\"point\":" + std::to_string(worker_reply.point) + ",\"wall_ms\":";
  exp::json_append_double(timing_line, worker_reply.wall_ms);
  timing_line += '}';
  job_->checkpointer->submit(job_->slot_of_point[worker_reply.point], worker_reply.record,
                             std::move(timing_line), std::string{});
  ++computed_;
  return true;
}

void Server::fault_worker(int slot, const std::string& reason) {
  pool_.kill_slot(slot);
  if (job_ && !job_->leases.revoke(slot)) {
    fail_active_job("points " + std::to_string(job_->leases.failed_first()) + ".." +
                    std::to_string(job_->leases.failed_first() + job_->leases.failed_count() -
                                   1) +
                    " exhausted their retry budget (" + reason + ")");
    return;
  }
  std::string error;
  if (!pool_.respawn(slot, error) && job_) {
    bool any_alive = false;
    for (int s = 0; s < pool_.size(); ++s) {
      if (pool_.alive(s)) any_alive = true;
    }
    if (!any_alive) fail_active_job("no workers left: " + error);
  }
}

void Server::fail_active_job(const std::string& message) {
  retried_ += job_->leases.retried();
  failed_[job_->entry->spec_hash] = {job_->leases.failed_first(), job_->leases.failed_count()};
  reply_waiters_error(job_->waiters,
                      "campaign " + job_->entry->spec_hash + " failed: " + message);
  job_.reset();
  // Surviving workers may still be computing leases of the dead job; their
  // output must not bleed into the next one.
  pool_.stop();
  start_next_job();
}

void Server::complete_job() {
  std::string error;
  retried_ += job_->leases.retried();
  if (!job_->checkpointer->finish(error)) {
    failed_[job_->entry->spec_hash] = {0, 0};
    reply_waiters_error(job_->waiters, error);
    job_.reset();
    pool_.stop();
    start_next_job();
    return;
  }
  for (const std::uint64_t id : job_->waiters) {
    if (Session* session = find_session(id)) {
      ++submissions_;
      reply(*session, submit_reply(job_->entry->spec_hash, job_->entry->spec.name,
                                   job_->entry->points, job_->entry->points));
    }
  }
  job_.reset();  // closes the store writers; the pool stays warm for the next job
  start_next_job();
}

void Server::abort_jobs(const std::string& message) {
  if (job_) {
    retried_ += job_->leases.retried();
    reply_waiters_error(job_->waiters, message);
    job_.reset();
  }
  for (QueuedJob& queued : job_queue_) reply_waiters_error(queued.waiters, message);
  job_queue_.clear();
  pool_.stop();
  for (const std::unique_ptr<Session>& session : sessions_) {
    if (session->export_job) {
      reply(*session, error_reply(message));
      session->export_job.reset();
      session->deferred.clear();
    }
  }
}

void Server::handle_status(Session& session, const Request& request) {
  StatusInfo info;
  info.submissions = submissions_;
  info.computed = computed_;
  info.cache_hits = cache_hits_;
  info.campaigns = cache_.size();
  info.retried = retried();
  if (!request.spec_hash.empty()) {
    CampaignEntry* entry = cache_.find(request.spec_hash);
    if (entry == nullptr) {
      reply(session, error_reply("unknown campaign: " + request.spec_hash));
      return;
    }
    info.campaigns = cache_.size();  // find() may have lazy-loaded one
    std::string error;
    int present = 0;
    if (!cache_.probe(*entry, present, error)) {
      reply(session, error_reply(error));
      return;
    }
    info.campaign = entry->spec.name;
    info.spec_hash = entry->spec_hash;
    info.points = entry->points;
    info.done = present;
    bool running = job_ && job_->entry == entry;
    for (const QueuedJob& queued : job_queue_) {
      if (queued.entry == entry) running = true;
    }
    if (running) {
      info.state = "running";
    } else if (const auto it = failed_.find(entry->spec_hash); it != failed_.end()) {
      info.state = "failed";
      info.failed_first = it->second.first;
      info.failed_count = it->second.second;
    } else {
      info.state = present >= entry->points ? "complete" : "partial";
    }
  }
  reply(session, status_reply(info));
}

void Server::handle_query(Session& session, const Request& request) {
  if (request.spec_hash.empty() || !request.has_point) {
    reply(session, error_reply("query needs \"spec_hash\" and \"point\""));
    return;
  }
  CampaignEntry* entry = cache_.find(request.spec_hash);
  if (entry == nullptr) {
    reply(session, error_reply("unknown campaign: " + request.spec_hash));
    return;
  }
  exp::StoreIndex index;
  std::string error;
  if (!index.open(entry->store_path, entry->spec_hash, error)) {
    reply(session, error_reply(error));
    return;
  }
  const exp::StoreIndex::Entry* record = index.find(request.spec_hash, request.point);
  if (record == nullptr) {
    reply(session, error_reply("point " + std::to_string(request.point) +
                               " is not stored for " + request.spec_hash));
    return;
  }
  std::string line;
  if (!index.read_line(*record, line, error)) {
    reply(session, error_reply(error));
    return;
  }
  reply(session, query_reply(line));
}

void Server::handle_export(Session& session, const Request& request) {
  if (request.spec_hash.empty()) {
    reply(session, error_reply("export needs \"spec_hash\""));
    return;
  }
  CampaignEntry* entry = cache_.find(request.spec_hash);
  if (entry == nullptr) {
    reply(session, error_reply("unknown campaign: " + request.spec_hash));
    return;
  }
  auto job = std::make_unique<ExportJob>();
  job->index = std::make_unique<exp::StoreIndex>();
  std::string error;
  if (!job->index->open(entry->store_path, entry->spec_hash, error)) {
    reply(session, error_reply(error));
    return;
  }
  // Pass 1 (cheap, one record in memory at a time): the sweep-key union in
  // first-seen order — the same rule as export_csv_lines, so the streamed
  // bytes are identical to the local `nomc-campaign export-csv` output.
  exp::ResultRecord record;
  for (const exp::StoreIndex::Entry& entry_ref : job->index->entries()) {
    if (!job->index->read_record(entry_ref, record, error)) {
      reply(session, error_reply(error));
      return;
    }
    exp::csv_collect_sweep_keys(record, job->sweep_keys);
  }
  session.export_job = std::move(job);
  // Rows are generated by pump_export as the outbox drains; the reply to
  // any request that arrives mid-export is deferred past the terminator.
}

void Server::pump_export(Session& session) {
  std::string error;
  while (session.export_job && session.outbox.size() - session.sent < kExportHighWater) {
    ExportJob& job = *session.export_job;
    if (!job.header_sent) {
      std::string header = exp::csv_header(job.sweep_keys);
      header.pop_back();  // reply lines carry their own newline
      reply(session, export_row(header));
      job.header_sent = true;
      continue;
    }
    if (job.row_pos < job.rows.size()) {
      reply(session, export_row(job.rows[job.row_pos++]));
      ++job.emitted;
      continue;
    }
    if (job.next_entry >= job.index->entries().size()) {
      reply(session, export_done(job.emitted));
      session.export_job.reset();
      break;
    }
    exp::ResultRecord record;
    if (!job.index->read_record(job.index->entries()[job.next_entry], record, error)) {
      reply(session, error_reply(error));
      session.export_job.reset();
      break;
    }
    ++job.next_entry;
    job.rows = exp::csv_record_rows(record, job.sweep_keys);
    job.row_pos = 0;
  }
  // Serve requests that queued up behind the export stream (one of them may
  // start the next export, which re-defers the rest).
  while (!session.export_job && !session.deferred.empty()) {
    auto [line, oversized] = std::move(session.deferred.front());
    session.deferred.pop_front();
    serve_line(session, line, oversized);
  }
}

}  // namespace nomc::svc
