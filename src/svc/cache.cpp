#include "svc/cache.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <sys/stat.h>

#include "exp/store_index.hpp"

namespace nomc::svc {

bool ResultCache::configure(const std::string& data_dir, std::string& error) {
  if (::mkdir(data_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    error = "cannot create data directory " + data_dir + ": " + std::strerror(errno);
    return false;
  }
  data_dir_ = data_dir;
  return true;
}

std::string ResultCache::store_path(const std::string& spec_hash) const {
  return data_dir_ + "/" + spec_hash + ".jsonl";
}

std::string ResultCache::spec_path(const std::string& spec_hash) const {
  return data_dir_ + "/" + spec_hash + ".spec";
}

CampaignEntry* ResultCache::intern(const exp::CampaignSpec& spec, std::string& error) {
  const std::string hash = exp::spec_hash(spec);
  const auto it = entries_.find(hash);
  if (it != entries_.end()) return &it->second;

  // First sight: persist the canonical spec so a restarted server can keep
  // answering for this campaign.
  const std::string path = spec_path(hash);
  if (std::FILE* probe_file = std::fopen(path.c_str(), "rb"); probe_file != nullptr) {
    std::fclose(probe_file);
  } else {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
      error = "cannot write spec sidecar: " + path;
      return nullptr;
    }
    const std::string text = exp::format_campaign(spec);
    const bool ok = std::fwrite(text.data(), 1, text.size(), file) == text.size() &&
                    std::fflush(file) == 0;
    std::fclose(file);
    if (!ok) {
      error = "write to spec sidecar failed: " + path;
      return nullptr;
    }
  }

  CampaignEntry entry;
  entry.spec = spec;
  entry.spec_hash = hash;
  entry.store_path = store_path(hash);
  entry.points = static_cast<int>(exp::expand_grid(spec).size());
  return &entries_.emplace(hash, std::move(entry)).first->second;
}

CampaignEntry* ResultCache::find(const std::string& spec_hash) {
  const auto it = entries_.find(spec_hash);
  if (it != entries_.end()) return &it->second;

  exp::CampaignSpec spec;
  exp::SpecError spec_error;
  if (!exp::load_campaign(spec_path(spec_hash), spec, spec_error)) return nullptr;
  if (exp::spec_hash(spec) != spec_hash) return nullptr;  // tampered sidecar
  std::string error;
  return intern(spec, error);
}

bool ResultCache::probe(const CampaignEntry& entry, int& present, std::string& error) {
  present = 0;
  if (std::FILE* file = std::fopen(entry.store_path.c_str(), "rb"); file == nullptr) {
    return true;  // no store yet: nothing cached
  } else {
    std::fclose(file);
  }
  exp::StoreIndex index;
  if (!index.open(entry.store_path, entry.spec_hash, error)) return false;
  for (int point = 0; point < entry.points; ++point) {
    if (index.contains(entry.spec_hash, point)) ++present;
  }
  return true;
}

}  // namespace nomc::svc
