// The campaign service: a single-process coordinator that accepts campaign
// submissions from many clients over a Unix-domain socket, serves already
// computed points from the spec-hash result cache, and runs only the missing
// points — through the exact same exp::run_campaign machinery as a local
// `nomc-campaign run`, so server-written stores are byte-identical to local
// ones by construction.
//
// Concurrency model: one thread, poll-based. Sessions are multiplexed
// non-blocking; a submit that needs simulation runs synchronously on the
// server thread (the simulation itself still fans out via --jobs /
// --point-jobs / --trial-workers inside run_campaign). Work therefore
// executes in submit-arrival order — a deterministic queue, not a racy pool —
// and two clients submitting the same spec get byte-identical replies with
// the grid simulated exactly once.
//
// The loop is exposed as step() so tests and benchmarks can drive a server
// in-process, single-threaded, without a background thread.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "svc/cache.hpp"
#include "svc/protocol.hpp"
#include "svc/socket.hpp"

namespace nomc::svc {

struct ServerConfig {
  std::string socket_path;  ///< Unix-domain socket to listen on
  std::string data_dir;     ///< campaign stores + sidecars live here
  int jobs = 1;             ///< trial threads per point (exp::CampaignOptions)
  int point_jobs = 1;       ///< concurrent sweep points
  int trial_workers = 1;    ///< region-sharded workers inside each trial
  std::size_t max_line = kMaxLine;
  bool quiet = true;        ///< suppress run_campaign progress lines
};

class Server {
 public:
  Server() = default;
  ~Server() { close(); }
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket and prepare the data directory.
  bool open(const ServerConfig& config, std::string& error);

  /// One scheduler beat: wait up to `timeout_ms` (-1 = forever) for socket
  /// events, then accept, read, execute requests, and flush replies.
  /// Returns false only on a fatal server error.
  bool step(int timeout_ms, std::string& error);

  /// step() until a shutdown request has been served and flushed.
  bool run(std::string& error);

  void close();

  /// False once a shutdown request has been fully served.
  [[nodiscard]] bool running() const { return listener_.valid() && !shutdown_complete(); }
  /// Open client connections (tests).
  [[nodiscard]] std::size_t sessions() const { return sessions_.size(); }

  // Lifetime counters, as reported in status replies.
  [[nodiscard]] std::uint64_t submissions() const { return submissions_; }
  [[nodiscard]] std::uint64_t computed() const { return computed_; }
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }

 private:
  struct Session {
    Socket socket;
    LineSplitter splitter;
    std::string outbox;        // bytes not yet accepted by the kernel
    std::size_t sent = 0;      // outbox prefix already written
    bool peer_closed = false;  // EOF seen; drain outbox then drop
  };

  /// Execute one request line, appending reply line(s) to `session.outbox`.
  void serve_line(Session& session, const std::string& line, bool oversized);
  void reply(Session& session, const std::string& line);

  void handle_submit(Session& session, const Request& request);
  void handle_status(Session& session, const Request& request);
  void handle_query(Session& session, const Request& request);
  void handle_export(Session& session, const Request& request);

  [[nodiscard]] bool shutdown_complete() const;

  ServerConfig config_;
  Socket listener_;
  ResultCache cache_;
  std::vector<std::unique_ptr<Session>> sessions_;
  bool shutdown_requested_ = false;
  std::uint64_t submissions_ = 0;
  std::uint64_t computed_ = 0;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace nomc::svc
