// The campaign service: a single-process coordinator that accepts campaign
// submissions from many clients over a Unix-domain socket, serves already
// computed points from the spec-hash result cache, and runs only the missing
// points — so server-written stores are byte-identical to local
// `nomc-campaign run` ones by construction.
//
// Concurrency model: one thread, poll-based. Sessions are multiplexed
// non-blocking. With `workers` == 0 a submit that needs simulation runs
// synchronously on the server thread through exp::run_campaign (the
// original model). With `workers` > 0 the pending sweep points are sharded
// across that many supervised worker processes: the server leases
// contiguous point ranges over pipes (svc/worker_pool.hpp), feeds the
// out-of-order completions through exp::OrderedCheckpointer keyed by
// pending-slot order, and keeps answering status/query/export between poll
// beats while the campaign runs. Crashed, stalled, or garbage-emitting
// workers lose their lease; the points are re-leased under a bounded retry
// budget, after which the campaign is marked failed with the offending
// range in status replies. Either way the store bytes are a pure function
// of the spec — see docs/service.md for the determinism argument.
//
// The loop is exposed as step() so tests and benchmarks can drive a server
// in-process, single-threaded, without a background thread.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/store_index.hpp"
#include "svc/cache.hpp"
#include "svc/lease.hpp"
#include "svc/protocol.hpp"
#include "svc/socket.hpp"
#include "svc/worker_pool.hpp"

namespace nomc::svc {

struct ServerConfig {
  std::string socket_path;  ///< Unix-domain socket to listen on
  std::string data_dir;     ///< campaign stores + sidecars live here
  int jobs = 1;             ///< trial threads per point (exp::CampaignOptions)
  int point_jobs = 1;       ///< concurrent sweep points (synchronous path)
  int trial_workers = 1;    ///< region-sharded workers inside each trial
  std::size_t max_line = kMaxLine;
  bool quiet = true;  ///< suppress run_campaign progress lines
  /// Worker processes a submitted campaign is sharded across. 0 keeps the
  /// synchronous in-process path; > 0 requires `worker_argv`.
  int workers = 0;
  /// Command line of the worker process (argv[0] = binary path), normally
  /// {nomc-campaign, "worker"}.
  std::vector<std::string> worker_argv;
  int lease_points = 2;         ///< max points per lease
  int lease_timeout_ms = 30000; ///< stalled-lease deadline
  int worker_retries = 2;       ///< re-leases one point survives before the
                                ///< campaign is marked failed
};

class Server {
 public:
  Server() = default;
  ~Server() { close(); }
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket and prepare the data directory.
  bool open(const ServerConfig& config, std::string& error);

  /// One scheduler beat: wait up to `timeout_ms` (-1 = forever) for socket,
  /// pipe, and lease-deadline events, then accept, read, execute requests,
  /// and flush replies. Returns false only on a fatal server error.
  bool step(int timeout_ms, std::string& error);

  /// step() until a shutdown request has been served and flushed.
  bool run(std::string& error);

  void close();

  /// False once a shutdown request has been fully served.
  [[nodiscard]] bool running() const { return listener_.valid() && !shutdown_complete(); }
  /// Open client connections (tests).
  [[nodiscard]] std::size_t sessions() const { return sessions_.size(); }

  // Lifetime counters, as reported in status replies.
  [[nodiscard]] std::uint64_t submissions() const { return submissions_; }
  [[nodiscard]] std::uint64_t computed() const { return computed_; }
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::uint64_t retried() const {
    return retried_ + (job_ ? job_->leases.retried() : 0);
  }

  /// True while a sharded campaign is executing or queued (tests drive
  /// step() until this drops before reading the submit reply).
  [[nodiscard]] bool busy() const { return job_ != nullptr || !job_queue_.empty(); }

  /// Worker child pids, one per pool slot (-1 = not running). Fault tests
  /// SIGKILL one of these mid-campaign.
  [[nodiscard]] std::vector<pid_t> worker_pids() const { return pool_.pids(); }

  /// High-water mark of any session's unflushed outbox bytes — the quantity
  /// the streaming export keeps bounded regardless of store size.
  [[nodiscard]] std::size_t peak_outbox() const { return peak_outbox_; }

 private:
  /// An export being streamed to one session: the index stays open, rows
  /// are generated on demand whenever the outbox has headroom, so the
  /// buffered bytes stay bounded no matter how large the store is.
  struct ExportJob {
    std::unique_ptr<exp::StoreIndex> index;
    std::vector<std::string> sweep_keys;  ///< pass-1 union, first-seen order
    std::size_t next_entry = 0;           ///< next index entry to read
    std::vector<std::string> rows;        ///< CSV rows of the current record
    std::size_t row_pos = 0;
    std::uint64_t emitted = 0;  ///< data rows sent (header excluded)
    bool header_sent = false;
  };

  struct Session {
    std::uint64_t id = 0;
    Socket socket;
    LineSplitter splitter;
    std::string outbox;        // bytes not yet accepted by the kernel
    std::size_t sent = 0;      // outbox prefix already written
    bool peer_closed = false;  // EOF seen; drain outbox then drop
    std::unique_ptr<ExportJob> export_job;
    /// Request lines that arrived mid-export (served after the terminator,
    /// preserving reply order). The bool is the oversized flag.
    std::deque<std::pair<std::string, bool>> deferred;
  };

  /// A sharded campaign waiting for worker capacity.
  struct QueuedJob {
    CampaignEntry* entry = nullptr;
    std::vector<std::uint64_t> waiters;  ///< session ids owed a submit reply
  };

  /// The sharded campaign currently executing on the worker pool.
  struct ShardedJob {
    CampaignEntry* entry = nullptr;
    std::string spec_text;  ///< canonical spec carried in every lease
    exp::StorePlan plan;    ///< writers + pending points (declared before
                            ///< checkpointer_, which references its writers)
    std::unique_ptr<exp::OrderedCheckpointer> checkpointer;
    std::map<int, int> slot_of_point;  ///< point index -> checkpointer slot
    LeaseManager leases;
    std::vector<std::uint64_t> waiters;
  };

  /// Execute one request line, appending reply line(s) to `session.outbox`.
  void serve_line(Session& session, const std::string& line, bool oversized);
  void reply(Session& session, const std::string& line);

  void handle_submit(Session& session, const Request& request);
  void handle_status(Session& session, const Request& request);
  void handle_query(Session& session, const Request& request);
  void handle_export(Session& session, const Request& request);

  // Sharded-campaign machinery.
  void start_next_job();
  void assign_leases();
  void handle_worker_io(int slot);
  /// Returns false when the slot was faulted (stop reading its lines).
  bool process_worker_line(int slot, const std::string& line);
  void fault_worker(int slot, const std::string& reason);
  void fail_active_job(const std::string& message);
  void complete_job();
  void abort_jobs(const std::string& message);
  void reply_waiters_error(const std::vector<std::uint64_t>& waiters, const std::string& message);

  /// Generate export rows for `session` until the job finishes or the
  /// outbox reaches the high-water mark, then serve deferred lines.
  void pump_export(Session& session);

  Session* find_session(std::uint64_t id);
  [[nodiscard]] bool shutdown_complete() const;
  [[nodiscard]] static std::int64_t now_ms();

  ServerConfig config_;
  Socket listener_;
  ResultCache cache_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 1;
  bool shutdown_requested_ = false;
  std::uint64_t submissions_ = 0;
  std::uint64_t computed_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t retried_ = 0;      ///< re-leased points from finished jobs
  std::size_t peak_outbox_ = 0;

  WorkerPool pool_;
  std::unique_ptr<ShardedJob> job_;
  std::deque<QueuedJob> job_queue_;
  /// spec_hash -> (first, count) of the range that exhausted its retries.
  std::map<std::string, std::pair<int, int>> failed_;
};

}  // namespace nomc::svc
