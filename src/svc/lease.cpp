#include "svc/lease.hpp"

namespace nomc::svc {

void LeaseManager::reset(const std::vector<int>& points, int max_retries) {
  queue_.clear();
  queue_.insert(points.begin(), points.end());
  active_.clear();
  retries_.clear();
  max_retries_ = max_retries;
  retried_ = 0;
  failed_first_ = 0;
  failed_count_ = 0;
}

bool LeaseManager::acquire(int worker, int chunk, std::int64_t deadline_ms, int& first,
                           int& count) {
  if (queue_.empty() || chunk <= 0 || active_.count(worker) != 0) return false;
  Active lease;
  auto it = queue_.begin();
  lease.first = *it;
  int expect = lease.first;
  while (it != queue_.end() && *it == expect && lease.count < chunk) {
    lease.outstanding.insert(*it);
    ++lease.count;
    ++expect;
    it = queue_.erase(it);
  }
  lease.deadline_ms = deadline_ms;
  first = lease.first;
  count = lease.count;
  active_[worker] = std::move(lease);
  return true;
}

LeaseEvent LeaseManager::complete(int worker, int point) {
  auto it = active_.find(worker);
  if (it == active_.end() || it->second.outstanding.erase(point) == 0)
    return LeaseEvent::kUnexpected;
  return it->second.outstanding.empty() ? LeaseEvent::kLeaseDone : LeaseEvent::kOk;
}

bool LeaseManager::finish(int worker) {
  auto it = active_.find(worker);
  if (it == active_.end() || !it->second.outstanding.empty()) return false;
  active_.erase(it);
  return true;
}

bool LeaseManager::revoke(int worker) {
  auto it = active_.find(worker);
  if (it == active_.end()) return true;  // nothing leased: nothing to redo
  bool ok = true;
  for (const int point : it->second.outstanding) {
    queue_.insert(point);
    ++retried_;
    if (++retries_[point] > max_retries_ && ok) {
      ok = false;
      failed_first_ = it->second.first;
      failed_count_ = it->second.count;
    }
  }
  active_.erase(it);
  return ok;
}

std::vector<int> LeaseManager::expired(std::int64_t now_ms) const {
  std::vector<int> out;
  for (const auto& [worker, lease] : active_)
    if (lease.deadline_ms <= now_ms) out.push_back(worker);
  return out;
}

std::int64_t LeaseManager::next_deadline() const {
  std::int64_t best = -1;
  for (const auto& [worker, lease] : active_) {
    (void)worker;
    if (best < 0 || lease.deadline_ms < best) best = lease.deadline_ms;
  }
  return best;
}

bool LeaseManager::point_outstanding(int worker, int point) const {
  auto it = active_.find(worker);
  return it != active_.end() && it->second.outstanding.count(point) != 0;
}

}  // namespace nomc::svc
