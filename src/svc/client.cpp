#include "svc/client.hpp"

namespace nomc::svc {

bool Client::connect(const std::string& socket_path, std::string& error) {
  close();
  return connect_unix(socket_path, socket_, error);
}

void Client::close() {
  socket_.close();
  splitter_ = LineSplitter{kMaxLine};
}

bool Client::send_line(const std::string& line, std::string& error) {
  if (!connected()) {
    error = "client is not connected";
    return false;
  }
  return write_all(socket_, line + "\n", error);
}

bool Client::recv_line(std::string& line, std::string& error) {
  bool oversized = false;
  while (true) {
    if (splitter_.take(line, oversized)) {
      if (oversized) {
        error = "reply line exceeds " + std::to_string(kMaxLine) + " bytes";
        return false;
      }
      return true;
    }
    std::string bytes;
    bool closed = false;
    if (!read_blocking(socket_, bytes, std::size_t{1} << 16, closed, error)) return false;
    if (closed && bytes.empty()) {
      error = "server closed the connection";
      return false;
    }
    splitter_.feed(bytes);
  }
}

bool Client::call(const std::string& request, exp::JsonValue& reply, std::string& error) {
  if (!send_line(request, error)) return false;
  std::string line;
  if (!recv_line(line, error)) return false;
  return parse_reply(line, reply, error);
}

}  // namespace nomc::svc
