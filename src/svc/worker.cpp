#include "svc/worker.hpp"

#include <string>

#include "exp/campaign.hpp"
#include "exp/spec.hpp"
#include "svc/protocol.hpp"

namespace nomc::svc {
namespace {

/// Read one '\n'-terminated line from `in` (newline stripped). Returns false
/// on EOF with nothing buffered; a final unterminated line is returned as-is.
bool read_line(std::FILE* in, std::string& line) {
  line.clear();
  int ch = 0;
  while ((ch = std::fgetc(in)) != EOF) {
    if (ch == '\n') return true;
    line.push_back(static_cast<char>(ch));
  }
  return !line.empty();
}

/// Write one reply line and flush, so the supervisor sees each completed
/// point the moment it lands — a SIGKILL then loses at most the point in
/// flight, never a buffered-but-computed one.
bool write_line(std::FILE* out, const std::string& line) {
  if (std::fwrite(line.data(), 1, line.size(), out) != line.size()) return false;
  if (std::fputc('\n', out) == EOF) return false;
  return std::fflush(out) == 0;
}

}  // namespace

int run_worker(std::FILE* in, std::FILE* out) {
  std::string line;
  while (read_line(in, line)) {
    LeaseRequest lease;
    std::string error;
    if (!parse_lease(line, lease, error)) {
      write_line(out, error_reply(error));
      return 1;
    }
    exp::CampaignSpec spec;
    exp::SpecError spec_error;
    if (!exp::parse_campaign(lease.spec, spec, spec_error)) {
      write_line(out, error_reply("bad spec in lease: " + spec_error.message));
      return 1;
    }
    exp::RangeOptions options;
    options.jobs = lease.jobs;
    options.trial_workers = lease.trial_workers;
    bool io_ok = true;
    const bool ran = exp::run_point_range(
        spec, lease.first, lease.count, options,
        [&](const exp::SweepPoint& point, const std::string& record, double wall_ms) {
          io_ok = write_line(out, worker_record_line(point.index, wall_ms, record));
          return io_ok;
        },
        error);
    if (!io_ok) return 1;  // supervisor closed the pipe; nothing left to say
    if (!ran) {
      write_line(out, error_reply(error));
      return 1;
    }
    if (!write_line(out, worker_done_line(lease.first, lease.count))) return 1;
  }
  return 0;
}

}  // namespace nomc::svc
