#include "svc/socket.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace nomc::svc {
namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool set_nonblocking(int fd, std::string& error) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    error = errno_text("fcntl(O_NONBLOCK)");
    return false;
  }
  return true;
}

bool fill_address(const std::string& path, sockaddr_un& address, std::string& error) {
  std::memset(&address, 0, sizeof address);
  address.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof address.sun_path) {
    error = "socket path must be 1.." + std::to_string(sizeof address.sun_path - 1) +
            " bytes: " + path;
    return false;
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool listen_unix(const std::string& path, Socket& out, std::string& error) {
  sockaddr_un address{};
  if (!fill_address(path, address, error)) return false;

  Socket fd{::socket(AF_UNIX, SOCK_STREAM, 0)};
  if (!fd.valid()) {
    error = errno_text("socket");
    return false;
  }
  // A socket file left by a previous (crashed) server would make bind fail
  // with EADDRINUSE; a stale *file* is safe to replace, a live server is not
  // detectable portably — the operator owns the path.
  ::unlink(path.c_str());
  if (::bind(fd.fd(), reinterpret_cast<const sockaddr*>(&address), sizeof address) < 0) {
    error = errno_text(("bind " + path).c_str());
    return false;
  }
  if (::listen(fd.fd(), 64) < 0) {
    error = errno_text("listen");
    return false;
  }
  if (!set_nonblocking(fd.fd(), error)) return false;
  out = std::move(fd);
  return true;
}

bool accept_unix(const Socket& listener, Socket& out, bool& accepted, std::string& error) {
  accepted = false;
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED || errno == EINTR)
      return true;
    error = errno_text("accept");
    return false;
  }
  Socket session{fd};
  if (!set_nonblocking(session.fd(), error)) return false;
  out = std::move(session);
  accepted = true;
  return true;
}

bool connect_unix(const std::string& path, Socket& out, std::string& error) {
  sockaddr_un address{};
  if (!fill_address(path, address, error)) return false;

  Socket fd{::socket(AF_UNIX, SOCK_STREAM, 0)};
  if (!fd.valid()) {
    error = errno_text("socket");
    return false;
  }
  if (::connect(fd.fd(), reinterpret_cast<const sockaddr*>(&address), sizeof address) < 0) {
    error = errno_text(("connect " + path).c_str());
    return false;
  }
  out = std::move(fd);
  return true;
}

bool read_available(const Socket& socket, std::string& out, std::size_t max_bytes,
                    bool& closed, bool& would_block, std::string& error) {
  closed = false;
  would_block = false;
  std::size_t appended = 0;
  char buffer[1 << 14];
  while (appended < max_bytes) {
    const std::size_t want =
        max_bytes - appended < sizeof buffer ? max_bytes - appended : sizeof buffer;
    const ssize_t got = ::recv(socket.fd(), buffer, want, 0);
    if (got > 0) {
      out.append(buffer, static_cast<std::size_t>(got));
      appended += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) {
      closed = true;
      return true;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      would_block = appended == 0;
      return true;
    }
    if (errno == EINTR) continue;
    error = errno_text("recv");
    return false;
  }
  return true;
}

bool write_some(const Socket& socket, const std::string& data, std::size_t& offset,
                std::string& error) {
  while (offset < data.size()) {
    const ssize_t sent =
        ::send(socket.fd(), data.data() + offset, data.size() - offset, MSG_NOSIGNAL);
    if (sent > 0) {
      offset += static_cast<std::size_t>(sent);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    error = errno_text("send");
    return false;
  }
  return true;
}

bool write_all(const Socket& socket, const std::string& data, std::string& error) {
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t before = offset;
    if (!write_some(socket, data, offset, error)) return false;
    if (offset == before) {
      // A blocking socket only returns "would block" under SO_SNDTIMEO; the
      // client sets none, so treat a stall as an error rather than spin.
      error = "send stalled";
      return false;
    }
  }
  return true;
}

bool read_blocking(const Socket& socket, std::string& out, std::size_t max_bytes,
                   bool& closed, std::string& error) {
  closed = false;
  char buffer[1 << 14];
  const std::size_t want = max_bytes < sizeof buffer ? max_bytes : sizeof buffer;
  while (true) {
    const ssize_t got = ::recv(socket.fd(), buffer, want, 0);
    if (got > 0) {
      out.append(buffer, static_cast<std::size_t>(got));
      return true;
    }
    if (got == 0) {
      closed = true;
      return true;
    }
    if (errno == EINTR) continue;
    error = errno_text("recv");
    return false;
  }
}

bool poll_sockets(std::vector<PollEntry>& entries, int timeout_ms, std::string& error) {
  std::vector<pollfd> fds;
  fds.reserve(entries.size());
  for (const PollEntry& entry : entries) {
    pollfd fd{};
    fd.fd = entry.fd;
    fd.events = static_cast<short>((entry.want_read ? POLLIN : 0) |
                                   (entry.want_write ? POLLOUT : 0));
    fds.push_back(fd);
  }
  int ready = 0;
  do {
    ready = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready < 0) {
    error = errno_text("poll");
    return false;
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i].readable = (fds[i].revents & POLLIN) != 0;
    entries[i].writable = (fds[i].revents & POLLOUT) != 0;
    entries[i].broken = (fds[i].revents & (POLLERR | POLLNVAL)) != 0 ||
                        ((fds[i].revents & POLLHUP) != 0 && (fds[i].revents & POLLIN) == 0);
  }
  return true;
}

}  // namespace nomc::svc
