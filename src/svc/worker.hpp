// The worker side of the campaign-sharding protocol: a loop that reads
// lease lines from stdin, computes the leased point range through
// exp::run_point_range, and writes one record line per point (then a done
// line) to stdout — flushed per line, so the supervisor sees completions as
// they happen and a kill loses at most the point in flight.
//
// nomc-campaign's hidden `worker` command is a thin wrapper around
// run_worker; nomc-serve fork/execs it per --workers slot (the fork/exec
// plumbing itself lives in worker_pool.cpp, the one home the svc-raw-fork
// lint rule sanctions). The protocol grammar lives in svc/protocol.hpp.
#pragma once

#include <cstdio>

namespace nomc::svc {

/// Serve lease requests from `in` until EOF, writing replies to `out`.
/// Returns the process exit code: 0 on a clean EOF, 1 after an unparsable
/// lease line (an error line is emitted first — the supervisor treats any
/// unexpected output as a protocol fault and revokes the lease).
int run_worker(std::FILE* in, std::FILE* out);

}  // namespace nomc::svc
