// WorkerPool: supervision of the campaign worker processes. This file (and
// worker_pool.cpp) is the one sanctioned home for raw fork/exec/waitpid
// calls — the svc-raw-fork lint rule bans them everywhere else, exactly like
// svc-raw-socket confines raw socket calls to svc/socket.cpp.
//
// Each slot is one child process running `worker_argv` (normally
// `nomc-campaign worker`) with a pipe pair: the supervisor writes lease
// lines to the child's stdin and reads record/done lines from its stdout
// (non-blocking, drained from the server's poll loop). Workers are
// stateless — every lease line carries the full spec — so the pool's only
// recovery action is SIGKILL + respawn; the LeaseManager decides what to do
// with the lost points.
#pragma once

#include <string>
#include <sys/types.h>
#include <vector>

#include "svc/protocol.hpp"

namespace nomc::svc {

class WorkerPool {
 public:
  WorkerPool() = default;
  ~WorkerPool() { stop(); }
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawn `workers` children running `argv` (argv[0] is the binary path).
  /// Idempotent: running slots are kept, dead ones respawned.
  bool start(const std::vector<std::string>& argv, int workers, std::string& error);

  /// SIGKILL and reap every child. Safe at any time: workers hold no store
  /// state, so killing them loses at most the points in flight.
  void stop();

  [[nodiscard]] int size() const { return static_cast<int>(slots_.size()); }
  [[nodiscard]] bool alive(int slot) const;

  /// The child's stdout fd (non-blocking), for the server's poll set.
  /// -1 when the slot is not running.
  [[nodiscard]] int read_fd(int slot) const;

  /// Child pids, one per slot (-1 = not running). Tests use this to SIGKILL
  /// a specific worker mid-campaign.
  [[nodiscard]] std::vector<pid_t> pids() const;

  /// Write one lease line to the worker's stdin. Lease lines are far below
  /// the pipe buffer, so this never blocks in practice; a failed write means
  /// the child is gone (caller should treat it as a fault).
  bool send_lease(int slot, const LeaseRequest& lease);

  /// Drain the worker's stdout into its line splitter. `closed` reports EOF
  /// (the child exited or was killed). Returns false on a read error.
  bool drain(int slot, bool& closed);

  /// Pop the next complete stdout line from `slot`.
  bool take_line(int slot, std::string& line, bool& oversized);

  /// SIGKILL one slot and reap it (fault recovery). The slot stays dead
  /// until respawn().
  void kill_slot(int slot);

  /// Fork a replacement child for a dead slot.
  bool respawn(int slot, std::string& error);

 private:
  struct Slot {
    pid_t pid = -1;
    int in_fd = -1;   ///< write end of the child's stdin
    int out_fd = -1;  ///< read end of the child's stdout (non-blocking)
    LineSplitter splitter{kMaxLine};
  };

  bool spawn(Slot& slot, std::string& error);
  void close_slot(Slot& slot);

  std::vector<std::string> argv_;
  std::vector<Slot> slots_;
};

}  // namespace nomc::svc
