#include "ppr/ppr.hpp"

#include <cassert>

namespace nomc::ppr {

PprSender::PprSender(mac::CsmaMac& mac, PprConfig config) : mac_{mac}, config_{config} {
  mac_.add_rx_hook([this](const phy::RxResult& result) { on_rx(result); });
}

void PprSender::on_rx(const phy::RxResult& result) {
  if (!result.crc_ok) return;
  if (result.frame.type != phy::FrameType::kBlockNack) return;
  if (result.frame.dst != mac_.node()) return;

  // Build the repair: only the blocks the receiver flagged, plus framing.
  const int dirty = static_cast<int>(result.frame.aux);
  if (dirty <= 0) return;
  mac::TxRequest repair;
  repair.dst = result.frame.src;
  repair.psdu_bytes = config_.repair_overhead_bytes + dirty * config_.block_size_bytes;
  repair.fixed_sequence = result.frame.sequence;
  repair.repair_round = static_cast<std::uint8_t>(result.frame.repair_round + 1);
  mac_.enqueue_front(repair);
  ++stats_.repairs_sent;
  stats_.repair_bytes_sent += static_cast<std::uint64_t>(repair.psdu_bytes);
}

PprReceiver::PprReceiver(mac::CsmaMac& mac, PprConfig config,
                         std::function<void(const phy::RxResult&)> on_recovered)
    : mac_{mac}, config_{config}, on_recovered_{std::move(on_recovered)} {
  armed_ = !config_.adaptive;
  mac_.add_rx_hook([this](const phy::RxResult& result) { on_rx(result); });
}

void PprReceiver::note_outcome(bool failed) {
  if (!config_.adaptive) return;
  outcome_window_.push_back(failed);
  window_failures_ += failed ? 1 : 0;
  while (static_cast<int>(outcome_window_.size()) > config_.window) {
    window_failures_ -= outcome_window_.front() ? 1 : 0;
    outcome_window_.pop_front();
  }
  const double rate = outcome_window_.empty()
                          ? 0.0
                          : static_cast<double>(window_failures_) /
                                static_cast<double>(outcome_window_.size());
  // Hysteresis keeps the gate from flapping at the threshold.
  if (!armed_ && rate >= config_.arm_threshold) armed_ = true;
  if (armed_ && rate <= config_.disarm_threshold) armed_ = false;
}

std::deque<PprReceiver::Partial>::iterator PprReceiver::find_partial(phy::NodeId src,
                                                                     std::uint8_t sequence) {
  for (auto it = partials_.begin(); it != partials_.end(); ++it) {
    if (it->src == src && it->sequence == sequence) return it;
  }
  return partials_.end();
}

void PprReceiver::on_rx(const phy::RxResult& result) {
  if (result.frame.dst != mac_.node()) return;
  if (result.frame.type != phy::FrameType::kData) return;

  const phy::NodeId src = result.frame.src;
  const bool is_repair = result.frame.repair_round > 0;

  if (!is_repair) note_outcome(!result.crc_ok);

  if (result.crc_ok) {
    if (is_repair) {
      // An intact repair completes the stored partial.
      const auto it = find_partial(src, result.frame.sequence);
      if (it != partials_.end()) {
        partials_.erase(it);
        ++stats_.recovered;
        mac_.scheduler().trace_event(
            {.category = "ppr", .event = "recovered", .node = mac_.node()});
        if (on_recovered_) on_recovered_(result);
      }
    }
    return;
  }

  // CRC failure. Without a block map (or disarmed) there is nothing to do.
  if (!armed_ || result.block_errors.empty()) return;
  const int dirty = result.dirty_blocks();
  if (dirty == 0) return;  // defensive: CRC fail implies >=1 dirty block

  if (is_repair) {
    const auto it = find_partial(src, result.frame.sequence);
    if (it == partials_.end()) return;
    if (++it->rounds >= config_.max_rounds) {
      partials_.erase(it);
      ++stats_.abandoned;
      return;
    }
  } else {
    if (find_partial(src, result.frame.sequence) == partials_.end()) {
      if (static_cast<int>(partials_.size()) >= config_.max_partials) {
        partials_.pop_front();  // evict the oldest partial
        ++stats_.abandoned;
      }
      partials_.push_back(Partial{src, result.frame.sequence, 0});
      ++stats_.partials_stored;
    }
  }

  // Feedback: block-NACK with the dirty count, echoing DSN and round.
  phy::Frame nack;
  nack.dst = src;
  nack.psdu_bytes = config_.nack_psdu_bytes;
  nack.type = phy::FrameType::kBlockNack;
  nack.sequence = result.frame.sequence;
  nack.repair_round = result.frame.repair_round;
  nack.aux = static_cast<std::uint16_t>(dirty);
  mac_.send_control(nack);
  ++stats_.nacks_sent;
  mac_.scheduler().trace_event(
      {.category = "ppr", .event = "nack", .node = mac_.node(), .value = double(dirty)});
}

}  // namespace nomc::ppr
