// Partial Packet Recovery (PPR) link layer — the online recovery scheme the
// paper's §VII-A names as future work, after Jamieson & Balakrishnan
// (SIGCOMM'07), adapted to 802.15.4 frames.
//
// Protocol, per link:
//   1. The receiver keeps the PHY's per-block corruption map of every
//      CRC-failed data frame (a "partial packet").
//   2. It answers with a block-NACK control frame (sent like an ACK: one
//      turnaround after the data, no CSMA) listing how many blocks died.
//   3. The sender retransmits ONLY those blocks, as a short repair frame
//      carrying the original DSN, queued ahead of fresh data.
//   4. An intact repair completes the packet (delivered as recovered);
//      a corrupted repair triggers another round, up to max_rounds.
//
// The "identify the recover-demand" idea from §VII-A is the adaptive gate:
// recovery is only armed while the link's observed CRC-failure rate makes
// it worthwhile, so clean links pay zero overhead.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "mac/csma.hpp"

namespace nomc::ppr {

struct PprConfig {
  int block_size_bytes = 16;  ///< must match RadioConfig::block_size_bytes
  int max_rounds = 2;         ///< repair attempts per packet
  /// MAC+FCS overhead of a repair frame on top of the repaired blocks.
  int repair_overhead_bytes = 13;
  /// PSDU of a block-NACK control frame (header + bitmap + FCS).
  int nack_psdu_bytes = 9;

  /// Partial packets buffered at the receiver awaiting repair. A saturated
  /// sender keeps new (possibly also failing) frames coming while earlier
  /// repairs are still in flight, so several partials coexist per link.
  int max_partials = 8;

  // Adaptive gate (§VII-A "identify the recover-demand"): recovery arms
  // when the failure fraction over the last `window` deliveries+failures
  // exceeds `arm_threshold`, and disarms below `disarm_threshold`.
  bool adaptive = false;
  int window = 50;
  double arm_threshold = 0.10;
  double disarm_threshold = 0.02;
};

/// Statistics of one PPR-enabled link direction.
struct PprStats {
  std::uint64_t partials_stored = 0;   ///< CRC failures captured with a block map
  std::uint64_t nacks_sent = 0;
  std::uint64_t repairs_sent = 0;
  std::uint64_t repair_bytes_sent = 0; ///< PSDU bytes spent on repairs
  std::uint64_t recovered = 0;         ///< packets completed by a repair
  std::uint64_t abandoned = 0;         ///< partials dropped after max_rounds
};

/// Sender side: answers block-NACKs with repair frames.
class PprSender {
 public:
  /// Attaches to `mac` (adds an rx hook). `mac` must outlive this object.
  PprSender(mac::CsmaMac& mac, PprConfig config = {});

  [[nodiscard]] const PprStats& stats() const { return stats_; }

 private:
  void on_rx(const phy::RxResult& result);

  mac::CsmaMac& mac_;
  PprConfig config_;
  PprStats stats_;
};

/// Receiver side: stores partial packets, emits block-NACKs, merges repairs.
class PprReceiver {
 public:
  /// Attaches to `mac`. Recovered packets are reported through
  /// `on_recovered` (in addition to the stats), so throughput meters can
  /// count them like ordinary deliveries.
  PprReceiver(mac::CsmaMac& mac, PprConfig config = {},
              std::function<void(const phy::RxResult&)> on_recovered = {});

  [[nodiscard]] const PprStats& stats() const { return stats_; }

  /// Whether the adaptive gate currently arms recovery (always true when
  /// config.adaptive is false).
  [[nodiscard]] bool armed() const { return armed_; }

 private:
  struct Partial {
    phy::NodeId src = phy::kNoNode;
    std::uint8_t sequence = 0;
    int rounds = 0;
  };

  void on_rx(const phy::RxResult& result);
  void note_outcome(bool failed);
  [[nodiscard]] std::deque<Partial>::iterator find_partial(phy::NodeId src,
                                                           std::uint8_t sequence);

  mac::CsmaMac& mac_;
  PprConfig config_;
  PprStats stats_;
  std::function<void(const phy::RxResult&)> on_recovered_;
  std::deque<Partial> partials_;  // FIFO, capped at config_.max_partials
  std::deque<bool> outcome_window_;  // true = CRC failure
  int window_failures_ = 0;
  bool armed_ = true;
};

}  // namespace nomc::ppr
