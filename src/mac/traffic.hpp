// Traffic sources beyond saturation.
//
// The paper's experiments run saturated senders (CsmaMac::set_saturated);
// deployed sensor networks usually report periodically or in Poisson
// bursts. These sources drive a CsmaMac from the scheduler and stop cleanly.
#pragma once

#include "mac/csma.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace nomc::mac {

/// Fixed-interval sensing reports (e.g. one reading per second).
class PeriodicSource {
 public:
  PeriodicSource(sim::Scheduler& scheduler, CsmaMac& mac);
  ~PeriodicSource();
  PeriodicSource(const PeriodicSource&) = delete;
  PeriodicSource& operator=(const PeriodicSource&) = delete;

  /// Enqueue `request` every `period`, first at now + period.
  void start(TxRequest request, sim::SimTime period);
  void stop();

  [[nodiscard]] std::uint64_t generated() const { return generated_; }

 private:
  void tick();

  sim::Scheduler& scheduler_;
  CsmaMac& mac_;
  TxRequest request_{};
  sim::SimTime period_;
  bool running_ = false;
  sim::EventId timer_ = sim::kInvalidEventId;
  std::uint64_t generated_ = 0;
};

/// Poisson arrivals (exponential inter-arrival times) at a mean rate.
class PoissonSource {
 public:
  PoissonSource(sim::Scheduler& scheduler, CsmaMac& mac, sim::RandomStream rng);
  ~PoissonSource();
  PoissonSource(const PoissonSource&) = delete;
  PoissonSource& operator=(const PoissonSource&) = delete;

  /// Enqueue `request` at `rate_per_second` mean arrivals per second.
  void start(TxRequest request, double rate_per_second);
  void stop();

  [[nodiscard]] std::uint64_t generated() const { return generated_; }

 private:
  void schedule_next();

  sim::Scheduler& scheduler_;
  CsmaMac& mac_;
  sim::RandomStream rng_;
  TxRequest request_{};
  double rate_ = 0.0;
  bool running_ = false;
  sim::EventId timer_ = sim::kInvalidEventId;
  std::uint64_t generated_ = 0;
};

}  // namespace nomc::mac
