// IEEE 802.15.4 unslotted CSMA/CA, parameterized on the CCA threshold.
//
// The transmit path follows the standard: for each frame, NB=0, BE=macMinBE;
// wait a random backoff of [0, 2^BE−1] unit periods; perform CCA; if busy,
// NB++, BE=min(BE+1, macMaxBE) and retry, giving up after macMaxCSMABackoffs
// busy CCAs (channel access failure); if clear, turn the radio around and
// transmit. No acknowledgements: the paper measures one-way saturation
// throughput at the receivers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mac/cca.hpp"
#include "phy/radio.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "stats/counters.hpp"

namespace nomc::mac {

/// CCA decision modes, after the CC2420's CCA_MODE register:
///   kEnergy        — busy when sensed energy exceeds the threshold (mode 1;
///                    the mode the paper studies and DCN tunes);
///   kCarrierSense  — busy when 802.15.4 modulation is detected on the tuned
///                    channel (mode 2). Inter-channel signals are invisible
///                    to the demodulator, so this is an in-hardware
///                    implementation of §VII-C's "identify the interference
///                    as co-channel or not" future work;
///   kEnergyOrCarrier — busy when either trips (mode 3, conservative).
enum class CcaMode {
  kEnergy,
  kCarrierSense,
  kEnergyOrCarrier,
};

struct CsmaParams {
  int min_be = 3;            ///< macMinBE
  int max_be = 5;            ///< macMaxBE
  int max_backoffs = 4;      ///< macMaxCSMABackoffs

  CcaMode cca_mode = CcaMode::kEnergy;
  /// Weakest co-channel carrier the modulation detector still reports.
  phy::Dbm carrier_sense_sensitivity{-94.0};
  sim::SimTime unit_backoff = phy::kUnitBackoff;
  sim::SimTime cca_duration = phy::kCcaDuration;
  sim::SimTime turnaround = phy::kTurnaround;

  // Acknowledgement support (802.15.4 §7.5.6.4). The paper's experiments
  // run without ACKs (throughput is measured at the receivers), so the
  // default is off; a production deployment turns it on per TxRequest.
  int max_frame_retries = 3;                              ///< macMaxFrameRetries
  sim::SimTime ack_wait = sim::SimTime::microseconds(864);  ///< macAckWaitDuration

  /// Transmit queue capacity; enqueue beyond it drops the newest frame
  /// (counted in PacketCounters::queue_drops). Relay nodes in multi-hop
  /// collection set this to a small buffer like real motes.
  std::size_t max_queue = 1u << 20;

  /// Upper-layer reaction to CHANNEL_ACCESS_FAILURE: restart the whole CSMA
  /// procedure up to this many times before dropping the frame. The
  /// standard MAC drops immediately (0, the default — what the paper's
  /// experiments ran); deployed stacks (e.g. TinyOS's) retry, which matters
  /// under bursty relay traffic where consecutive CCAs are correlated.
  int access_failure_retries = 0;
};

/// A queued outgoing frame: destination + PSDU size (+ optional ACK).
/// The PPR fields let a recovery layer retransmit under the original DSN.
struct TxRequest {
  phy::NodeId dst = phy::kNoNode;
  int psdu_bytes = 0;
  bool ack_request = false;
  std::optional<std::uint8_t> fixed_sequence;  ///< reuse this DSN (repairs)
  std::uint8_t repair_round = 0;               ///< >0 marks a PPR repair frame
  std::uint16_t aux = 0;                       ///< copied into Frame::aux
};

class CsmaMac final : public phy::RadioListener {
 public:
  /// `cca` must outlive the MAC; it is queried at every CCA instant, which is
  /// what lets DCN move the threshold while the network runs.
  CsmaMac(sim::Scheduler& scheduler, phy::Medium& medium, phy::Radio& radio,
          sim::RandomStream rng, CcaThresholdProvider& cca, CsmaParams params = {});
  ~CsmaMac() override;
  CsmaMac(const CsmaMac&) = delete;
  CsmaMac& operator=(const CsmaMac&) = delete;

  void set_tx_power(phy::Dbm power) { tx_power_ = power; }
  [[nodiscard]] phy::Dbm tx_power() const { return tx_power_; }

  /// Queue one frame for transmission.
  void enqueue(TxRequest request);

  /// Queue ahead of everything else (PPR repairs preempt fresh data so the
  /// receiver's partial packet is still warm).
  void enqueue_front(TxRequest request);

  /// Transmit a control frame a turnaround from now, bypassing CSMA — the
  /// path ACKs use; PPR block-NACK feedback rides it too.
  void send_control(phy::Frame frame);

  /// Saturated mode: whenever the queue drains, another copy of `request` is
  /// generated, so the node always has traffic pending (the paper's
  /// "maximum data rate" senders).
  void set_saturated(TxRequest request);

  /// Stop generating saturated traffic (pending frame still completes).
  void stop_saturated() { saturated_.reset(); }

  /// Called for every frame this node's radio decodes (CRC pass or fail),
  /// promiscuously. DCN's adjustor subscribes here for co-channel RSSI;
  /// PPR's sender/receiver sides subscribe for feedback. Hooks accumulate.
  void add_rx_hook(std::function<void(const phy::RxResult&)> hook) {
    rx_hooks_.push_back(std::move(hook));
  }

  /// Replaces all hooks with `hook` (legacy single-subscriber form).
  void set_rx_hook(std::function<void(const phy::RxResult&)> hook) {
    rx_hooks_.clear();
    rx_hooks_.push_back(std::move(hook));
  }

  /// Called after each successful delivery *addressed to this node*.
  void set_delivery_hook(std::function<void(const phy::RxResult&)> hook) {
    delivery_hook_ = std::move(hook);
  }

  [[nodiscard]] const stats::PacketCounters& counters() const { return counters_; }
  [[nodiscard]] stats::PacketCounters& counters() { return counters_; }

  [[nodiscard]] phy::NodeId node() const { return radio_.node(); }
  [[nodiscard]] bool busy() const { return current_.has_value(); }
  [[nodiscard]] sim::Scheduler& scheduler() { return scheduler_; }

  // RadioListener:
  void on_rx(const phy::RxResult& result) override;
  void on_tx_done(const phy::Frame& frame) override;

 private:
  void maybe_start_next();
  void start_attempt();
  void backoff_then_cca();
  void do_cca();
  void finish_current();
  void on_ack_timeout();
  void send_ack(const phy::Frame& data_frame);

  sim::Scheduler& scheduler_;
  phy::Medium& medium_;
  phy::Radio& radio_;
  sim::RandomStream rng_;
  CcaThresholdProvider& cca_;
  CsmaParams params_;

  phy::Dbm tx_power_{0.0};
  std::deque<TxRequest> queue_;
  std::optional<TxRequest> saturated_;

  std::optional<TxRequest> current_;
  int nb_ = 0;       // backoff attempts for the current frame
  int be_ = 0;       // current backoff exponent
  int retries_ = 0;  // retransmissions of the current frame (ACK mode)
  int access_retries_ = 0;  // CSMA-procedure restarts for the current frame
  std::uint8_t next_sequence_ = 0;
  std::uint8_t awaiting_ack_sequence_ = 0;
  bool awaiting_ack_ = false;
  sim::EventId pending_event_ = sim::kInvalidEventId;
  sim::EventId ack_timer_ = sim::kInvalidEventId;
  std::unordered_map<phy::NodeId, int> last_sequence_;  // DSN dedup per source

  std::vector<std::function<void(const phy::RxResult&)>> rx_hooks_;
  std::function<void(const phy::RxResult&)> delivery_hook_;
  stats::PacketCounters counters_;
};

}  // namespace nomc::mac
