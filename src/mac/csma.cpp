#include "mac/csma.hpp"

#include <cassert>

namespace nomc::mac {

CsmaMac::CsmaMac(sim::Scheduler& scheduler, phy::Medium& medium, phy::Radio& radio,
                 sim::RandomStream rng, CcaThresholdProvider& cca, CsmaParams params)
    : scheduler_{scheduler},
      medium_{medium},
      radio_{radio},
      rng_{std::move(rng)},
      cca_{cca},
      params_{params} {
  assert(params_.min_be >= 0 && params_.min_be <= params_.max_be);
  assert(params_.max_backoffs >= 0);
  radio_.set_listener(this);
}

CsmaMac::~CsmaMac() {
  if (pending_event_ != sim::kInvalidEventId) scheduler_.cancel(pending_event_);
  if (ack_timer_ != sim::kInvalidEventId) scheduler_.cancel(ack_timer_);
  radio_.set_listener(nullptr);
}

void CsmaMac::enqueue(TxRequest request) {
  assert(request.psdu_bytes > 0);
  if (queue_.size() >= params_.max_queue) {
    ++counters_.queue_drops;  // tail drop, as on a full mote buffer
    return;
  }
  queue_.push_back(request);
  maybe_start_next();
}

void CsmaMac::enqueue_front(TxRequest request) {
  assert(request.psdu_bytes > 0);
  if (queue_.size() >= params_.max_queue) {
    ++counters_.queue_drops;
    return;
  }
  queue_.push_front(request);
  maybe_start_next();
}

void CsmaMac::send_control(phy::Frame frame) {
  frame.id = medium_.allocate_frame_id();
  frame.src = radio_.node();
  frame.channel = radio_.channel();
  frame.tx_power = tx_power_;
  radio_.schedule_tx(params_.turnaround, frame, /*skip_if_busy=*/true);
}

void CsmaMac::set_saturated(TxRequest request) {
  assert(request.psdu_bytes > 0);
  saturated_ = request;
  maybe_start_next();
}

void CsmaMac::maybe_start_next() {
  if (current_.has_value()) return;
  if (queue_.empty()) {
    if (!saturated_.has_value()) return;
    queue_.push_back(*saturated_);
  }
  current_ = queue_.front();
  queue_.pop_front();
  retries_ = 0;
  access_retries_ = 0;
  // DSN is stable across retries; PPR repairs reuse the original frame's.
  awaiting_ack_sequence_ =
      current_->fixed_sequence.has_value() ? *current_->fixed_sequence : next_sequence_++;
  start_attempt();
}

void CsmaMac::start_attempt() {
  nb_ = 0;
  be_ = params_.min_be;
  backoff_then_cca();
}

void CsmaMac::backoff_then_cca() {
  // In steady state pending_event_ is always invalid here. A stale tx-done —
  // a frame left in flight by this radio's previous listener — can restart
  // the attempt while a CCA timer is still pending; overwriting the id would
  // orphan that timer past the destructor's cancel (use-after-scope).
  if (pending_event_ != sim::kInvalidEventId) scheduler_.cancel(pending_event_);
  const std::int64_t max_units = (std::int64_t{1} << be_) - 1;
  const std::int64_t units = rng_.uniform_int(0, max_units);
  pending_event_ = scheduler_.schedule_in(units * params_.unit_backoff + params_.cca_duration,
                                          [this] { do_cca(); });
}

void CsmaMac::do_cca() {
  pending_event_ = sim::kInvalidEventId;
  assert(current_.has_value());

  // Sampled at the end of the 8-symbol CCA window; the threshold is re-read
  // every time, so a dynamic provider (DCN) takes effect immediately.
  bool busy = false;
  if (params_.cca_mode != CcaMode::kCarrierSense) {
    busy = radio_.sense_energy() > cca_.threshold();
  }
  if (!busy && params_.cca_mode != CcaMode::kEnergy) {
    busy = medium_.carrier_present(radio_.node(), radio_.channel(),
                                   params_.carrier_sense_sensitivity);
  }
  if (busy) {
    ++counters_.cca_backoffs;
    if (scheduler_.trace() != nullptr) {
      scheduler_.trace_event({.category = "mac", .event = "cca_busy", .node = radio_.node(),
                              .value = radio_.sense_energy().value});
    }
    ++nb_;
    if (nb_ > params_.max_backoffs) {
      // Channel access failure.
      ++counters_.cca_failures;
      scheduler_.trace_event(
          {.category = "mac", .event = "access_failure", .node = radio_.node()});
      if (access_retries_ < params_.access_failure_retries) {
        ++access_retries_;
        start_attempt();  // upper-layer retry: fresh BE/NB
        return;
      }
      finish_current();
      return;
    }
    be_ = std::min(be_ + 1, params_.max_be);
    backoff_then_cca();
    return;
  }

  // CCA is clear: the transmission is committed. The frame is built (and its
  // id allocated) here, at the commit instant, because the decision is
  // irrevocable from this point — the radio fires exactly one turnaround
  // later, which is the lookahead a region router relies on to mirror the
  // frame onto neighbouring shards before it can be observed anywhere.
  phy::Frame frame;
  frame.id = medium_.allocate_frame_id();
  frame.src = radio_.node();
  frame.dst = current_->dst;
  frame.channel = radio_.channel();
  frame.tx_power = tx_power_;
  frame.psdu_bytes = current_->psdu_bytes;
  frame.sequence = awaiting_ack_sequence_;
  frame.ack_request = current_->ack_request;
  frame.repair_round = current_->repair_round;
  frame.aux = current_->aux;
  pending_event_ = radio_.schedule_tx(params_.turnaround, frame);
  // Completion continues in on_tx_done().
}

void CsmaMac::send_ack(const phy::Frame& data_frame) {
  // ACKs bypass CSMA: transmitted a turnaround after the data frame ends
  // (802.15.4 §7.5.6.4.2), unless the radio has been re-keyed meanwhile.
  phy::Frame ack;
  ack.dst = data_frame.src;
  ack.psdu_bytes = phy::kAckPsduBytes;
  ack.type = phy::FrameType::kAck;
  ack.sequence = data_frame.sequence;
  send_control(ack);
}

void CsmaMac::on_ack_timeout() {
  ack_timer_ = sim::kInvalidEventId;
  if (!awaiting_ack_) return;
  awaiting_ack_ = false;
  ++retries_;
  if (retries_ > params_.max_frame_retries) {
    ++counters_.retry_drops;
    finish_current();
    return;
  }
  ++counters_.retransmissions;
  start_attempt();  // full CSMA procedure again, same DSN
}

void CsmaMac::finish_current() {
  current_.reset();
  maybe_start_next();
}

void CsmaMac::on_tx_done(const phy::Frame& frame) {
  if (frame.type == phy::FrameType::kAck) return;  // not a data completion
  ++counters_.sent;
  if (frame.ack_request) {
    awaiting_ack_ = true;
    ack_timer_ = scheduler_.schedule_in(params_.ack_wait, [this] { on_ack_timeout(); });
    return;  // completion decided by the ACK or its timeout
  }
  finish_current();
}

void CsmaMac::on_rx(const phy::RxResult& result) {
  for (const auto& hook : rx_hooks_) hook(result);

  const bool for_me = result.frame.dst == radio_.node();
  if (!for_me) return;

  // Control frames other than ACKs (e.g. PPR block-NACKs) are consumed by
  // subscribed hooks; they are not data deliveries.
  if (result.frame.type == phy::FrameType::kBlockNack) return;

  if (result.frame.type == phy::FrameType::kAck) {
    if (result.crc_ok && awaiting_ack_ && result.frame.sequence == awaiting_ack_sequence_) {
      awaiting_ack_ = false;
      if (ack_timer_ != sim::kInvalidEventId) {
        scheduler_.cancel(ack_timer_);
        ack_timer_ = sim::kInvalidEventId;
      }
      ++counters_.acked;
      finish_current();
    }
    return;  // ACKs never count as data deliveries
  }

  if (result.collided()) {
    ++counters_.collided;
    if (result.crc_ok) ++counters_.collided_received;
  }
  if (!result.crc_ok) {
    ++counters_.crc_failed;
    return;
  }

  // Retransmission handling: acknowledge every intact copy, deliver only
  // the first (DSN-based duplicate rejection, 802.15.4 §7.5.6.2).
  if (result.frame.ack_request) {
    const auto [it, inserted] = last_sequence_.try_emplace(result.frame.src, -1);
    const bool duplicate = !inserted && it->second == static_cast<int>(result.frame.sequence);
    it->second = static_cast<int>(result.frame.sequence);
    send_ack(result.frame);
    if (duplicate) {
      ++counters_.duplicates;
      return;
    }
  }

  ++counters_.received;
  if (delivery_hook_) delivery_hook_(result);
}

}  // namespace nomc::mac
