#include "mac/attacker.hpp"

#include <cassert>

namespace nomc::mac {

AttackerMac::AttackerMac(sim::Scheduler& scheduler, phy::Medium& medium, phy::Radio& radio)
    : scheduler_{scheduler}, medium_{medium}, radio_{radio} {
  radio_.set_listener(this);
}

AttackerMac::~AttackerMac() {
  stop();
  radio_.set_listener(nullptr);
}

void AttackerMac::start(phy::NodeId dst, int psdu_bytes, sim::SimTime period) {
  assert(psdu_bytes > 0);
  assert(period > sim::SimTime::zero());
  dst_ = dst;
  psdu_bytes_ = psdu_bytes;
  period_ = period;
  running_ = true;
  timer_ = scheduler_.schedule_in(period_, [this] { fire(); });
}

void AttackerMac::stop() {
  running_ = false;
  if (timer_ != sim::kInvalidEventId) {
    scheduler_.cancel(timer_);
    timer_ = sim::kInvalidEventId;
  }
}

void AttackerMac::fire() {
  timer_ = sim::kInvalidEventId;
  if (!running_) return;
  // No carrier sensing: transmit regardless of channel state, unless the
  // previous frame is somehow still leaving the radio (period < duration).
  if (radio_.state() != phy::Radio::State::kTx) {
    phy::Frame frame;
    frame.id = medium_.allocate_frame_id();
    frame.src = radio_.node();
    frame.dst = dst_;
    frame.channel = radio_.channel();
    frame.tx_power = tx_power_;
    frame.psdu_bytes = psdu_bytes_;
    radio_.transmit(frame);
    ++counters_.sent;
  }
  timer_ = scheduler_.schedule_in(period_, [this] { fire(); });
}

void AttackerMac::on_tx_done(const phy::Frame&) {}

void AttackerMac::on_rx(const phy::RxResult& result) {
  if (rx_hook_) rx_hook_(result);
  if (result.frame.dst != radio_.node()) return;
  if (result.collided()) {
    ++counters_.collided;
    if (result.crc_ok) ++counters_.collided_received;
  }
  if (result.crc_ok) {
    ++counters_.received;
  } else {
    ++counters_.crc_failed;
  }
}

}  // namespace nomc::mac
