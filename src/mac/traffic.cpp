#include "mac/traffic.hpp"

#include <cassert>

namespace nomc::mac {

PeriodicSource::PeriodicSource(sim::Scheduler& scheduler, CsmaMac& mac)
    : scheduler_{scheduler}, mac_{mac} {}

PeriodicSource::~PeriodicSource() { stop(); }

void PeriodicSource::start(TxRequest request, sim::SimTime period) {
  assert(request.psdu_bytes > 0);
  assert(period > sim::SimTime::zero());
  request_ = request;
  period_ = period;
  running_ = true;
  timer_ = scheduler_.schedule_in(period_, [this] { tick(); });
}

void PeriodicSource::stop() {
  running_ = false;
  if (timer_ != sim::kInvalidEventId) {
    scheduler_.cancel(timer_);
    timer_ = sim::kInvalidEventId;
  }
}

void PeriodicSource::tick() {
  timer_ = sim::kInvalidEventId;
  if (!running_) return;
  mac_.enqueue(request_);
  ++generated_;
  timer_ = scheduler_.schedule_in(period_, [this] { tick(); });
}

PoissonSource::PoissonSource(sim::Scheduler& scheduler, CsmaMac& mac, sim::RandomStream rng)
    : scheduler_{scheduler}, mac_{mac}, rng_{std::move(rng)} {}

PoissonSource::~PoissonSource() { stop(); }

void PoissonSource::start(TxRequest request, double rate_per_second) {
  assert(request.psdu_bytes > 0);
  assert(rate_per_second > 0.0);
  request_ = request;
  rate_ = rate_per_second;
  running_ = true;
  schedule_next();
}

void PoissonSource::stop() {
  running_ = false;
  if (timer_ != sim::kInvalidEventId) {
    scheduler_.cancel(timer_);
    timer_ = sim::kInvalidEventId;
  }
}

void PoissonSource::schedule_next() {
  const double wait_s = rng_.exponential(rate_);
  timer_ = scheduler_.schedule_in(sim::SimTime::seconds(wait_s), [this] {
    timer_ = sim::kInvalidEventId;
    if (!running_) return;
    mac_.enqueue(request_);
    ++generated_;
    schedule_next();
  });
}

}  // namespace nomc::mac
