// Carrier-sense-disabled "attacker" sender (paper §III-B, Fig. 3).
//
// To manufacture guaranteed collisions, the paper designates one link's
// sender as an attacker that bypasses CSMA entirely and blasts a frame every
// 3 ms; with such channel occupancy every frame of the normal sender on the
// neighbouring channel collides, which is what the CPRR metric measures.
#pragma once

#include <functional>
#include <optional>

#include "phy/radio.hpp"
#include "sim/scheduler.hpp"
#include "stats/counters.hpp"

namespace nomc::mac {

class AttackerMac final : public phy::RadioListener {
 public:
  AttackerMac(sim::Scheduler& scheduler, phy::Medium& medium, phy::Radio& radio);
  ~AttackerMac() override;
  AttackerMac(const AttackerMac&) = delete;
  AttackerMac& operator=(const AttackerMac&) = delete;

  void set_tx_power(phy::Dbm power) { tx_power_ = power; }

  /// Begin firing frames of `psdu_bytes` to `dst` every `period`.
  void start(phy::NodeId dst, int psdu_bytes, sim::SimTime period);
  void stop();

  /// Promiscuous receive hook (same contract as CsmaMac's).
  void set_rx_hook(std::function<void(const phy::RxResult&)> hook) { rx_hook_ = std::move(hook); }

  [[nodiscard]] const stats::PacketCounters& counters() const { return counters_; }

  // RadioListener:
  void on_rx(const phy::RxResult& result) override;
  void on_tx_done(const phy::Frame& frame) override;

 private:
  void fire();

  sim::Scheduler& scheduler_;
  phy::Medium& medium_;
  phy::Radio& radio_;
  phy::Dbm tx_power_{0.0};
  phy::NodeId dst_ = phy::kNoNode;
  int psdu_bytes_ = 0;
  sim::SimTime period_ = sim::SimTime::milliseconds(3);
  bool running_ = false;
  sim::EventId timer_ = sim::kInvalidEventId;
  std::function<void(const phy::RxResult&)> rx_hook_;
  stats::PacketCounters counters_;
};

}  // namespace nomc::mac
