// Clear-channel-assessment threshold sources.
//
// The MAC asks a CcaThresholdProvider for the current threshold each time it
// performs CCA. The default ZigBee design uses a fixed −77 dBm; the paper's
// DCN contribution is a dynamic provider (dcn::CcaAdjustor) plugged into the
// same seam.
#pragma once

#include "phy/units.hpp"

namespace nomc::mac {

class CcaThresholdProvider {
 public:
  virtual ~CcaThresholdProvider() = default;
  [[nodiscard]] virtual phy::Dbm threshold() const = 0;
};

/// ZigBee default: a compile-time-fixed energy threshold.
class FixedCcaThreshold final : public CcaThresholdProvider {
 public:
  explicit FixedCcaThreshold(phy::Dbm threshold) : threshold_{threshold} {}

  [[nodiscard]] phy::Dbm threshold() const override { return threshold_; }
  void set(phy::Dbm threshold) { threshold_ = threshold; }

 private:
  phy::Dbm threshold_;
};

/// The CC2420 default the paper compares against.
inline constexpr phy::Dbm kZigbeeDefaultCcaThreshold{-77.0};

}  // namespace nomc::mac
