// CampaignRunner: expands a CampaignSpec into its sweep grid, executes the
// points on a two-level worker pool (point_jobs concurrent points, each
// replicating its trials on a jobs-wide sim::ParallelRunner), and
// checkpoints completed points into the JSONL result store through an
// OrderedCheckpointer, so records land in point order no matter which point
// finished first.
//
// Determinism contract: a point's record bytes are a pure function of the
// spec — trials are seeded per point exactly like nomc-sim / bench::trial_seed
// (seed + trial * 1000003) and merged in seed order, so the store is
// byte-identical whether the campaign ran straight through, was interrupted
// and resumed, or used any (jobs, point_jobs) combination. Checkpoint
// granularity is one sweep point: resume re-runs at most the points that
// were in flight.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "exp/result_store.hpp"
#include "exp/spec.hpp"

namespace nomc::sim {
class ParallelRunner;
}
namespace nomc::net {
class Scenario;
}

namespace nomc::exp {

/// Seed-ordered mean across a point's trials, per network.
struct PointResult {
  std::vector<double> pps;
  std::vector<double> prr;
  std::vector<double> backoffs_per_s;
  std::vector<double> drops_per_s;
  double overall_pps = 0.0;
  double jain = 0.0;  ///< Jain fairness index of the mean per-network pps
};

/// Called for each trial's Scenario after construction, before run()
/// (nomc-sim uses it to attach the event trace to trial 0).
using TrialHook = std::function<void(int trial, net::Scenario&)>;

/// Run one operating point: params.trials independent deployments replicated
/// on `runner`, merged in seed order. The params must be pre-validated
/// (parser or cli helpers); run_point asserts on an unknown scheme/topology.
///
/// `trial_workers` != 1 runs each trial through net::ShardedScenario (spatial
/// region shards advanced in conservative lookahead windows) instead of the
/// serial net::Scenario. It is a wall-clock knob with resolve_jobs semantics
/// (0 = all hardware threads): results are bit-identical at every value, so
/// it is deliberately NOT part of PointParams and never enters the record.
/// The pre_run hook fires only on the serial path (it receives a
/// net::Scenario, which a sharded trial does not build).
[[nodiscard]] PointResult run_point(const PointParams& params, sim::ParallelRunner& runner,
                                    const TrialHook& pre_run = {}, int trial_workers = 1);

struct CampaignOptions {
  int jobs = 1;  ///< trial threads per point, as sim::resolve_jobs (0 = all)
  /// Sweep points computed concurrently (0 = all hardware threads). Each
  /// point worker owns its own jobs-wide trial pool, so ~jobs * point_jobs
  /// threads are busy at the peak; records still hit the store in point
  /// order via OrderedCheckpointer.
  int point_jobs = 1;
  enum class Mode {
    kFresh,      ///< error if the store already exists
    kOverwrite,  ///< truncate an existing store
    kResume,     ///< keep completed points, compute the rest
  };
  Mode mode = Mode::kFresh;
  /// Worker threads inside each trial (region-sharded execution; see
  /// run_point). Like jobs/point_jobs this is an execution knob only — the
  /// store bytes do not depend on it, and it is not part of the spec hash.
  int trial_workers = 1;
  /// Stop after computing this many new points (< 0 = no limit). The test
  /// suite uses this to simulate an interrupted campaign.
  int max_points = -1;
  bool quiet = false;  ///< suppress per-point progress lines on stdout
};

struct CampaignStats {
  int total = 0;     ///< grid size
  int computed = 0;  ///< points run in this invocation
  int reused = 0;    ///< points already in the store (resume)
};

/// An opened result store plus the work remaining for one campaign
/// execution. prepare_store does everything that happens before any point is
/// computed — the mode dispatch, the verbatim valid-prefix rewrite of a
/// resumed store, the timing-sidecar rebuild — leaving both writers
/// positioned to append and `pending` holding the grid points still missing,
/// in point order. run_campaign consumes it directly; the campaign service
/// uses it to shard `pending` across worker processes while writing through
/// the same writers (so server stores stay byte-identical to local runs).
struct StorePlan {
  StoreWriter writer;       ///< the JSONL store, valid prefix already written
  StoreWriter timing;       ///< the ".timing" sidecar, rebuilt on resume
  std::vector<int> pending; ///< point indices still to compute, ascending
  int total = 0;            ///< grid size
  int reused = 0;           ///< points already present (resume)
};

bool prepare_store(const CampaignSpec& spec, const std::string& out_path,
                   CampaignOptions::Mode mode, StorePlan& plan, std::string& error);

/// Execution knobs for run_point_range (the worker-process entry point).
struct RangeOptions {
  int jobs = 1;           ///< trial threads per point (sim::resolve_jobs)
  int trial_workers = 1;  ///< region-sharded workers inside each trial
};

/// Compute grid points [first, first+count) of `spec` in ascending point
/// order, invoking `emit` with each finished point's verbatim store record
/// (format_record — a pure function of (spec, point)) and its wall time.
/// This is the unit of work a campaign-service worker process executes per
/// lease: no store I/O happens here, the caller owns checkpointing. Returns
/// false on an out-of-range request or when `emit` returns false.
bool run_point_range(const CampaignSpec& spec, int first, int count,
                     const RangeOptions& options,
                     const std::function<bool(const SweepPoint& point, const std::string& record,
                                              double wall_ms)>& emit,
                     std::string& error);

/// Execute `spec` into the JSONL store at `out_path` (timing sidecar at
/// `out_path + ".timing"`). Returns false and fills `error` on spec-hash
/// mismatch, store corruption, or I/O failure.
bool run_campaign(const CampaignSpec& spec, const std::string& out_path,
                  const CampaignOptions& options, CampaignStats* stats, std::string& error);

/// The store record for one completed point (no trailing newline). Exposed
/// for tests that check byte-level determinism.
[[nodiscard]] std::string format_record(const CampaignSpec& spec, const SweepPoint& point,
                                        const PointResult& result);

}  // namespace nomc::exp
