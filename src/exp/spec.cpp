#include "exp/spec.hpp"

#include <cerrno>
#include <cinttypes>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include "exp/result_store.hpp"
#include "net/scheme_names.hpp"

namespace nomc::exp {
namespace {

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const auto pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    if (i > start) parts.push_back(text.substr(start, i - start));
  }
  return parts;
}

bool parse_num(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty();
}

bool parse_num(const std::string& text, int& out) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty()) return false;
  if (errno == ERANGE || value < INT_MIN || value > INT_MAX) return false;
  out = static_cast<int>(value);
  return true;
}

bool parse_num(const std::string& text, std::uint64_t& out) {
  if (text.empty() || text[0] == '-' || text[0] == '+') return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtoull(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && errno != ERANGE;
}

template <typename T>
bool set_number(const std::string& key, const std::string& value, T& slot, T min, T max,
                const char* range_hint, std::string& message) {
  T parsed{};
  if (!parse_num(value, parsed)) {
    message = "value of '" + key + "' is not a number: '" + value + "'";
    return false;
  }
  if (parsed < min || parsed > max) {
    message = "value of '" + key + "' out of range (" + range_hint + "): " + value;
    return false;
  }
  slot = parsed;
  return true;
}

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

// Canonical double text (spec hash + sweep values) reuses the store's
// pinned round-trip format so the two never drift apart.
void append_double(std::string& out, double value) { json_append_double(out, value); }

}  // namespace

std::string SpecError::str() const {
  if (line <= 0) return message;
  return "line " + std::to_string(line) + ": " + message;
}

bool apply_param(PointParams& params, const std::string& key, const std::string& value,
                 std::string& message) {
  if (key == "scheme") {
    net::Scheme ignored;
    if (!net::parse_scheme(value, ignored)) {
      message = "unknown scheme '" + value + "' (" + net::kSchemeChoices + ")";
      return false;
    }
    params.scheme = value;
    return true;
  }
  if (key == "topology") {
    if (!net::valid_topology(value)) {
      message = "unknown topology '" + value + "' (" + net::kTopologyChoices + ")";
      return false;
    }
    params.topology = value;
    return true;
  }
  if (key == "band-start") {
    return set_number(key, value, params.band_start_mhz, 1.0, 1e6, ">= 1 MHz", message);
  }
  if (key == "cfd") {
    return set_number(key, value, params.cfd_mhz, 0.1, 1e3, "0.1 .. 1000 MHz", message);
  }
  if (key == "channels") {
    return set_number(key, value, params.channels, 1, 256, "1 .. 256", message);
  }
  if (key == "links") {
    return set_number(key, value, params.links, 1, 64, "1 .. 64", message);
  }
  if (key == "power") {
    if (value == "random") {
      params.power_dbm.reset();
      return true;
    }
    double power = 0.0;
    if (!set_number(key, value, power, -200.0, 100.0, "dBm or 'random'", message)) {
      return false;
    }
    params.power_dbm = power;
    return true;
  }
  if (key == "cca") {
    return set_number(key, value, params.cca_dbm, -200.0, 0.0, "-200 .. 0 dBm", message);
  }
  if (key == "psdu") {
    return set_number(key, value, params.psdu_bytes, 1, 2047, "1 .. 2047 bytes", message);
  }
  if (key == "warmup") {
    return set_number(key, value, params.warmup_s, 0.0, 1e6, ">= 0 s", message);
  }
  if (key == "measure") {
    return set_number(key, value, params.measure_s, 1e-3, 1e6, "> 0 s", message);
  }
  if (key == "seed") {
    return set_number(key, value, params.seed, std::uint64_t{0},
                      ~std::uint64_t{0}, "unsigned 64-bit", message);
  }
  if (key == "trials") {
    return set_number(key, value, params.trials, 1, 100000, ">= 1", message);
  }
  message = "unknown key '" + key + "'";
  return false;
}

bool parse_campaign(const std::string& text, CampaignSpec& out, SpecError& error) {
  out = CampaignSpec{};
  std::set<std::string> assigned_keys;
  std::set<std::string> swept_keys;

  const std::vector<std::string> lines = split(text, '\n');
  for (std::size_t li = 0; li < lines.size(); ++li) {
    error.line = static_cast<int>(li) + 1;
    std::string line = lines[li];
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      error.message = "expected 'key = value' or 'sweep key = values'";
      return false;
    }
    std::string lhs = trim(line.substr(0, eq));
    const std::string rhs = trim(line.substr(eq + 1));

    const bool is_sweep = lhs.rfind("sweep", 0) == 0 &&
                          (lhs.size() == 5 || lhs[5] == ' ' || lhs[5] == '\t');
    if (is_sweep) {
      lhs = trim(lhs.substr(5));
      if (lhs.empty()) {
        error.message = "sweep needs a key: 'sweep key = values'";
        return false;
      }
      SweepAxis axis;
      axis.line = error.line;
      axis.keys = split(lhs, '/');
      for (const std::string& key : axis.keys) {
        if (trim(key) != key || key.empty()) {
          error.message = "malformed sweep key list '" + lhs + "'";
          return false;
        }
        if (!swept_keys.insert(key).second) {
          error.message = "key '" + key + "' swept by more than one sweep line";
          return false;
        }
      }
      const std::vector<std::string> steps = split_ws(rhs);
      if (steps.empty()) {
        error.message = "sweep of '" + lhs + "' lists no values";
        return false;
      }
      for (const std::string& step : steps) {
        std::vector<std::string> values = split(step, '/');
        if (values.size() != axis.keys.size()) {
          error.message = "sweep step '" + step + "' has " +
                          std::to_string(values.size()) + " value(s) for " +
                          std::to_string(axis.keys.size()) + " key(s)";
          return false;
        }
        // Validate each value now so expansion can never fail later.
        PointParams scratch = out.base;
        for (std::size_t k = 0; k < axis.keys.size(); ++k) {
          if (!apply_param(scratch, axis.keys[k], values[k], error.message)) return false;
        }
        axis.steps.push_back(std::move(values));
      }
      out.axes.push_back(std::move(axis));
      // Overflow-checked grid budget, attributed to the axis that blew it:
      // the product so far is always <= kMaxGridPoints, so the division
      // below cannot lose information.
      std::size_t total = 1;
      for (const SweepAxis& a : out.axes) {
        if (total > kMaxGridPoints / a.steps.size()) {
          error.message = "sweep grid exceeds " + std::to_string(kMaxGridPoints) +
                          " points (this axis multiplies the grid by " +
                          std::to_string(a.steps.size()) + ")";
          return false;
        }
        total *= a.steps.size();
      }
      continue;
    }

    if (lhs.empty()) {
      error.message = "expected 'key = value'";
      return false;
    }
    if (split_ws(lhs).size() != 1) {
      error.message = "malformed key '" + lhs + "'";
      return false;
    }
    if (lhs == "name") {
      if (!valid_name(rhs)) {
        error.message = "campaign name must match [A-Za-z0-9_.-]+, got '" + rhs + "'";
        return false;
      }
      out.name = rhs;
      continue;
    }
    if (!assigned_keys.insert(lhs).second) {
      error.message = "duplicate assignment of '" + lhs + "'";
      return false;
    }
    if (!apply_param(out.base, lhs, rhs, error.message)) return false;
  }

  error = SpecError{};
  return true;
}

bool load_campaign(const std::string& path, CampaignSpec& out, SpecError& error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    error = SpecError{0, "cannot open spec file: " + path};
    return false;
  }
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    text.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    error = SpecError{0, "error reading spec file: " + path};
    return false;
  }
  return parse_campaign(text, out, error);
}

std::string format_campaign(const CampaignSpec& spec) {
  const PointParams& p = spec.base;
  std::string out = "name = " + spec.name + "\n";
  out += "scheme = " + p.scheme + "\n";
  out += "topology = " + p.topology + "\n";
  out += "band-start = ";
  append_double(out, p.band_start_mhz);
  out += "\ncfd = ";
  append_double(out, p.cfd_mhz);
  out += "\nchannels = " + std::to_string(p.channels);
  out += "\nlinks = " + std::to_string(p.links);
  out += "\npower = ";
  if (p.power_dbm.has_value()) {
    append_double(out, *p.power_dbm);
  } else {
    out += "random";
  }
  out += "\ncca = ";
  append_double(out, p.cca_dbm);
  out += "\npsdu = " + std::to_string(p.psdu_bytes);
  out += "\nwarmup = ";
  append_double(out, p.warmup_s);
  out += "\nmeasure = ";
  append_double(out, p.measure_s);
  char seed_buffer[32];
  std::snprintf(seed_buffer, sizeof seed_buffer, "%" PRIu64, p.seed);
  out += "\nseed = ";
  out += seed_buffer;
  out += "\ntrials = " + std::to_string(p.trials) + "\n";
  for (const SweepAxis& axis : spec.axes) {
    out += "sweep ";
    for (std::size_t k = 0; k < axis.keys.size(); ++k) {
      if (k > 0) out += '/';
      out += axis.keys[k];
    }
    out += " =";
    for (const std::vector<std::string>& step : axis.steps) {
      out += ' ';
      for (std::size_t k = 0; k < step.size(); ++k) {
        if (k > 0) out += '/';
        out += step[k];
      }
    }
    out += '\n';
  }
  return out;
}

std::vector<SweepPoint> expand_grid(const CampaignSpec& spec) {
  std::size_t total = 1;
  for (const SweepAxis& axis : spec.axes) total *= axis.steps.size();

  std::vector<SweepPoint> points;
  points.reserve(total);
  for (std::size_t cell = 0; cell < total; ++cell) {
    SweepPoint point;
    point.index = static_cast<int>(cell);
    point.params = spec.base;

    // Decompose `cell` into per-axis step indices, first axis outermost.
    std::size_t remainder = cell;
    std::size_t stride = total;
    for (const SweepAxis& axis : spec.axes) {
      stride /= axis.steps.size();
      const std::size_t step = remainder / stride;
      remainder %= stride;
      for (std::size_t k = 0; k < axis.keys.size(); ++k) {
        std::string message;
        const bool ok =
            apply_param(point.params, axis.keys[k], axis.steps[step][k], message);
        (void)ok;  // validated at parse time
        point.assignment.emplace_back(axis.keys[k], axis.steps[step][k]);
      }
    }
    points.push_back(std::move(point));
  }
  return points;
}

std::string spec_hash(const CampaignSpec& spec) {
  // Canonical serialization: stable across processes and sessions because it
  // uses explicit formatting, never pointers or iteration over hashed maps.
  std::string canon = "nomc-campaign-v1\n";
  canon += "name=" + spec.name + "\n";
  const PointParams& p = spec.base;
  canon += "scheme=" + p.scheme + ";topology=" + p.topology + ";band-start=";
  append_double(canon, p.band_start_mhz);
  canon += ";cfd=";
  append_double(canon, p.cfd_mhz);
  canon += ";channels=" + std::to_string(p.channels) + ";links=" + std::to_string(p.links);
  canon += ";power=";
  if (p.power_dbm.has_value()) {
    append_double(canon, *p.power_dbm);
  } else {
    canon += "random";
  }
  canon += ";cca=";
  append_double(canon, p.cca_dbm);
  canon += ";psdu=" + std::to_string(p.psdu_bytes) + ";warmup=";
  append_double(canon, p.warmup_s);
  canon += ";measure=";
  append_double(canon, p.measure_s);
  char seed_buffer[32];
  std::snprintf(seed_buffer, sizeof seed_buffer, "%" PRIu64, p.seed);
  canon += ";seed=";
  canon += seed_buffer;
  canon += ";trials=" + std::to_string(p.trials) + "\n";
  for (const SweepAxis& axis : spec.axes) {
    canon += "sweep ";
    for (std::size_t k = 0; k < axis.keys.size(); ++k) {
      if (k > 0) canon += '/';
      canon += axis.keys[k];
    }
    canon += '=';
    for (std::size_t s = 0; s < axis.steps.size(); ++s) {
      if (s > 0) canon += ' ';
      for (std::size_t k = 0; k < axis.steps[s].size(); ++k) {
        if (k > 0) canon += '/';
        canon += axis.steps[s][k];
      }
    }
    canon += '\n';
  }

  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit
  for (const unsigned char c : canon) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  char out[17];
  std::snprintf(out, sizeof out, "%016" PRIx64, hash);
  return out;
}

}  // namespace nomc::exp
