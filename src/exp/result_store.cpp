#include "exp/result_store.hpp"

#include <cstdlib>
#include <cstring>

namespace nomc::exp {
namespace {

// ---- JSON subset parser --------------------------------------------------

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string& error) : text_(text), error_(error) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content after JSON value");
    return true;
  }

 private:
  bool fail(const std::string& message) {
    error_ = message + " (offset " + std::to_string(pos_) + ")";
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t length = std::strlen(word);
    if (text_.compare(pos_, length, word) != 0) return fail("invalid literal");
    pos_ += length;
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          default: return fail("unsupported escape in string");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return fail("control char in string");
      out += c;
    }
    return fail("unterminated string");
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.type = JsonValue::Type::kObject;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
        ++pos_;
        skip_ws();
        JsonValue value;
        if (!parse_value(value)) return false;
        out.object.emplace_back(std::move(key), std::move(value));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos_;
      out.type = JsonValue::Type::kArray;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      for (;;) {
        skip_ws();
        JsonValue value;
        if (!parse_value(value)) return false;
        out.array.push_back(std::move(value));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return parse_string(out.string);
    }
    if (c == 't') {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.type = JsonValue::Type::kNull;
      return literal("null");
    }
    // Number.
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) return fail("expected a JSON value");
    out.type = JsonValue::Type::kNumber;
    out.number = value;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  const std::string& text_;
  std::string& error_;
  std::size_t pos_ = 0;
};

bool numbers_from(const JsonValue* value, std::vector<double>& out) {
  if (value == nullptr || value->type != JsonValue::Type::kArray) return false;
  out.clear();
  out.reserve(value->array.size());
  for (const JsonValue& element : value->array) {
    if (element.type != JsonValue::Type::kNumber) return false;
    out.push_back(element.number);
  }
  return true;
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool parse_json(const std::string& text, JsonValue& out, std::string& error) {
  out = JsonValue{};
  return JsonParser{text, error}.parse(out);
}

void json_append_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void json_append_double(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

bool parse_record(const std::string& line, ResultRecord& out, std::string& error) {
  JsonValue root;
  if (!parse_json(line, root, error)) return false;
  if (root.type != JsonValue::Type::kObject) {
    error = "record is not a JSON object";
    return false;
  }
  out = ResultRecord{};

  const JsonValue* version = root.find("v");
  if (version == nullptr || version->type != JsonValue::Type::kNumber) {
    error = "record has no version field";
    return false;
  }
  out.version = static_cast<int>(version->number);
  if (out.version != kStoreVersion) {
    error = "unsupported store version " + std::to_string(out.version) + " (this build reads v" +
            std::to_string(kStoreVersion) + ")";
    return false;
  }

  const JsonValue* campaign = root.find("campaign");
  const JsonValue* hash = root.find("spec_hash");
  const JsonValue* point = root.find("point");
  if (campaign == nullptr || campaign->type != JsonValue::Type::kString ||
      hash == nullptr || hash->type != JsonValue::Type::kString ||
      point == nullptr || point->type != JsonValue::Type::kNumber) {
    error = "record missing campaign/spec_hash/point";
    return false;
  }
  out.campaign = campaign->string;
  out.spec_hash = hash->string;
  out.point = static_cast<int>(point->number);

  if (const JsonValue* sweep = root.find("sweep");
      sweep != nullptr && sweep->type == JsonValue::Type::kObject) {
    for (const auto& [key, value] : sweep->object) {
      out.sweep.emplace_back(key, value.type == JsonValue::Type::kString
                                      ? value.string
                                      : [&] {
                                          std::string text;
                                          json_append_double(text, value.number);
                                          return text;
                                        }());
    }
  }

  const JsonValue* per_network = root.find("per_network");
  if (per_network == nullptr ||
      !numbers_from(per_network->find("pps"), out.pps) ||
      !numbers_from(per_network->find("prr"), out.prr) ||
      !numbers_from(per_network->find("backoffs_per_s"), out.backoffs_per_s) ||
      !numbers_from(per_network->find("drops_per_s"), out.drops_per_s)) {
    error = "record missing per_network arrays";
    return false;
  }
  const JsonValue* overall = root.find("overall_pps");
  const JsonValue* jain = root.find("jain");
  if (overall == nullptr || overall->type != JsonValue::Type::kNumber ||
      jain == nullptr || jain->type != JsonValue::Type::kNumber) {
    error = "record missing overall_pps/jain";
    return false;
  }
  out.overall_pps = overall->number;
  out.jain = jain->number;
  return true;
}

bool scan_store(const std::string& path, const std::string& expected_hash,
                StoreScan& out, std::string& error) {
  out = StoreScan{};
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    error = "cannot open result store: " + path;
    return false;
  }
  std::string content;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) content.append(buffer, got);
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    error = "error reading result store: " + path;
    return false;
  }

  std::size_t start = 0;
  int line_number = 0;
  while (start < content.size()) {
    ++line_number;
    const std::size_t newline = content.find('\n', start);
    const bool has_newline = newline != std::string::npos;
    const std::string line =
        content.substr(start, has_newline ? newline - start : std::string::npos);
    const std::size_t next = has_newline ? newline + 1 : content.size();

    ResultRecord record;
    std::string record_error;
    const bool parsed = !line.empty() && parse_record(line, record, record_error);
    if (!parsed || !has_newline) {
      // Only a torn *final* line is recoverable: it is what a kill mid-write
      // leaves behind. Anything unparsable earlier means the file is not one
      // of ours (or was edited) — refuse rather than silently drop data.
      if (next >= content.size()) {
        out.truncated_tail = true;
        break;
      }
      error = "result store " + path + " line " + std::to_string(line_number) +
              ": " + (parsed ? "missing newline" : record_error);
      return false;
    }
    if (!expected_hash.empty() && record.spec_hash != expected_hash) {
      error = "result store " + path + " line " + std::to_string(line_number) +
              " was written by a different spec (hash " + record.spec_hash +
              ", expected " + expected_hash + ")";
      return false;
    }
    out.completed.insert(record.point);
    out.records.push_back(std::move(record));
    out.valid_prefix.append(content, start, next - start);
    start = next;
  }
  return true;
}

StoreWriter::~StoreWriter() { close(); }

bool StoreWriter::open(const std::string& path, bool truncate, std::string& error) {
  close();
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) {
    error = "cannot open result store for writing: " + path;
    return false;
  }
  path_ = path;
  return true;
}

bool StoreWriter::append_line(const std::string& line, std::string& error) {
  if (file_ == nullptr) {
    error = "result store is not open";
    return false;
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF || std::fflush(file_) != 0) {
    error = "write to result store failed: " + path_;
    return false;
  }
  return true;
}

void StoreWriter::close() {
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

OrderedCheckpointer::OrderedCheckpointer(StoreWriter& store, StoreWriter& timing,
                                         std::size_t max_pending)
    : store_{store}, timing_{timing}, max_pending_{max_pending > 0 ? max_pending : 1} {}

void OrderedCheckpointer::flush_ready() {
  for (auto ready = pending_.find(next_slot_); ready != pending_.end();
       ready = pending_.find(next_slot_)) {
    Entry& entry = ready->second;
    if (error_.empty()) {
      if (!store_.append_line(entry.record, error_)) break;
      if (!timing_.append_line(entry.timing, error_)) break;
      if (!entry.console.empty()) {
        std::fputs(entry.console.c_str(), stdout);
        std::fflush(stdout);
      }
      ++flushed_;
    }
    pending_.erase(ready);
    ++next_slot_;
  }
  space_cv_.notify_all();
}

bool OrderedCheckpointer::submit(int slot, std::string record_line, std::string timing_line,
                                 std::string console_line) {
  std::unique_lock<std::mutex> lock{mutex_};
  // The next-to-flush submitter bypasses the bound: it is the one submission
  // that lets the cursor advance, so waiting on it would deadlock.
  space_cv_.wait(lock, [&] {
    return slot == next_slot_ || pending_.size() < max_pending_ || !error_.empty();
  });
  if (!error_.empty()) return false;
  pending_[slot] =
      Entry{std::move(record_line), std::move(timing_line), std::move(console_line)};
  flush_ready();
  return error_.empty();
}

bool OrderedCheckpointer::finish(std::string& error) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (!error_.empty()) {
    error = error_;
    return false;
  }
  if (!pending_.empty()) {
    // Can only happen if a submitter died before calling submit (its slot is
    // a permanent gap); everything after it was buffered, not written.
    error = "checkpointer finished with " + std::to_string(pending_.size()) +
            " record(s) stuck behind missing slot " + std::to_string(next_slot_);
    return false;
  }
  return true;
}

std::string csv_header(const std::vector<std::string>& sweep_keys) {
  std::string header = "campaign,point";
  for (const std::string& key : sweep_keys) {
    header += ',';
    header += csv_escape(key);
  }
  header += ",network,pps,prr,backoffs_per_s,drops_per_s,overall_pps,jain\n";
  return header;
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void csv_collect_sweep_keys(const ResultRecord& record, std::vector<std::string>& keys) {
  // Union of swept keys, in first-seen order, so mixed records still line up.
  for (const auto& [key, value] : record.sweep) {
    bool known = false;
    for (const std::string& existing : keys) known |= existing == key;
    if (!known) keys.push_back(key);
  }
}

std::vector<std::string> csv_record_rows(const ResultRecord& record,
                                         const std::vector<std::string>& sweep_keys) {
  std::vector<std::string> rows;
  rows.reserve(record.pps.size());
  for (std::size_t n = 0; n < record.pps.size(); ++n) {
    std::string row = csv_escape(record.campaign);
    row += ',';
    row += std::to_string(record.point);
    for (const std::string& key : sweep_keys) {
      row += ',';
      for (const auto& [sweep_key, value] : record.sweep) {
        if (sweep_key == key) {
          row += csv_escape(value);
          break;
        }
      }
    }
    row += ',';
    row += std::to_string(n);
    row += ',';
    json_append_double(row, record.pps[n]);
    row += ',';
    json_append_double(row, n < record.prr.size() ? record.prr[n] : 0.0);
    row += ',';
    json_append_double(row, n < record.backoffs_per_s.size() ? record.backoffs_per_s[n] : 0.0);
    row += ',';
    json_append_double(row, n < record.drops_per_s.size() ? record.drops_per_s[n] : 0.0);
    row += ',';
    json_append_double(row, record.overall_pps);
    row += ',';
    json_append_double(row, record.jain);
    rows.push_back(std::move(row));
  }
  return rows;
}

bool export_csv(const std::vector<ResultRecord>& records, std::FILE* out) {
  std::vector<std::string> sweep_keys;
  for (const ResultRecord& record : records) csv_collect_sweep_keys(record, sweep_keys);

  const std::string header = csv_header(sweep_keys);
  if (std::fwrite(header.data(), 1, header.size(), out) != header.size()) return false;

  for (const ResultRecord& record : records) {
    for (std::string& row : csv_record_rows(record, sweep_keys)) {
      row += '\n';
      if (std::fwrite(row.data(), 1, row.size(), out) != row.size()) return false;
    }
  }
  return true;
}

}  // namespace nomc::exp
