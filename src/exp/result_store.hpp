// Versioned JSONL result store for campaign runs.
//
// One line per completed sweep point, appended in point order and flushed
// after every record, so an interrupted campaign loses at most the line
// being written. Record schema (v1):
//
//   {"v":1,"campaign":<name>,"spec_hash":<16 hex>,"point":<index>,
//    "sweep":{<swept key>:<value text>, ...},
//    "params":{...full resolved PointParams...},
//    "per_network":{"pps":[...],"prr":[...],"backoffs_per_s":[...],
//                   "drops_per_s":[...]},
//    "overall_pps":<num>,"jain":<num>}
//
// The record bytes are a pure function of (spec, point): wall-clock timing
// lives in a separate "<store>.timing" sidecar, so the primary store is
// byte-identical whether a campaign ran straight through, was interrupted
// and resumed, or used a different --jobs value.
#pragma once

#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace nomc::exp {

inline constexpr int kStoreVersion = 1;

// ---- Minimal JSON subset -------------------------------------------------
// Parses exactly what the store writes (objects, arrays, strings with basic
// escapes, numbers, true/false/null); self-contained, no external deps.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< insertion order

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
};

/// Parse one complete JSON document (trailing whitespace allowed).
bool parse_json(const std::string& text, JsonValue& out, std::string& error);

/// Append `text` JSON-escaped, in quotes.
void json_append_string(std::string& out, const std::string& text);
/// Append a number round-trippable to the same double (%.17g).
void json_append_double(std::string& out, double value);

// ---- Record model --------------------------------------------------------

struct ResultRecord {
  int version = 0;
  std::string campaign;
  std::string spec_hash;
  int point = -1;
  std::vector<std::pair<std::string, std::string>> sweep;  ///< declaration order
  std::vector<double> pps;             ///< per network, network 0 first
  std::vector<double> prr;
  std::vector<double> backoffs_per_s;
  std::vector<double> drops_per_s;
  double overall_pps = 0.0;
  double jain = 0.0;
};

/// Parse one JSONL line into a record. Rejects unknown versions.
bool parse_record(const std::string& line, ResultRecord& out, std::string& error);

/// Result of scanning an existing store file.
struct StoreScan {
  std::vector<ResultRecord> records;
  std::set<int> completed;     ///< point indices present
  std::string valid_prefix;    ///< the verbatim bytes of all complete records
  bool truncated_tail = false; ///< a torn trailing line was dropped
};

/// Read a store and validate every complete line. A torn final line (no
/// trailing newline, or unparsable — the signature of a kill mid-write) is
/// dropped and reported via `truncated_tail`; an unparsable line anywhere
/// else is an error. When `expected_hash` is non-empty, every record must
/// carry it (a mismatch means the spec changed since the store was written).
bool scan_store(const std::string& path, const std::string& expected_hash,
                StoreScan& out, std::string& error);

/// Append-only line writer; flushes after every line.
class StoreWriter {
 public:
  StoreWriter() = default;
  ~StoreWriter();
  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  /// `truncate` starts the file fresh; otherwise appends.
  bool open(const std::string& path, bool truncate, std::string& error);
  /// Write `line` plus '\n', then flush.
  bool append_line(const std::string& line, std::string& error);
  void close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// Reorders concurrently completed records back into slot order before they
/// reach the store. Slots are dense 0..n-1 (the campaign engine numbers the
/// points it is about to compute); any thread may submit any slot, and the
/// checkpointer writes record + timing lines strictly in slot order — the
/// store's bytes cannot depend on completion order.
///
/// The reorder buffer is bounded: submit() blocks while `max_pending`
/// out-of-order records are already waiting, unless the submitted slot is
/// the very one the flush cursor needs (that submitter must never wait, so
/// the flush cursor always advances and the wait cannot deadlock).
class OrderedCheckpointer {
 public:
  /// Lines flush to `store` and `timing`; a non-empty console line is
  /// printed to stdout at flush time, so progress output is in slot order
  /// too. Both writers must outlive the checkpointer.
  OrderedCheckpointer(StoreWriter& store, StoreWriter& timing, std::size_t max_pending);

  /// Thread-safe. Returns false once any flush has failed (later submits
  /// become no-ops; the first error is reported by finish()).
  bool submit(int slot, std::string record_line, std::string timing_line,
              std::string console_line);

  /// True when every submitted record flushed cleanly and no gaps remain;
  /// fills `error` otherwise. Call after all submitters have finished.
  bool finish(std::string& error);

 private:
  struct Entry {
    std::string record, timing, console;
  };
  /// Flush consecutive entries starting at next_slot_. Caller holds mutex_.
  void flush_ready();

  StoreWriter& store_;
  StoreWriter& timing_;
  std::size_t max_pending_;
  std::mutex mutex_;
  std::condition_variable space_cv_;  // submitters wait here for buffer space
  std::map<int, Entry> pending_;      // completed slots ahead of the cursor
  int next_slot_ = 0;                 // flush cursor
  int flushed_ = 0;
  std::string error_;
};

/// Long-format CSV: one row per (point, network), sweep assignments as
/// leading columns. Plot-friendly (pandas/R) without JSON tooling.
/// Materializes nothing beyond the caller's `records`; the streaming path
/// over a store on disk is exp::export_csv_indexed (store_index.hpp), which
/// emits byte-identical output one record at a time.
bool export_csv(const std::vector<ResultRecord>& records, std::FILE* out);

/// Append `record`'s swept keys to `keys` in first-seen order (no
/// duplicates). Folding every record of a store through this yields the
/// sweep-key columns export_csv uses, without holding the records.
void csv_collect_sweep_keys(const ResultRecord& record, std::vector<std::string>& keys);

/// The export_csv data rows for one record — one string per network, no
/// trailing newline — against the given sweep-key columns. export_csv and
/// the streaming exporter share this, so their bytes cannot diverge.
[[nodiscard]] std::vector<std::string> csv_record_rows(
    const ResultRecord& record, const std::vector<std::string>& sweep_keys);

/// The export_csv header for the given sweep-key columns. The fixed columns
/// and their order are a pinned public schema (tests/exp/store_test.cpp):
///   campaign,point,<sweep keys...>,network,pps,prr,backoffs_per_s,
///   drops_per_s,overall_pps,jain
/// New store fields must append columns, never reorder these.
[[nodiscard]] std::string csv_header(const std::vector<std::string>& sweep_keys);

/// Quote a CSV field when it contains a comma, quote, or newline.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace nomc::exp
