// StoreIndex: a "<store>.idx" sidecar mapping (spec_hash, point) to the byte
// offset of that record's line in the JSONL result store, so lookups, cache
// probes, and exports are O(1) seeks instead of full-file re-parses.
//
// Sidecar format (text, one line per record, in store byte order):
//
//   nomc-idx 1
//   <spec_hash> <point> <offset> <length>
//
// `length` includes the record's trailing newline, so coverage is contiguous
// from byte 0: entry i+1 starts exactly where entry i ends. The last entry's
// end is the "covered" byte count.
//
// Crash-tolerance contract (same shape as the ".timing" sidecar): the index
// is derived data and the JSONL store stays the source of truth. On open,
// a missing, torn, stale, or otherwise implausible sidecar is rebuilt from
// the store — a torn final line is dropped, any deeper inconsistency
// (non-contiguous coverage, coverage past EOF, a spot-checked entry that no
// longer matches its bytes) discards the whole sidecar. New records that the
// store gained since the sidecar was written are indexed by scanning only
// the uncovered tail, and the reconciled sidecar is persisted back.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "exp/result_store.hpp"

namespace nomc::exp {

inline constexpr int kIndexVersion = 1;

class StoreIndex {
 public:
  struct Entry {
    std::string spec_hash;
    int point = -1;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;  ///< record bytes including the trailing '\n'
  };

  StoreIndex() = default;
  ~StoreIndex();
  StoreIndex(const StoreIndex&) = delete;
  StoreIndex& operator=(const StoreIndex&) = delete;

  /// Open the index for `store_path`, reconciling the ".idx" sidecar with
  /// the store (see the crash-tolerance contract above). When
  /// `expected_hash` is non-empty every record must carry it. Returns false
  /// and fills `error` on a missing/unreadable store, an unparsable
  /// non-final store line, or a sidecar write failure.
  bool open(const std::string& store_path, const std::string& expected_hash,
            std::string& error);
  void close();

  /// Entries in store byte order (== point completion order on disk).
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// O(1) lookup; nullptr when the (spec_hash, point) pair is not stored.
  [[nodiscard]] const Entry* find(const std::string& spec_hash, int point) const;
  [[nodiscard]] bool contains(const std::string& spec_hash, int point) const {
    return find(spec_hash, point) != nullptr;
  }

  /// Bytes of the store covered by the index (everything before any torn
  /// trailing line).
  [[nodiscard]] std::uint64_t covered() const { return covered_; }
  /// True when the store ended in a torn (killed mid-write) line that was
  /// left unindexed.
  [[nodiscard]] bool truncated_tail() const { return truncated_tail_; }

  /// Read the verbatim record line at `entry` (no trailing newline) with a
  /// single seek — never a full-file parse.
  bool read_line(const Entry& entry, std::string& line, std::string& error) const;
  /// read_line + parse_record.
  bool read_record(const Entry& entry, ResultRecord& out, std::string& error) const;

  /// The sidecar path for a store: "<store_path>.idx".
  [[nodiscard]] static std::string index_path(const std::string& store_path);

 private:
  [[nodiscard]] static std::string key(const std::string& spec_hash, int point);

  std::string store_path_;
  std::FILE* store_file_ = nullptr;  // kept open for seek-reads
  std::vector<Entry> entries_;
  std::unordered_map<std::string, std::size_t> by_key_;  // key() -> entries_ slot
  std::uint64_t covered_ = 0;
  bool truncated_tail_ = false;
};

/// Stream the pinned long-format CSV (identical bytes to exp::export_csv on
/// the same records) through `emit`, one line at a time with no trailing
/// newline — header first, then one line per (record, network) — reading
/// each record through the index instead of materializing the store.
/// Two passes over the index (sweep-key union, then rows); memory stays
/// O(one record). `emit` returning false aborts with an error.
bool export_csv_lines(const StoreIndex& index,
                      const std::function<bool(const std::string& line)>& emit,
                      std::string& error);

/// export_csv_lines straight to a stdio stream (the CLI path).
bool export_csv_indexed(const StoreIndex& index, std::FILE* out, std::string& error);

}  // namespace nomc::exp
