#include "exp/store_index.hpp"

#include <cstdlib>
#include <cstring>

namespace nomc::exp {
namespace {

constexpr const char* kIndexHeader = "nomc-idx 1";

bool read_whole_file(const std::string& path, std::string& out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  char buffer[1 << 14];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) out.append(buffer, got);
  const bool ok = std::ferror(file) == 0;
  std::fclose(file);
  return ok;
}

/// Parse one "<hash> <point> <offset> <length>" sidecar line.
bool parse_index_line(const std::string& line, StoreIndex::Entry& out) {
  const char* cursor = line.c_str();
  const char* space = std::strchr(cursor, ' ');
  if (space == nullptr || space == cursor) return false;
  out.spec_hash.assign(cursor, static_cast<std::size_t>(space - cursor));
  char* end = nullptr;
  const long point = std::strtol(space + 1, &end, 10);
  if (end == space + 1 || *end != ' ' || point < 0) return false;
  out.point = static_cast<int>(point);
  const char* next = end + 1;
  out.offset = std::strtoull(next, &end, 10);
  if (end == next || *end != ' ') return false;
  next = end + 1;
  out.length = std::strtoull(next, &end, 10);
  if (end == next || *end != '\0' || out.length == 0) return false;
  return true;
}

/// Load the sidecar: header + entry lines, dropping a torn final line. Any
/// deeper damage (bad header, malformed interior line, non-contiguous
/// coverage) returns an empty vector — the caller rebuilds from the store.
std::vector<StoreIndex::Entry> load_sidecar(const std::string& path) {
  std::string content;
  if (!read_whole_file(path, content)) return {};

  std::vector<StoreIndex::Entry> entries;
  std::size_t start = 0;
  bool saw_header = false;
  std::uint64_t expect_offset = 0;
  while (start < content.size()) {
    const std::size_t newline = content.find('\n', start);
    const bool has_newline = newline != std::string::npos;
    const std::string line =
        content.substr(start, has_newline ? newline - start : std::string::npos);
    start = has_newline ? newline + 1 : content.size();
    if (!has_newline) break;  // torn final line: drop it, keep the prefix

    if (!saw_header) {
      if (line != kIndexHeader) return {};
      saw_header = true;
      continue;
    }
    StoreIndex::Entry entry;
    if (!parse_index_line(line, entry) || entry.offset != expect_offset) {
      // A malformed or non-contiguous line that is NOT final means the file
      // is not one of ours; discard it all rather than trust a prefix.
      return start >= content.size() ? entries : std::vector<StoreIndex::Entry>{};
    }
    expect_offset = entry.offset + entry.length;
    entries.push_back(std::move(entry));
  }
  return saw_header ? entries : std::vector<StoreIndex::Entry>{};
}

bool write_sidecar(const std::string& path, const std::vector<StoreIndex::Entry>& entries,
                   std::string& error) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    error = "cannot write store index: " + path;
    return false;
  }
  std::string text = kIndexHeader;
  text += '\n';
  for (const StoreIndex::Entry& entry : entries) {
    text += entry.spec_hash + " " + std::to_string(entry.point) + " " +
            std::to_string(entry.offset) + " " + std::to_string(entry.length) + "\n";
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), file) == text.size() &&
                  std::fflush(file) == 0;
  std::fclose(file);
  if (!ok) error = "write to store index failed: " + path;
  return ok;
}

}  // namespace

StoreIndex::~StoreIndex() { close(); }

void StoreIndex::close() {
  if (store_file_ != nullptr) std::fclose(store_file_);
  store_file_ = nullptr;
  store_path_.clear();
  entries_.clear();
  by_key_.clear();
  covered_ = 0;
  truncated_tail_ = false;
}

std::string StoreIndex::index_path(const std::string& store_path) {
  return store_path + ".idx";
}

std::string StoreIndex::key(const std::string& spec_hash, int point) {
  return spec_hash + ":" + std::to_string(point);
}

const StoreIndex::Entry* StoreIndex::find(const std::string& spec_hash, int point) const {
  const auto it = by_key_.find(key(spec_hash, point));
  return it == by_key_.end() ? nullptr : &entries_[it->second];
}

bool StoreIndex::open(const std::string& store_path, const std::string& expected_hash,
                      std::string& error) {
  close();
  store_file_ = std::fopen(store_path.c_str(), "rb");
  if (store_file_ == nullptr) {
    error = "cannot open result store: " + store_path;
    return false;
  }
  store_path_ = store_path;
  if (std::fseek(store_file_, 0, SEEK_END) != 0) {
    error = "cannot seek result store: " + store_path;
    close();
    return false;
  }
  const std::uint64_t store_size = static_cast<std::uint64_t>(std::ftell(store_file_));

  // 1. Load the sidecar and decide how much of it to trust.
  entries_ = load_sidecar(index_path(store_path));
  const std::size_t loaded = entries_.size();
  covered_ = entries_.empty() ? 0 : entries_.back().offset + entries_.back().length;
  if (covered_ > store_size) {
    // The store shrank (overwrite, prefix rewrite after a crash): every
    // offset is suspect, rebuild from scratch.
    entries_.clear();
    covered_ = 0;
  }
  if (!entries_.empty()) {
    // Spot-check the newest trusted entry against its actual bytes; a store
    // rewritten in place to the same length would otherwise go unnoticed.
    const Entry& last = entries_.back();
    std::string line;
    ResultRecord record;
    std::string check_error;
    if (!read_line(last, line, check_error) ||
        !parse_record(line, record, check_error) || record.point != last.point ||
        record.spec_hash != last.spec_hash) {
      entries_.clear();
      covered_ = 0;
    }
  }

  // 2. Scan only the uncovered tail of the store for records the sidecar
  //    does not know yet (all of it when the sidecar was rebuilt).
  if (covered_ < store_size) {
    if (std::fseek(store_file_, static_cast<long>(covered_), SEEK_SET) != 0) {
      error = "cannot seek result store: " + store_path;
      close();
      return false;
    }
    std::string tail;
    tail.reserve(static_cast<std::size_t>(store_size - covered_));
    char buffer[1 << 14];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof buffer, store_file_)) > 0)
      tail.append(buffer, got);
    if (std::ferror(store_file_) != 0) {
      error = "error reading result store: " + store_path;
      close();
      return false;
    }

    std::size_t start = 0;
    while (start < tail.size()) {
      const std::size_t newline = tail.find('\n', start);
      const bool has_newline = newline != std::string::npos;
      const std::string line =
          tail.substr(start, has_newline ? newline - start : std::string::npos);
      const std::size_t next = has_newline ? newline + 1 : tail.size();

      ResultRecord record;
      std::string record_error;
      const bool parsed = !line.empty() && parse_record(line, record, record_error);
      if (!parsed || !has_newline) {
        // Mirror scan_store: only a torn *final* line is the signature of a
        // kill mid-write; damage anywhere else is a corrupt store.
        if (next >= tail.size()) {
          truncated_tail_ = true;
          break;
        }
        error = "result store " + store_path + ": " +
                (parsed ? "missing newline" : record_error);
        close();
        return false;
      }
      Entry entry;
      entry.spec_hash = record.spec_hash;
      entry.point = record.point;
      entry.offset = covered_ + start;
      entry.length = next - start;
      entries_.push_back(std::move(entry));
      start = next;
    }
    covered_ = entries_.empty() ? 0 : entries_.back().offset + entries_.back().length;
  }

  // 3. Enforce the expected hash and build the lookup map.
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    if (!expected_hash.empty() && entry.spec_hash != expected_hash) {
      error = "result store " + store_path + " record for point " +
              std::to_string(entry.point) + " was written by a different spec (hash " +
              entry.spec_hash + ", expected " + expected_hash + ")";
      close();
      return false;
    }
    by_key_[key(entry.spec_hash, entry.point)] = i;  // duplicate point: last wins
  }

  // 4. Persist the reconciliation whenever the sidecar did not already hold
  //    exactly these entries.
  if (entries_.size() != loaded || loaded == 0) {
    if (!write_sidecar(index_path(store_path), entries_, error)) {
      close();
      return false;
    }
  }
  return true;
}

bool StoreIndex::read_line(const Entry& entry, std::string& line, std::string& error) const {
  if (store_file_ == nullptr) {
    error = "store index is not open";
    return false;
  }
  if (std::fseek(store_file_, static_cast<long>(entry.offset), SEEK_SET) != 0) {
    error = "cannot seek result store: " + store_path_;
    return false;
  }
  line.resize(static_cast<std::size_t>(entry.length));
  if (std::fread(line.data(), 1, line.size(), store_file_) != line.size()) {
    error = "short read from result store: " + store_path_;
    return false;
  }
  if (line.empty() || line.back() != '\n') {
    error = "index entry for point " + std::to_string(entry.point) +
            " does not end at a record boundary in " + store_path_;
    return false;
  }
  line.pop_back();
  return true;
}

bool StoreIndex::read_record(const Entry& entry, ResultRecord& out, std::string& error) const {
  std::string line;
  if (!read_line(entry, line, error)) return false;
  if (!parse_record(line, out, error)) {
    error = "result store " + store_path_ + " point " + std::to_string(entry.point) + ": " +
            error;
    return false;
  }
  return true;
}

bool export_csv_lines(const StoreIndex& index,
                      const std::function<bool(const std::string& line)>& emit,
                      std::string& error) {
  // Pass 1: union of swept keys in first-seen order (same rule as
  // export_csv, so the emitted bytes are identical).
  std::vector<std::string> sweep_keys;
  ResultRecord record;
  for (const StoreIndex::Entry& entry : index.entries()) {
    if (!index.read_record(entry, record, error)) return false;
    csv_collect_sweep_keys(record, sweep_keys);
  }

  std::string header = csv_header(sweep_keys);
  header.pop_back();  // emit() lines carry no trailing newline
  if (!emit(header)) {
    error = "CSV consumer aborted";
    return false;
  }

  // Pass 2: rows, one record in memory at a time.
  for (const StoreIndex::Entry& entry : index.entries()) {
    if (!index.read_record(entry, record, error)) return false;
    for (const std::string& row : csv_record_rows(record, sweep_keys)) {
      if (!emit(row)) {
        error = "CSV consumer aborted";
        return false;
      }
    }
  }
  return true;
}

bool export_csv_indexed(const StoreIndex& index, std::FILE* out, std::string& error) {
  return export_csv_lines(
      index,
      [out](const std::string& line) {
        return std::fwrite(line.data(), 1, line.size(), out) == line.size() &&
               std::fputc('\n', out) != EOF;
      },
      error);
}

}  // namespace nomc::exp
