#include "exp/campaign.hpp"

#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>

#include "net/scenario.hpp"
#include "net/scheme_names.hpp"
#include "net/sharded_scenario.hpp"
#include "net/topology.hpp"
#include "phy/channel_plan.hpp"
#include "sim/parallel.hpp"
#include "stats/fairness.hpp"

namespace nomc::exp {
namespace {

/// Matches bench::trial_seed and nomc-sim: distinct deployments per trial,
/// reproducible per point.
std::uint64_t trial_seed(const PointParams& params, int trial) {
  return params.seed + static_cast<std::uint64_t>(trial) * 1000003;
}

bool store_exists(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  std::fclose(file);
  return true;
}

void json_append_array(std::string& out, const std::vector<double>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    json_append_double(out, values[i]);
  }
  out += ']';
}

std::string assignment_label(const SweepPoint& point) {
  std::string label;
  for (const auto& [key, value] : point.assignment) {
    if (!label.empty()) label += ' ';
    label += key + "=" + value;
  }
  return label.empty() ? "(single point)" : label;
}

/// Rebuild the timing sidecar for a resume: keep only well-formed lines for
/// points whose record survived in the store (in their original order), so a
/// kill mid-timing-write — or a record torn out of the store — never leaves
/// a stale or torn line behind. The sidecar is best-effort wall-clock data;
/// unlike the store, unreadable content is dropped, not an error.
bool rewrite_timing_sidecar(const std::string& path, const std::set<int>& completed,
                            StoreWriter& timing, std::string& error) {
  std::string content;
  if (std::FILE* file = std::fopen(path.c_str(), "rb"); file != nullptr) {
    char buffer[4096];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) content.append(buffer, got);
    std::fclose(file);
  }

  std::vector<std::string> kept;
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t newline = content.find('\n', start);
    if (newline == std::string::npos) break;  // torn tail
    std::string line = content.substr(start, newline - start);
    start = newline + 1;
    JsonValue parsed;
    std::string json_error;
    if (!parse_json(line, parsed, json_error)) continue;
    const JsonValue* point = parsed.find("point");
    if (point == nullptr || point->type != JsonValue::Type::kNumber) continue;
    if (completed.count(static_cast<int>(point->number)) == 0) continue;
    kept.push_back(std::move(line));
  }

  if (!timing.open(path, /*truncate=*/true, error)) return false;
  for (const std::string& line : kept) {
    if (!timing.append_line(line, error)) return false;
  }
  return true;
}

}  // namespace

PointResult run_point(const PointParams& params, sim::ParallelRunner& runner,
                      const TrialHook& pre_run, int trial_workers) {
  net::Scheme scheme = net::Scheme::kFixedCca;
  const bool scheme_ok = net::parse_scheme(params.scheme, scheme);
  assert(scheme_ok && "PointParams.scheme must be pre-validated");
  (void)scheme_ok;
  assert(net::valid_topology(params.topology) && "PointParams.topology must be pre-validated");

  const auto channels = phy::evenly_spaced(phy::Mhz{params.band_start_mhz},
                                           phy::Mhz{params.cfd_mhz}, params.channels);
  net::RandomCaseConfig topology;
  topology.links_per_network = params.links;
  if (params.power_dbm.has_value()) {
    topology = topology.with_fixed_power(phy::Dbm{*params.power_dbm});
  }

  struct TrialNumbers {
    std::vector<double> pps, prr, backoffs, drops;
    double overall = 0.0;
  };
  const std::vector<TrialNumbers> per_trial = runner.map(params.trials, [&](int trial) {
    const std::uint64_t seed = trial_seed(params, trial);
    sim::RandomStream placement{seed, /*index=*/999};
    std::vector<net::NetworkSpec> specs;
    if (params.topology == "clustered") {
      specs = net::case2_clustered(channels, placement, topology);
    } else if (params.topology == "random") {
      specs = net::case3_random(channels, placement, topology);
    } else {
      specs = net::case1_dense(channels, placement, topology);
    }

    // Scenario and ShardedScenario expose the same result API; the collector
    // is generic so both execution paths produce the numbers identically.
    const auto collect = [&params](const auto& scenario) {
      TrialNumbers one;
      one.overall = scenario.overall_throughput();
      for (int n = 0; n < scenario.network_count(); ++n) {
        const auto network = scenario.network_result(n);
        double prr = 0.0;
        double backoffs = 0.0;
        double drops = 0.0;
        for (const auto& link : network.links) {
          prr += link.prr;
          backoffs += static_cast<double>(link.sender.cca_backoffs);
          drops += static_cast<double>(link.sender.cca_failures);
        }
        one.pps.push_back(network.throughput_pps);
        one.prr.push_back(prr / static_cast<double>(network.links.size()));
        one.backoffs.push_back(backoffs / params.measure_s);
        one.drops.push_back(drops / params.measure_s);
      }
      return one;
    };

    net::ScenarioConfig config;
    config.seed = seed;
    config.psdu_bytes = params.psdu_bytes;
    config.fixed_cca_threshold = phy::Dbm{params.cca_dbm};
    if (trial_workers != 1) {
      net::ShardedScenario scenario{config, {.trial_workers = trial_workers}};
      scenario.add_networks(specs, scheme);
      scenario.run(sim::SimTime::seconds(params.warmup_s),
                   sim::SimTime::seconds(params.measure_s));
      return collect(scenario);
    }
    net::Scenario scenario{config};
    if (pre_run) pre_run(trial, scenario);
    scenario.add_networks(specs, scheme);
    scenario.run(sim::SimTime::seconds(params.warmup_s),
                 sim::SimTime::seconds(params.measure_s));
    return collect(scenario);
  });

  PointResult mean;
  const std::size_t networks = per_trial.front().pps.size();
  mean.pps.assign(networks, 0.0);
  mean.prr.assign(networks, 0.0);
  mean.backoffs_per_s.assign(networks, 0.0);
  mean.drops_per_s.assign(networks, 0.0);
  for (const TrialNumbers& one : per_trial) {
    for (std::size_t n = 0; n < networks; ++n) {
      mean.pps[n] += one.pps[n];
      mean.prr[n] += one.prr[n];
      mean.backoffs_per_s[n] += one.backoffs[n];
      mean.drops_per_s[n] += one.drops[n];
    }
    mean.overall_pps += one.overall;
  }
  const double trials = static_cast<double>(params.trials);
  for (std::size_t n = 0; n < networks; ++n) {
    mean.pps[n] /= trials;
    mean.prr[n] /= trials;
    mean.backoffs_per_s[n] /= trials;
    mean.drops_per_s[n] /= trials;
  }
  mean.overall_pps /= trials;
  mean.jain = stats::jain_index(mean.pps);
  return mean;
}

std::string format_record(const CampaignSpec& spec, const SweepPoint& point,
                          const PointResult& result) {
  const PointParams& p = point.params;
  std::string out = "{\"v\":" + std::to_string(kStoreVersion) + ",\"campaign\":";
  json_append_string(out, spec.name);
  out += ",\"spec_hash\":";
  json_append_string(out, spec_hash(spec));
  out += ",\"point\":" + std::to_string(point.index);

  out += ",\"sweep\":{";
  for (std::size_t i = 0; i < point.assignment.size(); ++i) {
    if (i > 0) out += ',';
    json_append_string(out, point.assignment[i].first);
    out += ':';
    json_append_string(out, point.assignment[i].second);
  }
  out += '}';

  out += ",\"params\":{\"scheme\":";
  json_append_string(out, p.scheme);
  out += ",\"topology\":";
  json_append_string(out, p.topology);
  out += ",\"band_start_mhz\":";
  json_append_double(out, p.band_start_mhz);
  out += ",\"cfd_mhz\":";
  json_append_double(out, p.cfd_mhz);
  out += ",\"channels\":" + std::to_string(p.channels);
  out += ",\"links\":" + std::to_string(p.links);
  out += ",\"power_dbm\":";
  if (p.power_dbm.has_value()) {
    json_append_double(out, *p.power_dbm);
  } else {
    out += "null";
  }
  out += ",\"cca_dbm\":";
  json_append_double(out, p.cca_dbm);
  out += ",\"psdu_bytes\":" + std::to_string(p.psdu_bytes);
  out += ",\"warmup_s\":";
  json_append_double(out, p.warmup_s);
  out += ",\"measure_s\":";
  json_append_double(out, p.measure_s);
  char seed_buffer[32];
  std::snprintf(seed_buffer, sizeof seed_buffer, "%" PRIu64, p.seed);
  out += ",\"seed\":";
  out += seed_buffer;
  out += ",\"trials\":" + std::to_string(p.trials) + "}";

  out += ",\"per_network\":{\"pps\":";
  json_append_array(out, result.pps);
  out += ",\"prr\":";
  json_append_array(out, result.prr);
  out += ",\"backoffs_per_s\":";
  json_append_array(out, result.backoffs_per_s);
  out += ",\"drops_per_s\":";
  json_append_array(out, result.drops_per_s);
  out += "},\"overall_pps\":";
  json_append_double(out, result.overall_pps);
  out += ",\"jain\":";
  json_append_double(out, result.jain);
  out += '}';
  return out;
}

bool prepare_store(const CampaignSpec& spec, const std::string& out_path,
                   CampaignOptions::Mode mode, StorePlan& plan, std::string& error) {
  const std::vector<SweepPoint> points = expand_grid(spec);
  const std::string hash = spec_hash(spec);
  plan.total = static_cast<int>(points.size());

  StoreScan existing;
  const bool have_store = store_exists(out_path);
  switch (mode) {
    case CampaignOptions::Mode::kFresh:
      if (have_store) {
        error = "result store already exists: " + out_path +
                " (use resume to continue it, or --overwrite to discard it)";
        return false;
      }
      break;
    case CampaignOptions::Mode::kOverwrite:
      break;
    case CampaignOptions::Mode::kResume:
      if (have_store) {
        if (!scan_store(out_path, hash, existing, error)) return false;
      }
      break;
  }

  if (mode == CampaignOptions::Mode::kResume && have_store) {
    // Rewrite the verbatim valid prefix: drops a torn trailing line (the
    // point that was in flight gets recomputed) while preserving every
    // completed record byte-for-byte.
    if (!plan.writer.open(out_path, /*truncate=*/true, error)) return false;
    if (!existing.valid_prefix.empty()) {
      std::string prefix = existing.valid_prefix;
      prefix.pop_back();  // append_line re-adds the final newline
      if (!plan.writer.append_line(prefix, error)) return false;
    }
  } else {
    if (!plan.writer.open(out_path, /*truncate=*/true, error)) return false;
  }

  if (mode == CampaignOptions::Mode::kResume) {
    if (!rewrite_timing_sidecar(out_path + ".timing", existing.completed, plan.timing,
                                error)) {
      return false;
    }
  } else {
    if (!plan.timing.open(out_path + ".timing", /*truncate=*/true, error)) return false;
  }

  plan.reused = static_cast<int>(existing.completed.size());
  plan.pending.clear();
  for (const SweepPoint& point : points) {
    if (existing.completed.count(point.index) == 0) plan.pending.push_back(point.index);
  }
  return true;
}

bool run_point_range(const CampaignSpec& spec, int first, int count,
                     const RangeOptions& options,
                     const std::function<bool(const SweepPoint& point, const std::string& record,
                                              double wall_ms)>& emit,
                     std::string& error) {
  const std::vector<SweepPoint> points = expand_grid(spec);
  if (first < 0 || count <= 0 ||
      static_cast<std::size_t>(first) + static_cast<std::size_t>(count) > points.size()) {
    error = "point range [" + std::to_string(first) + ", " + std::to_string(first + count) +
            ") is outside the " + std::to_string(points.size()) + "-point grid";
    return false;
  }
  sim::ParallelRunner runner{options.jobs};
  for (int index = first; index < first + count; ++index) {
    const SweepPoint& point = points[static_cast<std::size_t>(index)];
    const auto start = std::chrono::steady_clock::now();
    const PointResult result = run_point(point.params, runner, {}, options.trial_workers);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    if (!emit(point, format_record(spec, point, result), wall_ms)) {
      error = "point " + std::to_string(index) + " could not be delivered";
      return false;
    }
  }
  return true;
}

bool run_campaign(const CampaignSpec& spec, const std::string& out_path,
                  const CampaignOptions& options, CampaignStats* stats, std::string& error) {
  const std::vector<SweepPoint> points = expand_grid(spec);

  StorePlan plan;
  if (!prepare_store(spec, out_path, options.mode, plan, error)) return false;

  CampaignStats local;
  local.total = plan.total;
  local.reused = plan.reused;

  StoreWriter& writer = plan.writer;
  StoreWriter& timing = plan.timing;

  // The points still to compute, in point order: checkpointer slot i is
  // pending[i], so the dense slot sequence maps back to the (gappy, on
  // resume) point indices.
  std::vector<const SweepPoint*> pending;
  for (const int index : plan.pending) {
    pending.push_back(&points[static_cast<std::size_t>(index)]);
  }
  if (options.max_points >= 0 &&
      pending.size() > static_cast<std::size_t>(options.max_points)) {
    pending.resize(static_cast<std::size_t>(options.max_points));
  }

  // Two-level pool: point_jobs workers each own a jobs-wide trial pool
  // (indexed by worker slot — no sharing, so pools never contend). With the
  // default point_jobs=1 this is one trial pool and a serial point loop,
  // exactly the pre-concurrency shape.
  sim::ParallelRunner point_pool{options.point_jobs};
  std::vector<std::unique_ptr<sim::ParallelRunner>> trial_pools;
  trial_pools.reserve(static_cast<std::size_t>(point_pool.jobs()));
  for (int w = 0; w < point_pool.jobs(); ++w) {
    trial_pools.push_back(std::make_unique<sim::ParallelRunner>(options.jobs));
  }

  OrderedCheckpointer checkpointer{writer, timing,
                                   static_cast<std::size_t>(2 * point_pool.jobs())};
  point_pool.for_each_worker(static_cast<int>(pending.size()), [&](int worker, int slot) {
    const SweepPoint& point = *pending[static_cast<std::size_t>(slot)];
    const auto start = std::chrono::steady_clock::now();
    const PointResult result =
        run_point(point.params, *trial_pools[static_cast<std::size_t>(worker)], {},
                  options.trial_workers);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();

    std::string timing_line = "{\"point\":" + std::to_string(point.index) + ",\"wall_ms\":";
    json_append_double(timing_line, wall_ms);
    timing_line += '}';

    std::string console;
    if (!options.quiet) {
      char buffer[256];
      std::snprintf(buffer, sizeof buffer,
                    "[%d/%d] %s  overall=%.1f pkt/s  jain=%.3f  (%.2fs)\n", point.index + 1,
                    local.total, assignment_label(point).c_str(), result.overall_pps,
                    result.jain, wall_ms / 1000.0);
      console = buffer;
    }
    checkpointer.submit(slot, format_record(spec, point, result), std::move(timing_line),
                        std::move(console));
  });
  if (!checkpointer.finish(error)) return false;
  local.computed = static_cast<int>(pending.size());

  if (stats != nullptr) *stats = local;
  return true;
}

}  // namespace nomc::exp
