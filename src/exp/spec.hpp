// Declarative experiment campaigns: a plain-text spec describing one
// operating point plus swept parameters, expanded into a deterministic grid.
//
// Spec grammar (one statement per line; '#' starts a comment):
//
//   name = fig01_cfd            # campaign identity ([A-Za-z0-9_.-]+)
//   key = value                 # override one base parameter
//   sweep key = v1 v2 v3        # sweep one parameter over listed values
//   sweep k1/k2 = a1/b1 a2/b2   # lockstep sweep: k1,k2 step together
//
// Keys mirror the nomc-sim options: scheme, topology, band-start, cfd,
// channels, links, power, cca, psdu, warmup, measure, seed, trials.
// `power` accepts a dBm number or the word "random" (per-node uniform in
// [-22, 0] dBm, the paper's Case deployments). Multiple `sweep` lines form
// a cartesian product; the first-declared sweep varies slowest. All values
// are validated at parse time, so every error carries its line number.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "mac/cca.hpp"

namespace nomc::exp {

/// One operating point: everything needed to deploy and run a Scenario.
/// Defaults match nomc-sim's defaults.
struct PointParams {
  std::string scheme = "dcn";      ///< fixed | dcn | carrier-sense
  std::string topology = "dense";  ///< dense | clustered | random
  double band_start_mhz = 2458.0;
  double cfd_mhz = 3.0;
  int channels = 6;
  int links = 2;
  std::optional<double> power_dbm;  ///< nullopt = random [-22, 0] dBm per node
  double cca_dbm = mac::kZigbeeDefaultCcaThreshold.value;  ///< fixed-scheme CCA threshold
  int psdu_bytes = 100;
  double warmup_s = 2.0;
  double measure_s = 8.0;
  std::uint64_t seed = 1;
  int trials = 3;
};

/// One `sweep` line. `keys` step in lockstep: step i assigns
/// keys[k] = steps[i][k] for every k.
struct SweepAxis {
  std::vector<std::string> keys;
  std::vector<std::vector<std::string>> steps;
  int line = 0;  ///< 1-based spec line, for diagnostics
};

struct CampaignSpec {
  std::string name = "campaign";
  PointParams base;
  std::vector<SweepAxis> axes;  ///< cartesian product; axes[0] varies slowest
};

struct SpecError {
  int line = 0;  ///< 1-based; 0 = not line-specific (I/O errors etc.)
  std::string message;
  /// "line N: message", or just the message when line is 0.
  [[nodiscard]] std::string str() const;
};

/// Expanded grids larger than this are rejected at parse time (the product
/// of the axis sizes is overflow-checked, so absurd sweeps fail with a line
/// number instead of exhausting memory in expand_grid).
inline constexpr std::size_t kMaxGridPoints = 1u << 20;

/// Parse a spec from text. On failure returns false and fills `error` with a
/// line-numbered message; `out` is left in an unspecified state.
bool parse_campaign(const std::string& text, CampaignSpec& out, SpecError& error);

/// Canonical spec text for `spec`: every base parameter explicit, axes in
/// declaration order. parse_campaign(format_campaign(s)) reproduces s —
/// same grid, same spec_hash — and formatting is idempotent
/// (tests/exp/spec_test.cpp round-trips it).
[[nodiscard]] std::string format_campaign(const CampaignSpec& spec);

/// parse_campaign() over the contents of `path`.
bool load_campaign(const std::string& path, CampaignSpec& out, SpecError& error);

/// Apply one `key = value` assignment. Returns false and fills `message` on
/// an unknown key, malformed value, or out-of-range value. Shared by the
/// parser (validation) and grid expansion (application).
bool apply_param(PointParams& params, const std::string& key, const std::string& value,
                 std::string& message);

/// One cell of the expanded grid.
struct SweepPoint {
  int index = 0;  ///< stable position in the grid (the resume/checkpoint key)
  PointParams params;
  /// The swept assignments of this cell, in axis declaration order.
  std::vector<std::pair<std::string, std::string>> assignment;
};

/// Expand the full grid (row-major; first axis outermost). A spec without
/// sweep lines yields exactly one point. Never fails: every value was
/// validated when the spec was parsed.
[[nodiscard]] std::vector<SweepPoint> expand_grid(const CampaignSpec& spec);

/// 16-hex-digit FNV-1a hash of the canonical spec serialization. Identifies
/// the campaign inside the result store; resume refuses a mismatch.
[[nodiscard]] std::string spec_hash(const CampaignSpec& spec);

}  // namespace nomc::exp
