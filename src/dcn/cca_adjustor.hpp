// CCA-Adjustor: the heart of DCN (paper §V, Fig. 11-12).
//
// Goal: set each sender's CCA threshold as HIGH as possible — so that
// tolerable inter-channel energy no longer causes backoff and adjacent
// non-orthogonal channels transmit concurrently — while staying BELOW the
// power level of every co-channel interferer, so co-channel collisions are
// still avoided.
//
// Two phases:
//   Initializing (length T_I): record the minimum RSSI S_i of overheard
//   co-channel packets and the maximum in-channel sensed power P_j (sensed
//   every init_sense_period). At the end of the phase (Eq. 2):
//       CCA_I = min{ S_1, S_2, ..., max{P_1, P_2, ...} } − margin
//   The sensed-power term keeps the initial setting conservative: in-channel
//   sensing also captures inter-channel leakage, so the threshold starts in
//   the gap between co-channel and inter-channel interference (Fig. 12).
//
//   Updating: only packet RSSI is used (in-channel sensing costs CPU on the
//   mote, §V-B-2). Case I (Eq. 3): an overheard co-channel packet weaker
//   than the current threshold lowers it immediately. Case II (Eq. 4): if
//   Case I has been quiet for T_U, the threshold is set to the minimum
//   co-channel RSSI of the last T_U — allowing it to rise again after a
//   weak interferer leaves.
#pragma once

#include <deque>
#include <optional>

#include "dcn/config.hpp"
#include "mac/cca.hpp"
#include "phy/radio.hpp"
#include "sim/scheduler.hpp"

namespace nomc::dcn {

class CcaAdjustor final : public mac::CcaThresholdProvider {
 public:
  enum class Phase { kNotStarted, kInitializing, kUpdating };

  CcaAdjustor(sim::Scheduler& scheduler, phy::Radio& radio, DcnConfig config = {});
  ~CcaAdjustor() override;
  CcaAdjustor(const CcaAdjustor&) = delete;
  CcaAdjustor& operator=(const CcaAdjustor&) = delete;

  /// Enter the initializing phase now (node start-up).
  void start();

  /// Feed the RSSI of a successfully decoded co-channel packet. Wire this to
  /// the MAC's promiscuous receive hook; the radio only ever locks onto
  /// co-channel frames, so no extra filtering is needed.
  void on_co_channel_packet(phy::Dbm rssi);

  [[nodiscard]] phy::Dbm threshold() const override { return threshold_; }
  [[nodiscard]] Phase phase() const { return phase_; }

  // Introspection for tests and the figure benches.
  [[nodiscard]] std::optional<phy::Dbm> init_min_packet_rssi() const { return init_min_rssi_; }
  [[nodiscard]] std::optional<phy::Dbm> init_max_sensed() const { return init_max_sensed_; }
  [[nodiscard]] std::size_t update_records() const { return records_.size(); }

 private:
  void sense_tick();
  void finish_init();
  void periodic_check();
  void prune_records();
  [[nodiscard]] phy::Dbm clamp(phy::Dbm value) const;

  sim::Scheduler& scheduler_;
  phy::Radio& radio_;
  DcnConfig config_;

  Phase phase_ = Phase::kNotStarted;
  phy::Dbm threshold_;

  // Initializing phase state.
  std::optional<phy::Dbm> init_min_rssi_;
  std::optional<phy::Dbm> init_max_sensed_;

  // Updating phase: co-channel RSSI records within the last T_U.
  struct Record {
    sim::SimTime at;
    phy::Dbm rssi;
  };
  std::deque<Record> records_;
  sim::SimTime last_case1_ = sim::SimTime::zero();

  sim::EventId sense_timer_ = sim::kInvalidEventId;
  sim::EventId init_done_timer_ = sim::kInvalidEventId;
  sim::EventId check_timer_ = sim::kInvalidEventId;
};

}  // namespace nomc::dcn
