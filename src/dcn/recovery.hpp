// Partial-packet-recovery analysis (paper §VII-A, Figs. 28-29).
//
// Under severe inter-channel interference the paper observes that most
// CRC-failed packets carry only a small fraction of error bits (87 % of
// failures have ≤ 10 % bad bits), so a PPR-style scheme could reclaim them.
// This module models that: it classifies each corrupted reception as
// recoverable when its error-bit fraction is at or below a threshold and
// accumulates the error-fraction CDF the paper plots.
#pragma once

#include <cstdint>

#include "phy/frame.hpp"
#include "stats/cdf.hpp"

namespace nomc::dcn {

struct RecoveryConfig {
  /// Maximum error-bit fraction a recovery scheme is assumed to repair.
  /// The paper's PPR reference point is 10 %.
  double max_error_fraction = 0.10;
};

class RecoveryAnalyzer {
 public:
  explicit RecoveryAnalyzer(RecoveryConfig config = {}) : config_{config} {}

  /// Feed every reception addressed to the node under analysis.
  void on_rx(const phy::RxResult& result);

  [[nodiscard]] std::uint64_t intact() const { return intact_; }
  [[nodiscard]] std::uint64_t crc_failed() const { return crc_failed_; }
  [[nodiscard]] std::uint64_t recoverable() const { return recoverable_; }

  /// Deliveries if recovery were deployed: intact + recoverable.
  [[nodiscard]] std::uint64_t with_recovery() const { return intact_ + recoverable_; }

  /// Error-bit-fraction distribution of the CRC-failed packets (Fig. 29).
  [[nodiscard]] const stats::CdfAccumulator& error_fraction_cdf() const { return cdf_; }

  [[nodiscard]] const RecoveryConfig& config() const { return config_; }

 private:
  RecoveryConfig config_;
  std::uint64_t intact_ = 0;
  std::uint64_t crc_failed_ = 0;
  std::uint64_t recoverable_ = 0;
  stats::CdfAccumulator cdf_;
};

}  // namespace nomc::dcn
