#include "dcn/recovery.hpp"

namespace nomc::dcn {

void RecoveryAnalyzer::on_rx(const phy::RxResult& result) {
  if (result.crc_ok) {
    ++intact_;
    return;
  }
  ++crc_failed_;
  cdf_.add(result.error_fraction);
  if (result.error_fraction <= config_.max_error_fraction) ++recoverable_;
}

}  // namespace nomc::dcn
