// Tunables of the DCN scheme (paper §V).
#pragma once

#include "phy/units.hpp"
#include "sim/time.hpp"

namespace nomc::dcn {

struct DcnConfig {
  /// Initializing-phase length T_I (paper: 1 s).
  sim::SimTime t_init = sim::SimTime::seconds(1.0);

  /// In-channel power sensing period during the initializing phase
  /// (paper: every millisecond).
  sim::SimTime init_sense_period = sim::SimTime::milliseconds(1);

  /// Updating-phase window T_U (paper: 3 s): Case II raises the threshold to
  /// the minimum co-channel RSSI seen in the last T_U when Case I has been
  /// quiet for that long.
  sim::SimTime t_update = sim::SimTime::seconds(3.0);

  /// The threshold is kept this far below the minimum co-channel RSSI
  /// (Eq. 1 demands strictly "smaller than"; the margin also absorbs RSSI
  /// measurement noise). Ablated in bench_table1_fairness.
  phy::Db safety_margin{2.0};

  /// Threshold used before and during the initializing phase — the
  /// conservative ZigBee default, per §V-B ("determined cautiously").
  phy::Dbm conservative_threshold{-77.0};

  /// Hard clamp so a pathological RSSI record cannot disable carrier sensing
  /// entirely or deadlock it: a threshold at or below the noise floor would
  /// read "busy" forever (the mote always senses at least thermal noise), so
  /// the lower clamp sits a few dB above it. This matters when a co-channel
  /// partner is barely in radio range (the paper's Case III weakness).
  phy::Dbm min_threshold{-91.0};
  phy::Dbm max_threshold{-20.0};
};

}  // namespace nomc::dcn
