#include "dcn/cca_adjustor.hpp"

#include <algorithm>
#include <cassert>

namespace nomc::dcn {

CcaAdjustor::CcaAdjustor(sim::Scheduler& scheduler, phy::Radio& radio, DcnConfig config)
    : scheduler_{scheduler},
      radio_{radio},
      config_{config},
      threshold_{config.conservative_threshold} {}

CcaAdjustor::~CcaAdjustor() {
  for (sim::EventId id : {sense_timer_, init_done_timer_, check_timer_}) {
    if (id != sim::kInvalidEventId) scheduler_.cancel(id);
  }
}

phy::Dbm CcaAdjustor::clamp(phy::Dbm value) const {
  return std::clamp(value, config_.min_threshold, config_.max_threshold);
}

void CcaAdjustor::start() {
  assert(phase_ == Phase::kNotStarted && "start() is one-shot");
  phase_ = Phase::kInitializing;
  threshold_ = config_.conservative_threshold;
  sense_timer_ = scheduler_.schedule_in(config_.init_sense_period, [this] { sense_tick(); });
  init_done_timer_ = scheduler_.schedule_in(config_.t_init, [this] { finish_init(); });
}

void CcaAdjustor::sense_tick() {
  sense_timer_ = sim::kInvalidEventId;
  if (phase_ != Phase::kInitializing) return;
  // The mote cannot read RSSI_VAL while its own PA is keyed.
  if (radio_.state() != phy::Radio::State::kTx) {
    const phy::Dbm sensed = radio_.sense_energy();
    if (!init_max_sensed_ || sensed > *init_max_sensed_) init_max_sensed_ = sensed;
  }
  sense_timer_ = scheduler_.schedule_in(config_.init_sense_period, [this] { sense_tick(); });
}

void CcaAdjustor::finish_init() {
  init_done_timer_ = sim::kInvalidEventId;
  assert(phase_ == Phase::kInitializing);

  // Eq. 2: CCA_I = min{ S_1, ..., max{P_1, ...} }. In-channel sensing always
  // yields at least the noise floor, so the max-sensed term is always
  // present; packets may not have been overheard yet.
  phy::Dbm initial = init_max_sensed_.value_or(config_.conservative_threshold);
  if (init_min_rssi_ && *init_min_rssi_ < initial) initial = *init_min_rssi_;
  threshold_ = clamp(initial - config_.safety_margin);
  scheduler_.trace_event({.category = "dcn", .event = "threshold_init",
                          .node = radio_.node(), .value = threshold_.value});

  phase_ = Phase::kUpdating;
  last_case1_ = scheduler_.now();
  // Check Case II at a granularity well under T_U so the raise is not late.
  const sim::SimTime check_period = sim::SimTime::nanoseconds(config_.t_update.ticks() / 4);
  check_timer_ = scheduler_.schedule_in(check_period, [this] { periodic_check(); });
}

void CcaAdjustor::on_co_channel_packet(phy::Dbm rssi) {
  if (phase_ == Phase::kNotStarted) return;

  if (phase_ == Phase::kInitializing) {
    if (!init_min_rssi_ || rssi < *init_min_rssi_) init_min_rssi_ = rssi;
    return;
  }

  records_.push_back(Record{scheduler_.now(), rssi});
  prune_records();

  // Case I (Eq. 3): a co-channel neighbour weaker than the current threshold
  // would be masked by it — lower the threshold immediately.
  if (rssi - config_.safety_margin < threshold_) {
    threshold_ = clamp(rssi - config_.safety_margin);
    last_case1_ = scheduler_.now();
    scheduler_.trace_event({.category = "dcn", .event = "threshold_lower",
                            .node = radio_.node(), .value = threshold_.value});
  }
}

void CcaAdjustor::prune_records() {
  const sim::SimTime cutoff = scheduler_.now() - config_.t_update;
  while (!records_.empty() && records_.front().at < cutoff) records_.pop_front();
}

void CcaAdjustor::periodic_check() {
  check_timer_ = sim::kInvalidEventId;
  assert(phase_ == Phase::kUpdating);
  prune_records();

  // Case II (Eq. 4): no Case-I lowering for T_U means the weakest co-channel
  // interferer of the last window defines how high the threshold may rise.
  if (scheduler_.now() - last_case1_ >= config_.t_update && !records_.empty()) {
    phy::Dbm min_rssi = records_.front().rssi;
    for (const Record& r : records_) min_rssi = std::min(min_rssi, r.rssi);
    const phy::Dbm updated = clamp(min_rssi - config_.safety_margin);
    if (updated != threshold_) {
      threshold_ = updated;
      scheduler_.trace_event({.category = "dcn", .event = "threshold_raise",
                              .node = radio_.node(), .value = threshold_.value});
    }
  }

  const sim::SimTime check_period = sim::SimTime::nanoseconds(config_.t_update.ticks() / 4);
  check_timer_ = scheduler_.schedule_in(check_period, [this] { periodic_check(); });
}

}  // namespace nomc::dcn
