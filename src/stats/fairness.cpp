#include "stats/fairness.hpp"

#include <algorithm>
#include <cmath>

namespace nomc::stats {

double jain_index(std::span<const double> values) {
  if (values.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;  // all zero: degenerate but "fair"
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

double relative_spread(std::span<const double> values) {
  if (values.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  double sum = 0.0;
  for (double v : values) sum += v;
  const double mean = sum / static_cast<double>(values.size());
  if (mean == 0.0) return 0.0;
  return (*hi - *lo) / mean;
}

}  // namespace nomc::stats
