#include "stats/summary.hpp"

#include <cmath>
#include <iterator>

namespace nomc::stats {
namespace {

/// Two-sided 97.5 % t quantiles by degrees of freedom; converges to the
/// normal 1.96 for large n.
double t_quantile_975(std::size_t dof) {
  static constexpr double kTable[] = {
      0.0,   12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,  // 0-9
      2.228, 2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,  // 10-19
      2.086, 2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,  // 20-29
      2.042,
  };
  if (dof == 0) return 0.0;
  if (dof < std::size(kTable)) return kTable[dof];
  if (dof < 60) return 2.00;
  if (dof < 120) return 1.98;
  return 1.96;
}

}  // namespace

void SummaryStats::add(double sample) {
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double SummaryStats::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double SummaryStats::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  return t_quantile_975(count_ - 1) * stddev() / std::sqrt(static_cast<double>(count_));
}

}  // namespace nomc::stats
