#include "stats/table.hpp"

#include <cassert>
#include <cstdio>

namespace nomc::stats {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_{std::move(headers)} {
  assert(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  assert(cells.size() <= headers_.size());
  cells.resize(headers_.size());  // pad short rows with empty cells
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
      if (c + 1 < cells.size()) line += "  ";
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_line(headers_);
  std::string sep;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    sep.append(widths[c], '-');
    if (c + 1 < headers_.size()) sep += "  ";
  }
  out += sep + '\n';
  for (const auto& row : rows_) out += render_line(row);
  return out;
}

void TablePrinter::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace nomc::stats
