// Packet-level counters shared by MAC, link, and network statistics.
#pragma once

#include <cstdint>

namespace nomc::stats {

/// Raw per-link (or per-node) packet accounting. Plain data, no invariant
/// beyond "derived rates need received <= sent".
struct PacketCounters {
  std::uint64_t sent = 0;            ///< frames put on the air
  std::uint64_t received = 0;        ///< frames delivered intact (CRC pass)
  std::uint64_t crc_failed = 0;      ///< frames detected but corrupted
  std::uint64_t missed = 0;          ///< frames never locked onto by receiver
  std::uint64_t recovered = 0;       ///< CRC failures repaired by recovery
  std::uint64_t cca_backoffs = 0;    ///< CCA attempts that found the channel busy
  std::uint64_t cca_failures = 0;    ///< transmissions abandoned after max backoffs
  std::uint64_t collided = 0;        ///< frames that overlapped another on-air frame
  std::uint64_t acked = 0;           ///< frames confirmed by an acknowledgement
  std::uint64_t retransmissions = 0; ///< extra attempts after a missing ACK
  std::uint64_t retry_drops = 0;     ///< frames abandoned after macMaxFrameRetries
  std::uint64_t duplicates = 0;      ///< retransmitted frames filtered at the receiver
  std::uint64_t queue_drops = 0;     ///< frames rejected by a full transmit queue

  PacketCounters& operator+=(const PacketCounters& o) {
    sent += o.sent;
    received += o.received;
    crc_failed += o.crc_failed;
    missed += o.missed;
    recovered += o.recovered;
    cca_backoffs += o.cca_backoffs;
    cca_failures += o.cca_failures;
    collided += o.collided;
    acked += o.acked;
    retransmissions += o.retransmissions;
    retry_drops += o.retry_drops;
    duplicates += o.duplicates;
    queue_drops += o.queue_drops;
    return *this;
  }

  /// Packet receive rate: delivered / sent. 1.0 when nothing was sent
  /// (an idle link has not failed).
  [[nodiscard]] double prr() const {
    return sent == 0 ? 1.0 : static_cast<double>(received) / static_cast<double>(sent);
  }

  /// Collided-packet receive rate (the paper's CPRR): of the frames that
  /// overlapped another transmission, how many still arrived intact.
  [[nodiscard]] double cprr() const {
    if (collided == 0) return 1.0;
    // `received` counts all deliveries; collided deliveries are those whose
    // frame overlapped. Callers that need exact CPRR track it with
    // collided_received below.
    return static_cast<double>(collided_received) / static_cast<double>(collided);
  }

  std::uint64_t collided_received = 0;  ///< collided frames still delivered
};

}  // namespace nomc::stats
