// Empirical CDF accumulator, used for the error-bit-fraction analysis
// (paper Fig. 29) and for distributional assertions in tests.
#pragma once

#include <cstddef>
#include <vector>

namespace nomc::stats {

class CdfAccumulator {
 public:
  void add(double sample);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Fraction of samples <= x. 0 for an empty accumulator.
  [[nodiscard]] double fraction_at_or_below(double x) const;

  /// q-quantile (q in [0,1]) by nearest-rank. Requires at least one sample.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Evenly spaced (x, F(x)) points across [min, max] for plotting/printing.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(int points) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace nomc::stats
