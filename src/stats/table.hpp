// Fixed-width text tables so the bench binaries print paper-style rows.
#pragma once

#include <string>
#include <vector>

namespace nomc::stats {

/// Minimal column-aligned table. Cells are strings; numeric helpers format
/// with a fixed precision. Rendering pads every column to its widest cell.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Starts a new row. Cells beyond the header count are rejected.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `precision` decimals.
  [[nodiscard]] static std::string num(double value, int precision = 1);

  /// Renders the table, header + separator + rows, each line newline-ended.
  [[nodiscard]] std::string render() const;

  /// Convenience: render straight to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nomc::stats
