// Fairness metrics for multi-network throughput comparisons (paper Table I).
#pragma once

#include <span>

namespace nomc::stats {

/// Jain's fairness index: (Σx)² / (n·Σx²). 1.0 = perfectly fair,
/// 1/n = one network starves all others. Returns 1.0 for empty input.
[[nodiscard]] double jain_index(std::span<const double> values);

/// Max relative spread: (max − min) / mean. The paper reports ~4 % for DCN.
/// Returns 0.0 for empty input or zero mean.
[[nodiscard]] double relative_spread(std::span<const double> values);

}  // namespace nomc::stats
