// Windowed throughput measurement in packets per second of simulated time.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace nomc::stats {

/// Counts packet deliveries inside a measurement window. Scenarios open the
/// window after warm-up (e.g. after DCN's initializing phase) so that steady
/// state, not transients, is reported — mirroring how the testbed measured.
class ThroughputMeter {
 public:
  /// Window is [start, end); deliveries outside it are ignored.
  void set_window(sim::SimTime start, sim::SimTime end) {
    window_start_ = start;
    window_end_ = end;
  }

  void record_delivery(sim::SimTime at) {
    if (at >= window_start_ && at < window_end_) ++count_;
  }

  [[nodiscard]] std::uint64_t deliveries() const { return count_; }

  /// Packets per second across the window. 0 for an empty/invalid window.
  [[nodiscard]] double packets_per_second() const {
    const double span = (window_end_ - window_start_).to_seconds();
    if (span <= 0.0) return 0.0;
    return static_cast<double>(count_) / span;
  }

 private:
  sim::SimTime window_start_ = sim::SimTime::zero();
  sim::SimTime window_end_ = sim::SimTime::max();
  std::uint64_t count_ = 0;
};

}  // namespace nomc::stats
