// Summary statistics across repeated trials (mean, stddev, confidence
// interval), so multi-seed bench results can be reported as mean ± CI
// instead of bare numbers.
#pragma once

#include <cstddef>

namespace nomc::stats {

/// Online accumulator (Welford) — numerically stable, O(1) memory.
class SummaryStats {
 public:
  void add(double sample);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }

  /// Sample standard deviation (n-1 denominator). 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const;

  /// Half-width of the 95 % confidence interval of the mean, using the
  /// t-distribution for small n. 0 for fewer than 2 samples.
  [[nodiscard]] double ci95_half_width() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace nomc::stats
