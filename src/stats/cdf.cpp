#include "stats/cdf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace nomc::stats {

void CdfAccumulator::add(double sample) {
  samples_.push_back(sample);
  sorted_ = false;
}

void CdfAccumulator::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double CdfAccumulator::fraction_at_or_below(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double CdfAccumulator::quantile(double q) const {
  assert(!samples_.empty());
  assert(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(index, samples_.size() - 1)];
}

double CdfAccumulator::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double CdfAccumulator::min() const {
  assert(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double CdfAccumulator::max() const {
  assert(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

std::vector<std::pair<double, double>> CdfAccumulator::curve(int points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points < 2) return out;
  ensure_sorted();
  const double lo = samples_.front();
  const double hi = samples_.back();
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, fraction_at_or_below(x));
  }
  return out;
}

}  // namespace nomc::stats
