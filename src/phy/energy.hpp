// Radio energy accounting.
//
// Saturated sensor motes never sleep: the radio is either transmitting or
// in receive/listen mode (CCA, reception, and idle listening all keep the
// RX chain powered — the classic "idle listening costs as much as
// receiving" WSN fact). The model therefore splits charge into
//   * TX charge, at a current that depends on the programmed output power
//     (CC2420 datasheet table: 8.5 mA at −25 dBm up to 17.4 mA at 0 dBm),
//   * listen charge (RX/idle/CCA), at the fixed RX current (18.8 mA).
//
// The paper does not evaluate energy; this module is an extension that lets
// the benches report energy-per-delivered-packet for ZigBee vs DCN — DCN's
// fewer backoff stalls translate directly into less listen time per packet.
#pragma once

#include "phy/units.hpp"
#include "sim/time.hpp"

namespace nomc::phy {

/// CC2420-flavoured current model at a fixed supply voltage.
class EnergyModel {
 public:
  EnergyModel() = default;
  EnergyModel(double supply_volts, double rx_current_ma)
      : supply_volts_{supply_volts}, rx_current_ma_{rx_current_ma} {}

  /// TX supply current at `power` output, interpolated over the CC2420
  /// datasheet operating points; clamped at the table edges.
  [[nodiscard]] double tx_current_ma(Dbm power) const;

  [[nodiscard]] double rx_current_ma() const { return rx_current_ma_; }
  [[nodiscard]] double supply_volts() const { return supply_volts_; }

  /// Energy in millijoules for a stretch of time at a given current.
  [[nodiscard]] double energy_mj(sim::SimTime duration, double current_ma) const {
    return current_ma * supply_volts_ * duration.to_seconds();
  }

 private:
  double supply_volts_ = 3.0;
  double rx_current_ma_ = 18.8;
};

/// Accumulated consumption of one radio, queryable mid-run.
struct RadioEnergy {
  double tx_mj = 0.0;      ///< transmit chain
  double listen_mj = 0.0;  ///< receive/idle/CCA listening

  [[nodiscard]] double total_mj() const { return tx_mj + listen_mj; }
};

}  // namespace nomc::phy
