// The unit of transmission: an 802.15.4 frame on the air.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/geometry.hpp"
#include "phy/rejection.hpp"
#include "phy/timing.hpp"
#include "phy/units.hpp"
#include "sim/time.hpp"

namespace nomc::phy {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = ~NodeId{0};

using FrameId = std::uint64_t;

enum class FrameType : std::uint8_t {
  kData,
  kAck,
  kBlockNack,  ///< PPR feedback: "these blocks of your frame were corrupt"
};

/// MPDU size of an 802.15.4 acknowledgement (FCF + seq + FCS).
inline constexpr int kAckPsduBytes = 5;

/// A frame as the PHY sees it. The simulator does not carry payload bytes —
/// only the metadata the interference model and the MAC/DCN logic consume.
struct Frame {
  FrameId id = 0;
  NodeId src = kNoNode;
  NodeId dst = kNoNode;           ///< intended receiver; kNoNode = broadcast
  Mhz channel{2460.0};            ///< center frequency
  Dbm tx_power{0.0};
  int psdu_bytes = 0;             ///< MAC header + payload + FCS
  FrameType type = FrameType::kData;
  std::uint8_t sequence = 0;      ///< MAC DSN; echoed by acknowledgements
  bool ack_request = false;       ///< sender wants an ACK (data frames only)
  std::uint8_t repair_round = 0;  ///< PPR: 0 = original, >0 = repair frame
  std::uint16_t aux = 0;          ///< small control payload (PPR: dirty-block count)

  /// Transmitter position snapshotted when the transmission committed.
  /// Region-sharded runs mirror frames onto shard mediums that do not host
  /// the transmitter; those mediums compute path loss from this snapshot.
  /// Serial mediums ignore it for frames whose source they own.
  Vec2 src_pos{};

  /// Transmitter emission mask for WIDEBAND interferers (e.g. a colocated
  /// 802.11 network): how far the transmission's own spectrum reaches.
  /// The energy arriving Δf away is attenuated by min(receiver rejection,
  /// emission mask) — a wide transmitter puts power inside a narrow
  /// receiver's passband no matter how good the receiver's filter is.
  /// nullptr (the default) = narrowband 802.15.4 emission, receiver-limited.
  /// Non-owning: the mask must outlive the frame's time on the air.
  const ChannelRejection* emission = nullptr;

  [[nodiscard]] sim::SimTime duration() const { return frame_duration(psdu_bytes); }
  [[nodiscard]] int psdu_bits() const { return psdu_bytes * 8; }
};

/// Outcome of a reception attempt, delivered by Radio to its owner.
struct RxResult {
  Frame frame;
  Dbm rssi{-300.0};          ///< received signal strength of this frame
  bool crc_ok = false;       ///< true iff zero bit errors
  int bit_errors = 0;        ///< errors drawn across the PSDU
  double error_fraction = 0.0;  ///< bit_errors / psdu_bits
  bool overlapped_co = false;    ///< a co-channel frame overlapped the reception
  bool overlapped_inter = false; ///< an inter-channel frame overlapped the reception

  /// Per-block corruption map (true = block has bit errors), block size per
  /// the radio's block_size_bytes. Partial packet recovery feeds on this.
  std::vector<bool> block_errors;

  [[nodiscard]] bool collided() const { return overlapped_co || overlapped_inter; }
  [[nodiscard]] int dirty_blocks() const {
    int count = 0;
    for (const bool dirty : block_errors) count += dirty ? 1 : 0;
    return count;
  }
};

}  // namespace nomc::phy
