// Spatial region planning for intra-trial parallelism.
//
// RegionPartition tiles the bounding box of a set of anchor points (network
// centroids, or any per-assignment-unit representative) into a small square
// grid and numbers the non-empty tiles as dense regions. The tile edge is
// floored at the influence radius so one region rarely needs mirroring onto
// more than its ring of neighbours, and the grid is capped at max_side per
// axis so the region count — and with it the per-window barrier cost — stays
// bounded no matter how large the deployment grows.
//
// Everything here is a pure function of the anchor geometry: the partition
// never sees the worker count, which is one half of the determinism contract
// (the other half is the executor's fixed message-merge order — see
// docs/parallel_trial.md).
//
// Delivery ("which regions can a transmission at P touch?") is answered
// against per-region axis-aligned bounding boxes grown over the *actual*
// member positions, not the assignment tiles: an assignment unit may own
// nodes outside its anchor's tile, and the AABB test stays conservative
// regardless.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <span>
#include <vector>

#include "phy/geometry.hpp"

namespace nomc::phy {

/// Axis-aligned bounding box over member positions; empty until grown.
struct Aabb {
  Vec2 lo{0.0, 0.0};
  Vec2 hi{0.0, 0.0};
  bool empty = true;

  void grow(Vec2 p) {
    if (empty) {
      lo = hi = p;
      empty = false;
      return;
    }
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  /// Conservative disc test: does the disc of `radius` around `center`
  /// intersect this box?
  [[nodiscard]] bool intersects_disc(Vec2 center, double radius) const {
    if (empty) return false;
    const double cx = std::clamp(center.x, lo.x, hi.x);
    const double cy = std::clamp(center.y, lo.y, hi.y);
    return distance_sq({cx, cy}, center) <= radius * radius;
  }
};

class RegionPartition {
 public:
  /// Plan a partition over `anchors`. `min_tile_m` floors the tile edge
  /// (pass the influence radius); `max_side` caps the grid per axis.
  /// With fewer than two anchors, or a degenerate extent, everything lands
  /// in one region.
  [[nodiscard]] static RegionPartition plan(std::span<const Vec2> anchors, double min_tile_m,
                                            int max_side) {
    RegionPartition part;
    if (anchors.size() < 2 || max_side <= 1) {
      part.regions_ = anchors.empty() ? 0 : 1;
      part.region_of_tile_.assign(1, part.regions_ == 1 ? 0 : -1);
      return part;
    }
    Aabb box;
    for (const Vec2 p : anchors) box.grow(p);
    part.origin_ = box.lo;
    const double span = std::max(box.hi.x - box.lo.x, box.hi.y - box.lo.y);
    part.tile_ = std::max({min_tile_m, span / max_side, 1e-9});
    part.cols_ = side_count(box.hi.x - box.lo.x, part.tile_, max_side);
    part.rows_ = side_count(box.hi.y - box.lo.y, part.tile_, max_side);
    part.region_of_tile_.assign(
        static_cast<std::size_t>(part.cols_) * static_cast<std::size_t>(part.rows_), -1);
    // Dense region ids in row-major tile-scan order of first occupancy is
    // NOT deterministic under anchor reordering; number tiles in row-major
    // order after marking, so the mapping depends only on the geometry.
    for (const Vec2 p : anchors) part.region_of_tile_[part.tile_of(p)] = 0;
    int next = 0;
    for (int& r : part.region_of_tile_) {
      if (r == 0) r = next++;
    }
    part.regions_ = next;
    return part;
  }

  [[nodiscard]] int region_count() const { return regions_; }

  /// Region owning `p`. `p` must lie in (or at least clamp into) an occupied
  /// tile — true for every anchor passed to plan().
  [[nodiscard]] int region_of(Vec2 p) const {
    const int region = region_of_tile_[tile_of(p)];
    assert(region >= 0 && "position does not map to an occupied tile");
    return region;
  }

 private:
  [[nodiscard]] static int side_count(double extent, double tile, int max_side) {
    const int n = static_cast<int>(std::floor(extent / tile)) + 1;
    return std::clamp(n, 1, max_side);
  }

  [[nodiscard]] std::size_t tile_of(Vec2 p) const {
    const int cx = std::clamp(static_cast<int>(std::floor((p.x - origin_.x) / tile_)), 0,
                              cols_ - 1);
    const int cy = std::clamp(static_cast<int>(std::floor((p.y - origin_.y) / tile_)), 0,
                              rows_ - 1);
    return static_cast<std::size_t>(cy) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(cx);
  }

  Vec2 origin_{0.0, 0.0};
  double tile_ = 1.0;
  int cols_ = 1;
  int rows_ = 1;
  std::vector<int> region_of_tile_;
  int regions_ = 0;
};

}  // namespace nomc::phy
