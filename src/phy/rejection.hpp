// Inter-channel (adjacent-channel) rejection model.
//
// A(Δf) is the effective attenuation, in dB, that a receiver/energy-detector
// tuned to frequency f applies to a transmission centred at f ± Δf. It folds
// together the transmitter's spectral mask and the receiver's channel filter
// — the quantity the paper measures implicitly through its CPRR experiment
// (Fig. 4) and its CCA-backoff observations (Figs. 1, 6-8).
//
// SUBSTITUTION NOTE (see DESIGN.md §2): we have no radios, so the anchor
// table below is calibrated such that the simulated testbed reproduces the
// paper's measured physical-layer characterization:
//   * CPRR vs CFD staircase of Fig. 4 (100 / 97 / ~70 / <20 % at 4/3/2/1 MHz
//     with the attacker adjacent to the victim receiver),
//   * default −77 dBm CCA marginally sensing 3 MHz-away neighbours at
//     testbed ranges (Figs. 1 and 6),
//   * ZigBee's 5 MHz spacing sensing as idle (Fig. 19 baseline),
//   * CC2420 datasheet alternate-channel rejection (~50 dB at ≥10 MHz).
// The calibration is locked by tests/integration/calibration_test.cpp.
#pragma once

#include <span>
#include <vector>

#include "phy/units.hpp"

namespace nomc::phy {

// Two distinct curves exist because the hardware has two distinct paths:
//   * DECODE rejection: what the demodulator applies to off-channel energy
//     while despreading a wanted frame (analog channel filter + DSSS
//     correlation gain). Governs SINR, hence packet corruption and CPRR.
//   * SENSING rejection: what the CCA energy detector applies (analog
//     filter only — an energy read has no despreading). Governs how loudly
//     a neighbouring channel shows up in CCA, hence backoff behaviour.
// Sensing rejection is never stronger than decode rejection; the gap is
// largest at small offsets where the neighbour's main lobe still falls in
// the analog passband. This is exactly why the paper's Fig. 1 sees CFD=2MHz
// throughput collapse from *deferral* while Fig. 4's CPRR at 2 MHz is still
// 70 %: senders hear 2 MHz neighbours loudly, but receivers decode through
// them most of the time.
class ChannelRejection {
 public:
  struct Anchor {
    Mhz offset;
    Db attenuation;
  };

  /// Calibrated demodulator curve (see file comment).
  [[nodiscard]] static ChannelRejection cc2420_decode();

  /// Calibrated energy-detector curve (see file comment).
  [[nodiscard]] static ChannelRejection cc2420_sensing();

  /// Default-constructs the decode curve.
  ChannelRejection();

  /// Custom curve for ablation studies. Anchors must start at offset 0 and
  /// be strictly increasing in offset and non-decreasing in attenuation.
  explicit ChannelRejection(std::vector<Anchor> anchors);

  /// Attenuation applied to energy Δf away from the tuned channel.
  /// Piecewise-linear between anchors; flat beyond the last anchor.
  [[nodiscard]] Db attenuation(Mhz delta_f) const;

  [[nodiscard]] std::span<const Anchor> anchors() const { return anchors_; }

 private:
  std::vector<Anchor> anchors_;
};

}  // namespace nomc::phy
