#include "phy/modulation.hpp"

#include <cassert>
#include <cmath>

namespace nomc::phy {
namespace {

[[nodiscard]] double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

}  // namespace

double oqpsk_ber(double sinr_db) {
  // BER = (8/15) · (1/16) · Σ_{k=2}^{16} (−1)^k · C(16,k) · exp(20·γ·(1/k − 1))
  // with γ the linear SINR. Below −12 dB the alternating sum loses precision;
  // the channel is unusable there anyway, so clamp to the coin-flip rate.
  if (sinr_db < -12.0) return 0.5;
  const double gamma = db_to_linear(sinr_db);

  static constexpr double kBinom16[17] = {1,    16,   120,  560,  1820, 4368,
                                          8008, 11440, 12870, 11440, 8008, 4368,
                                          1820, 560,  120,  16,   1};
  double sum = 0.0;
  for (int k = 2; k <= 16; ++k) {
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    sum += sign * kBinom16[k] * std::exp(20.0 * gamma * (1.0 / k - 1.0));
  }
  const double ber = (8.0 / 15.0) * (1.0 / 16.0) * sum;
  if (ber < 0.0) return 0.0;
  if (ber > 0.5) return 0.5;
  return ber;
}

double packet_error_rate(double ber, int bits) {
  assert(bits >= 0);
  if (ber <= 0.0 || bits == 0) return 0.0;
  if (ber >= 0.5) return 1.0;
  // 1 − (1 − p)^n computed in log space for small p stability.
  return -std::expm1(static_cast<double>(bits) * std::log1p(-ber));
}

double sinr_for_per50(int bits) {
  assert(bits > 0);
  // Bisection over the monotone PER(SINR) curve.
  double lo = -12.0;
  double hi = 10.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (packet_error_rate(oqpsk_ber(mid), bits) > 0.5) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double ber(BerModel model, double sinr_db) {
  switch (model) {
    case BerModel::kOqpsk154:
      return oqpsk_ber(sinr_db);
    case BerModel::kDsss11b:
      return dsss_dbpsk_ber(sinr_db);
  }
  return 0.5;  // unreachable
}

double dsss_dbpsk_ber(double sinr_db) {
  // DBPSK: BER = 0.5·exp(−Eb/N0), with the 11-chip Barker processing gain
  // (10.4 dB) folded into Eb/N0 from the wideband SINR.
  const double eb_n0 = db_to_linear(sinr_db + 10.4);
  const double ber = 0.5 * std::exp(-eb_n0);
  return ber > 0.5 ? 0.5 : ber;
}

}  // namespace nomc::phy
