#include "phy/path_loss.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

#include "sim/random.hpp"

namespace nomc::phy {

LogDistancePathLoss::LogDistancePathLoss(double exponent, Db loss_at_reference,
                                         double reference_m)
    : exponent_{exponent}, loss_at_reference_{loss_at_reference}, reference_m_{reference_m} {
  assert(exponent_ > 0.0);
  assert(reference_m_ > 0.0);
}

Db LogDistancePathLoss::loss(double distance_m) const {
  // Clamp inside the reference distance: the log-distance model is not valid
  // in the near field, and co-located test nodes should not produce gain.
  const double d = distance_m < reference_m_ ? reference_m_ : distance_m;
  return Db{loss_at_reference_.value + 10.0 * exponent_ * std::log10(d / reference_m_)};
}

double LogDistancePathLoss::distance_for_loss(Db target) const {
  if (target.value <= loss_at_reference_.value) return reference_m_;
  return reference_m_ *
         std::pow(10.0, (target.value - loss_at_reference_.value) / (10.0 * exponent_));
}

Db ShadowingField::sample(std::uint64_t frame_id, std::uint32_t node) const {
  if (sigma_db_ <= 0.0) return Db{0.0};
  // Hash (seed, frame, node) through splitmix64 into two uniforms, then one
  // Box–Muller draw. Stateless => the realization is stable across queries.
  sim::SplitMix64 mix{seed_ ^ (frame_id * 0x9e3779b97f4a7c15ULL) ^
                      (std::uint64_t{node} << 32 | 0x5bf0'3635ULL)};
  const double u1_raw = static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
  const double u1 = u1_raw <= 0.0 ? 0x1.0p-53 : u1_raw;
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return Db{sigma_db_ * z};
}

}  // namespace nomc::phy
