#include "phy/channel_plan.hpp"

#include <cassert>

namespace nomc::phy {

std::vector<Mhz> evenly_spaced(Mhz first_center, Mhz cfd, int count) {
  assert(count >= 0);
  assert(cfd.value > 0.0 || count <= 1);
  std::vector<Mhz> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(Mhz{first_center.value + cfd.value * i});
  }
  return out;
}

std::vector<Mhz> pack_band(Mhz band_start, Mhz band_end, Mhz cfd) {
  assert(cfd.value > 0.0);
  assert(band_end >= band_start);
  std::vector<Mhz> out;
  for (double f = band_start.value; f <= band_end.value + 1e-9; f += cfd.value) {
    out.push_back(Mhz{f});
  }
  return out;
}

std::vector<Mhz> zigbee_channels() {
  std::vector<Mhz> out;
  out.reserve(16);
  for (int k = 11; k <= 26; ++k) out.push_back(zigbee_channel(k));
  return out;
}

Mhz zigbee_channel(int k) {
  assert(k >= 11 && k <= 26);
  return Mhz{2405.0 + 5.0 * (k - 11)};
}

}  // namespace nomc::phy
