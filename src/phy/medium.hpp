// The shared wireless medium.
//
// Tracks node positions and the set of in-flight transmissions, and answers
// the three questions everything above it asks:
//   * what is frame F's received signal strength at node N (path loss +
//     per-frame shadowing),
//   * how much total energy does node N sense on channel C right now
//     (co-channel plus rejection-attenuated inter-channel leakage plus the
//     noise floor — exactly what a CCA energy detector integrates), and
//   * what interference does node N see while decoding frame F on channel C.
//
// The medium has no notion of time: radios drive it with begin_tx/end_tx and
// it notifies listeners *before* mutating the active set, so a listener
// closing an error-accumulation segment still observes the interference set
// that was valid up to this instant.
//
// Hot-path caching: rss() is a pure function of (frame, rx) — tx power minus
// a position-determined path loss plus a hash-determined shadowing draw —
// and it is queried once per active frame per CCA/SINR evaluation, millions
// of times per run. The medium therefore memoizes both pieces:
//   * pairwise path loss, invalidated per node by set_position/add_node, and
//   * per-(frame id, rx) shadowing draws, dropped when the frame leaves the
//     air (recomputation is bit-identical, so eviction is a pure perf event).
// The caches make the const query methods write to mutable state; a Medium
// is single-threaded like the Scenario that owns it (parallel replication
// runs one Medium per thread — see sim/parallel.hpp).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "phy/frame.hpp"
#include "phy/geometry.hpp"
#include "phy/path_loss.hpp"
#include "phy/rejection.hpp"
#include "phy/units.hpp"

namespace nomc::phy {

class MediumListener {
 public:
  virtual ~MediumListener() = default;
  /// A frame is about to start; it is NOT yet in the active set.
  virtual void on_tx_start(const Frame& frame) = 0;
  /// A frame is about to end; it is STILL in the active set.
  virtual void on_tx_end(const Frame& frame) = 0;
};

struct MediumConfig {
  LogDistancePathLoss path_loss{};
  /// Demodulator-path rejection: governs decoding SINR.
  ChannelRejection rejection = ChannelRejection::cc2420_decode();
  /// Energy-detector-path rejection: governs CCA sensing.
  ChannelRejection sensing_rejection = ChannelRejection::cc2420_sensing();
  Dbm noise_floor{-95.0};
  double shadowing_sigma_db = 2.5;
  std::uint64_t seed = 1;
};

class Medium {
 public:
  explicit Medium(MediumConfig config = {});
  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Registers a node at `position`; returns its id (dense, starting at 0).
  NodeId add_node(Vec2 position);
  [[nodiscard]] std::size_t node_count() const { return positions_.size(); }
  [[nodiscard]] Vec2 position(NodeId node) const;
  void set_position(NodeId node, Vec2 position);

  /// Listeners (radios) are notified of every tx start/end.
  void add_listener(MediumListener* listener);
  void remove_listener(MediumListener* listener);

  [[nodiscard]] FrameId allocate_frame_id() { return next_frame_id_++; }

  void begin_tx(const Frame& frame);
  void end_tx(FrameId id);

  /// RSS of `frame` at `rx`: tx power − path loss ± shadowing. Deterministic
  /// per (frame, rx): every query about the same pair agrees.
  [[nodiscard]] Dbm rss(const Frame& frame, NodeId rx) const;

  /// Total energy a CCA detector at `node`, tuned to `channel`, reads:
  /// every active frame not transmitted by `node`, attenuated by the
  /// rejection curve, summed in mW with the thermal noise floor.
  [[nodiscard]] Dbm sense_energy(NodeId node, Mhz channel) const;

  /// Interference-plus-noise for decoding frame `exclude` at `rx` on
  /// `channel`: as sense_energy but also excluding the wanted frame itself.
  [[nodiscard]] Dbm interference(NodeId rx, Mhz channel, FrameId exclude) const;

  struct Overlap {
    bool co = false;     ///< a co-channel frame is on the air
    bool inter = false;  ///< an inter-channel frame with energy above noise
  };
  /// What kinds of concurrent transmission (other than `exclude` and `rx`'s
  /// own) are on the air right now, from `rx`'s perspective on `channel`.
  [[nodiscard]] Overlap overlap(NodeId rx, Mhz channel, FrameId exclude) const;

  /// Carrier-sense detector: is a CO-CHANNEL transmission (not `node`'s own)
  /// in progress whose RSS at `node` clears `sensitivity`? This is what the
  /// CC2420's CCA modes 2/3 report — modulation detection only works on the
  /// tuned channel, so inter-channel energy is inherently invisible to it
  /// (the classifier the paper's §VII-C asks for).
  [[nodiscard]] bool carrier_present(NodeId node, Mhz channel, Dbm sensitivity) const;

  [[nodiscard]] std::size_t active_count() const { return active_.size(); }
  [[nodiscard]] Dbm noise_floor() const { return config_.noise_floor; }
  [[nodiscard]] const ChannelRejection& rejection() const { return config_.rejection; }
  [[nodiscard]] const ChannelRejection& sensing_rejection() const {
    return config_.sensing_rejection;
  }
  [[nodiscard]] const LogDistancePathLoss& path_loss() const { return config_.path_loss; }

 private:
  [[nodiscard]] MilliWatts accumulate(NodeId node, Mhz channel, FrameId exclude,
                                      const ChannelRejection& rejection) const;
  /// How much of frame `f`'s energy leaks into a receiver tuned `delta` away:
  /// the receiver's filter curve, floored by the transmitter's own emission
  /// mask when one is attached (a wide transmitter puts power inside a
  /// narrow receiver's passband no matter how good the receiver's filter
  /// is). Shared by accumulate() and overlap() so the two cannot drift.
  [[nodiscard]] static Db leak_attenuation(const Frame& f, Mhz delta,
                                           const ChannelRejection& rejection);
  /// Memoized PL(distance(a, b)); recomputed after either node moves.
  [[nodiscard]] double cached_loss_db(NodeId a, NodeId b) const;
  /// Memoized shadowing draw for (frame id, rx).
  [[nodiscard]] double cached_shadow_db(FrameId frame, NodeId rx) const;

  MediumConfig config_;
  ShadowingField shadowing_;
  std::vector<Vec2> positions_;
  std::vector<Frame> active_;
  std::vector<MediumListener*> listeners_;
  FrameId next_frame_id_ = 1;

  // -- Memoization (see the header comment) ------------------------------
  /// Row-major node_count²; NaN = not yet computed.
  mutable std::vector<double> loss_cache_;
  /// Per-frame shadowing draws indexed by rx; NaN = not yet computed.
  /// Erased on end_tx to stay proportional to the active set.
  mutable std::unordered_map<FrameId, std::vector<double>> shadow_cache_;
};

}  // namespace nomc::phy
