// The shared wireless medium.
//
// Tracks node positions and the set of in-flight transmissions, and answers
// the three questions everything above it asks:
//   * what is frame F's received signal strength at node N (path loss +
//     per-frame shadowing),
//   * how much total energy does node N sense on channel C right now
//     (co-channel plus rejection-attenuated inter-channel leakage plus the
//     noise floor — exactly what a CCA energy detector integrates), and
//   * what interference does node N see while decoding frame F on channel C.
//
// The medium has no notion of time: radios drive it with begin_tx/end_tx and
// it notifies listeners *before* mutating the active set, so a listener
// closing an error-accumulation segment still observes the interference set
// that was valid up to this instant.
//
// Scaling (see docs/scaling.md for the full story): queries used to walk
// every active frame — O(active) per CCA read, quadratic in node count per
// simulated second. With culling enabled (the default) every frame carries a
// conservative *influence radius*: the distance at which its strongest
// plausible RSS (tx power + a shadowing cap) falls `margin_db` below the
// noise floor. A uniform hash grid over transmitter positions lets a query
// visit only frames whose influence disc covers the querying node; frames
// beyond their radius are invisible to all queries (their contribution is
// provably below the receive floor). At paper scale the radius exceeds the
// deployment span, nothing is culled, and every result is bit-identical to
// the exhaustive path — which is pinned by tests and keeps the golden stores
// byte-stable.
//
// Hot-path caching: rss() is a pure function of (frame, rx) — tx power minus
// a position-determined path loss plus a hash-determined shadowing draw —
// and it is queried once per relevant frame per CCA/SINR evaluation,
// millions of times per run. The medium memoizes both pieces sparsely (a
// node only ever asks about its radio neighbours):
//   * pairwise path loss in per-node open-addressing maps whose entries
//     snapshot the other endpoint's motion epoch — set_position invalidates
//     every pair involving the moved node in O(1) by bumping its epoch, and
//   * per-(frame id, rx) shadowing draws in pooled maps, recycled when the
//     frame leaves the air (recomputation is bit-identical, so eviction is a
//     pure perf event).
// The caches make the const query methods write to mutable state; a Medium
// is single-threaded like the Scenario that owns it (parallel replication
// runs one Medium per thread — see sim/parallel.hpp).
#pragma once

#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "phy/frame.hpp"
#include "phy/geometry.hpp"
#include "phy/node_map.hpp"
#include "phy/path_loss.hpp"
#include "phy/rejection.hpp"
#include "phy/spatial_grid.hpp"
#include "phy/units.hpp"

namespace nomc::phy {

class MediumListener {
 public:
  virtual ~MediumListener() = default;
  /// A frame is about to start; it is NOT yet in the active set.
  virtual void on_tx_start(const Frame& frame) = 0;
  /// A frame is about to end; it is STILL in the active set.
  virtual void on_tx_end(const Frame& frame) = 0;
};

/// Spatial interference culling knobs. The defaults are conservative enough
/// that paper-scale scenarios (metres to tens of metres across) cull nothing
/// and reproduce the exhaustive path bit for bit; city-scale scenarios
/// (kilometres) drop far-field frames whose energy is unobservable.
struct CullingConfig {
  bool enabled = true;
  /// A frame is culled at a receiver only once its strongest plausible RSS
  /// is this many dB below the noise floor ("receive floor" = noise − margin).
  double margin_db = 10.0;
  /// Shadowing head-room, in sigmas, folded into the influence radius so a
  /// lucky constructive fade cannot push a culled frame above the floor.
  double shadow_cap_sigma = 6.0;
  /// Grid cell edge in metres; <= 0 derives it from the influence radius of
  /// a nominal 0 dBm transmitter (queries then touch ~3x3 cells).
  double cell_size_m = 0.0;
};

struct MediumConfig {
  LogDistancePathLoss path_loss{};
  /// Demodulator-path rejection: governs decoding SINR.
  ChannelRejection rejection = ChannelRejection::cc2420_decode();
  /// Energy-detector-path rejection: governs CCA sensing.
  ChannelRejection sensing_rejection = ChannelRejection::cc2420_sensing();
  Dbm noise_floor{-95.0};
  double shadowing_sigma_db = 2.5;
  std::uint64_t seed = 1;
  CullingConfig culling{};
  /// First node id add_node() hands out. Region-sharded runs give each shard
  /// medium a disjoint id range so mirrored frames never alias local nodes;
  /// serial runs keep the default 0.
  NodeId node_id_base = 0;
  /// allocate_frame_id() counts up from frame_id_base + 1. Region-sharded
  /// runs key this off the region index so frame ids stay globally unique
  /// (shadowing draws hash the frame id; collisions would correlate fades).
  FrameId frame_id_base = 0;
};

/// The culling radius a frame sent at `tx_power` carries under `config`:
/// the distance at which tx_power + the shadowing head-room falls to the
/// receive floor (noise − margin). Free-standing so region planners can
/// derive shard extents without building a Medium.
[[nodiscard]] double influence_radius_m(const MediumConfig& config, Dbm tx_power);

class Medium {
 public:
  explicit Medium(MediumConfig config = {});
  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  /// Registers a node at `position`; returns its id (dense, starting at
  /// `node_id_base`).
  NodeId add_node(Vec2 position);
  [[nodiscard]] std::size_t node_count() const { return positions_.size(); }
  /// True when `node` was registered with this medium (its id falls in this
  /// medium's [node_id_base, node_id_base + node_count) range). Frames from
  /// foreign sources — mirrored by a region router — fail this and are
  /// modelled from their Frame::src_pos snapshot instead.
  [[nodiscard]] bool owns(NodeId node) const {
    return node >= config_.node_id_base &&
           node - config_.node_id_base < positions_.size();
  }
  [[nodiscard]] Vec2 position(NodeId node) const;
  void set_position(NodeId node, Vec2 position);

  /// Listeners (radios) are notified of tx start/end. `node` is the
  /// listener's own (locally registered) node: with culling enabled,
  /// notifications are delivered only to listeners inside the frame's
  /// influence disc — beyond it the frame is unobservable by construction,
  /// so skipping the callback only re-anchors where error-segment RNG draws
  /// happen, never what a receiver can measure. Assumes listeners do not
  /// move across an influence boundary while a frame is in flight (static
  /// deployments; paper-scale discs exceed the deployment span, so nothing
  /// is ever skipped there).
  void add_listener(MediumListener* listener, NodeId node);
  void remove_listener(MediumListener* listener);

  [[nodiscard]] FrameId allocate_frame_id() { return next_frame_id_++; }

  void begin_tx(const Frame& frame);
  void end_tx(FrameId id);

  /// RSS of `frame` at `rx`: tx power − path loss ± shadowing. Deterministic
  /// per (frame, rx): every query about the same pair agrees.
  [[nodiscard]] Dbm rss(const Frame& frame, NodeId rx) const;

  /// Total energy a CCA detector at `node`, tuned to `channel`, reads:
  /// every relevant active frame not transmitted by `node`, attenuated by
  /// the rejection curve, summed in mW with the thermal noise floor.
  [[nodiscard]] Dbm sense_energy(NodeId node, Mhz channel) const;

  /// Interference-plus-noise for decoding frame `exclude` at `rx` on
  /// `channel`: as sense_energy but also excluding the wanted frame itself.
  [[nodiscard]] Dbm interference(NodeId rx, Mhz channel, FrameId exclude) const;

  struct Overlap {
    bool co = false;     ///< a co-channel frame is on the air (within range)
    bool inter = false;  ///< an inter-channel frame with energy above noise
  };
  /// What kinds of concurrent transmission (other than `exclude` and `rx`'s
  /// own) are on the air right now, from `rx`'s perspective on `channel`.
  [[nodiscard]] Overlap overlap(NodeId rx, Mhz channel, FrameId exclude) const;

  /// Carrier-sense detector: is a CO-CHANNEL transmission (not `node`'s own)
  /// in progress whose RSS at `node` clears `sensitivity`? This is what the
  /// CC2420's CCA modes 2/3 report — modulation detection only works on the
  /// tuned channel, so inter-channel energy is inherently invisible to it
  /// (the classifier the paper's §VII-C asks for). A `sensitivity` below the
  /// receive floor falls back to an exhaustive scan, so culling can never
  /// hide a carrier the detector was asked to hear.
  [[nodiscard]] bool carrier_present(NodeId node, Mhz channel, Dbm sensitivity) const;

  [[nodiscard]] std::size_t active_count() const { return active_count_; }
  [[nodiscard]] Dbm noise_floor() const { return config_.noise_floor; }
  [[nodiscard]] const ChannelRejection& rejection() const { return config_.rejection; }
  [[nodiscard]] const ChannelRejection& sensing_rejection() const {
    return config_.sensing_rejection;
  }
  [[nodiscard]] const LogDistancePathLoss& path_loss() const { return config_.path_loss; }

  /// The culling radius a frame sent at `tx_power` would carry: where
  /// tx_power + shadow_cap falls to the receive floor. Exposed for tests,
  /// benches, and the derivation walk-through in docs/scaling.md.
  [[nodiscard]] double influence_radius_m(Dbm tx_power) const;
  [[nodiscard]] bool culling_enabled() const { return config_.culling.enabled; }

 private:
  /// An in-flight frame, pool-allocated: slots are recycled through a free
  /// list so steady-state begin/end traffic does not allocate, and the grid
  /// can refer to frames by stable 32-bit slot index.
  struct ActiveFrame {
    Frame frame{};
    Vec2 src_pos{};               ///< transmitter position as bucketed in the grid
    std::uint64_t begin_seq = 0;  ///< global begin_tx order: fixes summation order
    double radius = 0.0;          ///< influence radius in metres
    bool live = false;
  };

  [[nodiscard]] MilliWatts accumulate(NodeId node, Mhz channel, FrameId exclude,
                                      const ChannelRejection& rejection) const;
  /// Deliver on_tx_start/on_tx_end for `frame` to every listener inside its
  /// influence disc (all listeners when culling is off).
  void notify_listeners(const Frame& frame, Vec2 src_pos, double radius, bool start);
  /// How much of frame `f`'s energy leaks into a receiver tuned `delta` away:
  /// the receiver's filter curve, floored by the transmitter's own emission
  /// mask when one is attached (a wide transmitter puts power inside a
  /// narrow receiver's passband no matter how good the receiver's filter
  /// is). Shared by accumulate() and overlap() so the two cannot drift.
  [[nodiscard]] static Db leak_attenuation(const Frame& f, Mhz delta,
                                           const ChannelRejection& rejection);
  /// Memoized PL(distance(a, b)); entries staled by either endpoint moving.
  /// Both endpoints must be locally registered.
  [[nodiscard]] double cached_loss_db(NodeId a, NodeId b) const;
  /// Memoized PL between a foreign frame's src_pos snapshot and local `rx`,
  /// keyed per frame id (recycled when the frame leaves the air).
  [[nodiscard]] double cached_ext_loss_db(const Frame& frame, NodeId rx) const;
  /// Memoized shadowing draw for (frame id, rx).
  [[nodiscard]] double cached_shadow_db(FrameId frame, NodeId rx) const;

  /// Dense storage index of a locally registered node.
  [[nodiscard]] std::size_t local_index(NodeId node) const {
    assert(owns(node));
    return static_cast<std::size_t>(node - config_.node_id_base);
  }

  /// Noise floor minus the culling margin, in dBm: energy below this is
  /// treated as unobservable.
  [[nodiscard]] double cull_floor_dbm() const {
    return config_.noise_floor.value - config_.culling.margin_db;
  }
  /// Fills scratch_ with (begin_seq, slot) for every frame relevant to
  /// `node` — all live frames when exhaustive (culling off or forced), else
  /// only frames whose influence disc covers `node`. Sorts by begin_seq when
  /// `ordered` so floating-point accumulation replays begin_tx order exactly.
  void gather(NodeId node, bool ordered, bool force_exhaustive = false) const;

  /// A registered listener and the node it listens at (for notification
  /// culling against the influence disc).
  struct ListenerEntry {
    MediumListener* listener = nullptr;
    NodeId node = kNoNode;
  };

  MediumConfig config_;
  ShadowingField shadowing_;
  std::vector<Vec2> positions_;
  /// Bumped when the node moves; loss-cache entries snapshot it (see below).
  std::vector<std::uint32_t> epochs_;
  std::vector<ListenerEntry> listeners_;
  FrameId next_frame_id_ = 1;

  // -- Active set (slot pool + spatial index) ----------------------------
  std::vector<ActiveFrame> frame_slots_;
  std::vector<std::uint32_t> free_frame_slots_;
  std::unordered_map<FrameId, std::uint32_t> slot_of_;
  SpatialFrameGrid grid_;
  std::size_t active_count_ = 0;
  std::uint64_t next_begin_seq_ = 0;
  /// Largest influence radius among frames begun this busy period; bounds
  /// the query disc. Reset when the air goes quiet.
  double max_active_radius_ = 0.0;

  // -- Memoization (see the header comment) ------------------------------
  /// loss_cache_[a] maps b -> PL(a, b) stamped with b's epoch at compute
  /// time. A move bumps the mover's epoch and clears its own map: every
  /// stale pair then fails the epoch check on its next lookup.
  mutable std::vector<NodeValueMap> loss_cache_;
  /// Per-frame shadowing draws keyed by rx; map storage recycles through
  /// spare_maps_ when frames leave the air.
  mutable std::unordered_map<FrameId, NodeValueMap> shadow_cache_;
  /// Path loss from a foreign frame's src_pos snapshot, keyed like
  /// shadow_cache_ and recycled through the same pool.
  mutable std::unordered_map<FrameId, NodeValueMap> ext_loss_cache_;
  mutable std::vector<NodeValueMap> spare_maps_;
  /// Query candidate buffer, reused across queries (single-threaded).
  mutable std::vector<std::pair<std::uint64_t, std::uint32_t>> scratch_;
};

}  // namespace nomc::phy
