// Channel plans: how center frequencies are assigned across a spectrum band.
//
// The paper's core knob is the channel center frequency distance (CFD).
// ZigBee's default plan spaces channels 5 MHz apart; the paper packs them at
// 3 MHz (non-orthogonal) and shows the band carries more traffic.
#pragma once

#include <vector>

#include "phy/units.hpp"

namespace nomc::phy {

/// `count` channels starting at `first_center`, spaced `cfd` apart.
/// This mirrors how the paper states its layouts ("6 networks with
/// CFD=3MHz from 2458MHz").
[[nodiscard]] std::vector<Mhz> evenly_spaced(Mhz first_center, Mhz cfd, int count);

/// Greedy packing: centers at band_start, band_start+cfd, ... while they fit
/// inside [band_start, band_end].
[[nodiscard]] std::vector<Mhz> pack_band(Mhz band_start, Mhz band_end, Mhz cfd);

/// The 16 standard ZigBee channels (11–26) at 2405 + 5·(k−11) MHz.
[[nodiscard]] std::vector<Mhz> zigbee_channels();

/// Center frequency of ZigBee channel k (11 <= k <= 26).
[[nodiscard]] Mhz zigbee_channel(int k);

}  // namespace nomc::phy
