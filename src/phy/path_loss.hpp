// Large-scale propagation: log-distance path loss with log-normal shadowing.
#pragma once

#include <cstdint>

#include "phy/units.hpp"

namespace nomc::phy {

/// PL(d) = PL(d0) + 10·n·log10(d / d0).
///
/// Defaults model the paper's indoor lab testbed: n = 2.2 and 40 dB loss at
/// the 1 m reference — a 0 dBm sender is heard at ≈ −47 dBm from 2 m, which
/// puts co-channel neighbours well above the −77 dBm default CCA threshold,
/// as on the real testbed.
class LogDistancePathLoss {
 public:
  LogDistancePathLoss() = default;
  LogDistancePathLoss(double exponent, Db loss_at_reference, double reference_m);

  [[nodiscard]] Db loss(double distance_m) const;

  /// Inverse of loss(): the distance at which the path loss reaches `target`.
  /// Clamped to the reference distance (loss() never reports less than the
  /// reference loss). Used to derive interference culling radii — see
  /// docs/scaling.md.
  [[nodiscard]] double distance_for_loss(Db target) const;

  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  double exponent_ = 2.2;
  Db loss_at_reference_{40.0};
  double reference_m_ = 1.0;
};

/// Per-(frame, receiver) shadowing term, deterministic in (seed, frame id,
/// node id) so that a frame has exactly one fading realization at each node
/// no matter how many times the medium is queried about it — reception,
/// segment updates, and CCA sensing all agree.
class ShadowingField {
 public:
  ShadowingField(double sigma_db, std::uint64_t seed) : sigma_db_{sigma_db}, seed_{seed} {}

  /// Gaussian N(0, sigma) gain in dB for `frame_id` as observed at `node`.
  [[nodiscard]] Db sample(std::uint64_t frame_id, std::uint32_t node) const;

  [[nodiscard]] double sigma_db() const { return sigma_db_; }

 private:
  double sigma_db_;
  std::uint64_t seed_;
};

}  // namespace nomc::phy
