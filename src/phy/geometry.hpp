// Planar node geometry. Testbed deployments are modelled in 2-D metres.
#pragma once

#include <cmath>

namespace nomc::phy {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  [[nodiscard]] friend constexpr Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  [[nodiscard]] friend constexpr Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  [[nodiscard]] friend constexpr bool operator==(Vec2 a, Vec2 b) = default;
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Squared distance: the spatial culling hot path compares against a squared
/// radius to avoid the sqrt (and hypot's overflow guards) per candidate.
[[nodiscard]] inline double distance_sq(Vec2 a, Vec2 b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace nomc::phy
