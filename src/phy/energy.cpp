#include "phy/energy.hpp"

namespace nomc::phy {

double EnergyModel::tx_current_ma(Dbm power) const {
  // CC2420 datasheet, output power vs current consumption (3.0 V):
  struct Point {
    double dbm;
    double ma;
  };
  static constexpr Point kTable[] = {
      {-25.0, 8.5}, {-15.0, 9.9}, {-10.0, 11.0}, {-5.0, 14.0}, {0.0, 17.4},
  };
  if (power.value <= kTable[0].dbm) return kTable[0].ma;
  for (std::size_t i = 1; i < std::size(kTable); ++i) {
    if (power.value <= kTable[i].dbm) {
      const Point& lo = kTable[i - 1];
      const Point& hi = kTable[i];
      const double t = (power.value - lo.dbm) / (hi.dbm - lo.dbm);
      return lo.ma + t * (hi.ma - lo.ma);
    }
  }
  return kTable[std::size(kTable) - 1].ma;
}

}  // namespace nomc::phy
