// Small open-addressing map from node id to a cached double.
//
// The medium's hot-path memoization (pairwise path loss, per-frame shadowing
// draws) used to live in dense per-node arrays — O(N) per frame and O(N^2)
// overall, which is exactly what a city-scale node count cannot afford. With
// spatial culling a node only ever asks about its ~tens of radio neighbours,
// so the caches are sparse: this map stores just the pairs actually queried,
// with open addressing and power-of-two sizing so a lookup is one or two
// cache probes and never hashes through std::unordered_map machinery.
//
// Each entry carries a caller-managed epoch tag. The loss cache uses it for
// O(1) motion invalidation: entries snapshot the *other* node's epoch at
// compute time, so bumping a node's epoch atomically stales every cached
// pair involving it without walking anything (see Medium::set_position).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nomc::phy {

class NodeValueMap {
 public:
  struct Entry {
    std::uint32_t key = kEmpty;
    std::uint32_t epoch = 0;
    double value = 0.0;
  };

  /// Sentinel: no node id (they are dense, starting at 0) ever equals it.
  static constexpr std::uint32_t kEmpty = ~std::uint32_t{0};

  /// Returns the entry for `key`, inserting an empty-keyed slot if absent.
  /// The caller checks `entry.key != key` (or an epoch mismatch) to decide
  /// whether the cached value must be (re)computed, then fills all fields.
  [[nodiscard]] Entry& find_or_insert(std::uint32_t key) {
    if (table_.empty()) grow();
    for (;;) {
      std::size_t i = index_of(key);
      for (;;) {
        Entry& e = table_[i];
        if (e.key == key) return e;
        if (e.key == kEmpty) {
          if (size_ * 10 >= table_.size() * 7) break;  // over load factor: grow
          ++size_;
          return e;
        }
        i = (i + 1) & (table_.size() - 1);
      }
      grow();
    }
  }

  /// Drop every entry, keeping the allocated capacity (the maps are pooled).
  void clear() {
    for (Entry& e : table_) e = Entry{};
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Iteration support for debug cross-checks (order is not deterministic;
  /// never feed it into an output or a float accumulation).
  [[nodiscard]] const std::vector<Entry>& raw_entries() const { return table_; }

 private:
  [[nodiscard]] std::size_t index_of(std::uint32_t key) const {
    // Fibonacci hashing spreads the dense, sequential node ids.
    const std::uint64_t h = std::uint64_t{key} * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(h >> 32) & (table_.size() - 1);
  }

  void grow() {
    std::vector<Entry> old = std::move(table_);
    table_.assign(old.empty() ? 16 : old.size() * 2, Entry{});
    size_ = 0;
    for (const Entry& e : old) {
      if (e.key == kEmpty) continue;
      std::size_t i = index_of(e.key);
      while (table_[i].key != kEmpty) i = (i + 1) & (table_.size() - 1);
      table_[i] = e;
      ++size_;
    }
  }

  std::vector<Entry> table_;
  std::size_t size_ = 0;
};

}  // namespace nomc::phy
