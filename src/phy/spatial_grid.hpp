// Uniform hash grid over the sources of in-flight frames.
//
// The medium's interference queries used to walk every active frame — O(N)
// per CCA read, O(N^2) per simulated second at city scale. The grid buckets
// active frames by their transmitter's cell so a query only visits the
// cells that intersect the receiver's interference disc (the receive-floor
// radius, see docs/scaling.md). Cell size is the receive-floor radius of a
// nominal transmitter, so a query touches a small constant number of cells.
//
// Determinism: the grid's only job is to produce a candidate *set*; every
// caller either reduces it with an order-independent operation (boolean
// queries) or sorts candidates by frame insertion sequence before any
// floating-point accumulation (Medium::accumulate). Cell iteration order is
// a fixed row-major walk of the disc's bounding box; the hash-map fallback
// below never feeds an ordered consumer directly.
#pragma once

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "phy/geometry.hpp"

namespace nomc::phy {

class SpatialFrameGrid {
 public:
  /// Drops all content and sets the cell edge length.
  void reset(double cell_size_m) {
    cells_.clear();
    spare_.clear();
    cell_size_ = cell_size_m > 0.0 ? cell_size_m : 1.0;
  }

  [[nodiscard]] double cell_size() const { return cell_size_; }

  void insert(std::uint32_t slot, Vec2 pos) {
    std::vector<std::uint32_t>& cell = cells_[key_of(pos)];
    if (cell.capacity() == 0 && !spare_.empty()) {
      cell = std::move(spare_.back());  // recycle a retired cell's storage
      spare_.pop_back();
    }
    cell.push_back(slot);
  }

  void remove(std::uint32_t slot, Vec2 pos) {
    const auto it = cells_.find(key_of(pos));
    if (it == cells_.end()) return;
    std::vector<std::uint32_t>& cell = it->second;
    for (std::size_t i = 0; i < cell.size(); ++i) {
      if (cell[i] == slot) {
        cell[i] = cell.back();
        cell.pop_back();
        break;
      }
    }
    if (cell.empty()) {
      spare_.push_back(std::move(cell));
      spare_.back().clear();
      cells_.erase(it);
    }
  }

  /// Calls `fn(slot)` for every frame bucketed in a cell that intersects the
  /// axis-aligned bounding box of the disc (center, radius). Callers apply
  /// the exact per-frame distance test; the grid only prunes cells.
  template <typename Fn>
  void for_each_in_disc(Vec2 center, double radius, Fn&& fn) const {
    const std::int64_t cx0 = cell_of(center.x - radius);
    const std::int64_t cx1 = cell_of(center.x + radius);
    const std::int64_t cy0 = cell_of(center.y - radius);
    const std::int64_t cy1 = cell_of(center.y + radius);
    const std::uint64_t span_x = static_cast<std::uint64_t>(cx1 - cx0) + 1;
    const std::uint64_t span_y = static_cast<std::uint64_t>(cy1 - cy0) + 1;
    // A disc much larger than the occupied region (paper-scale deployments
    // are a single cell wide) would probe mostly-empty cells; visiting the
    // occupied cells directly is then strictly cheaper.
    if (span_x > cells_.size() && span_x * span_y > cells_.size()) {
      for (const auto& [key, cell] : cells_) {
        (void)key;
        for (const std::uint32_t slot : cell) fn(slot);
      }
      return;
    }
    for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
      for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
        const auto it = cells_.find(make_key(cx, cy));
        if (it == cells_.end()) continue;
        for (const std::uint32_t slot : it->second) fn(slot);
      }
    }
  }

 private:
  [[nodiscard]] std::int64_t cell_of(double v) const {
    return static_cast<std::int64_t>(std::floor(v / cell_size_));
  }
  [[nodiscard]] static std::uint64_t make_key(std::int64_t cx, std::int64_t cy) {
    // Interleave the low 32 bits of each coordinate; deployments fit well
    // inside +/- 2^31 cells, so the truncation can never collide.
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32 |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  }
  [[nodiscard]] std::uint64_t key_of(Vec2 pos) const {
    return make_key(cell_of(pos.x), cell_of(pos.y));
  }

  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells_;
  std::vector<std::vector<std::uint32_t>> spare_;  ///< retired cells' storage, reused
  double cell_size_ = 1.0;
};

}  // namespace nomc::phy
