#include "phy/medium.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace nomc::phy {

namespace {
constexpr double kUncomputed = std::numeric_limits<double>::quiet_NaN();
}  // namespace

Medium::Medium(MediumConfig config)
    : config_{std::move(config)},
      shadowing_{config_.shadowing_sigma_db, config_.seed} {}

NodeId Medium::add_node(Vec2 position) {
  positions_.push_back(position);
  // The cache is row-major over node_count, so growing the node set shifts
  // every row; rebuild lazily from scratch (nodes are added at setup time).
  loss_cache_.assign(positions_.size() * positions_.size(), kUncomputed);
  return static_cast<NodeId>(positions_.size() - 1);
}

Vec2 Medium::position(NodeId node) const {
  assert(node < positions_.size());
  return positions_[node];
}

void Medium::set_position(NodeId node, Vec2 position) {
  assert(node < positions_.size());
  positions_[node] = position;
  // Invalidate every pair involving the moved node (its row and column).
  const std::size_t n = positions_.size();
  for (std::size_t other = 0; other < n; ++other) {
    loss_cache_[node * n + other] = kUncomputed;
    loss_cache_[other * n + node] = kUncomputed;
  }
}

double Medium::cached_loss_db(NodeId a, NodeId b) const {
  double& slot = loss_cache_[a * positions_.size() + b];
  if (std::isnan(slot)) {
    slot = config_.path_loss.loss(distance(positions_[a], positions_[b])).value;
  }
  return slot;
}

double Medium::cached_shadow_db(FrameId frame, NodeId rx) const {
  std::vector<double>& draws = shadow_cache_[frame];
  if (draws.size() < positions_.size()) draws.resize(positions_.size(), kUncomputed);
  double& slot = draws[rx];
  if (std::isnan(slot)) slot = shadowing_.sample(frame, rx).value;
  return slot;
}

void Medium::add_listener(MediumListener* listener) {
  assert(listener != nullptr);
  listeners_.push_back(listener);
}

void Medium::remove_listener(MediumListener* listener) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

void Medium::begin_tx(const Frame& frame) {
  assert(frame.id != 0 && "allocate the frame id through the medium");
  assert(frame.src < positions_.size());
  // Notify first: listeners observe the pre-change interference set.
  for (MediumListener* l : listeners_) l->on_tx_start(frame);
  active_.push_back(frame);
}

void Medium::end_tx(FrameId id) {
  const auto it = std::find_if(active_.begin(), active_.end(),
                               [id](const Frame& f) { return f.id == id; });
  assert(it != active_.end() && "end_tx for a frame that is not on the air");
  const Frame frame = *it;
  for (MediumListener* l : listeners_) l->on_tx_end(frame);
  // Re-find: a listener may have started a transmission, invalidating `it`.
  const auto again = std::find_if(active_.begin(), active_.end(),
                                  [id](const Frame& f) { return f.id == id; });
  assert(again != active_.end());
  active_.erase(again);
  // Dropping the memoized draws is purely a size bound: a late query about
  // this frame (e.g. the receiver finalizing the reception) recomputes the
  // identical values from the (seed, frame, node) hash.
  shadow_cache_.erase(id);
}

Dbm Medium::rss(const Frame& frame, NodeId rx) const {
  assert(rx < positions_.size());
  if (shadowing_.sigma_db() <= 0.0) {
    return frame.tx_power - Db{cached_loss_db(frame.src, rx)};
  }
  return frame.tx_power - Db{cached_loss_db(frame.src, rx)} +
         Db{cached_shadow_db(frame.id, rx)};
}

Db Medium::leak_attenuation(const Frame& f, Mhz delta, const ChannelRejection& rejection) {
  Db attenuation = rejection.attenuation(delta);
  if (f.emission != nullptr) {
    // Wideband transmitter: whatever its emission mask puts into the
    // receiver's passband arrives regardless of the receiver's filter.
    attenuation = std::min(attenuation, f.emission->attenuation(delta));
  }
  return attenuation;
}

MilliWatts Medium::accumulate(NodeId node, Mhz channel, FrameId exclude,
                              const ChannelRejection& rejection) const {
  MilliWatts total = to_milliwatts(config_.noise_floor);
  for (const Frame& f : active_) {
    if (f.id == exclude) continue;
    if (f.src == node) continue;  // a node never senses its own signal
    const Mhz delta = frequency_distance(f.channel, channel);
    total += to_milliwatts(rss(f, node) - leak_attenuation(f, delta, rejection));
  }
  return total;
}

Dbm Medium::sense_energy(NodeId node, Mhz channel) const {
  // CCA is an energy read: only the analog filter attenuates neighbours.
  return to_dbm(accumulate(node, channel, /*exclude=*/0, config_.sensing_rejection));
}

Dbm Medium::interference(NodeId rx, Mhz channel, FrameId exclude) const {
  // Decoding interference: filter + despreading gain both reject neighbours.
  return to_dbm(accumulate(rx, channel, exclude, config_.rejection));
}

bool Medium::carrier_present(NodeId node, Mhz channel, Dbm sensitivity) const {
  for (const Frame& f : active_) {
    if (f.src == node) continue;
    if (!same_channel(f.channel, channel)) continue;
    if (rss(f, node) >= sensitivity) return true;
  }
  return false;
}

Medium::Overlap Medium::overlap(NodeId rx, Mhz channel, FrameId exclude) const {
  Overlap result;
  for (const Frame& f : active_) {
    if (f.id == exclude || f.src == rx) continue;
    if (same_channel(f.channel, channel)) {
      result.co = true;
    } else {
      // Only count inter-channel frames whose leaked energy clears the noise
      // floor; a transmission on the far side of the band is not a collision.
      const Mhz delta = frequency_distance(f.channel, channel);
      const Db rejection = leak_attenuation(f, delta, config_.rejection);
      if (rss(f, rx) - rejection > config_.noise_floor) result.inter = true;
    }
  }
  return result;
}

}  // namespace nomc::phy
