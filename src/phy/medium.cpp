#include "phy/medium.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nomc::phy {

double influence_radius_m(const MediumConfig& config, Dbm tx_power) {
  const double shadow_cap = config.culling.shadow_cap_sigma * config.shadowing_sigma_db;
  const double floor = config.noise_floor.value - config.culling.margin_db;
  return config.path_loss.distance_for_loss(Db{tx_power.value + shadow_cap - floor});
}

Medium::Medium(MediumConfig config)
    : config_{std::move(config)},
      shadowing_{config_.shadowing_sigma_db, config_.seed},
      next_frame_id_{config_.frame_id_base + 1} {
  if (config_.culling.enabled) {
    double cell = config_.culling.cell_size_m;
    if (cell <= 0.0) cell = influence_radius_m(Dbm{0.0});
    grid_.reset(cell);
  }
}

double Medium::influence_radius_m(Dbm tx_power) const {
  return phy::influence_radius_m(config_, tx_power);
}

NodeId Medium::add_node(Vec2 position) {
  positions_.push_back(position);
  epochs_.push_back(0);
  loss_cache_.emplace_back();
  return config_.node_id_base + static_cast<NodeId>(positions_.size() - 1);
}

Vec2 Medium::position(NodeId node) const { return positions_[local_index(node)]; }

void Medium::set_position(NodeId node, Vec2 position) {
  const std::size_t index = local_index(node);
  positions_[index] = position;
  // O(1) invalidation of every cached pair involving the moved node: other
  // nodes' entries snapshot this node's epoch and now fail the check; the
  // node's own map is dropped outright (capacity retained).
  ++epochs_[index];
  loss_cache_[index].clear();
  // Re-bucket the mover's in-flight frames so the spatial index keeps
  // answering from current positions.
  for (std::size_t i = 0; i < frame_slots_.size(); ++i) {
    ActiveFrame& af = frame_slots_[i];
    if (!af.live || af.frame.src != node) continue;
    if (config_.culling.enabled) {
      grid_.remove(static_cast<std::uint32_t>(i), af.src_pos);
      grid_.insert(static_cast<std::uint32_t>(i), position);
    }
    af.src_pos = position;
  }
}

double Medium::cached_loss_db(NodeId a, NodeId b) const {
  const std::size_t ai = local_index(a);
  const std::size_t bi = local_index(b);
  NodeValueMap::Entry& entry = loss_cache_[ai].find_or_insert(b);
  if (entry.key != b || entry.epoch != epochs_[bi]) {
    entry.key = b;
    entry.epoch = epochs_[bi];
    entry.value = config_.path_loss.loss(distance(positions_[ai], positions_[bi])).value;
  }
#ifndef NDEBUG
  // Debug cross-check: a served cache hit must equal a fresh computation —
  // i.e. no stale entry survives motion invalidation. (Release builds skip
  // this; it turns every hit into a recompute.)
  assert(entry.value == config_.path_loss.loss(distance(positions_[ai], positions_[bi])).value &&
         "stale path-loss cache entry served after node motion");
#endif
  return entry.value;
}

double Medium::cached_ext_loss_db(const Frame& frame, NodeId rx) const {
  auto it = ext_loss_cache_.find(frame.id);
  if (it == ext_loss_cache_.end()) {
    NodeValueMap map;
    if (!spare_maps_.empty()) {
      map = std::move(spare_maps_.back());
      spare_maps_.pop_back();
    }
    it = ext_loss_cache_.emplace(frame.id, std::move(map)).first;
  }
  const std::size_t ri = local_index(rx);
  NodeValueMap::Entry& entry = it->second.find_or_insert(rx);
  if (entry.key != rx || entry.epoch != epochs_[ri]) {
    entry.key = rx;
    entry.epoch = epochs_[ri];
    entry.value = config_.path_loss.loss(distance(frame.src_pos, positions_[ri])).value;
  }
  return entry.value;
}

double Medium::cached_shadow_db(FrameId frame, NodeId rx) const {
  auto it = shadow_cache_.find(frame);
  if (it == shadow_cache_.end()) {
    NodeValueMap map;
    if (!spare_maps_.empty()) {
      map = std::move(spare_maps_.back());
      spare_maps_.pop_back();
    }
    it = shadow_cache_.emplace(frame, std::move(map)).first;
  }
  NodeValueMap::Entry& entry = it->second.find_or_insert(rx);
  if (entry.key != rx) {
    entry.key = rx;
    entry.value = shadowing_.sample(frame, rx).value;
  }
  return entry.value;
}

void Medium::add_listener(MediumListener* listener, NodeId node) {
  assert(listener != nullptr);
  assert(owns(node) && "listeners must listen at a locally registered node");
  listeners_.push_back({listener, node});
}

void Medium::remove_listener(MediumListener* listener) {
  listeners_.erase(std::remove_if(listeners_.begin(), listeners_.end(),
                                  [listener](const ListenerEntry& e) {
                                    return e.listener == listener;
                                  }),
                   listeners_.end());
}

void Medium::notify_listeners(const Frame& frame, Vec2 src_pos, double radius, bool start) {
  // With culling on, a listener beyond the influence disc could not measure
  // the frame anyway (its RSS sits below the receive floor); skipping the
  // callback only moves where error-segment RNG draws are anchored. At paper
  // scale the disc exceeds the deployment span, so nothing is ever skipped
  // and the serial draw sequence is unchanged.
  const bool cull = config_.culling.enabled;
  const double r2 = radius * radius;
  for (const ListenerEntry& e : listeners_) {
    if (cull && distance_sq(positions_[local_index(e.node)], src_pos) > r2) continue;
    if (start) {
      e.listener->on_tx_start(frame);
    } else {
      e.listener->on_tx_end(frame);
    }
  }
}

void Medium::begin_tx(const Frame& frame) {
  assert(frame.id != 0 && "allocate the frame id through the medium");
  assert(slot_of_.find(frame.id) == slot_of_.end() && "frame id already on the air");
  // A frame from a locally registered source is placed at that node's current
  // position; a foreign (region-mirrored) frame at its committed snapshot.
  const Vec2 src_pos = owns(frame.src) ? positions_[local_index(frame.src)] : frame.src_pos;
  const double radius = influence_radius_m(frame.tx_power);
  // Notify first: listeners observe the pre-change interference set.
  notify_listeners(frame, src_pos, radius, /*start=*/true);
  std::uint32_t slot;
  if (!free_frame_slots_.empty()) {
    slot = free_frame_slots_.back();
    free_frame_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(frame_slots_.size());
    frame_slots_.emplace_back();
  }
  ActiveFrame& af = frame_slots_[slot];
  af.frame = frame;
  af.src_pos = src_pos;
  af.begin_seq = next_begin_seq_++;
  af.radius = radius;
  af.live = true;
  slot_of_.emplace(frame.id, slot);
  if (config_.culling.enabled) {
    grid_.insert(slot, af.src_pos);
    max_active_radius_ = std::max(max_active_radius_, af.radius);
  }
  ++active_count_;
}

void Medium::end_tx(FrameId id) {
  auto it = slot_of_.find(id);
  assert(it != slot_of_.end() && "end_tx for a frame that is not on the air");
  // Copy before notifying: a listener may begin a transmission, growing
  // frame_slots_ and invalidating the reference.
  const Frame frame = frame_slots_[it->second].frame;
  const Vec2 src_pos = frame_slots_[it->second].src_pos;
  const double radius = frame_slots_[it->second].radius;
  notify_listeners(frame, src_pos, radius, /*start=*/false);
  // Re-find: a listener may have started a transmission, rehashing slot_of_.
  it = slot_of_.find(id);
  assert(it != slot_of_.end());
  const std::uint32_t slot = it->second;
  ActiveFrame& af = frame_slots_[slot];
  if (config_.culling.enabled) grid_.remove(slot, af.src_pos);
  af.live = false;
  free_frame_slots_.push_back(slot);
  slot_of_.erase(it);
  --active_count_;
  if (active_count_ == 0) max_active_radius_ = 0.0;
  // Recycle the memoized draws — purely a size bound: a late query about
  // this frame (e.g. the receiver finalizing the reception) recomputes the
  // identical values from the (seed, frame, node) hash.
  const auto shadow = shadow_cache_.find(id);
  if (shadow != shadow_cache_.end()) {
    shadow->second.clear();
    spare_maps_.push_back(std::move(shadow->second));
    shadow_cache_.erase(shadow);
  }
  const auto ext = ext_loss_cache_.find(id);
  if (ext != ext_loss_cache_.end()) {
    ext->second.clear();
    spare_maps_.push_back(std::move(ext->second));
    ext_loss_cache_.erase(ext);
  }
}

Dbm Medium::rss(const Frame& frame, NodeId rx) const {
  assert(owns(rx));
  const double loss =
      owns(frame.src) ? cached_loss_db(frame.src, rx) : cached_ext_loss_db(frame, rx);
  if (shadowing_.sigma_db() <= 0.0) {
    return frame.tx_power - Db{loss};
  }
  return frame.tx_power - Db{loss} + Db{cached_shadow_db(frame.id, rx)};
}

Db Medium::leak_attenuation(const Frame& f, Mhz delta, const ChannelRejection& rejection) {
  Db attenuation = rejection.attenuation(delta);
  if (f.emission != nullptr) {
    // Wideband transmitter: whatever its emission mask puts into the
    // receiver's passband arrives regardless of the receiver's filter.
    attenuation = std::min(attenuation, f.emission->attenuation(delta));
  }
  return attenuation;
}

void Medium::gather(NodeId node, bool ordered, bool force_exhaustive) const {
  scratch_.clear();
  if (config_.culling.enabled && !force_exhaustive) {
    const Vec2 at = positions_[local_index(node)];
    grid_.for_each_in_disc(at, max_active_radius_, [&](std::uint32_t slot) {
      const ActiveFrame& af = frame_slots_[slot];
      if (distance_sq(at, af.src_pos) <= af.radius * af.radius) {
        scratch_.emplace_back(af.begin_seq, slot);
      }
    });
  } else {
    for (std::size_t i = 0; i < frame_slots_.size(); ++i) {
      const ActiveFrame& af = frame_slots_[i];
      if (af.live) scratch_.emplace_back(af.begin_seq, static_cast<std::uint32_t>(i));
    }
  }
  // begin_seq order == begin_tx order: the dense path accumulated frames in
  // insertion order, and float addition is order-sensitive, so replaying
  // that exact order keeps culled and exhaustive results bit-identical
  // whenever they see the same candidate set.
  if (ordered) std::sort(scratch_.begin(), scratch_.end());
}

MilliWatts Medium::accumulate(NodeId node, Mhz channel, FrameId exclude,
                              const ChannelRejection& rejection) const {
  gather(node, /*ordered=*/true);
  MilliWatts total = to_milliwatts(config_.noise_floor);
  for (const auto& candidate : scratch_) {
    const Frame& f = frame_slots_[candidate.second].frame;
    if (f.id == exclude) continue;
    if (f.src == node) continue;  // a node never senses its own signal
    const Mhz delta = frequency_distance(f.channel, channel);
    total += to_milliwatts(rss(f, node) - leak_attenuation(f, delta, rejection));
  }
  return total;
}

Dbm Medium::sense_energy(NodeId node, Mhz channel) const {
  // CCA is an energy read: only the analog filter attenuates neighbours.
  return to_dbm(accumulate(node, channel, /*exclude=*/0, config_.sensing_rejection));
}

Dbm Medium::interference(NodeId rx, Mhz channel, FrameId exclude) const {
  // Decoding interference: filter + despreading gain both reject neighbours.
  return to_dbm(accumulate(rx, channel, exclude, config_.rejection));
}

bool Medium::carrier_present(NodeId node, Mhz channel, Dbm sensitivity) const {
  // Culling guarantees frames outside the candidate set sit below the
  // receive floor; a detector tuned below that floor could still hear them,
  // so such a query scans exhaustively instead of trusting the grid.
  const bool force_exhaustive = sensitivity.value < cull_floor_dbm();
  gather(node, /*ordered=*/false, force_exhaustive);
  for (const auto& candidate : scratch_) {
    const Frame& f = frame_slots_[candidate.second].frame;
    if (f.src == node) continue;
    if (!same_channel(f.channel, channel)) continue;
    if (rss(f, node) >= sensitivity) return true;
  }
  return false;
}

Medium::Overlap Medium::overlap(NodeId rx, Mhz channel, FrameId exclude) const {
  // A culled frame's RSS is below noise − margin, so it can neither clear
  // the inter-channel noise-floor test nor meaningfully collide co-channel;
  // the candidate set suffices.
  Overlap result;
  gather(rx, /*ordered=*/false);
  for (const auto& candidate : scratch_) {
    const Frame& f = frame_slots_[candidate.second].frame;
    if (f.id == exclude || f.src == rx) continue;
    if (same_channel(f.channel, channel)) {
      result.co = true;
    } else {
      // Only count inter-channel frames whose leaked energy clears the noise
      // floor; a transmission on the far side of the band is not a collision.
      const Mhz delta = frequency_distance(f.channel, channel);
      const Db rejection = leak_attenuation(f, delta, config_.rejection);
      if (rss(f, rx) - rejection > config_.noise_floor) result.inter = true;
    }
  }
  return result;
}

}  // namespace nomc::phy
