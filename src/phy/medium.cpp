#include "phy/medium.hpp"

#include <algorithm>
#include <cassert>

namespace nomc::phy {

Medium::Medium(MediumConfig config)
    : config_{std::move(config)},
      shadowing_{config_.shadowing_sigma_db, config_.seed} {}

NodeId Medium::add_node(Vec2 position) {
  positions_.push_back(position);
  return static_cast<NodeId>(positions_.size() - 1);
}

Vec2 Medium::position(NodeId node) const {
  assert(node < positions_.size());
  return positions_[node];
}

void Medium::set_position(NodeId node, Vec2 position) {
  assert(node < positions_.size());
  positions_[node] = position;
}

void Medium::add_listener(MediumListener* listener) {
  assert(listener != nullptr);
  listeners_.push_back(listener);
}

void Medium::remove_listener(MediumListener* listener) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

void Medium::begin_tx(const Frame& frame) {
  assert(frame.id != 0 && "allocate the frame id through the medium");
  assert(frame.src < positions_.size());
  // Notify first: listeners observe the pre-change interference set.
  for (MediumListener* l : listeners_) l->on_tx_start(frame);
  active_.push_back(frame);
}

void Medium::end_tx(FrameId id) {
  const auto it = std::find_if(active_.begin(), active_.end(),
                               [id](const Frame& f) { return f.id == id; });
  assert(it != active_.end() && "end_tx for a frame that is not on the air");
  const Frame frame = *it;
  for (MediumListener* l : listeners_) l->on_tx_end(frame);
  // Re-find: a listener may have started a transmission, invalidating `it`.
  const auto again = std::find_if(active_.begin(), active_.end(),
                                  [id](const Frame& f) { return f.id == id; });
  assert(again != active_.end());
  active_.erase(again);
}

Dbm Medium::rss(const Frame& frame, NodeId rx) const {
  assert(rx < positions_.size());
  const double d = distance(positions_[frame.src], positions_[rx]);
  return frame.tx_power - config_.path_loss.loss(d) + shadowing_.sample(frame.id, rx);
}

MilliWatts Medium::accumulate(NodeId node, Mhz channel, FrameId exclude,
                              const ChannelRejection& rejection) const {
  MilliWatts total = to_milliwatts(config_.noise_floor);
  for (const Frame& f : active_) {
    if (f.id == exclude) continue;
    if (f.src == node) continue;  // a node never senses its own signal
    const Mhz delta = frequency_distance(f.channel, channel);
    Db attenuation = rejection.attenuation(delta);
    if (f.emission != nullptr) {
      // Wideband transmitter: whatever its emission mask puts into the
      // receiver's passband arrives regardless of the receiver's filter.
      attenuation = std::min(attenuation, f.emission->attenuation(delta));
    }
    total += to_milliwatts(rss(f, node) - attenuation);
  }
  return total;
}

Dbm Medium::sense_energy(NodeId node, Mhz channel) const {
  // CCA is an energy read: only the analog filter attenuates neighbours.
  return to_dbm(accumulate(node, channel, /*exclude=*/0, config_.sensing_rejection));
}

Dbm Medium::interference(NodeId rx, Mhz channel, FrameId exclude) const {
  // Decoding interference: filter + despreading gain both reject neighbours.
  return to_dbm(accumulate(rx, channel, exclude, config_.rejection));
}

bool Medium::carrier_present(NodeId node, Mhz channel, Dbm sensitivity) const {
  for (const Frame& f : active_) {
    if (f.src == node) continue;
    if (!same_channel(f.channel, channel)) continue;
    if (rss(f, node) >= sensitivity) return true;
  }
  return false;
}

Medium::Overlap Medium::overlap(NodeId rx, Mhz channel, FrameId exclude) const {
  Overlap result;
  for (const Frame& f : active_) {
    if (f.id == exclude || f.src == rx) continue;
    if (same_channel(f.channel, channel)) {
      result.co = true;
    } else {
      // Only count inter-channel frames whose leaked energy clears the noise
      // floor; a transmission on the far side of the band is not a collision.
      const Mhz delta = frequency_distance(f.channel, channel);
      Db rejection = config_.rejection.attenuation(delta);
      if (f.emission != nullptr) {
        rejection = std::min(rejection, f.emission->attenuation(delta));
      }
      if (rss(f, rx) - rejection > config_.noise_floor) result.inter = true;
    }
  }
  return result;
}

}  // namespace nomc::phy
