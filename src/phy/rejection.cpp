#include "phy/rejection.hpp"

#include <cassert>

namespace nomc::phy {

// Calibrated anchors — do not retune casually; the integration test
// calibration_test.cpp and every figure bench depend on them.
ChannelRejection ChannelRejection::cc2420_decode() {
  return ChannelRejection{std::vector<Anchor>{
      {Mhz{0.0}, Db{0.0}},
      {Mhz{1.0}, Db{19.0}},
      {Mhz{2.0}, Db{25.5}},
      {Mhz{3.0}, Db{30.5}},
      {Mhz{4.0}, Db{34.0}},
      {Mhz{5.0}, Db{37.5}},
      {Mhz{6.0}, Db{41.0}},
      {Mhz{7.0}, Db{44.0}},
      {Mhz{9.0}, Db{52.0}},
      {Mhz{15.0}, Db{60.0}},
  }};
}

ChannelRejection ChannelRejection::cc2420_sensing() {
  return ChannelRejection{std::vector<Anchor>{
      {Mhz{0.0}, Db{0.0}},
      {Mhz{1.0}, Db{6.0}},
      {Mhz{2.0}, Db{14.0}},
      {Mhz{3.0}, Db{30.0}},
      {Mhz{4.0}, Db{33.0}},
      {Mhz{5.0}, Db{36.0}},
      {Mhz{6.0}, Db{40.0}},
      {Mhz{7.0}, Db{43.0}},
      {Mhz{9.0}, Db{48.0}},
      {Mhz{15.0}, Db{58.0}},
  }};
}

ChannelRejection::ChannelRejection() : ChannelRejection(cc2420_decode()) {}

ChannelRejection::ChannelRejection(std::vector<Anchor> anchors) : anchors_{std::move(anchors)} {
  assert(!anchors_.empty());
  assert(anchors_.front().offset.value == 0.0);
  for (std::size_t i = 1; i < anchors_.size(); ++i) {
    assert(anchors_[i].offset > anchors_[i - 1].offset);
    assert(anchors_[i].attenuation >= anchors_[i - 1].attenuation);
  }
}

Db ChannelRejection::attenuation(Mhz delta_f) const {
  const double d = delta_f.value < 0.0 ? -delta_f.value : delta_f.value;
  if (d >= anchors_.back().offset.value) return anchors_.back().attenuation;
  // Linear scan: the table is tiny and this sits on the hot path's cold side.
  for (std::size_t i = 1; i < anchors_.size(); ++i) {
    if (d <= anchors_[i].offset.value) {
      const auto& lo = anchors_[i - 1];
      const auto& hi = anchors_[i];
      const double t = (d - lo.offset.value) / (hi.offset.value - lo.offset.value);
      return Db{lo.attenuation.value + t * (hi.attenuation.value - lo.attenuation.value)};
    }
  }
  return anchors_.back().attenuation;
}

}  // namespace nomc::phy
