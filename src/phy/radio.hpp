// Radio transceiver state machine.
//
// Models what the CC2420 gives the MAC: half-duplex TX/RX on one tunable
// channel, an energy read (the RSSI_VAL register behind CCA), and packet
// reception with per-packet RSSI.
//
// Reception fidelity: the radio locks onto at most one frame at a time, and
// ONLY onto frames on its own channel — the 802.15.4 uniqueness the paper
// leans on (§III-B): inter-channel packets are never decoded, they only add
// interference energy. While locked, the reception is split into segments at
// every interference change-point; per segment, bit errors are drawn from
// the O-QPSK BER at that segment's SINR. A frame finishing with zero errors
// passes CRC; otherwise the error-bit fraction is reported (feeding the
// paper's Fig. 29 recovery analysis).
#pragma once

#include <optional>

#include "phy/energy.hpp"
#include "phy/frame.hpp"
#include "phy/medium.hpp"
#include "phy/modulation.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace nomc::phy {

/// Receives radio completion events; implemented by the MAC layer.
class RadioListener {
 public:
  virtual ~RadioListener() = default;
  /// A frame reception finished (intact or corrupted). Promiscuous: fires
  /// for every locked frame, not only ones addressed to this node — the
  /// DCN CCA-Adjustor feeds on overheard co-channel RSSI.
  virtual void on_rx(const RxResult& result) = 0;
  /// Our own transmission left the air.
  virtual void on_tx_done(const Frame& frame) = 0;
};

class Radio;

/// Routes committed transmissions in region-sharded runs (see
/// docs/parallel_trial.md). A transmission is *committed* when the MAC's CCA
/// decision is final: the frame hits the air a fixed turnaround later, and
/// nothing can revoke it. That turnaround is exactly the region executor's
/// lookahead, so a router can mirror the frame onto every other shard whose
/// extent the influence disc touches without ever needing to reach into the
/// current window.
class TxRouter {
 public:
  virtual ~TxRouter() = default;
  /// `frame` (src_pos already snapshotted) starts at absolute time `start`.
  /// `origin` is the committing radio; the router must make it transmit at
  /// `start` (honouring `skip_if_busy`: skip when the radio is mid-TX then,
  /// the control-frame rule) and mirror the frame wherever else it reaches.
  virtual void commit_tx(const Frame& frame, sim::SimTime start, Radio& origin,
                         bool skip_if_busy) = 0;
};

struct RadioConfig {
  Mhz channel{2460.0};
  Dbm sensitivity{-94.0};   ///< minimum effective RSS to lock onto a frame
  Db capture_margin{6.0};   ///< co-channel capture during preamble

  /// The receiver locks onto frames whose center frequency is within this
  /// distance of its own. 802.15.4 hardware only ever synchronizes to its
  /// exact channel (0.5 MHz => same-channel only) — the uniqueness the paper
  /// exploits. The 802.11b contrast model widens this to ~3 channels
  /// (Fig. 2: an 802.11 receiver is "forced to decode" overlapped-channel
  /// packets, losing the frame it actually wanted).
  Mhz lock_bandwidth{0.5};

  /// Demodulator used for bit-error draws.
  BerModel ber_model = BerModel::kOqpsk154;

  /// Supply-current model for energy accounting.
  EnergyModel energy{};

  /// Granularity of the per-block corruption map reported in RxResult
  /// (PPR-style recovery negotiates repairs in these units).
  int block_size_bytes = 16;
};

class Radio final : public MediumListener {
 public:
  enum class State { kIdle, kRx, kTx };

  Radio(sim::Scheduler& scheduler, Medium& medium, sim::RandomStream rng, NodeId self,
        RadioConfig config);
  ~Radio() override;
  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] NodeId node() const { return self_; }
  [[nodiscard]] Mhz channel() const { return config_.channel; }

  /// Retune. Only valid while idle (the MAC never retunes mid-frame).
  void set_channel(Mhz channel);

  void set_listener(RadioListener* listener) { listener_ = listener; }

  /// Instantaneous energy read on the tuned channel (CCA's input).
  [[nodiscard]] Dbm sense_energy() const;

  /// Put `frame` on the air now. Must not already be transmitting; an
  /// in-progress reception is abandoned (TX takes over, as on hardware).
  void transmit(const Frame& frame);

  /// Commit `frame` to the air `lead` from now, snapshotting the
  /// transmitter's position into frame.src_pos. Serial path: schedules
  /// transmit() and returns the cancellable event id. With a TxRouter
  /// attached the commitment is announced to it instead and kInvalidEventId
  /// is returned — a routed commitment is irrevocable, which is precisely
  /// what gives the region executor its conservative lookahead.
  /// `skip_if_busy` silently drops the frame if the radio is transmitting at
  /// fire time (control frames yield to an ongoing TX).
  sim::EventId schedule_tx(sim::SimTime lead, Frame frame, bool skip_if_busy = false);

  /// Attach a region router (nullptr detaches). Not owned.
  void set_tx_router(TxRouter* router) { router_ = router; }

  /// Abandon an in-progress reception, if any.
  void abort_rx();

  /// Energy consumed since construction, accounted up to the current
  /// simulated time (TX at the power-dependent current, everything else at
  /// the RX/listen current — a saturated mote never sleeps).
  [[nodiscard]] RadioEnergy energy_consumed();

  // MediumListener:
  void on_tx_start(const Frame& frame) override;
  void on_tx_end(const Frame& frame) override;

 private:
  struct RxContext {
    Frame frame;
    Dbm rssi{-300.0};
    sim::SimTime start;
    sim::SimTime last_boundary;
    std::int64_t bit_errors = 0;
    bool overlapped_co = false;
    bool overlapped_inter = false;
    std::vector<bool> dirty_blocks;  ///< per-block corruption accumulator
  };

  void lock_onto(const Frame& frame, Dbm rssi);
  /// Accumulate energy for [energy_mark_, t) at the current state's current.
  void account_energy_until(sim::SimTime t);
  /// Accumulate bit errors for [last_boundary, now) under the current
  /// interference set, then advance the boundary.
  void close_segment();
  void finish_rx();

  sim::Scheduler& scheduler_;
  Medium& medium_;
  sim::RandomStream rng_;
  NodeId self_;
  RadioConfig config_;
  RadioListener* listener_ = nullptr;
  TxRouter* router_ = nullptr;
  State state_ = State::kIdle;
  std::optional<RxContext> rx_;

  RadioEnergy energy_;
  sim::SimTime energy_mark_;       // accounted up to here
  Dbm tx_power_in_flight_{0.0};    // current of the frame being transmitted
};

}  // namespace nomc::phy
