// IEEE 802.15.4 (2.4 GHz O-QPSK) PHY/MAC timing constants.
//
// All constants follow the 2003/2006 standard as implemented by the CC2420
// radio the paper's MicaZ motes carry: 250 kb/s, 62.5 ksymbol/s, 4 bits per
// symbol.
#pragma once

#include "sim/time.hpp"

namespace nomc::phy {

inline constexpr double kBitRateBps = 250'000.0;
inline constexpr sim::SimTime kSymbolTime = sim::SimTime::microseconds(16);
inline constexpr sim::SimTime kBitTime = sim::SimTime::microseconds(4);

/// SHR (4-byte preamble + 1-byte SFD) + 1-byte PHR precede the PSDU.
inline constexpr int kPhyHeaderBytes = 6;

/// aUnitBackoffPeriod = 20 symbols.
inline constexpr sim::SimTime kUnitBackoff = sim::SimTime::microseconds(320);
/// CCA duration = 8 symbols (the CC2420 RSSI_VAL averaging window).
inline constexpr sim::SimTime kCcaDuration = sim::SimTime::microseconds(128);
/// aTurnaroundTime = 12 symbols (RX->TX switch after a clear CCA).
inline constexpr sim::SimTime kTurnaround = sim::SimTime::microseconds(192);

/// Air time of a frame with `psdu_bytes` of MAC-layer payload.
[[nodiscard]] constexpr sim::SimTime frame_duration(int psdu_bytes) {
  return (kPhyHeaderBytes + psdu_bytes) * 8 * kBitTime;
}

}  // namespace nomc::phy
