// Strong types for RF quantities.
//
// Power levels (dBm), power ratios (dB), linear power (mW) and frequency
// (MHz) are distinct types so the compiler rejects the classic bugs of this
// domain: adding two absolute levels, mixing linear and log scale, or passing
// a frequency where an offset is expected.
#pragma once

#include <cmath>
#include <compare>

namespace nomc::phy {

/// A power ratio / gain / attenuation in decibels.
struct Db {
  double value = 0.0;

  constexpr auto operator<=>(const Db&) const = default;
  [[nodiscard]] friend constexpr Db operator+(Db a, Db b) { return Db{a.value + b.value}; }
  [[nodiscard]] friend constexpr Db operator-(Db a, Db b) { return Db{a.value - b.value}; }
  [[nodiscard]] friend constexpr Db operator-(Db a) { return Db{-a.value}; }
  [[nodiscard]] friend constexpr Db operator*(double k, Db a) { return Db{k * a.value}; }
};

/// An absolute power level in dBm.
struct Dbm {
  double value = 0.0;

  constexpr auto operator<=>(const Dbm&) const = default;
  // Level +/- ratio stays a level; level - level is a ratio. Level + level
  // is intentionally not defined (use mW for combining signals).
  [[nodiscard]] friend constexpr Dbm operator+(Dbm a, Db b) { return Dbm{a.value + b.value}; }
  [[nodiscard]] friend constexpr Dbm operator-(Dbm a, Db b) { return Dbm{a.value - b.value}; }
  [[nodiscard]] friend constexpr Db operator-(Dbm a, Dbm b) { return Db{a.value - b.value}; }
};

/// Linear power in milliwatts; the only scale on which signals add.
struct MilliWatts {
  double value = 0.0;

  constexpr auto operator<=>(const MilliWatts&) const = default;
  [[nodiscard]] friend constexpr MilliWatts operator+(MilliWatts a, MilliWatts b) {
    return MilliWatts{a.value + b.value};
  }
  MilliWatts& operator+=(MilliWatts o) {
    value += o.value;
    return *this;
  }
};

[[nodiscard]] inline MilliWatts to_milliwatts(Dbm level) {
  return MilliWatts{std::pow(10.0, level.value / 10.0)};
}

[[nodiscard]] inline Dbm to_dbm(MilliWatts power) {
  // Zero linear power maps to the representable floor rather than -inf so
  // downstream comparisons stay ordinary.
  if (power.value <= 0.0) return Dbm{-300.0};
  return Dbm{10.0 * std::log10(power.value)};
}

/// A frequency or frequency offset in MHz. 802.15.4's 2.4 GHz band spans
/// 2405–2480 MHz; offsets (channel distances) reuse the same type.
struct Mhz {
  double value = 0.0;

  constexpr auto operator<=>(const Mhz&) const = default;
  [[nodiscard]] friend constexpr Mhz operator+(Mhz a, Mhz b) { return Mhz{a.value + b.value}; }
  [[nodiscard]] friend constexpr Mhz operator-(Mhz a, Mhz b) { return Mhz{a.value - b.value}; }
  [[nodiscard]] friend constexpr Mhz operator*(double k, Mhz a) { return Mhz{k * a.value}; }
};

[[nodiscard]] inline Mhz frequency_distance(Mhz a, Mhz b) {
  return Mhz{std::abs(a.value - b.value)};
}

/// Two frequencies within half an 802.15.4 symbol-rate of each other are the
/// same logical channel: receivers can lock on, and no rejection applies.
[[nodiscard]] inline bool same_channel(Mhz a, Mhz b) {
  return frequency_distance(a, b).value < 0.5;
}

}  // namespace nomc::phy
