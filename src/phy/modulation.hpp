// Modulation/demodulation error models.
//
// 802.15.4 2.4 GHz O-QPSK with DSSS: the standard analytic BER model
// (16-ary quasi-orthogonal symbols, as used by Zuniga & Krishnamachari and
// the ns-2/ns-3 802.15.4 error models). The curve has the steep cliff the
// paper's testbed shows: essentially error-free above ~3 dB SINR, hopeless
// below ~-3 dB.
#pragma once

namespace nomc::phy {

/// Bit error rate of 802.15.4 O-QPSK DSSS at the given SINR (dB).
[[nodiscard]] double oqpsk_ber(double sinr_db);

/// Packet error rate for `bits` independent bit decisions at rate `ber`.
[[nodiscard]] double packet_error_rate(double ber, int bits);

/// SINR (dB) at which a packet of `bits` has 50 % PER — the centre of the
/// reception cliff, used by tests and calibration.
[[nodiscard]] double sinr_for_per50(int bits);

/// Bit error rate of 802.11b 1 Mb/s DBPSK with 11-chip Barker spreading,
/// used only by the `wifi` contrast model (paper Fig. 2).
[[nodiscard]] double dsss_dbpsk_ber(double sinr_db);

/// Demodulator selector for Radio: the 802.15.4 O-QPSK model, or the
/// 802.11b DBPSK model used by the Fig. 2 contrast experiment.
enum class BerModel { kOqpsk154, kDsss11b };

[[nodiscard]] double ber(BerModel model, double sinr_db);

}  // namespace nomc::phy
