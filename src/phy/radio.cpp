#include "phy/radio.hpp"

#include <algorithm>
#include <cassert>

#include "phy/modulation.hpp"

namespace nomc::phy {
namespace {

/// The PSDU starts after the synchronization header + PHY header.
constexpr sim::SimTime phy_header_duration() {
  return kPhyHeaderBytes * 8 * kBitTime;
}

/// Capture window: a stronger co-channel frame can steal the receiver while
/// the current frame is still inside its synchronization header.
constexpr sim::SimTime capture_window() { return phy_header_duration(); }

}  // namespace

Radio::Radio(sim::Scheduler& scheduler, Medium& medium, sim::RandomStream rng, NodeId self,
             RadioConfig config)
    : scheduler_{scheduler},
      medium_{medium},
      rng_{std::move(rng)},
      self_{self},
      config_{config} {
  medium_.add_listener(this, self_);
}

Radio::~Radio() { medium_.remove_listener(this); }

void Radio::set_channel(Mhz channel) {
  assert(state_ == State::kIdle && "retuning mid-frame is not modelled");
  config_.channel = channel;
}

Dbm Radio::sense_energy() const { return medium_.sense_energy(self_, config_.channel); }

void Radio::account_energy_until(sim::SimTime t) {
  if (t <= energy_mark_) return;
  const sim::SimTime span = t - energy_mark_;
  if (state_ == State::kTx) {
    energy_.tx_mj +=
        config_.energy.energy_mj(span, config_.energy.tx_current_ma(tx_power_in_flight_));
  } else {
    energy_.listen_mj += config_.energy.energy_mj(span, config_.energy.rx_current_ma());
  }
  energy_mark_ = t;
}

RadioEnergy Radio::energy_consumed() {
  account_energy_until(scheduler_.now());
  return energy_;
}

void Radio::transmit(const Frame& frame) {
  assert(state_ != State::kTx && "radio is half-duplex");
  assert(frame.src == self_);
  assert(frame.id != 0);
  if (state_ == State::kRx) abort_rx();

  account_energy_until(scheduler_.now());  // close the listen stretch
  state_ = State::kTx;
  tx_power_in_flight_ = frame.tx_power;
  if (scheduler_.trace() != nullptr) {
    scheduler_.trace_event({.category = "phy", .event = "tx_start", .node = self_,
                            .value = frame.tx_power.value});
  }
  medium_.begin_tx(frame);
  scheduler_.schedule_in(frame.duration(), [this, frame] {
    account_energy_until(scheduler_.now());  // close the TX stretch
    medium_.end_tx(frame.id);
    state_ = State::kIdle;
    if (listener_ != nullptr) listener_->on_tx_done(frame);
  });
}

sim::EventId Radio::schedule_tx(sim::SimTime lead, Frame frame, bool skip_if_busy) {
  frame.src_pos = medium_.position(self_);
  if (router_ != nullptr) {
    router_->commit_tx(frame, scheduler_.now() + lead, *this, skip_if_busy);
    return sim::kInvalidEventId;
  }
  if (skip_if_busy) {
    return scheduler_.schedule_in(lead, [this, frame] {
      if (state_ == State::kTx) return;
      transmit(frame);
    });
  }
  return scheduler_.schedule_in(lead, [this, frame] { transmit(frame); });
}

void Radio::abort_rx() {
  if (state_ != State::kRx) return;
  // The abandoned frame simply vanishes from this node's point of view, as
  // on hardware: no callback fires.
  rx_.reset();
  state_ = State::kIdle;
}

void Radio::lock_onto(const Frame& frame, Dbm rssi) {
  RxContext ctx;
  ctx.frame = frame;
  ctx.rssi = rssi;
  ctx.start = scheduler_.now();
  ctx.last_boundary = ctx.start;
  if (config_.block_size_bytes > 0 && frame.psdu_bytes > 0) {
    const int blocks =
        (frame.psdu_bytes + config_.block_size_bytes - 1) / config_.block_size_bytes;
    ctx.dirty_blocks.assign(static_cast<std::size_t>(blocks), false);
  }
  // Frames already on the air when we lock count as overlap (e.g. locking
  // between two attacker frames, or onto a frame that started under an
  // ongoing inter-channel transmission).
  const Medium::Overlap existing = medium_.overlap(self_, config_.channel, frame.id);
  ctx.overlapped_co = existing.co;
  ctx.overlapped_inter = existing.inter;
  rx_ = ctx;
  state_ = State::kRx;
}

void Radio::close_segment() {
  assert(rx_.has_value());
  const sim::SimTime now = scheduler_.now();
  if (now <= rx_->last_boundary) return;

  // Errors accumulate only over the PSDU portion of the frame; the model
  // treats the synchronization header as either wholly captured at lock time
  // or wholly lost (no lock), which matches how the testbed counts "received
  // with error bits" (preamble was detected, payload was damaged).
  const sim::SimTime psdu_start = rx_->start + phy_header_duration();
  const sim::SimTime lo = rx_->last_boundary > psdu_start ? rx_->last_boundary : psdu_start;
  if (now > lo) {
    const std::int64_t bits = (now - lo) / kBitTime;
    if (bits > 0) {
      const Dbm interference = medium_.interference(self_, config_.channel, rx_->frame.id);
      const double sinr_db = (rx_->rssi - interference).value;
      const double bit_error_rate = ber(config_.ber_model, sinr_db);
      if (rx_->dirty_blocks.empty()) {
        rx_->bit_errors += rng_.binomial(bits, bit_error_rate);
      } else {
        // Per-block accounting: split the segment's bits across the blocks
        // they belong to and draw each block's errors independently — same
        // marginal distribution as one draw, plus the corruption map PPR
        // needs. Bit offsets are relative to the PSDU start.
        const std::int64_t first_bit = (lo - psdu_start) / kBitTime;
        const std::int64_t block_bits = std::int64_t{8} * config_.block_size_bytes;
        std::int64_t remaining = bits;
        std::int64_t bit = first_bit;
        while (remaining > 0) {
          const auto block = static_cast<std::size_t>(bit / block_bits);
          const std::int64_t in_block = std::min(remaining, block_bits - bit % block_bits);
          if (block < rx_->dirty_blocks.size()) {
            const std::int64_t errors = rng_.binomial(in_block, bit_error_rate);
            if (errors > 0) {
              rx_->bit_errors += errors;
              rx_->dirty_blocks[block] = true;
            }
          }
          bit += in_block;
          remaining -= in_block;
        }
      }
    }
  }
  rx_->last_boundary = now;
}

void Radio::finish_rx() {
  assert(rx_.has_value());
  RxResult result;
  result.frame = rx_->frame;
  result.rssi = rx_->rssi;
  result.bit_errors = static_cast<int>(rx_->bit_errors);
  result.crc_ok = rx_->bit_errors == 0;
  const int total_bits = rx_->frame.psdu_bits();
  result.error_fraction =
      total_bits > 0 ? static_cast<double>(rx_->bit_errors) / total_bits : 0.0;
  result.overlapped_co = rx_->overlapped_co;
  result.overlapped_inter = rx_->overlapped_inter;
  result.block_errors = std::move(rx_->dirty_blocks);

  rx_.reset();
  state_ = State::kIdle;
  if (scheduler_.trace() != nullptr) {
    scheduler_.trace_event({.category = "phy",
                            .event = result.crc_ok ? "rx_ok" : "rx_fail",
                            .node = self_,
                            .value = result.error_fraction});
  }
  if (listener_ != nullptr) listener_->on_rx(result);
}

void Radio::on_tx_start(const Frame& frame) {
  if (frame.src == self_) return;  // own transmission

  const bool co_channel = same_channel(frame.channel, config_.channel);

  if (state_ == State::kIdle) {
    // Lock policy: 802.15.4 radios only synchronize to their exact channel;
    // the 802.11b model (wider lock_bandwidth) also locks onto overlapped
    // channels, at the rejection-filtered effective signal strength.
    const Mhz delta = frequency_distance(frame.channel, config_.channel);
    if (delta < config_.lock_bandwidth) {
      const Db rejection = medium_.rejection().attenuation(delta);
      const Dbm rssi = medium_.rss(frame, self_) - rejection;
      if (rssi >= config_.sensitivity) lock_onto(frame, rssi);
    }
    return;
  }

  if (state_ == State::kRx) {
    // Interference set changes now: account for the elapsed segment first.
    close_segment();
    if (co_channel) {
      rx_->overlapped_co = true;
      const Dbm rssi = medium_.rss(frame, self_);
      // Preamble capture: a sufficiently stronger co-channel frame steals the
      // receiver if the current frame is still in its sync header.
      const bool in_capture_window = scheduler_.now() - rx_->start < capture_window();
      if (in_capture_window && rssi >= rx_->rssi + config_.capture_margin) {
        rx_.reset();
        state_ = State::kIdle;
        lock_onto(frame, rssi);
        // The stolen-from frame is still on the air: it overlaps the new one.
        rx_->overlapped_co = true;
      }
    } else {
      const Mhz delta = frequency_distance(frame.channel, config_.channel);
      Db rejection = medium_.rejection().attenuation(delta);
      if (frame.emission != nullptr) {
        rejection = std::min(rejection, frame.emission->attenuation(delta));
      }
      if (medium_.rss(frame, self_) - rejection > medium_.noise_floor()) {
        rx_->overlapped_inter = true;
      }
    }
  }
  // State kTx: nothing to do; we are deaf while transmitting.
}

void Radio::on_tx_end(const Frame& frame) {
  if (frame.src == self_) return;
  if (state_ != State::kRx) return;

  if (frame.id == rx_->frame.id) {
    close_segment();
    finish_rx();
  } else {
    // An interferer left the air: close the segment it participated in.
    close_segment();
  }
}

}  // namespace nomc::phy
