# Empty dependencies file for nomc_sim_tool.
# This may be replaced when dependencies are built.
