file(REMOVE_RECURSE
  "CMakeFiles/nomc_sim_tool.dir/nomc_sim.cpp.o"
  "CMakeFiles/nomc_sim_tool.dir/nomc_sim.cpp.o.d"
  "nomc-sim"
  "nomc-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomc_sim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
