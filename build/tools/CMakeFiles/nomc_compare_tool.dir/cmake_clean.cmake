file(REMOVE_RECURSE
  "CMakeFiles/nomc_compare_tool.dir/nomc_compare.cpp.o"
  "CMakeFiles/nomc_compare_tool.dir/nomc_compare.cpp.o.d"
  "nomc-compare"
  "nomc-compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomc_compare_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
