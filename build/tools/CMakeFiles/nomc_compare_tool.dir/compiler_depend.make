# Empty compiler generated dependencies file for nomc_compare_tool.
# This may be replaced when dependencies are built.
