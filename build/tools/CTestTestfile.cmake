# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_nomc_sim_help "/root/repo/build/tools/nomc-sim" "--help")
set_tests_properties(tool_nomc_sim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_nomc_sim_run "/root/repo/build/tools/nomc-sim" "--channels" "2" "--measure" "2" "--power" "0")
set_tests_properties(tool_nomc_sim_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_nomc_compare_run "/root/repo/build/tools/nomc-compare" "--trials" "2" "--measure" "2" "--a-channels" "2" "--b-channels" "3" "--power" "0")
set_tests_properties(tool_nomc_compare_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_nomc_sim_rejects_bad_flag "/root/repo/build/tools/nomc-sim" "--bogus")
set_tests_properties(tool_nomc_sim_rejects_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
