# Empty dependencies file for data_collection.
# This may be replaced when dependencies are built.
