file(REMOVE_RECURSE
  "CMakeFiles/data_collection.dir/data_collection.cpp.o"
  "CMakeFiles/data_collection.dir/data_collection.cpp.o.d"
  "data_collection"
  "data_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
