# Empty compiler generated dependencies file for office_building.
# This may be replaced when dependencies are built.
