file(REMOVE_RECURSE
  "CMakeFiles/office_building.dir/office_building.cpp.o"
  "CMakeFiles/office_building.dir/office_building.cpp.o.d"
  "office_building"
  "office_building.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/office_building.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
