
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/nomc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/nomc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/nomc_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/nomc_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/dcn/CMakeFiles/nomc_dcn.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/nomc_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/nomc_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nomc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
