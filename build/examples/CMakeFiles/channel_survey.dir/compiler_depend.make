# Empty compiler generated dependencies file for channel_survey.
# This may be replaced when dependencies are built.
