file(REMOVE_RECURSE
  "CMakeFiles/channel_survey.dir/channel_survey.cpp.o"
  "CMakeFiles/channel_survey.dir/channel_survey.cpp.o.d"
  "channel_survey"
  "channel_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
