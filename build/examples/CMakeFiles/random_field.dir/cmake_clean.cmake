file(REMOVE_RECURSE
  "CMakeFiles/random_field.dir/random_field.cpp.o"
  "CMakeFiles/random_field.dir/random_field.cpp.o.d"
  "random_field"
  "random_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
