# Empty dependencies file for random_field.
# This may be replaced when dependencies are built.
