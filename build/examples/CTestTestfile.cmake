# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dense_deployment "/root/repo/build/examples/dense_deployment")
set_tests_properties(example_dense_deployment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_office_building "/root/repo/build/examples/office_building")
set_tests_properties(example_office_building PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_random_field "/root/repo/build/examples/random_field")
set_tests_properties(example_random_field PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_channel_survey "/root/repo/build/examples/channel_survey")
set_tests_properties(example_channel_survey PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_coexistence "/root/repo/build/examples/coexistence")
set_tests_properties(example_coexistence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_data_collection "/root/repo/build/examples/data_collection")
set_tests_properties(example_data_collection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
