file(REMOVE_RECURSE
  "CMakeFiles/wifi_tests.dir/wifi/contrast_test.cpp.o"
  "CMakeFiles/wifi_tests.dir/wifi/contrast_test.cpp.o.d"
  "CMakeFiles/wifi_tests.dir/wifi/interferer_test.cpp.o"
  "CMakeFiles/wifi_tests.dir/wifi/interferer_test.cpp.o.d"
  "wifi_tests"
  "wifi_tests.pdb"
  "wifi_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wifi_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
