# Empty dependencies file for wifi_tests.
# This may be replaced when dependencies are built.
