file(REMOVE_RECURSE
  "CMakeFiles/ppr_tests.dir/ppr/ppr_test.cpp.o"
  "CMakeFiles/ppr_tests.dir/ppr/ppr_test.cpp.o.d"
  "ppr_tests"
  "ppr_tests.pdb"
  "ppr_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppr_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
