# Empty dependencies file for ppr_tests.
# This may be replaced when dependencies are built.
