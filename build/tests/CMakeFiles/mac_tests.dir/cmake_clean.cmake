file(REMOVE_RECURSE
  "CMakeFiles/mac_tests.dir/mac/ack_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/ack_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/attacker_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/attacker_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/cca_mode_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/cca_mode_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/csma_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/csma_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/traffic_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/traffic_test.cpp.o.d"
  "mac_tests"
  "mac_tests.pdb"
  "mac_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
