file(REMOVE_RECURSE
  "CMakeFiles/dcn_tests.dir/dcn/adjustor_test.cpp.o"
  "CMakeFiles/dcn_tests.dir/dcn/adjustor_test.cpp.o.d"
  "CMakeFiles/dcn_tests.dir/dcn/recovery_test.cpp.o"
  "CMakeFiles/dcn_tests.dir/dcn/recovery_test.cpp.o.d"
  "dcn_tests"
  "dcn_tests.pdb"
  "dcn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
