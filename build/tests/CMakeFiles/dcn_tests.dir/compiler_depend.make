# Empty compiler generated dependencies file for dcn_tests.
# This may be replaced when dependencies are built.
