file(REMOVE_RECURSE
  "CMakeFiles/collect_tests.dir/collect/collection_test.cpp.o"
  "CMakeFiles/collect_tests.dir/collect/collection_test.cpp.o.d"
  "collect_tests"
  "collect_tests.pdb"
  "collect_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collect_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
