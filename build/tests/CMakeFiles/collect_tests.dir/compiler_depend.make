# Empty compiler generated dependencies file for collect_tests.
# This may be replaced when dependencies are built.
