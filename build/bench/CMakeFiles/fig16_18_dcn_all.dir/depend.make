# Empty dependencies file for fig16_18_dcn_all.
# This may be replaced when dependencies are built.
