file(REMOVE_RECURSE
  "CMakeFiles/fig16_18_dcn_all.dir/fig16_18_dcn_all.cpp.o"
  "CMakeFiles/fig16_18_dcn_all.dir/fig16_18_dcn_all.cpp.o.d"
  "fig16_18_dcn_all"
  "fig16_18_dcn_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_18_dcn_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
