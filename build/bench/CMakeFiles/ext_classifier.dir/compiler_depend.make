# Empty compiler generated dependencies file for ext_classifier.
# This may be replaced when dependencies are built.
