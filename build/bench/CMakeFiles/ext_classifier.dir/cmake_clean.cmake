file(REMOVE_RECURSE
  "CMakeFiles/ext_classifier.dir/ext_classifier.cpp.o"
  "CMakeFiles/ext_classifier.dir/ext_classifier.cpp.o.d"
  "ext_classifier"
  "ext_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
