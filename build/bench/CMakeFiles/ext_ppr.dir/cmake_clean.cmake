file(REMOVE_RECURSE
  "CMakeFiles/ext_ppr.dir/ext_ppr.cpp.o"
  "CMakeFiles/ext_ppr.dir/ext_ppr.cpp.o.d"
  "ext_ppr"
  "ext_ppr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ppr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
