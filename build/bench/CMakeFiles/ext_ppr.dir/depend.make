# Empty dependencies file for ext_ppr.
# This may be replaced when dependencies are built.
