file(REMOVE_RECURSE
  "CMakeFiles/fig25_27_cases.dir/fig25_27_cases.cpp.o"
  "CMakeFiles/fig25_27_cases.dir/fig25_27_cases.cpp.o.d"
  "fig25_27_cases"
  "fig25_27_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_27_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
