# Empty dependencies file for fig25_27_cases.
# This may be replaced when dependencies are built.
