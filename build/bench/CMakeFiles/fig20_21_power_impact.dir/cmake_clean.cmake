file(REMOVE_RECURSE
  "CMakeFiles/fig20_21_power_impact.dir/fig20_21_power_impact.cpp.o"
  "CMakeFiles/fig20_21_power_impact.dir/fig20_21_power_impact.cpp.o.d"
  "fig20_21_power_impact"
  "fig20_21_power_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_21_power_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
