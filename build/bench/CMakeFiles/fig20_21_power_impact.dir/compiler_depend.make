# Empty compiler generated dependencies file for fig20_21_power_impact.
# This may be replaced when dependencies are built.
