# Empty dependencies file for fig04_cprr.
# This may be replaced when dependencies are built.
