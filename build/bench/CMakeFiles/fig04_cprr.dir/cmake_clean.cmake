file(REMOVE_RECURSE
  "CMakeFiles/fig04_cprr.dir/fig04_cprr.cpp.o"
  "CMakeFiles/fig04_cprr.dir/fig04_cprr.cpp.o.d"
  "fig04_cprr"
  "fig04_cprr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_cprr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
