file(REMOVE_RECURSE
  "CMakeFiles/fig06_07_cca_no_cochannel.dir/fig06_07_cca_no_cochannel.cpp.o"
  "CMakeFiles/fig06_07_cca_no_cochannel.dir/fig06_07_cca_no_cochannel.cpp.o.d"
  "fig06_07_cca_no_cochannel"
  "fig06_07_cca_no_cochannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_07_cca_no_cochannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
