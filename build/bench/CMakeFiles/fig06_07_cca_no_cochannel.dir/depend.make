# Empty dependencies file for fig06_07_cca_no_cochannel.
# This may be replaced when dependencies are built.
