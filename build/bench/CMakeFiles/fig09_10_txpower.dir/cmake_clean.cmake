file(REMOVE_RECURSE
  "CMakeFiles/fig09_10_txpower.dir/fig09_10_txpower.cpp.o"
  "CMakeFiles/fig09_10_txpower.dir/fig09_10_txpower.cpp.o.d"
  "fig09_10_txpower"
  "fig09_10_txpower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_10_txpower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
