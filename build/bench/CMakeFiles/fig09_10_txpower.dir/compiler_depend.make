# Empty compiler generated dependencies file for fig09_10_txpower.
# This may be replaced when dependencies are built.
