file(REMOVE_RECURSE
  "CMakeFiles/fig19_zigbee_vs_dcn.dir/fig19_zigbee_vs_dcn.cpp.o"
  "CMakeFiles/fig19_zigbee_vs_dcn.dir/fig19_zigbee_vs_dcn.cpp.o.d"
  "fig19_zigbee_vs_dcn"
  "fig19_zigbee_vs_dcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_zigbee_vs_dcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
