# Empty dependencies file for fig19_zigbee_vs_dcn.
# This may be replaced when dependencies are built.
