file(REMOVE_RECURSE
  "CMakeFiles/fig28_29_recovery.dir/fig28_29_recovery.cpp.o"
  "CMakeFiles/fig28_29_recovery.dir/fig28_29_recovery.cpp.o.d"
  "fig28_29_recovery"
  "fig28_29_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig28_29_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
