# Empty compiler generated dependencies file for fig28_29_recovery.
# This may be replaced when dependencies are built.
