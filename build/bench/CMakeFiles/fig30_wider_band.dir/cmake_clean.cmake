file(REMOVE_RECURSE
  "CMakeFiles/fig30_wider_band.dir/fig30_wider_band.cpp.o"
  "CMakeFiles/fig30_wider_band.dir/fig30_wider_band.cpp.o.d"
  "fig30_wider_band"
  "fig30_wider_band.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig30_wider_band.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
