# Empty compiler generated dependencies file for fig30_wider_band.
# This may be replaced when dependencies are built.
