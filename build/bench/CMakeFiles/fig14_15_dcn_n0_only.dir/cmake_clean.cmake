file(REMOVE_RECURSE
  "CMakeFiles/fig14_15_dcn_n0_only.dir/fig14_15_dcn_n0_only.cpp.o"
  "CMakeFiles/fig14_15_dcn_n0_only.dir/fig14_15_dcn_n0_only.cpp.o.d"
  "fig14_15_dcn_n0_only"
  "fig14_15_dcn_n0_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_15_dcn_n0_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
