# Empty dependencies file for fig14_15_dcn_n0_only.
# This may be replaced when dependencies are built.
