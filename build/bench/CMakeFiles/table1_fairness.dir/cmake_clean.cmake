file(REMOVE_RECURSE
  "CMakeFiles/table1_fairness.dir/table1_fairness.cpp.o"
  "CMakeFiles/table1_fairness.dir/table1_fairness.cpp.o.d"
  "table1_fairness"
  "table1_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
