# Empty dependencies file for table1_fairness.
# This may be replaced when dependencies are built.
