# Empty compiler generated dependencies file for fig02_uniqueness.
# This may be replaced when dependencies are built.
