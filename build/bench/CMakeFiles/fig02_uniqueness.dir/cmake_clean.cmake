file(REMOVE_RECURSE
  "CMakeFiles/fig02_uniqueness.dir/fig02_uniqueness.cpp.o"
  "CMakeFiles/fig02_uniqueness.dir/fig02_uniqueness.cpp.o.d"
  "fig02_uniqueness"
  "fig02_uniqueness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_uniqueness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
