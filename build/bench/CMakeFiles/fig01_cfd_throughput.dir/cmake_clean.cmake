file(REMOVE_RECURSE
  "CMakeFiles/fig01_cfd_throughput.dir/fig01_cfd_throughput.cpp.o"
  "CMakeFiles/fig01_cfd_throughput.dir/fig01_cfd_throughput.cpp.o.d"
  "fig01_cfd_throughput"
  "fig01_cfd_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_cfd_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
