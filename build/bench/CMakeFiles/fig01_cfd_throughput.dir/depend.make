# Empty dependencies file for fig01_cfd_throughput.
# This may be replaced when dependencies are built.
