file(REMOVE_RECURSE
  "CMakeFiles/fig08_cca_cochannel.dir/fig08_cca_cochannel.cpp.o"
  "CMakeFiles/fig08_cca_cochannel.dir/fig08_cca_cochannel.cpp.o.d"
  "fig08_cca_cochannel"
  "fig08_cca_cochannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cca_cochannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
