# Empty compiler generated dependencies file for fig08_cca_cochannel.
# This may be replaced when dependencies are built.
