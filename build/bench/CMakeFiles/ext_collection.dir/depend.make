# Empty dependencies file for ext_collection.
# This may be replaced when dependencies are built.
