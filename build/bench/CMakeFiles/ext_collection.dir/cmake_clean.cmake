file(REMOVE_RECURSE
  "CMakeFiles/ext_collection.dir/ext_collection.cpp.o"
  "CMakeFiles/ext_collection.dir/ext_collection.cpp.o.d"
  "ext_collection"
  "ext_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
