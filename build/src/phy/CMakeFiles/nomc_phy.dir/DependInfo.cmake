
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/channel_plan.cpp" "src/phy/CMakeFiles/nomc_phy.dir/channel_plan.cpp.o" "gcc" "src/phy/CMakeFiles/nomc_phy.dir/channel_plan.cpp.o.d"
  "/root/repo/src/phy/energy.cpp" "src/phy/CMakeFiles/nomc_phy.dir/energy.cpp.o" "gcc" "src/phy/CMakeFiles/nomc_phy.dir/energy.cpp.o.d"
  "/root/repo/src/phy/medium.cpp" "src/phy/CMakeFiles/nomc_phy.dir/medium.cpp.o" "gcc" "src/phy/CMakeFiles/nomc_phy.dir/medium.cpp.o.d"
  "/root/repo/src/phy/modulation.cpp" "src/phy/CMakeFiles/nomc_phy.dir/modulation.cpp.o" "gcc" "src/phy/CMakeFiles/nomc_phy.dir/modulation.cpp.o.d"
  "/root/repo/src/phy/path_loss.cpp" "src/phy/CMakeFiles/nomc_phy.dir/path_loss.cpp.o" "gcc" "src/phy/CMakeFiles/nomc_phy.dir/path_loss.cpp.o.d"
  "/root/repo/src/phy/radio.cpp" "src/phy/CMakeFiles/nomc_phy.dir/radio.cpp.o" "gcc" "src/phy/CMakeFiles/nomc_phy.dir/radio.cpp.o.d"
  "/root/repo/src/phy/rejection.cpp" "src/phy/CMakeFiles/nomc_phy.dir/rejection.cpp.o" "gcc" "src/phy/CMakeFiles/nomc_phy.dir/rejection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nomc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
