file(REMOVE_RECURSE
  "CMakeFiles/nomc_phy.dir/channel_plan.cpp.o"
  "CMakeFiles/nomc_phy.dir/channel_plan.cpp.o.d"
  "CMakeFiles/nomc_phy.dir/energy.cpp.o"
  "CMakeFiles/nomc_phy.dir/energy.cpp.o.d"
  "CMakeFiles/nomc_phy.dir/medium.cpp.o"
  "CMakeFiles/nomc_phy.dir/medium.cpp.o.d"
  "CMakeFiles/nomc_phy.dir/modulation.cpp.o"
  "CMakeFiles/nomc_phy.dir/modulation.cpp.o.d"
  "CMakeFiles/nomc_phy.dir/path_loss.cpp.o"
  "CMakeFiles/nomc_phy.dir/path_loss.cpp.o.d"
  "CMakeFiles/nomc_phy.dir/radio.cpp.o"
  "CMakeFiles/nomc_phy.dir/radio.cpp.o.d"
  "CMakeFiles/nomc_phy.dir/rejection.cpp.o"
  "CMakeFiles/nomc_phy.dir/rejection.cpp.o.d"
  "libnomc_phy.a"
  "libnomc_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomc_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
