# Empty dependencies file for nomc_phy.
# This may be replaced when dependencies are built.
