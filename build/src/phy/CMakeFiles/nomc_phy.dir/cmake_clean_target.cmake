file(REMOVE_RECURSE
  "libnomc_phy.a"
)
