file(REMOVE_RECURSE
  "libnomc_collect.a"
)
