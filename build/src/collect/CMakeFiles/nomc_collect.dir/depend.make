# Empty dependencies file for nomc_collect.
# This may be replaced when dependencies are built.
