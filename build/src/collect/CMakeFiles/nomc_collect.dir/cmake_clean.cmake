file(REMOVE_RECURSE
  "CMakeFiles/nomc_collect.dir/collection.cpp.o"
  "CMakeFiles/nomc_collect.dir/collection.cpp.o.d"
  "libnomc_collect.a"
  "libnomc_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomc_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
