file(REMOVE_RECURSE
  "libnomc_dcn.a"
)
