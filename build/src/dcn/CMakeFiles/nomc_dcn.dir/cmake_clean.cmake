file(REMOVE_RECURSE
  "CMakeFiles/nomc_dcn.dir/cca_adjustor.cpp.o"
  "CMakeFiles/nomc_dcn.dir/cca_adjustor.cpp.o.d"
  "CMakeFiles/nomc_dcn.dir/recovery.cpp.o"
  "CMakeFiles/nomc_dcn.dir/recovery.cpp.o.d"
  "libnomc_dcn.a"
  "libnomc_dcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomc_dcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
