# Empty compiler generated dependencies file for nomc_dcn.
# This may be replaced when dependencies are built.
