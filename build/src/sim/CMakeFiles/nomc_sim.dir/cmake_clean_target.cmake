file(REMOVE_RECURSE
  "libnomc_sim.a"
)
