# Empty compiler generated dependencies file for nomc_sim.
# This may be replaced when dependencies are built.
