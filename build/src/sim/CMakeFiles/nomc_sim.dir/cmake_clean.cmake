file(REMOVE_RECURSE
  "CMakeFiles/nomc_sim.dir/random.cpp.o"
  "CMakeFiles/nomc_sim.dir/random.cpp.o.d"
  "CMakeFiles/nomc_sim.dir/scheduler.cpp.o"
  "CMakeFiles/nomc_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/nomc_sim.dir/time.cpp.o"
  "CMakeFiles/nomc_sim.dir/time.cpp.o.d"
  "CMakeFiles/nomc_sim.dir/trace.cpp.o"
  "CMakeFiles/nomc_sim.dir/trace.cpp.o.d"
  "libnomc_sim.a"
  "libnomc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
