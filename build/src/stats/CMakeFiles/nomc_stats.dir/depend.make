# Empty dependencies file for nomc_stats.
# This may be replaced when dependencies are built.
