file(REMOVE_RECURSE
  "CMakeFiles/nomc_stats.dir/cdf.cpp.o"
  "CMakeFiles/nomc_stats.dir/cdf.cpp.o.d"
  "CMakeFiles/nomc_stats.dir/fairness.cpp.o"
  "CMakeFiles/nomc_stats.dir/fairness.cpp.o.d"
  "CMakeFiles/nomc_stats.dir/summary.cpp.o"
  "CMakeFiles/nomc_stats.dir/summary.cpp.o.d"
  "CMakeFiles/nomc_stats.dir/table.cpp.o"
  "CMakeFiles/nomc_stats.dir/table.cpp.o.d"
  "libnomc_stats.a"
  "libnomc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
