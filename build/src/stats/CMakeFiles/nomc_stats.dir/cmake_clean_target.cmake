file(REMOVE_RECURSE
  "libnomc_stats.a"
)
