# Empty dependencies file for nomc_cli.
# This may be replaced when dependencies are built.
