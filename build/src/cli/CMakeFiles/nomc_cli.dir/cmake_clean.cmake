file(REMOVE_RECURSE
  "CMakeFiles/nomc_cli.dir/args.cpp.o"
  "CMakeFiles/nomc_cli.dir/args.cpp.o.d"
  "libnomc_cli.a"
  "libnomc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
