file(REMOVE_RECURSE
  "libnomc_cli.a"
)
