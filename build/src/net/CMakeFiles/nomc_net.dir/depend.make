# Empty dependencies file for nomc_net.
# This may be replaced when dependencies are built.
