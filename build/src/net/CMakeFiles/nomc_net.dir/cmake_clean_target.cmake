file(REMOVE_RECURSE
  "libnomc_net.a"
)
