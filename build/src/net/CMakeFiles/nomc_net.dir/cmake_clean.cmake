file(REMOVE_RECURSE
  "CMakeFiles/nomc_net.dir/scenario.cpp.o"
  "CMakeFiles/nomc_net.dir/scenario.cpp.o.d"
  "CMakeFiles/nomc_net.dir/topology.cpp.o"
  "CMakeFiles/nomc_net.dir/topology.cpp.o.d"
  "libnomc_net.a"
  "libnomc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
