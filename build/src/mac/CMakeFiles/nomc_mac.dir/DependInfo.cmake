
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/attacker.cpp" "src/mac/CMakeFiles/nomc_mac.dir/attacker.cpp.o" "gcc" "src/mac/CMakeFiles/nomc_mac.dir/attacker.cpp.o.d"
  "/root/repo/src/mac/csma.cpp" "src/mac/CMakeFiles/nomc_mac.dir/csma.cpp.o" "gcc" "src/mac/CMakeFiles/nomc_mac.dir/csma.cpp.o.d"
  "/root/repo/src/mac/traffic.cpp" "src/mac/CMakeFiles/nomc_mac.dir/traffic.cpp.o" "gcc" "src/mac/CMakeFiles/nomc_mac.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/nomc_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/nomc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nomc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
