# Empty compiler generated dependencies file for nomc_mac.
# This may be replaced when dependencies are built.
