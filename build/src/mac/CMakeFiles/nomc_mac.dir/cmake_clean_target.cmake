file(REMOVE_RECURSE
  "libnomc_mac.a"
)
