file(REMOVE_RECURSE
  "CMakeFiles/nomc_mac.dir/attacker.cpp.o"
  "CMakeFiles/nomc_mac.dir/attacker.cpp.o.d"
  "CMakeFiles/nomc_mac.dir/csma.cpp.o"
  "CMakeFiles/nomc_mac.dir/csma.cpp.o.d"
  "CMakeFiles/nomc_mac.dir/traffic.cpp.o"
  "CMakeFiles/nomc_mac.dir/traffic.cpp.o.d"
  "libnomc_mac.a"
  "libnomc_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomc_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
