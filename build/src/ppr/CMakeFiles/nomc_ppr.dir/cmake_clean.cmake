file(REMOVE_RECURSE
  "CMakeFiles/nomc_ppr.dir/ppr.cpp.o"
  "CMakeFiles/nomc_ppr.dir/ppr.cpp.o.d"
  "libnomc_ppr.a"
  "libnomc_ppr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomc_ppr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
