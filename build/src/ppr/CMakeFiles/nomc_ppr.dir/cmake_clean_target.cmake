file(REMOVE_RECURSE
  "libnomc_ppr.a"
)
