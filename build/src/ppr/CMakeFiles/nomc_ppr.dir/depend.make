# Empty dependencies file for nomc_ppr.
# This may be replaced when dependencies are built.
