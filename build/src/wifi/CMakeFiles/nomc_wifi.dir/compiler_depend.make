# Empty compiler generated dependencies file for nomc_wifi.
# This may be replaced when dependencies are built.
