file(REMOVE_RECURSE
  "CMakeFiles/nomc_wifi.dir/contrast.cpp.o"
  "CMakeFiles/nomc_wifi.dir/contrast.cpp.o.d"
  "CMakeFiles/nomc_wifi.dir/interferer.cpp.o"
  "CMakeFiles/nomc_wifi.dir/interferer.cpp.o.d"
  "libnomc_wifi.a"
  "libnomc_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nomc_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
