file(REMOVE_RECURSE
  "libnomc_wifi.a"
)
