// Office-building deployment (the paper's Case II, Fig. 23).
//
// Scenario: a building automation install — each office room runs its own
// sensor network (HVAC + occupancy) on its own channel; rooms are adjacent
// along corridors. Inter-channel interference only crosses room boundaries,
// so it is weaker than in the dense case — and DCN's incremental gain is
// correspondingly smaller (the paper measures +10.4 % here vs +14.7 %
// dense). This example reports per-room statistics and shows where the
// remaining gain comes from (rooms at corridor junctions).
#include <cstdio>

#include "net/scenario.hpp"
#include "net/topology.hpp"
#include "phy/channel_plan.hpp"
#include "stats/table.hpp"

int main() {
  using namespace nomc;
  std::printf("=== Office building (Case II): one network per room, 6 rooms ===\n\n");

  const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 6);
  net::RandomCaseConfig topology;
  topology.region_m = 1.0;        // each network clustered tightly in its room
  topology.room_spacing_m = 1.8;  // cubicle-style clusters along the corridor

  double overall[2] = {0.0, 0.0};
  std::vector<std::vector<double>> per_room(2);
  for (int design = 0; design < 2; ++design) {
    net::ScenarioConfig config;
    config.seed = 21;
    net::Scenario scenario{config};
    sim::RandomStream placement{config.seed, 999};
    scenario.add_networks(net::case2_clustered(channels, placement, topology),
                          design == 1 ? net::Scheme::kDcn : net::Scheme::kFixedCca);
    scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(10.0));
    overall[design] = scenario.overall_throughput();
    for (int n = 0; n < scenario.network_count(); ++n) {
      per_room[design].push_back(scenario.network_result(n).throughput_pps);
    }
  }

  stats::TablePrinter table{{"room", "channel (MHz)", "fixed CCA (pkt/s)", "DCN (pkt/s)",
                             "gain"}};
  for (std::size_t n = 0; n < channels.size(); ++n) {
    table.add_row({"room " + std::to_string(n),
                   stats::TablePrinter::num(channels[n].value, 0),
                   stats::TablePrinter::num(per_room[0][n], 1),
                   stats::TablePrinter::num(per_room[1][n], 1),
                   stats::TablePrinter::num(100.0 * (per_room[1][n] / per_room[0][n] - 1.0), 1) +
                       "%"});
  }
  table.print();
  std::printf("\noverall: %.1f -> %.1f pkt/s (%+.1f%%)\n", overall[0], overall[1],
              100.0 * (overall[1] / overall[0] - 1.0));
  std::printf("Clustering weakens inter-channel interference, so DCN's gain is smaller\n"
              "than in the dense case — exactly the paper's Case II observation.\n");
  return 0;
}
