// Quickstart: the smallest end-to-end use of the library.
//
// Builds two deployments of 24 sensor nodes on a 15 MHz band:
//   1. the default ZigBee design — 4 orthogonal-ish channels at CFD=5 MHz,
//      fixed -77 dBm CCA threshold;
//   2. the paper's design — 6 non-orthogonal channels at CFD=3 MHz with DCN
//      (a dynamic CCA-Adjustor per sender);
// runs each for 10 simulated seconds and prints the throughput comparison.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "net/scenario.hpp"
#include "net/topology.hpp"
#include "phy/channel_plan.hpp"

int main() {
  using namespace nomc;

  // A dense lab deployment: every node inside one 7x7 m region, all at
  // 0 dBm, sender->receiver links of 2-4.5 m.
  const net::RandomCaseConfig topology =
      net::RandomCaseConfig{}.with_fixed_power(phy::Dbm{0.0});

  double results[2] = {0.0, 0.0};
  for (int design = 0; design < 2; ++design) {
    const bool use_dcn = design == 1;
    const auto channels =
        use_dcn ? phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 6)   // 6 ch, CFD=3
                : phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{5.0}, 4);  // 4 ch, CFD=5

    net::ScenarioConfig config;
    config.seed = 42;
    net::Scenario scenario{config};

    // One network (a handful of sender->receiver links) per channel.
    sim::RandomStream placement{config.seed, /*index=*/999};
    net::RandomCaseConfig topo = topology;
    topo.links_per_network = use_dcn ? 2 : 3;  // same 24 nodes in both designs
    const auto specs = net::case1_dense(channels, placement, topo);
    scenario.add_networks(specs, use_dcn ? net::Scheme::kDcn : net::Scheme::kFixedCca);

    // 2 s warm-up (covers DCN's 1 s initializing phase), 10 s measurement.
    scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(10.0));

    std::printf("%s:\n", use_dcn ? "DCN design (6 channels @ 3 MHz)"
                                 : "ZigBee default (4 channels @ 5 MHz)");
    for (int n = 0; n < scenario.network_count(); ++n) {
      std::printf("  network %d (%.0f MHz): %.1f pkt/s\n", n,
                  scenario.network_channel(n).value,
                  scenario.network_result(n).throughput_pps);
    }
    results[design] = scenario.overall_throughput();
    std::printf("  overall: %.1f pkt/s\n\n", results[design]);
  }

  std::printf("DCN improvement over default ZigBee: %.1f%% (paper: 38.4%% - 55.7%%)\n",
              100.0 * (results[1] / results[0] - 1.0));
  return 0;
}
