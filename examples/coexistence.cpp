// Wi-Fi coexistence: DCN under a colocated 802.11 network.
//
// The paper's motivation cites external wireless networks as one reason
// usable 802.15.4 channels are scarce. This example measures it: a Wi-Fi
// AP on 802.11 channel 7 (2442 MHz, 22 MHz wide) bursts at ~20 % duty a few
// metres from a 6-channel sensor deployment on 2458-2473 MHz.
//
// The Wi-Fi main lobe's skirt lands in the LOWER sensor channels' CCA at
// around the default -77 dBm: fixed-threshold senders on those channels
// keep deferring to energy they could talk over, while DCN's relaxed
// thresholds ignore it (the SINR cost is negligible — the skirt is ~25 dB
// below the wanted signal). The per-channel table makes the mechanism
// visible: the fixed design's losses concentrate on the low channels.
#include <cstdio>
#include <memory>

#include "net/scenario.hpp"
#include "net/topology.hpp"
#include "phy/channel_plan.hpp"
#include "stats/table.hpp"
#include "wifi/interferer.hpp"

int main() {
  using namespace nomc;
  std::printf("=== Wi-Fi coexistence: 6-channel deployment vs an 802.11 AP at 2442 MHz ===\n\n");

  const auto channels = phy::evenly_spaced(phy::Mhz{2458.0}, phy::Mhz{3.0}, 6);
  const net::RandomCaseConfig topology =
      net::RandomCaseConfig{}.with_fixed_power(phy::Dbm{0.0});

  double overall[2][2] = {};  // [scheme][wifi on]
  std::vector<std::vector<double>> per_network(4);
  for (int design = 0; design < 2; ++design) {
    for (int wifi_on = 0; wifi_on < 2; ++wifi_on) {
      net::ScenarioConfig config;
      config.seed = 13;
      net::Scenario scenario{config};
      sim::RandomStream placement{config.seed, 999};
      scenario.add_networks(net::case1_dense(channels, placement, topology),
                            design == 1 ? net::Scheme::kDcn : net::Scheme::kFixedCca);

      std::unique_ptr<wifi::WifiInterferer> ap;
      if (wifi_on == 1) {
        // A few metres off the sensor field, transmitting at 15 dBm.
        ap = std::make_unique<wifi::WifiInterferer>(scenario.scheduler(), scenario.medium(),
                                                    phy::Vec2{3.5, 10.0});
        ap->start();
      }
      scenario.run(sim::SimTime::seconds(2.0), sim::SimTime::seconds(8.0));
      overall[design][wifi_on] = scenario.overall_throughput();
      for (int n = 0; n < scenario.network_count(); ++n) {
        per_network[design * 2 + wifi_on].push_back(
            scenario.network_result(n).throughput_pps);
      }
    }
  }

  stats::TablePrinter table{{"network (MHz)", "fixed, quiet", "fixed, Wi-Fi", "DCN, quiet",
                             "DCN, Wi-Fi"}};
  for (std::size_t n = 0; n < channels.size(); ++n) {
    table.add_row({stats::TablePrinter::num(channels[n].value, 0),
                   stats::TablePrinter::num(per_network[0][n], 1),
                   stats::TablePrinter::num(per_network[1][n], 1),
                   stats::TablePrinter::num(per_network[2][n], 1),
                   stats::TablePrinter::num(per_network[3][n], 1)});
  }
  table.print();

  const double fixed_loss = 100.0 * (1.0 - overall[0][1] / overall[0][0]);
  const double dcn_loss = 100.0 * (1.0 - overall[1][1] / overall[1][0]);
  std::printf("\noverall under Wi-Fi: fixed CCA %.1f -> %.1f pkt/s (-%.1f%%), "
              "DCN %.1f -> %.1f pkt/s (-%.1f%%)\n",
              overall[0][0], overall[0][1], fixed_loss, overall[1][0], overall[1][1],
              dcn_loss);
  std::printf("DCN's relaxed thresholds shrug off the Wi-Fi skirt the fixed design\n"
              "defers to — the same mechanism that unlocks inter-channel concurrency.\n");
  return 0;
}
